(* Drive the whole "HLO analog" pipeline over a small multi-routine mini-C
   program: parse, lower, build SSA, optimize (GVN among the other scalar
   passes), and report per-pass timings — the setting in which the paper's
   Table 1 measures GVN's share of total optimization time. *)

let program =
  {|
# A few routines exercising different analyses.

routine dot3(a0, a1, a2, b0, b1, b2) {
  s = a0 * b0 + a1 * b1 + a2 * b2;
  t = b0 * a0 + b1 * a1 + b2 * a2;   # reassociation proves t == s
  return s - t;
}

routine clamp_sum(x, y, lo, hi) {
  s = x + y;
  if (s < lo) s = lo;
  if (s > hi) s = hi;
  return s;
}

routine count_matches(a, b, n) {
  i = 0;
  c = 0;
  while (i < n) {
    if (f0(a + i) == f0(b + i)) c = c + 1;
    i = i + 1;
  }
  return c;
}

routine dead_code(x) {
  r = 0;
  if (3 > 4) r = f0(x);      # statically false: unreachable
  if (x == x) r = r + 1;     # statically true
  return r;
}
|}

let () =
  let routines = Ir.Parser.parse_program program in
  Fmt.pr "%d routines parsed@.@." (List.length routines);
  List.iter
    (fun r ->
      let f = Ssa.Construct.of_cir (Ir.Lower.lower_routine r) in
      let result =
        (* The pass-list API: the classic lineup is just [standard_passes]. *)
        let opts = Transform.Pipeline.Options.(default |> with_config Pgvn.Config.full) in
        Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f
      in
      let g = result.Transform.Pipeline.func in
      Fmt.pr "=== %s: %d -> %d instructions, %d -> %d blocks ===@." r.Ir.Ast.name
        (Ir.Func.num_instrs f) (Ir.Func.num_instrs g) (Ir.Func.num_blocks f)
        (Ir.Func.num_blocks g);
      Fmt.pr "%a" Ir.Printer.pp g;
      Fmt.pr "GVN: %.2f ms of %.2f ms total (%.0f%%)@.@."
        (result.Transform.Pipeline.gvn_seconds *. 1e3)
        (result.Transform.Pipeline.total_seconds *. 1e3)
        (100.0 *. result.Transform.Pipeline.gvn_seconds
        /. result.Transform.Pipeline.total_seconds);
      (* Equivalence spot check. *)
      let rng = Util.Prng.create 11 in
      let ok = ref true in
      for _ = 1 to 200 do
        let args = Array.init 6 (fun _ -> Util.Prng.range rng (-10) 10) in
        if
          not
            (Ir.Interp.equal_result (Ir.Interp.run f args) (Ir.Interp.run g args))
        then ok := false
      done;
      Fmt.pr "semantics preserved on 200 random inputs: %b@.@." !ok)
    routines

(* Regenerates every table and figure of the paper's evaluation (§5) on the
   synthetic benchmark suite, plus the complexity experiment of Figure 9 and
   the related-work experiments of Figures 13/14. Run with no arguments for
   everything, or name sections:

     dune exec bench/main.exe -- table1 table2 fig9 fig10 fig11 fig12 fig13 scalars absint schedule gcm pred parallel validate bechamel

   Absolute times are this machine's, not a 440 MHz PA-8500's; the claims
   being reproduced are the *ratios* and *shapes* (see EXPERIMENTS.md).

   The harness keeps no stopwatch of its own: every measurement is an
   [Obs] span, GVN engine statistics are read back from the [Obs.Metrics]
   registry, and --trace=FILE / --metrics export the shared context. *)

let scale = ref 1.0

(* The harness-wide observability context. Its clock is the only timer in
   this file, and --trace/--metrics dump it on exit. *)
let obs = Obs.create ()

(* --json FILE: machine-readable per-benchmark timings plus arena/TABLE
   statistics and a ladder scaling check, for the perf-regression record
   (BENCH_gvn.json; see EXPERIMENTS.md). *)
let json_file : string option ref = ref None
let json_table2 : (string * float * float * float) list ref = ref []

(* ------------------------------------------------------------------ *)

(* Best-of-[repeats] wall time of [f], measured as an [Obs] span per
   repetition (the span's duration is the stopwatch). *)
let time_min ~name ~repeats f =
  let best = ref infinity in
  for _ = 1 to repeats do
    let (), dt = Obs.timed obs ~cat:"bench" name (fun () -> f ()) in
    best := min !best dt
  done;
  !best

(* HLO-analog and GVN time for one benchmark under one GVN config. Both
   numbers are views over the pipeline's trace: [total_seconds] is the
   "pipeline" span, [gvn_seconds] the kind-matched GVN pass spans. *)
let pipeline_times config funcs =
  let opts = Transform.Pipeline.Options.(default |> with_config config |> with_obs obs) in
  let passes = Transform.Pipeline.standard_passes opts in
  let hlo = ref 0.0 and gvn = ref 0.0 in
  List.iter
    (fun f ->
      let r = Transform.Pipeline.run_list opts passes f in
      hlo := !hlo +. r.Transform.Pipeline.total_seconds;
      gvn := !gvn +. r.Transform.Pipeline.gvn_seconds)
    funcs;
  (!hlo, !gvn)

let gvn_time config funcs =
  time_min ~name:"bench.gvn" ~repeats:3 (fun () ->
      List.iter (fun f -> ignore (Pgvn.Driver.run config f)) funcs)

(* ------------------------------------------------------------------ *)

let table1 suite =
  Fmt.pr "@\n=== Table 1: HLO and GVN time — optimistic / balanced / pessimistic ===@\n";
  let rows = ref [] in
  let tot = Array.make 6 0.0 in
  List.iter
    (fun (b, funcs) ->
      (* HLO totals come from one pipeline run per config; the GVN columns
         are repeated-minimum direct timings (less noise in the ratios). *)
      let ho, _ = pipeline_times Pgvn.Config.full funcs in
      let hb, _ = pipeline_times Pgvn.Config.balanced funcs in
      let hp, _ = pipeline_times Pgvn.Config.pessimistic funcs in
      let go = 2.0 *. gvn_time Pgvn.Config.full funcs in
      let gb = 2.0 *. gvn_time Pgvn.Config.balanced funcs in
      let gp = 2.0 *. gvn_time Pgvn.Config.pessimistic funcs in
      (* the pipeline runs GVN twice (two rounds), hence the factor 2 for
         the share columns *)
      tot.(0) <- tot.(0) +. ho;
      tot.(1) <- tot.(1) +. go;
      tot.(2) <- tot.(2) +. hb;
      tot.(3) <- tot.(3) +. gb;
      tot.(4) <- tot.(4) +. hp;
      tot.(5) <- tot.(5) +. gp;
      rows :=
        [
          b.Workload.Suite.name;
          Stats.Table.ms ho;
          Stats.Table.ms go;
          Stats.Table.pct go ho;
          Stats.Table.ms hb;
          Stats.Table.ms gb;
          Stats.Table.pct gb hb;
          Stats.Table.ratio go gb;
          Stats.Table.ms hp;
          Stats.Table.ms gp;
          Stats.Table.pct gp hp;
          Stats.Table.ratio gb gp;
        ]
        :: !rows)
    suite;
  let rows =
    List.rev
      ([
         "All";
         Stats.Table.ms tot.(0);
         Stats.Table.ms tot.(1);
         Stats.Table.pct tot.(1) tot.(0);
         Stats.Table.ms tot.(2);
         Stats.Table.ms tot.(3);
         Stats.Table.pct tot.(3) tot.(2);
         Stats.Table.ratio tot.(1) tot.(3);
         Stats.Table.ms tot.(4);
         Stats.Table.ms tot.(5);
         Stats.Table.pct tot.(5) tot.(4);
         Stats.Table.ratio tot.(3) tot.(5);
       ]
      :: !rows)
  in
  Stats.Table.render
    ~columns:
      [
        ("Benchmark", Stats.Table.Left);
        ("HLO(o)", Stats.Table.Right);
        ("GVN(o)", Stats.Table.Right);
        ("C=B/A", Stats.Table.Right);
        ("HLO(b)", Stats.Table.Right);
        ("GVN(b)", Stats.Table.Right);
        ("F=E/D", Stats.Table.Right);
        ("G=B/E", Stats.Table.Right);
        ("HLO(p)", Stats.Table.Right);
        ("GVN(p)", Stats.Table.Right);
        ("J=I/H", Stats.Table.Right);
        ("K=E/I", Stats.Table.Right);
      ]
    ~rows Fmt.stdout;
  Fmt.pr "  (times in ms; o/b/p = optimistic/balanced/pessimistic;@\n";
  Fmt.pr "   G = optimistic-vs-balanced GVN speedup, paper reports 1.39-1.90;@\n";
  Fmt.pr "   K = balanced-vs-pessimistic ratio, paper reports ~1.00)@\n"

let table2 suite =
  Fmt.pr "@\n=== Table 2: GVN time — dense / sparse / basic ===@\n";
  let rows = ref [] in
  let tot = Array.make 3 0.0 in
  List.iter
    (fun (b, funcs) ->
      let a = gvn_time Pgvn.Config.dense funcs in
      let s = gvn_time Pgvn.Config.full funcs in
      let c = gvn_time Pgvn.Config.basic funcs in
      json_table2 := (b.Workload.Suite.name, a, s, c) :: !json_table2;
      tot.(0) <- tot.(0) +. a;
      tot.(1) <- tot.(1) +. s;
      tot.(2) <- tot.(2) +. c;
      rows :=
        [
          b.Workload.Suite.name;
          Stats.Table.ms a;
          Stats.Table.ms s;
          Stats.Table.ms c;
          Stats.Table.ratio a s;
          Stats.Table.ratio s c;
        ]
        :: !rows)
    suite;
  let rows =
    List.rev
      ([
         "All";
         Stats.Table.ms tot.(0);
         Stats.Table.ms tot.(1);
         Stats.Table.ms tot.(2);
         Stats.Table.ratio tot.(0) tot.(1);
         Stats.Table.ratio tot.(1) tot.(2);
       ]
      :: !rows)
  in
  Stats.Table.render
    ~columns:
      [
        ("Benchmark", Stats.Table.Left);
        ("A:Dense", Stats.Table.Right);
        ("B:Sparse", Stats.Table.Right);
        ("C:Basic", Stats.Table.Right);
        ("A/B", Stats.Table.Right);
        ("B/C", Stats.Table.Right);
      ]
    ~rows Fmt.stdout;
  Fmt.pr "  (A/B = sparseness speedup, paper reports 1.23-1.57;@\n";
  Fmt.pr "   B/C = cost of reassociation + inference + phi-predication, paper 1.15-1.32)@\n"

let all_funcs suite = List.concat_map snd suite

let figure ~name ~against suite =
  Fmt.pr "@\n=== %s ===@\n" name;
  let cmp =
    Stats.Strength.compare_configs ~config:Pgvn.Config.full ~baseline:against (all_funcs suite)
  in
  Stats.Strength.pp Fmt.stdout cmp

let fig12 suite =
  Fmt.pr "@\n=== Figure 12: optimistic vs balanced value numbering ===@\n";
  let cmp =
    Stats.Strength.compare_configs ~config:Pgvn.Config.full ~baseline:Pgvn.Config.balanced
      (all_funcs suite)
  in
  Stats.Strength.pp Fmt.stdout cmp

let scalars suite =
  Fmt.pr "@\n=== Section 4/5 scalars: passes and inference visits per instruction ===@\n";
  let funcs = all_funcs suite in
  let n = List.length funcs in
  let passes = ref 0 and instrs = ref 0 and vi = ref 0 and pi = ref 0 and pp = ref 0 in
  List.iter
    (fun f ->
      let st = Pgvn.Driver.run Pgvn.Config.full f in
      let s = st.Pgvn.State.stats in
      passes := !passes + s.Pgvn.Run_stats.passes;
      instrs := !instrs + s.Pgvn.Run_stats.instrs_processed;
      vi := !vi + s.Pgvn.Run_stats.value_inference_visits;
      pi := !pi + s.Pgvn.Run_stats.predicate_inference_visits;
      pp := !pp + s.Pgvn.Run_stats.phi_predication_visits)
    funcs;
  Fmt.pr "  routines: %d@\n" n;
  Fmt.pr "  average passes per routine:           %.2f   (paper: 1.98)@\n"
    (float_of_int !passes /. float_of_int n);
  Fmt.pr "  value-inference visits per instr:     %.2f   (paper: 0.91)@\n"
    (float_of_int !vi /. float_of_int !instrs);
  Fmt.pr "  predicate-inference visits per instr: %.2f   (paper: 0.38)@\n"
    (float_of_int !pi /. float_of_int !instrs);
  Fmt.pr "  phi-predication visits per instr:     %.2f   (paper: 0.16)@\n"
    (float_of_int !pp /. float_of_int !instrs)

let fig9 () =
  Fmt.pr "@\n=== Figure 9: value-inference worst case (O(n^2) ladder) ===@\n";
  let sizes = [ 8; 16; 32; 64; 128 ] in
  let rows =
    List.map
      (fun n ->
        let f = Workload.Pathological.ladder_func n in
        let t =
          time_min ~name:"bench.ladder" ~repeats:5 (fun () ->
              ignore (Pgvn.Driver.run Pgvn.Config.full f))
        in
        let st = Pgvn.Driver.run Pgvn.Config.full f in
        (n, t, st.Pgvn.State.stats.Pgvn.Run_stats.value_inference_visits))
      sizes
  in
  Stats.Table.render
    ~columns:
      [
        ("n", Stats.Table.Right);
        ("gvn ms", Stats.Table.Right);
        ("vi visits", Stats.Table.Right);
        ("visits/n", Stats.Table.Right);
      ]
    ~rows:
      (List.map
         (fun (n, t, v) ->
           [
             string_of_int n;
             Stats.Table.ms t;
             string_of_int v;
             Printf.sprintf "%.1f" (float_of_int v /. float_of_int n);
           ])
         rows)
    Fmt.stdout;
  Fmt.pr "  (visits/n growing linearly in n means total work is quadratic,@\n";
  Fmt.pr "   the paper's Figure 9 worst case)@\n"

let fig13 () =
  Fmt.pr "@\n=== Figure 13: Briggs-Torczon-Cooper pre-pass vs unified inference ===@\n";
  let f = Workload.Corpus.func_of_src Workload.Corpus.figure13_src in
  (* The guarded return's constancy, and the number of constant values
     discovered, under each approach. *)
  let measure config g =
    let st = Pgvn.Driver.run config g in
    let s = Pgvn.Driver.summarize st in
    (* the guarded return is the one whose block has a conditional pred *)
    let guarded = ref None in
    for i = 0 to Ir.Func.num_instrs g - 1 do
      match Ir.Func.instr g i with
      | Ir.Func.Return v when Ir.Func.block_of_instr g i <> Ir.Func.entry ->
          if !guarded = None then guarded := Some (Pgvn.Driver.value_constant st v)
      | _ -> ()
    done;
    (s.Pgvn.Driver.constant_values, Option.join !guarded)
  in
  let pp_c ppf = function None -> Fmt.string ppf "non-constant" | Some c -> Fmt.pf ppf "const %d" c in
  let c0, r0 = measure Pgvn.Config.emulate_click f in
  let c1, r1 = measure Pgvn.Config.emulate_click (Baselines.Briggs_prepass.run f) in
  let c2, r2 = measure Pgvn.Config.full f in
  Fmt.pr "  F13: `if (K == 0) { i = f0(K)-f0(0); j = f0(L)-f0(0); return i+j; }` with L = K+0@\n";
  Fmt.pr "    plain GVN (Click emulation):  %2d constants, guarded return %a@\n" c0 pp_c r0;
  Fmt.pr "    Briggs pre-pass + plain GVN:  %2d constants, guarded return %a  (i=0 found, j missed)@\n"
    c1 pp_c r1;
  Fmt.pr "    unified predicated GVN:       %2d constants, guarded return %a  (both found)@\n" c2
    pp_c r2

(* Ablation: the contribution of each unified analysis, in strength (total
   constants / unreachable values / classes over the suite) and GVN time.
   These are the design choices DESIGN.md calls out. *)
let ablation suite =
  Fmt.pr "@\n=== Ablation: per-analysis contribution (whole suite totals) ===@\n";
  let funcs = all_funcs suite in
  let variants =
    [
      ("full", Pgvn.Config.full);
      ("- value inference", { Pgvn.Config.full with value_inference = false });
      ("- predicate inference", { Pgvn.Config.full with predicate_inference = false });
      ("- phi-predication", { Pgvn.Config.full with phi_predication = false });
      ("- reassociation", { Pgvn.Config.full with reassociation = false });
      ("- unreachable code", { Pgvn.Config.full with unreachable_code = false });
      ("- algebraic simpl.", { Pgvn.Config.full with algebraic_simplification = false });
      ("+ phi-distribution", Pgvn.Config.full_extended);
      ("basic (all four off)", Pgvn.Config.basic);
    ]
  in
  let rows =
    List.map
      (fun (name, config) ->
        let consts = ref 0 and unreach = ref 0 and classes = ref 0 in
        List.iter
          (fun f ->
            let s = Pgvn.Driver.summarize (Pgvn.Driver.run config f) in
            consts := !consts + s.Pgvn.Driver.constant_values;
            unreach := !unreach + s.Pgvn.Driver.unreachable_values;
            classes := !classes + s.Pgvn.Driver.congruence_classes)
          funcs;
        let t = gvn_time config funcs in
        [
          name;
          string_of_int !consts;
          string_of_int !unreach;
          string_of_int !classes;
          Stats.Table.ms t;
        ])
      variants
  in
  Stats.Table.render
    ~columns:
      [
        ("configuration", Stats.Table.Left);
        ("constants", Stats.Table.Right);
        ("unreachable", Stats.Table.Right);
        ("classes", Stats.Table.Right);
        ("gvn ms", Stats.Table.Right);
      ]
    ~rows Fmt.stdout;
  Fmt.pr "  (more constants/unreachable and fewer classes = stronger)@\n"

let bechamel_section () =
  Fmt.pr "@\n=== Bechamel micro-benchmarks (one per table) ===@\n";
  let open Bechamel in
  let r = Workload.Corpus.func_of_src Workload.Corpus.routine_r_src in
  let big = Workload.Generator.func ~seed:4242 ~name:"bench_big"
      ~profile:{ Workload.Generator.default_profile with stmt_budget = 120 } () in
  let mk name config f = Test.make ~name (Staged.stage (fun () -> ignore (Pgvn.Driver.run config f))) in
  let tests =
    [
      (* Table 1's contrast: the three value-numbering modes. *)
      mk "table1/optimistic" Pgvn.Config.full big;
      mk "table1/balanced" Pgvn.Config.balanced big;
      mk "table1/pessimistic" Pgvn.Config.pessimistic big;
      (* Table 2's contrast: dense vs sparse vs basic. *)
      mk "table2/dense" Pgvn.Config.dense big;
      mk "table2/sparse" Pgvn.Config.full big;
      mk "table2/basic" Pgvn.Config.basic big;
      (* Figure 9's ladder at a fixed size. *)
      mk "fig9/ladder64" Pgvn.Config.full (Workload.Pathological.ladder_func 64);
      (* The running example. *)
      mk "fig1/routine_r" Pgvn.Config.full r;
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:1000 ~stabilize:true ~quota:(Time.second 0.4) () in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
      in
      let analyzed = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Fmt.pr "  %-24s %10.1f ns/run@\n" name est
          | _ -> Fmt.pr "  %-24s (no estimate)@\n" name)
        analyzed)
    tests

(* Sparse abstract interpretation next to the GVN pass it cross-checks:
   per-benchmark wall clock of the two client analyses and of the static
   cross-checker (states precomputed, so its column is the replay alone),
   with each domain's fact yield — constants proved, defs with at least
   one finite interval bound, blocks proved never-executing, and the total
   claims the cross-checker verified. *)
let absint_section suite =
  Fmt.pr "@\n=== Sparse abstract interpretation: cost and fact yield ===@\n";
  let rows =
    List.map
      (fun ((b : Workload.Suite.benchmark), funcs) ->
        let tg = gvn_time Pgvn.Config.full funcs in
        let tc =
          time_min ~name:"bench.const" ~repeats:3 (fun () ->
              List.iter (fun f -> ignore (Absint.Consts.run f)) funcs)
        in
        let tr =
          time_min ~name:"bench.range" ~repeats:3 (fun () ->
              List.iter (fun f -> ignore (Absint.Ranges.run f)) funcs)
        in
        let sts = List.map (fun f -> Pgvn.Driver.run Pgvn.Config.full f) funcs in
        let tx =
          time_min ~name:"bench.crosscheck" ~repeats:3 (fun () ->
              List.iter (fun st -> ignore (Absint.Crosscheck.run st)) sts)
        in
        let consts = ref 0 and bounded = ref 0 and dead = ref 0 and claims = ref 0 in
        List.iter2
          (fun f st ->
            let kc = Absint.Consts.run f and rg = Absint.Ranges.run f in
            Array.iteri
              (fun i d ->
                if Ir.Func.defines_value (Ir.Func.instr f i) then begin
                  (match d with Absint.Konst.Cst _ -> incr consts | _ -> ());
                  match rg.Absint.Ranges.facts.(i) with
                  | Absint.Itv.Itv (lo, hi) when lo <> None || hi <> None -> incr bounded
                  | _ -> ()
                end)
              kc.Absint.Consts.facts;
            Array.iter (fun e -> if not e then incr dead) rg.Absint.Ranges.block_exec;
            let r = Absint.Crosscheck.run st in
            claims :=
              !claims + r.Absint.Crosscheck.branches_checked
              + r.Absint.Crosscheck.inferences_checked
              + r.Absint.Crosscheck.phi_preds_checked
              + r.Absint.Crosscheck.constants_checked)
          funcs sts;
        [
          b.Workload.Suite.name;
          Stats.Table.ms tg;
          Stats.Table.ms tc;
          Stats.Table.ms tr;
          Stats.Table.ms tx;
          string_of_int !consts;
          string_of_int !bounded;
          string_of_int !dead;
          string_of_int !claims;
        ])
      suite
  in
  Stats.Table.render
    ~columns:
      [
        ("Benchmark", Stats.Table.Left);
        ("GVN ms", Stats.Table.Right);
        ("const ms", Stats.Table.Right);
        ("range ms", Stats.Table.Right);
        ("xcheck ms", Stats.Table.Right);
        ("consts", Stats.Table.Right);
        ("bounded", Stats.Table.Right);
        ("dead blks", Stats.Table.Right);
        ("claims", Stats.Table.Right);
      ]
    ~rows Fmt.stdout

(* Code-motion placement analysis (lib/schedule): per-benchmark wall clock
   of the early/late/best computation, the opportunity yield (hoistable /
   sinkable values, faulting ops pinned for speculation safety), and the
   independent legality checker's verdict on the identity placement —
   which must be zero violations on every benchmark. *)

type sched_stat = {
  s_name : string;
  s_ms : float;
  s_values : int;
  s_pinned : int;
  s_blocked : int;
  s_hoist : int;
  s_sink : int;
}

let schedule_stats_pass suite =
  List.map
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      let t =
        time_min ~name:"bench.schedule" ~repeats:3 (fun () ->
            List.iter (fun f -> ignore (Schedule.Placement.compute f)) funcs)
      in
      let values = ref 0
      and pinned = ref 0
      and blocked = ref 0
      and hoist = ref 0
      and sink = ref 0 in
      List.iter
        (fun f ->
          let s = Schedule.Placement.stats (Schedule.Placement.compute f) in
          values := !values + s.Schedule.Placement.values;
          pinned := !pinned + s.Schedule.Placement.pinned;
          blocked := !blocked + s.Schedule.Placement.speculation_blocked;
          hoist := !hoist + s.Schedule.Placement.hoistable;
          sink := !sink + s.Schedule.Placement.sinkable)
        funcs;
      {
        s_name = b.Workload.Suite.name;
        s_ms = t;
        s_values = !values;
        s_pinned = !pinned;
        s_blocked = !blocked;
        s_hoist = !hoist;
        s_sink = !sink;
      })
    suite

let schedule_section suite =
  Fmt.pr "@\n=== Code-motion placement analysis: cost and opportunity yield ===@\n";
  let stats = schedule_stats_pass suite in
  let rows =
    List.map2
      (fun s (_, funcs) ->
        let violations =
          List.fold_left
            (fun acc f -> acc + List.length (Check.errors (Check.Schedule.run f)))
            0 funcs
        in
        [
          s.s_name;
          Stats.Table.ms s.s_ms;
          string_of_int s.s_values;
          string_of_int s.s_hoist;
          string_of_int s.s_sink;
          string_of_int s.s_blocked;
          string_of_int violations;
        ])
      stats suite
  in
  Stats.Table.render
    ~columns:
      [
        ("Benchmark", Stats.Table.Left);
        ("sched ms", Stats.Table.Right);
        ("values", Stats.Table.Right);
        ("hoistable", Stats.Table.Right);
        ("sinkable", Stats.Table.Right);
        ("spec-blocked", Stats.Table.Right);
        ("violations", Stats.Table.Right);
      ]
    ~rows Fmt.stdout;
  Fmt.pr "  (violations = identity-placement legality errors; must be 0)@\n"

(* Global code motion (lib/transform/gcm): the transform the placement
   analysis feeds. Each routine is optimized by the standard pipeline
   first — GCM runs post-GVN in every real configuration — then the
   certified rebuild runs on the result. Every run is gated by the
   independent legality checker (a refused plan aborts the bench) and the
   rebuild is diffed for observable behavior through Engine 2; the section
   reports the motion yield and the transform's wall clock. *)

type gcm_stat = {
  m_name : string;
  m_ms : float;
  m_values : int;
  m_moved : int;
  m_hoisted : int;
  m_sunk : int;
  m_blocked : int;
}

let gcm_stats_pass suite =
  let opts = Transform.Pipeline.Options.(default |> with_obs obs) in
  let passes = Transform.Pipeline.standard_passes opts in
  List.map
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      let optimized =
        List.map
          (fun f -> (Transform.Pipeline.run_list opts passes f).Transform.Pipeline.func)
          funcs
      in
      let gcm f =
        match Transform.Gcm.run f with
        | r -> r
        | exception Transform.Gcm.Rejected { diagnostics } ->
            failwith
              (Printf.sprintf "%s: GCM plan rejected: %s" b.Workload.Suite.name
                 (Check.Diagnostic.to_string (List.hd diagnostics)))
      in
      let t =
        time_min ~name:"bench.gcm" ~repeats:3 (fun () ->
            List.iter (fun f -> ignore (gcm f)) optimized)
      in
      let values = ref 0
      and moved = ref 0
      and hoisted = ref 0
      and sunk = ref 0
      and blocked = ref 0 in
      List.iter
        (fun f ->
          let g, s = gcm f in
          let d = Validate.Equiv.check ~pass:"gcm" f g in
          if not (Validate.Equiv.ok d) then
            failwith
              (Printf.sprintf "%s: GCM rebuild changed observable behavior"
                 b.Workload.Suite.name);
          values := !values + s.Transform.Gcm.values;
          moved := !moved + s.Transform.Gcm.moved;
          hoisted := !hoisted + s.Transform.Gcm.hoisted;
          sunk := !sunk + s.Transform.Gcm.sunk;
          blocked := !blocked + s.Transform.Gcm.speculation_blocked)
        optimized;
      {
        m_name = b.Workload.Suite.name;
        m_ms = t;
        m_values = !values;
        m_moved = !moved;
        m_hoisted = !hoisted;
        m_sunk = !sunk;
        m_blocked = !blocked;
      })
    suite

let gcm_section suite =
  Fmt.pr "@\n=== Global code motion: certified rebuilds on optimized code ===@\n";
  let stats = gcm_stats_pass suite in
  let rows =
    List.map
      (fun s ->
        [
          s.m_name;
          Stats.Table.ms s.m_ms;
          string_of_int s.m_values;
          string_of_int s.m_moved;
          string_of_int s.m_hoisted;
          string_of_int s.m_sunk;
          string_of_int s.m_blocked;
        ])
      stats
  in
  Stats.Table.render
    ~columns:
      [
        ("Benchmark", Stats.Table.Left);
        ("gcm ms", Stats.Table.Right);
        ("values", Stats.Table.Right);
        ("moved", Stats.Table.Right);
        ("hoisted", Stats.Table.Right);
        ("sunk", Stats.Table.Right);
        ("spec-blocked", Stats.Table.Right);
      ]
    ~rows Fmt.stdout;
  Fmt.pr
    "  (every rebuild checker-certified and Engine-2 diffed; refusals abort the bench)@\n"

(* The predicate implication engine: branch decisions with the multi-fact
   closure fallback on versus off, per benchmark. [decided] counts branches
   the run decided (pruned an arm of); the closure may only add to the
   single-fact baseline, and the claim is that it does so for strictly less
   than a 10% analysis-time premium on the large benchmarks. Baseline and
   pred timings are interleaved within each repeat so machine drift hits
   both columns alike. *)

type pred_stat = {
  pr_name : string;
  pr_base_decided : int;
  pr_pred_decided : int;
  pr_queries : int;
  pr_closure_decided : int;
  pr_base_ms : float;
  pr_pred_ms : float;
}

let pred_stats_pass suite =
  let pred_cfg = { Pgvn.Config.full with Pgvn.Config.pred_closure = true } in
  List.map
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      let run cfg = List.iter (fun f -> ignore (Pgvn.Driver.run cfg f)) funcs in
      let tb = ref infinity and tp = ref infinity in
      for _ = 1 to 5 do
        let (), d1 = Obs.timed obs ~cat:"bench" "bench.pred.base" (fun () -> run Pgvn.Config.full) in
        let (), d2 = Obs.timed obs ~cat:"bench" "bench.pred.on" (fun () -> run pred_cfg) in
        tb := min !tb d1;
        tp := min !tp d2
      done;
      let decided cfg =
        List.fold_left
          (fun acc f ->
            acc + List.length (Pgvn.Driver.decided_branches (Pgvn.Driver.run cfg f)))
          0 funcs
      in
      let queries = ref 0 and closure_dec = ref 0 in
      List.iter
        (fun f ->
          let st = Pgvn.Driver.run pred_cfg f in
          let s = st.Pgvn.State.stats in
          queries := !queries + s.Pgvn.Run_stats.pred_closure_queries;
          closure_dec :=
            !closure_dec + s.Pgvn.Run_stats.pred_decided_true
            + s.Pgvn.Run_stats.pred_decided_false)
        funcs;
      {
        pr_name = b.Workload.Suite.name;
        pr_base_decided = decided Pgvn.Config.full;
        pr_pred_decided = decided pred_cfg;
        pr_queries = !queries;
        pr_closure_decided = !closure_dec;
        pr_base_ms = !tb;
        pr_pred_ms = !tp;
      })
    suite

let pred_section suite =
  Fmt.pr "@\n=== Predicate implication closure: decided branches and cost ===@\n";
  let stats = pred_stats_pass suite in
  let rows =
    List.map
      (fun p ->
        [
          p.pr_name;
          string_of_int p.pr_base_decided;
          string_of_int p.pr_pred_decided;
          Printf.sprintf "+%d" (p.pr_pred_decided - p.pr_base_decided);
          string_of_int p.pr_queries;
          string_of_int p.pr_closure_decided;
          Stats.Table.ms p.pr_base_ms;
          Stats.Table.ms p.pr_pred_ms;
        ])
      stats
  in
  Stats.Table.render
    ~columns:
      [
        ("Benchmark", Stats.Table.Left);
        ("decided", Stats.Table.Right);
        ("+closure", Stats.Table.Right);
        ("delta", Stats.Table.Right);
        ("queries", Stats.Table.Right);
        ("closure-dec", Stats.Table.Right);
        ("base ms", Stats.Table.Right);
        ("pred ms", Stats.Table.Right);
      ]
    ~rows Fmt.stdout;
  Fmt.pr
    "  (decided = branches the GVN run pruned an arm of; delta = additional branches@\n\
    \   only the multi-fact dominating-conjunction closure could decide)@\n"

(* The parallel service tier: throughput of the domain pool on the
   multi-routine heavy hitters at 1/2/4 domains, and the content-addressed
   cache's hit rate on a repeat-run workload. Speedups are paired-run
   medians (each repeat measures every domain count back to back, the
   ratio is taken within the pair, the median across repeats) — the shape
   claim is the speedup ratio, not this machine's absolute routines/sec.
   On hosts with fewer cores than domains the ratio degrades gracefully;
   the JSON record carries the host's core count so the schema gate only
   enforces the 4-domain floor where 4 cores exist. *)

type par_stat = {
  pb_name : string;
  pb_routines : int;
  pb_rps : (int * float) list; (* domain count -> median routines/sec *)
  pb_speedups : (int * float) list; (* domain count -> median paired speedup *)
  pb_hit_rate : float; (* cache hit rate of the repeat sweep *)
}

let parallel_domain_counts = [ 1; 2; 4 ]
let parallel_heavy = [ "176.gcc"; "253.perlbmk"; "254.gap" ]

let median = function
  | [] -> 0.0
  | l ->
      let s = List.sort compare l in
      List.nth s (List.length s / 2)

let parallel_stats_pass suite =
  let chosen =
    List.filter
      (fun ((b : Workload.Suite.benchmark), _) -> List.mem b.Workload.Suite.name parallel_heavy)
      suite
  in
  List.map
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      let work = Array.of_list funcs in
      let n = Array.length work in
      let pools =
        List.map (fun d -> (d, Par.Pool.create ~domains:d ())) parallel_domain_counts
      in
      let samples =
        List.init 5 (fun _ ->
            List.map
              (fun (d, pool) ->
                let (), t =
                  Obs.timed obs ~cat:"bench" "bench.parallel" (fun () ->
                      ignore
                        (Par.Pool.map pool
                           (fun f -> ignore (Pgvn.Driver.run Pgvn.Config.full f))
                           work))
                in
                (d, t))
              pools)
      in
      List.iter (fun (_, pool) -> Par.Pool.shutdown pool) pools;
      let times d = List.map (List.assoc d) samples in
      let rps =
        List.map
          (fun d -> (d, float_of_int n /. max epsilon_float (median (times d))))
          parallel_domain_counts
      in
      let speedups =
        List.map
          (fun d -> (d, median (List.map (fun s -> List.assoc 1 s /. List.assoc d s) samples)))
          parallel_domain_counts
      in
      (* Repeat-run cache workload: sweep the benchmark through the
         content-addressed cache twice. The first sweep compiles and
         populates; the second must answer every routine from cache. *)
      let cache = Par.Ccache.create () in
      let sweep () =
        Array.iter
          (fun f ->
            let key = Par.Ccache.key_of f in
            match Par.Ccache.find cache key with
            | Some _ -> ()
            | None ->
                ignore (Pgvn.Driver.run Pgvn.Config.full f);
                Par.Ccache.add cache key "cached")
          work
      in
      sweep ();
      let s1 = Par.Ccache.stats cache in
      sweep ();
      let s2 = Par.Ccache.stats cache in
      let lookups =
        s2.Par.Ccache.hits + s2.Par.Ccache.misses - s1.Par.Ccache.hits - s1.Par.Ccache.misses
      in
      let hit_rate =
        if lookups = 0 then 0.0
        else float_of_int (s2.Par.Ccache.hits - s1.Par.Ccache.hits) /. float_of_int lookups
      in
      {
        pb_name = b.Workload.Suite.name;
        pb_routines = n;
        pb_rps = rps;
        pb_speedups = speedups;
        pb_hit_rate = hit_rate;
      })
    chosen

let parallel_section suite =
  Fmt.pr "@\n=== Parallel service: pool throughput and cache hit rate ===@\n";
  let stats = parallel_stats_pass suite in
  let rows =
    List.map
      (fun p ->
        [
          p.pb_name;
          string_of_int p.pb_routines;
          Printf.sprintf "%.0f" (List.assoc 1 p.pb_rps);
          Printf.sprintf "%.0f" (List.assoc 2 p.pb_rps);
          Printf.sprintf "%.0f" (List.assoc 4 p.pb_rps);
          Printf.sprintf "%.2fx" (List.assoc 2 p.pb_speedups);
          Printf.sprintf "%.2fx" (List.assoc 4 p.pb_speedups);
          Printf.sprintf "%.0f%%" (100. *. p.pb_hit_rate);
        ])
      stats
  in
  Stats.Table.render
    ~columns:
      [
        ("Benchmark", Stats.Table.Left);
        ("routines", Stats.Table.Right);
        ("rps@1", Stats.Table.Right);
        ("rps@2", Stats.Table.Right);
        ("rps@4", Stats.Table.Right);
        ("speedup@2", Stats.Table.Right);
        ("speedup@4", Stats.Table.Right);
        ("repeat hits", Stats.Table.Right);
      ]
    ~rows Fmt.stdout;
  Fmt.pr "  (%d core(s) recommended on this host; speedups are paired-run medians)@\n"
    (Domain.recommended_domain_count ())

(* Translation-validation overhead: run the pipeline under full validation
   and report, per pass kind, what the validator adds on top of the pass
   itself (witness audit against the oracle for GVN; interpreter diffing
   for every rewriting pass), plus the certification totals. *)
let validate_section suite =
  Fmt.pr "@\n=== Translation validation: per-pass overhead (whole suite) ===@\n";
  let funcs = all_funcs suite in
  (* Both tables are keyed by the structural [pass_kind] — never by
     splitting display names (a pass called "gvn-lite#1" must not be
     charged to GVN). Validation records carry only the display name, so
     they are mapped back to a kind through the run's own timing list,
     which pairs each exact display name with its kind. *)
  let pass_s : (Transform.Pipeline.pass_kind, float) Hashtbl.t = Hashtbl.create 8 in
  let val_s : (Transform.Pipeline.pass_kind, float) Hashtbl.t = Hashtbl.create 8 in
  let bump h k dt =
    Hashtbl.replace h k (dt +. try Hashtbl.find h k with Not_found -> 0.0)
  in
  let opts = Transform.Pipeline.Options.(default |> with_validate Validate.All |> with_obs obs) in
  let passes = Transform.Pipeline.standard_passes opts in
  let combined = ref Validate.Report.empty in
  List.iter
    (fun f ->
      let r = Transform.Pipeline.run_list opts passes f in
      List.iter
        (fun t -> bump pass_s t.Transform.Pipeline.kind t.Transform.Pipeline.seconds)
        r.Transform.Pipeline.timings;
      let kind_of_pass name =
        List.find_map
          (fun t ->
            if String.equal t.Transform.Pipeline.pass name then
              Some t.Transform.Pipeline.kind
            else None)
          r.Transform.Pipeline.timings
      in
      match r.Transform.Pipeline.validation with
      | None -> ()
      | Some v ->
          List.iter
            (fun p ->
              (match kind_of_pass p.Validate.Report.pass with
              | Some kind -> bump val_s kind p.Validate.Report.seconds
              | None -> ());
              combined := Validate.Report.add !combined p)
            v.Validate.Report.passes)
    funcs;
  let rows =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) pass_s []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
    |> List.map (fun (kind, ps) ->
           let vs = try Hashtbl.find val_s kind with Not_found -> 0.0 in
           [
             Transform.Pipeline.pass_kind_name kind;
             Stats.Table.ms ps;
             Stats.Table.ms vs;
             Stats.Table.ratio vs ps;
           ])
  in
  Stats.Table.render
    ~columns:
      [
        ("pass", Stats.Table.Left);
        ("pass ms", Stats.Table.Right);
        ("validate ms", Stats.Table.Right);
        ("overhead x", Stats.Table.Right);
      ]
    ~rows Fmt.stdout;
  Fmt.pr "totals: %a@\n" Validate.Report.pp_summary !combined

(* ------------------------------------------------------------------ *)
(* --json: arena/table statistics and the scaling check, emitted as a
   hand-rolled JSON document (stdlib only; keys are fixed identifiers and
   benchmark names, so no string escaping is needed). *)

type gvn_stat = {
  g_name : string;
  g_routines : int;
  g_passes : int;
  g_instrs : int;
  g_probes : int;
  g_hits : int;
  g_live : int;
  g_interned : int;
  g_arena_hits : int;
  g_max_chain : int;
  g_fired : (string * int) list;  (* rewrite-rule fire counts, by rule name *)
}

(* One full-config run per routine under a per-benchmark [Obs] context;
   the driver publishes its worklist/table/arena statistics into the
   metrics registry, and the JSON record is read back from one snapshot
   (counters sum across routines; [pgvn.arena.max_chain] is a max gauge). *)
let gvn_stats_pass suite =
  List.map
    (fun (b, funcs) ->
      let o = Obs.create () in
      List.iter (fun f -> ignore (Pgvn.Driver.run ~obs:o Pgvn.Config.full f)) funcs;
      let snap = Obs.Metrics.snapshot o.Obs.metrics in
      let c name = try List.assoc name snap.Obs.Metrics.counters with Not_found -> 0 in
      let g name = try List.assoc name snap.Obs.Metrics.gauges with Not_found -> 0.0 in
      let fired =
        let pfx = "rules.fired." in
        let n = String.length pfx in
        List.filter_map
          (fun (k, v) ->
            if String.length k > n && String.sub k 0 n = pfx && v > 0 then
              Some (String.sub k n (String.length k - n), v)
            else None)
          snap.Obs.Metrics.counters
        |> List.sort compare
      in
      {
        g_name = b.Workload.Suite.name;
        g_routines = List.length funcs;
        g_passes = c "pgvn.passes";
        g_instrs = c "pgvn.instrs";
        g_probes = c "pgvn.table_probes";
        g_hits = c "pgvn.table_hits";
        g_live = c "pgvn.arena.live";
        g_interned = c "pgvn.arena.interned";
        g_arena_hits = c "pgvn.arena.hits";
        g_max_chain = int_of_float (g "pgvn.arena.max_chain");
        g_fired = fired;
      })
    suite

(* Figure-9-style complexity guard: value-inference visits on the ladder
   must grow no worse than quadratically, i.e. at most ~4x (we allow 5x
   slack) per doubling of the ladder size. A super-quadratic regression in
   the sparse engine trips this before it trips any wall-clock threshold. *)
let scaling_check () =
  let sizes = [ 16; 32; 64 ] in
  let rows =
    List.map
      (fun n ->
        let f = Workload.Pathological.ladder_func n in
        let t =
          time_min ~name:"bench.ladder" ~repeats:3 (fun () ->
              ignore (Pgvn.Driver.run Pgvn.Config.full f))
        in
        let st = Pgvn.Driver.run Pgvn.Config.full f in
        (n, t, st.Pgvn.State.stats.Pgvn.Run_stats.value_inference_visits))
      sizes
  in
  let rec worst acc = function
    | (_, _, v1) :: ((_, _, v2) :: _ as rest) ->
        worst (max acc (float_of_int v2 /. float_of_int (max 1 v1))) rest
    | _ -> acc
  in
  let r = worst 0.0 rows in
  (rows, r, r <= 5.0)

let emit_json path suite =
  let stats = gvn_stats_pass suite in
  let ladder, worst_ratio, quadratic_ok = scaling_check () in
  let oc = open_out path in
  let pr fmt = Printf.fprintf oc fmt in
  let sep i n = if i = n - 1 then "" else "," in
  pr "{\n";
  pr "  \"schema\": \"pgvn-bench/1\",\n";
  pr "  \"scale\": %g,\n" !scale;
  let t2 = List.rev !json_table2 in
  pr "  \"table2\": [\n";
  List.iteri
    (fun i (name, d, s, b) ->
      pr "    {\"benchmark\": \"%s\", \"dense_ms\": %.3f, \"sparse_ms\": %.3f, \"basic_ms\": %.3f}%s\n"
        name (1000. *. d) (1000. *. s) (1000. *. b)
        (sep i (List.length t2)))
    t2;
  pr "  ],\n";
  pr "  \"gvn_stats\": [\n";
  List.iteri
    (fun i g ->
      pr
        "    {\"benchmark\": \"%s\", \"routines\": %d, \"passes\": %d, \"instrs\": %d, \
         \"table_probes\": %d, \"table_hits\": %d, \"arena_live\": %d, \"arena_interned\": %d, \
         \"arena_hits\": %d, \"arena_max_chain\": %d}%s\n"
        g.g_name g.g_routines g.g_passes g.g_instrs g.g_probes g.g_hits g.g_live g.g_interned
        g.g_arena_hits g.g_max_chain
        (sep i (List.length stats)))
    stats;
  pr "  ],\n";
  (* Per-benchmark rewrite-rule activity: which catalog rules fire and how
     often, under the full configuration. [const-fold] counts the engine's
     built-in constant folding, not a catalog rule, so it is excluded from
     the total. *)
  pr "  \"rules\": [\n";
  List.iteri
    (fun i g ->
      let total =
        List.fold_left
          (fun acc (name, n) -> if name = "const-fold" then acc else acc + n)
          0 g.g_fired
      in
      pr "    {\"benchmark\": \"%s\", \"total_fired\": %d, \"fired\": {" g.g_name total;
      List.iteri
        (fun j (name, n) ->
          pr "\"%s\": %d%s" name n (sep j (List.length g.g_fired)))
        g.g_fired;
      pr "}}%s\n" (sep i (List.length stats)))
    stats;
  pr "  ],\n";
  (* Code-motion placement analysis: opportunity yield and analysis time
     per benchmark (the schedule bench section's machine-readable twin). *)
  let sched = schedule_stats_pass suite in
  pr "  \"schedule\": [\n";
  List.iteri
    (fun i s ->
      pr
        "    {\"benchmark\": \"%s\", \"hoistable\": %d, \"sinkable\": %d, \
         \"speculation_blocked\": %d, \"analysis_ms\": %.3f}%s\n"
        s.s_name s.s_hoist s.s_sink s.s_blocked (1000. *. s.s_ms)
        (sep i (List.length sched)))
    sched;
  pr "  ],\n";
  (* Global code motion: certified rebuild yield and cost on optimized code
     (the gcm bench section's machine-readable twin). *)
  let gstats = gcm_stats_pass suite in
  pr "  \"gcm\": [\n";
  List.iteri
    (fun i g ->
      pr
        "    {\"benchmark\": \"%s\", \"values\": %d, \"moved\": %d, \"hoisted\": %d, \
         \"sunk\": %d, \"speculation_blocked\": %d, \"transform_ms\": %.3f}%s\n"
        g.m_name g.m_values g.m_moved g.m_hoisted g.m_sunk g.m_blocked (1000. *. g.m_ms)
        (sep i (List.length gstats)))
    gstats;
  pr "  ],\n";
  (* The predicate implication engine: decided-branch yield and cost of the
     multi-fact closure fallback versus the single-fact baseline. *)
  let pstats = pred_stats_pass suite in
  pr "  \"pred\": [\n";
  List.iteri
    (fun i p ->
      pr
        "    {\"benchmark\": \"%s\", \"baseline_decided\": %d, \"pred_decided\": %d, \
         \"delta\": %d, \"closure_queries\": %d, \"closure_decided\": %d, \
         \"baseline_ms\": %.3f, \"analysis_ms\": %.3f}%s\n"
        p.pr_name p.pr_base_decided p.pr_pred_decided
        (p.pr_pred_decided - p.pr_base_decided)
        p.pr_queries p.pr_closure_decided (1000. *. p.pr_base_ms) (1000. *. p.pr_pred_ms)
        (sep i (List.length pstats)))
    pstats;
  pr "  ],\n";
  (* The parallel service tier: pool throughput on the heavy hitters and
     the cache's repeat-run hit rate. [cores] records the host's
     recommended domain count so the schema gate can scale expectations. *)
  let par = parallel_stats_pass suite in
  pr "  \"parallel\": {\n";
  pr "    \"cores\": %d,\n" (Domain.recommended_domain_count ());
  pr "    \"domain_counts\": [1, 2, 4],\n";
  pr "    \"benchmarks\": [\n";
  List.iteri
    (fun i p ->
      pr
        "      {\"benchmark\": \"%s\", \"routines\": %d, \"rps1\": %.1f, \"rps2\": %.1f, \
         \"rps4\": %.1f, \"speedup2\": %.3f, \"speedup4\": %.3f, \"repeat_hit_rate\": %.4f}%s\n"
        p.pb_name p.pb_routines (List.assoc 1 p.pb_rps) (List.assoc 2 p.pb_rps)
        (List.assoc 4 p.pb_rps) (List.assoc 2 p.pb_speedups) (List.assoc 4 p.pb_speedups)
        p.pb_hit_rate
        (sep i (List.length par)))
    par;
  pr "    ]\n";
  pr "  },\n";
  pr "  \"scaling\": {\n";
  pr "    \"ladder\": [\n";
  List.iteri
    (fun i (n, t, v) ->
      pr "      {\"n\": %d, \"gvn_ms\": %.3f, \"vi_visits\": %d}%s\n" n (1000. *. t) v
        (sep i (List.length ladder)))
    ladder;
  pr "    ],\n";
  pr "    \"worst_visit_ratio_per_doubling\": %.2f,\n" worst_ratio;
  pr "    \"quadratic_ok\": %b\n" quadratic_ok;
  pr "  }\n";
  pr "}\n";
  close_out oc;
  Fmt.pr "@\nWrote %s (quadratic_ok=%b, worst visit ratio per doubling %.2f)@\n" path
    quadratic_ok worst_ratio

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let obs_opts, args = Cli.Cli_options.parse_obs_args args in
  let rec strip_json = function
    | [] -> []
    | "--json" :: file :: rest ->
        json_file := Some file;
        strip_json rest
    | a :: rest -> a :: strip_json rest
  in
  let args = strip_json args in
  let args =
    List.filter
      (fun a ->
        match String.index_opt a '=' with
        | Some i when String.sub a 0 i = "scale" ->
            scale := float_of_string (String.sub a (i + 1) (String.length a - i - 1));
            false
        | _ -> true)
      args
  in
  let want s = args = [] || List.mem s args in
  Fmt.pr "Predicated GVN benchmark harness (scale=%.2f)@\n" !scale;
  let suite = lazy (Workload.Suite.all ~scale:!scale ()) in
  if want "table1" then table1 (Lazy.force suite);
  if want "table2" then table2 (Lazy.force suite);
  if want "fig10" then
    figure ~name:"Figure 10: full optimistic vs emulated Click (strongest prior GVN)"
      ~against:Pgvn.Config.emulate_click (Lazy.force suite);
  if want "fig11" then
    figure ~name:"Figure 11: full optimistic vs emulated Wegman-Zadeck SCCP"
      ~against:Pgvn.Config.emulate_sccp (Lazy.force suite);
  if want "fig12" then fig12 (Lazy.force suite);
  if want "scalars" then scalars (Lazy.force suite);
  if want "fig9" then fig9 ();
  if want "fig13" then fig13 ();
  if want "ablation" then ablation (Lazy.force suite);
  if want "absint" then absint_section (Lazy.force suite);
  if want "schedule" then schedule_section (Lazy.force suite);
  if want "gcm" then gcm_section (Lazy.force suite);
  if want "pred" then pred_section (Lazy.force suite);
  if want "parallel" then parallel_section (Lazy.force suite);
  if want "validate" then validate_section (Lazy.force suite);
  if want "bechamel" then bechamel_section ();
  (match !json_file with
  | None -> ()
  | Some path -> emit_json path (Lazy.force suite));
  Cli.Cli_options.finish obs_opts (Some obs)

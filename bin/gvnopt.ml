(* gvnopt: parse mini-C files, run predicated global value numbering under
   a chosen configuration, and report — or rewrite and print — the routines.

     gvnopt file.mc                        optimize and print every routine
     gvnopt file.mc --analyze              GVN facts only (no rewriting)
     gvnopt --analyze=all file.mc          + const/range facts + static
                                           cross-check of the GVN claims
     gvnopt --preset click --stats file.mc
     gvnopt --run 1,2,3 file.mc            interpret (before and after)
     gvnopt --check file.mc                verify IR invariants before/after
     gvnopt --lint --Werror file.mc        + lint tier, warnings fail the run
     gvnopt --validate=all file.mc         certify every rewrite (translation
                                           validation: witness audit + diff)
     gvnopt --trace=out.json file.mc       write a Chrome-trace JSON profile
                                           (chrome://tracing, Perfetto)
     gvnopt --metrics file.mc              print the engine metrics snapshot
     gvnopt --rules=dump                   print the rewrite-rule catalog
     gvnopt --rules=verify                 run the rule-soundness verifier
     gvnopt --rules=off file.mc            optimize without the rule catalog
     gvnopt --schedule file.mc             certify the identity placement
                                           with the schedule-legality checker
     gvnopt --schedule=dump file.mc        per-value early/best/late blocks
                                           and speculation safety
     gvnopt --schedule=lint file.mc        hoist/sink opportunity lints
     gvnopt --gcm file.mc                  global code motion after GVN:
                                           certified placement rewrite +
                                           observable-behavior diff
     gvnopt --gcm=dump file.mc             + every move (hoist/sink)
     gvnopt --jobs=4 a.mc b.mc c.mc        batch mode: routines fan out
                                           across a 4-domain pool
     gvnopt file.mc --pred                 enable the multi-fact implication
                                           closure and cross-check its
                                           verdicts against intervals and
                                           the single-fact walk
     gvnopt --pred=dump file.mc            + each block's dominating facts
     gvnopt --pred=stats file.mc           + the closure counters
     gvnopt --serve --jobs=2               compilation service: length-
                                           prefixed routines on stdin,
                                           framed results on stdout
     gvnopt --serve=/tmp/gvn.sock          the same protocol on a Unix-
                                           domain socket (single client)
     gvnopt --cache=gvn.cache file.mc      persist the content-addressed
                                           result cache across invocations

   Every mode answers repeated routines from a content-addressed result
   cache keyed by a canonical structural hash of the SSA form plus a
   fingerprint of every flag the output depends on; misses run the full
   check/validate/crosscheck machinery and populate the cache. Routine
   outputs are rendered into per-routine buffers and concatenated in input
   order, so sequential and parallel runs are byte-identical.

   Exit codes: 0 clean; 1 diagnostics at or above the failure threshold
   (verifier errors, --Werror'd warnings, rejected rewrites, --run
   disagreement, a refuted rule under --rules=verify, a schedule-legality
   violation under --schedule=check, a refuted GCM placement or behavior
   diff under --gcm); 2 usage or parse error. In batch
   mode over several files the exit code is the worst per-file code; in
   --serve mode it is the worst per-request status. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --analyze sub-modes: which analysis's per-def facts to dump. [Aall]
   additionally runs the static cross-checker over the GVN run. *)
type analyze_mode = Agvn | Aconst | Arange | Aall

(* --schedule sub-modes: all three run the placement analysis on the input
   SSA and rewrite nothing. [Scheck] (the bare-flag default) verifies the
   identity placement with the independent legality checker. *)
type schedule_mode = Sdump | Scheck | Slint

(* --pred sub-modes: check, dump, stats — see [pred_conv] below. *)
type pred_mode = Pcheck | Pdump | Pstats

(* --gcm sub-modes: [Gcheck] (the bare-flag default) additionally diffs
   observable behavior across the motion through the interpreter; [Gdump]
   prints every move. Both certify the placement with Check.Schedule
   before rewriting. *)
type gcm_mode = Gcheck | Gdump

type action = Optimize | Analyze of analyze_mode | Schedule of schedule_mode | Pred of pred_mode

let gcm_conv =
  let parse = function
    | "check" -> Ok Gcheck
    | "dump" -> Ok Gdump
    | s -> Error (`Msg (Printf.sprintf "unknown gcm mode %S (check, dump)" s))
  in
  let print ppf m = Fmt.string ppf (match m with Gcheck -> "check" | Gdump -> "dump") in
  Arg.conv (parse, print)

let schedule_conv =
  let parse = function
    | "dump" -> Ok Sdump
    | "check" -> Ok Scheck
    | "lint" -> Ok Slint
    | s -> Error (`Msg (Printf.sprintf "unknown schedule mode %S (dump, check, lint)" s))
  in
  let print ppf m =
    Fmt.string ppf (match m with Sdump -> "dump" | Scheck -> "check" | Slint -> "lint")
  in
  Arg.conv (parse, print)

(* --pred sub-modes: all three enable the multi-fact implication closure
   in the engine and statically cross-check every closure verdict against
   the interval analysis and the single-fact walk; a contradiction fails
   the run. [Pcheck] (the bare-flag default) reports only the cross-check;
   dump adds the per-block dominating facts, stats the closure counters. *)
let pred_conv =
  let parse = function
    | "check" -> Ok Pcheck
    | "dump" -> Ok Pdump
    | "stats" -> Ok Pstats
    | s -> Error (`Msg (Printf.sprintf "unknown pred mode %S (check, dump, stats)" s))
  in
  let print ppf m =
    Fmt.string ppf (match m with Pcheck -> "check" | Pdump -> "dump" | Pstats -> "stats")
  in
  Arg.conv (parse, print)

(* --rules sub-modes: dump and verify are standalone (no input file);
   off runs the pipeline with the declarative catalog disabled. *)
type rules_mode = Rdump | Rverify | Roff

let rules_conv =
  let parse = function
    | "dump" -> Ok Rdump
    | "verify" -> Ok Rverify
    | "off" -> Ok Roff
    | s -> Error (`Msg (Printf.sprintf "unknown rules mode %S (dump, verify, off)" s))
  in
  let print ppf m =
    Fmt.string ppf (match m with Rdump -> "dump" | Rverify -> "verify" | Roff -> "off")
  in
  Arg.conv (parse, print)

let dump_rules () =
  List.iter (fun r -> Fmt.pr "%a@." Rules.Pattern.pp_rule r) Rules.catalog;
  Fmt.pr "%d rules@." (List.length Rules.catalog);
  0

(* Deterministic seed: the CI gate must fail reproducibly. *)
let verify_rules () =
  let report = Rules.Verify.verify_all ~seed:0x5eed Rules.catalog in
  Fmt.pr "%a@." Rules.Verify.pp_report report;
  if Rules.Verify.ok report then 0 else 1

let analyze_conv =
  let parse = function
    | "gvn" -> Ok Agvn
    | "const" -> Ok Aconst
    | "range" -> Ok Arange
    | "all" -> Ok Aall
    | s -> Error (`Msg (Printf.sprintf "unknown analysis %S (gvn, const, range, all)" s))
  in
  let print ppf m =
    Fmt.string ppf
      (match m with Agvn -> "gvn" | Aconst -> "const" | Arange -> "range" | Aall -> "all")
  in
  Arg.conv (parse, print)

(* The preset and pruning vocabularies live in the shared [Cli_options]
   module (bench/main.ml resolves through the same tables). *)
let preset_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Cli.Cli_options.preset_of_string s) in
  Arg.conv (parse, fun ppf _ -> Fmt.string ppf "<preset>")

let validate_conv =
  let parse s =
    match Validate.mode_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown validation mode %S (witness, diff, all)" s))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Validate.mode_to_string m))

let pruning_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Cli.Cli_options.pruning_of_string s) in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (Ssa.Construct.pruning_to_string p))

let jobs_conv =
  let parse s =
    match int_of_string_opt s with
    | Some n when n >= 1 -> Ok n
    | Some _ -> Error (`Msg "JOBS must be >= 1")
    | None -> Error (`Msg "expected an integer JOBS count")
  in
  Arg.conv (parse, Fmt.int)

(* Everything a routine's compilation depends on, bundled so the batch and
   serve paths thread one value. *)
type opts = {
  config : Pgvn.Config.t;
  pruning : Ssa.Construct.pruning;
  action : action;
  stats : bool;
  dump_input : bool;
  run_args : int array option;
  check : bool;
  lint : bool;
  werror : bool;
  validate : Validate.mode option;
  gcm : gcm_mode option;
}

(* Render a diagnostic list under the --check/--lint flags; returns true
   when the run should be considered failed. *)
let report_diag_list ppf ~lint ~werror ~stage name ds =
  let ds = Check.sort ds in
  let shown =
    if lint then ds
    else List.filter (fun d -> d.Check.Diagnostic.severity = Check.Diagnostic.Error) ds
  in
  List.iter (fun d -> Fmt.pf ppf "%s (%s): %a@." name stage Check.Diagnostic.pp d) shown;
  Check.has_errors ds
  || (werror
     && List.exists (fun d -> d.Check.Diagnostic.severity = Check.Diagnostic.Warning) ds)

let report_diagnostics ppf ~lint ~werror ~stage name f =
  report_diag_list ppf ~lint ~werror ~stage name (Check.run_all ~lint f)

(* Dump one sparse analysis's per-definition facts through the printer,
   prefixed by the blocks it proves unexecutable. *)
let dump_facts ppf f ~header ~(pp_fact : 'f Fmt.t) ~(fact : int -> 'f) ~block_exec =
  Fmt.pf ppf "--- %s facts ---@." header;
  for b = 0 to Ir.Func.num_blocks f - 1 do
    if not block_exec.(b) then Fmt.pf ppf "  block %d: unreachable@." b
  done;
  for v = 0 to Ir.Func.num_instrs f - 1 do
    if Ir.Func.defines_value (Ir.Func.instr f v) then
      Fmt.pf ppf "  @[<h>%a  ;; %a@]@." (Ir.Printer.pp_instr f) v pp_fact (fact v)
  done

(* The --schedule modes: run the placement analysis (dump, lint) and the
   independent legality checker (check) on the input SSA; nothing is
   rewritten. Returns true when the run should be considered failed. *)
let run_schedule ppf ~obs mode name f =
  let pl = Schedule.Placement.compute ?obs f in
  let s = Schedule.Placement.stats pl in
  Fmt.pf ppf
    "schedule: %d values | %d pinned (%d speculation-blocked) | %d hoistable | %d sinkable@."
    s.Schedule.Placement.values s.Schedule.Placement.pinned
    s.Schedule.Placement.speculation_blocked s.Schedule.Placement.hoistable
    s.Schedule.Placement.sinkable;
  match mode with
  | Sdump ->
      dump_facts ppf f ~header:"schedule" ~pp_fact:(Schedule.Placement.pp_fact pl)
        ~fact:(fun v -> v)
        ~block_exec:pl.Schedule.Placement.ranges.Absint.Ranges.block_exec;
      false
  | Scheck ->
      let ds =
        Obs.span_o obs ~cat:"schedule" "schedule.check" @@ fun () ->
        Check.Schedule.run f
      in
      Obs.add_o obs "schedule.violations" (List.length (Check.errors ds));
      List.iter
        (fun d -> Fmt.pf ppf "%s (schedule): %a@." name Check.Diagnostic.pp d)
        (Check.sort ds);
      Fmt.pf ppf "schedule check: %d violation(s)@." (List.length (Check.errors ds));
      Check.has_errors ds
  | Slint ->
      let ls = Schedule.Placement.lints pl in
      List.iter
        (fun d -> Fmt.pf ppf "%s (schedule): %a@." name Check.Diagnostic.pp d)
        ls;
      Fmt.pf ppf "schedule lint: %d opportunity(ies)@." (List.length ls);
      false

(* One routine, end to end, rendered into [ppf]; the caller has already
   lowered and SSA-constructed (the cache key needs the SSA form before we
   know whether this runs at all). Returns true when the routine failed. *)
let process_routine ppf ~opts ~obs ~cir ~f name =
  let failed = ref false in
  let checking = opts.check || opts.lint || opts.werror in
  let diagnose ~stage name g =
    if checking then
      Obs.span_o obs ~cat:"verify" "check" @@ fun () ->
      if report_diagnostics ppf ~lint:opts.lint ~werror:opts.werror ~stage name g then
        failed := true
  in
  Fmt.pf ppf "=== %s ===@." name;
  if opts.dump_input then Fmt.pf ppf "--- input SSA ---@.%a@." Ir.Printer.pp f;
  (* Pre-SSA lints must run on the Cir: SSA construction seeds unassigned
     registers with a shared constant 0, hiding the read. *)
  if
    opts.lint
    && report_diag_list ppf ~lint:opts.lint ~werror:opts.werror ~stage:"cir" name
         (Check.Lint.run_cir cir)
  then failed := true;
  diagnose ~stage:"input" name f;
  let st = Obs.span_o obs ~cat:"pass" "gvn" @@ fun () -> Pgvn.Driver.run ?obs opts.config f in
  let s = Pgvn.Driver.summarize st in
  Fmt.pf ppf
    "values: %d | unreachable: %d | constant: %d | classes: %d | reachable blocks: %d/%d | passes: %d@."
    s.Pgvn.Driver.values s.Pgvn.Driver.unreachable_values s.Pgvn.Driver.constant_values
    s.Pgvn.Driver.congruence_classes s.Pgvn.Driver.reachable_blocks (Ir.Func.num_blocks f)
    s.Pgvn.Driver.passes;
  if opts.stats then Fmt.pf ppf "stats: %a@." Pgvn.Run_stats.pp st.Pgvn.State.stats;
  (match opts.action with
  | Schedule mode ->
      (* Placement analysis / legality check of the input SSA; nothing is
         rewritten. *)
      if run_schedule ppf ~obs mode name f then failed := true
  | Pred mode ->
      (* The engine above ran with the implication closure enabled (main
         forces [pred_closure] on for this action); every mode replays its
         verdicts against the interval analysis and the single-fact walk,
         and a contradiction fails the run. *)
      (match mode with
      | Pcheck -> ()
      | Pdump ->
          let pf = Pred.Facts.compute f in
          Fmt.pf ppf "--- dominating facts ---@.";
          for b = 0 to Ir.Func.num_blocks f - 1 do
            match Pred.Facts.at_block pf b with
            | [] -> ()
            | fs -> Fmt.pf ppf "  block %d: %a@." b Pred.Facts.pp_facts fs
          done
      | Pstats ->
          let s = st.Pgvn.State.stats in
          Fmt.pf ppf
            "pred: %d queries | %d decided true | %d decided false | %d contradictions@."
            s.Pgvn.Run_stats.pred_closure_queries s.Pgvn.Run_stats.pred_decided_true
            s.Pgvn.Run_stats.pred_decided_false s.Pgvn.Run_stats.pred_contradictions);
      let ranges = Obs.span_o obs ~cat:"verify" "pred.crosscheck" @@ fun () ->
        Absint.Ranges.run ?obs f
      in
      let report = Absint.Crosscheck.run ~ranges st in
      Fmt.pf ppf "%a@." Absint.Crosscheck.pp_report report;
      if not (Absint.Crosscheck.ok report) then failed := true
  | Analyze mode ->
      (* Print the non-trivial congruence facts. *)
      let dump_gvn () =
        for v = 0 to Ir.Func.num_instrs f - 1 do
          if Ir.Func.defines_value (Ir.Func.instr f v) then
            if Pgvn.Driver.value_unreachable st v then Fmt.pf ppf "  v%d: unreachable@." v
            else
              match Pgvn.Driver.value_constant st v with
              | Some c -> Fmt.pf ppf "  v%d = %d@." v c
              | None -> (
                  match (Pgvn.State.cls st st.Pgvn.State.class_of.(v)).Pgvn.State.leader with
                  | Pgvn.State.Lvalue l when l <> v -> Fmt.pf ppf "  v%d == v%d@." v l
                  | _ -> ())
        done
      in
      let dump_const () =
        let res = Absint.Consts.run ?obs f in
        dump_facts ppf f ~header:"const" ~pp_fact:Absint.Konst.pp
          ~fact:(fun v -> res.Absint.Consts.facts.(v))
          ~block_exec:res.Absint.Consts.block_exec
      in
      let dump_range () = Absint.Ranges.run ?obs f in
      (match mode with
      | Agvn -> dump_gvn ()
      | Aconst -> dump_const ()
      | Arange ->
          let res = dump_range () in
          dump_facts ppf f ~header:"range" ~pp_fact:Absint.Itv.pp
            ~fact:(fun v -> res.Absint.Ranges.facts.(v))
            ~block_exec:res.Absint.Ranges.block_exec
      | Aall ->
          dump_gvn ();
          dump_const ();
          let ranges = dump_range () in
          dump_facts ppf f ~header:"range" ~pp_fact:Absint.Itv.pp
            ~fact:(fun v -> ranges.Absint.Ranges.facts.(v))
            ~block_exec:ranges.Absint.Ranges.block_exec;
          (* Static cross-check: replay the GVN run's claims against the
             interval facts; a contradiction fails the run. *)
          let report = Absint.Crosscheck.run ~ranges st in
          Fmt.pf ppf "%a@." Absint.Crosscheck.pp_report report;
          if not (Absint.Crosscheck.ok report) then failed := true)
  | Optimize ->
      let rewritten, witnesses =
        Obs.span_o obs ~cat:"pass" "rewrite" @@ fun () ->
        Transform.Apply.rebuild_witnessed st f
      in
      let dced = Obs.span_o obs ~cat:"pass" "dce" @@ fun () -> Transform.Dce.run rewritten in
      let g =
        Obs.span_o obs ~cat:"pass" "simplify-cfg" @@ fun () ->
        Transform.Simplify_cfg.fixpoint dced
      in
      (* --gcm: global code motion after the GVN rewrite + cleanup. The
         plan is certified by the independent legality checker before
         anything moves; a refuted plan reports its sched-* diagnostics,
         fails the run, and leaves the function as GVN left it. *)
      let g =
        match opts.gcm with
        | None -> g
        | Some mode ->
            let p =
              Obs.span_o obs ~cat:"schedule" "gcm.plan" @@ fun () ->
              Transform.Gcm.plan ?obs g
            in
            let diags =
              Obs.span_o obs ~cat:"verify" "gcm.certify" @@ fun () ->
              Transform.Gcm.certify p
            in
            let errors = Check.errors diags in
            Obs.add_o obs "gcm.violations" (List.length errors);
            List.iter
              (fun d -> Fmt.pf ppf "%s (gcm): %a@." name Check.Diagnostic.pp d)
              (Check.sort diags);
            if errors <> [] then begin
              Fmt.pf ppf "gcm: REFUSED (%d violation(s)); not rewritten@."
                (List.length errors);
              failed := true;
              g
            end
            else begin
              let s = Transform.Gcm.stats p in
              if mode = Gdump then
                List.iter
                  (fun (v, from_b, to_b) ->
                    Fmt.pf ppf "gcm: v%d b%d -> b%d%s@." v from_b to_b
                      (if Schedule.Placement.hoistable p.Transform.Gcm.placement v
                       then " [hoist]"
                       else if Schedule.Placement.sinkable p.Transform.Gcm.placement v
                       then " [sink]"
                       else ""))
                  (Transform.Gcm.moves p);
              let g' =
                if s.Transform.Gcm.moved = 0 then g
                else
                  Obs.span_o obs ~cat:"pass" "gcm" @@ fun () ->
                  Transform.Gcm.apply ?obs p
              in
              Fmt.pf ppf
                "gcm: %d value(s) moved (%d hoisted, %d sunk) | %d speculation-blocked@."
                s.Transform.Gcm.moved s.Transform.Gcm.hoisted s.Transform.Gcm.sunk
                s.Transform.Gcm.speculation_blocked;
              Obs.add_o obs "gcm.values" s.Transform.Gcm.values;
              Obs.add_o obs "gcm.moved" s.Transform.Gcm.moved;
              Obs.add_o obs "gcm.hoisted" s.Transform.Gcm.hoisted;
              Obs.add_o obs "gcm.sunk" s.Transform.Gcm.sunk;
              Obs.add_o obs "gcm.speculation_blocked" s.Transform.Gcm.speculation_blocked;
              (if mode = Gcheck then begin
                 (* Engine-2 diff across the motion alone: moved code must
                    be observably invisible. *)
                 let r =
                   Obs.span_o obs ~cat:"verify" "gcm.diff" @@ fun () ->
                   Validate.Equiv.check ~pass:"gcm" g g'
                 in
                 if Validate.Equiv.ok r then
                   Fmt.pf ppf "gcm diff: observably equivalent (%d runs)@." r.Validate.Equiv.runs
                 else begin
                   List.iter
                     (fun d -> Fmt.pf ppf "%s (gcm): %a@." name Check.Diagnostic.pp d)
                     (Validate.Equiv.diagnostics r);
                   Fmt.pf ppf "gcm diff: DISAGREE@.";
                   failed := true
                 end
               end);
              g'
            end
      in
      Fmt.pf ppf "--- optimized (%d -> %d instrs, %d -> %d blocks) ---@.%a@."
        (Ir.Func.num_instrs f) (Ir.Func.num_instrs g) (Ir.Func.num_blocks f)
        (Ir.Func.num_blocks g) Ir.Printer.pp g;
      diagnose ~stage:"optimized" name g;
      (match opts.validate with
      | None -> ()
      | Some mode ->
          (* Engine 1 audits the GVN rewrite's witnesses against [f];
             Engine 2 diffs observable behavior across the whole rewrite +
             cleanup. *)
          let p = Validate.certify ?obs ~mode ~pass:"gvn+cleanup" ~witnesses f g in
          let report = Validate.Report.add Validate.Report.empty p in
          Fmt.pf ppf "validate: %a@." Validate.Report.pp_summary report;
          let errors = Validate.Report.errors report in
          List.iter
            (fun d -> Fmt.pf ppf "%s (validate): %a@." name Check.Diagnostic.pp d)
            errors;
          if errors <> [] then failed := true);
      (match opts.run_args with
      | None -> ()
      | Some args ->
          let a = Ir.Interp.run f args and b = Ir.Interp.run g args in
          let agree = Ir.Interp.equal_result a b in
          Fmt.pf ppf "run(%a): input %a | optimized %a | %s@."
            Fmt.(array ~sep:(any ",") int)
            args Ir.Interp.pp_result a Ir.Interp.pp_result b
            (if agree then "agree" else "DISAGREE");
          if not agree then failed := true));
  !failed

(* The cache key's fingerprint: every flag the rendered output depends on.
   The output of everything downstream of SSA construction is a function of
   the SSA form (covered by the structural key) and these options; the
   pre-SSA cir lints additionally read the source routine, so --lint folds
   the routine itself in. Marshal is fine here: plain data, and the
   fingerprint never outlives the build's format. *)
let fingerprint ~opts (r : Ir.Ast.routine) =
  let flags =
    ( opts.config,
      opts.pruning,
      opts.action,
      opts.stats,
      opts.dump_input,
      opts.run_args,
      opts.check,
      opts.lint,
      opts.werror,
      opts.validate,
      opts.gcm )
  in
  let base = Marshal.to_string flags [] in
  if opts.lint then base ^ Marshal.to_string r [] else base

(* Compile one routine, answering from the cache when its key is known:
   returns its rendered output, whether it failed, and the routine-private
   Obs context (merged into the main one, in input order, by the caller —
   that ordering is what makes parallel reports deterministic). Cached
   values store the failure bit in their first byte, then the exact output
   text, so a hit is byte-identical to a fresh run. Runs on pool workers:
   everything here must be domain-safe. *)
let compile_one ~opts ~cache ~obs (r : Ir.Ast.routine) =
  let robs = match obs with None -> None | Some _ -> Some (Obs.create ()) in
  let cir = Ir.Lower.lower_routine r in
  let f =
    Obs.span_o robs ~cat:"pass" "ssa" @@ fun () ->
    Ssa.Construct.of_cir ~pruning:opts.pruning cir
  in
  let key = Par.Ccache.key_of ~fingerprint:(fingerprint ~opts r) f in
  match Par.Ccache.find ?obs:robs cache key with
  | Some v ->
      let failed = String.length v > 0 && v.[0] = '1' in
      (String.sub v 1 (String.length v - 1), failed, robs)
  | None ->
      let buf = Buffer.create 512 in
      let ppf = Format.formatter_of_buffer buf in
      let failed = process_routine ppf ~opts ~obs:robs ~cir ~f r.Ir.Ast.name in
      Format.pp_print_flush ppf ();
      let out = Buffer.contents buf in
      Par.Ccache.add ?obs:robs cache key ((if failed then "1" else "0") ^ out);
      (out, failed, robs)

let merge_robs ~obs results =
  Array.iter
    (fun (_, _, robs) ->
      match (obs, robs) with
      | Some dst, Some src -> Obs.merge_into ~dst src
      | _ -> ())
    results

(* Batch mode: parse every file up front (sequential — the parser is the
   cheap part), fan the routines out across the pool, then print outputs in
   input order. A file that fails to parse reports on stderr and contributes
   exit 2; the rest of the batch still runs. *)
let run_batch ~opts ~pool ~cache ~obs paths =
  let worst = ref 0 in
  let parsed =
    List.map
      (fun path ->
        Obs.span_o obs ~cat:"pipeline" "parse" @@ fun () ->
        match Ir.Parser.parse_program (read_file path) with
        | routines -> routines
        | exception Ir.Parser.Error (msg, line) ->
            Fmt.epr "%s:%d: parse error: %s@." path line msg;
            worst := max !worst 2;
            []
        | exception Ir.Lexer.Error (msg, line) ->
            Fmt.epr "%s:%d: lex error: %s@." path line msg;
            worst := max !worst 2;
            [])
      paths
  in
  let work = Array.of_list (List.concat parsed) in
  let results = Par.Pool.map pool (fun r -> compile_one ~opts ~cache ~obs r) work in
  merge_robs ~obs results;
  Array.iter
    (fun (out, failed, _) ->
      print_string out;
      if failed then worst := max !worst 1)
    results;
  flush stdout;
  !worst

(* ------------------------------------------------------------------ *)
(* --serve: the streaming compilation service. Framing (both directions):
   a 4-byte big-endian byte count, then that many bytes. A request payload
   is mini-C source (any number of routines); a response payload is one
   status byte — '0' clean, '1' diagnostics failed the request, '2' parse
   error — followed by exactly the text batch mode would print for those
   routines (or the parse error message after status '2'). The server
   answers requests in order and keeps serving after failed requests; the
   process exits with the worst status served (EOF on a frame boundary is
   a clean shutdown, a truncated frame is a protocol error, exit 2). *)

let max_frame = 1 lsl 26 (* 64 MiB: refuse absurd lengths rather than allocate *)

let read_frame ic =
  match really_input_string ic 4 with
  | exception End_of_file -> None (* clean EOF between frames *)
  | hdr ->
      let b i = Char.code hdr.[i] in
      let len = (b 0 lsl 24) lor (b 1 lsl 16) lor (b 2 lsl 8) lor b 3 in
      if len > max_frame then failwith (Printf.sprintf "frame of %d bytes exceeds the limit" len)
      else Some (really_input_string ic len)

let write_frame oc payload =
  let len = String.length payload in
  output_byte oc ((len lsr 24) land 0xff);
  output_byte oc ((len lsr 16) land 0xff);
  output_byte oc ((len lsr 8) land 0xff);
  output_byte oc (len land 0xff);
  output_string oc payload;
  flush oc

let serve_frames ~opts ~pool ~cache ~obs ic oc =
  let worst = ref 0 in
  let respond src =
    match Ir.Parser.parse_program src with
    | exception Ir.Parser.Error (msg, line) ->
        (2, Printf.sprintf "<stdin>:%d: parse error: %s\n" line msg)
    | exception Ir.Lexer.Error (msg, line) ->
        (2, Printf.sprintf "<stdin>:%d: lex error: %s\n" line msg)
    | routines ->
        let results =
          Par.Pool.map pool (fun r -> compile_one ~opts ~cache ~obs r) (Array.of_list routines)
        in
        merge_robs ~obs results;
        let buf = Buffer.create 512 in
        let failed = ref false in
        Array.iter
          (fun (out, f, _) ->
            Buffer.add_string buf out;
            if f then failed := true)
          results;
        ((if !failed then 1 else 0), Buffer.contents buf)
  in
  let rec loop () =
    match read_frame ic with
    | None -> !worst
    | Some src ->
        let status, body = respond src in
        worst := max !worst status;
        write_frame oc (string_of_int status ^ body);
        loop ()
  in
  match loop () with
  | code -> code
  | exception End_of_file ->
      Fmt.epr "gvnopt: --serve: truncated frame@.";
      2
  | exception Failure msg ->
      Fmt.epr "gvnopt: --serve: %s@." msg;
      2

let serve ~opts ~pool ~cache ~obs () =
  set_binary_mode_in stdin true;
  set_binary_mode_out stdout true;
  serve_frames ~opts ~pool ~cache ~obs stdin stdout

(* --serve=SOCKET: the same protocol over a Unix-domain socket. The server
   binds the path (replacing a stale socket file), accepts a single client,
   serves its frames until the client shuts the connection down, and exits
   with the worst status served — the socket-transport mirror of the
   stdin/stdout contract, byte-identical framing in both directions. The
   socket file is removed on exit. A stale socket file at the path is
   replaced; anything else there is refused (exit 2) — a mistyped
   [--serve file.mc] must not clobber a source file. *)
let serve_socket ~opts ~pool ~cache ~obs path =
  match
    (match Unix.stat path with
    | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
    | _ -> failwith "the path exists and is not a socket"
    | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
    let sock = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind sock (Unix.ADDR_UNIX path);
    Unix.listen sock 1;
    sock
  with
  | exception Unix.Unix_error (e, _, _) ->
      Fmt.epr "gvnopt: --serve=%s: %s@." path (Unix.error_message e);
      2
  | exception Failure msg ->
      Fmt.epr "gvnopt: --serve=%s: %s@." path msg;
      2
  | sock ->
      let fd, _ = Unix.accept sock in
      let ic = Unix.in_channel_of_descr fd and oc = Unix.out_channel_of_descr fd in
      set_binary_mode_in ic true;
      set_binary_mode_out oc true;
      let code = serve_frames ~opts ~pool ~cache ~obs ic oc in
      (try Unix.close fd with Unix.Unix_error (_, _, _) -> ());
      (try Unix.close sock with Unix.Unix_error (_, _, _) -> ());
      (try Unix.unlink path with Unix.Unix_error (_, _, _) -> ());
      code

(* ------------------------------------------------------------------ *)

let cmd =
  (* Optional at the cmdliner layer only: --rules=dump|verify and --serve
     run without input files; every other mode errors out (exit 2) when
     none is given, preserving the old required-positional contract. *)
  let paths = Arg.(value & pos_all file [] & info [] ~docv:"FILE.mc") in
  let preset =
    Arg.(value & opt preset_conv Pgvn.Config.full & info [ "preset"; "p" ] ~doc:"GVN preset: full, balanced, pessimistic, basic, dense, click, sccp, awz.")
  in
  let complete =
    Arg.(value & flag & info [ "complete" ] ~doc:"Use the complete algorithm (incremental reachable dominator tree).")
  in
  let pruning =
    Arg.(value & opt pruning_conv Ssa.Construct.Semi_pruned & info [ "pruning" ] ~doc:"SSA construction: minimal, semi, pruned.")
  in
  let analyze =
    Arg.(
      value
      & opt ~vopt:(Some Agvn) (some analyze_conv) None
      & info [ "analyze"; "a" ]
          ~doc:
            "Report facts; do not rewrite. $(b,gvn) (the default when the flag \
             is given bare) prints the engine's congruence facts; $(b,const) \
             and $(b,range) print the sparse constant/interval analysis's \
             per-definition facts; $(b,all) prints everything and statically \
             cross-checks the GVN run's claims against the interval facts \
             (a contradiction fails the run).")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics.") in
  let dump_input = Arg.(value & flag & info [ "dump-input" ] ~doc:"Print the input SSA form.") in
  let check_flag =
    Arg.(value & flag & info [ "check" ] ~doc:"Run the IR verifier on the input SSA and on the optimized routine; report Error-severity diagnostics and exit non-zero if any fire.")
  in
  let lint_flag =
    Arg.(value & flag & info [ "lint" ] ~doc:"Like --check, also reporting the warning/info lint tier (unreachable blocks, dead pure instructions, trivial phis, ...).")
  in
  let werror_flag =
    Arg.(value & flag & info [ "Werror" ] ~doc:"Treat Warning-severity diagnostics as failures (implies --check).")
  in
  let validate_flag =
    Arg.(
      value
      & opt ~vopt:(Some Validate.All) (some validate_conv) None
      & info [ "validate" ]
          ~doc:
            "Translation validation of the optimization: $(b,witness) audits every \
             GVN rewrite against an independent oracle GVN, $(b,diff) compares \
             observable behavior through the interpreter, $(b,all) (the default \
             when the flag is given bare) does both. Rejected rewrites are \
             reported with their location and fail the run.")
  in
  let run_args =
    let ints_conv =
      Arg.conv
        ( (fun s ->
            try Ok (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))
            with _ -> Error (`Msg "expected comma-separated integers")),
          fun ppf _ -> Fmt.string ppf "<ints>" )
    in
    Arg.(value & opt (some ints_conv) None & info [ "run" ] ~doc:"Interpret with the given arguments (e.g. --run 1,2,3).")
  in
  let disable name =
    Arg.(value & flag & info [ "no-" ^ name ] ~doc:(Printf.sprintf "Disable %s." name))
  in
  let no_reassoc = disable "reassociation" in
  let no_pi = disable "predicate-inference" in
  let no_vi = disable "value-inference" in
  let no_pp = disable "phi-predication" in
  let no_sparse = disable "sparse" in
  let trace_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome-trace JSON profile of the run to $(docv) (open in \
             chrome://tracing or Perfetto). Spans cover parsing, SSA \
             construction, each optimization pass, and the GVN engine's \
             internal sweeps.")
  in
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the engine metrics snapshot (worklist touches, table \
             probes/hits, arena occupancy, cache hit/miss counters, latency \
             histograms) after processing.")
  in
  let schedule_flag =
    Arg.(
      value
      & opt ~vopt:(Some Scheck) (some schedule_conv) None
      & info [ "schedule" ]
          ~doc:
            "Code-motion placement analysis of the input SSA; do not rewrite. \
             $(b,check) (the default when the flag is given bare) verifies the \
             identity placement with the independent schedule-legality checker \
             and fails the run on any violation; $(b,dump) prints each value's \
             early/best/late blocks, loop depths and speculation-safety class; \
             $(b,lint) prints the hoist/sink opportunity lints \
             (lint-loop-invariant, lint-sinkable).")
  in
  let gcm_flag =
    Arg.(
      value
      & opt ~vopt:(Some Gcheck) (some gcm_conv) None
      & info [ "gcm" ]
          ~doc:
            "Global code motion (Click '95) after the GVN rewrite: move every \
             value whose speculation-safety class permits it to its best legal \
             block (hoisting loop-invariant code, sinking values toward their \
             uses). The placement is certified by the independent \
             schedule-legality checker before anything moves; a refuted plan \
             reports its sched-* diagnostics and fails the run (exit 1) \
             without rewriting. $(b,check) (the default when the flag is \
             given bare) additionally diffs observable behavior across the \
             motion through the interpreter; $(b,dump) prints every move. \
             Requires the optimizing mode (conflicts with $(b,--analyze), \
             $(b,--schedule) and $(b,--pred)).")
  in
  let pred_flag =
    Arg.(
      value
      & opt ~vopt:(Some Pcheck) (some pred_conv) None
      & info [ "pred" ]
          ~doc:
            "Run the engine with the multi-fact predicate-implication closure \
             enabled and statically cross-check every closure verdict against \
             the interval analysis and the single-fact dominating-edge walk; \
             a contradiction fails the run (exit 1). $(b,check) (the default \
             when the flag is given bare) reports only the cross-check; \
             $(b,dump) also prints each block's dominating facts; $(b,stats) \
             also prints the closure counters. Nothing is rewritten.")
  in
  let rules_flag =
    Arg.(
      value
      & opt (some rules_conv) None
      & info [ "rules" ]
          ~doc:
            "Rewrite-rule catalog control: $(b,dump) prints every rule of the \
             declarative catalog and exits; $(b,verify) runs the static \
             rule-soundness verifier (exhaustive small-width check, full-width \
             fuzzing, catalog lints) and exits non-zero on any refuted rule or \
             fatal lint; $(b,off) optimizes $(i,FILE.mc) with the catalog \
             disabled (trap-refusing constant folding only).")
  in
  let jobs_flag =
    Arg.(
      value
      & opt jobs_conv 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Compile routines on an $(docv)-domain work-stealing pool (the \
             calling domain plus $(docv)-1 spawned ones). Outputs are emitted \
             in input order and are byte-identical to a sequential run; \
             $(b,--jobs=1) (the default) spawns nothing.")
  in
  let serve_flag =
    Arg.(
      value
      & opt ~vopt:(Some "") (some string) None
      & info [ "serve" ] ~docv:"SOCKET"
          ~doc:
            "Run as a compilation service: read length-prefixed mini-C \
             requests (4-byte big-endian length, then the source) and write \
             framed responses (4-byte big-endian length, then a status byte \
             '0'/'1'/'2', then the batch-mode output). Bare $(b,--serve) \
             speaks the protocol on stdin/stdout; $(b,--serve=)$(docv) binds \
             a Unix-domain socket at $(docv) instead, accepts a single \
             client, and removes the socket file on exit. Takes no \
             $(i,FILE.mc) arguments and conflicts with $(b,--metrics), whose \
             report would corrupt the response stream. Exits with the worst \
             status served.")
  in
  let cache_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "cache" ] ~docv:"FILE"
          ~doc:
            "Persist the content-addressed result cache: load $(docv) at \
             startup (a missing or corrupted file is a cold cache) and save \
             it back at exit. Within one invocation the in-memory tier always \
             answers repeated routines, with or without this flag.")
  in
  let main preset complete pruning analyze stats dump_input run_args check lint werror validate nr npi nvi npp nsp trace_file metrics rules schedule pred gcm jobs serve_path cache_file paths =
    let toggles =
      {
        Cli.Cli_options.complete;
        no_reassociation = nr;
        no_predicate_inference = npi;
        no_value_inference = nvi;
        no_phi_predication = npp;
        no_sparse = nsp;
      }
    in
    let config = Cli.Cli_options.apply_toggles toggles preset in
    let config =
      match rules with
      | Some Roff -> { config with Pgvn.Config.rules = false }
      | _ -> config
    in
    let serve_mode = serve_path <> None in
    match rules with
    | Some Rdump -> dump_rules ()
    | Some Rverify -> verify_rules ()
    | _ ->
        if
          List.length
            (List.filter Fun.id [ analyze <> None; schedule <> None; pred <> None ])
          > 1
        then begin
          Fmt.epr "gvnopt: --analyze, --schedule and --pred are mutually exclusive@.";
          2
        end
        else if
          gcm <> None && (analyze <> None || schedule <> None || pred <> None)
        then begin
          Fmt.epr
            "gvnopt: --gcm rewrites and conflicts with the report-only modes \
             (--analyze, --schedule, --pred)@.";
          2
        end
        else if serve_mode && paths <> [] then begin
          Fmt.epr "gvnopt: --serve reads routines from stdin and takes no FILE.mc argument@.";
          2
        end
        else if serve_mode && metrics then begin
          Fmt.epr "gvnopt: --serve and --metrics are mutually exclusive (the metrics report would corrupt the response stream)@.";
          2
        end
        else if (not serve_mode) && paths = [] then begin
          Fmt.epr "gvnopt: required argument FILE.mc is missing@.";
          2
        end
        else begin
          let action =
            match (analyze, schedule, pred) with
            | Some m, _, _ -> Analyze m
            | _, Some m, _ -> Schedule m
            | _, _, Some m -> Pred m
            | None, None, None -> Optimize
          in
          (* The --pred cross-check replays the closure's verdicts: the
             engine must actually produce them. *)
          let config =
            if pred <> None then { config with Pgvn.Config.pred_closure = true }
            else config
          in
          let opts =
            { config; pruning; action; stats; dump_input; run_args; check; lint; werror; validate; gcm }
          in
          let obs_opts = { Cli.Cli_options.trace_file; metrics } in
          let obs = Cli.Cli_options.obs_of obs_opts in
          let cache =
            match cache_file with
            | Some p -> Par.Ccache.load p
            | None -> Par.Ccache.create ()
          in
          let code =
            Par.Pool.with_pool ~domains:jobs (fun pool ->
                match serve_path with
                | Some "" -> serve ~opts ~pool ~cache ~obs ()
                | Some path -> serve_socket ~opts ~pool ~cache ~obs path
                | None -> run_batch ~opts ~pool ~cache ~obs paths)
          in
          (match cache_file with Some p -> Par.Ccache.save cache p | None -> ());
          Cli.Cli_options.finish obs_opts obs;
          code
        end
  in
  let term =
    Term.(
      const main $ preset $ complete $ pruning $ analyze $ stats $ dump_input $ run_args
      $ check_flag $ lint_flag $ werror_flag $ validate_flag
      $ no_reassoc $ no_pi $ no_vi $ no_pp $ no_sparse $ trace_flag $ metrics_flag
      $ rules_flag $ schedule_flag $ pred_flag $ gcm_flag $ jobs_flag $ serve_flag $ cache_flag $ paths)
  in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success (no diagnostics at the failure threshold).";
      Cmd.Exit.info 1
        ~doc:
          "on diagnostics at or above the failure threshold: verifier errors, \
           warnings under $(b,--Werror), rewrites rejected under $(b,--validate), \
           schedule-legality violations under $(b,--schedule=check), a refuted \
           GCM placement or behavior diff under $(b,--gcm), \
           or a $(b,--run) disagreement.";
      Cmd.Exit.info 2 ~doc:"on usage or parse errors.";
    ]
  in
  Cmd.v
    (Cmd.info "gvnopt" ~doc:"Predicated global value numbering for mini-C routines" ~exits)
    term

(* Pin the documented contract: cmdliner's own split of CLI errors (124) vs
   term errors would leak through [eval']; collapse every usage-level
   failure — unknown flag, bad option value, missing or nonexistent file —
   to exit 2. *)
let () =
  exit
    (match Cmd.eval_value cmd with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> 0
    | Error (`Parse | `Term | `Exn) -> 2)

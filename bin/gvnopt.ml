(* gvnopt: parse a mini-C file, run predicated global value numbering under
   a chosen configuration, and report — or rewrite and print — the routine.

     gvnopt file.mc                        optimize and print every routine
     gvnopt file.mc --analyze              GVN facts only (no rewriting)
     gvnopt --analyze=all file.mc          + const/range facts + static
                                           cross-check of the GVN claims
     gvnopt --preset click --stats file.mc
     gvnopt --run 1,2,3 file.mc            interpret (before and after)
     gvnopt --check file.mc                verify IR invariants before/after
     gvnopt --lint --Werror file.mc        + lint tier, warnings fail the run
     gvnopt --validate=all file.mc         certify every rewrite (translation
                                           validation: witness audit + diff)
     gvnopt --trace=out.json file.mc       write a Chrome-trace JSON profile
                                           (chrome://tracing, Perfetto)
     gvnopt --metrics file.mc              print the engine metrics snapshot
     gvnopt --rules=dump                   print the rewrite-rule catalog
     gvnopt --rules=verify                 run the rule-soundness verifier
     gvnopt --rules=off file.mc            optimize without the rule catalog
     gvnopt --schedule file.mc             certify the identity placement
                                           with the schedule-legality checker
     gvnopt --schedule=dump file.mc        per-value early/best/late blocks
                                           and speculation safety
     gvnopt --schedule=lint file.mc        hoist/sink opportunity lints

   Exit codes: 0 clean; 1 diagnostics at or above the failure threshold
   (verifier errors, --Werror'd warnings, rejected rewrites, --run
   disagreement, a refuted rule under --rules=verify, a schedule-legality
   violation under --schedule=check); 2 usage or parse error. *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* --analyze sub-modes: which analysis's per-def facts to dump. [Aall]
   additionally runs the static cross-checker over the GVN run. *)
type analyze_mode = Agvn | Aconst | Arange | Aall

(* --schedule sub-modes: all three run the placement analysis on the input
   SSA and rewrite nothing. [Scheck] (the bare-flag default) verifies the
   identity placement with the independent legality checker. *)
type schedule_mode = Sdump | Scheck | Slint

type action = Optimize | Analyze of analyze_mode | Schedule of schedule_mode

let schedule_conv =
  let parse = function
    | "dump" -> Ok Sdump
    | "check" -> Ok Scheck
    | "lint" -> Ok Slint
    | s -> Error (`Msg (Printf.sprintf "unknown schedule mode %S (dump, check, lint)" s))
  in
  let print ppf m =
    Fmt.string ppf (match m with Sdump -> "dump" | Scheck -> "check" | Slint -> "lint")
  in
  Arg.conv (parse, print)

(* --rules sub-modes: dump and verify are standalone (no input file);
   off runs the pipeline with the declarative catalog disabled. *)
type rules_mode = Rdump | Rverify | Roff

let rules_conv =
  let parse = function
    | "dump" -> Ok Rdump
    | "verify" -> Ok Rverify
    | "off" -> Ok Roff
    | s -> Error (`Msg (Printf.sprintf "unknown rules mode %S (dump, verify, off)" s))
  in
  let print ppf m =
    Fmt.string ppf (match m with Rdump -> "dump" | Rverify -> "verify" | Roff -> "off")
  in
  Arg.conv (parse, print)

let dump_rules () =
  List.iter (fun r -> Fmt.pr "%a@." Rules.Pattern.pp_rule r) Rules.catalog;
  Fmt.pr "%d rules@." (List.length Rules.catalog);
  0

(* Deterministic seed: the CI gate must fail reproducibly. *)
let verify_rules () =
  let report = Rules.Verify.verify_all ~seed:0x5eed Rules.catalog in
  Fmt.pr "%a@." Rules.Verify.pp_report report;
  if Rules.Verify.ok report then 0 else 1

let analyze_conv =
  let parse = function
    | "gvn" -> Ok Agvn
    | "const" -> Ok Aconst
    | "range" -> Ok Arange
    | "all" -> Ok Aall
    | s -> Error (`Msg (Printf.sprintf "unknown analysis %S (gvn, const, range, all)" s))
  in
  let print ppf m =
    Fmt.string ppf
      (match m with Agvn -> "gvn" | Aconst -> "const" | Arange -> "range" | Aall -> "all")
  in
  Arg.conv (parse, print)

(* The preset and pruning vocabularies live in the shared [Cli_options]
   module (bench/main.ml resolves through the same tables). *)
let preset_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Cli.Cli_options.preset_of_string s) in
  Arg.conv (parse, fun ppf _ -> Fmt.string ppf "<preset>")

let validate_conv =
  let parse s =
    match Validate.mode_of_string s with
    | Some m -> Ok m
    | None -> Error (`Msg (Printf.sprintf "unknown validation mode %S (witness, diff, all)" s))
  in
  Arg.conv (parse, fun ppf m -> Fmt.string ppf (Validate.mode_to_string m))

let pruning_conv =
  let parse s = Result.map_error (fun m -> `Msg m) (Cli.Cli_options.pruning_of_string s) in
  Arg.conv (parse, fun ppf p -> Fmt.string ppf (Ssa.Construct.pruning_to_string p))

(* Render a diagnostic list under the --check/--lint flags; returns true
   when the run should be considered failed. *)
let report_diag_list ~lint ~werror ~stage name ds =
  let ds = Check.sort ds in
  let shown =
    if lint then ds
    else List.filter (fun d -> d.Check.Diagnostic.severity = Check.Diagnostic.Error) ds
  in
  List.iter (fun d -> Fmt.pr "%s (%s): %a@." name stage Check.Diagnostic.pp d) shown;
  Check.has_errors ds
  || (werror
     && List.exists (fun d -> d.Check.Diagnostic.severity = Check.Diagnostic.Warning) ds)

let report_diagnostics ~lint ~werror ~stage name f =
  report_diag_list ~lint ~werror ~stage name (Check.run_all ~lint f)

(* Dump one sparse analysis's per-definition facts through the printer,
   prefixed by the blocks it proves unexecutable. *)
let dump_facts (type t) f ~header ~(pp_fact : t Fmt.t) ~(fact : int -> t) ~block_exec =
  Fmt.pr "--- %s facts ---@." header;
  for b = 0 to Ir.Func.num_blocks f - 1 do
    if not block_exec.(b) then Fmt.pr "  block %d: unreachable@." b
  done;
  for v = 0 to Ir.Func.num_instrs f - 1 do
    if Ir.Func.defines_value (Ir.Func.instr f v) then
      Fmt.pr "  @[<h>%a  ;; %a@]@." (Ir.Printer.pp_instr f) v pp_fact (fact v)
  done

(* The --schedule modes: run the placement analysis (dump, lint) and the
   independent legality checker (check) on the input SSA; nothing is
   rewritten. Returns true when the run should be considered failed. *)
let run_schedule ~obs mode name f =
  let pl = Schedule.Placement.compute ?obs f in
  let s = Schedule.Placement.stats pl in
  Fmt.pr
    "schedule: %d values | %d pinned (%d speculation-blocked) | %d hoistable | %d sinkable@."
    s.Schedule.Placement.values s.Schedule.Placement.pinned
    s.Schedule.Placement.speculation_blocked s.Schedule.Placement.hoistable
    s.Schedule.Placement.sinkable;
  match mode with
  | Sdump ->
      dump_facts f ~header:"schedule" ~pp_fact:(Schedule.Placement.pp_fact pl)
        ~fact:(fun v -> v)
        ~block_exec:pl.Schedule.Placement.ranges.Absint.Ranges.block_exec;
      false
  | Scheck ->
      let ds =
        Obs.span_o obs ~cat:"schedule" "schedule.check" @@ fun () ->
        Check.Schedule.run f
      in
      Obs.add_o obs "schedule.violations" (List.length (Check.errors ds));
      List.iter
        (fun d -> Fmt.pr "%s (schedule): %a@." name Check.Diagnostic.pp d)
        (Check.sort ds);
      Fmt.pr "schedule check: %d violation(s)@." (List.length (Check.errors ds));
      Check.has_errors ds
  | Slint ->
      let ls = Schedule.Placement.lints pl in
      List.iter
        (fun d -> Fmt.pr "%s (schedule): %a@." name Check.Diagnostic.pp d)
        ls;
      Fmt.pr "schedule lint: %d opportunity(ies)@." (List.length ls);
      false

let process ~config ~pruning ~action ~stats ~dump_input ~run_args ~check ~lint ~werror
    ~validate ~obs path =
  let src = read_file path in
  let routines =
    Obs.span_o obs ~cat:"pipeline" "parse" @@ fun () -> Ir.Parser.parse_program src
  in
  let failed = ref false in
  let checking = check || lint || werror in
  let diagnose ~stage name f =
    if checking then
      Obs.span_o obs ~cat:"verify" "check" @@ fun () ->
      if report_diagnostics ~lint ~werror ~stage name f then failed := true
  in
  List.iter
    (fun r ->
      let cir = Ir.Lower.lower_routine r in
      let f =
        Obs.span_o obs ~cat:"pass" "ssa" @@ fun () -> Ssa.Construct.of_cir ~pruning cir
      in
      Fmt.pr "=== %s ===@." r.Ir.Ast.name;
      if dump_input then Fmt.pr "--- input SSA ---@.%a@." Ir.Printer.pp f;
      (* Pre-SSA lints must run on the Cir: SSA construction seeds
         unassigned registers with a shared constant 0, hiding the read. *)
      if lint && report_diag_list ~lint ~werror ~stage:"cir" r.Ir.Ast.name
                   (Check.Lint.run_cir cir)
      then failed := true;
      diagnose ~stage:"input" r.Ir.Ast.name f;
      let st =
        Obs.span_o obs ~cat:"pass" "gvn" @@ fun () -> Pgvn.Driver.run ?obs config f
      in
      let s = Pgvn.Driver.summarize st in
      Fmt.pr
        "values: %d | unreachable: %d | constant: %d | classes: %d | reachable blocks: %d/%d | passes: %d@."
        s.Pgvn.Driver.values s.Pgvn.Driver.unreachable_values s.Pgvn.Driver.constant_values
        s.Pgvn.Driver.congruence_classes s.Pgvn.Driver.reachable_blocks (Ir.Func.num_blocks f)
        s.Pgvn.Driver.passes;
      if stats then Fmt.pr "stats: %a@." Pgvn.Run_stats.pp st.Pgvn.State.stats;
      (match action with
      | Schedule mode ->
          (* Placement analysis / legality check of the input SSA; nothing
             is rewritten. *)
          if run_schedule ~obs mode r.Ir.Ast.name f then failed := true
      | Analyze mode ->
          (* Print the non-trivial congruence facts. *)
          let dump_gvn () =
            for v = 0 to Ir.Func.num_instrs f - 1 do
              if Ir.Func.defines_value (Ir.Func.instr f v) then
                if Pgvn.Driver.value_unreachable st v then Fmt.pr "  v%d: unreachable@." v
                else
                  match Pgvn.Driver.value_constant st v with
                  | Some c -> Fmt.pr "  v%d = %d@." v c
                  | None -> (
                      match (Pgvn.State.cls st st.Pgvn.State.class_of.(v)).Pgvn.State.leader with
                      | Pgvn.State.Lvalue l when l <> v -> Fmt.pr "  v%d == v%d@." v l
                      | _ -> ())
            done
          in
          let dump_const () =
            let res = Absint.Consts.run ?obs f in
            dump_facts f ~header:"const" ~pp_fact:Absint.Konst.pp
              ~fact:(fun v -> res.Absint.Consts.facts.(v))
              ~block_exec:res.Absint.Consts.block_exec
          in
          let dump_range () = Absint.Ranges.run ?obs f in
          (match mode with
          | Agvn -> dump_gvn ()
          | Aconst -> dump_const ()
          | Arange ->
              let res = dump_range () in
              dump_facts f ~header:"range" ~pp_fact:Absint.Itv.pp
                ~fact:(fun v -> res.Absint.Ranges.facts.(v))
                ~block_exec:res.Absint.Ranges.block_exec
          | Aall ->
              dump_gvn ();
              dump_const ();
              let ranges = dump_range () in
              dump_facts f ~header:"range" ~pp_fact:Absint.Itv.pp
                ~fact:(fun v -> ranges.Absint.Ranges.facts.(v))
                ~block_exec:ranges.Absint.Ranges.block_exec;
              (* Static cross-check: replay the GVN run's claims against
                 the interval facts; a contradiction fails the run. *)
              let report = Absint.Crosscheck.run ~ranges st in
              Fmt.pr "%a@." Absint.Crosscheck.pp_report report;
              if not (Absint.Crosscheck.ok report) then failed := true)
      | Optimize ->
          let rewritten, witnesses =
            Obs.span_o obs ~cat:"pass" "rewrite" @@ fun () ->
            Transform.Apply.rebuild_witnessed st f
          in
          let dced = Obs.span_o obs ~cat:"pass" "dce" @@ fun () -> Transform.Dce.run rewritten in
          let g =
            Obs.span_o obs ~cat:"pass" "simplify-cfg" @@ fun () ->
            Transform.Simplify_cfg.fixpoint dced
          in
          Fmt.pr "--- optimized (%d -> %d instrs, %d -> %d blocks) ---@.%a@."
            (Ir.Func.num_instrs f) (Ir.Func.num_instrs g) (Ir.Func.num_blocks f)
            (Ir.Func.num_blocks g) Ir.Printer.pp g;
          diagnose ~stage:"optimized" r.Ir.Ast.name g;
          (match validate with
          | None -> ()
          | Some mode ->
              (* Engine 1 audits the GVN rewrite's witnesses against [f];
                 Engine 2 diffs observable behavior across the whole
                 rewrite + cleanup. *)
              let p = Validate.certify ?obs ~mode ~pass:"gvn+cleanup" ~witnesses f g in
              let report = Validate.Report.add Validate.Report.empty p in
              Fmt.pr "validate: %a@." Validate.Report.pp_summary report;
              let errors = Validate.Report.errors report in
              List.iter
                (fun d -> Fmt.pr "%s (validate): %a@." r.Ir.Ast.name Check.Diagnostic.pp d)
                errors;
              if errors <> [] then failed := true);
          (match run_args with
          | None -> ()
          | Some args ->
              let a = Ir.Interp.run f args and b = Ir.Interp.run g args in
              let agree = Ir.Interp.equal_result a b in
              Fmt.pr "run(%a): input %a | optimized %a | %s@."
                Fmt.(array ~sep:(any ",") int)
                args Ir.Interp.pp_result a Ir.Interp.pp_result b
                (if agree then "agree" else "DISAGREE");
              if not agree then failed := true)))
    routines;
  if !failed then 1 else 0

let cmd =
  (* Optional at the cmdliner layer only: --rules=dump|verify run without
     an input file; every other mode errors out (exit 2) when it is
     missing, preserving the old required-positional contract. *)
  let path = Arg.(value & pos 0 (some file) None & info [] ~docv:"FILE.mc") in
  let preset =
    Arg.(value & opt preset_conv Pgvn.Config.full & info [ "preset"; "p" ] ~doc:"GVN preset: full, balanced, pessimistic, basic, dense, click, sccp, awz.")
  in
  let complete =
    Arg.(value & flag & info [ "complete" ] ~doc:"Use the complete algorithm (incremental reachable dominator tree).")
  in
  let pruning =
    Arg.(value & opt pruning_conv Ssa.Construct.Semi_pruned & info [ "pruning" ] ~doc:"SSA construction: minimal, semi, pruned.")
  in
  let analyze =
    Arg.(
      value
      & opt ~vopt:(Some Agvn) (some analyze_conv) None
      & info [ "analyze"; "a" ]
          ~doc:
            "Report facts; do not rewrite. $(b,gvn) (the default when the flag \
             is given bare) prints the engine's congruence facts; $(b,const) \
             and $(b,range) print the sparse constant/interval analysis's \
             per-definition facts; $(b,all) prints everything and statically \
             cross-checks the GVN run's claims against the interval facts \
             (a contradiction fails the run).")
  in
  let stats = Arg.(value & flag & info [ "stats" ] ~doc:"Print engine statistics.") in
  let dump_input = Arg.(value & flag & info [ "dump-input" ] ~doc:"Print the input SSA form.") in
  let check_flag =
    Arg.(value & flag & info [ "check" ] ~doc:"Run the IR verifier on the input SSA and on the optimized routine; report Error-severity diagnostics and exit non-zero if any fire.")
  in
  let lint_flag =
    Arg.(value & flag & info [ "lint" ] ~doc:"Like --check, also reporting the warning/info lint tier (unreachable blocks, dead pure instructions, trivial phis, ...).")
  in
  let werror_flag =
    Arg.(value & flag & info [ "Werror" ] ~doc:"Treat Warning-severity diagnostics as failures (implies --check).")
  in
  let validate_flag =
    Arg.(
      value
      & opt ~vopt:(Some Validate.All) (some validate_conv) None
      & info [ "validate" ]
          ~doc:
            "Translation validation of the optimization: $(b,witness) audits every \
             GVN rewrite against an independent oracle GVN, $(b,diff) compares \
             observable behavior through the interpreter, $(b,all) (the default \
             when the flag is given bare) does both. Rejected rewrites are \
             reported with their location and fail the run.")
  in
  let run_args =
    let ints_conv =
      Arg.conv
        ( (fun s ->
            try Ok (Array.of_list (List.map int_of_string (String.split_on_char ',' s)))
            with _ -> Error (`Msg "expected comma-separated integers")),
          fun ppf _ -> Fmt.string ppf "<ints>" )
    in
    Arg.(value & opt (some ints_conv) None & info [ "run" ] ~doc:"Interpret with the given arguments (e.g. --run 1,2,3).")
  in
  let disable name =
    Arg.(value & flag & info [ "no-" ^ name ] ~doc:(Printf.sprintf "Disable %s." name))
  in
  let no_reassoc = disable "reassociation" in
  let no_pi = disable "predicate-inference" in
  let no_vi = disable "value-inference" in
  let no_pp = disable "phi-predication" in
  let no_sparse = disable "sparse" in
  let trace_flag =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Write a Chrome-trace JSON profile of the run to $(docv) (open in \
             chrome://tracing or Perfetto). Spans cover parsing, SSA \
             construction, each optimization pass, and the GVN engine's \
             internal sweeps.")
  in
  let metrics_flag =
    Arg.(
      value & flag
      & info [ "metrics" ]
          ~doc:
            "Print the engine metrics snapshot (worklist touches, table \
             probes/hits, arena occupancy, latency histograms) after \
             processing.")
  in
  let schedule_flag =
    Arg.(
      value
      & opt ~vopt:(Some Scheck) (some schedule_conv) None
      & info [ "schedule" ]
          ~doc:
            "Code-motion placement analysis of the input SSA; do not rewrite. \
             $(b,check) (the default when the flag is given bare) verifies the \
             identity placement with the independent schedule-legality checker \
             and fails the run on any violation; $(b,dump) prints each value's \
             early/best/late blocks, loop depths and speculation-safety class; \
             $(b,lint) prints the hoist/sink opportunity lints \
             (lint-loop-invariant, lint-sinkable).")
  in
  let rules_flag =
    Arg.(
      value
      & opt (some rules_conv) None
      & info [ "rules" ]
          ~doc:
            "Rewrite-rule catalog control: $(b,dump) prints every rule of the \
             declarative catalog and exits; $(b,verify) runs the static \
             rule-soundness verifier (exhaustive small-width check, full-width \
             fuzzing, catalog lints) and exits non-zero on any refuted rule or \
             fatal lint; $(b,off) optimizes $(i,FILE.mc) with the catalog \
             disabled (trap-refusing constant folding only).")
  in
  let main preset complete pruning analyze stats dump_input run_args check lint werror validate nr npi nvi npp nsp trace_file metrics rules schedule path =
    let toggles =
      {
        Cli.Cli_options.complete;
        no_reassociation = nr;
        no_predicate_inference = npi;
        no_value_inference = nvi;
        no_phi_predication = npp;
        no_sparse = nsp;
      }
    in
    let config = Cli.Cli_options.apply_toggles toggles preset in
    let config =
      match rules with
      | Some Roff -> { config with Pgvn.Config.rules = false }
      | _ -> config
    in
    match (rules, path) with
    | Some Rdump, _ -> dump_rules ()
    | Some Rverify, _ -> verify_rules ()
    | _, None ->
        Fmt.epr "gvnopt: required argument FILE.mc is missing@.";
        2
    | _, Some _ when analyze <> None && schedule <> None ->
        Fmt.epr "gvnopt: --analyze and --schedule are mutually exclusive@.";
        2
    | _, Some path -> (
        let action =
          match (analyze, schedule) with
          | Some m, _ -> Analyze m
          | _, Some m -> Schedule m
          | None, None -> Optimize
        in
        let obs_opts = { Cli.Cli_options.trace_file; metrics } in
        let obs = Cli.Cli_options.obs_of obs_opts in
        try
          let code =
            process ~config ~pruning ~action ~stats ~dump_input ~run_args ~check ~lint
              ~werror ~validate ~obs path
          in
          Cli.Cli_options.finish obs_opts obs;
          code
        with
        | Ir.Parser.Error (msg, line) ->
            Fmt.epr "%s:%d: parse error: %s@." path line msg;
            2
        | Ir.Lexer.Error (msg, line) ->
            Fmt.epr "%s:%d: lex error: %s@." path line msg;
            2)
  in
  let term =
    Term.(
      const main $ preset $ complete $ pruning $ analyze $ stats $ dump_input $ run_args
      $ check_flag $ lint_flag $ werror_flag $ validate_flag
      $ no_reassoc $ no_pi $ no_vi $ no_pp $ no_sparse $ trace_flag $ metrics_flag
      $ rules_flag $ schedule_flag $ path)
  in
  let exits =
    [
      Cmd.Exit.info 0 ~doc:"on success (no diagnostics at the failure threshold).";
      Cmd.Exit.info 1
        ~doc:
          "on diagnostics at or above the failure threshold: verifier errors, \
           warnings under $(b,--Werror), rewrites rejected under $(b,--validate), \
           schedule-legality violations under $(b,--schedule=check), \
           or a $(b,--run) disagreement.";
      Cmd.Exit.info 2 ~doc:"on usage or parse errors.";
    ]
  in
  Cmd.v
    (Cmd.info "gvnopt" ~doc:"Predicated global value numbering for mini-C routines" ~exits)
    term

(* Pin the documented contract: cmdliner's own split of CLI errors (124) vs
   term errors would leak through [eval']; collapse every usage-level
   failure — unknown flag, bad option value, missing or nonexistent file —
   to exit 2. *)
let () =
  exit
    (match Cmd.eval_value cmd with
    | Ok (`Ok code) -> code
    | Ok (`Help | `Version) -> 0
    | Error (`Parse | `Term | `Exn) -> 2)

#!/usr/bin/env python3
"""Validate the schema of the bench harness's --json output (BENCH_gvn.json).

The key sets below are the perf-regression record's interface: downstream
tooling (EXPERIMENTS.md workflows, the seeded BENCH_gvn.json diffing) keys
on them, so a key silently disappearing from the emitter must fail CI.
Extra keys are allowed (the schema may grow); missing keys are not.

Usage: check_bench_schema.py BENCH_gvn.json
"""
import json
import sys

TOP_KEYS = {"schema", "scale", "table2", "gvn_stats", "rules", "schedule", "gcm",
            "pred", "parallel", "scaling"}
TABLE2_KEYS = {"benchmark", "dense_ms", "sparse_ms", "basic_ms"}
RULES_KEYS = {"benchmark", "total_fired", "fired"}
SCHEDULE_KEYS = {"benchmark", "hoistable", "sinkable", "speculation_blocked", "analysis_ms"}
GCM_KEYS = {"benchmark", "values", "moved", "hoisted", "sunk", "speculation_blocked",
            "transform_ms"}
# The motion gate applies to the loop-heavy benchmarks: at full scale the
# certified rebuild must actually move something there.
GCM_REQUIRED_MOTION = {"176.gcc", "253.perlbmk", "254.gap"}
PRED_KEYS = {
    "benchmark", "baseline_decided", "pred_decided", "delta",
    "closure_queries", "closure_decided", "baseline_ms", "analysis_ms",
}
GVN_STATS_KEYS = {
    "benchmark", "routines", "passes", "instrs", "table_probes", "table_hits",
    "arena_live", "arena_interned", "arena_hits", "arena_max_chain",
}
SCALING_KEYS = {"ladder", "worst_visit_ratio_per_doubling", "quadratic_ok"}
LADDER_KEYS = {"n", "gvn_ms", "vi_visits"}
PARALLEL_KEYS = {"cores", "domain_counts", "benchmarks"}
PARALLEL_BENCH_KEYS = {
    "benchmark", "routines", "rps1", "rps2", "rps4",
    "speedup2", "speedup4", "repeat_hit_rate",
}
# The parallel tier must cover the multi-routine heavy hitters.
PARALLEL_REQUIRED = {"176.gcc", "253.perlbmk", "254.gap"}
# The 4-domain throughput floor, enforced only on hosts that actually have
# 4 cores to run them on (the repo's timing policy: correctness gates are
# unconditional, throughput gates only where the hardware can express them).
SPEEDUP4_FLOOR = 1.8


def fail(msg):
    print(f"check_bench_schema: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def need(obj, keys, where):
    missing = keys - obj.keys()
    if missing:
        fail(f"{where}: missing keys {sorted(missing)} (has {sorted(obj.keys())})")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench_schema.py BENCH_gvn.json")
    path = sys.argv[1]
    try:
        with open(path) as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")

    need(doc, TOP_KEYS, "top level")
    if doc["schema"] != "pgvn-bench/1":
        fail(f"unexpected schema tag {doc['schema']!r}")

    for i, rec in enumerate(doc["table2"]):
        need(rec, TABLE2_KEYS, f"table2[{i}]")
    for i, rec in enumerate(doc["gvn_stats"]):
        need(rec, GVN_STATS_KEYS, f"gvn_stats[{i}]")
        if not (rec["table_probes"] >= rec["table_hits"] >= 0):
            fail(f"gvn_stats[{i}]: probes < hits: {rec}")
        if not (rec["arena_interned"] >= rec["arena_live"] >= 0):
            fail(f"gvn_stats[{i}]: interned < live: {rec}")
    for i, rec in enumerate(doc["rules"]):
        need(rec, RULES_KEYS, f"rules[{i}]")
        if not isinstance(rec["fired"], dict):
            fail(f"rules[{i}]: fired must be an object: {rec}")
        if any(n < 0 for n in rec["fired"].values()):
            fail(f"rules[{i}]: negative fire count: {rec}")
        catalog_total = sum(n for name, n in rec["fired"].items() if name != "const-fold")
        if rec["total_fired"] != catalog_total:
            fail(f"rules[{i}]: total_fired != sum of catalog fires: {rec}")
    for i, rec in enumerate(doc["schedule"]):
        need(rec, SCHEDULE_KEYS, f"schedule[{i}]")
        for k in ("hoistable", "sinkable", "speculation_blocked"):
            if rec[k] < 0:
                fail(f"schedule[{i}]: negative {k}: {rec}")
        if rec["analysis_ms"] < 0:
            fail(f"schedule[{i}]: negative analysis_ms: {rec}")
    for i, rec in enumerate(doc["gcm"]):
        need(rec, GCM_KEYS, f"gcm[{i}]")
        for k in ("values", "moved", "hoisted", "sunk", "speculation_blocked"):
            if rec[k] < 0:
                fail(f"gcm[{i}]: negative {k}: {rec}")
        if rec["moved"] > rec["values"]:
            fail(f"gcm[{i}]: moved more values than exist: {rec}")
        if rec["hoisted"] + rec["sunk"] > rec["moved"]:
            fail(f"gcm[{i}]: hoisted + sunk exceeds moved: {rec}")
        if rec["transform_ms"] < 0:
            fail(f"gcm[{i}]: negative transform_ms: {rec}")
        # Like the pred yield gate: only enforced at the committed full
        # scale, where the loop-heavy benchmarks reliably expose motion.
        if (doc["scale"] >= 1.0 and rec["benchmark"] in GCM_REQUIRED_MOTION
                and rec["moved"] <= 0):
            fail(f"gcm[{i}]: no motion on loop-heavy {rec['benchmark']}: {rec}")
    for i, rec in enumerate(doc["pred"]):
        need(rec, PRED_KEYS, f"pred[{i}]")
        if rec["delta"] != rec["pred_decided"] - rec["baseline_decided"]:
            fail(f"pred[{i}]: delta != pred_decided - baseline_decided: {rec}")
        if rec["delta"] < 0:
            fail(f"pred[{i}]: the closure lost decided branches: {rec}")
        for k in ("baseline_decided", "pred_decided", "closure_queries",
                  "closure_decided"):
            if rec[k] < 0:
                fail(f"pred[{i}]: negative {k}: {rec}")
        if rec["baseline_ms"] < 0 or rec["analysis_ms"] < 0:
            fail(f"pred[{i}]: negative timing: {rec}")
    # The yield gate: at the committed full scale the closure must decide
    # strictly more branches than the single-fact baseline on at least one
    # benchmark (at small smoke-test scales the chains may not be generated).
    if doc["scale"] >= 1.0 and not any(r["delta"] > 0 for r in doc["pred"]):
        fail("pred: no benchmark shows a strictly positive decided-branch delta")
    par = doc["parallel"]
    need(par, PARALLEL_KEYS, "parallel")
    if not isinstance(par["cores"], int) or par["cores"] < 1:
        fail(f"parallel.cores must be a positive int: {par['cores']!r}")
    if par["domain_counts"] != [1, 2, 4]:
        fail(f"parallel.domain_counts must be [1, 2, 4]: {par['domain_counts']!r}")
    pb = {r["benchmark"] for r in par["benchmarks"]}
    missing_hh = PARALLEL_REQUIRED - pb
    if missing_hh:
        fail(f"parallel.benchmarks missing heavy hitters {sorted(missing_hh)}")
    for i, rec in enumerate(par["benchmarks"]):
        need(rec, PARALLEL_BENCH_KEYS, f"parallel.benchmarks[{i}]")
        if rec["routines"] < 1:
            fail(f"parallel.benchmarks[{i}]: no routines: {rec}")
        for k in ("rps1", "rps2", "rps4", "speedup2", "speedup4"):
            if not rec[k] > 0:
                fail(f"parallel.benchmarks[{i}]: {k} must be > 0: {rec}")
        if not (0.99 <= rec["repeat_hit_rate"] <= 1.0):
            fail(f"parallel.benchmarks[{i}]: repeat-run cache hit rate "
                 f"{rec['repeat_hit_rate']} outside [0.99, 1.0]: {rec}")
        if par["cores"] >= 4 and rec["speedup4"] < SPEEDUP4_FLOOR:
            fail(f"parallel.benchmarks[{i}]: speedup4 {rec['speedup4']} below "
                 f"the {SPEEDUP4_FLOOR}x floor on a {par['cores']}-core host: {rec}")
    need(doc["scaling"], SCALING_KEYS, "scaling")
    for i, rec in enumerate(doc["scaling"]["ladder"]):
        need(rec, LADDER_KEYS, f"scaling.ladder[{i}]")

    t2 = {r["benchmark"] for r in doc["table2"]}
    gs = {r["benchmark"] for r in doc["gvn_stats"]}
    ru = {r["benchmark"] for r in doc["rules"]}
    if len(t2) != 10:
        fail(f"expected 10 benchmarks in table2, got {sorted(t2)}")
    if gs != t2:
        fail(f"table2/gvn_stats benchmark sets differ: {sorted(t2 ^ gs)}")
    if ru != t2:
        fail(f"table2/rules benchmark sets differ: {sorted(t2 ^ ru)}")
    sc = {r["benchmark"] for r in doc["schedule"]}
    if sc != t2:
        fail(f"table2/schedule benchmark sets differ: {sorted(t2 ^ sc)}")
    gc = {r["benchmark"] for r in doc["gcm"]}
    if gc != t2:
        fail(f"table2/gcm benchmark sets differ: {sorted(t2 ^ gc)}")
    pd = {r["benchmark"] for r in doc["pred"]}
    if pd != t2:
        fail(f"table2/pred benchmark sets differ: {sorted(t2 ^ pd)}")
    if doc["scaling"]["quadratic_ok"] is not True:
        fail(f"ladder scaling regressed: {doc['scaling']}")

    print(f"check_bench_schema: ok: {path}: {sorted(t2)}")


if __name__ == "__main__":
    main()

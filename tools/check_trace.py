#!/usr/bin/env python3
"""Validate a gvnopt --trace=FILE Chrome-trace JSON document.

Checks, in order:
  1. the file is well-formed JSON with a `traceEvents` array;
  2. every event carries the Chrome-trace fields (name/cat/ph/ts/pid/tid);
  3. the B/E stream is balanced as a stack: every end closes the
     innermost open begin of the same name, and nothing stays open;
  4. nothing was dropped from the ring (`otherData.dropped` is "0");
  5. every span name given as an extra argument occurs at least once.

Usage: check_trace.py trace.json [required-span-name ...]
"""
import json
import sys


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) < 2:
        fail("usage: check_trace.py trace.json [required-span-name ...]")
    path, required = sys.argv[1], sys.argv[2:]

    try:
        with open(path) as fp:
            doc = json.load(fp)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: not readable JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: no traceEvents array")

    stack, seen = [], set()
    for i, ev in enumerate(events):
        for field in ("name", "cat", "ph", "ts", "pid", "tid"):
            if field not in ev:
                fail(f"{path}: event {i} is missing {field!r}: {ev}")
        seen.add(ev["name"])
        if ev["ph"] == "B":
            stack.append(ev["name"])
        elif ev["ph"] == "E":
            if not stack:
                fail(f"{path}: event {i}: E {ev['name']!r} with no open span")
            top = stack.pop()
            if top != ev["name"]:
                fail(f"{path}: event {i}: E {ev['name']!r} closes open {top!r}")
        else:
            fail(f"{path}: event {i}: unexpected phase {ev['ph']!r}")
    if stack:
        fail(f"{path}: spans left open at end of stream: {stack}")

    dropped = doc.get("otherData", {}).get("dropped")
    if dropped != "0":
        fail(f"{path}: ring dropped events (dropped={dropped!r})")

    missing = [name for name in required if name not in seen]
    if missing:
        fail(f"{path}: required spans never recorded: {missing} (saw {sorted(seen)})")

    print(f"check_trace: ok: {path}: {len(events)} events, "
          f"{len(events) // 2} spans, {len(seen)} distinct names")


if __name__ == "__main__":
    main()

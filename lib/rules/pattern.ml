(* The rewrite-rule DSL: algebraic identities as pure data.

   A rule is an LHS pattern over expression metavariables ([Pvar]),
   constant metavariables ([Pcvar]) and literals, an RHS template, and an
   optional guard over the bound constants. The catalog (see {!Catalog}) is
   the single source of truth for every algebraic identity in the tree:
   the GVN engine, the structural/consed expression algebras, the LVN and
   dominator-hash baselines and the equivalence oracle all consult the
   compiled form (see {!Engine}), and {!Verify} checks each rule against
   the concrete operator semantics before it is trusted. *)

type pat =
  | Pvar of int  (** expression metavariable: matches any subject *)
  | Pcvar of int  (** constant metavariable: matches any constant *)
  | Pconst of int  (** literal constant *)
  | Punop of Ir.Types.unop * pat
  | Pbinop of Ir.Types.binop * pat * pat

type rhs =
  | Rvar of int  (** substitute the binding of [Pvar i] *)
  | Rcvar of int  (** substitute the binding of [Pcvar i] *)
  | Rconst of int
  | Rcfun of string * (int array -> int)
      (** a constant computed from the [Pcvar] bindings; the string is the
          printable form for dumps *)
  | Runop of Ir.Types.unop * rhs
  | Rbinop of Ir.Types.binop * rhs * rhs

type rule = {
  name : string;
  lhs : pat;
  rhs : rhs;
  guard : (int array -> bool) option;  (** over the [Pcvar] bindings *)
  guard_doc : string;  (** printable form of the guard; "" when none *)
  commutes : bool;
      (** expand every commutative LHS node both ways at compile time *)
}

(* ---------------- metavariable accounting ---------------- *)

let rec fold_pat f acc = function
  | (Pvar _ | Pcvar _ | Pconst _) as p -> f acc p
  | Punop (_, p) as n -> fold_pat f (f acc n) p
  | Pbinop (_, p, q) as n -> fold_pat f (fold_pat f (f acc n) p) q

let rec fold_rhs f acc = function
  | (Rvar _ | Rcvar _ | Rconst _ | Rcfun _) as r -> f acc r
  | Runop (_, r) as n -> fold_rhs f (f acc n) r
  | Rbinop (_, r, s) as n -> fold_rhs f (fold_rhs f (f acc n) r) s

let pat_vars p =
  fold_pat (fun acc n -> match n with Pvar i -> i :: acc | _ -> acc) [] p
  |> List.sort_uniq compare

let pat_cvars p =
  fold_pat (fun acc n -> match n with Pcvar i -> i :: acc | _ -> acc) [] p
  |> List.sort_uniq compare

let rhs_vars r =
  fold_rhs (fun acc n -> match n with Rvar i -> i :: acc | _ -> acc) [] r
  |> List.sort_uniq compare

let rhs_cvars r =
  fold_rhs (fun acc n -> match n with Rcvar i -> i :: acc | _ -> acc) [] r
  |> List.sort_uniq compare

(* Slot counts for the matcher's binding arrays: 1 + highest index used. *)
let arity (r : rule) =
  let m ids = List.fold_left max (-1) ids + 1 in
  (m (pat_vars r.lhs), m (pat_cvars r.lhs))

(* ---------------- termination measure ---------------- *)

(* Every rule must strictly decrease this weight from LHS to RHS, so any
   rewriting strategy over the catalog terminates. Expensive operators
   weigh more, which also lets a rule trade an outer cheap node for an
   inner costly one (de Morgan: And+2·Bnot → Bnot+Or). *)

let binop_weight : Ir.Types.binop -> int = function
  | Div | Rem -> 10
  | Shl | Shr -> 6
  | Mul -> 5
  | And | Or | Xor -> 4
  | Add | Sub -> 3

let rec pat_weight = function
  | Pvar _ | Pcvar _ | Pconst _ -> 1
  | Punop (_, p) -> 2 + pat_weight p
  | Pbinop (op, p, q) -> binop_weight op + pat_weight p + pat_weight q

let rec rhs_weight = function
  | Rvar _ | Rcvar _ | Rconst _ | Rcfun _ -> 1
  | Runop (_, r) -> 2 + rhs_weight r
  | Rbinop (op, r, s) -> binop_weight op + rhs_weight r + rhs_weight s

(* ---------------- commutative expansion ---------------- *)

(* All orderings of the commutative nodes of [p], cartesian across nested
   nodes, structurally deduplicated in first-seen order. The first variant
   is always [p] itself. *)
let expand_commutative p =
  let rec go = function
    | (Pvar _ | Pcvar _ | Pconst _) as p -> [ p ]
    | Punop (op, p) -> List.map (fun q -> Punop (op, q)) (go p)
    | Pbinop (op, p, q) ->
        let ls = go p and rs = go q in
        let fwd = List.concat_map (fun a -> List.map (fun b -> Pbinop (op, a, b)) rs) ls in
        if Ir.Types.binop_commutative op then
          fwd @ List.concat_map (fun a -> List.map (fun b -> Pbinop (op, b, a)) rs) ls
        else fwd
  in
  List.fold_left (fun acc v -> if List.mem v acc then acc else v :: acc) [] (go p)
  |> List.rev

let variants (r : rule) = if r.commutes then expand_commutative r.lhs else [ r.lhs ]

(* ---------------- pattern relations (for the meta-lints) ---------------- *)

(* [subsumes p q]: every subject matched by [q] is matched by [p] (with
   consistent bindings), treating [q]'s metavariables as opaque atoms. An
   earlier unguarded subsuming pattern makes a later rule dead. *)
let subsumes p q =
  let env : (int, pat) Hashtbl.t = Hashtbl.create 8 in
  let cenv : (int, pat) Hashtbl.t = Hashtbl.create 8 in
  let bind tbl i q = match Hashtbl.find_opt tbl i with
    | Some q' -> q' = q
    | None -> Hashtbl.add tbl i q; true
  in
  let rec go p q =
    match (p, q) with
    | Pvar i, _ -> bind env i q
    | Pcvar i, (Pconst _ | Pcvar _) -> bind cenv i q
    | Pcvar _, _ -> false
    | Pconst n, Pconst m -> n = m
    | Pconst _, _ -> false
    | Punop (op, p1), Punop (op', q1) -> op = op' && go p1 q1
    | Punop _, _ -> false
    | Pbinop (op, p1, p2), Pbinop (op', q1, q2) -> op = op' && go p1 q1 && go p2 q2
    | Pbinop _, _ -> false
  in
  go p q

(* [may_overlap p q]: conservative over-approximation of "some subject
   matches both" (binding consistency ignored, so it only ever errs toward
   reporting an overlap). *)
let rec may_overlap p q =
  match (p, q) with
  | Pvar _, _ | _, Pvar _ -> true
  | Pcvar _, (Pcvar _ | Pconst _) | Pconst _, Pcvar _ -> true
  | Pconst n, Pconst m -> n = m
  | Punop (op, p1), Punop (op', q1) -> op = op' && may_overlap p1 q1
  | Pbinop (op, p1, p2), Pbinop (op', q1, q2) ->
      op = op' && may_overlap p1 q1 && may_overlap p2 q2
  | _ -> false

(* ---------------- printing ---------------- *)

let var_name i = if i < 4 then String.make 1 "xyzw".[i] else Printf.sprintf "x%d" i
let cvar_name i = if i < 3 then String.make 1 "ABC".[i] else Printf.sprintf "C%d" i

let rec pp_pat ppf = function
  | Pvar i -> Fmt.string ppf (var_name i)
  | Pcvar i -> Fmt.string ppf (cvar_name i)
  | Pconst n -> Fmt.int ppf n
  | Punop (op, p) -> Fmt.pf ppf "%s(%a)" (Ir.Types.string_of_unop op) pp_pat p
  | Pbinop (op, p, q) ->
      Fmt.pf ppf "(%a %s %a)" pp_pat p (Ir.Types.string_of_binop op) pp_pat q

let rec pp_rhs ppf = function
  | Rvar i -> Fmt.string ppf (var_name i)
  | Rcvar i -> Fmt.string ppf (cvar_name i)
  | Rconst n -> Fmt.int ppf n
  | Rcfun (doc, _) -> Fmt.pf ppf "[%s]" doc
  | Runop (op, r) -> Fmt.pf ppf "%s(%a)" (Ir.Types.string_of_unop op) pp_rhs r
  | Rbinop (op, r, s) ->
      Fmt.pf ppf "(%a %s %a)" pp_rhs r (Ir.Types.string_of_binop op) pp_rhs s

let pp_rule ppf r =
  Fmt.pf ppf "%-18s %a -> %a" r.name pp_pat r.lhs pp_rhs r.rhs;
  if r.guard_doc <> "" then Fmt.pf ppf "  when %s" r.guard_doc;
  if r.commutes then Fmt.pf ppf "  (commutes)"

(* Root of the declarative rewrite-rule subsystem (DESIGN.md §4e).

   [Pattern] is the DSL, [Catalog] the one rule table, [Engine] the
   compiled matcher every client consults, [Verify] the soundness gate. *)

module Pattern = Pattern
module Catalog = Catalog
module Engine = Engine
module Verify = Verify

let catalog = Catalog.all

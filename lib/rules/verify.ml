(* The static rule-soundness verifier.

   A rule is admitted only if its two sides agree *strictly* on every
   checked input: equal values where neither side faults, and faulting
   together otherwise. Faults are observable ([Ir.Interp.Trap]), so
   "refines the fault set" is not good enough — [x/x -> 1] removes a trap
   and is exactly the kind of plausible-looking rule this module exists to
   reject.

   Three layers, cheapest first:

   - {b meta-lints}: structural checks on the catalog as a whole —
     malformed RHS metavariables, duplicate names, non-decreasing
     termination weight, dead (shadowed) rules, missing commutative
     variants, overlapping patterns.
   - {b exhaustive}: every assignment of battery values (all small-width
     integers plus the boundary sentinels) to the rule's metavariables,
     evaluated host-side against {!Ir.Types} semantics.
   - {b fuzz}: PRNG-driven full-width checking through {!Ir.Interp} — each
     side is compiled to a straight-line [Ir.Func] (metavariables become
     parameters, constant metavariables become [Const] instructions) and
     the two runs must produce [equal_result]s, trap for trap. This checks
     the rule against the same interpreter that grounds the rest of the
     test suite, not just against a re-implementation of the semantics. *)

exception Fault

let rec eval_pat vars cvals = function
  | Pattern.Pvar i -> vars.(i)
  | Pattern.Pcvar i -> cvals.(i)
  | Pattern.Pconst n -> n
  | Pattern.Punop (op, p) -> Ir.Types.eval_unop op (eval_pat vars cvals p)
  | Pattern.Pbinop (op, p, q) -> (
      let a = eval_pat vars cvals p in
      let b = eval_pat vars cvals q in
      match Ir.Types.fold_binop op a b with Some v -> v | None -> raise Fault)

let rec eval_rhs vars cvals = function
  | Pattern.Rvar i -> vars.(i)
  | Pattern.Rcvar i -> cvals.(i)
  | Pattern.Rconst n -> n
  | Pattern.Rcfun (_, f) -> f cvals
  | Pattern.Runop (op, r) -> Ir.Types.eval_unop op (eval_rhs vars cvals r)
  | Pattern.Rbinop (op, r, s) -> (
      let a = eval_rhs vars cvals r in
      let b = eval_rhs vars cvals s in
      match Ir.Types.fold_binop op a b with Some v -> v | None -> raise Fault)

type outcome = Val of int | Trap

let outcome f = match f () with v -> Val v | exception Fault -> Trap

let string_of_outcome = function
  | Val v -> string_of_int v
  | Trap -> "trap"

(* ---------------- input battery ---------------- *)

(* All 4-bit integers (which subsume all 3-bit ones) plus the boundary
   sentinels of full-width arithmetic and of the masked shift range. *)
let battery =
  let small = List.init 16 (fun i -> i - 8) in
  let sentinels =
    [ min_int; min_int + 1; max_int; max_int - 1; 16; 31; 32; 62; 63; 64;
      1 lsl 61; -(1 lsl 61) ]
  in
  List.sort_uniq compare (small @ sentinels) |> Array.of_list

let render_cx (r : Pattern.rule) vars cvals lo ro =
  let nvars, ncvars = Pattern.arity r in
  let buf = Buffer.create 64 in
  for i = 0 to nvars - 1 do
    Buffer.add_string buf (Printf.sprintf "%s=%d " (Pattern.var_name i) vars.(i))
  done;
  for i = 0 to ncvars - 1 do
    Buffer.add_string buf (Printf.sprintf "%s=%d " (Pattern.cvar_name i) cvals.(i))
  done;
  Printf.sprintf "%s: %slhs=%s rhs=%s" r.Pattern.name (Buffer.contents buf)
    (string_of_outcome lo) (string_of_outcome ro)

(* One concrete check against the host-side evaluators. [None] = agree. *)
let check_host (r : Pattern.rule) vars cvals =
  let lo = outcome (fun () -> eval_pat vars cvals r.Pattern.lhs) in
  let ro = outcome (fun () -> eval_rhs vars cvals r.Pattern.rhs) in
  if lo = ro then None else Some (render_cx r vars cvals lo ro)

let guard_passes (r : Pattern.rule) cvals =
  match r.Pattern.guard with None -> true | Some g -> g cvals

(* Exhaustive over the battery: an odometer across the rule's var and cvar
   slots. Returns [Ok checked] or [Error witness]. *)
let exhaustive (r : Pattern.rule) =
  let nvars, ncvars = Pattern.arity r in
  let slots = nvars + ncvars in
  let idx = Array.make (max slots 1) 0 in
  let vars = Array.make (max nvars 1) 0 in
  let cvals = Array.make (max ncvars 1) 0 in
  let checked = ref 0 in
  let failure = ref None in
  let n = Array.length battery in
  let rec spin () =
    for k = 0 to nvars - 1 do vars.(k) <- battery.(idx.(k)) done;
    for k = 0 to ncvars - 1 do cvals.(k) <- battery.(idx.(nvars + k)) done;
    if guard_passes r cvals then begin
      incr checked;
      match check_host r vars cvals with
      | Some w -> failure := Some w
      | None -> ()
    end;
    if !failure = None then begin
      (* advance the odometer; stop after the last assignment *)
      let rec bump k =
        if k < 0 then false
        else if idx.(k) + 1 < n then begin
          idx.(k) <- idx.(k) + 1;
          true
        end
        else begin
          idx.(k) <- 0;
          bump (k - 1)
        end
      in
      if bump (slots - 1) then spin ()
    end
  in
  if slots = 0 then ignore (check_host r vars cvals) else spin ();
  match !failure with Some w -> Error w | None -> Ok !checked

(* ---------------- full-width fuzzing through the interpreter ---------------- *)

let full_width_random rng =
  Int64.to_int (Util.Prng.next_int64 rng)

(* Shift-amount-friendly pool for constant metavariables: guards are
   predicates on masked shift amounts, so draws concentrate there. *)
let cvar_pool =
  [| 0; 1; 2; 3; 4; 8; 16; 30; 31; 32; 33; 60; 62; 63; 64; 65; -1; -2; min_int; max_int |]

let draw_value rng =
  if Util.Prng.chance rng 1 3 then Util.Prng.choose rng battery
  else full_width_random rng

let draw_cval rng =
  if Util.Prng.chance rng 1 2 then Util.Prng.choose rng cvar_pool
  else draw_value rng

(* Compile one side to a straight-line function: metavariables are
   parameters, constant metavariables are [Const]s of this draw. *)
let func_of_side ~name nvars cvals side =
  let b = Ir.Builder.create ~name ~nparams:(max nvars 1) in
  let blk = Ir.Builder.add_block b in
  let params = Array.init (max nvars 1) (fun k -> Ir.Builder.param b blk k) in
  let root =
    match side with
    | `L p ->
        let rec go = function
          | Pattern.Pvar i -> params.(i)
          | Pattern.Pcvar i -> Ir.Builder.const b blk cvals.(i)
          | Pattern.Pconst n -> Ir.Builder.const b blk n
          | Pattern.Punop (op, p) -> Ir.Builder.unop b blk op (go p)
          | Pattern.Pbinop (op, p, q) ->
              let u = go p in
              let v = go q in
              Ir.Builder.binop b blk op u v
        in
        go p
    | `R r ->
        let rec go = function
          | Pattern.Rvar i -> params.(i)
          | Pattern.Rcvar i -> Ir.Builder.const b blk cvals.(i)
          | Pattern.Rconst n -> Ir.Builder.const b blk n
          | Pattern.Rcfun (_, f) -> Ir.Builder.const b blk (f cvals)
          | Pattern.Runop (op, r) -> Ir.Builder.unop b blk op (go r)
          | Pattern.Rbinop (op, r, s) ->
              let u = go r in
              let v = go s in
              Ir.Builder.binop b blk op u v
        in
        go r
  in
  Ir.Builder.ret b blk root;
  Ir.Builder.finish b

let fuzz ~seed ~iters (r : Pattern.rule) =
  let rng = Util.Prng.create (seed lxor Hashtbl.hash r.Pattern.name) in
  let nvars, ncvars = Pattern.arity r in
  let fuzzed = ref 0 in
  let failure = ref None in
  let i = ref 0 in
  while !failure = None && !i < iters do
    incr i;
    (* draw constants until the guard passes (bounded) *)
    let cvals = Array.make (max ncvars 1) 0 in
    let tries = ref 0 in
    let ok = ref false in
    while (not !ok) && !tries < 64 do
      incr tries;
      for k = 0 to ncvars - 1 do cvals.(k) <- draw_cval rng done;
      ok := guard_passes r cvals
    done;
    if !ok then begin
      let vars = Array.make (max nvars 1) 0 in
      for k = 0 to nvars - 1 do vars.(k) <- draw_value rng done;
      incr fuzzed;
      let fl = func_of_side ~name:"lhs" nvars cvals (`L r.Pattern.lhs) in
      let fr = func_of_side ~name:"rhs" nvars cvals (`R r.Pattern.rhs) in
      let rl = Ir.Interp.run fl vars in
      let rr = Ir.Interp.run fr vars in
      if not (Ir.Interp.equal_result rl rr) then
        let o = function
          | Ir.Interp.Ret v -> Val v
          | Ir.Interp.Trap -> Trap
          | Ir.Interp.Timeout -> Val 0 (* unreachable: straight-line *)
        in
        failure := Some (render_cx r vars cvals (o rl) (o rr))
    end
  done;
  match !failure with Some w -> Error w | None -> Ok !fuzzed

(* ---------------- meta-lints ---------------- *)

type level = Fatal | Info

type lint = { level : level; rules : string list; what : string }

let lint_catalog (rules : Pattern.rule list) : lint list =
  let lints = ref [] in
  let add level rs what = lints := { level; rules = rs; what } :: !lints in
  (* duplicate names *)
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (r : Pattern.rule) ->
      if Hashtbl.mem seen r.Pattern.name then
        add Fatal [ r.Pattern.name ] "duplicate rule name"
      else Hashtbl.add seen r.Pattern.name ())
    rules;
  List.iter
    (fun (r : Pattern.rule) ->
      let n = r.Pattern.name in
      (* top of the LHS must be an operator *)
      (match r.Pattern.lhs with
      | Pattern.Punop _ | Pattern.Pbinop _ -> ()
      | _ -> add Fatal [ n ] "LHS is not rooted at an operator");
      (* RHS metavariables must be bound by the LHS *)
      let sub a b = List.for_all (fun i -> List.mem i b) a in
      if not (sub (Pattern.rhs_vars r.Pattern.rhs) (Pattern.pat_vars r.Pattern.lhs)) then
        add Fatal [ n ] "RHS uses a metavariable the LHS does not bind";
      if not (sub (Pattern.rhs_cvars r.Pattern.rhs) (Pattern.pat_cvars r.Pattern.lhs)) then
        add Fatal [ n ] "RHS uses a constant metavariable the LHS does not bind";
      (* termination: the weight must strictly decrease *)
      let wl = Pattern.pat_weight r.Pattern.lhs in
      let wr = Pattern.rhs_weight r.Pattern.rhs in
      if wr >= wl then
        add Fatal [ n ]
          (Printf.sprintf "termination: RHS weight %d does not decrease LHS weight %d" wr wl);
      (* commutative nodes with distinct children want [commutes] *)
      if not r.Pattern.commutes then begin
        let asym =
          Pattern.fold_pat
            (fun acc p ->
              acc
              ||
              match p with
              | Pattern.Pbinop (op, a, b) -> Ir.Types.binop_commutative op && a <> b
              | _ -> false)
            false r.Pattern.lhs
        in
        if asym then
          add Info [ n ]
            "commutative LHS node with distinct children but [commutes] is not set"
      end)
    rules;
  (* pairwise: dead (shadowed) rules, overlapping patterns *)
  let arr = Array.of_list rules in
  let top_op (p : Pattern.pat) =
    match p with
    | Pattern.Pbinop (op, _, _) -> `B op
    | Pattern.Punop (op, _) -> `U op
    | _ -> `None
  in
  for j = 0 to Array.length arr - 1 do
    for i = 0 to j - 1 do
      let ri = arr.(i) and rj = arr.(j) in
      if top_op ri.Pattern.lhs = top_op rj.Pattern.lhs then begin
        let vi = Pattern.variants ri and vj = Pattern.variants rj in
        if
          ri.Pattern.guard = None
          && List.for_all (fun qv -> List.exists (fun pv -> Pattern.subsumes pv qv) vi) vj
        then
          add Fatal
            [ ri.Pattern.name; rj.Pattern.name ]
            "shadowed: every variant of the later rule is subsumed by an earlier unguarded rule"
        else if
          List.exists (fun pv -> List.exists (fun qv -> Pattern.may_overlap pv qv) vj) vi
        then
          add Info
            [ ri.Pattern.name; rj.Pattern.name ]
            "patterns overlap: match order decides"
      end
    done
  done;
  List.rev !lints

(* ---------------- reports ---------------- *)

type status = {
  rule : Pattern.rule;
  exhaustive_checked : int;
  fuzz_checked : int;
  failure : string option;
}

type report = { lints : lint list; statuses : status list }

let verify_rule ?(iters = 200) ~seed (r : Pattern.rule) : status =
  match exhaustive r with
  | Error w -> { rule = r; exhaustive_checked = 0; fuzz_checked = 0; failure = Some w }
  | Ok ex -> (
      match fuzz ~seed ~iters r with
      | Error w -> { rule = r; exhaustive_checked = ex; fuzz_checked = 0; failure = Some w }
      | Ok fz -> { rule = r; exhaustive_checked = ex; fuzz_checked = fz; failure = None })

let verify_all ?(iters = 200) ~seed (rules : Pattern.rule list) : report =
  { lints = lint_catalog rules; statuses = List.map (verify_rule ~iters ~seed) rules }

let rule_ok (s : status) = s.failure = None

let ok (r : report) =
  List.for_all rule_ok r.statuses
  && List.for_all (fun (l : lint) -> l.level <> Fatal) r.lints

let pp_report ppf (r : report) =
  List.iter
    (fun s ->
      match s.failure with
      | None ->
          Fmt.pf ppf "ok   %-18s exhaustive %d, fuzz %d@."
            s.rule.Pattern.name s.exhaustive_checked s.fuzz_checked
      | Some w -> Fmt.pf ppf "FAIL %s@." w)
    r.statuses;
  List.iter
    (fun (l : lint) ->
      Fmt.pf ppf "%s %s: %s@."
        (match l.level with Fatal -> "lint-fatal" | Info -> "lint-info")
        (String.concat ", " l.rules) l.what)
    r.lints;
  let failed = List.filter (fun s -> not (rule_ok s)) r.statuses in
  let fatal = List.filter (fun (l : lint) -> l.level = Fatal) r.lints in
  Fmt.pf ppf "%d rules: %d verified, %d failed; %d fatal lints@."
    (List.length r.statuses)
    (List.length r.statuses - List.length failed)
    (List.length failed) (List.length fatal)

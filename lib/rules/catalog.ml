(* The rule catalog: every algebraic identity the tree knows, in one place.

   Order matters — the compiled matcher tries rules first to last, so the
   more specific rule of an overlapping pair must precede the more general
   one (the [shl-*] block below relies on this).

   Conventions and traps worth reading before adding a rule:

   - Soundness is *strict fault agreement*: the RHS must fault exactly when
     the LHS does, because traps are observable ([Ir.Interp.Trap]). That is
     why there is no [x/x -> 1] (LHS faults at x = 0) and no
     [x rem -1 -> 0] (LHS faults at x = min_int) — both are checked as
     deliberately-rejected mutants in the test suite.
   - Shift amounts are masked with [land 62] ({!Ir.Types.eval_binop}), so
     [x shl 1 = x]: the usual strength reduction [x*2 -> x shl 1] is wrong
     here (another rejected mutant). The sound direction is
     [shl-const-to-mul] below, which also feeds shifted values into the
     engine's sum-of-products normal form.
   - Every rule must strictly decrease {!Pattern.pat_weight}; that forces
     de Morgan into the orientation [~x & ~y -> ~(x|y)].

   [Verify] exhaustively checks each rule at small widths and fuzzes it at
   full width before the table is trusted; [dune build @rules] runs that
   gate in CI. *)

open Pattern
module T = Ir.Types

let x = Pvar 0
let y = Pvar 1
let z = Pvar 2
let ca = Pcvar 0

let rule ?(commutes = false) ?guard ?(guard_doc = "") name lhs rhs =
  { name; lhs; rhs; guard; guard_doc; commutes }

let all : rule list =
  [
    (* ---- bitwise identities ---- *)
    rule "and-self" (Pbinop (T.And, x, x)) (Rvar 0);
    rule ~commutes:true "and-zero" (Pbinop (T.And, x, Pconst 0)) (Rconst 0);
    rule ~commutes:true "and-ones" (Pbinop (T.And, x, Pconst (-1))) (Rvar 0);
    rule "or-self" (Pbinop (T.Or, x, x)) (Rvar 0);
    rule ~commutes:true "or-zero" (Pbinop (T.Or, x, Pconst 0)) (Rvar 0);
    rule ~commutes:true "or-ones" (Pbinop (T.Or, x, Pconst (-1))) (Rconst (-1));
    rule "xor-self" (Pbinop (T.Xor, x, x)) (Rconst 0);
    rule ~commutes:true "xor-zero" (Pbinop (T.Xor, x, Pconst 0)) (Rvar 0);
    rule ~commutes:true "xor-ones"
      (Pbinop (T.Xor, x, Pconst (-1)))
      (Runop (T.Bnot, Rvar 0));
    (* ---- absorption, de Morgan, factoring ---- *)
    rule ~commutes:true "and-absorb" (Pbinop (T.And, x, Pbinop (T.Or, x, y))) (Rvar 0);
    rule ~commutes:true "or-absorb" (Pbinop (T.Or, x, Pbinop (T.And, x, y))) (Rvar 0);
    rule ~commutes:true "demorgan-and"
      (Pbinop (T.And, Punop (T.Bnot, x), Punop (T.Bnot, y)))
      (Runop (T.Bnot, Rbinop (T.Or, Rvar 0, Rvar 1)));
    rule ~commutes:true "demorgan-or"
      (Pbinop (T.Or, Punop (T.Bnot, x), Punop (T.Bnot, y)))
      (Runop (T.Bnot, Rbinop (T.And, Rvar 0, Rvar 1)));
    rule ~commutes:true "or-and-factor"
      (Pbinop (T.Or, Pbinop (T.And, x, y), Pbinop (T.And, x, z)))
      (Rbinop (T.And, Rvar 0, Rbinop (T.Or, Rvar 1, Rvar 2)));
    (* ---- involutions ---- *)
    rule "bnot-bnot" (Punop (T.Bnot, Punop (T.Bnot, x))) (Rvar 0);
    rule "neg-neg" (Punop (T.Neg, Punop (T.Neg, x))) (Rvar 0);
    (* [!] is idempotent only from the second application on: [!!x]
       normalizes x to 0/1, it is not x. *)
    rule "lnot-lnot-lnot"
      (Punop (T.Lnot, Punop (T.Lnot, Punop (T.Lnot, x))))
      (Runop (T.Lnot, Rvar 0));
    (* ---- arithmetic neutral/absorbing elements ---- *)
    rule ~commutes:true "add-zero" (Pbinop (T.Add, x, Pconst 0)) (Rvar 0);
    rule "sub-zero" (Pbinop (T.Sub, x, Pconst 0)) (Rvar 0);
    rule "sub-self" (Pbinop (T.Sub, x, x)) (Rconst 0);
    rule ~commutes:true "mul-one" (Pbinop (T.Mul, x, Pconst 1)) (Rvar 0);
    rule ~commutes:true "mul-zero" (Pbinop (T.Mul, x, Pconst 0)) (Rconst 0);
    rule ~commutes:true "mul-neg1"
      (Pbinop (T.Mul, x, Pconst (-1)))
      (Runop (T.Neg, Rvar 0));
    (* Division: [x/1] and [x rem 1] never fault, so these agree with the
       LHS everywhere. The -1 counterparts are deliberately absent. *)
    rule "div-one" (Pbinop (T.Div, x, Pconst 1)) (Rvar 0);
    rule "rem-one" (Pbinop (T.Rem, x, Pconst 1)) (Rconst 0);
    (* ---- shifts (amounts are masked with [land 62]) ---- *)
    rule "zero-shl" (Pbinop (T.Shl, Pconst 0, x)) (Rconst 0);
    rule "zero-shr" (Pbinop (T.Shr, Pconst 0, x)) (Rconst 0);
    rule "shl-mask-zero"
      ~guard:(fun c -> c.(0) land 62 = 0)
      ~guard_doc:"A land 62 = 0"
      (Pbinop (T.Shl, x, ca))
      (Rvar 0);
    rule "shr-mask-zero"
      ~guard:(fun c -> c.(0) land 62 = 0)
      ~guard_doc:"A land 62 = 0"
      (Pbinop (T.Shr, x, ca))
      (Rvar 0);
    (* Composition must stay inside the masked range or the single shift
       would wrap where the pair saturates. These precede
       [shl-const-to-mul] so a shift tower collapses before the outer
       shift turns into a multiply. *)
    rule "shl-shl"
      ~guard:(fun c -> (c.(0) land 62) + (c.(1) land 62) <= 62)
      ~guard_doc:"(A land 62) + (B land 62) <= 62"
      (Pbinop (T.Shl, Pbinop (T.Shl, x, ca), Pcvar 1))
      (Rbinop (T.Shl, Rvar 0, Rcfun ("(A land 62) + (B land 62)",
                                     fun c -> (c.(0) land 62) + (c.(1) land 62))));
    rule "shr-shr"
      ~guard:(fun c -> (c.(0) land 62) + (c.(1) land 62) <= 62)
      ~guard_doc:"(A land 62) + (B land 62) <= 62"
      (Pbinop (T.Shr, Pbinop (T.Shr, x, ca), Pcvar 1))
      (Rbinop (T.Shr, Rvar 0, Rcfun ("(A land 62) + (B land 62)",
                                     fun c -> (c.(0) land 62) + (c.(1) land 62))));
    (* Strength "increase" on purpose: multiplication participates in the
       engine's sum-of-products canonicalization, shifts do not, so a
       shift by a known amount numbers together with equivalent
       multiplies. Sound at every width because both sides wrap mod the
       word size. *)
    rule "shl-const-to-mul"
      ~guard:(fun c -> c.(0) land 62 <> 0)
      ~guard_doc:"A land 62 <> 0"
      (Pbinop (T.Shl, x, ca))
      (Rbinop (T.Mul, Rvar 0, Rcfun ("1 lsl (A land 62)", fun c -> 1 lsl (c.(0) land 62))));
  ]

(* The rule compiler and matcher.

   [compile] turns the catalog into a matcher indexed by the top operator:
   each rule is expanded into its commutative variants (see
   {!Pattern.variants}) and filed under its root [binop]/[unop], so a
   consult touches only the rules that could possibly apply. Matching is
   first-rule-wins in catalog order.

   Clients plug in through a {!subject}: a first-class view of their
   expression representation. The matcher never inspects client values
   directly — it asks the subject to [view] a node (constant, unop, binop,
   or opaque atom), to compare bindings, and to build the RHS. Builders
   return [option] so a shallow client (the LVN baseline, the oracle) can
   decline to materialize a compound RHS: the match is abandoned and the
   next rule is tried, which keeps one catalog serving clients of very
   different expressive power.

   Constant folding is not a catalog rule: when both operands view as
   constants the matcher folds through {!Ir.Types.fold_binop} before any
   rule is tried, and returns [None] when the fold would trap — so
   [6 / 0] stays an opaque expression for every client, with no special
   case anywhere else. *)

type 'a sview =
  | Sconst of int
  | Sunop of Ir.Types.unop * 'a
  | Sbinop of Ir.Types.binop * 'a * 'a
  | Satom

type 'a subject = {
  view : 'a -> 'a sview;
  equal : 'a -> 'a -> bool;
  bconst : int -> 'a;
  bunop : Ir.Types.unop -> 'a -> 'a option;
  bbinop : Ir.Types.binop -> 'a -> 'a -> 'a option;
  reduce : 'a -> 'a option;
      (** map a freshly built compound RHS node to an atom usable as an
          operand of its parent (identity for clients whose builders
          already return atoms) *)
}

type entry = {
  rule : Pattern.rule;
  variant : Pattern.pat;  (* one commutative expansion of [rule.lhs] *)
  nvars : int;
  ncvars : int;
  fired : int ref;  (* shared by all variants of the rule *)
}

type t = {
  by_binop : entry list array;  (* indexed by {!binop_index} *)
  by_unop : entry list array;  (* indexed by {!unop_index} *)
  catalog : Pattern.rule list;
  counters : (string * int ref) list;  (* catalog order *)
  const_folds : int ref;
}

let binop_index : Ir.Types.binop -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9

let unop_index : Ir.Types.unop -> int = function Neg -> 0 | Lnot -> 1 | Bnot -> 2

let compile (rules : Pattern.rule list) : t =
  let by_binop = Array.make 10 [] and by_unop = Array.make 3 [] in
  let counters = List.map (fun r -> (r.Pattern.name, ref 0)) rules in
  List.iter
    (fun (r : Pattern.rule) ->
      let fired = List.assoc r.Pattern.name counters in
      let nvars, ncvars = Pattern.arity r in
      List.iter
        (fun variant ->
          let e = { rule = r; variant; nvars; ncvars; fired } in
          match variant with
          | Pattern.Pbinop (op, _, _) ->
              let i = binop_index op in
              by_binop.(i) <- by_binop.(i) @ [ e ]
          | Pattern.Punop (op, _) ->
              let i = unop_index op in
              by_unop.(i) <- by_unop.(i) @ [ e ]
          | _ -> invalid_arg "Rules.Engine.compile: top of a pattern must be an operator")
        (Pattern.variants r))
    rules;
  { by_binop; by_unop; catalog = rules; counters; const_folds = ref 0 }

let catalog t = t.catalog
let counts t = List.map (fun (n, r) -> (n, !r)) t.counters
let const_folds t = !(t.const_folds)

(* ---------------- matching ---------------- *)

let rec pmatch s env cenv cset p x =
  match p with
  | Pattern.Pvar i -> (
      match env.(i) with
      | Some y -> s.equal x y
      | None ->
          env.(i) <- Some x;
          true)
  | Pattern.Pcvar i -> (
      match s.view x with
      | Sconst c ->
          if cset.(i) then cenv.(i) = c
          else begin
            cset.(i) <- true;
            cenv.(i) <- c;
            true
          end
      | _ -> false)
  | Pattern.Pconst n -> ( match s.view x with Sconst c -> c = n | _ -> false)
  | Pattern.Punop (op, p1) -> (
      match s.view x with
      | Sunop (op', y) -> op = op' && pmatch s env cenv cset p1 y
      | _ -> false)
  | Pattern.Pbinop (op, p1, p2) -> (
      match s.view x with
      | Sbinop (op', y, z) ->
          op = op' && pmatch s env cenv cset p1 y && pmatch s env cenv cset p2 z
      | _ -> false)

(* Build the RHS under the bindings. Inner compound nodes go through
   [s.reduce]; the top-level result is returned as built. *)
let rec build s env cenv ~top r =
  let built =
    match r with
    | Pattern.Rvar i -> env.(i)
    | Pattern.Rcvar i -> Some (s.bconst cenv.(i))
    | Pattern.Rconst n -> Some (s.bconst n)
    | Pattern.Rcfun (_, f) -> Some (s.bconst (f cenv))
    | Pattern.Runop (op, r1) -> Option.bind (build s env cenv ~top:false r1) (s.bunop op)
    | Pattern.Rbinop (op, r1, r2) ->
        Option.bind (build s env cenv ~top:false r1) (fun a ->
            Option.bind (build s env cenv ~top:false r2) (fun b -> s.bbinop op a b))
  in
  match (r, built) with
  | (Pattern.Runop _ | Pattern.Rbinop _), Some v when not top -> s.reduce v
  | _ -> built

let guard_ok (e : entry) cenv =
  match e.rule.Pattern.guard with None -> true | Some g -> g cenv

let fire (e : entry) s env cenv =
  match build s env cenv ~top:true e.rule.Pattern.rhs with
  | Some r ->
      incr e.fired;
      Some r
  | None -> None

let rewrite_binop t s op x y =
  match (s.view x, s.view y) with
  | Sconst a, Sconst b -> (
      match Ir.Types.fold_binop op a b with
      | Some c ->
          incr t.const_folds;
          Some (s.bconst c)
      | None -> None (* would trap: leave the expression opaque *))
  | _ ->
      let rec try_entries = function
        | [] -> None
        | e :: rest -> (
            match e.variant with
            | Pattern.Pbinop (_, p1, p2) -> (
                let env = Array.make e.nvars None in
                let cenv = Array.make e.ncvars 0 in
                let cset = Array.make e.ncvars false in
                if
                  pmatch s env cenv cset p1 x
                  && pmatch s env cenv cset p2 y
                  && guard_ok e cenv
                then match fire e s env cenv with Some r -> Some r | None -> try_entries rest
                else try_entries rest)
            | _ -> try_entries rest)
      in
      try_entries t.by_binop.(binop_index op)

let rewrite_unop t s op x =
  match s.view x with
  | Sconst a ->
      incr t.const_folds;
      Some (s.bconst (Ir.Types.eval_unop op a))
  | _ ->
      let rec try_entries = function
        | [] -> None
        | e :: rest -> (
            match e.variant with
            | Pattern.Punop (_, p1) -> (
                let env = Array.make e.nvars None in
                let cenv = Array.make e.ncvars 0 in
                let cset = Array.make e.ncvars false in
                if pmatch s env cenv cset p1 x && guard_ok e cenv then
                  match fire e s env cenv with Some r -> Some r | None -> try_entries rest
                else try_entries rest)
            | _ -> try_entries rest)
      in
      try_entries t.by_unop.(unop_index op)

(* The shared engine over {!Catalog.all}: the one rule table the GVN
   engine, the expression algebras, the baselines and the oracle consult.
   It is domain-local, not processwide — the compiled table carries mutable
   fire counters, and {!Driver.run} publishes per-run counter deltas, which
   only stay exact if no other domain bumps them mid-run. A GVN run is
   confined to one domain, so domain-local counters give each run a private
   tally at the cost of one table compilation per worker domain. *)
let shared_key = Domain.DLS.new_key (fun () -> compile Catalog.all)
let shared () = Domain.DLS.get shared_key

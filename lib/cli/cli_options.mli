(** Option wiring shared by the two binaries ([bin/gvnopt.ml] and
    [bench/main.ml]), so their flag vocabularies cannot drift: the GVN
    preset table, the per-analysis disable toggles, SSA pruning modes, and
    the observability flags ([--trace=FILE], [--metrics]) with the
    create/finish lifecycle of the {!Obs} context they select. *)

(** {1 GVN presets} *)

val preset_names : string list
(** In documentation order: full, balanced, pessimistic, basic, dense,
    click, sccp, awz. *)

val preset_of_string : string -> (Pgvn.Config.t, string) result
val preset_doc : string
(** Comma-separated [preset_names], for [--help] strings. *)

(** {1 Per-analysis toggles (the [--no-*] flags and [--complete])} *)

type toggles = {
  complete : bool;  (** incremental reachable dominator tree variant *)
  no_reassociation : bool;
  no_predicate_inference : bool;
  no_value_inference : bool;
  no_phi_predication : bool;
  no_sparse : bool;
}

val no_toggles : toggles
val apply_toggles : toggles -> Pgvn.Config.t -> Pgvn.Config.t

(** {1 SSA pruning} *)

val pruning_of_string : string -> (Ssa.Construct.pruning, string) result

(** {1 Observability flags} *)

type obs_opts = {
  trace_file : string option;  (** [--trace=FILE]: Chrome-trace JSON sink *)
  metrics : bool;  (** [--metrics]: print the metrics snapshot on exit *)
}

val no_obs : obs_opts

val parse_obs_args : string list -> obs_opts * string list
(** Strip [--trace=FILE], [--trace FILE] and [--metrics] from an argument
    list (for the bench harness's hand-rolled parser), returning the
    recognized options and the remaining arguments. *)

val obs_of : ?force:bool -> obs_opts -> Obs.t option
(** The context the options call for: [Some] when any flag is set (or
    [~force:true], for harnesses that always measure), else [None]. *)

val finish : obs_opts -> Obs.t option -> unit
(** The end-of-run half of the lifecycle: write the Chrome trace to
    [trace_file] and print the metrics snapshot to stdout under
    [metrics]. *)

(* Shared CLI option wiring: gvnopt's cmdliner converters and bench's
   hand-rolled argv loop both resolve presets, toggles and observability
   flags through this module, so the two binaries cannot drift. *)

(* ------------------------------------------------------------------ *)
(* GVN presets.                                                        *)

let presets =
  [
    ("full", Pgvn.Config.full);
    ("balanced", Pgvn.Config.balanced);
    ("pessimistic", Pgvn.Config.pessimistic);
    ("basic", Pgvn.Config.basic);
    ("dense", Pgvn.Config.dense);
    ("click", Pgvn.Config.emulate_click);
    ("sccp", Pgvn.Config.emulate_sccp);
    ("awz", Pgvn.Config.emulate_awz);
  ]

let preset_names = List.map fst presets
let preset_doc = String.concat ", " preset_names

let preset_of_string s =
  match List.assoc_opt s presets with
  | Some c -> Ok c
  | None -> Error (Printf.sprintf "unknown preset %S (%s)" s preset_doc)

(* ------------------------------------------------------------------ *)
(* Per-analysis toggles.                                               *)

type toggles = {
  complete : bool;
  no_reassociation : bool;
  no_predicate_inference : bool;
  no_value_inference : bool;
  no_phi_predication : bool;
  no_sparse : bool;
}

let no_toggles =
  {
    complete = false;
    no_reassociation = false;
    no_predicate_inference = false;
    no_value_inference = false;
    no_phi_predication = false;
    no_sparse = false;
  }

let apply_toggles t (preset : Pgvn.Config.t) =
  {
    preset with
    Pgvn.Config.variant =
      (if t.complete then Pgvn.Config.Complete else preset.Pgvn.Config.variant);
    reassociation = preset.Pgvn.Config.reassociation && not t.no_reassociation;
    predicate_inference =
      preset.Pgvn.Config.predicate_inference && not t.no_predicate_inference;
    value_inference = preset.Pgvn.Config.value_inference && not t.no_value_inference;
    phi_predication = preset.Pgvn.Config.phi_predication && not t.no_phi_predication;
    sparse = preset.Pgvn.Config.sparse && not t.no_sparse;
  }

(* ------------------------------------------------------------------ *)
(* SSA pruning.                                                        *)

let pruning_of_string = function
  | "minimal" -> Ok Ssa.Construct.Minimal
  | "semi" | "semi-pruned" -> Ok Ssa.Construct.Semi_pruned
  | "pruned" -> Ok Ssa.Construct.Pruned
  | s -> Error (Printf.sprintf "unknown pruning %S (minimal, semi, pruned)" s)

(* ------------------------------------------------------------------ *)
(* Observability flags.                                                *)

type obs_opts = { trace_file : string option; metrics : bool }

let no_obs = { trace_file = None; metrics = false }

let parse_obs_args args =
  let rec go acc rest = function
    | [] -> (acc, List.rev rest)
    | "--metrics" :: tl -> go { acc with metrics = true } rest tl
    | "--trace" :: file :: tl -> go { acc with trace_file = Some file } rest tl
    | a :: tl when String.length a > 8 && String.sub a 0 8 = "--trace=" ->
        go { acc with trace_file = Some (String.sub a 8 (String.length a - 8)) } rest tl
    | a :: tl -> go acc (a :: rest) tl
  in
  go no_obs [] args

let wants o = o.trace_file <> None || o.metrics

let obs_of ?(force = false) o =
  if force || wants o then Some (Obs.create ()) else None

let finish o obs =
  match obs with
  | None -> ()
  | Some ctx ->
      (match o.trace_file with
      | Some path -> Obs.write_chrome ctx path
      | None -> ());
      if o.metrics then Fmt.pr "--- metrics ---@.%a@?" Obs.pp_metrics ctx

(** Seeded random structured-program generator: the stand-in for SPEC
    CINT2000 sources (see DESIGN.md). Generation is biased toward the
    features the algorithm exploits — redundant recomputation, constant
    and equality guards, switches, repeated diamonds — and every generated
    program terminates (loop counters are never reassigned). Deterministic
    in the seed and profile. *)

type profile = {
  stmt_budget : int;
  max_depth : int;
  params : int;
  loop_weight : int;
  if_weight : int;
  switch_weight : int;
  chain_weight : int;  (** chained x ≤ y ≤ z guard ladders (implication closure) *)
  assign_weight : int;
  equality_guard_weight : int;  (** percent of ifs guarded by x == y *)
  constant_guard_weight : int;  (** percent guarded by constants (dead arms) *)
  redundancy_bias : int;  (** percent chance an expression repeats an old one *)
  opaque_bias : int;  (** percent chance a leaf is an opaque call *)
}

val default_profile : profile
val routine : ?profile:profile -> seed:int -> name:string -> unit -> Ir.Ast.routine

val func :
  ?profile:profile ->
  ?pruning:Ssa.Construct.pruning ->
  seed:int ->
  name:string ->
  unit ->
  Ir.Func.t
(** Generate, lower and convert to SSA in one step. *)

module Ast = Ir.Ast

(* Seeded random structured-program generator.

   The paper evaluates on SPEC CINT2000 C sources, which we do not have; per
   the substitution rule we synthesize routines whose CFG/SSA shape exercises
   the same analysis machinery. Generation is biased toward the features the
   algorithm exploits:
   - redundant recomputation of equal expressions (plain congruences);
   - branches guarded by constants (unreachable code);
   - equality-guarded branches over live variables (value inference);
   - nested comparisons against constants on the same variable
     (predicate inference);
   - chained var-var inequalities dominating a query on their endpoints,
     which no single fact decides (the multi-fact implication closure);
   - repeated conditional diamonds with congruent predicates
     (φ-predication);
   - counted loops, so every generated program terminates and the
     interpreter can be used as a differential-testing oracle. *)

type profile = {
  stmt_budget : int; (* approximate number of statements *)
  max_depth : int;
  params : int;
  loop_weight : int; (* relative weights of statement kinds *)
  if_weight : int;
  switch_weight : int;
  chain_weight : int; (* chained x ≤ y ≤ z guard ladders *)
  assign_weight : int;
  equality_guard_weight : int; (* of an if being equality-guarded *)
  constant_guard_weight : int; (* of an if being constant-guarded (dead arm) *)
  redundancy_bias : int; (* percent chance an expression repeats an old one *)
  opaque_bias : int; (* percent chance a leaf is an opaque call *)
}

let default_profile =
  {
    stmt_budget = 40;
    max_depth = 4;
    params = 4;
    loop_weight = 2;
    if_weight = 5;
    switch_weight = 1;
    chain_weight = 1;
    assign_weight = 8;
    equality_guard_weight = 25;
    constant_guard_weight = 15;
    redundancy_bias = 30;
    opaque_bias = 10;
  }

type state = {
  rng : Util.Prng.t;
  mutable vars : string array; (* currently-defined variables *)
  mutable protected : string list; (* loop counters: never reassigned *)
  mutable loop_depth : int; (* nesting cap keeps dynamic step counts small *)
  mutable fresh : int;
  mutable exprs : Ast.expr list; (* previously built expressions, for reuse *)
  mutable budget : int;
  profile : profile;
}

let pick_var st = Util.Prng.choose st.rng st.vars

let fresh_var st =
  let v = Printf.sprintf "t%d" st.fresh in
  st.fresh <- st.fresh + 1;
  v

let small_const st = Util.Prng.range st.rng (-9) 9

let binops = [| Ir.Types.Add; Ir.Types.Add; Ir.Types.Sub; Ir.Types.Mul; Ir.Types.And; Ir.Types.Or; Ir.Types.Xor |]
let cmps = [| Ir.Types.Eq; Ir.Types.Ne; Ir.Types.Lt; Ir.Types.Le; Ir.Types.Gt; Ir.Types.Ge |]

let rec gen_expr st depth : Ast.expr =
  let p = st.profile in
  if
    st.exprs <> []
    && depth > 0
    && Util.Prng.chance st.rng p.redundancy_bias 100
  then
    (* Reuse a previously generated expression verbatim: a redundancy for
       value numbering to discover. *)
    List.nth st.exprs (Util.Prng.int st.rng (List.length st.exprs))
  else if depth = 0 then
    if Util.Prng.chance st.rng p.opaque_bias 100 then
      Ast.Ecall (Printf.sprintf "f%d" (Util.Prng.int st.rng 4), [ Ast.Evar (pick_var st) ])
    else if Util.Prng.chance st.rng 40 100 then Ast.Enum (small_const st)
    else Ast.Evar (pick_var st)
  else begin
    let e =
      match Util.Prng.int st.rng 10 with
      | 0 -> Ast.Eunop (Ir.Types.Neg, gen_expr st (depth - 1))
      | 1 | 2 ->
          Ast.Ecmp
            (Util.Prng.choose st.rng cmps, gen_expr st (depth - 1), gen_expr st (depth - 1))
      | _ ->
          Ast.Ebinop
            (Util.Prng.choose st.rng binops, gen_expr st (depth - 1), gen_expr st (depth - 1))
    in
    if List.length st.exprs < 32 then st.exprs <- e :: st.exprs;
    e
  end

let gen_cond st depth : Ast.expr =
  let p = st.profile in
  let r = Util.Prng.int st.rng 100 in
  if r < p.equality_guard_weight && Array.length st.vars >= 2 then
    (* x == y: the inference analyses thrive on these. *)
    Ast.Ecmp (Ir.Types.Eq, Ast.Evar (pick_var st), Ast.Evar (pick_var st))
  else if r < p.equality_guard_weight + p.constant_guard_weight then
    if Util.Prng.bool st.rng then
      (* Constant guard: one arm is unreachable. *)
      Ast.Ecmp
        ( (if Util.Prng.bool st.rng then Ir.Types.Eq else Ir.Types.Ne),
          Ast.Enum (small_const st),
          Ast.Enum (small_const st) )
    else
      (* Comparison against a constant: predicate inference fodder when
         nested under another one. *)
      Ast.Ecmp (Util.Prng.choose st.rng cmps, Ast.Evar (pick_var st), Ast.Enum (small_const st))
  else Ast.Ecmp (Util.Prng.choose st.rng cmps, gen_expr st (min 1 depth), gen_expr st (min 1 depth))

let rec gen_stmts st depth : Ast.stmt list =
  let p = st.profile in
  let stmts = ref [] in
  let emit s = stmts := s :: !stmts in
  let continue_here () = st.budget > 0 && Util.Prng.chance st.rng 85 100 in
  while continue_here () do
    st.budget <- st.budget - 1;
    let kind =
      if depth >= p.max_depth then `Assign
      else
        (* at most two nested loops: iteration counts multiply, and the
           differential tests need every program to finish well within the
           interpreter's fuel in *every* IR (the register IR executes
           uncoalesced copies, so it burns fuel faster) *)
        let loop_w = if st.loop_depth >= 2 then 0 else p.loop_weight in
        match
          Util.Prng.weighted st.rng
            [| p.assign_weight; p.if_weight; max loop_w 0; p.switch_weight; p.chain_weight |]
        with
        | 0 -> `Assign
        | 1 -> `If
        | 2 when loop_w > 0 -> `Loop
        | 2 -> `Assign
        | 3 -> `Switch
        | _ -> `Chain
    in
    match kind with
    | `Assign ->
        (* Loop counters are never reassigned, so every loop terminates. *)
        let candidates =
          Array.to_list st.vars |> List.filter (fun v -> not (List.mem v st.protected))
        in
        let reuse_var = candidates <> [] && Util.Prng.chance st.rng 50 100 in
        let v =
          if reuse_var then List.nth candidates (Util.Prng.int st.rng (List.length candidates))
          else fresh_var st
        in
        let e = gen_expr st (1 + Util.Prng.int st.rng 2) in
        if not reuse_var then st.vars <- Array.append st.vars [| v |];
        emit (Ast.Sassign (v, e))
    | `If ->
        let cond = gen_cond st depth in
        let saved = st.vars in
        let then_ = gen_stmts st (depth + 1) in
        st.vars <- saved;
        let else_ = if Util.Prng.bool st.rng then gen_stmts st (depth + 1) else [] in
        st.vars <- saved;
        emit (Ast.Sif (cond, then_, else_));
        if Util.Prng.chance st.rng 20 100 then begin
          (* A twin diamond guarded by the same condition, assigning a
             parallel variable: the φ-predication pattern (congruent block
             predicates across structurally separate conditionals). *)
          let v1 = fresh_var st and v2 = fresh_var st in
          let c1 = small_const st and c2 = small_const st in
          st.vars <- Array.append st.vars [| v1; v2 |];
          emit (Ast.Sassign (v1, Ast.Enum c1));
          emit (Ast.Sif (cond, [ Ast.Sassign (v1, Ast.Enum c2) ], []));
          emit (Ast.Sassign (v2, Ast.Enum c1));
          emit (Ast.Sif (cond, [ Ast.Sassign (v2, Ast.Enum c2) ], []))
        end
    | `Chain ->
        (* A chained-inequality guard ladder over three fresh variables:
           x ≤ y and y ≤ z dominate a query comparing x against z. Neither
           fact decides the query alone — only their conjunction does — so
           single-fact predicate inference must leave the inner branch
           undecided while the multi-fact implication closure prunes its
           (empty) else edge. The endpoints are initialized from uniquely-
           named opaque calls and never registered in [st.vars]: opaque
           values keep the intervals at top (only the closure can decide
           the query) and the isolation guarantees no unrelated relational
           guard can combine with the ladder into a contradictory — dead —
           path, which would trip the lint-contradictory-path Warning the
           benchmarks are pinned clean of. *)
        let endpoint () =
          let v = fresh_var st in
          let arg =
            if Array.length st.vars = 0 then Ast.Enum (small_const st)
            else Ast.Evar (pick_var st)
          in
          emit (Ast.Sassign (v, Ast.Ecall ("chain_" ^ v, [ arg ])));
          v
        in
        let x = endpoint () and y = endpoint () and z = endpoint () in
        let op1 = if Util.Prng.bool st.rng then Ir.Types.Le else Ir.Types.Lt in
        let op2 = if Util.Prng.bool st.rng then Ir.Types.Le else Ir.Types.Lt in
        (* The implied relation: strict when either link is strict. *)
        let opq =
          if op1 = Ir.Types.Lt || op2 = Ir.Types.Lt then Ir.Types.Lt else Ir.Types.Le
        in
        let saved = st.vars in
        let live = gen_stmts st (depth + 1) in
        st.vars <- saved;
        emit
          (Ast.Sif
             ( Ast.Ecmp (op1, Ast.Evar x, Ast.Evar y),
               [
                 Ast.Sif
                   ( Ast.Ecmp (op2, Ast.Evar y, Ast.Evar z),
                     [ Ast.Sif (Ast.Ecmp (opq, Ast.Evar x, Ast.Evar z), live, []) ],
                     [] );
               ],
               [] ))
    | `Switch ->
        (* switch over a variable with a few small-constant cases; the per-
           case equality predicates feed value inference. *)
        let scrutinee = Ast.Evar (pick_var st) in
        let ncases = 2 + Util.Prng.int st.rng 3 in
        let labels = ref [] in
        while List.length !labels < ncases do
          let k = small_const st in
          if not (List.mem k !labels) then labels := k :: !labels
        done;
        let saved = st.vars in
        let cases =
          List.map
            (fun k ->
              let body = gen_stmts st (depth + 1) in
              st.vars <- saved;
              (k, body))
            !labels
        in
        let default = if Util.Prng.bool st.rng then gen_stmts st (depth + 1) else [] in
        st.vars <- saved;
        emit (Ast.Sswitch (scrutinee, cases, default))
    | `Loop ->
        (* Counted loop: i = 0; while (i < k) { body; i = i + 1; } —
           always terminates. *)
        let i = fresh_var st in
        st.vars <- Array.append st.vars [| i |];
        st.protected <- i :: st.protected;
        emit (Ast.Sassign (i, Ast.Enum 0));
        let k = 1 + Util.Prng.int st.rng 8 in
        let saved = st.vars in
        st.loop_depth <- st.loop_depth + 1;
        let body = gen_stmts st (depth + 1) in
        st.loop_depth <- st.loop_depth - 1;
        st.vars <- saved;
        st.protected <- List.tl st.protected;
        let body = body @ [ Ast.Sassign (i, Ast.Ebinop (Ir.Types.Add, Ast.Evar i, Ast.Enum 1)) ] in
        emit (Ast.Swhile (Ast.Ecmp (Ir.Types.Lt, Ast.Evar i, Ast.Enum k), body))
  done;
  List.rev !stmts

(* Generate one routine. Deterministic in [seed] and [profile]. *)
let routine ?(profile = default_profile) ~seed ~name () : Ast.routine =
  let rng = Util.Prng.create seed in
  let params = List.init profile.params (fun k -> Printf.sprintf "p%d" k) in
  let st =
    {
      rng;
      vars = Array.of_list params;
      protected = [];
      loop_depth = 0;
      fresh = 0;
      exprs = [];
      budget = profile.stmt_budget;
      profile;
    }
  in
  let body = gen_stmts st 0 in
  let ret = Ast.Sreturn (gen_expr st 2) in
  { Ast.name; params; body = body @ [ ret ] }

(* Straight to SSA. *)
let func ?profile ?(pruning = Ssa.Construct.Semi_pruned) ~seed ~name () : Ir.Func.t =
  Ssa.Construct.of_cir ~pruning (Ir.Lower.lower_routine (routine ?profile ~seed ~name ()))

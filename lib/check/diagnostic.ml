(* The currency of the verifier: a structured finding, not an exception.
   Every checker in this library reports through this type so that callers
   can filter by severity, match on check ids, and attribute findings to
   pipeline passes. *)

type severity = Error | Warning | Info

type loc =
  | Func
  | Block of int
  | Instr of int
  | Edge of int

type t = { severity : severity; check : string; loc : loc; message : string }

let make severity ~check ~loc fmt =
  Printf.ksprintf (fun message -> { severity; check; loc; message }) fmt

let error ~check ~loc fmt = make Error ~check ~loc fmt
let warning ~check ~loc fmt = make Warning ~check ~loc fmt
let info ~check ~loc fmt = make Info ~check ~loc fmt

let is_error d = d.severity = Error

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let loc_rank = function
  | Func -> (0, 0)
  | Block b -> (1, b)
  | Instr i -> (2, i)
  | Edge e -> (3, e)

(* Errors first, then by check id and location: a stable report order. *)
let compare a b =
  compare
    (severity_rank a.severity, a.check, loc_rank a.loc, a.message)
    (severity_rank b.severity, b.check, loc_rank b.loc, b.message)

let string_of_severity = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

let pp_loc ppf = function
  | Func -> Fmt.string ppf "func"
  | Block b -> Fmt.pf ppf "b%d" b
  | Instr i -> Fmt.pf ppf "v%d" i
  | Edge e -> Fmt.pf ppf "e%d" e

let pp ppf d =
  Fmt.pf ppf "%s[%s] at %a: %s" (string_of_severity d.severity) d.check pp_loc
    d.loc d.message

let to_string d = Fmt.str "%a" pp d

(** Schedule-legality verifier: certifies a proposed per-value block
    assignment against SSA dominance, φ anchoring, speculation safety and
    loop depth. Independent of [lib/schedule] — it recomputes dominators,
    the loop forest and the interval facts from first principles, so the
    placement analysis and its checker share no conclusions.

    Check ids, all [Error] severity, pinned by the test suite:
    [sched-placement] (malformed vector / unreachable or nonexistent
    target), [sched-phi] (φ moved), [sched-dominance] (def no longer
    dominates a use position; φ uses live at the carrying predecessor
    edge's source), [sched-speculation] (faulting op moved to a block whose
    refined interval facts do not clear it, or an opaque call moved at
    all), [sched-loop-depth] (moved into a strictly deeper loop).

    The checker judges block-level placement; within-block ordering is the
    transform's concern. *)

type placement = int array
(** [placement.(v)] is the block assigned to value [v]; entries for
    non-value instructions (terminators) are ignored. *)

val identity : Ir.Func.t -> placement
(** Every instruction at its current block. Certified violation-free on
    the whole corpus. *)

val run : ?placement:placement -> Ir.Func.t -> Diagnostic.t list
(** Verify [placement] (default: the identity). Never raises. *)

(** SSA verifier: single definition, instr/block table agreement, φ
    placement and arity, operand validity, def-dominates-use for straight
    uses, per-edge availability for φ arguments, and no reachable use of a
    definition in an unreachable block.

    Subsumes the old [Ssa.Verify] exception-based check (which is now a thin
    wrapper over this module). Assumes {!Cfg_check} reported no errors. *)

val run : Ir.Func.t -> Diagnostic.t list

(** Type checker over the integer IR: a Bot < Bool < Int refinement lattice
    (Bool = provably 0/1), inferred as a fixpoint through φs, plus the
    per-opcode agreement checks it enables — parameter indices in range
    (error), consistent opaque-call arity per tag (warning), and
    dead switch cases on boolean scrutinees (warning).

    Assumes {!Cfg_check} and {!Ssa_check} reported no errors. *)

type ty = Bot | Bool | Int

val join : ty -> ty -> ty
val string_of_ty : ty -> string

val infer : Ir.Func.t -> ty array
(** Per-value refinement type; terminators (which define no value) get
    [Bot]. *)

val run : Ir.Func.t -> Diagnostic.t list

(* Schedule-legality verifier: given a proposed placement (per-value block
   assignment), certify that rescheduling every value to its assigned block
   preserves SSA dominance, φ anchoring, trap safety, and never drags a
   computation into a deeper loop.

   Deliberately independent of lib/schedule — this is the other side of the
   certification fence. It recomputes dominators, the loop forest and the
   interval facts from first principles and judges any placement, including
   the identity (which it certifies on the whole corpus today) and the
   output of a future GCM transform.

   Speculation discipline: a MOVED faulting op must be cleared by the
   refined facts at its proposed block ([env_at], which includes the branch
   constraints holding there) — an op left at its original block needs no
   clearance, because the original program already evaluates it there. This
   is the dual of the placement analysis, which uses unrefined facts to
   decide what may float: the checker asks about one concrete destination,
   so the destination's own guards count.

   Check ids (all Error severity, pinned by tests):
   - sched-placement:   placement vector malformed / target out of range or
                        unreachable;
   - sched-phi:         a φ moved off its block;
   - sched-dominance:   a value's block no longer dominates a use position
                        (plain and terminator uses at the user's block, φ
                        uses at the carrying predecessor edge's source);
   - sched-speculation: a faulting op moved to a block whose predicates do
                        not clear it, or an opaque call moved at all;
   - sched-loop-depth:  a value moved to a strictly deeper loop. *)

type placement = int array

let identity (f : Ir.Func.t) = Array.copy f.Ir.Func.instr_block

let run ?placement (f : Ir.Func.t) : Diagnostic.t list =
  let place = match placement with Some p -> p | None -> identity f in
  let ni = Ir.Func.num_instrs f in
  let nb = Ir.Func.num_blocks f in
  if Array.length place <> ni then
    [
      Diagnostic.error ~check:"sched-placement" ~loc:Diagnostic.Func
        "placement has %d entries for %d instructions" (Array.length place) ni;
    ]
  else begin
    let g = Analysis.Graph.of_func f in
    let dom = Analysis.Dom.compute g in
    let forest = Analysis.Loops.forest ~dom g in
    (* Both fact sources are only needed when a faulting op actually moved.
       A destination clears a division if its refined intervals do, or if
       the multi-fact implication closure over its dominating branch facts
       does — guard conjunctions like [d != 0 && d != -1] are invisible to
       intervals. Both are recomputed here from first principles. *)
    let ranges = lazy (Absint.Ranges.run f) in
    let pfacts = lazy (Pred.Facts.compute f) in
    let cleared_at b v =
      match Ir.Func.instr f v with
      | Ir.Func.Binop ((Ir.Types.Div | Ir.Types.Rem), n, d) ->
          let r = Lazy.force ranges in
          let num = Absint.Ranges.env_at r b n
          and den = Absint.Ranges.env_at r b d in
          ((not (Absint.Itv.mem 0 den))
          && not (Absint.Itv.mem (-1) den && Absint.Itv.mem min_int num))
          ||
          let cl = Pred.Facts.closure_at_block (Lazy.force pfacts) b in
          let proves op a c =
            Pred.Closure.decide cl op a (Pred.Atom.Const c) = Pred.Closure.True
          in
          let dt = Pred.Facts.term_of f d and nt = Pred.Facts.term_of f n in
          proves Ir.Types.Ne dt 0
          && (proves Ir.Types.Ne dt (-1) || proves Ir.Types.Ne nt min_int)
      | _ -> true
    in
    let diags = ref [] in
    let add d = diags := d :: !diags in
    for v = 0 to ni - 1 do
      let ins = Ir.Func.instr f v in
      if Ir.Func.defines_value ins then begin
        let b = Ir.Func.block_of_instr f v in
        let p = place.(v) in
        if p < 0 || p >= nb then
          add
            (Diagnostic.error ~check:"sched-placement" ~loc:(Diagnostic.Instr v)
               "v%d placed in nonexistent block %d" v p)
        else if p <> b then begin
          if not (Analysis.Dom.reachable dom b && Analysis.Dom.reachable dom p)
          then
            add
              (Diagnostic.error ~check:"sched-placement" ~loc:(Diagnostic.Instr v)
                 "v%d moved %s unreachable code (b%d -> b%d)" v
                 (if Analysis.Dom.reachable dom b then "into" else "out of")
                 b p)
          else begin
            (match ins with
            | Ir.Func.Phi _ ->
                add
                  (Diagnostic.error ~check:"sched-phi" ~loc:(Diagnostic.Instr v)
                     "φ v%d moved off its block (b%d -> b%d)" v b p)
            | Ir.Func.Opaque _ ->
                add
                  (Diagnostic.error ~check:"sched-speculation"
                     ~loc:(Diagnostic.Instr v)
                     "opaque call v%d may not move (b%d -> b%d)" v b p)
            | Ir.Func.Binop ((Ir.Types.Div | Ir.Types.Rem), _, _)
              when not (cleared_at p v) ->
                add
                  (Diagnostic.error ~check:"sched-speculation"
                     ~loc:(Diagnostic.Instr v)
                     "v%d may fault and b%d's predicates do not clear it: \
                      hoisted past an uncleared predicate (from b%d)"
                     v p b)
            | _ -> ());
            if Analysis.Loops.depth_at forest p > Analysis.Loops.depth_at forest b
            then
              add
                (Diagnostic.error ~check:"sched-loop-depth"
                   ~loc:(Diagnostic.Instr v)
                   "v%d moved into a deeper loop: b%d depth %d -> b%d depth %d"
                   v b
                   (Analysis.Loops.depth_at forest b)
                   p
                   (Analysis.Loops.depth_at forest p))
          end
        end
      end
    done;
    (* Dominance: every definition's placed block must dominate every use
       position. Use positions ignore the placement of the USER only for
       φs and terminators, which are anchored (and checked above). *)
    let use_ok vdef pos = Analysis.Dom.dominates dom place.(vdef) pos in
    Array.iteri
      (fun u ins ->
        let check_use msg vdef pos =
          (* Out-of-range targets (of either end) already got their own
             sched-placement error. *)
          if
            place.(vdef) >= 0
            && place.(vdef) < nb
            && pos >= 0
            && pos < nb
            && Analysis.Dom.reachable dom place.(vdef)
            && Analysis.Dom.reachable dom pos
            && not (use_ok vdef pos)
          then
            add
              (Diagnostic.error ~check:"sched-dominance" ~loc:(Diagnostic.Instr u)
                 "v%d placed in b%d does not dominate its %s in b%d (use by v%d)"
                 vdef place.(vdef) msg pos u)
        in
        match ins with
        | Ir.Func.Phi args ->
            let blk = Ir.Func.block f (Ir.Func.block_of_instr f u) in
            Array.iteri
              (fun ix v ->
                let src = (Ir.Func.edge f blk.Ir.Func.preds.(ix)).Ir.Func.src in
                check_use "φ edge" v src)
              args
        | _ when Ir.Func.is_terminator ins ->
            let pos = Ir.Func.block_of_instr f u in
            Ir.Func.iter_operands (fun v -> check_use "terminator" v pos) ins
        | _ ->
            let pos = if Ir.Func.defines_value ins then place.(u) else Ir.Func.block_of_instr f u in
            Ir.Func.iter_operands (fun v -> check_use "use" v pos) ins)
      f.Ir.Func.instrs;
    List.rev !diags
  end

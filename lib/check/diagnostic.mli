(** Structured diagnostics produced by the IR verifier and linter.

    A diagnostic carries a severity, a stable check id (e.g.
    ["ssa-dominance"]), a location inside the function, and a human-readable
    message. Checkers never raise: they return lists of these. *)

type severity =
  | Error  (** the IR invariant is broken; downstream passes are unsound *)
  | Warning  (** suspicious but semantically tolerable *)
  | Info  (** a report, e.g. a critical edge *)

type loc =
  | Func  (** the function as a whole *)
  | Block of int
  | Instr of int  (** an instruction / value id *)
  | Edge of int  (** a CFG edge id *)

type t = { severity : severity; check : string; loc : loc; message : string }

val error : check:string -> loc:loc -> ('a, unit, string, t) format4 -> 'a
val warning : check:string -> loc:loc -> ('a, unit, string, t) format4 -> 'a
val info : check:string -> loc:loc -> ('a, unit, string, t) format4 -> 'a

val is_error : t -> bool

val compare : t -> t -> int
(** Errors before warnings before infos; then check id, then location. *)

val string_of_severity : severity -> string
val pp_loc : Format.formatter -> loc -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

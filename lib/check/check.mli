(** A multi-pass IR verifier and linter with structured diagnostics.

    Four checkers, run in dependency order:
    - {!Cfg}: edge-table/block-list mirror consistency, terminator
      placement and arity, entry invariants, duplicate/critical edges;
    - {!Ssa}: single definition, φ placement/arity, def-dominates-use,
      per-edge φ-argument availability, unreachable-def uses;
    - {!Ty}: a Bot < Bool < Int refinement with per-opcode agreement
      checks (parameter range, opaque arity, dead boolean switch cases);
    - {!Lint}: warnings for valid-but-unclean IR (unreachable blocks, dead
      pure instructions, trivial φs, forwarder blocks, constant branches).

    Checkers return {!Diagnostic.t} lists and never raise; {!check_exn} is
    the bridge for legacy raise-on-error callers such as [Ssa.Verify]. *)

module Diagnostic = Diagnostic
module Cfg = Cfg_check
module Ssa = Ssa_check
module Ty = Type_check
module Lint = Lint

module Schedule = Schedule_check
(** Schedule-legality verifier for proposed code-motion placements; not
    part of {!run_all} — it takes a placement, and the identity placement
    is certified by its own alias/CI step. *)

val run_all : ?lint:bool -> Ir.Func.t -> Diagnostic.t list
(** Run every checker. Structural (CFG) errors stop the run — the deeper
    checkers assume a sound CFG — as do SSA errors for the type checker and
    linter. [lint] (default false) adds the warning tier. *)

val errors : Diagnostic.t list -> Diagnostic.t list
(** The [Error]-severity subset. *)

val has_errors : Diagnostic.t list -> bool

val sort : Diagnostic.t list -> Diagnostic.t list
(** Stable report order: severity, then check id, then location. *)

val first_error : Ir.Func.t -> Diagnostic.t option
(** [run_all] without lints, returning the first error if any. *)

val check_exn : Ir.Func.t -> Ir.Func.t
(** Returns its argument. @raise Failure rendering the first
    [Error]-severity diagnostic, if any. *)

val pp_report : Format.formatter -> string * Diagnostic.t list -> unit
(** Render a named function's diagnostics, one per line, sorted. *)

(* The front door of the verifier/linter library: run the checkers in
   dependency order (structure first — the SSA and type checkers walk the
   CFG and would be meaningless, or unsafe, on a function whose edge tables
   lie), collect structured diagnostics, and offer the raise-on-error entry
   point the legacy callers expect. *)

module Diagnostic = Diagnostic
module Cfg = Cfg_check
module Ssa = Ssa_check
module Ty = Type_check
module Lint = Lint
module Schedule = Schedule_check

let errors ds = List.filter Diagnostic.is_error ds
let has_errors ds = List.exists Diagnostic.is_error ds
let sort ds = List.stable_sort Diagnostic.compare ds

let run_all ?(lint = false) (f : Ir.Func.t) : Diagnostic.t list =
  let cfg = Cfg_check.run f in
  if has_errors cfg then cfg
  else
    let ssa = Ssa_check.run f in
    if has_errors ssa then cfg @ ssa
    else cfg @ ssa @ Type_check.run f @ (if lint then Lint.run f else [])

let first_error f = List.nth_opt (errors (run_all f)) 0

let check_exn (f : Ir.Func.t) : Ir.Func.t =
  match first_error f with
  | None -> f
  | Some d -> failwith (Fmt.str "%s: %a" f.Ir.Func.name Diagnostic.pp d)

let pp_report ppf (name, ds) =
  match ds with
  | [] -> Fmt.pf ppf "%s: clean@." name
  | ds -> List.iter (fun d -> Fmt.pf ppf "%s: %a@." name Diagnostic.pp d) (sort ds)

(* The lint tier. Two severities, deliberately:

   - {b Warning} — the program is probably wrong: a division that traps on
     every execution, a read of a register no path ever assigns. These are
     statements about the *source*, and [--Werror] should fail on them.
   - {b Info} — the program is fine but an optimization pipeline left money
     on the table: unreachable or never-executing blocks, dead values,
     trivial φs, forwarder blocks, compile-time-decidable branches. These
     fire routinely on *input* IR (that is what the optimizer is for), so
     they must not fail [--Werror]; they were downgraded from Warning when
     the semantic lints joined, because every nontrivial example program
     legitimately trips several of them before optimization.

   The structural sub-tier works from the CFG alone; the semantic sub-tier
   consults the sparse interval analysis ([Absint.Ranges]) and so sees
   through guards: a branch decided by dominating conditions, a divisor
   that is provably zero, code only reachable through contradictory
   predicates. *)

open Ir.Func

let run (f : Ir.Func.t) : Diagnostic.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ni = num_instrs f in
  (* Unreachable blocks. *)
  let g = Analysis.Graph.of_func f in
  let reach = Analysis.Graph.reachable g in
  Array.iteri
    (fun b r ->
      if not r then
        add
          (Diagnostic.info ~check:"lint-unreachable-block" ~loc:(Diagnostic.Block b)
             "b%d is unreachable from the entry" b))
    reach;
  (* Dead pure instructions: nothing in this IR has side effects, so a value
     is live only if a terminator transitively depends on it (the same
     notion DCE uses). *)
  let live = Array.make ni false in
  let rec mark v =
    if v >= 0 && v < ni && not live.(v) then begin
      live.(v) <- true;
      iter_operands mark (instr f v)
    end
  in
  Array.iter
    (fun ins -> match ins with Branch c | Switch (c, _) | Return c -> mark c | _ -> ())
    f.instrs;
  Array.iteri
    (fun i ins ->
      if defines_value ins && not live.(i) then
        add
          (Diagnostic.info ~check:"lint-dead-instr" ~loc:(Diagnostic.Instr i)
             "v%d is pure and unused (DCE fodder)" i))
    f.instrs;
  (* Trivial φs: all arguments equal, ignoring self-references. *)
  Array.iteri
    (fun i ins ->
      match ins with
      | Phi args ->
          let distinct =
            Array.to_list args |> List.filter (fun v -> v <> i) |> List.sort_uniq compare
          in
          if List.length distinct <= 1 then
            add
              (Diagnostic.info ~check:"lint-trivial-phi" ~loc:(Diagnostic.Instr i)
                 "φ v%d merges only %s" i
                 (match distinct with [ v ] -> Printf.sprintf "v%d" v | _ -> "itself"))
      | _ -> ())
    f.instrs;
  (* Forwarder blocks: a lone unconditional jump (the entry is exempt: it
     may legitimately forward into a loop header). *)
  Array.iteri
    (fun b (blk : block) ->
      if
        b <> entry
        && Array.length blk.instrs = 1
        && (match instr f blk.instrs.(0) with Jump -> true | _ -> false)
      then
        add
          (Diagnostic.info ~check:"lint-empty-block" ~loc:(Diagnostic.Block b)
             "b%d contains only a jump" b))
    f.blocks;
  (* Critical edges: src has several successors and dst several
     predecessors. Nothing can be inserted "on" such an edge, and
     mis-associating φ arguments across one is exactly the miscompile class
     the translation validator's behavior engine hunts. Info severity: the
     IR is fine, but edge-placement transforms would need a split. *)
  Array.iteri
    (fun e (edge : edge) ->
      if
        Array.length (block f edge.src).succs > 1
        && Array.length (block f edge.dst).preds > 1
      then
        add
          (Diagnostic.info ~check:"lint-critical-edge" ~loc:(Diagnostic.Edge e)
             "edge e%d (b%d -> b%d) is critical" e edge.src edge.dst))
    f.edges;
  (* Branches and switches on constants: the branch is decidable at compile
     time, so unreachable-code elimination left money on the table. *)
  Array.iteri
    (fun i ins ->
      match ins with
      | Branch c | Switch (c, _) -> (
          if c >= 0 && c < ni then
            match instr f c with
            | Const n ->
                add
                  (Diagnostic.info ~check:"lint-const-branch" ~loc:(Diagnostic.Instr i)
                     "v%d branches on the constant %d" i n)
            | _ -> ())
      | _ -> ())
    f.instrs;
  (* ------------------------------------------------------------------ *)
  (* Semantic sub-tier: one sparse interval analysis (with branch
     refinement and loop widening) feeds the remaining lints.            *)
  let res = Absint.Ranges.run f in
  let exec b = res.Absint.Ranges.block_exec.(b) in
  let env b v = Absint.Ranges.env_at res b v in
  (* Guaranteed division/remainder faults: executing the instruction always
     traps — either the divisor is zero, or the quotient min_int / -1
     overflows the machine word (the one other case [Ir.Types.fold_binop]
     refuses to fold). *)
  Array.iteri
    (fun i ins ->
      match ins with
      | Binop (((Ir.Types.Div | Ir.Types.Rem) as op), n, d) ->
          let b = block_of_instr f i in
          if exec b then begin
            let verb = match op with Ir.Types.Div -> "divides" | _ -> "takes a remainder" in
            if Absint.Itv.is_const (env b d) = Some 0 then
              add
                (Diagnostic.warning ~check:"lint-div-by-zero" ~loc:(Diagnostic.Instr i)
                   "v%d always %s by zero: it traps on every execution reaching it" i verb)
            else if
              Absint.Itv.is_const (env b d) = Some (-1)
              && Absint.Itv.is_const (env b n) = Some min_int
            then
              add
                (Diagnostic.warning ~check:"lint-div-by-zero" ~loc:(Diagnostic.Instr i)
                   "v%d always overflows: it %s min_int by -1, which traps on every \
                    execution reaching it"
                   i verb)
          end
      | _ -> ())
    f.instrs;
  (* Branches decided by dominating guards rather than a literal constant
     condition (those are lint-const-branch's). *)
  Array.iteri
    (fun i ins ->
      match ins with
      | Branch c when (match instr f c with Const _ -> false | _ -> true) -> (
          let b = block_of_instr f i in
          if exec b then
            match Absint.Itv.to_bool (env b c) with
            | Some true ->
                add
                  (Diagnostic.info ~check:"lint-branch-decided" ~loc:(Diagnostic.Instr i)
                     "branch v%d is always taken (dominating guards decide v%d ≠ 0)" i c)
            | Some false ->
                add
                  (Diagnostic.info ~check:"lint-branch-decided" ~loc:(Diagnostic.Instr i)
                     "branch v%d is never taken (dominating guards decide v%d = 0)" i c)
            | None -> ())
      | _ -> ())
    f.instrs;
  (* Blocks the interval semantics proves can never execute, though the
     bare CFG reaches them (the structural lint covers those). *)
  Array.iteri
    (fun b r ->
      if r && not (exec b) then
        add
          (Diagnostic.info ~check:"lint-absint-unreachable" ~loc:(Diagnostic.Block b)
             "b%d is structurally reachable but can never execute" b))
    reach;
  (* Dead stores, sparsely: liveness restricted to the executable sub-CFG.
     A value whose uses all sit in never-executing blocks is computed for
     nothing — invisible to the purely syntactic dead-instr lint above. *)
  let du = def_use f in
  Array.iteri
    (fun i ins ->
      if defines_value ins && exec (block_of_instr f i) && live.(i) then
        let users = du.(i) in
        if
          Array.length users > 0
          && Array.for_all (fun u -> not (exec (block_of_instr f u))) users
        then
          add
            (Diagnostic.info ~check:"lint-dead-store" ~loc:(Diagnostic.Instr i)
               "v%d is only used by code that can never execute" i))
    f.instrs;
  (* ------------------------------------------------------------------ *)
  (* Predicate-implication sub-tier: the multi-fact closure over the
     dominating branch facts (lib/pred) sees guard conjunctions that both
     the bare CFG and one-value interval refinement miss — x < y together
     with y < x, or x > 2 with x ≠ 3 deciding x > 3.                     *)
  let pfacts = Pred.Facts.compute f in
  let dom = Analysis.Dom.compute g in
  let contra b = Pred.Closure.contradictory (Pred.Facts.closure_at_block pfacts b) in
  (* Contradictory path conditions: the guards on the dominator path to a
     block are jointly unsatisfiable, so the block can never execute.
     Warning — a statement about the source: somebody wrote *code* under
     conditions that contradict each other. Scoped three ways: to
     contradictions the interval tier missed (when [exec b] is already
     false, lint-absint-unreachable reports it); to blocks that carry real
     instructions — an empty forwarder on a contradictory edge is just the
     branch's untaken arm, and lint-redundant-branch already reports the
     deciding branch; and to the highest such block — everything it
     dominates is contradictory too. *)
  let novel_contra b = reach.(b) && exec b && contra b in
  let has_code b =
    let blk = block f b in
    Array.exists (fun i -> not (is_phi (instr f i) || is_terminator (instr f i))) blk.instrs
  in
  let rec reported_above b =
    let d = dom.Analysis.Dom.idom.(b) in
    d >= 0 && d <> b && ((novel_contra d && has_code d) || reported_above d)
  in
  Array.iteri
    (fun b r ->
      if r && novel_contra b && has_code b && not (reported_above b) then
        add
          (Diagnostic.warning ~check:"lint-contradictory-path" ~loc:(Diagnostic.Block b)
             "b%d is guarded by contradictory conditions: no execution can reach it" b))
    reach;
  (* Branches the fact closure decides but interval refinement cannot —
     the multi-fact counterpart of lint-branch-decided, and like it Info:
     the source is fine, an optimizer just left the test in. *)
  Array.iteri
    (fun i ins ->
      match ins with
      | Branch c when (match instr f c with Const _ -> false | _ -> true) -> (
          let b = block_of_instr f i in
          if exec b && (not (contra b)) && Absint.Itv.to_bool (env b c) = None then
            let cl = Pred.Facts.closure_at_block pfacts b in
            let verdict =
              match instr f c with
              | Cmp (op, x, y) ->
                  Pred.Closure.decide cl op (Pred.Facts.term_of f x) (Pred.Facts.term_of f y)
              | _ ->
                  Pred.Closure.decide cl Ir.Types.Ne (Pred.Facts.term_of f c)
                    (Pred.Atom.Const 0)
            in
            match verdict with
            | Pred.Closure.True ->
                add
                  (Diagnostic.info ~check:"lint-redundant-branch" ~loc:(Diagnostic.Instr i)
                     "branch v%d is always taken: the dominating facts imply v%d" i c)
            | Pred.Closure.False ->
                add
                  (Diagnostic.info ~check:"lint-redundant-branch" ~loc:(Diagnostic.Instr i)
                     "branch v%d is never taken: the dominating facts refute v%d" i c)
            | Pred.Closure.Unknown -> ())
      | _ -> ())
    f.instrs;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Pre-SSA lints. SSA construction seeds every never-assigned register
   with a shared constant 0, after which a provably-uninitialized read is
   indistinguishable from a deliberate zero — so this lint must run on
   [Cir], before construction. *)

let run_cir (c : Ir.Cir.t) : Diagnostic.t list =
  let diags = ref [] in
  let nb = Ir.Cir.num_blocks c in
  let nr = c.Ir.Cir.nregs in
  let succ = Ir.Cir.succ_blocks c in
  let reach = Array.make nb false in
  let rec dfs b =
    if not reach.(b) then begin
      reach.(b) <- true;
      Array.iter dfs succ.(b)
    end
  in
  if nb > 0 then dfs Ir.Cir.entry;
  (* Forward may-assigned sets: [r] ∈ in(b) iff some path from entry to [b]
     assigns [r] (parameters count as assigned on entry). A read of a
     register outside the set is *provably* uninitialized: no execution
     reaching it has ever assigned the register, so it always yields the
     implicit 0. *)
  let inb = Array.make_matrix nb nr false in
  for p = 0 to min c.Ir.Cir.nparams nr - 1 do
    inb.(Ir.Cir.entry).(p) <- true
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to nb - 1 do
      if reach.(b) then begin
        let out = Array.copy inb.(b) in
        Array.iter (fun i -> out.(Ir.Cir.def_of_rinstr i) <- true) c.Ir.Cir.blocks.(b).Ir.Cir.body;
        Array.iter
          (fun s ->
            for r = 0 to nr - 1 do
              if out.(r) && not inb.(s).(r) then begin
                inb.(s).(r) <- true;
                changed := true
              end
            done)
          succ.(b)
      end
    done
  done;
  let reported = Array.make nr false in
  let check_use b assigned r =
    if not assigned.(r) && not reported.(r) then begin
      reported.(r) <- true;
      diags :=
        Diagnostic.warning ~check:"lint-use-uninit" ~loc:(Diagnostic.Block b)
          "r%d is read in b%d but no path from the entry assigns it (always the implicit 0)"
          r b
        :: !diags
    end
  in
  for b = 0 to nb - 1 do
    if reach.(b) then begin
      let assigned = Array.copy inb.(b) in
      Array.iter
        (fun i ->
          Ir.Cir.iter_uses_rinstr (check_use b assigned) i;
          assigned.(Ir.Cir.def_of_rinstr i) <- true)
        c.Ir.Cir.blocks.(b).Ir.Cir.body;
      Ir.Cir.iter_uses_term (check_use b assigned) c.Ir.Cir.blocks.(b).Ir.Cir.term
    end
  done;
  List.rev !diags

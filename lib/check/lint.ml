(* The lint tier: findings that are semantically harmless but indicate work
   a transformation pipeline should have done — unreachable blocks, values
   no terminator depends on, φs that merge nothing, forwarder blocks, and
   branches on constants. All warnings; none of these make the IR invalid. *)

open Ir.Func

let run (f : Ir.Func.t) : Diagnostic.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ni = num_instrs f in
  (* Unreachable blocks. *)
  let g = Analysis.Graph.of_func f in
  let reach = Analysis.Graph.reachable g in
  Array.iteri
    (fun b r ->
      if not r then
        add
          (Diagnostic.warning ~check:"lint-unreachable-block" ~loc:(Diagnostic.Block b)
             "b%d is unreachable from the entry" b))
    reach;
  (* Dead pure instructions: nothing in this IR has side effects, so a value
     is live only if a terminator transitively depends on it (the same
     notion DCE uses). *)
  let live = Array.make ni false in
  let rec mark v =
    if v >= 0 && v < ni && not live.(v) then begin
      live.(v) <- true;
      iter_operands mark (instr f v)
    end
  in
  Array.iter
    (fun ins -> match ins with Branch c | Switch (c, _) | Return c -> mark c | _ -> ())
    f.instrs;
  Array.iteri
    (fun i ins ->
      if defines_value ins && not live.(i) then
        add
          (Diagnostic.warning ~check:"lint-dead-instr" ~loc:(Diagnostic.Instr i)
             "v%d is pure and unused (DCE fodder)" i))
    f.instrs;
  (* Trivial φs: all arguments equal, ignoring self-references. *)
  Array.iteri
    (fun i ins ->
      match ins with
      | Phi args ->
          let distinct =
            Array.to_list args |> List.filter (fun v -> v <> i) |> List.sort_uniq compare
          in
          if List.length distinct <= 1 then
            add
              (Diagnostic.warning ~check:"lint-trivial-phi" ~loc:(Diagnostic.Instr i)
                 "φ v%d merges only %s" i
                 (match distinct with [ v ] -> Printf.sprintf "v%d" v | _ -> "itself"))
      | _ -> ())
    f.instrs;
  (* Forwarder blocks: a lone unconditional jump (the entry is exempt: it
     may legitimately forward into a loop header). *)
  Array.iteri
    (fun b (blk : block) ->
      if
        b <> entry
        && Array.length blk.instrs = 1
        && (match instr f blk.instrs.(0) with Jump -> true | _ -> false)
      then
        add
          (Diagnostic.warning ~check:"lint-empty-block" ~loc:(Diagnostic.Block b)
             "b%d contains only a jump" b))
    f.blocks;
  (* Critical edges: src has several successors and dst several
     predecessors. Nothing can be inserted "on" such an edge, and
     mis-associating φ arguments across one is exactly the miscompile class
     the translation validator's behavior engine hunts. Info severity: the
     IR is fine, but edge-placement transforms would need a split. *)
  Array.iteri
    (fun e (edge : edge) ->
      if
        Array.length (block f edge.src).succs > 1
        && Array.length (block f edge.dst).preds > 1
      then
        add
          (Diagnostic.info ~check:"lint-critical-edge" ~loc:(Diagnostic.Edge e)
             "edge e%d (b%d -> b%d) is critical" e edge.src edge.dst))
    f.edges;
  (* Branches and switches on constants: the branch is decidable at compile
     time, so unreachable-code elimination left money on the table. *)
  Array.iteri
    (fun i ins ->
      match ins with
      | Branch c | Switch (c, _) -> (
          if c >= 0 && c < ni then
            match instr f c with
            | Const n ->
                add
                  (Diagnostic.warning ~check:"lint-const-branch" ~loc:(Diagnostic.Instr i)
                     "v%d branches on the constant %d" i n)
            | _ -> ())
      | _ -> ())
    f.instrs;
  List.rev !diags

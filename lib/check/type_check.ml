(* A light type discipline over the integer IR. Every value is an integer,
   but a useful refinement is whether it is provably boolean (always 0 or
   1): comparisons, logical not, 0/1 constants, bitwise combinations of
   booleans, and φs joining booleans. The lattice is Bot < Bool < Int; φs
   make the inference a (two-iteration-height) fixpoint.

   The checks that fall out:
   - [Param k] must name one of the routine's parameters;
   - an opaque tag should be applied at one arity throughout (the frontend
     derives tags from callee names, so mixed arity means two different
     calls were conflated);
   - a switch scrutinized value of type Bool makes any case constant
     outside {0, 1} dead. *)

open Ir.Func

type ty = Bot | Bool | Int

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Bool, Bool -> Bool
  | _ -> Int

let le_bool = function Bot | Bool -> true | Int -> false

let string_of_ty = function Bot -> "bot" | Bool -> "bool" | Int -> "int"

let infer (f : Ir.Func.t) : ty array =
  let ni = num_instrs f in
  let tys = Array.make ni Bot in
  let ty_of v = if v >= 0 && v < ni then tys.(v) else Int in
  let transfer = function
    | Const n -> if n = 0 || n = 1 then Bool else Int
    | Param _ | Opaque _ -> Int
    | Cmp _ | Unop (Ir.Types.Lnot, _) -> Bool
    | Unop _ -> Int
    | Binop (op, a, b) -> (
        match op with
        | Ir.Types.And | Ir.Types.Or | Ir.Types.Xor | Ir.Types.Mul
          when le_bool (ty_of a) && le_bool (ty_of b) ->
            Bool
        | _ -> Int)
    | Phi args -> Array.fold_left (fun acc v -> join acc (ty_of v)) Bot args
    | Jump | Branch _ | Switch _ | Return _ -> Bot
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to ni - 1 do
      let t = join tys.(i) (transfer (instr f i)) in
      if t <> tys.(i) then begin
        tys.(i) <- t;
        changed := true
      end
    done
  done;
  tys

let run (f : Ir.Func.t) : Diagnostic.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let tys = infer f in
  let arity_of_tag : (int, int * int) Hashtbl.t = Hashtbl.create 8 in
  Array.iteri
    (fun i ins ->
      match ins with
      | Param k ->
          if k < 0 || k >= f.nparams then
            add
              (Diagnostic.error ~check:"type-param-range" ~loc:(Diagnostic.Instr i)
                 "v%d reads parameter %d of a %d-parameter routine" i k f.nparams)
      | Opaque (tag, args) -> (
          let arity = Array.length args in
          match Hashtbl.find_opt arity_of_tag tag with
          | None -> Hashtbl.add arity_of_tag tag (arity, i)
          | Some (a, first) ->
              if a <> arity then
                add
                  (Diagnostic.warning ~check:"type-opaque-arity" ~loc:(Diagnostic.Instr i)
                     "opaque#%d applied to %d arguments at v%d but %d at v%d" tag arity i a
                     first))
      | Switch (v, cases) ->
          if v >= 0 && v < num_instrs f && tys.(v) = Bool then
            Array.iter
              (fun k ->
                if k <> 0 && k <> 1 then
                  add
                    (Diagnostic.warning ~check:"type-switch-case-dead" ~loc:(Diagnostic.Instr i)
                       "switch scrutinee v%d is boolean, so case %d can never be taken" v k))
              cases
      | _ -> ())
    f.instrs;
  List.rev !diags

(** Lint tier: warnings for IR that is valid but that a clean pipeline
    should not produce — unreachable blocks, dead pure instructions,
    trivial φs, forwarder (jump-only) blocks, branches on constants — plus
    an Info report of critical edges (["lint-critical-edge"]), where
    mis-associated φ arguments would hide.

    Assumes {!Cfg_check} reported no errors. *)

val run : Ir.Func.t -> Diagnostic.t list

(** Lint tier: warnings for IR that is valid but that a clean pipeline
    should not produce — unreachable blocks, dead pure instructions,
    trivial φs, forwarder (jump-only) blocks, branches on constants.

    Assumes {!Cfg_check} reported no errors. *)

val run : Ir.Func.t -> Diagnostic.t list

(** Lint tier, in two severities:

    - {b Warning} (probable source bug): guaranteed division/remainder by
      zero (["lint-div-by-zero"]), reads of provably-uninitialized
      registers (["lint-use-uninit"], pre-SSA — see {!run_cir});
    - {b Info} (optimization opportunity, routine on input IR):
      unreachable or never-executing blocks, dead pure instructions,
      stores only dead code reads, trivial φs, forwarder blocks, branches
      on constants or decided by dominating guards, critical edges.

    The semantic lints consult a sparse interval analysis
    ([Absint.Ranges]) with branch refinement, so they see through guards.

    Assumes {!Cfg_check} reported no errors. *)

val run : Ir.Func.t -> Diagnostic.t list

val run_cir : Ir.Cir.t -> Diagnostic.t list
(** Pre-SSA lints ([lint-use-uninit]): SSA construction seeds unassigned
    registers with a shared constant 0, so provably-uninitialized reads
    must be detected before construction. *)

(** CFG invariant checker: edge-table/block-list mirror consistency, entry
    reachability preconditions (entry exists, has no predecessors),
    terminator placement and arity, switch case uniqueness, plus
    duplicate-edge warnings and critical-edge reports.

    Safe on arbitrarily corrupted functions: never raises. The other
    checkers ({!Ssa_check}, {!Type_check}, {!Lint}) assume this checker
    reported no errors. *)

val run : Ir.Func.t -> Diagnostic.t list

(* CFG invariants: the edge table and the per-block pred/succ lists must
   mirror each other exactly, every block must end in exactly one terminator
   whose shape matches its out-degree, and the entry block must have no
   predecessors. Everything here is index-guarded so the checker survives
   arbitrarily corrupted functions without raising. *)

open Ir.Func

let run (f : Ir.Func.t) : Diagnostic.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let err ~check ~loc fmt = Printf.ksprintf (fun m -> add (Diagnostic.error ~check ~loc "%s" m)) fmt in
  let nb = num_blocks f and ni = num_instrs f and ne = num_edges f in
  if nb = 0 then
    [ Diagnostic.error ~check:"cfg-no-blocks" ~loc:Diagnostic.Func "function %s has no blocks" f.name ]
  else begin
    (* Edge table -> block lists. *)
    Array.iteri
      (fun e { src; dst; src_ix; dst_ix } ->
        if src < 0 || src >= nb || dst < 0 || dst >= nb then
          err ~check:"cfg-edge-endpoints" ~loc:(Diagnostic.Edge e)
            "edge e%d connects b%d -> b%d, outside the %d blocks" e src dst nb
        else begin
          let bsrc = block f src and bdst = block f dst in
          if src_ix < 0 || src_ix >= Array.length bsrc.succs || bsrc.succs.(src_ix) <> e then
            err ~check:"cfg-edge-src-mirror" ~loc:(Diagnostic.Edge e)
              "edge e%d claims slot %d of b%d's successors, which does not hold it" e src_ix src;
          if dst_ix < 0 || dst_ix >= Array.length bdst.preds || bdst.preds.(dst_ix) <> e then
            err ~check:"cfg-edge-dst-mirror" ~loc:(Diagnostic.Edge e)
              "edge e%d claims slot %d of b%d's predecessors, which does not hold it" e dst_ix dst
        end)
      f.edges;
    (* Block lists -> edge table. *)
    Array.iteri
      (fun b (blk : block) ->
        Array.iteri
          (fun ix e ->
            if e < 0 || e >= ne then
              err ~check:"cfg-succ-edge-range" ~loc:(Diagnostic.Block b)
                "b%d successor slot %d holds edge id %d, outside the %d edges" b ix e ne
            else
              let ed = edge f e in
              if ed.src <> b || ed.src_ix <> ix then
                err ~check:"cfg-succ-mirror" ~loc:(Diagnostic.Block b)
                  "b%d successor slot %d holds e%d, whose source is b%d slot %d" b ix e ed.src
                  ed.src_ix)
          blk.succs;
        Array.iteri
          (fun ix e ->
            if e < 0 || e >= ne then
              err ~check:"cfg-pred-edge-range" ~loc:(Diagnostic.Block b)
                "b%d predecessor slot %d holds edge id %d, outside the %d edges" b ix e ne
            else
              let ed = edge f e in
              if ed.dst <> b || ed.dst_ix <> ix then
                err ~check:"cfg-pred-mirror" ~loc:(Diagnostic.Block b)
                  "b%d predecessor slot %d holds e%d, whose destination is b%d slot %d" b ix e
                  ed.dst ed.dst_ix)
          blk.preds)
      f.blocks;
    if Array.length (block f entry).preds <> 0 then
      err ~check:"cfg-entry-preds" ~loc:(Diagnostic.Block entry)
        "entry block has %d predecessors" (Array.length (block f entry).preds);
    (* Terminator placement and arity per block. *)
    Array.iteri
      (fun b (blk : block) ->
        let n = Array.length blk.instrs in
        if n = 0 then
          err ~check:"cfg-block-no-instrs" ~loc:(Diagnostic.Block b)
            "b%d has no instructions (needs at least a terminator)" b
        else
          Array.iteri
            (fun pos i ->
              if i < 0 || i >= ni then
                err ~check:"cfg-instr-range" ~loc:(Diagnostic.Block b)
                  "b%d position %d holds instruction id %d, outside the %d instructions" b pos i
                  ni
              else begin
                let ins = instr f i in
                if is_terminator ins && pos <> n - 1 then
                  err ~check:"cfg-terminator-position" ~loc:(Diagnostic.Instr i)
                    "terminator v%d at position %d of b%d is not last" i pos b;
                if pos = n - 1 then
                  if not (is_terminator ins) then
                    err ~check:"cfg-terminator-missing" ~loc:(Diagnostic.Block b)
                      "b%d does not end in a terminator" b
                  else begin
                    let out = Array.length blk.succs in
                    let expect =
                      match ins with
                      | Jump -> Some 1
                      | Branch _ -> Some 2
                      | Switch (_, cases) -> Some (Array.length cases + 1)
                      | Return _ -> Some 0
                      | _ -> None
                    in
                    (match expect with
                    | Some k when k <> out ->
                        err ~check:"cfg-terminator-arity" ~loc:(Diagnostic.Instr i)
                          "terminator of b%d wants %d successors, block has %d" b k out
                    | _ -> ());
                    match ins with
                    | Switch (_, cases) ->
                        let sorted = Array.copy cases in
                        Array.sort compare sorted;
                        for k = 1 to Array.length sorted - 1 do
                          if sorted.(k) = sorted.(k - 1) then
                            err ~check:"cfg-switch-duplicate-case" ~loc:(Diagnostic.Instr i)
                              "switch in b%d lists case constant %d twice" b sorted.(k)
                        done
                    | _ -> ()
                  end
              end)
            blk.instrs)
      f.blocks;
    (* Duplicate edges and critical edges: legal here (φ arguments are
       per-edge), but worth surfacing — split-critical-edges style passes
       and the paper's edge predicates both care. *)
    Array.iteri
      (fun b (blk : block) ->
        let seen = Hashtbl.create 4 in
        Array.iter
          (fun e ->
            if e >= 0 && e < ne then begin
              let d = (edge f e).dst in
              if Hashtbl.mem seen d then
                add
                  (Diagnostic.warning ~check:"cfg-duplicate-edge" ~loc:(Diagnostic.Edge e)
                     "b%d has parallel edges to b%d" b d)
              else Hashtbl.add seen d ()
            end)
          blk.succs)
      f.blocks;
    Array.iteri
      (fun e { src; dst; _ } ->
        if
          src >= 0 && src < nb && dst >= 0 && dst < nb
          && Array.length (block f src).succs > 1
          && Array.length (block f dst).preds > 1
        then
          add
            (Diagnostic.info ~check:"cfg-critical-edge" ~loc:(Diagnostic.Edge e)
               "edge e%d (b%d -> b%d) is critical" e src dst))
      f.edges;
    List.rev !diags
  end

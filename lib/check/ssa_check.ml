(* The SSA discipline, as structured diagnostics:

   - every instruction id is laid out exactly once, in the block its
     [instr_block] entry names (single definition);
   - φs sit at the head of their block, with one argument per incoming edge;
   - operands name value-defining instructions;
   - every non-φ use is dominated by its definition, and every φ argument is
     available at the end of the source block of the edge carrying it;
   - no reachable instruction consumes a value defined in an unreachable
     block.

   Assumes {!Cfg_check} reported no errors (the dominator computation walks
   the successor lists); still guards every operand index so a bad operand
   yields a diagnostic, not an exception. *)

open Ir.Func

let run (f : Ir.Func.t) : Diagnostic.t list =
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let ni = num_instrs f in
  (* Layout: single definition and instr_block agreement. *)
  let occurs = Array.make ni 0 in
  Array.iteri
    (fun b (blk : block) ->
      Array.iter
        (fun i ->
          if i >= 0 && i < ni then begin
            occurs.(i) <- occurs.(i) + 1;
            if block_of_instr f i <> b then
              add
                (Diagnostic.error ~check:"ssa-instr-block" ~loc:(Diagnostic.Instr i)
                   "v%d is laid out in b%d but instr_block records b%d" i b
                   (block_of_instr f i))
          end)
        blk.instrs)
    f.blocks;
  for i = 0 to ni - 1 do
    if occurs.(i) > 1 then
      add
        (Diagnostic.error ~check:"ssa-single-def" ~loc:(Diagnostic.Instr i)
           "v%d is defined %d times" i occurs.(i))
    else if occurs.(i) = 0 then
      add
        (Diagnostic.error ~check:"ssa-orphan-instr" ~loc:(Diagnostic.Instr i)
           "v%d appears in the instruction table but in no block" i)
  done;
  (* φ placement and arity. *)
  Array.iteri
    (fun b (blk : block) ->
      let seen_nonphi = ref false in
      Array.iter
        (fun i ->
          if i >= 0 && i < ni then
            match instr f i with
            | Phi args ->
                if !seen_nonphi then
                  add
                    (Diagnostic.error ~check:"ssa-phi-placement" ~loc:(Diagnostic.Instr i)
                       "φ v%d in b%d appears after a non-φ instruction" i b);
                if Array.length args <> Array.length blk.preds then
                  add
                    (Diagnostic.error ~check:"ssa-phi-arity" ~loc:(Diagnostic.Instr i)
                       "φ v%d has %d arguments for %d predecessor edges of b%d" i
                       (Array.length args) (Array.length blk.preds) b)
            | _ -> seen_nonphi := true)
        blk.instrs)
    f.blocks;
  (* Operand validity. *)
  let operand_ok i v =
    if v < 0 || v >= ni then begin
      add
        (Diagnostic.error ~check:"ssa-operand-range" ~loc:(Diagnostic.Instr i)
           "v%d names operand %d, outside the %d instructions" i v ni);
      false
    end
    else if not (defines_value (instr f v)) then begin
      add
        (Diagnostic.error ~check:"ssa-operand-kind" ~loc:(Diagnostic.Instr i)
           "v%d uses v%d, which defines no value" i v);
      false
    end
    else true
  in
  (* Dominance. *)
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let pos = Array.make ni 0 in
  for b = 0 to num_blocks f - 1 do
    Array.iteri (fun k i -> if i >= 0 && i < ni then pos.(i) <- k) (block f b).instrs
  done;
  let def_dominates_use ~def ~use_block ~use_pos =
    let db = block_of_instr f def in
    if db = use_block then pos.(def) < use_pos
    else Analysis.Dom.strictly_dominates dom db use_block
  in
  (* Report a dominance failure, distinguishing the unreachable-def case. *)
  let use_error ~what i v =
    let db = block_of_instr f v in
    if not (Analysis.Dom.reachable dom db) then
      add
        (Diagnostic.error ~check:"ssa-unreachable-def" ~loc:(Diagnostic.Instr i)
           "%s v%d of reachable v%d is defined in unreachable b%d" what v i db)
    else
      add
        (Diagnostic.error ~check:(if what = "φ argument" then "ssa-phi-arg-dominance" else "ssa-dominance")
           ~loc:(Diagnostic.Instr i) "%s v%d (defined in b%d) does not reach its use in v%d" what
           v (block_of_instr f v) i)
  in
  for i = 0 to ni - 1 do
    if occurs.(i) = 1 then begin
      let b = block_of_instr f i in
      if Analysis.Dom.reachable dom b then
        match instr f i with
        | Phi args ->
            let preds = (block f b).preds in
            if Array.length args = Array.length preds then
              Array.iteri
                (fun ix v ->
                  if operand_ok i v then begin
                    let src = (edge f preds.(ix)).src in
                    if Analysis.Dom.reachable dom src then
                      let n = Array.length (block f src).instrs in
                      if not (def_dominates_use ~def:v ~use_block:src ~use_pos:n) then
                        use_error ~what:"φ argument" i v
                  end)
                args
        | ins ->
            iter_operands
              (fun v ->
                if operand_ok i v then
                  if not (def_dominates_use ~def:v ~use_block:b ~use_pos:pos.(i)) then
                    use_error ~what:"operand" i v)
              ins
    end
  done;
  List.rev !diags

(* Improvement-distribution figures (paper Figures 10–12): for each routine,
   the difference in a strength metric between two configurations; the
   figure is the map from improvement value to number of routines, plotted
   on log-log axes in the paper and rendered here as a table.

   The bucket-count core is {!Obs.Hist} — the same structure backing the
   observability layer's latency histograms — keyed here directly by the
   improvement delta. *)

type t = Obs.Hist.t (* improvement -> routine count *)

let create () : t = Obs.Hist.create ()
let add (t : t) improvement = Obs.Hist.add t improvement

let of_list deltas =
  let t = create () in
  List.iter (add t) deltas;
  t

(* Routines with no improvement (delta 0). *)
let zero_count (t : t) = Obs.Hist.count t 0
let improved_count (t : t) = Obs.Hist.fold (fun d c acc -> if d > 0 then acc + c else acc) t 0
let regressed_count (t : t) = Obs.Hist.fold (fun d c acc -> if d < 0 then acc + c else acc) t 0
let total (t : t) = Obs.Hist.total t
let sorted_entries (t : t) = Obs.Hist.sorted_entries t

(* Render in the paper's figure style: the legend gives the count of
   routines with no change; each row is (improvement, #routines). *)
let pp ~label ppf (t : t) =
  Fmt.pf ppf "  %-28s unchanged in %d routines" label (zero_count t);
  if regressed_count t > 0 then Fmt.pf ppf ", worse in %d" (regressed_count t);
  Fmt.pf ppf "@\n";
  List.iter
    (fun (d, c) ->
      if d <> 0 then Fmt.pf ppf "    improvement %+5d : %d routine%s@\n" d c (if c = 1 then "" else "s"))
    (sorted_entries t)

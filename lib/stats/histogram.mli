(** Improvement-distribution figures (Figures 10–12): per-routine deltas of
    a strength metric between two configurations, as a map from improvement
    value to routine count. Backed by the shared {!Obs.Hist} bucket-count
    core (buckets keyed by the delta itself). *)

type t

val create : unit -> t
val add : t -> int -> unit
val of_list : int list -> t
val zero_count : t -> int
val improved_count : t -> int
val regressed_count : t -> int
val total : t -> int
val sorted_entries : t -> (int * int) list
val pp : label:string -> Format.formatter -> t -> unit

(** Aggregation of validation results across a pipeline run. *)

type pass = {
  pass : string;  (** pass instance name, e.g. ["gvn#1"] *)
  seconds : float;  (** validation overhead for this pass *)
  audit : Audit.report option;
  equiv : Equiv.report option;
}

type t = { passes : pass list }

val empty : t
val add : t -> pass -> t

val pass_diagnostics : pass -> Check.Diagnostic.t list
val diagnostics : t -> Check.Diagnostic.t list
val errors : t -> Check.Diagnostic.t list
val clean : t -> bool
(** No Error-severity diagnostics (precision-win Infos are fine). *)

val overhead_seconds : t -> float

type totals = {
  witnesses : int;
  certified : int;
  unproven : int;
  rejected : int;
  equiv_runs : int;
  mismatches : int;
}

val totals : t -> totals
val pp_summary : Format.formatter -> t -> unit

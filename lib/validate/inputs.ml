(* Input vectors for the concrete engines: a fixed boundary battery (zeros,
   ones, signs, ascending ramps — the vectors that expose mis-associated φ
   arguments and dropped predicates) followed by seeded random vectors in
   the two ranges the differential suite found most discriminating. All
   deterministic: equal seeds give equal batteries. *)

let boundary n =
  [
    Array.make n 0;
    Array.make n 1;
    Array.make n (-1);
    Array.init n (fun i -> i);
    Array.init n (fun i -> i - (n / 2));
    Array.init n (fun i -> if i mod 2 = 0 then 0 else 1);
    Array.make n 7;
  ]

(* [vectors ~runs ~seed n]: the boundary battery plus [runs] random vectors
   of length [n]. *)
let vectors ?(runs = 8) ?(seed = 17) n =
  let n = max n 1 in
  let rng = Util.Prng.create seed in
  let random _ =
    let wide = Util.Prng.chance rng 1 4 in
    Array.init n (fun _ ->
        if wide then Util.Prng.range rng (-1000) 1000 else Util.Prng.range rng (-15) 15)
  in
  boundary n @ List.init runs random

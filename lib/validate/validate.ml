(* The front door of the translation validator.

   Two independent engines certify each rewriting pass:

   - Engine 1 ({!Audit}): every rewrite the GVN consumer performs leaves a
     {!Witness}; the audit replays witnesses against an {!Oracle} partition
     computed by a from-scratch iterative value-graph GVN, and attacks the
     remainder concretely on the instrumented interpreter. Rewrites the
     oracle justifies are certified; sound-but-unjustified ones are
     precision wins; refuted ones are miscompiles.

   - Engine 2 ({!Equiv}): pre- and post-pass functions run through the
     reference interpreter on a shared input battery; any observable
     disagreement is attributed to that one pass.

   [certify] bundles both for a single pass; {!Report} aggregates across a
   pipeline. *)

module Witness = Witness
module Oracle = Oracle
module Inputs = Inputs
module Equiv = Equiv
module Audit = Audit
module Report = Report

(* What to run: the witness audit, the behavioral diff, or both. *)
type mode = Witness | Diff | All

let mode_of_string = function
  | "witness" -> Some Witness
  | "diff" -> Some Diff
  | "all" -> Some All
  | _ -> None

let mode_to_string = function Witness -> "witness" | Diff -> "diff" | All -> "all"
let audits = function Witness | All -> true | Diff -> false
let diffs = function Diff | All -> true | Witness -> false

(* Validate one pass instance: audit its witnesses (when the mode asks and
   the pass emitted any) and diff its observable behavior. Timed, so the
   harness can report validation overhead next to pass time. With [~obs]
   the certification is a [validate.certify] span with one sub-span per
   engine, its latency lands in the [validate.certify_ns] histogram, and
   the per-engine invocation counters are bumped. *)
let certify ?obs ?runs ?seed ~mode ~pass ?(witnesses = []) (before : Ir.Func.t)
    (after : Ir.Func.t) : Report.pass =
  let (audit, equiv), seconds =
    let span_or_time name f =
      match obs with
      | Some o -> Obs.timed o ~cat:"validate" name f
      | None ->
          let t0 = Unix.gettimeofday () in
          let x = f () in
          (x, Unix.gettimeofday () -. t0)
    in
    span_or_time "validate.certify" @@ fun () ->
    let audit =
      if audits mode && witnesses <> [] then begin
        Obs.add_o obs "validate.audits" 1;
        Some
          (Obs.span_o obs ~cat:"validate" "validate.audit" (fun () ->
               Audit.run ?runs ?seed ~pass before witnesses))
      end
      else None
    in
    let equiv =
      if diffs mode then begin
        Obs.add_o obs "validate.diffs" 1;
        Some
          (Obs.span_o obs ~cat:"validate" "validate.diff" (fun () ->
               Equiv.check ?runs ?seed ~pass before after))
      end
      else None
    in
    (audit, equiv)
  in
  Obs.observe_seconds_o obs "validate.certify_ns" seconds;
  { Report.pass; seconds; audit; equiv }

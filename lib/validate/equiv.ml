(* Engine 2: observable-behavior equivalence. Run the pre- and post-pass
   functions on the same input battery through the reference interpreter
   and compare observable results. The observation is the interpreter
   verdict (returned value / trap / timeout): opaque calls are pure by the
   IR's contract, so a pass may legitimately duplicate, reorder or delete
   them and no call trace is compared. Unlike the whole-pipeline
   differential test, a failure here is attributed to one pass. *)

type mismatch = {
  args : int array;
  before : Ir.Interp.result;
  after : Ir.Interp.result;
}

type report = {
  pass : string;  (* e.g. "dce#2" *)
  func : string;  (* routine name, for attribution *)
  runs : int;  (* input vectors executed *)
  mismatches : mismatch list;
}

let check ?runs ?seed ?(fuel = 300_000) ~pass (before : Ir.Func.t)
    (after : Ir.Func.t) : report =
  let nparams = max before.Ir.Func.nparams after.Ir.Func.nparams in
  let inputs = Inputs.vectors ?runs ?seed nparams in
  let mismatches =
    List.filter_map
      (fun args ->
        let a = Ir.Interp.run ~fuel before args in
        let b = Ir.Interp.run ~fuel after args in
        if Ir.Interp.equal_result a b then None
        else Some { args; before = a; after = b })
      inputs
  in
  { pass; func = before.Ir.Func.name; runs = List.length inputs; mismatches }

let ok r = r.mismatches = []

let pp_args ppf args = Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ",") int) args

let diagnostics r =
  List.map
    (fun m ->
      Check.Diagnostic.error ~check:"validate-behavior" ~loc:Check.Diagnostic.Func
        "%s changed observable behavior on %s: args=%s before=%s after=%s" r.pass
        r.func
        (Fmt.to_to_string pp_args m.args)
        (Fmt.to_to_string Ir.Interp.pp_result m.before)
        (Fmt.to_to_string Ir.Interp.pp_result m.after))
    r.mismatches

(* Engine 1: the witness audit. Replay every rewrite witness against the
   independent oracle partition; what the oracle justifies is certified.
   The rest is attacked concretely — each claim is checked at the program
   point where it is made, on the instrumented interpreter, over the input
   battery:

     Replace v by l     whenever v executes, l's most recent value equals
                        v's (checked at v's definition, not at exit — a
                        leader in a loop may legitimately run one partial
                        iteration further);
     Fold v to c        whenever v executes it produces c;
     Drop edge/block    the edge is never traversed / the block never
                        entered;
     Collapse φ         every incoming edge other than the kept one is
                        never traversed.

   A refuted claim is a miscompile: Rejected, with the offending inputs.
   A claim that survives is Unproven — by construction these are rewrites
   the predicated algorithm justified beyond the oracle's power (predicate
   or value inference, φ-predication): precision wins, reported as Info. *)

type verdict = Certified | Unproven | Rejected of string

type outcome = { witness : Witness.t; verdict : verdict }

type report = {
  pass : string;
  func : string;
  total : int;
  certified : int;
  unproven : int;
  rejected : int;
  oracle_rounds : int;
  outcomes : outcome list;
  diagnostics : Check.Diagnostic.t list;
}

(* Claims checked concretely at a value definition. *)
type def_claim = Equals_const of int | Equals_leader of int

let pp_args ppf args = Fmt.pf ppf "[%a]" Fmt.(array ~sep:(any ",") int) args

let run ?runs ?seed ?(fuel = 300_000) ~pass (f : Ir.Func.t)
    (witnesses : Witness.t list) : report =
  let oracle = Oracle.run f in
  let dom = Analysis.Dom.compute (Analysis.Graph.of_func f) in
  let ni = Ir.Func.num_instrs f in
  let pos = Array.make ni 0 in
  for b = 0 to Ir.Func.num_blocks f - 1 do
    Array.iteri (fun k i -> pos.(i) <- k) (Ir.Func.block f b).Ir.Func.instrs
  done;
  let def_dominates ~def ~v =
    let db = Ir.Func.block_of_instr f def and vb = Ir.Func.block_of_instr f v in
    if db = vb then pos.(def) < pos.(v) else Analysis.Dom.strictly_dominates dom db vb
  in
  let ws = Array.of_list witnesses in
  let n = Array.length ws in
  (* Static phase: oracle certification, with the structural side
     conditions a replacement needs (the leader must dominate). *)
  let certified = Array.make n false in
  let static_reject = Array.make n None in
  let def_claims = Array.make ni [] in
  let edge_claims = Array.make (Ir.Func.num_edges f) [] in
  let block_claims = Array.make (Ir.Func.num_blocks f) [] in
  let claim_def v ix c = def_claims.(v) <- (ix, c) :: def_claims.(v) in
  let claim_edge e ix = edge_claims.(e) <- ix :: edge_claims.(e) in
  Array.iteri
    (fun ix w ->
      match w with
      | Witness.Replace { v; leader; _ } ->
          if not (def_dominates ~def:leader ~v) then
            static_reject.(ix) <-
              Some (Printf.sprintf "leader v%d does not dominate v%d" leader v)
          else if not (Oracle.block_reachable oracle (Ir.Func.block_of_instr f v))
          then certified.(ix) <- true (* the oracle proves v never executes *)
          else if Oracle.congruent oracle v leader then certified.(ix) <- true
          else claim_def v ix (Equals_leader leader)
      | Witness.Fold_const { v; c; _ } ->
          if not (Oracle.block_reachable oracle (Ir.Func.block_of_instr f v)) then
            certified.(ix) <- true
          else if Oracle.constant oracle v = Some c then certified.(ix) <- true
          else claim_def v ix (Equals_const c)
      | Witness.Drop_edge { edge } ->
          if not (Oracle.edge_reachable oracle edge) then certified.(ix) <- true
          else claim_edge edge ix
      | Witness.Drop_block { block } ->
          if not (Oracle.block_reachable oracle block) then certified.(ix) <- true
          else block_claims.(block) <- ix :: block_claims.(block)
      | Witness.Collapse_phi { phi; kept_edge; _ } ->
          let preds = (Ir.Func.block f (Ir.Func.block_of_instr f phi)).Ir.Func.preds in
          let others = Array.to_list preds |> List.filter (fun e -> e <> kept_edge) in
          if List.for_all (fun e -> not (Oracle.edge_reachable oracle e)) others then
            certified.(ix) <- true
          else List.iter (fun e -> claim_edge e ix) others)
    ws;
  (* Concrete phase: refute the surviving claims on the input battery. *)
  let violation = Array.make n None in
  let refute ix args detail =
    if violation.(ix) = None then
      violation.(ix) <- Some (Array.copy args, detail)
  in
  if
    Array.exists (fun l -> l <> []) def_claims
    || Array.exists (fun l -> l <> []) edge_claims
    || Array.exists (fun l -> l <> []) block_claims
  then
    List.iter
      (fun args ->
        let last = Array.make ni 0 in
        let has = Array.make ni false in
        let on_def i x =
          List.iter
            (fun (ix, claim) ->
              match claim with
              | Equals_const c ->
                  if x <> c then
                    refute ix args (Printf.sprintf "v%d evaluated to %d, not %d" i x c)
              | Equals_leader l ->
                  if has.(l) && last.(l) <> x then
                    refute ix args
                      (Printf.sprintf "v%d evaluated to %d but leader v%d holds %d" i
                         x l last.(l)))
            def_claims.(i);
          last.(i) <- x;
          has.(i) <- true
        in
        let on_edge e =
          List.iter
            (fun ix -> refute ix args (Printf.sprintf "edge e%d was traversed" e))
            edge_claims.(e)
        in
        let on_block b =
          List.iter
            (fun ix -> refute ix args (Printf.sprintf "block b%d was entered" b))
            block_claims.(b)
        in
        ignore (Ir.Interp.run_instrumented ~fuel ~on_def ~on_edge ~on_block f args))
      (Inputs.vectors ?runs ?seed f.Ir.Func.nparams);
  (* Verdicts and diagnostics. *)
  let outcomes =
    Array.to_list
      (Array.mapi
         (fun ix w ->
           let verdict =
             match static_reject.(ix) with
             | Some d -> Rejected d
             | None ->
                 if certified.(ix) then Certified
                 else
                   match violation.(ix) with
                   | Some (args, d) ->
                       Rejected
                         (Printf.sprintf "%s on args=%s" d
                            (Fmt.to_to_string pp_args args))
                   | None -> Unproven
           in
           { witness = w; verdict })
         ws)
  in
  let count p = List.length (List.filter p outcomes) in
  let diagnostics =
    List.filter_map
      (fun o ->
        match o.verdict with
        | Certified -> None
        | Rejected detail ->
            Some
              (Check.Diagnostic.error ~check:(Witness.check_id o.witness)
                 ~loc:(Witness.loc o.witness) "%s: rejected rewrite (%s): %s" pass
                 (Witness.to_string o.witness)
                 detail)
        | Unproven ->
            Some
              (Check.Diagnostic.info ~check:"validate-precision-win"
                 ~loc:(Witness.loc o.witness)
                 "%s: %s: beyond the oracle (predicate/value inference); concrete \
                  audit found no violation"
                 pass
                 (Witness.to_string o.witness)))
      outcomes
  in
  {
    pass;
    func = f.Ir.Func.name;
    total = n;
    certified = count (fun o -> o.verdict = Certified);
    unproven = count (fun o -> o.verdict = Unproven);
    rejected = count (fun o -> match o.verdict with Rejected _ -> true | _ -> false);
    oracle_rounds = Oracle.rounds oracle;
    outcomes;
    diagnostics;
  }

let ok r = r.rejected = 0

(* Aggregation of validation results across a pipeline run: one entry per
   validated pass instance, with the time the validation itself cost (the
   overhead the bench harness reports alongside pass time). *)

type pass = {
  pass : string;  (* pass instance name, e.g. "gvn#1" *)
  seconds : float;  (* validation overhead for this pass *)
  audit : Audit.report option;  (* Engine 1, when witnesses were audited *)
  equiv : Equiv.report option;  (* Engine 2, when behavior was compared *)
}

type t = { passes : pass list }

let empty = { passes = [] }
let add t p = { passes = t.passes @ [ p ] }

let pass_diagnostics p =
  (match p.audit with Some a -> a.Audit.diagnostics | None -> [])
  @ (match p.equiv with Some e -> Equiv.diagnostics e | None -> [])

let diagnostics t = List.concat_map pass_diagnostics t.passes
let errors t = List.filter Check.Diagnostic.is_error (diagnostics t)
let clean t = errors t = []
let overhead_seconds t = List.fold_left (fun acc p -> acc +. p.seconds) 0.0 t.passes

type totals = {
  witnesses : int;
  certified : int;
  unproven : int;
  rejected : int;
  equiv_runs : int;
  mismatches : int;
}

let totals t =
  List.fold_left
    (fun acc p ->
      let acc =
        match p.audit with
        | None -> acc
        | Some a ->
            {
              acc with
              witnesses = acc.witnesses + a.Audit.total;
              certified = acc.certified + a.Audit.certified;
              unproven = acc.unproven + a.Audit.unproven;
              rejected = acc.rejected + a.Audit.rejected;
            }
      in
      match p.equiv with
      | None -> acc
      | Some e ->
          {
            acc with
            equiv_runs = acc.equiv_runs + e.Equiv.runs;
            mismatches = acc.mismatches + List.length e.Equiv.mismatches;
          })
    { witnesses = 0; certified = 0; unproven = 0; rejected = 0; equiv_runs = 0; mismatches = 0 }
    t.passes

let pp_summary ppf t =
  let s = totals t in
  Fmt.pf ppf
    "%d witnesses: %d certified, %d precision wins, %d rejected | %d equiv runs, %d \
     mismatches | overhead %.4fs"
    s.witnesses s.certified s.unproven s.rejected s.equiv_runs s.mismatches
    (overhead_seconds t)

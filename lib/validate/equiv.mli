(** Engine 2: observable-behavior equivalence of a single pass, with
    per-pass attribution. The observation is the interpreter verdict;
    opaque calls are pure, so call traces are not part of the observation. *)

type mismatch = {
  args : int array;
  before : Ir.Interp.result;
  after : Ir.Interp.result;
}

type report = {
  pass : string;  (** the pass instance blamed, e.g. ["dce#2"] *)
  func : string;  (** the routine it ran on *)
  runs : int;  (** input vectors executed *)
  mismatches : mismatch list;
}

val check :
  ?runs:int -> ?seed:int -> ?fuel:int -> pass:string -> Ir.Func.t -> Ir.Func.t -> report
(** [check ~pass before after] interprets both functions on the same
    battery (see {!Inputs.vectors}) and records every observable
    disagreement. *)

val ok : report -> bool

val diagnostics : report -> Check.Diagnostic.t list
(** One Error per mismatch, naming the pass, routine and inputs. *)

(** The audit trail a rewriting pass leaves behind: one record per rewrite
    decision, phrased in terms of the pre-pass function's instruction, edge
    and block ids. See {!Audit} for how witnesses are replayed. *)

type t =
  | Replace of { v : Ir.Func.value; leader : Ir.Func.value; cid : int }
      (** [v] was replaced by its congruence-class leader [leader]; [cid] is
          the engine's class id, kept for reporting only. *)
  | Fold_const of { v : Ir.Func.value; c : int; cid : int }
      (** [v] was replaced by the constant [c]. *)
  | Drop_edge of { edge : int }  (** a CFG edge was folded away as unreachable *)
  | Drop_block of { block : int }  (** a whole block was dropped as unreachable *)
  | Collapse_phi of { phi : Ir.Func.value; arg : Ir.Func.value; kept_edge : int }
      (** the φ collapsed to [arg] because [kept_edge] is its only live
          incoming edge. *)

val loc : t -> Check.Diagnostic.loc
(** The pre-pass location a diagnostic about this witness points at. *)

val check_id : t -> string
(** The stable diagnostic check id for this witness kind
    (e.g. ["validate-replace"]). *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

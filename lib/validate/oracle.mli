(** The independent equivalence oracle: a from-scratch iterative value-graph
    GVN (Saleena–Paleri / RPO-hashing family; arXiv:1303.1880,
    arXiv:1504.03239) used to certify the sparse engine's rewrites. It
    shares nothing with [lib/core]: its own reachability, its own RPO walk,
    its own hash-based partition, and none of the paper's predicate
    machinery. Simple and slow by design. *)

type t

val run : Ir.Func.t -> t
(** Iterate optimistic expression numbering and reachability shrinking to a
    fixpoint. @raise Failure if the iteration fails to converge (bounded by
    instruction count; does not happen on well-formed functions). *)

val congruent : t -> Ir.Func.value -> Ir.Func.value -> bool
(** Both values reachable and provably congruent. *)

val constant : t -> Ir.Func.value -> int option
(** The constant the oracle proves for the value, if any. *)

val block_reachable : t -> int -> bool
val edge_reachable : t -> int -> bool

val rounds : t -> int
(** Numbering rounds until the fixpoint (for reporting). *)

val classes : t -> int
(** Distinct congruence classes among reachable values. *)

(** Engine 1: the witness audit. Every rewrite witness is replayed against
    the independent {!Oracle} partition; claims the oracle cannot justify
    are attacked concretely at the program point where they are made, on
    the instrumented interpreter over the {!Inputs} battery. *)

type verdict =
  | Certified  (** justified by the oracle (or vacuous: provably dead) *)
  | Unproven
      (** beyond the oracle and not refuted concretely: a precision win of
          the predicated algorithm, reported as Info *)
  | Rejected of string  (** refuted — a miscompile, with the evidence *)

type outcome = { witness : Witness.t; verdict : verdict }

type report = {
  pass : string;
  func : string;
  total : int;
  certified : int;
  unproven : int;
  rejected : int;
  oracle_rounds : int;
  outcomes : outcome list;
  diagnostics : Check.Diagnostic.t list;
      (** one Error per rejection (check id per witness kind, located at
          the rewritten instr/edge/block), one Info per precision win
          (["validate-precision-win"]) *)
}

val run :
  ?runs:int -> ?seed:int -> ?fuel:int -> pass:string -> Ir.Func.t -> Witness.t list -> report
(** [run ~pass f witnesses] audits the witnesses a pass emitted while
    rewriting [f] (ids in the witnesses refer to [f]). *)

val ok : report -> bool
(** No rejections. *)

(* Witness records: the audit trail a rewriting pass leaves behind.

   Each witness names one concrete rewrite decision in terms of the
   *pre-pass* function — instruction ids, edge ids and block ids all refer
   to the function the pass consumed — together with the justification the
   engine claimed for it (its congruence class id). The validator replays
   every witness against an independent oracle; a rewrite the oracle cannot
   justify is either refuted concretely (a miscompile) or reported as a
   precision win of the predicated algorithm. *)

type t =
  | Replace of { v : Ir.Func.value; leader : Ir.Func.value; cid : int }
      (* [v] was replaced by congruence-class leader [leader] *)
  | Fold_const of { v : Ir.Func.value; c : int; cid : int }
      (* [v] was replaced by the constant [c] *)
  | Drop_edge of { edge : int }
      (* the CFG edge was removed as unreachable (branch/switch fold) *)
  | Drop_block of { block : int }
      (* the whole block was removed as unreachable *)
  | Collapse_phi of { phi : Ir.Func.value; arg : Ir.Func.value; kept_edge : int }
      (* the φ collapsed to [arg]: every other incoming edge was dropped *)

(* Where a diagnostic about this witness should point. *)
let loc = function
  | Replace { v; _ } | Fold_const { v; _ } -> Check.Diagnostic.Instr v
  | Drop_edge { edge } -> Check.Diagnostic.Edge edge
  | Drop_block { block } -> Check.Diagnostic.Block block
  | Collapse_phi { phi; _ } -> Check.Diagnostic.Instr phi

(* Stable per-kind check ids for the validator's diagnostics. *)
let check_id = function
  | Replace _ -> "validate-replace"
  | Fold_const _ -> "validate-constant"
  | Drop_edge _ -> "validate-edge-unreachable"
  | Drop_block _ -> "validate-block-unreachable"
  | Collapse_phi _ -> "validate-phi-collapse"

let pp ppf = function
  | Replace { v; leader; cid } -> Fmt.pf ppf "replace v%d by leader v%d (class %d)" v leader cid
  | Fold_const { v; c; cid } -> Fmt.pf ppf "fold v%d to constant %d (class %d)" v c cid
  | Drop_edge { edge } -> Fmt.pf ppf "drop unreachable edge e%d" edge
  | Drop_block { block } -> Fmt.pf ppf "drop unreachable block b%d" block
  | Collapse_phi { phi; arg; kept_edge } ->
      Fmt.pf ppf "collapse phi v%d to v%d (sole live edge e%d)" phi arg kept_edge

let to_string = Fmt.to_to_string pp

(* The independent equivalence oracle: a from-scratch iterative value-graph
   GVN in the Saleena–Paleri / RPO-hashing family (arXiv:1303.1880,
   arXiv:1504.03239). It is deliberately simple — optimistic rounds of
   hash-based expression numbering over the reachable subgraph, interleaved
   with reachability shrinking from decided branches, iterated to a
   fixpoint — and deliberately slow: clarity over sparseness.

   Independence: this module shares nothing with the engine under test
   (lib/core). It has its own DFS reachability, its own RPO walk, its own
   partition representation, and none of the paper's machinery (no touched
   lists, no predicate or value inference, no φ-predication). The common
   ground is the frozen [Ir.Func] representation, the operator semantics in
   [Ir.Types] — the very definitions the interpreter uses — and the
   declarative rule catalog (lib/rules), consulted through a deliberately
   shallow adapter: the identities are data verified against the concrete
   semantics (Rules.Verify), not engine code, so sharing them keeps the two
   implementations independent while guaranteeing that both sides simplify
   from the one table.

   Soundness of the fixpoint: value numbers are representative instruction
   ids (first member in RPO order). A round recomputes every reachable
   value's number from its operands' numbers, reading the current round's
   number when available and the previous round's otherwise (φ inputs along
   back edges). At the fixpoint the two numberings coincide, so every
   number was derived consistently from one stable partition: two values
   with the same number are congruent by construction. *)

type t = {
  f : Ir.Func.t;
  vn : int array;  (* instr -> value number; -1 for unreachable/non-values *)
  consts : (int, int) Hashtbl.t;  (* value number -> known constant *)
  block_reach : bool array;
  edge_reach : bool array;
  rounds : int;
}

(* Hash keys for value expressions over current value numbers. [Kself]
   pins a value into its own class (opaque to the oracle this round). *)
type key =
  | Kconst of int
  | Kparam of int
  | Kself of int
  | Kunop of Ir.Types.unop * int
  | Kbinop of Ir.Types.binop * int * int
  | Kcmp of Ir.Types.cmp * int * int
  | Kcall of int * int list
  | Kphi of int * (int * int) list  (* block, (pred index, number) when live *)

(* Operand view for the rule-table consult: a value number plus its known
   constant. [onum = -1] marks a constant the matcher built itself. *)
type orep = { onum : int; ocst : int option }

let rules_subject : orep Rules.Engine.subject =
  {
    Rules.Engine.view =
      (fun r ->
        match r.ocst with Some c -> Rules.Engine.Sconst c | None -> Rules.Engine.Satom);
    equal =
      (fun r s ->
        match (r.ocst, s.ocst) with
        | Some a, Some b -> a = b
        | _ -> r.onum >= 0 && r.onum = s.onum);
    bconst = (fun c -> { onum = -1; ocst = Some c });
    bunop = (fun _ _ -> None);
    bbinop = (fun _ _ _ -> None);
    reduce = (fun _ -> None);
  }

(* The value a round assigns an instruction: an existing class, a fresh
   expression key, or a constant. *)
type sval = V of int | K of key | C of int

(* Keys are interned in one arena shared by every numbering round (they
   mention only stable instruction ids), so a key recurring across rounds
   probes the round table by precomputed tag. *)
module HK = Util.Hashcons.Make (struct
  type t = key

  let equal (a : key) (b : key) = a = b
  let hash (k : key) = Hashtbl.hash k
end)

(* Reverse post-order over all statically present edges; unreachable blocks
   are simply skipped during numbering. *)
let rpo_order f =
  let seen = Array.make (Ir.Func.num_blocks f) false in
  let post = ref [] in
  let rec dfs b =
    if not seen.(b) then begin
      seen.(b) <- true;
      Array.iter
        (fun e -> dfs (Ir.Func.edge f e).Ir.Func.dst)
        (Ir.Func.block f b).Ir.Func.succs;
      post := b :: !post
    end
  in
  dfs Ir.Func.entry;
  Array.of_list !post

(* Reachability from the entry under the given numbering: a branch or
   switch whose scrutinee has a known constant takes only the decided
   edge. *)
let compute_reach f (vn : int array) consts =
  let block_reach = Array.make (Ir.Func.num_blocks f) false in
  let edge_reach = Array.make (Ir.Func.num_edges f) false in
  let const_of v = if vn.(v) < 0 then None else Hashtbl.find_opt consts vn.(v) in
  let rec visit b =
    if not block_reach.(b) then begin
      block_reach.(b) <- true;
      let blk = Ir.Func.block f b in
      let take e =
        edge_reach.(e) <- true;
        visit (Ir.Func.edge f e).Ir.Func.dst
      in
      match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
      | Ir.Func.Jump -> take blk.Ir.Func.succs.(0)
      | Ir.Func.Return _ -> ()
      | Ir.Func.Branch c -> (
          match const_of c with
          | Some k -> take blk.Ir.Func.succs.(if k <> 0 then 0 else 1)
          | None ->
              take blk.Ir.Func.succs.(0);
              take blk.Ir.Func.succs.(1))
      | Ir.Func.Switch (c, cases) -> (
          match const_of c with
          | Some k ->
              let ix = ref (Array.length cases) (* default *) in
              Array.iteri (fun j case -> if case = k then ix := j) cases;
              take blk.Ir.Func.succs.(!ix)
          | None -> Array.iter take blk.Ir.Func.succs)
      | _ -> invalid_arg "Oracle: missing terminator"
    end
  in
  visit Ir.Func.entry;
  (block_reach, edge_reach)

(* One numbering round. [prev]/[prev_consts] give the previous round's
   numbering, read for values not yet numbered this round (φ inputs along
   back edges); -1 is the optimistic ⊥, skipped at φs. *)
let number f arena order (block_reach : bool array) (edge_reach : bool array)
    (prev : int array) prev_consts =
  let ni = Ir.Func.num_instrs f in
  let vn = Array.make ni (-1) in
  let table : int HK.Tbl.t = HK.Tbl.create (2 * ni) in
  let consts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let num v = if vn.(v) >= 0 then vn.(v) else prev.(v) in
  let cst v =
    if vn.(v) >= 0 then Hashtbl.find_opt consts vn.(v)
    else if prev.(v) >= 0 then Hashtbl.find_opt prev_consts prev.(v)
    else None
  in
  let intern i ?const key =
    let ck = HK.hashcons arena key in
    match HK.Tbl.find_opt table ck with
    | Some r -> r
    | None ->
        HK.Tbl.add table ck i;
        (match const with Some c -> Hashtbl.replace consts i c | None -> ());
        i
  in
  let binop_val i op a b =
    let ra = num a and rb = num b in
    if ra < 0 || rb < 0 then K (Kself i)
    else
      (* Fold constants and apply algebraic identities by consulting the
         shared rule table through a shallow adapter: an operand is its
         value number plus its known constant, and any rule whose RHS
         would need a fresh compound expression is declined (the oracle
         has no expression language — only numbers and constants). *)
      match
        Rules.Engine.rewrite_binop (Rules.Engine.shared ()) rules_subject op
          { onum = ra; ocst = cst a }
          { onum = rb; ocst = cst b }
      with
      | Some { ocst = Some c; _ } -> C c
      | Some { onum = r; _ } -> V r
      | None ->
          let ra, rb =
            if Ir.Types.binop_commutative op && rb < ra then (rb, ra) else (ra, rb)
          in
          K (Kbinop (op, ra, rb))
  in
  let cmp_val i op a b =
    let ra = num a and rb = num b in
    if ra < 0 || rb < 0 then K (Kself i)
    else
      match (cst a, cst b) with
      | Some x, Some y -> C (Ir.Types.eval_cmp op x y)
      | _ ->
          if ra = rb then
            C (match op with Ir.Types.Eq | Le | Ge -> 1 | Ne | Lt | Gt -> 0)
          else
            (* Normalize the mirror image: b ≷ a numbers like a ≶ b. *)
            let op, ra, rb =
              if rb < ra then (Ir.Types.swap_cmp op, rb, ra) else (op, ra, rb)
            in
            K (Kcmp (op, ra, rb))
  in
  let phi_val i b args preds =
    let xs = ref [] in
    Array.iteri
      (fun ix e ->
        if edge_reach.(e) then
          let r = num args.(ix) in
          if r >= 0 then xs := (ix, r) :: !xs)
      preds;
    match List.rev !xs with
    | [] -> K (Kself i) (* all inputs still ⊥ *)
    | (_, r0) :: rest as live ->
        if List.for_all (fun (_, r) -> r = r0) rest then V r0 (* a copy *)
        else K (Kphi (b, live))
  in
  let eval i b preds = function
    | Ir.Func.Const c -> C c
    | Ir.Func.Param k -> K (Kparam k)
    | Ir.Func.Unop (op, a) -> (
        if num a < 0 then K (Kself i)
        else
          match cst a with
          | Some x -> C (Ir.Types.eval_unop op x)
          | None -> K (Kunop (op, num a)))
    | Ir.Func.Binop (op, a, b') -> binop_val i op a b'
    | Ir.Func.Cmp (op, a, b') -> cmp_val i op a b'
    | Ir.Func.Opaque (tag, args) ->
        let rs = Array.map num args in
        if Array.exists (fun r -> r < 0) rs then K (Kself i)
        else K (Kcall (tag, Array.to_list rs))
    | Ir.Func.Phi args -> phi_val i b args preds
    | _ -> assert false
  in
  Array.iter
    (fun b ->
      if block_reach.(b) then
        let blk = Ir.Func.block f b in
        Array.iter
          (fun i ->
            let ins = Ir.Func.instr f i in
            if Ir.Func.defines_value ins then
              match eval i b blk.Ir.Func.preds ins with
              | C c -> vn.(i) <- intern i ~const:c (Kconst c)
              | V r -> vn.(i) <- r
              | K key -> vn.(i) <- intern i key)
          blk.Ir.Func.instrs)
    order;
  (vn, consts)

let consts_equal a b =
  let dump h = Hashtbl.fold (fun k v acc -> (k, v) :: acc) h [] |> List.sort compare in
  dump a = dump b

let run (f : Ir.Func.t) : t =
  let ni = Ir.Func.num_instrs f in
  let order = rpo_order f in
  let arena = HK.create ~size:(2 * ni) () in
  let max_rounds = ni + 8 in
  let rec go prev prev_consts (block_reach, edge_reach) rounds =
    if rounds > max_rounds then failwith "Validate.Oracle: numbering did not converge";
    let vn, consts = number f arena order block_reach edge_reach prev prev_consts in
    let block_reach', edge_reach' = compute_reach f vn consts in
    if
      vn = prev && consts_equal consts prev_consts
      && block_reach' = block_reach && edge_reach' = edge_reach
    then { f; vn; consts; block_reach; edge_reach; rounds }
    else go vn consts (block_reach', edge_reach') (rounds + 1)
  in
  let bottom = Array.make ni (-1) in
  go bottom (Hashtbl.create 1) (compute_reach f bottom (Hashtbl.create 1)) 1

let congruent t a b = t.vn.(a) >= 0 && t.vn.(a) = t.vn.(b)
let constant t v = if t.vn.(v) < 0 then None else Hashtbl.find_opt t.consts t.vn.(v)
let block_reachable t b = t.block_reach.(b)
let edge_reachable t e = t.edge_reach.(e)
let rounds t = t.rounds

let classes t =
  let seen = Hashtbl.create 16 in
  Array.iter (fun n -> if n >= 0 then Hashtbl.replace seen n ()) t.vn;
  Hashtbl.length seen

(** Per-value legal placement ranges, after Click's "Global Code Motion,
    Global Value Numbering" (PLDI '95): for every SSA value the {e early}
    schedule (shallowest dominator-tree block where all operands are
    available), the {e late} schedule (dominator-tree LCA of its uses, with
    φ uses attributed to the predecessor edge that carries them), and the
    {e best} block — the latest block of minimum loop depth on the
    dominator-tree path from late up to early. Values classified pinned by
    {!Speculate} (φs, opaque calls, uncleared faulting ops) keep their
    current block: early = late = best = block.

    This is the analysis half of a GCM transform: it proposes placements
    but rewrites nothing. {!Check.Schedule} independently verifies any
    proposed placement, including the identity. *)

type t = {
  func : Ir.Func.t;
  graph : Analysis.Graph.t;
  dom : Analysis.Dom.t;
  pdom : Analysis.Postdom.t;
  forest : Analysis.Loops.forest;
  ranges : Absint.Ranges.result;
  safety : Speculate.t array;  (** per instruction id *)
  early : int array;  (** per instruction id; own block for non-values *)
  late : int array;
  best : int array;
}

type stats = {
  values : int;  (** reachable value definitions *)
  pinned : int;
  speculation_blocked : int;  (** pinned specifically for trap safety *)
  hoistable : int;  (** best strictly above, at lower loop depth *)
  sinkable : int;  (** best strictly below, profitably *)
}

val compute : ?obs:Obs.t -> Ir.Func.t -> t
(** Runs the underlying analyses (dominators, postdominators, loop forest,
    interval facts) and both schedules. Emits a [schedule.compute] span and
    [schedule.*] counters when [obs] is given. *)

val identity : Ir.Func.t -> int array
(** Every value at its current block — the placement the checker certifies
    today. *)

val movable : t -> Ir.Func.value -> bool
(** A reachable value definition whose {!Speculate} class permits motion
    ([Safe] or [Proven]) — the gate a GCM transform must apply before
    rewriting the value's block to [best]. Pinned values (φs, opaque calls,
    uncleared faulting ops) and unreachable code are not movable. *)

val hoistable : t -> Ir.Func.value -> bool
(** The best block strictly dominates the current block at strictly smaller
    loop depth: a loop-invariant computation liftable out of its loop. *)

val sinkable : t -> Ir.Func.value -> bool
(** The best block is strictly dominated by the current block and the move
    pays: loop depth drops, or the target no longer postdominates the
    source (the value stops being computed on paths that never use it). *)

val stats : t -> stats

val lints : t -> Check.Diagnostic.t list
(** Opportunity lints in the Info tier of the two-severity scheme:
    [lint-loop-invariant] for hoistable values, [lint-sinkable] for
    sinkable ones. Never Warning — a missed motion is not a bug. *)

val pp_fact : t -> Format.formatter -> Ir.Func.value -> unit
(** One line: early/best/late blocks, loop depths, safety class. *)

(* Speculation safety. The one potentially faulting operator class in this
   IR is integer division ([Div]/[Rem] fault on a zero divisor and on the
   min_int / -1 overflow pair, see Ir.Types.div_rem_faults); everything else
   is trap-free. Opaque calls are never speculated, and φs/terminators are
   anchored to their blocks by construction.

   Soundness note: [classify] reads the UNREFINED facts ([res.facts]) — the
   join over all executable paths, valid wherever the operand definitions
   dominate. Refined facts ([env_at]) embed dominating branch constraints
   (e.g. the [d <> 0] guard itself) and would wrongly license hoisting a
   division above the very guard that protects it; they are only used by
   [cleared_at], which asks about evaluating the op at one specific block. *)

type reason = May_trap of { predicate : int option } | Call | Anchored
type t = Safe | Proven of string | Pinned of reason

let is_pinned = function Pinned _ -> true | _ -> false

(* The nearest strict dominator whose terminator branches and which [b]
   does not postdominate: b's execution is conditional on the outcome
   tested there. Blocks that cannot reach an exit postdominate nothing, so
   every branching dominator counts — conservative in the right direction. *)
let controlling_predicate (f : Ir.Func.t) ~dom ~pdom b =
  let rec up a =
    let ia = dom.Analysis.Dom.idom.(a) in
    if ia < 0 then None
    else
      match Ir.Func.instr f (Ir.Func.terminator_of_block f ia) with
      | (Ir.Func.Branch _ | Ir.Func.Switch _)
        when not (Analysis.Postdom.postdominates pdom b ia) ->
          Some ia
      | _ -> up ia
  in
  if Analysis.Dom.reachable dom b then up b else None

let div_cleared ~(num : Absint.Itv.t) ~(den : Absint.Itv.t) =
  (not (Absint.Itv.mem 0 den))
  && not (Absint.Itv.mem (-1) den && Absint.Itv.mem min_int num)

let classify (f : Ir.Func.t) ~dom ~pdom ~(ranges : Absint.Ranges.result) v =
  match Ir.Func.instr f v with
  | Ir.Func.Const _ | Ir.Func.Param _ | Ir.Func.Unop _ | Ir.Func.Cmp _ -> Safe
  | Ir.Func.Binop ((Ir.Types.Div | Ir.Types.Rem), n, d) ->
      let num = ranges.facts.(n) and den = ranges.facts.(d) in
      if div_cleared ~num ~den then
        Proven (Fmt.str "divisor %a excludes 0 and min_int/-1" Absint.Itv.pp den)
      else
        Pinned
          (May_trap
             {
               predicate =
                 controlling_predicate f ~dom ~pdom (Ir.Func.block_of_instr f v);
             })
  | Ir.Func.Binop _ -> Safe
  | Ir.Func.Opaque _ -> Pinned Call
  | Ir.Func.Phi _ | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _
  | Ir.Func.Return _ ->
      Pinned Anchored

(* Dominating-fact clearing: do the branch facts holding on entry to
   [block] prove the division cannot fault? Same soundness shape as
   [cleared_at] — the facts embed [block]'s dominating guards, so they are
   valid at [block] and (values being immutable) at every block it
   dominates — but decided by the multi-fact implication closure instead
   of one refined interval, so a guard conjunction like
   [d != 0 && d != -1] clears a division no single interval fact can. *)
let cleared_by_facts (facts : Pred.Facts.t) (f : Ir.Func.t) ~block v =
  match Ir.Func.instr f v with
  | Ir.Func.Binop ((Ir.Types.Div | Ir.Types.Rem), n, d) ->
      let cl = Pred.Facts.closure_at_block facts block in
      let proves op a c = Pred.Closure.decide cl op a (Pred.Atom.Const c) = Pred.Closure.True in
      let dt = Pred.Facts.term_of f d and nt = Pred.Facts.term_of f n in
      proves Ir.Types.Ne dt 0
      && (proves Ir.Types.Ne dt (-1) || proves Ir.Types.Ne nt min_int)
  | _ -> true

let cleared_at (ranges : Absint.Ranges.result) (f : Ir.Func.t) ~block v =
  match Ir.Func.instr f v with
  | Ir.Func.Binop ((Ir.Types.Div | Ir.Types.Rem), n, d) ->
      div_cleared
        ~num:(Absint.Ranges.env_at ranges block n)
        ~den:(Absint.Ranges.env_at ranges block d)
  | _ -> true

let pp ppf = function
  | Safe -> Format.fprintf ppf "safe"
  | Proven why -> Format.fprintf ppf "proven (%s)" why
  | Pinned (May_trap { predicate = Some p }) ->
      Format.fprintf ppf "pinned: may trap (guarded by b%d)" p
  | Pinned (May_trap { predicate = None }) ->
      Format.fprintf ppf "pinned: may trap"
  | Pinned Call -> Format.fprintf ppf "pinned: call"
  | Pinned Anchored -> Format.fprintf ppf "pinned: anchored"

(* Early/late/best schedules, per Click PLDI '95.

   Early: a value is available from the deepest (by dominator-tree depth)
   of its operands' early blocks — computed by a memoized walk of the SSA
   def-use graph, the sparse style of the rest of the repo's analyses.
   Recursion terminates because every SSA cycle passes through a φ, and φs
   are pinned to their blocks.

   Late: the dominator-tree LCA of the value's use positions. A plain use
   sits in the user's block; a φ use sits at the source of the predecessor
   edge that carries the argument (the value must be available on that edge,
   not in the φ's block). The current block dominates every reachable use
   position, so the LCA is on the dominator path below early — the legal
   range [early .. late] is a path in the dominator tree through the
   current block.

   Best: walk the dominator path from late up to early and keep the block
   of minimum loop depth, preferring the latest such block (don't move on
   ties) so values stay close to their uses — Click's heuristic. Pinned
   values (φs, calls, uncleared faulting ops) never move: their range
   collapses to the current block. *)

type t = {
  func : Ir.Func.t;
  graph : Analysis.Graph.t;
  dom : Analysis.Dom.t;
  pdom : Analysis.Postdom.t;
  forest : Analysis.Loops.forest;
  ranges : Absint.Ranges.result;
  safety : Speculate.t array;
  early : int array;
  late : int array;
  best : int array;
}

type stats = {
  values : int;
  pinned : int;
  speculation_blocked : int;
  hoistable : int;
  sinkable : int;
}

let identity (f : Ir.Func.t) = Array.copy f.Ir.Func.instr_block
let is_value_at f v = Ir.Func.defines_value (Ir.Func.instr f v)

let movable t v =
  is_value_at t.func v
  && Analysis.Dom.reachable t.dom (Ir.Func.block_of_instr t.func v)
  && not (Speculate.is_pinned t.safety.(v))

let hoistable t v =
  movable t v
  &&
  let b = Ir.Func.block_of_instr t.func v in
  Analysis.Dom.strictly_dominates t.dom t.best.(v) b
  && Analysis.Loops.depth_at t.forest t.best.(v) < Analysis.Loops.depth_at t.forest b

let sinkable t v =
  movable t v
  &&
  let b = Ir.Func.block_of_instr t.func v in
  Analysis.Dom.strictly_dominates t.dom b t.best.(v)
  && (Analysis.Loops.depth_at t.forest t.best.(v) < Analysis.Loops.depth_at t.forest b
     || not (Analysis.Postdom.postdominates t.pdom t.best.(v) b))

let stats t =
  let ni = Ir.Func.num_instrs t.func in
  let values = ref 0
  and pinned = ref 0
  and blocked = ref 0
  and hoist = ref 0
  and sink = ref 0 in
  for v = 0 to ni - 1 do
    if is_value_at t.func v
       && Analysis.Dom.reachable t.dom (Ir.Func.block_of_instr t.func v)
    then begin
      incr values;
      (match t.safety.(v) with
      | Speculate.Pinned (Speculate.May_trap _) ->
          incr pinned;
          incr blocked
      | Speculate.Pinned _ -> incr pinned
      | Speculate.Safe | Speculate.Proven _ -> ());
      if hoistable t v then incr hoist;
      if sinkable t v then incr sink
    end
  done;
  {
    values = !values;
    pinned = !pinned;
    speculation_blocked = !blocked;
    hoistable = !hoist;
    sinkable = !sink;
  }

let compute ?obs (f : Ir.Func.t) : t =
  Obs.span_o obs ~cat:"schedule" "schedule.compute" @@ fun () ->
  let t0 = match obs with Some o -> Obs.clock o | None -> 0.0 in
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let pdom = Analysis.Postdom.compute g in
  let forest = Analysis.Loops.forest ~dom g in
  let ranges = Absint.Ranges.run ?obs f in
  let ni = Ir.Func.num_instrs f in
  let safety =
    Array.init ni (fun v ->
        if is_value_at f v then Speculate.classify f ~dom ~pdom ~ranges v
        else Speculate.Pinned Speculate.Anchored)
  in
  (* Use positions, per operand definition — independent of safety. *)
  let posns = Array.make ni [] in
  Array.iteri
    (fun u ins ->
      match ins with
      | Ir.Func.Phi args ->
          let blk = Ir.Func.block f (Ir.Func.block_of_instr f u) in
          Array.iteri
            (fun ix v ->
              let src = (Ir.Func.edge f blk.Ir.Func.preds.(ix)).Ir.Func.src in
              posns.(v) <- src :: posns.(v))
            args
      | _ ->
          let b = Ir.Func.block_of_instr f u in
          Ir.Func.iter_operands (fun v -> posns.(v) <- b :: posns.(v)) ins)
    f.Ir.Func.instrs;
  (* Fact-cleared divisions get their early clamped to the highest block
     whose dominating facts clear them (phase 2 below): the guards sit at
     that block, so the value may float anywhere it dominates but not
     above it. *)
  let clamp = Array.make ni (-1) in
  (* Both schedules under the current safety classification. *)
  let schedule () =
    let early = Array.make ni (-1) in
    let rec early_of v =
      if early.(v) >= 0 then early.(v)
      else begin
        let b = Ir.Func.block_of_instr f v in
        (* Provisional self-placement guards against malformed SSA cycles;
           well-formed cycles stop at a pinned φ before re-entering. *)
        early.(v) <- b;
        let e =
          if (not (Analysis.Dom.reachable dom b)) || Speculate.is_pinned safety.(v)
          then b
          else begin
            let e = ref Ir.Func.entry in
            Ir.Func.iter_operands
              (fun o ->
                let eo = early_of o in
                if Analysis.Dom.reachable dom eo
                   && dom.Analysis.Dom.depth.(eo) > dom.Analysis.Dom.depth.(!e)
                then e := eo)
              (Ir.Func.instr f v);
            if clamp.(v) >= 0 then clamp.(v) else !e
          end
        in
        early.(v) <- e;
        e
      end
    in
    for v = 0 to ni - 1 do
      ignore (early_of v)
    done;
    let late = Array.make ni (-1) in
    let best = Array.make ni (-1) in
    for v = 0 to ni - 1 do
      let b = Ir.Func.block_of_instr f v in
      if
        (not (is_value_at f v))
        || (not (Analysis.Dom.reachable dom b))
        || Speculate.is_pinned safety.(v)
      then begin
        late.(v) <- b;
        best.(v) <- b
      end
      else begin
        (match List.filter (Analysis.Dom.reachable dom) posns.(v) with
        | [] -> late.(v) <- b
        | p :: ps -> late.(v) <- List.fold_left (Analysis.Dom.nca dom) p ps);
        (* Minimum loop depth on the dominator path late .. early; the
           latest such block wins ties. *)
        let cur = ref late.(v) and bst = ref late.(v) in
        while !cur <> early.(v) && !cur >= 0 do
          cur := dom.Analysis.Dom.idom.(!cur);
          if
            !cur >= 0
            && Analysis.Loops.depth_at forest !cur
               < Analysis.Loops.depth_at forest !bst
          then bst := !cur
        done;
        best.(v) <- !bst
      end
    done;
    (early, late, best)
  in
  let early, late, best = schedule () in
  (* Second phase: a division pinned for trap safety is re-examined on the
     dominator chain between its block and the deepest of its operands'
     earlies. The highest block on that chain whose dominating branch facts
     clear the division marks where its protecting guards sit — above it
     the facts no longer hold, below it (values being immutable) they
     always do. When one exists strictly above the division, the
     interval-based pin was conservative: upgrade to Proven, clamp early to
     the clearing block, and reschedule, giving the value a real range. *)
  let fact_upgrades = ref 0 in
  let facts = lazy (Pred.Facts.compute f) in
  for v = 0 to ni - 1 do
    match safety.(v) with
    | Speculate.Pinned (Speculate.May_trap _)
      when Analysis.Dom.reachable dom (Ir.Func.block_of_instr f v) ->
        let b = Ir.Func.block_of_instr f v in
        let e = ref Ir.Func.entry in
        Ir.Func.iter_operands
          (fun o ->
            let eo = early.(o) in
            if Analysis.Dom.reachable dom eo
               && dom.Analysis.Dom.depth.(eo) > dom.Analysis.Dom.depth.(!e)
            then e := eo)
          (Ir.Func.instr f v);
        let cleared = ref (-1) in
        let a = ref dom.Analysis.Dom.idom.(b) in
        while !a >= 0 && dom.Analysis.Dom.depth.(!a) >= dom.Analysis.Dom.depth.(!e) do
          if Speculate.cleared_by_facts (Lazy.force facts) f ~block:!a v then cleared := !a;
          a := dom.Analysis.Dom.idom.(!a)
        done;
        if !cleared >= 0 then begin
          safety.(v) <-
            Speculate.Proven (Fmt.str "dominating facts at b%d clear the division" !cleared);
          clamp.(v) <- !cleared;
          incr fact_upgrades
        end
    | _ -> ()
  done;
  let early, late, best = if !fact_upgrades > 0 then schedule () else (early, late, best) in
  let t =
    { func = f; graph = g; dom; pdom; forest; ranges; safety; early; late; best }
  in
  (match obs with
  | None -> ()
  | Some o ->
      let s = stats t in
      Obs.add o "schedule.values" s.values;
      Obs.add o "schedule.hoistable" s.hoistable;
      Obs.add o "schedule.sinkable" s.sinkable;
      Obs.add o "schedule.speculation_blocked" s.speculation_blocked;
      Obs.add o "schedule.fact_cleared" !fact_upgrades;
      Obs.observe_seconds o "schedule.compute_ns" (Obs.clock o -. t0));
  t

let lints t =
  let ni = Ir.Func.num_instrs t.func in
  let out = ref [] in
  for v = ni - 1 downto 0 do
    let b = Ir.Func.block_of_instr t.func v in
    if hoistable t v then
      out :=
        Check.Diagnostic.info ~check:"lint-loop-invariant"
          ~loc:(Check.Diagnostic.Instr v)
          "v%d is loop-invariant: best block b%d (depth %d) vs b%d (depth %d)" v
          t.best.(v)
          (Analysis.Loops.depth_at t.forest t.best.(v))
          b
          (Analysis.Loops.depth_at t.forest b)
        :: !out
    else if sinkable t v then
      out :=
        Check.Diagnostic.info ~check:"lint-sinkable"
          ~loc:(Check.Diagnostic.Instr v)
          "v%d can sink from b%d to b%d, closer to its uses" v b t.best.(v)
        :: !out
  done;
  !out

let pp_fact t ppf v =
  if not (is_value_at t.func v) then Format.fprintf ppf "-"
  else
    let b = Ir.Func.block_of_instr t.func v in
    Format.fprintf ppf "early b%d best b%d late b%d depth %d->%d %a%s" t.early.(v)
      t.best.(v) t.late.(v)
      (Analysis.Loops.depth_at t.forest b)
      (Analysis.Loops.depth_at t.forest t.best.(v))
      Speculate.pp t.safety.(v)
      (if hoistable t v then " [hoistable]"
       else if sinkable t v then " [sinkable]"
       else "")

(* Front door of the code-motion placement analysis (the static-analysis
   half of a Click-style GCM transform):

   - {!Speculate}: per-value speculation-safety classification, with
     faulting ops proven movable from interval facts or pinned behind
     their controlling predicate;
   - {!Placement}: early/late/best legal schedule ranges over the
     dominator tree, postdominators and the loop-nesting forest, plus the
     hoistable/sinkable opportunity lints.

   The independent legality verifier lives in {!Check.Schedule}, on the
   other side of the certification fence: it shares no code with this
   library beyond the underlying analyses. *)

module Speculate = Speculate
module Placement = Placement

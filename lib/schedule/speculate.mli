(** Speculation-safety classification of SSA values: may an instruction be
    evaluated at a block other than the one that currently guards it?

    - [Safe]: trap-free by operator class (constants, parameters, unops,
      comparisons, and every binop except [Div]/[Rem]).
    - [Proven]: a potentially faulting op proven non-trapping from the
      {e unrefined} interval facts of its operands — the divisor's interval
      excludes 0 and the [min_int]/[-1] overflow pair is excluded. Unrefined
      facts are sound at any block dominated by the operand definitions, so
      a [Proven] op may float anywhere its operands are available.
    - [Pinned]: everything else. [May_trap] records the controlling
      predicate — the nearest strict dominator whose terminator branches and
      which the op's block does not postdominate; hoisting above it could
      introduce a fault the original program never executed. [Call] pins
      opaque calls; [Anchored] pins φs (and terminators), which are
      placeholders for control flow rather than movable computations. *)

type reason =
  | May_trap of { predicate : int option }
      (** faulting op not cleared by the facts; [predicate] is the
          controlling branch block when one exists *)
  | Call  (** opaque call: never speculated *)
  | Anchored  (** φ or terminator: fixed by control flow *)

type t = Safe | Proven of string | Pinned of reason

val classify :
  Ir.Func.t ->
  dom:Analysis.Dom.t ->
  pdom:Analysis.Postdom.t ->
  ranges:Absint.Ranges.result ->
  Ir.Func.value ->
  t

val is_pinned : t -> bool

val cleared_at : Absint.Ranges.result -> Ir.Func.t -> block:int -> Ir.Func.value -> bool
(** For a potentially faulting instruction: do the interval facts, refined
    by the branch predicates holding on entry to [block], prove it cannot
    fault {e there}? Refined facts embed dominating-guard constraints, so
    this is only sound for evaluating the op at [block] itself — the
    legality checker's question, not the placement analysis's. Non-faulting
    instructions are trivially cleared. *)

val cleared_by_facts : Pred.Facts.t -> Ir.Func.t -> block:int -> Ir.Func.value -> bool
(** For a potentially faulting instruction: do the dominating branch facts
    on entry to [block], combined by the multi-fact implication closure,
    prove it cannot fault? The facts embed [block]'s guards, so — values
    being immutable — the clearance is sound at [block] and at every block
    it dominates. Strictly stronger than {!cleared_at} on guard
    conjunctions intervals cannot express (e.g. [d != 0 && d != -1]).
    Non-faulting instructions are trivially cleared. *)

val controlling_predicate :
  Ir.Func.t -> dom:Analysis.Dom.t -> pdom:Analysis.Postdom.t -> int -> int option
(** The nearest strict dominator of a block whose terminator branches and
    which the block does not postdominate — the predicate guarding the
    block's execution, in the predicated-reachability sense of the paper. *)

val pp : Format.formatter -> t -> unit

(* Consume a GVN result: rebuild the function with unreachable blocks and
   edges removed, branches on decided conditions turned into jumps, values
   congruent to constants replaced by those constants, and redundant
   computations replaced by their congruence-class leader when the leader's
   definition dominates them. *)

type rewrite =
  | Keep (* emit the instruction *)
  | Use_const of int
  | Use_value of int (* old value id whose new copy should be used *)

let plan_rewrites (st : Pgvn.State.t) (f : Ir.Func.t) (dom : Analysis.Dom.t) =
  let n = Ir.Func.num_instrs f in
  let pos = Array.make n 0 in
  for b = 0 to Ir.Func.num_blocks f - 1 do
    Array.iteri (fun k i -> pos.(i) <- k) (Ir.Func.block f b).Ir.Func.instrs
  done;
  let def_dominates ~def ~v =
    let db = Ir.Func.block_of_instr f def and vb = Ir.Func.block_of_instr f v in
    if db = vb then pos.(def) < pos.(v) else Analysis.Dom.strictly_dominates dom db vb
  in
  Array.init n (fun v ->
      let ins = Ir.Func.instr f v in
      if not (Ir.Func.defines_value ins) then Keep
      else if Pgvn.Driver.value_unreachable st v then Keep (* dropped with its block *)
      else
        match Pgvn.Driver.value_constant st v with
        | Some c -> Use_const c
        | None -> (
            match (Pgvn.State.cls st st.Pgvn.State.class_of.(v)).Pgvn.State.leader with
            | Pgvn.State.Lvalue l when l <> v && def_dominates ~def:l ~v -> Use_value l
            | _ -> Keep))

(* Rebuild, leaving an audit trail: one {!Validate.Witness} per rewrite
   decision (constant fold, leader replacement, φ collapse, dropped edge or
   block), phrased in the input function's ids so the translation validator
   can replay them. *)
let rebuild_witnessed (st : Pgvn.State.t) (f : Ir.Func.t) :
    Ir.Func.t * Validate.Witness.t list =
  let witnesses = ref [] in
  let witness w = witnesses := w :: !witnesses in
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let rewrites = plan_rewrites st f dom in
  let nb = Ir.Func.num_blocks f in
  let bld = Ir.Builder.create ~name:f.Ir.Func.name ~nparams:f.Ir.Func.nparams in
  (* New block ids for reachable blocks, in original order (entry stays 0). *)
  let block_map = Array.make nb (-1) in
  for b = 0 to nb - 1 do
    if Pgvn.State.block_reachable st b then block_map.(b) <- Ir.Builder.add_block bld
    else witness (Validate.Witness.Drop_block { block = b })
  done;
  let value_map = Array.make (Ir.Func.num_instrs f) (-1) in
  (* Constants materialize once, in the entry block. *)
  let const_cache = Hashtbl.create 16 in
  let const_value c =
    match Hashtbl.find_opt const_cache c with
    | Some v -> v
    | None ->
        let v = Ir.Builder.const bld block_map.(Ir.Func.entry) c in
        Hashtbl.replace const_cache c v;
        v
  in
  (* Single-live-argument φs collapse to their argument: recorded here and
     consulted by [resolve], which works both during emission (the alias is
     registered before any dominated use is emitted) and afterwards. *)
  let alias = Hashtbl.create 16 in
  let rec resolve v =
    match rewrites.(v) with
    | Use_const c -> const_value c
    | Use_value l -> resolve l
    | Keep -> (
        match Hashtbl.find_opt alias v with
        | Some a -> resolve a
        | None ->
            if value_map.(v) < 0 then
              invalid_arg (Printf.sprintf "Apply.rebuild: v%d used before definition" v);
            value_map.(v))
  in
  (* φ arguments are wired per incoming edge once all edges exist. *)
  let phi_fixups = ref [] in
  let emit_block b =
    let nb' = block_map.(b) in
    let blk = Ir.Func.block f b in
    Array.iter
      (fun i ->
        let ins = Ir.Func.instr f i in
        let cid = st.Pgvn.State.class_of.(i) in
        match rewrites.(i) with
        | Use_const c ->
            (* Rematerializing a Const as itself is not a semantic rewrite. *)
            if ins <> Ir.Func.Const c then
              witness (Validate.Witness.Fold_const { v = i; c; cid })
        | Use_value l -> witness (Validate.Witness.Replace { v = i; leader = l; cid })
        | Keep -> (
            match ins with
            | Ir.Func.Const c -> value_map.(i) <- Ir.Builder.const bld nb' c
            | Ir.Func.Param k -> value_map.(i) <- Ir.Builder.param bld nb' k
            | Ir.Func.Unop (op, a) -> value_map.(i) <- Ir.Builder.unop bld nb' op (resolve a)
            | Ir.Func.Binop (op, a, b') ->
                value_map.(i) <- Ir.Builder.binop bld nb' op (resolve a) (resolve b')
            | Ir.Func.Cmp (op, a, b') ->
                value_map.(i) <- Ir.Builder.cmp bld nb' op (resolve a) (resolve b')
            | Ir.Func.Opaque (tag, args) ->
                value_map.(i) <-
                  Ir.Builder.opaque ~tag bld nb' (List.map resolve (Array.to_list args))
            | Ir.Func.Phi args ->
                let live =
                  Array.to_list blk.Ir.Func.preds
                  |> List.mapi (fun ix e -> (e, args.(ix)))
                  |> List.filter (fun (e, _) -> Pgvn.State.edge_reachable st e)
                in
                (match live with
                | [] -> invalid_arg "Apply.rebuild: phi with no live arguments"
                | [ (e, a) ] ->
                    (* Single live incoming edge: the φ is the argument. The
                       argument's definition dominates the sole predecessor,
                       hence this block. *)
                    witness (Validate.Witness.Collapse_phi { phi = i; arg = a; kept_edge = e });
                    Hashtbl.replace alias i a
                | live ->
                    let p = Ir.Builder.phi bld nb' in
                    value_map.(i) <- p;
                    phi_fixups := (p, live) :: !phi_fixups)
            | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ | Ir.Func.Return _ -> ()))
      blk.Ir.Func.instrs
  in
  (* Emit in RPO so operand definitions (which dominate their uses) are
     always emitted before the instructions that resolve them. *)
  let rpo = Analysis.Rpo.compute g in
  Array.iter (fun b -> if block_map.(b) >= 0 then emit_block b) rpo.Analysis.Rpo.order;
  (* Terminators: create edges (only reachable ones), remembering the new
     edge id that corresponds to each old reachable edge. *)
  let edge_map = Array.make (Ir.Func.num_edges f) (-1) in
  for b = 0 to nb - 1 do
    if block_map.(b) >= 0 then begin
      let nb' = block_map.(b) in
      let blk = Ir.Func.block f b in
      Array.iter
        (fun e ->
          if not (Pgvn.State.edge_reachable st e) then
            witness (Validate.Witness.Drop_edge { edge = e }))
        blk.Ir.Func.succs;
      match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
      | Ir.Func.Jump ->
          let e = blk.Ir.Func.succs.(0) in
          edge_map.(e) <- Ir.Builder.jump bld nb' ~dst:block_map.((Ir.Func.edge f e).Ir.Func.dst)
      | Ir.Func.Return v -> Ir.Builder.ret bld nb' (resolve v)
      | Ir.Func.Branch c -> (
          let et = blk.Ir.Func.succs.(0) and ef = blk.Ir.Func.succs.(1) in
          let rt = Pgvn.State.edge_reachable st et and rf = Pgvn.State.edge_reachable st ef in
          match (rt, rf) with
          | true, true ->
              let dt = block_map.((Ir.Func.edge f et).Ir.Func.dst) in
              let df = block_map.((Ir.Func.edge f ef).Ir.Func.dst) in
              let net, nef = Ir.Builder.branch bld nb' (resolve c) ~ift:dt ~iff:df in
              edge_map.(et) <- net;
              edge_map.(ef) <- nef
          | true, false ->
              edge_map.(et) <-
                Ir.Builder.jump bld nb' ~dst:block_map.((Ir.Func.edge f et).Ir.Func.dst)
          | false, true ->
              edge_map.(ef) <-
                Ir.Builder.jump bld nb' ~dst:block_map.((Ir.Func.edge f ef).Ir.Func.dst)
          | false, false -> invalid_arg "Apply.rebuild: branch with no live edge")
      | Ir.Func.Switch (c, cases) -> (
          (* Keep reachable case edges only. If the default is unreachable,
             the last reachable case is promoted to default (the analysis
             guarantees the scrutinee hits some kept case). *)
          let ncases = Array.length cases in
          let live_cases = ref [] in
          for ix = 0 to ncases - 1 do
            let e = blk.Ir.Func.succs.(ix) in
            if Pgvn.State.edge_reachable st e then
              live_cases := (cases.(ix), e) :: !live_cases
          done;
          let live_cases = List.rev !live_cases in
          let de = blk.Ir.Func.succs.(ncases) in
          let default_live = Pgvn.State.edge_reachable st de in
          let target e = block_map.((Ir.Func.edge f e).Ir.Func.dst) in
          match (live_cases, default_live) with
          | [], false -> invalid_arg "Apply.rebuild: switch with no live edge"
          | [], true -> edge_map.(de) <- Ir.Builder.jump bld nb' ~dst:(target de)
          | [ (_, e) ], false -> edge_map.(e) <- Ir.Builder.jump bld nb' ~dst:(target e)
          | live, default_live ->
              let keep, promoted =
                if default_live then (live, None)
                else
                  let rec split acc = function
                    | [ last ] -> (List.rev acc, last)
                    | x :: rest -> split (x :: acc) rest
                    | [] -> assert false
                  in
                  let init, last = split [] live in
                  (init, Some last)
              in
              let case_args = List.map (fun (k, e) -> (k, target e)) keep in
              let default_target =
                match promoted with Some (_, e) -> target e | None -> target de
              in
              let case_edges, new_default =
                Ir.Builder.switch bld nb' (resolve c) ~cases:case_args ~default:default_target
              in
              List.iteri (fun i (_, e) -> edge_map.(e) <- List.nth case_edges i) keep;
              (match promoted with
              | Some (_, e) -> edge_map.(e) <- new_default
              | None -> edge_map.(de) <- new_default))
      | _ -> invalid_arg "Apply.rebuild: missing terminator"
    end
  done;
  (* Now wire φ arguments through the new edges. *)
  List.iter
    (fun (p, live) ->
      List.iter
        (fun (e, a) -> Ir.Builder.set_phi_arg bld ~phi:p ~edge:edge_map.(e) (resolve a))
        live)
    !phi_fixups;
  (Ir.Builder.finish bld, List.rev !witnesses)

let rebuild st f = fst (rebuild_witnessed st f)

(* Run GVN under [config] and rebuild the optimized function. *)
let optimize ?(config = Pgvn.Config.full) f =
  let st = Pgvn.Driver.run config f in
  rebuild st f

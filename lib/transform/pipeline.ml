(* The "HLO analog": a multi-pass scalar optimization pipeline in which GVN
   is one pass among several, so that the paper's Table 1 measurement — GVN
   time as a fraction of total optimization time — has a meaningful
   denominator. The pass mix is the usual early-scalar lineup: CFG cleanup,
   local value numbering, dead code elimination, GVN + rewrite, cleanup.

   With [Options.check] the {!Check} verifier runs after every pass and the
   first broken invariant is attributed to the pass that introduced it.

   Every pass instance is an [Obs] span (cat "pass"); the [timings] list is
   a view over those spans, not a separate stopwatch, and all time
   accounting matches on the structural [pass_kind] — never the display
   name. *)

type pass_kind = Simplify_cfg | Analyses | Lvn | Dce | Gvn

let pass_kind_name = function
  | Simplify_cfg -> "simplify-cfg"
  | Analyses -> "analyses"
  | Lvn -> "lvn"
  | Dce -> "dce"
  | Gvn -> "gvn"

type timing = { pass : string; kind : pass_kind; seconds : float }

let kind_seconds kind timings =
  List.fold_left (fun acc t -> if t.kind = kind then acc +. t.seconds else acc) 0.0 timings

let total_seconds_of timings = List.fold_left (fun acc t -> acc +. t.seconds) 0.0 timings

type result = {
  func : Ir.Func.t;
  timings : timing list;
  gvn_seconds : float;
  total_seconds : float;
  gvn_state : Pgvn.State.t option; (* the last GVN run's state *)
  validation : Validate.Report.t option; (* under [Options.validate] *)
  crosschecks : (string * Absint.Crosscheck.report) list; (* under [Options.crosscheck] *)
}

module Options = struct
  type t = {
    config : Pgvn.Config.t;
    rounds : int;
    check : bool;
    validate : Validate.mode option;
    crosscheck : bool;
    obs : Obs.t option;
  }

  let default =
    {
      config = Pgvn.Config.full;
      rounds = 2;
      check = false;
      validate = None;
      crosscheck = false;
      obs = None;
    }

  let with_config config t = { t with config }
  let with_rounds rounds t = { t with rounds }
  let with_check check t = { t with check }
  let with_validate validate t = { t with validate = Some validate }
  let with_crosscheck crosscheck t = { t with crosscheck }
  let with_obs obs t = { t with obs = Some obs }
end

exception
  Broken_invariant of { pass : string; diagnostics : Check.Diagnostic.t list }

exception
  Validation_failed of { pass : string; diagnostics : Check.Diagnostic.t list }

exception
  Crosscheck_failed of { pass : string; report : Absint.Crosscheck.report }

let () =
  Printexc.register_printer (function
    | Broken_invariant { pass; diagnostics } ->
        Some
          (Fmt.str "pipeline pass %s broke %d invariant(s); first: %a" pass
             (List.length diagnostics)
             Fmt.(option Check.Diagnostic.pp)
             (List.nth_opt diagnostics 0))
    | Validation_failed { pass; diagnostics } ->
        Some
          (Fmt.str "pipeline pass %s failed validation with %d finding(s); first: %a"
             pass
             (List.length diagnostics)
             Fmt.(option Check.Diagnostic.pp)
             (List.nth_opt diagnostics 0))
    | Crosscheck_failed { pass; report } ->
        Some
          (Fmt.str "pipeline pass %s contradicted by the interval semantics: %a" pass
             Absint.Crosscheck.pp_report report)
    | _ -> None)

(* The analysis bookkeeping a real pipeline recomputes between passes:
   dominators, postdominators, dominance frontiers, loops, def-use chains
   and value liveness. *)
let analysis_pass (f : Ir.Func.t) : Ir.Func.t =
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let (_ : Analysis.Postdom.t) = Analysis.Postdom.compute g in
  let (_ : int array array) = Analysis.Domfront.compute g dom in
  let (_ : Analysis.Loops.t) = Analysis.Loops.compute g in
  let (_ : int array array) = Ir.Func.def_use f in
  let (_ : Analysis.Liveness.t) = Analysis.Liveness.compute f in
  f

let guard ~obs ~check ~pass f =
  if check then
    Obs.span obs ~cat:"verify" "check" @@ fun () ->
    match Check.errors (Check.run_all f) with
    | [] -> f
    | diagnostics -> raise (Broken_invariant { pass; diagnostics })
  else f

let run_with (opts : Options.t) (f : Ir.Func.t) : result =
  let { Options.config; rounds; check; validate; crosscheck; obs } = opts in
  (* The pipeline always runs under an observability context — a private
     one when the caller installs none — so the trace is the single source
     of truth for time accounting. *)
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let timings = ref [] in
  let gvn_state = ref None in
  let vreport = ref Validate.Report.empty in
  let xreports = ref [] in
  (* Certify one pass instance under the requested validation mode. The
     analyses pass is the identity and is skipped; witness audits only ever
     apply to the GVN pass (the only pass that emits witnesses). *)
  let validate_pass ~name ~before ~after ~witnesses =
    match validate with
    | None -> ()
    | Some mode ->
        if Validate.diffs mode || witnesses <> [] then begin
          let p = Validate.certify ~obs ~mode ~pass:name ~witnesses before after in
          vreport := Validate.Report.add !vreport p;
          match List.filter Check.Diagnostic.is_error (Validate.Report.pass_diagnostics p) with
          | [] -> ()
          | diagnostics -> raise (Validation_failed { pass = name; diagnostics })
        end
  in
  let time_pass kind round pass x =
    let name = Printf.sprintf "%s#%d" (pass_kind_name kind) round in
    let sp = Obs.Trace.begin_span obs.Obs.trace ~cat:"pass" name in
    let y, witnesses = pass x in
    Obs.Trace.end_span obs.Obs.trace sp;
    timings := { pass = name; kind; seconds = Obs.Trace.duration sp } :: !timings;
    Obs.observe_seconds obs "pipeline.pass_ns" (Obs.Trace.duration sp);
    let y = guard ~obs ~check ~pass:name y in
    if kind <> Analyses then validate_pass ~name ~before:x ~after:y ~witnesses;
    y
  in
  let pipeline_span = Obs.Trace.begin_span obs.Obs.trace ~cat:"pipeline" "pipeline" in
  Fun.protect ~finally:(fun () -> Obs.Trace.end_span obs.Obs.trace pipeline_span)
  @@ fun () ->
  Obs.add obs "pipeline.runs" 1;
  let current = ref (guard ~obs ~check ~pass:"input" f) in
  for round = 1 to rounds do
    let pass_w kind p = current := time_pass kind round p !current in
    let pass kind p = pass_w kind (fun x -> (p x, [])) in
    pass Simplify_cfg Simplify_cfg.fixpoint;
    pass Analyses analysis_pass;
    pass Lvn Lvn.run;
    pass Dce Dce.run;
    pass Analyses analysis_pass;
    pass_w Gvn (fun fn ->
        let st = Pgvn.Driver.run ~obs config fn in
        gvn_state := Some st;
        if crosscheck then begin
          (* Static replay of the run's claims against interval facts,
             before the rewrite is even applied. *)
          let name = Printf.sprintf "gvn#%d" round in
          let report =
            Obs.span obs ~cat:"verify" "crosscheck" (fun () -> Absint.Crosscheck.run st)
          in
          xreports := (name, report) :: !xreports;
          if not (Absint.Crosscheck.ok report) then
            raise (Crosscheck_failed { pass = name; report })
        end;
        Apply.rebuild_witnessed st fn);
    pass Dce Dce.run;
    pass Analyses analysis_pass;
    pass Simplify_cfg Simplify_cfg.fixpoint;
    pass Lvn Lvn.run;
    pass Dce Dce.run
  done;
  Obs.Trace.end_span obs.Obs.trace pipeline_span;
  let timings = List.rev !timings in
  {
    func = !current;
    timings;
    (* Accounting matches on [kind] only: a display name may collide (a
       future pass could be called "gvn-lite#1") without skewing Table 1. *)
    gvn_seconds = kind_seconds Gvn timings;
    total_seconds = Obs.Trace.duration pipeline_span;
    gvn_state = !gvn_state;
    validation = (match validate with None -> None | Some _ -> Some !vreport);
    crosschecks = List.rev !xreports;
  }

(* The "HLO analog": a multi-pass scalar optimization pipeline in which GVN
   is one pass among several, so that the paper's Table 1 measurement — GVN
   time as a fraction of total optimization time — has a meaningful
   denominator.

   The pipeline is an ordered list of {!Pass.t} descriptors — name, kind,
   transform, optional certifier — run by {!run_list}. The classic lineup
   (CFG cleanup, analyses, LVN, DCE, GVN + rewrite, cleanup, with GCM
   optionally appended after the last round) is {!standard_passes}, and the
   legacy single-shape entry point {!run_with} is now just
   [run_list opts (standard_passes opts)] — pinned behaviorally equivalent
   by test, as was done for the PR 5 run → run_with migration.

   With [Options.check] the {!Check} verifier runs after every pass and the
   first broken invariant is attributed to the pass that introduced it. A
   pass's own certifier (GCM's schedule-legality check) raises
   {!Certification_failed} the same way.

   Every pass instance is an [Obs] span (cat "pass"); the [timings] list is
   a view over those spans, not a separate stopwatch, and all time
   accounting matches on the structural [pass_kind] — never the display
   name. *)

type pass_kind = Simplify_cfg | Analyses | Lvn | Dce | Gvn | Gcm

let pass_kind_name = function
  | Simplify_cfg -> "simplify-cfg"
  | Analyses -> "analyses"
  | Lvn -> "lvn"
  | Dce -> "dce"
  | Gvn -> "gvn"
  | Gcm -> "gcm"

type timing = { pass : string; kind : pass_kind; seconds : float }

let kind_seconds kind timings =
  List.fold_left (fun acc t -> if t.kind = kind then acc +. t.seconds else acc) 0.0 timings

let total_seconds_of timings = List.fold_left (fun acc t -> acc +. t.seconds) 0.0 timings

type result = {
  func : Ir.Func.t;
  timings : timing list;
  gvn_seconds : float;
  total_seconds : float;
  gvn_state : Pgvn.State.t option; (* the last GVN run's state *)
  gcm_stats : Gcm.stats option; (* the last GCM pass's motion counts *)
  validation : Validate.Report.t option; (* under [Options.validate] *)
  crosschecks : (string * Absint.Crosscheck.report) list; (* under [Options.crosscheck] *)
}

module Options = struct
  type t = {
    config : Pgvn.Config.t;
    rounds : int;
    check : bool;
    validate : Validate.mode option;
    crosscheck : bool;
    gcm : bool;
    obs : Obs.t option;
  }

  let default =
    {
      config = Pgvn.Config.full;
      rounds = 2;
      check = false;
      validate = None;
      crosscheck = false;
      gcm = false;
      obs = None;
    }

  let with_config config t = { t with config }
  let with_rounds rounds t = { t with rounds }
  let with_check check t = { t with check }
  let with_validate validate t = { t with validate = Some validate }
  let with_crosscheck crosscheck t = { t with crosscheck }
  let with_gcm gcm t = { t with gcm }
  let with_obs obs t = { t with obs = Some obs }
end

exception
  Broken_invariant of { pass : string; diagnostics : Check.Diagnostic.t list }

exception
  Validation_failed of { pass : string; diagnostics : Check.Diagnostic.t list }

exception
  Crosscheck_failed of { pass : string; report : Absint.Crosscheck.report }

exception
  Certification_failed of { pass : string; diagnostics : Check.Diagnostic.t list }

let () =
  Printexc.register_printer (function
    | Broken_invariant { pass; diagnostics } ->
        Some
          (Fmt.str "pipeline pass %s broke %d invariant(s); first: %a" pass
             (List.length diagnostics)
             Fmt.(option Check.Diagnostic.pp)
             (List.nth_opt diagnostics 0))
    | Validation_failed { pass; diagnostics } ->
        Some
          (Fmt.str "pipeline pass %s failed validation with %d finding(s); first: %a"
             pass
             (List.length diagnostics)
             Fmt.(option Check.Diagnostic.pp)
             (List.nth_opt diagnostics 0))
    | Crosscheck_failed { pass; report } ->
        Some
          (Fmt.str "pipeline pass %s contradicted by the interval semantics: %a" pass
             Absint.Crosscheck.pp_report report)
    | Certification_failed { pass; diagnostics } ->
        Some
          (Fmt.str "pipeline pass %s refused certification with %d finding(s); first: %a"
             pass
             (List.length diagnostics)
             Fmt.(option Check.Diagnostic.pp)
             (List.nth_opt diagnostics 0))
    | _ -> None)

(* The analysis bookkeeping a real pipeline recomputes between passes:
   dominators, postdominators, dominance frontiers, loops, def-use chains
   and value liveness. *)
let analysis_pass (f : Ir.Func.t) : Ir.Func.t =
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let (_ : Analysis.Postdom.t) = Analysis.Postdom.compute g in
  let (_ : int array array) = Analysis.Domfront.compute g dom in
  let (_ : Analysis.Loops.t) = Analysis.Loops.compute g in
  let (_ : int array array) = Ir.Func.def_use f in
  let (_ : Analysis.Liveness.t) = Analysis.Liveness.compute f in
  f

let guard ~obs ~check ~pass f =
  if check then
    Obs.span obs ~cat:"verify" "check" @@ fun () ->
    match Check.errors (Check.run_all f) with
    | [] -> f
    | diagnostics -> raise (Broken_invariant { pass; diagnostics })
  else f

module Pass = struct
  type ctx = {
    obs : Obs.t;
    config : Pgvn.Config.t;
    crosscheck : bool;
    gvn_state : Pgvn.State.t option ref;
    crosschecks : (string * Absint.Crosscheck.report) list ref;
    gcm_stats : Gcm.stats option ref;
  }

  type t = {
    name : string;
    kind : pass_kind;
    transform :
      ctx -> name:string -> Ir.Func.t -> Ir.Func.t * Validate.Witness.t list;
    certifier :
      (ctx ->
      name:string ->
      before:Ir.Func.t ->
      after:Ir.Func.t ->
      Check.Diagnostic.t list)
      option;
  }

  let pure kind ~name p =
    { name; kind; transform = (fun _ ~name:_ f -> (p f, [])); certifier = None }

  let simplify_cfg ~name = pure Simplify_cfg ~name Simplify_cfg.fixpoint
  let analyses ~name = pure Analyses ~name analysis_pass
  let lvn ~name = pure Lvn ~name Lvn.run
  let dce ~name = pure Dce ~name Dce.run

  let gvn ~name:name_ =
    {
      name = name_;
      kind = Gvn;
      transform =
        (fun ctx ~name fn ->
          let st = Pgvn.Driver.run ~obs:ctx.obs ctx.config fn in
          ctx.gvn_state := Some st;
          if ctx.crosscheck then begin
            (* Static replay of the run's claims against interval facts,
               before the rewrite is even applied. *)
            let report =
              Obs.span ctx.obs ~cat:"verify" "crosscheck" (fun () ->
                  Absint.Crosscheck.run st)
            in
            ctx.crosschecks := (name, report) :: !(ctx.crosschecks);
            if not (Absint.Crosscheck.ok report) then
              raise (Crosscheck_failed { pass = name; report })
          end;
          Apply.rebuild_witnessed st fn);
      certifier = None;
    }

  let gcm ~name:name_ =
    {
      name = name_;
      kind = Gcm;
      transform =
        (fun ctx ~name fn ->
          match Gcm.run ~obs:ctx.obs fn with
          | f', s ->
              ctx.gcm_stats := Some s;
              (f', [])
          | exception Gcm.Rejected { diagnostics } ->
              raise (Certification_failed { pass = name; diagnostics }));
      (* Second opinion from the other side of the fence: the output
         function's own (identity) schedule must still be legal. *)
      certifier =
        Some
          (fun _ ~name:_ ~before:_ ~after ->
            Check.errors (Check.Schedule.run after));
    }
end

let standard_round round =
  let n kind = Printf.sprintf "%s#%d" (pass_kind_name kind) round in
  [
    Pass.simplify_cfg ~name:(n Simplify_cfg);
    Pass.analyses ~name:(n Analyses);
    Pass.lvn ~name:(n Lvn);
    Pass.dce ~name:(n Dce);
    Pass.analyses ~name:(n Analyses);
    Pass.gvn ~name:(n Gvn);
    Pass.dce ~name:(n Dce);
    Pass.analyses ~name:(n Analyses);
    Pass.simplify_cfg ~name:(n Simplify_cfg);
    Pass.lvn ~name:(n Lvn);
    Pass.dce ~name:(n Dce);
  ]

let standard_passes (opts : Options.t) =
  List.concat (List.init opts.Options.rounds (fun i -> standard_round (i + 1)))
  @ (if opts.Options.gcm then [ Pass.gcm ~name:"gcm#1" ] else [])

let run_list (opts : Options.t) (passes : Pass.t list) (f : Ir.Func.t) : result =
  let { Options.config; rounds = _; check; validate; crosscheck; gcm = _; obs } =
    opts
  in
  (* The pipeline always runs under an observability context — a private
     one when the caller installs none — so the trace is the single source
     of truth for time accounting. *)
  let obs = match obs with Some o -> o | None -> Obs.create () in
  let timings = ref [] in
  let gvn_state = ref None in
  let gcm_stats = ref None in
  let vreport = ref Validate.Report.empty in
  let xreports = ref [] in
  let ctx =
    {
      Pass.obs;
      config;
      crosscheck;
      gvn_state;
      crosschecks = xreports;
      gcm_stats;
    }
  in
  (* Certify one pass instance under the requested validation mode. The
     analyses pass is the identity and is skipped; witness audits only ever
     apply to the GVN pass (the only pass that emits witnesses). *)
  let validate_pass ~name ~before ~after ~witnesses =
    match validate with
    | None -> ()
    | Some mode ->
        if Validate.diffs mode || witnesses <> [] then begin
          let p = Validate.certify ~obs ~mode ~pass:name ~witnesses before after in
          vreport := Validate.Report.add !vreport p;
          match List.filter Check.Diagnostic.is_error (Validate.Report.pass_diagnostics p) with
          | [] -> ()
          | diagnostics -> raise (Validation_failed { pass = name; diagnostics })
        end
  in
  let time_pass (p : Pass.t) x =
    let name = p.Pass.name in
    let sp = Obs.Trace.begin_span obs.Obs.trace ~cat:"pass" name in
    let y, witnesses = p.Pass.transform ctx ~name x in
    Obs.Trace.end_span obs.Obs.trace sp;
    timings := { pass = name; kind = p.Pass.kind; seconds = Obs.Trace.duration sp } :: !timings;
    Obs.observe_seconds obs "pipeline.pass_ns" (Obs.Trace.duration sp);
    let y = guard ~obs ~check ~pass:name y in
    (match p.Pass.certifier with
    | None -> ()
    | Some cert -> (
        match cert ctx ~name ~before:x ~after:y with
        | [] -> ()
        | diagnostics -> raise (Certification_failed { pass = name; diagnostics })));
    if p.Pass.kind <> Analyses then validate_pass ~name ~before:x ~after:y ~witnesses;
    y
  in
  let pipeline_span = Obs.Trace.begin_span obs.Obs.trace ~cat:"pipeline" "pipeline" in
  Fun.protect ~finally:(fun () -> Obs.Trace.end_span obs.Obs.trace pipeline_span)
  @@ fun () ->
  Obs.add obs "pipeline.runs" 1;
  let current = ref (guard ~obs ~check ~pass:"input" f) in
  List.iter (fun p -> current := time_pass p !current) passes;
  Obs.Trace.end_span obs.Obs.trace pipeline_span;
  let timings = List.rev !timings in
  {
    func = !current;
    timings;
    (* Accounting matches on [kind] only: a display name may collide (a
       future pass could be called "gvn-lite#1") without skewing Table 1. *)
    gvn_seconds = kind_seconds Gvn timings;
    total_seconds = Obs.Trace.duration pipeline_span;
    gvn_state = !gvn_state;
    gcm_stats = !gcm_stats;
    validation = (match validate with None -> None | Some _ -> Some !vreport);
    crosschecks = List.rev !xreports;
  }

let run_with (opts : Options.t) (f : Ir.Func.t) : result =
  run_list opts (standard_passes opts) f

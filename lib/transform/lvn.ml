(* Local (per-block) value numbering with constant folding — the cheap
   early pass a production pipeline runs before global value numbering.
   Purely intra-block: replaces an instruction by an earlier identical one
   in the same block, or by a constant. *)

type vexpr =
  | Vconst of int
  | Vunop of Ir.Types.unop * int
  | Vbinop of Ir.Types.binop * int * int
  | Vcmp of Ir.Types.cmp * int * int
  | Vopq of int * int list

(* Operand view for the shared rule table (lib/rules): a value id or its
   known constant. The adapter is deliberately shallow — LVN has no
   expression language beyond existing value ids, so any rule whose
   right-hand side would need a fresh compound node is declined. *)
type lrep = Lv of int | Lc of int

let rules_subject : lrep Rules.Engine.subject =
  {
    Rules.Engine.view =
      (function Lc c -> Rules.Engine.Sconst c | Lv _ -> Rules.Engine.Satom);
    equal = (fun a b -> a = b);
    bconst = (fun c -> Lc c);
    bunop = (fun _ _ -> None);
    bbinop = (fun _ _ _ -> None);
    reduce = (fun _ -> None);
  }

(* Returns a per-value rewrite map: [Some w] means "use w instead". *)
let rewrites (f : Ir.Func.t) =
  let n = Ir.Func.num_instrs f in
  let rw = Array.make n None in
  let resolve v = match rw.(v) with Some w -> w | None -> v in
  let const_of = Array.make n None in
  for b = 0 to Ir.Func.num_blocks f - 1 do
    let tbl = Hashtbl.create 16 in
    Array.iter
      (fun i ->
        let key =
          match Ir.Func.instr f i with
          | Ir.Func.Const c ->
              const_of.(i) <- Some c;
              Some (Vconst c)
          | Ir.Func.Unop (op, a) -> (
              let a = resolve a in
              let ra = match const_of.(a) with Some c -> Lc c | None -> Lv a in
              match Rules.Engine.rewrite_unop (Rules.Engine.shared ()) rules_subject op ra with
              | Some (Lc c) ->
                  const_of.(i) <- Some c;
                  None
              | Some (Lv w) ->
                  rw.(i) <- Some w;
                  None
              | None -> Some (Vunop (op, a)))
          | Ir.Func.Binop (op, a, b') -> (
              let a = resolve a and b' = resolve b' in
              let rep v = match const_of.(v) with Some c -> Lc c | None -> Lv v in
              match
                Rules.Engine.rewrite_binop (Rules.Engine.shared ()) rules_subject op (rep a)
                  (rep b')
              with
              | Some (Lc c) ->
                  const_of.(i) <- Some c;
                  None
              | Some (Lv w) ->
                  rw.(i) <- Some w;
                  None
              | None ->
                  if Ir.Types.binop_commutative op && b' < a then Some (Vbinop (op, b', a))
                  else Some (Vbinop (op, a, b')))
          | Ir.Func.Cmp (op, a, b') ->
              let a = resolve a and b' = resolve b' in
              (match (const_of.(a), const_of.(b')) with
              | Some ca, Some cb ->
                  const_of.(i) <- Some (Ir.Types.eval_cmp op ca cb);
                  None
              | _ -> Some (Vcmp (op, a, b')))
          | Ir.Func.Opaque (tag, args) ->
              Some (Vopq (tag, List.map resolve (Array.to_list args)))
          | Ir.Func.Param _ | Ir.Func.Phi _ | Ir.Func.Jump | Ir.Func.Branch _
          | Ir.Func.Switch _ | Ir.Func.Return _ ->
              None
        in
        match key with
        | None -> ()
        | Some key -> (
            match Hashtbl.find_opt tbl key with
            | Some w -> rw.(i) <- Some w
            | None -> Hashtbl.replace tbl key i))
      (Ir.Func.block f b).Ir.Func.instrs
  done;
  (rw, const_of)

(* Apply the rewrites: redundant instructions are dropped; instructions that
   folded to a constant are replaced by [Const]. *)
let run (f : Ir.Func.t) : Ir.Func.t =
  let rw, const_of = rewrites f in
  let nb = Ir.Func.num_blocks f in
  let bld = Ir.Builder.create ~name:f.Ir.Func.name ~nparams:f.Ir.Func.nparams in
  for _ = 0 to nb - 1 do
    ignore (Ir.Builder.add_block bld)
  done;
  let value_map = Array.make (Ir.Func.num_instrs f) (-1) in
  let rec resolve v =
    match rw.(v) with
    | Some w -> resolve w
    | None ->
        if value_map.(v) < 0 then invalid_arg "Lvn.run: unresolved value";
        value_map.(v)
  in
  let g = Analysis.Graph.of_func f in
  let rpo = Analysis.Rpo.compute g in
  let phis = ref [] in
  Array.iter
    (fun b ->
      Array.iter
        (fun i ->
          match rw.(i) with
          | Some _ -> ()
          | None -> (
              match Ir.Func.instr f i with
              | Ir.Func.Const c -> value_map.(i) <- Ir.Builder.const bld b c
              | Ir.Func.Param k -> value_map.(i) <- Ir.Builder.param bld b k
              | Ir.Func.Phi args ->
                  let p = Ir.Builder.phi bld b in
                  value_map.(i) <- p;
                  phis := (b, p, args) :: !phis
              | ins -> (
                  match const_of.(i) with
                  | Some c -> value_map.(i) <- Ir.Builder.const bld b c
                  | None -> (
                      match ins with
                      | Ir.Func.Unop (op, a) ->
                          value_map.(i) <- Ir.Builder.unop bld b op (resolve a)
                      | Ir.Func.Binop (op, a, b') ->
                          value_map.(i) <- Ir.Builder.binop bld b op (resolve a) (resolve b')
                      | Ir.Func.Cmp (op, a, b') ->
                          value_map.(i) <- Ir.Builder.cmp bld b op (resolve a) (resolve b')
                      | Ir.Func.Opaque (tag, args) ->
                          value_map.(i) <-
                            Ir.Builder.opaque ~tag bld b (List.map resolve (Array.to_list args))
                      | _ -> ()))))
        (Ir.Func.block f b).Ir.Func.instrs)
    rpo.Analysis.Rpo.order;
  let edge_map = Array.make (Ir.Func.num_edges f) (-1) in
  for b = 0 to nb - 1 do
    let blk = Ir.Func.block f b in
    match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
    | Ir.Func.Jump ->
        edge_map.(blk.Ir.Func.succs.(0)) <-
          Ir.Builder.jump bld b ~dst:(Ir.Func.edge f blk.Ir.Func.succs.(0)).Ir.Func.dst
    | Ir.Func.Branch c ->
        let et, ef =
          Ir.Builder.branch bld b (resolve c)
            ~ift:(Ir.Func.edge f blk.Ir.Func.succs.(0)).Ir.Func.dst
            ~iff:(Ir.Func.edge f blk.Ir.Func.succs.(1)).Ir.Func.dst
        in
        edge_map.(blk.Ir.Func.succs.(0)) <- et;
        edge_map.(blk.Ir.Func.succs.(1)) <- ef
    | Ir.Func.Switch (c, cases) ->
        let case_args =
          Array.to_list (Array.mapi (fun ix k -> (k, (Ir.Func.edge f blk.Ir.Func.succs.(ix)).Ir.Func.dst)) cases)
        in
        let default = (Ir.Func.edge f blk.Ir.Func.succs.(Array.length cases)).Ir.Func.dst in
        let case_edges, default_edge = Ir.Builder.switch bld b (resolve c) ~cases:case_args ~default in
        List.iteri (fun ix e -> edge_map.(blk.Ir.Func.succs.(ix)) <- e) case_edges;
        edge_map.(blk.Ir.Func.succs.(Array.length cases)) <- default_edge
    | Ir.Func.Return v -> Ir.Builder.ret bld b (resolve v)
    | _ -> invalid_arg "Lvn.run: missing terminator"
  done;
  List.iter
    (fun (b, p, args) ->
      let preds = (Ir.Func.block f b).Ir.Func.preds in
      Array.iteri
        (fun ix e -> Ir.Builder.set_phi_arg bld ~phi:p ~edge:edge_map.(e) (resolve args.(ix)))
        preds)
    !phis;
  Ir.Builder.finish bld

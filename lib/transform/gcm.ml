(* Global Code Motion (Click PLDI '95), the transform half of
   lib/schedule: move every movable value to its Placement.best block.

   The plan is just the per-value target vector (best for movable values,
   the current block otherwise); certification is Check.Schedule's job —
   the checker recomputes dominators, the loop forest and the trap-safety
   facts from first principles, so a planner bug surfaces as a pinned
   sched-* diagnostic and Rejected, never as a silent miscompile.

   The rebuild keeps the CFG bit-for-bit (same blocks, edges, terminator
   shapes, φs on their blocks) and only re-homes non-φ values. Within a
   block the layout is dependency order: [force] emits a value's
   value-defining operands (into their own target blocks) before the value
   itself, so an operand that shares the user's destination always lands
   above it. Recursion terminates because every SSA cycle passes through a
   φ, and φs are all emitted up front. *)

type stats = {
  values : int;
  moved : int;
  hoisted : int;
  sunk : int;
  speculation_blocked : int;
}

type plan = {
  placement : Schedule.Placement.t;
  target : Check.Schedule.placement;
}

exception Rejected of { diagnostics : Check.Diagnostic.t list }

let () =
  Printexc.register_printer (function
    | Rejected { diagnostics } ->
        Some
          (Fmt.str "Gcm.Rejected: %d schedule-legality violation(s)%s"
             (List.length diagnostics)
             (match diagnostics with
             | [] -> ""
             | d :: _ -> Fmt.str " (first: %a)" Check.Diagnostic.pp d))
    | _ -> None)

let plan ?obs (f : Ir.Func.t) : plan =
  let placement = Schedule.Placement.compute ?obs f in
  let target = Check.Schedule.identity f in
  for v = 0 to Ir.Func.num_instrs f - 1 do
    if Schedule.Placement.movable placement v then
      target.(v) <- placement.Schedule.Placement.best.(v)
  done;
  { placement; target }

let moves (p : plan) : (Ir.Func.value * int * int) list =
  let f = p.placement.Schedule.Placement.func in
  let out = ref [] in
  for v = Ir.Func.num_instrs f - 1 downto 0 do
    let b = Ir.Func.block_of_instr f v in
    if p.target.(v) <> b then out := (v, b, p.target.(v)) :: !out
  done;
  !out

let stats (p : plan) : stats =
  let pl = p.placement in
  let f = pl.Schedule.Placement.func in
  let s = Schedule.Placement.stats pl in
  let moved = ref 0 and hoisted = ref 0 and sunk = ref 0 in
  for v = 0 to Ir.Func.num_instrs f - 1 do
    if p.target.(v) <> Ir.Func.block_of_instr f v then begin
      incr moved;
      if Schedule.Placement.hoistable pl v then incr hoisted;
      if Schedule.Placement.sinkable pl v then incr sunk
    end
  done;
  {
    values = s.Schedule.Placement.values;
    moved = !moved;
    hoisted = !hoisted;
    sunk = !sunk;
    speculation_blocked = s.Schedule.Placement.speculation_blocked;
  }

let certify (p : plan) : Check.Diagnostic.t list =
  Check.Schedule.run ~placement:p.target p.placement.Schedule.Placement.func

let apply ?obs (p : plan) : Ir.Func.t =
  Obs.span_o obs ~cat:"pass" "gcm.rebuild" @@ fun () ->
  let f = p.placement.Schedule.Placement.func in
  let nb = Ir.Func.num_blocks f in
  let ni = Ir.Func.num_instrs f in
  let bld = Ir.Builder.create ~name:f.Ir.Func.name ~nparams:f.Ir.Func.nparams in
  let block_map = Array.init nb (fun _ -> Ir.Builder.add_block bld) in
  let value_map = Array.make ni (-1) in
  let resolve v =
    if value_map.(v) < 0 then
      invalid_arg (Printf.sprintf "Gcm.apply: v%d used before definition" v);
    value_map.(v)
  in
  (* φs first, on their own (never-moved) blocks, in original order; their
     arguments are wired per incoming edge once the edges exist. *)
  let phi_fixups = ref [] in
  for b = 0 to nb - 1 do
    let blk = Ir.Func.block f b in
    Array.iter
      (fun i ->
        match Ir.Func.instr f i with
        | Ir.Func.Phi args ->
            let p' = Ir.Builder.phi bld block_map.(b) in
            value_map.(i) <- p';
            let wiring =
              Array.to_list blk.Ir.Func.preds
              |> List.mapi (fun ix e -> (e, args.(ix)))
            in
            phi_fixups := (p', wiring) :: !phi_fixups
        | _ -> ())
      blk.Ir.Func.instrs
  done;
  (* Non-φ values: emit into their target blocks, operands first. *)
  let rec force v =
    if value_map.(v) < 0 then begin
      let ins = Ir.Func.instr f v in
      Ir.Func.iter_operands
        (fun o -> if Ir.Func.defines_value (Ir.Func.instr f o) then force o)
        ins;
      let dst = block_map.(p.target.(v)) in
      value_map.(v) <-
        (match ins with
        | Ir.Func.Const c -> Ir.Builder.const bld dst c
        | Ir.Func.Param k -> Ir.Builder.param bld dst k
        | Ir.Func.Unop (op, a) -> Ir.Builder.unop bld dst op (resolve a)
        | Ir.Func.Binop (op, a, b') ->
            Ir.Builder.binop bld dst op (resolve a) (resolve b')
        | Ir.Func.Cmp (op, a, b') ->
            Ir.Builder.cmp bld dst op (resolve a) (resolve b')
        | Ir.Func.Opaque (tag, args) ->
            Ir.Builder.opaque ~tag bld dst (List.map resolve (Array.to_list args))
        | Ir.Func.Phi _ | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _
        | Ir.Func.Return _ ->
            invalid_arg "Gcm.apply: force on a non-value")
    end
  in
  (* Walk destination blocks in RPO, emitting each block's assigned values
     in original-id order; [force] pulls any straggler operand forward.
     Unreachable blocks (absent from RPO) never receive moved values, so a
     final id-order sweep reproduces them as they were. *)
  let assigned = Array.make nb [] in
  for v = ni - 1 downto 0 do
    let ins = Ir.Func.instr f v in
    if Ir.Func.defines_value ins && not (Ir.Func.is_phi ins) then
      assigned.(p.target.(v)) <- v :: assigned.(p.target.(v))
  done;
  let rpo = Analysis.Rpo.compute (Analysis.Graph.of_func f) in
  Array.iter
    (fun b -> List.iter force assigned.(b))
    rpo.Analysis.Rpo.order;
  for v = 0 to ni - 1 do
    let ins = Ir.Func.instr f v in
    if Ir.Func.defines_value ins && not (Ir.Func.is_phi ins) then force v
  done;
  (* Terminators recreate the CFG verbatim; old-edge → new-edge ids feed
     the φ wiring. *)
  let edge_map = Array.make (Ir.Func.num_edges f) (-1) in
  for b = 0 to nb - 1 do
    let nb' = block_map.(b) in
    let blk = Ir.Func.block f b in
    let dst_of e = block_map.((Ir.Func.edge f e).Ir.Func.dst) in
    match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
    | Ir.Func.Jump ->
        let e = blk.Ir.Func.succs.(0) in
        edge_map.(e) <- Ir.Builder.jump bld nb' ~dst:(dst_of e)
    | Ir.Func.Return v -> Ir.Builder.ret bld nb' (resolve v)
    | Ir.Func.Branch c ->
        let et = blk.Ir.Func.succs.(0) and ef = blk.Ir.Func.succs.(1) in
        let net, nef =
          Ir.Builder.branch bld nb' (resolve c) ~ift:(dst_of et) ~iff:(dst_of ef)
        in
        edge_map.(et) <- net;
        edge_map.(ef) <- nef
    | Ir.Func.Switch (c, cases) ->
        let ncases = Array.length cases in
        let case_args =
          Array.to_list (Array.mapi (fun ix k -> (k, dst_of blk.Ir.Func.succs.(ix))) cases)
        in
        let de = blk.Ir.Func.succs.(ncases) in
        let case_edges, new_default =
          Ir.Builder.switch bld nb' (resolve c) ~cases:case_args ~default:(dst_of de)
        in
        List.iteri (fun ix ne -> edge_map.(blk.Ir.Func.succs.(ix)) <- ne) case_edges;
        edge_map.(de) <- new_default
    | _ -> invalid_arg "Gcm.apply: missing terminator"
  done;
  List.iter
    (fun (p', wiring) ->
      List.iter
        (fun (e, a) -> Ir.Builder.set_phi_arg bld ~phi:p' ~edge:edge_map.(e) (resolve a))
        wiring)
    !phi_fixups;
  Ir.Builder.finish bld

let run ?obs (f : Ir.Func.t) : Ir.Func.t * stats =
  Obs.span_o obs ~cat:"pass" "gcm" @@ fun () ->
  let t0 = match obs with Some o -> Obs.clock o | None -> 0.0 in
  let p = plan ?obs f in
  let diagnostics =
    Obs.span_o obs ~cat:"verify" "gcm.certify" (fun () ->
        Check.errors (certify p))
  in
  if diagnostics <> [] then raise (Rejected { diagnostics });
  let s = stats p in
  let f' = if s.moved = 0 then f else apply ?obs p in
  (match obs with
  | None -> ()
  | Some o ->
      Obs.add o "gcm.values" s.values;
      Obs.add o "gcm.moved" s.moved;
      Obs.add o "gcm.hoisted" s.hoisted;
      Obs.add o "gcm.sunk" s.sunk;
      Obs.add o "gcm.speculation_blocked" s.speculation_blocked;
      Obs.observe_seconds o "gcm.transform_ns" (Obs.clock o -. t0));
  (f', s)

(** Consume a GVN result: rebuild the function with unreachable blocks and
    edges removed, decided branches and switches simplified, values
    congruent to constants replaced by those constants, and redundant
    computations replaced by their class leader when the leader's
    definition dominates them. *)

type rewrite = Keep | Use_const of int | Use_value of int

val plan_rewrites : Pgvn.State.t -> Ir.Func.t -> Analysis.Dom.t -> rewrite array
(** The per-value rewrite decision (exposed for inspection and tests). *)

val rebuild : Pgvn.State.t -> Ir.Func.t -> Ir.Func.t
(** Rebuild under the analysis' facts. The result is validated; semantics
    are preserved on every execution. *)

val rebuild_witnessed : Pgvn.State.t -> Ir.Func.t -> Ir.Func.t * Validate.Witness.t list
(** Like {!rebuild}, also returning the audit trail: one witness per
    rewrite decision (constant fold, leader replacement, φ collapse,
    dropped edge or block), in the {e input} function's instruction, edge
    and block ids, ready for {!Validate.Audit.run}. *)

val optimize : ?config:Pgvn.Config.t -> Ir.Func.t -> Ir.Func.t
(** [run] + [rebuild] in one step (default config: {!Pgvn.Config.full}). *)

(** Global Code Motion (Click, PLDI '95): the transform half of
    [lib/schedule]. {!Schedule.Placement} proposes, per SSA value, the best
    legal block (latest block of minimum loop depth on the dominator path
    from the late schedule up to the early schedule); this pass rewrites
    the function so every movable value actually sits there — hoisting
    loop-invariant computations out of their loops and sinking values
    toward their uses — while φs, opaque calls and uncleared faulting ops
    stay pinned to their blocks.

    Certification is two-sided and never trusted to the planner: the
    proposed placement is verified by the independent legality checker
    ({!Check.Schedule.run} with [~placement]) {e before} the rebuild, and
    callers are expected to diff observable behavior across the rebuild
    (the pipeline and [gvnopt --gcm] both do, through Engine 2). A plan
    the checker refutes raises {!Rejected} and rewrites nothing.

    The rebuilt function has the same CFG (blocks, edges, terminators and
    φs in their original shape); only the block assignment and the
    within-block order of non-φ values change. Within a block, values are
    laid out in dependency order (φs first, terminator last, as the IR
    requires). *)

type stats = {
  values : int;  (** reachable value definitions considered *)
  moved : int;  (** values whose block assignment changed *)
  hoisted : int;  (** moved and {!Schedule.Placement.hoistable} *)
  sunk : int;  (** moved and {!Schedule.Placement.sinkable} *)
  speculation_blocked : int;  (** pinned specifically for trap safety *)
}

type plan = {
  placement : Schedule.Placement.t;  (** the analysis the plan came from *)
  target : Check.Schedule.placement;
      (** per-value destination blocks: [best] for movable values, the
          current block for everything else *)
}

exception Rejected of { diagnostics : Check.Diagnostic.t list }
(** The legality checker refuted the plan ([sched-*] Error diagnostics).
    Raised by {!run} before anything is rewritten — a refused plan leaves
    the input function untouched. *)

val plan : ?obs:Obs.t -> Ir.Func.t -> plan
(** Run the placement analysis and gate every value through
    {!Schedule.Placement.movable}. *)

val moves : plan -> (Ir.Func.value * int * int) list
(** The values the plan actually moves, as [(v, from_block, to_block)], in
    value order — the [--gcm=dump] payload. *)

val stats : plan -> stats

val certify : plan -> Check.Diagnostic.t list
(** The independent verdict: {!Check.Schedule.run} [~placement:plan.target]
    on the input function. Empty (of errors) before {!apply} may run. *)

val apply : ?obs:Obs.t -> plan -> Ir.Func.t
(** Rebuild with every value at its target block. Call only on a certified
    plan: an illegal placement surfaces as a builder/validation error, not
    a diagnostic. Emits a [gcm.rebuild] span under [obs]. *)

val run : ?obs:Obs.t -> Ir.Func.t -> Ir.Func.t * stats
(** [plan], {!certify} (raising {!Rejected} on any Error-severity
    diagnostic), then {!apply} — skipping the rebuild entirely when the
    plan moves nothing. Emits a [gcm] span and the [gcm.*] counters
    ([gcm.values], [gcm.moved], [gcm.hoisted], [gcm.sunk],
    [gcm.speculation_blocked]) under [obs]. *)

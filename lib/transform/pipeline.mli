(** The "HLO analog": a multi-round scalar optimization pipeline in which
    GVN is one pass among several — the setting of the paper's Table 1,
    which measures GVN's share of total optimization time.

    The pipeline is an ordered list of {!Pass.t} descriptors run by
    {!run_list}; {!standard_passes} builds the classic lineup (per round:
    CFG cleanup, analyses, LVN, DCE, GVN + rewrite, cleanup; with
    [Options.gcm], one GCM pass after the last round), and {!run_with} is
    the legacy single-shape entry point, now a thin wrapper over
    [run_list opts (standard_passes opts)] — kept behaviorally equivalent
    for one release (pinned by test) for the PR 5-era callers; new callers
    should compose a pass list.

    Every pass instance is an {!Obs} span (category ["pass"]); the
    [timings] list is a view over those spans — there is no second
    stopwatch — and all time accounting matches on the structural
    {!pass_kind}, never on the display name. *)

type pass_kind = Simplify_cfg | Analyses | Lvn | Dce | Gvn | Gcm

val pass_kind_name : pass_kind -> string

type timing = { pass : string; kind : pass_kind; seconds : float }
(** [pass] is the display name ("gvn#2"); [kind] identifies the pass
    structurally — time accounting matches on it, not on the name. *)

val kind_seconds : pass_kind -> timing list -> float
(** Total seconds of the passes of one kind, matching on [kind] only: a
    display name containing "gvn" never counts toward the GVN total. *)

val total_seconds_of : timing list -> float
(** Sum over all passes. *)

type result = {
  func : Ir.Func.t;
  timings : timing list;  (** per-pass wall-clock times, in order *)
  gvn_seconds : float;  (** [kind_seconds Gvn timings] *)
  total_seconds : float;  (** duration of the whole pipeline span *)
  gvn_state : Pgvn.State.t option;  (** state of the last GVN run *)
  gcm_stats : Gcm.stats option;  (** motion counts of the last GCM pass *)
  validation : Validate.Report.t option;
      (** per-pass validation results and overhead, under [Options.validate] *)
  crosschecks : (string * Absint.Crosscheck.report) list;
      (** per-GVN-pass static cross-check reports, under [Options.crosscheck] *)
}

(** How to run the pipeline: one value subsuming the former
    [?config ?rounds ?check ?validate ?crosscheck] keyword arguments, plus
    the observability context. Build from {!Options.default} with the
    [with_*] builders:

    {[
      Pipeline.Options.(default |> with_rounds 1 |> with_check true)
      |> fun opts -> Pipeline.run_with opts f
    ]} *)
module Options : sig
  type t = {
    config : Pgvn.Config.t;
    rounds : int;  (** rounds of {!standard_passes}; ignored by {!run_list} *)
    check : bool;  (** verify invariants after every pass *)
    validate : Validate.mode option;  (** translation-validate every pass *)
    crosscheck : bool;  (** statically cross-check each GVN run *)
    gcm : bool;
        (** append one GCM pass after the last {!standard_passes} round *)
    obs : Obs.t option;
        (** observability context the run's spans and metrics land in; when
            absent the pipeline uses a private one (timings still work) *)
  }

  val default : t
  (** {!Pgvn.Config.full}, 2 rounds, no checking, no validation, no
      cross-checking, no GCM, private observability. *)

  val with_config : Pgvn.Config.t -> t -> t
  val with_rounds : int -> t -> t
  val with_check : bool -> t -> t
  val with_validate : Validate.mode -> t -> t
  val with_crosscheck : bool -> t -> t
  val with_gcm : bool -> t -> t
  val with_obs : Obs.t -> t -> t
end

exception
  Broken_invariant of { pass : string; diagnostics : Check.Diagnostic.t list }
(** Raised under [Options.check] when a pass's output fails the verifier:
    [pass] names the offending pass and round ("lvn#1"; "input" for the
    function as given), [diagnostics] the Error-severity findings. *)

exception
  Validation_failed of { pass : string; diagnostics : Check.Diagnostic.t list }
(** Raised under [Options.validate] when the translation validator refutes
    a pass: a rejected rewrite witness or an observable behavior change,
    attributed to the pass instance ([pass] is e.g. "gvn#1") with
    Error-severity findings carrying the precise location and evidence. *)

exception Crosscheck_failed of { pass : string; report : Absint.Crosscheck.report }
(** Raised under [Options.crosscheck] when the static cross-checker finds a
    GVN claim the interval semantics contradicts. *)

exception
  Certification_failed of { pass : string; diagnostics : Check.Diagnostic.t list }
(** Raised when a pass's own certifier refuses its output, or when GCM's
    planned placement is refuted by {!Check.Schedule} before the rewrite
    ([pass] is e.g. "gcm#1", [diagnostics] the pinned [sched-*] errors). *)

val analysis_pass : Ir.Func.t -> Ir.Func.t
(** Recompute the standard analyses (identity on the function). *)

(** Pass descriptors: what {!run_list} runs. A pass is a named transform
    plus an optional certifier; the runner times it (one Obs span per
    instance), guards it under [Options.check], certifies it, and
    translation-validates it under [Options.validate]. *)
module Pass : sig
  (** Shared pipeline state a transform may read or update: the
      observability context, the GVN configuration, and the result
      accumulators ([gvn_state], [crosschecks], [gcm_stats]). *)
  type ctx = {
    obs : Obs.t;
    config : Pgvn.Config.t;
    crosscheck : bool;
    gvn_state : Pgvn.State.t option ref;
    crosschecks : (string * Absint.Crosscheck.report) list ref;
    gcm_stats : Gcm.stats option ref;
  }

  type t = {
    name : string;  (** display name, e.g. "gvn#2" — spans and attribution *)
    kind : pass_kind;  (** structural identity — time accounting *)
    transform :
      ctx -> name:string -> Ir.Func.t -> Ir.Func.t * Validate.Witness.t list;
        (** the rewrite; witnesses feed the translation validator *)
    certifier :
      (ctx ->
      name:string ->
      before:Ir.Func.t ->
      after:Ir.Func.t ->
      Check.Diagnostic.t list)
      option;
        (** pass-specific certification; any returned diagnostic raises
            {!Certification_failed} *)
  }

  val simplify_cfg : name:string -> t
  val analyses : name:string -> t
  val lvn : name:string -> t
  val dce : name:string -> t

  val gvn : name:string -> t
  (** {!Pgvn.Driver.run} under [ctx.config] + {!Apply.rebuild_witnessed};
      records [ctx.gvn_state]; under [ctx.crosscheck] statically replays
      the run's claims and raises {!Crosscheck_failed} on contradiction. *)

  val gcm : name:string -> t
  (** {!Gcm.run}: plan, certify against {!Check.Schedule} (a refuted plan
      raises {!Certification_failed}), rebuild; records [ctx.gcm_stats].
      Its certifier re-verifies the {e output}'s identity schedule. *)
end

val standard_round : int -> Pass.t list
(** One round of the classic lineup, display names suffixed "#round". *)

val standard_passes : Options.t -> Pass.t list
(** [Options.rounds] rounds of {!standard_round}, plus a final GCM pass
    under [Options.gcm]. *)

val run_list : Options.t -> Pass.t list -> Ir.Func.t -> result
(** Run an ordered pass list. With [Options.check], {!Check.run_all} runs
    on the input and after every pass; the first Error-severity diagnostic
    raises {!Broken_invariant} attributed to the pass that introduced it.
    Each pass's own certifier (if any) then runs on its output — a
    returned diagnostic raises {!Certification_failed}. With
    [Options.validate] every rewriting pass is certified by the
    translation validator ({!Validate.certify}): the GVN pass's witnesses
    are audited against the independent oracle (modes [Witness]/[All]) and
    every pass's observable behavior is diffed through the interpreter
    (modes [Diff]/[All]); a refuted pass raises {!Validation_failed}.
    [Analyses]-kind passes are exempt from validation (identity). With
    [Options.crosscheck] each GVN run's decided branches, predicate
    inferences, φ block predicates and constants are statically replayed
    against interval facts ({!Absint.Crosscheck}) before the rewrite; a
    contradicted claim raises {!Crosscheck_failed}. With [Options.obs] all
    spans, counters and histograms land in the caller's context.
    [Options.rounds] and [Options.gcm] only shape {!standard_passes} — an
    explicit pass list is run exactly as given. *)

val run_with : Options.t -> Ir.Func.t -> result
(** @deprecated The legacy fixed-shape entry point:
    [run_list opts (standard_passes opts)]. Kept behaviorally equivalent
    (pinned by test) for one release; new callers should use {!run_list}
    over an explicit pass list, or {!standard_passes} to start from the
    classic lineup. *)

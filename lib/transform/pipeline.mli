(** The "HLO analog": a multi-round scalar optimization pipeline in which
    GVN is one pass among several — the setting of the paper's Table 1,
    which measures GVN's share of total optimization time. Each round runs
    CFG cleanup, analyses (dominators, postdominators, frontiers, loops,
    def-use, liveness), local value numbering, DCE, GVN + rewrite, and
    cleanup again.

    Every pass instance is an {!Obs} span (category ["pass"]); the
    [timings] list is a view over those spans — there is no second
    stopwatch — and all time accounting matches on the structural
    {!pass_kind}, never on the display name. *)

type pass_kind = Simplify_cfg | Analyses | Lvn | Dce | Gvn

val pass_kind_name : pass_kind -> string

type timing = { pass : string; kind : pass_kind; seconds : float }
(** [pass] is the display name ("gvn#2"); [kind] identifies the pass
    structurally — time accounting matches on it, not on the name. *)

val kind_seconds : pass_kind -> timing list -> float
(** Total seconds of the passes of one kind, matching on [kind] only: a
    display name containing "gvn" never counts toward the GVN total. *)

val total_seconds_of : timing list -> float
(** Sum over all passes. *)

type result = {
  func : Ir.Func.t;
  timings : timing list;  (** per-pass wall-clock times, in order *)
  gvn_seconds : float;  (** [kind_seconds Gvn timings] *)
  total_seconds : float;  (** duration of the whole pipeline span *)
  gvn_state : Pgvn.State.t option;  (** state of the last GVN run *)
  validation : Validate.Report.t option;
      (** per-pass validation results and overhead, under [Options.validate] *)
  crosschecks : (string * Absint.Crosscheck.report) list;
      (** per-GVN-pass static cross-check reports, under [Options.crosscheck] *)
}

(** How to run the pipeline: one value subsuming the former
    [?config ?rounds ?check ?validate ?crosscheck] keyword arguments, plus
    the observability context. Build from {!Options.default} with the
    [with_*] builders:

    {[
      Pipeline.Options.(default |> with_rounds 1 |> with_check true)
      |> fun opts -> Pipeline.run_with opts f
    ]} *)
module Options : sig
  type t = {
    config : Pgvn.Config.t;
    rounds : int;
    check : bool;  (** verify invariants after every pass *)
    validate : Validate.mode option;  (** translation-validate every pass *)
    crosscheck : bool;  (** statically cross-check each GVN run *)
    obs : Obs.t option;
        (** observability context the run's spans and metrics land in; when
            absent the pipeline uses a private one (timings still work) *)
  }

  val default : t
  (** {!Pgvn.Config.full}, 2 rounds, no checking, no validation, no
      cross-checking, private observability. *)

  val with_config : Pgvn.Config.t -> t -> t
  val with_rounds : int -> t -> t
  val with_check : bool -> t -> t
  val with_validate : Validate.mode -> t -> t
  val with_crosscheck : bool -> t -> t
  val with_obs : Obs.t -> t -> t
end

exception
  Broken_invariant of { pass : string; diagnostics : Check.Diagnostic.t list }
(** Raised under [Options.check] when a pass's output fails the verifier:
    [pass] names the offending pass and round ("lvn#1"; "input" for the
    function as given), [diagnostics] the Error-severity findings. *)

exception
  Validation_failed of { pass : string; diagnostics : Check.Diagnostic.t list }
(** Raised under [Options.validate] when the translation validator refutes
    a pass: a rejected rewrite witness or an observable behavior change,
    attributed to the pass instance ([pass] is e.g. "gvn#1") with
    Error-severity findings carrying the precise location and evidence. *)

exception Crosscheck_failed of { pass : string; report : Absint.Crosscheck.report }
(** Raised under [Options.crosscheck] when the static cross-checker finds a
    GVN claim the interval semantics contradicts. *)

val analysis_pass : Ir.Func.t -> Ir.Func.t
(** Recompute the standard analyses (identity on the function). *)

val run_with : Options.t -> Ir.Func.t -> result
(** Run the pipeline under the given {!Options}. With [Options.check],
    {!Check.run_all} runs on the input and after every pass; the first
    Error-severity diagnostic raises {!Broken_invariant} attributed to the
    pass that introduced it. With [Options.validate] every rewriting pass
    is certified by the translation validator ({!Validate.certify}): the
    GVN pass's witnesses are audited against the independent oracle (modes
    [Witness]/[All]) and every pass's observable behavior is diffed through
    the interpreter (modes [Diff]/[All]); a refuted pass raises
    {!Validation_failed}. With [Options.crosscheck] each GVN run's decided
    branches, predicate inferences, φ block predicates and constants are
    statically replayed against interval facts ({!Absint.Crosscheck})
    before the rewrite; a contradicted claim raises {!Crosscheck_failed}.
    With [Options.obs] all spans, counters and histograms of the run land
    in the caller's context (pass spans, [pgvn.*], [validate.*]). *)

(** The "HLO analog": a multi-round scalar optimization pipeline in which
    GVN is one pass among several — the setting of the paper's Table 1,
    which measures GVN's share of total optimization time. Each round runs
    CFG cleanup, analyses (dominators, postdominators, frontiers, loops,
    def-use, liveness), local value numbering, DCE, GVN + rewrite, and
    cleanup again. *)

type pass_kind = Simplify_cfg | Analyses | Lvn | Dce | Gvn

val pass_kind_name : pass_kind -> string

type timing = { pass : string; kind : pass_kind; seconds : float }
(** [pass] is the display name ("gvn#2"); [kind] identifies the pass
    structurally — time accounting matches on it, not on the name. *)

type result = {
  func : Ir.Func.t;
  timings : timing list;  (** per-pass wall-clock times, in order *)
  gvn_seconds : float;  (** total time in the GVN passes *)
  total_seconds : float;
  gvn_state : Pgvn.State.t option;  (** state of the last GVN run *)
  validation : Validate.Report.t option;
      (** per-pass validation results and overhead, under [~validate] *)
  crosschecks : (string * Absint.Crosscheck.report) list;
      (** per-GVN-pass static cross-check reports, under [~crosscheck] *)
}

exception
  Broken_invariant of { pass : string; diagnostics : Check.Diagnostic.t list }
(** Raised under [~check:true] when a pass's output fails the verifier:
    [pass] names the offending pass and round ("lvn#1"; "input" for the
    function as given), [diagnostics] the Error-severity findings. *)

exception
  Validation_failed of { pass : string; diagnostics : Check.Diagnostic.t list }
(** Raised under [~validate] when the translation validator refutes a pass:
    a rejected rewrite witness or an observable behavior change, attributed
    to the pass instance ([pass] is e.g. "gvn#1") with Error-severity
    findings carrying the precise location and evidence. *)

exception Crosscheck_failed of { pass : string; report : Absint.Crosscheck.report }
(** Raised under [~crosscheck:true] when the static cross-checker finds a
    GVN claim the interval semantics contradicts. *)

val analysis_pass : Ir.Func.t -> Ir.Func.t
(** Recompute the standard analyses (identity on the function). *)

val run :
  ?config:Pgvn.Config.t ->
  ?rounds:int ->
  ?check:bool ->
  ?validate:Validate.mode ->
  ?crosscheck:bool ->
  Ir.Func.t ->
  result
(** Default: {!Pgvn.Config.full}, 2 rounds, [check] off, no validation.
    With [~check:true], {!Check.run_all} runs on the input and after every
    pass; the first Error-severity diagnostic raises {!Broken_invariant}
    attributed to the pass that introduced it. With [~validate:mode] every
    rewriting pass is certified by the translation validator
    ({!Validate.certify}): the GVN pass's witnesses are audited against the
    independent oracle (modes [Witness]/[All]) and every pass's observable
    behavior is diffed through the interpreter (modes [Diff]/[All]); a
    refuted pass raises {!Validation_failed}. With [~crosscheck:true] each
    GVN run's decided branches, predicate inferences, φ block predicates
    and constants are statically replayed against interval facts
    ({!Absint.Crosscheck}) before the rewrite; a contradicted claim raises
    {!Crosscheck_failed}. *)

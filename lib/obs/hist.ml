type t = (int, int) Hashtbl.t (* bucket -> count *)

let create () : t = Hashtbl.create 16

let add (t : t) bucket =
  Hashtbl.replace t bucket (1 + Option.value ~default:0 (Hashtbl.find_opt t bucket))

let add_count (t : t) bucket n =
  Hashtbl.replace t bucket (n + Option.value ~default:0 (Hashtbl.find_opt t bucket))

let count (t : t) bucket = Option.value ~default:0 (Hashtbl.find_opt t bucket)
let total (t : t) = Hashtbl.fold (fun _ c acc -> acc + c) t 0

let sorted_entries (t : t) =
  Hashtbl.fold (fun b c acc -> (b, c) :: acc) t []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let fold f (t : t) init = Hashtbl.fold f t init

let merge_into ~dst (src : t) =
  Hashtbl.iter
    (fun b c -> Hashtbl.replace dst b (c + Option.value ~default:0 (Hashtbl.find_opt dst b)))
    src

(* ------------------------------------------------------------------ *)
(* The log-scale latency view.                                         *)

let bucket_of_ns ns =
  if ns <= 1 then 0
  else begin
    let b = ref 0 and v = ref ns in
    while !v > 1 do
      v := !v lsr 1;
      incr b
    done;
    !b
  end

let bucket_hi_ns b = (1 lsl (b + 1)) - 1
let observe_ns t ns = add t (bucket_of_ns ns)

let percentile_ns t q =
  let n = total t in
  if n = 0 then 0
  else begin
    let target = max 1 (int_of_float (ceil (q *. float_of_int n))) in
    let target = min target n in
    let cum = ref 0 and answer = ref 0 in
    (try
       List.iter
         (fun (b, c) ->
           cum := !cum + c;
           if !cum >= target then begin
             answer := bucket_hi_ns b;
             raise Exit
           end)
         (sorted_entries t)
     with Exit -> ());
    !answer
  end

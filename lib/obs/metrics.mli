(** Named counters, gauges and log-scale latency histograms ({!Hist}).
    Metric names are a stable contract (see DESIGN.md §4d): dotted
    lowercase identifiers, `<subsystem>.<what>` — consumers (the bench
    harness, the CLI's [--metrics] dump, CI) key on them. Every update is
    also streamed to the installed {!Sink}.

    A registry is safe under concurrent writers: every operation takes the
    registry's internal mutex, so totals are exact whichever domains bump
    them (sink callbacks run inside that mutex and must not re-enter the
    registry). {!hist} hands back the live histogram — treat it as
    read-only once concurrent writers exist, or use {!snapshot}. *)

type t

val create : ?clock:(unit -> float) -> ?sink:Sink.t -> unit -> t

(** {1 Counters} *)

val add : t -> string -> int -> unit
val incr : t -> string -> unit
val counter : t -> string -> int
(** Current total (0 when never bumped). *)

(** {1 Gauges} *)

val set_gauge : t -> string -> float -> unit
val max_gauge : t -> string -> float -> unit
(** Keep the maximum of the current and the given value. *)

val gauge : t -> string -> float option

(** {1 Latency histograms} *)

val observe_ns : t -> string -> int -> unit
val hist : t -> string -> Hist.t option

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;  (** name-sorted *)
  gauges : (string * float) list;
  hists : (string * (int * int) list) list;  (** (bucket, count), sorted *)
}

val snapshot : t -> snapshot
val merge_into : dst:t -> t -> unit
(** Fold one context's totals into another (counters add, gauges max,
    histogram buckets add) — how per-routine metrics aggregate. *)

val pp : Format.formatter -> t -> unit
(** Stable, name-sorted rendering: one [name value] line per counter and
    gauge, one [name total/p50/p99] line per histogram. *)

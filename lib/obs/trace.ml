type span = {
  s_name : string;
  s_cat : string;
  s_depth : int;
  s_begin : float;
  mutable s_end : float; (* < s_begin while open *)
}

type t = {
  clock : unit -> float;
  epoch : float;
  sink : Sink.t;
  (* event ring, oldest dropped first *)
  mutable ring : Sink.event array;
  mutable head : int; (* index of the oldest event *)
  mutable len : int;
  capacity : int;
  mutable stack : span list;
  mutable n_dropped : int;
  mutable n_spans : int;
}

let no_event = Sink.Count { name = ""; incr = 0; total = 0; ts = 0.0 }

let create ?(capacity = 65536) ?(clock = Unix.gettimeofday) ?(sink = Sink.null) () =
  {
    clock;
    epoch = clock ();
    sink;
    ring = Array.make (min capacity 256) no_event;
    head = 0;
    len = 0;
    capacity;
    stack = [];
    n_dropped = 0;
    n_spans = 0;
  }

let clock t = t.clock ()

let push_ring t e =
  let n = Array.length t.ring in
  if t.len = n && n < t.capacity then begin
    (* grow geometrically up to capacity, unrolling the ring *)
    let bigger = Array.make (min t.capacity (2 * n)) no_event in
    for i = 0 to t.len - 1 do
      bigger.(i) <- t.ring.((t.head + i) mod n)
    done;
    t.ring <- bigger;
    t.head <- 0
  end;
  let n = Array.length t.ring in
  if t.len = n then begin
    (* full at capacity: drop the oldest *)
    t.ring.(t.head) <- e;
    t.head <- (t.head + 1) mod n;
    t.n_dropped <- t.n_dropped + 1
  end
  else begin
    t.ring.((t.head + t.len) mod n) <- e;
    t.len <- t.len + 1
  end

let push t e =
  push_ring t e;
  t.sink.Sink.emit e

let begin_span t ?(cat = "span") name =
  let ts = t.clock () in
  let sp = { s_name = name; s_cat = cat; s_depth = List.length t.stack; s_begin = ts; s_end = neg_infinity } in
  t.stack <- sp :: t.stack;
  push t (Sink.Span_begin { name; cat; depth = sp.s_depth; ts });
  sp

let close_one t sp =
  let ts = t.clock () in
  sp.s_end <- ts;
  t.n_spans <- t.n_spans + 1;
  push t
    (Sink.Span_end
       { name = sp.s_name; cat = sp.s_cat; depth = sp.s_depth; ts; dur = ts -. sp.s_begin })

let end_span t sp =
  if sp.s_end < sp.s_begin then begin
    (* close anything left open inside [sp] first, keeping the stream
       balanced even on misuse *)
    let rec unwind = function
      | [] -> []
      | top :: rest ->
          close_one t top;
          if top == sp then rest else unwind rest
    in
    if List.memq sp t.stack then t.stack <- unwind t.stack
  end

let with_span t ?cat name f =
  let sp = begin_span t ?cat name in
  Fun.protect ~finally:(fun () -> end_span t sp) f

let duration sp = if sp.s_end < sp.s_begin then 0.0 else sp.s_end -. sp.s_begin

let timed t ?cat name f =
  let sp = begin_span t ?cat name in
  let x = Fun.protect ~finally:(fun () -> end_span t sp) f in
  (x, duration sp)

let depth t = List.length t.stack
let balanced t = t.stack = [] && t.n_dropped = 0
let dropped t = t.n_dropped
let spans_recorded t = t.n_spans

let events t =
  List.init t.len (fun i -> t.ring.((t.head + i) mod Array.length t.ring))

(* Append [src]'s recorded events into [dst]'s ring without re-emitting
   them to [dst]'s sink (they already streamed once, from [src]); the
   span/drop tallies carry over so [balanced] stays meaningful on the
   merged trace. [src] must be quiescent — this is the join-time merge of a
   worker's private trace, called after the worker is done with it. *)
let absorb ~dst (src : t) =
  List.iter (push_ring dst) (events src);
  dst.n_spans <- dst.n_spans + src.n_spans;
  dst.n_dropped <- dst.n_dropped + src.n_dropped

(* ------------------------------------------------------------------ *)
(* Chrome trace format.                                                *)

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let pp_chrome ppf t =
  let us ts = (ts -. t.epoch) *. 1e6 in
  let evs =
    List.filter
      (function Sink.Span_begin _ | Sink.Span_end _ -> true | _ -> false)
      (events t)
  in
  Fmt.pf ppf "{@\n\"traceEvents\": [@\n";
  List.iteri
    (fun i e ->
      let comma = if i = List.length evs - 1 then "" else "," in
      match e with
      | Sink.Span_begin { name; cat; ts; _ } ->
          Fmt.pf ppf
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"B\", \"ts\": %.3f, \"pid\": 1, \"tid\": 1}%s@\n"
            (escape name) (escape cat) (us ts) comma
      | Sink.Span_end { name; cat; ts; _ } ->
          Fmt.pf ppf
            "{\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"E\", \"ts\": %.3f, \"pid\": 1, \"tid\": 1}%s@\n"
            (escape name) (escape cat) (us ts) comma
      | _ -> ())
    evs;
  Fmt.pf ppf "],@\n\"displayTimeUnit\": \"ms\",@\n\"otherData\": {\"dropped\": \"%d\"}@\n}@\n"
    t.n_dropped

let write_chrome t path =
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  pp_chrome ppf t;
  Format.pp_print_flush ppf ();
  close_out oc

(** The single event-stream interface of the observability layer: every
    span boundary and metric update produced by {!Trace} and {!Metrics} is
    pushed through a sink, so tests can install a capturing sink and
    consumers (the Chrome-trace writer, the bench harness) never need a
    second instrumentation channel. *)

type event =
  | Span_begin of { name : string; cat : string; depth : int; ts : float }
      (** A span opened: [ts] is the absolute clock reading (seconds),
          [depth] the nesting depth at open (0 = top level). *)
  | Span_end of { name : string; cat : string; depth : int; ts : float; dur : float }
      (** The matching close: [dur] is the span's duration in seconds. *)
  | Count of { name : string; incr : int; total : int; ts : float }
      (** A counter bumped by [incr] to the new [total]. *)
  | Gauge of { name : string; value : float; ts : float }
  | Observe of { name : string; ns : int; ts : float }
      (** A latency sample recorded into a log-scale histogram. *)

type t = { emit : event -> unit }

val null : t
(** Drops everything. *)

val memory : unit -> t * (unit -> event list)
(** A capturing sink and the accessor for what it saw (oldest first). *)

val tee : t -> t -> t
(** Forward every event to both sinks. *)

val event_name : event -> string
val pp_event : Format.formatter -> event -> unit

(** The shared bucket-count histogram core: an [int] bucket key mapped to a
    routine/sample count. Two clients build on it — {!Metrics}'s log-scale
    latency histograms (bucket = ⌊log₂ ns⌋, below) and the paper-figure
    improvement distributions of [Stats.Histogram], which keys buckets by
    the improvement delta directly. *)

type t

val create : unit -> t
val add : t -> int -> unit
(** Bump the count of one bucket. *)

val add_count : t -> int -> int -> unit
(** [add_count t bucket n] bumps one bucket by [n] — how snapshot entries
    replay into another histogram. *)

val count : t -> int -> int
(** The count in one bucket (0 when never bumped). *)

val total : t -> int
val sorted_entries : t -> (int * int) list
(** (bucket, count) pairs, bucket-ascending. *)

val fold : (int -> int -> 'a -> 'a) -> t -> 'a -> 'a
val merge_into : dst:t -> t -> unit

(** {1 The log-scale latency view}

    Latencies are recorded in nanoseconds into power-of-two buckets:
    bucket [b] covers [2^b, 2^(b+1))ns, with everything at or below 1ns in
    bucket 0. Percentiles answer with the covering bucket's inclusive
    upper bound — log-scale precision, constant space. *)

val bucket_of_ns : int -> int
val bucket_hi_ns : int -> int
(** The inclusive upper bound of a bucket: [2^(b+1) - 1]. *)

val observe_ns : t -> int -> unit
val percentile_ns : t -> float -> int
(** [percentile_ns t q] (with [0 <= q <= 1]): the upper bound of the
    smallest bucket such that at least [q] of the samples fall at or below
    it; 0 when the histogram is empty. *)

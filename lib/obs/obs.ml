(* The observability layer's front door: one context bundling a span trace
   and a metrics registry over a shared clock and sink. Zero external
   dependencies; instrumented subsystems take [?obs:Obs.t] and the [_o]
   helpers make absent contexts free. *)

module Sink = Sink
module Hist = Hist
module Trace = Trace
module Metrics = Metrics

type t = { trace : Trace.t; metrics : Metrics.t }

let create ?capacity ?clock ?sink () =
  { trace = Trace.create ?capacity ?clock ?sink (); metrics = Metrics.create ?clock ?sink () }

let clock t = Trace.clock t.trace

(* Trace conveniences. *)
let span t ?cat name f = Trace.with_span t.trace ?cat name f
let timed t ?cat name f = Trace.timed t.trace ?cat name f

(* Metrics conveniences. *)
let add t name n = Metrics.add t.metrics name n
let set_gauge t name v = Metrics.set_gauge t.metrics name v
let max_gauge t name v = Metrics.max_gauge t.metrics name v
let observe_ns t name ns = Metrics.observe_ns t.metrics name ns
let ns_of_seconds s = int_of_float (s *. 1e9)
let observe_seconds t name s = observe_ns t name (ns_of_seconds s)

(* [?obs] threading: instrumentation sites call these with the optional
   context; [None] is a no-op (no closure allocation beyond the call). *)
let span_o obs ?cat name f =
  match obs with None -> f () | Some t -> span t ?cat name f

let add_o obs name n = match obs with None -> () | Some t -> add t name n
let max_gauge_o obs name v = match obs with None -> () | Some t -> max_gauge t name v
let observe_seconds_o obs name s =
  match obs with None -> () | Some t -> observe_seconds t name s

(* Join-time aggregation of a worker's private context: counters add,
   gauges max, histogram buckets add, trace events append. Merging workers
   in input order makes the combined context independent of how the pool
   scheduled them. *)
let merge_into ~dst src =
  Metrics.merge_into ~dst:dst.metrics src.metrics;
  Trace.absorb ~dst:dst.trace src.trace

let write_chrome t path = Trace.write_chrome t.trace path
let pp_metrics ppf t = Metrics.pp ppf t.metrics

(** Nestable spans over a monotonic-by-convention clock, recorded into an
    in-memory ring buffer of {!Sink.event}s (oldest dropped first) and
    optionally streamed to an installed {!Sink}. The ring can be replayed
    as Chrome-trace-format JSON ([chrome://tracing], Perfetto). *)

type span
(** An open (or finished) span handle. *)

type t

val create : ?capacity:int -> ?clock:(unit -> float) -> ?sink:Sink.t -> unit -> t
(** [capacity] bounds the event ring (default 65536 events; one span costs
    two). [clock] reads absolute seconds and must be non-decreasing — the
    default is the process wall clock; tests install a fake. Every event
    is also pushed to [sink] as it happens. *)

val clock : t -> float
(** One reading of the trace's clock. *)

val begin_span : t -> ?cat:string -> string -> span
(** Open a span ([cat] defaults to ["span"]). Spans must be closed in LIFO
    order — [with_span] enforces this structurally. *)

val end_span : t -> span -> unit
(** Close the innermost open span, which must be [span] (out-of-order
    closes close everything nested inside first, keeping the stream
    balanced). Closing an already-closed span is a no-op. *)

val with_span : t -> ?cat:string -> string -> (unit -> 'a) -> 'a
(** [begin_span]/[end_span] around a thunk, exception-safe. *)

val timed : t -> ?cat:string -> string -> (unit -> 'a) -> 'a * float
(** [with_span] that also returns the span's duration in seconds — the
    only stopwatch harness code needs. *)

val duration : span -> float
(** Seconds between begin and end (0 while still open). *)

val depth : t -> int
(** Number of currently open spans. *)

val balanced : t -> bool
(** No span still open, and no event was dropped from the ring: every
    recorded begin has its matching end. *)

val dropped : t -> int
val spans_recorded : t -> int
(** Spans closed so far (independent of ring capacity). *)

val events : t -> Sink.event list
(** The ring's contents, oldest first. *)

val absorb : dst:t -> t -> unit
(** Append a quiescent trace's events (and its span/drop tallies) onto
    [dst] — the join-time merge of a pool worker's private trace. Events
    are not re-emitted to [dst]'s sink; they already streamed from the
    source. Absorb sources in a deterministic (input) order to keep merged
    reports scheduling-independent. *)

(** {1 Chrome trace format} *)

val pp_chrome : Format.formatter -> t -> unit
(** The ring as a Chrome-trace JSON document: one ["B"]/["E"] event per
    span boundary, timestamps in microseconds relative to trace creation. *)

val write_chrome : t -> string -> unit
(** [pp_chrome] to a file. *)

type event =
  | Span_begin of { name : string; cat : string; depth : int; ts : float }
  | Span_end of { name : string; cat : string; depth : int; ts : float; dur : float }
  | Count of { name : string; incr : int; total : int; ts : float }
  | Gauge of { name : string; value : float; ts : float }
  | Observe of { name : string; ns : int; ts : float }

type t = { emit : event -> unit }

let null = { emit = (fun _ -> ()) }

let memory () =
  let log = ref [] in
  ({ emit = (fun e -> log := e :: !log) }, fun () -> List.rev !log)

let tee a b = { emit = (fun e -> a.emit e; b.emit e) }

let event_name = function
  | Span_begin { name; _ }
  | Span_end { name; _ }
  | Count { name; _ }
  | Gauge { name; _ }
  | Observe { name; _ } -> name

let pp_event ppf = function
  | Span_begin { name; cat; depth; _ } -> Fmt.pf ppf "B %s [%s] depth=%d" name cat depth
  | Span_end { name; cat; dur; _ } -> Fmt.pf ppf "E %s [%s] %.6fs" name cat dur
  | Count { name; incr; total; _ } -> Fmt.pf ppf "C %s +%d -> %d" name incr total
  | Gauge { name; value; _ } -> Fmt.pf ppf "G %s = %g" name value
  | Observe { name; ns; _ } -> Fmt.pf ppf "H %s <- %dns" name ns

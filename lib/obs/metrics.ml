(* All registry state sits behind one mutex so the counters are safe under
   concurrent writers (the parallel driver's pool workers share a context
   when they share a sink). The mutex is NOT reentrant: public entry points
   take the lock exactly once and everything below them is an unlocked
   primitive. Sink emission happens inside the lock on purpose — it keeps
   each event's [total] consistent with the stream order. *)

type t = {
  clock : unit -> float;
  sink : Sink.t;
  lock : Mutex.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create ?(clock = Unix.gettimeofday) ?(sink = Sink.null) () =
  {
    clock;
    sink;
    lock = Mutex.create ();
    counters = Hashtbl.create 32;
    gauges = Hashtbl.create 8;
    hists = Hashtbl.create 8;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* unlocked primitives — callers hold [t.lock] *)

let add_u t name n =
  let r =
    match Hashtbl.find_opt t.counters name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.counters name r;
        r
  in
  r := !r + n;
  t.sink.Sink.emit (Sink.Count { name; incr = n; total = !r; ts = t.clock () })

let set_gauge_u t name v =
  (match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v));
  t.sink.Sink.emit (Sink.Gauge { name; value = v; ts = t.clock () })

let max_gauge_u t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> if v > !r then set_gauge_u t name v
  | None -> set_gauge_u t name v

let hist_u t name =
  match Hashtbl.find_opt t.hists name with
  | Some h -> h
  | None ->
      let h = Hist.create () in
      Hashtbl.add t.hists name h;
      h

(* public, locking *)

let add t name n = locked t @@ fun () -> add_u t name n
let incr t name = add t name 1

let counter t name =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v = locked t @@ fun () -> set_gauge_u t name v
let max_gauge t name v = locked t @@ fun () -> max_gauge_u t name v
let gauge t name = locked t @@ fun () -> Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let observe_ns t name ns =
  locked t @@ fun () ->
  Hist.observe_ns (hist_u t name) ns;
  t.sink.Sink.emit (Sink.Observe { name; ns; ts = t.clock () })

let hist t name = locked t @@ fun () -> Hashtbl.find_opt t.hists name

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * (int * int) list) list;
}

let by_name (a, _) (b, _) = compare a b

let snapshot_u (t : t) =
  {
    counters =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [] |> List.sort by_name;
    gauges = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges [] |> List.sort by_name;
    hists =
      Hashtbl.fold (fun k h acc -> (k, Hist.sorted_entries h) :: acc) t.hists []
      |> List.sort by_name;
  }

let snapshot (t : t) = locked t @@ fun () -> snapshot_u t

(* Snapshot the source first, then replay into the destination — never both
   locks at once, so [merge_into] composes in any direction without a lock
   order. *)
let merge_into ~dst (src : t) =
  let s = snapshot src in
  locked dst @@ fun () ->
  List.iter (fun (name, v) -> add_u dst name v) s.counters;
  List.iter (fun (name, v) -> max_gauge_u dst name v) s.gauges;
  List.iter
    (fun (name, entries) ->
      let h = hist_u dst name in
      List.iter (fun (bucket, c) -> Hist.add_count h bucket c) entries)
    s.hists

let pp ppf t =
  (* one locked pass computes everything; rendering happens outside so a
     formatter that blocks can't hold the registry lock *)
  let s, hist_lines =
    locked t @@ fun () ->
    let s = snapshot_u t in
    let lines =
      List.map
        (fun (name, _) ->
          let h = hist_u t name in
          (name, Hist.total h, Hist.percentile_ns h 0.5, Hist.percentile_ns h 0.99))
        s.hists
    in
    (s, lines)
  in
  List.iter (fun (name, v) -> Fmt.pf ppf "%s %d@\n" name v) s.counters;
  List.iter (fun (name, v) -> Fmt.pf ppf "%s %g@\n" name v) s.gauges;
  List.iter
    (fun (name, total, p50, p99) ->
      Fmt.pf ppf "%s total=%d p50<=%dns p99<=%dns@\n" name total p50 p99)
    hist_lines

type t = {
  clock : unit -> float;
  sink : Sink.t;
  counters : (string, int ref) Hashtbl.t;
  gauges : (string, float ref) Hashtbl.t;
  hists : (string, Hist.t) Hashtbl.t;
}

let create ?(clock = Unix.gettimeofday) ?(sink = Sink.null) () =
  { clock; sink; counters = Hashtbl.create 32; gauges = Hashtbl.create 8; hists = Hashtbl.create 8 }

let add t name n =
  let r =
    match Hashtbl.find_opt t.counters name with
    | Some r -> r
    | None ->
        let r = ref 0 in
        Hashtbl.add t.counters name r;
        r
  in
  r := !r + n;
  t.sink.Sink.emit (Sink.Count { name; incr = n; total = !r; ts = t.clock () })

let incr t name = add t name 1
let counter t name = match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let set_gauge t name v =
  (match Hashtbl.find_opt t.gauges name with
  | Some r -> r := v
  | None -> Hashtbl.add t.gauges name (ref v));
  t.sink.Sink.emit (Sink.Gauge { name; value = v; ts = t.clock () })

let max_gauge t name v =
  match Hashtbl.find_opt t.gauges name with
  | Some r -> if v > !r then set_gauge t name v
  | None -> set_gauge t name v

let gauge t name = Option.map ( ! ) (Hashtbl.find_opt t.gauges name)

let observe_ns t name ns =
  let h =
    match Hashtbl.find_opt t.hists name with
    | Some h -> h
    | None ->
        let h = Hist.create () in
        Hashtbl.add t.hists name h;
        h
  in
  Hist.observe_ns h ns;
  t.sink.Sink.emit (Sink.Observe { name; ns; ts = t.clock () })

let hist t name = Hashtbl.find_opt t.hists name

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  hists : (string * (int * int) list) list;
}

let by_name (a, _) (b, _) = compare a b

let snapshot (t : t) =
  {
    counters =
      Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters [] |> List.sort by_name;
    gauges = Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.gauges [] |> List.sort by_name;
    hists =
      Hashtbl.fold (fun k h acc -> (k, Hist.sorted_entries h) :: acc) t.hists []
      |> List.sort by_name;
  }

let merge_into ~dst (src : t) =
  Hashtbl.iter (fun name r -> add dst name !r) src.counters;
  Hashtbl.iter (fun name r -> max_gauge dst name !r) src.gauges;
  Hashtbl.iter
    (fun name h ->
      match Hashtbl.find_opt dst.hists name with
      | Some d -> Hist.merge_into ~dst:d h
      | None ->
          let d = Hist.create () in
          Hashtbl.add dst.hists name d;
          Hist.merge_into ~dst:d h)
    src.hists

let pp ppf t =
  let s = snapshot t in
  List.iter (fun (name, v) -> Fmt.pf ppf "%s %d@\n" name v) s.counters;
  List.iter (fun (name, v) -> Fmt.pf ppf "%s %g@\n" name v) s.gauges;
  List.iter
    (fun (name, _) ->
      let h = Option.get (hist t name) in
      Fmt.pf ppf "%s total=%d p50<=%dns p99<=%dns@\n" name (Hist.total h)
        (Hist.percentile_ns h 0.5) (Hist.percentile_ns h 0.99))
    s.hists

(** SSA well-formedness, as a raise-on-error wrapper over {!Check}: the
    structural (CFG), SSA-dominance and type checkers run; the first
    [Error]-severity diagnostic is rendered and raised. *)

val check : Ir.Func.t -> Ir.Func.t
(** Returns its argument. @raise Failure with a diagnostic on violations. *)

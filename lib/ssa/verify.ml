(* Legacy raise-on-error SSA verification, now a thin wrapper over the
   {!Check} library: run the structural, SSA and type checkers and raise on
   the first Error-severity diagnostic. Callers that want the diagnostics
   themselves should use {!Check.run_all} directly. *)

let check (f : Ir.Func.t) = Check.check_exn f

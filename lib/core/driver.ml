(* The GVN engine (paper Figures 3–7): the sparse touched-worklist driver,
   symbolic evaluation with constant folding / algebraic simplification /
   global reassociation, congruence finding over the TABLE, unreachable-code
   analysis of edges, and predicate & value inference along dominating
   edges. φ-predication (Figure 8) lives in {!Phipred}.

   Expressions are hash-consed {!Hexpr} cells interned in the run's arena
   (State.arena): every structurally distinct expression exists exactly
   once, so TABLE probes hash a precomputed key and compare pointers —
   the probe cost no longer grows with expression depth. *)

open State

(* ------------------------------------------------------------------ *)
(* Dominating-edge walks (Figure 7).                                   *)

type step =
  | Up of int (* no single controlling edge: continue at the idom (-1 = stop) *)
  | Via of int (* the sole reachable incoming edge *)
  | Stop (* practical variant: the controlling edge is a back edge *)

let idom_of st b =
  match st.config.Config.variant with
  | Config.Complete -> Analysis.Inc_dom.idom st.inc_dom b
  | Config.Practical -> st.dom.Analysis.Dom.idom.(b)

let walk_step st b =
  let non_optimistic = st.config.Config.mode <> Config.Optimistic in
  if non_optimistic && has_incoming_back_edge st b then Up (idom_of st b)
  else
    match sole_reachable_in_edge st b with
    | None -> Up (idom_of st b)
    | Some e ->
        if st.config.Config.variant = Config.Practical && st.backward.(e) then Stop
        else Via e

(* Atom congruence, for predicate relatedness: constants by value, values by
   congruence class (a value congruent to a constant matches it too). *)
let atoms_congruent st a b =
  match (Hexpr.node a, Hexpr.node b) with
  | Hexpr.Const x, Hexpr.Const y -> x = y
  | Hexpr.Const x, Hexpr.Value v | Hexpr.Value v, Hexpr.Const x -> (
      match (cls st st.class_of.(v)).leader with
      | Lconst n -> n = x
      | Lundef | Lvalue _ -> false)
  | Hexpr.Value x, Hexpr.Value y -> (
      let cx = st.class_of.(x) and cy = st.class_of.(y) in
      cx = cy
      ||
      match ((cls st cx).leader, (cls st cy).leader) with
      | Lconst nx, Lconst ny -> nx = ny
      | (Lundef | Lvalue _ | Lconst _), _ -> false)
  | _ -> false

let const_atom x = match Hexpr.node x with Hexpr.Const n -> Some n | _ -> None

(* Does the equality predicate of edge [e] rewrite [v]? Canonical equality
   predicates are [Cmp (Eq, x, y)] with rank x < rank y: when [y] is
   congruent to [v], [v] may be replaced by the lower-ranking [x]. *)
let equality_rewrite st e v =
  match st.pred_edge.(e) with
  | Some p -> (
      match Hexpr.node p with
      | Hexpr.Cmp (Ir.Types.Eq, x, y) -> (
          match Hexpr.node y with
          | Hexpr.Value w when st.class_of.(w) = st.class_of.(v) -> Some x
          | _ -> None)
      | _ -> None)
  | None -> None

(* Figure 7, Infer value at block: walk dominating edges upward from [b0],
   repeatedly rewriting [v] through equality predicates; each successful
   rewrite restarts the walk, stopping at the edge that induced the
   previous one. *)
let infer_value_at_block st b0 atom =
  if not st.config.Config.value_inference then atom
  else
    match Hexpr.node atom with
    | Hexpr.Const _ -> atom
    (* §3: no equality test mentions any member of this value's class, so
       no dominating edge predicate can possibly rewrite it. *)
    | Hexpr.Value v0 when (cls st st.class_of.(v0)).eq_operands = 0 -> atom
    | Hexpr.Value v0 ->
        let v = ref v0 in
        let found_const = ref None in
        let last_block = ref (-1) in
        let restart = ref true in
        while !restart do
          restart := false;
          let b = ref b0 in
          let continue_walk = ref (b0 <> !last_block && b0 >= 0) in
          while !continue_walk do
            st.stats.Run_stats.value_inference_visits <-
              st.stats.Run_stats.value_inference_visits + 1;
            (match walk_step st !b with
            | Stop -> continue_walk := false
            | Up next -> b := next
            | Via e -> (
                match equality_rewrite st e !v with
                | Some x -> (
                    match Hexpr.node x with
                    | Hexpr.Value xv ->
                        v := xv;
                        last_block := !b;
                        restart := true;
                        continue_walk := false
                    | Hexpr.Const _ ->
                        (* Inferred constant: nothing ranks lower; finish. *)
                        found_const := Some x;
                        continue_walk := false
                    | _ -> b := (Ir.Func.edge st.f e).Ir.Func.src)
                | None -> b := (Ir.Func.edge st.f e).Ir.Func.src));
            if !continue_walk && (!b < 0 || !b = !last_block) then continue_walk := false
          done
        done;
        (match !found_const with
        | Some c -> c
        | None -> (
            match leader_atom st !v with Some a -> a | None -> Hexpr.value st.arena !v))
    | _ -> atom

(* Figure 7, Infer value at edge: used for φ arguments, which are "used at
   the edge which carries them". *)
let infer_value_at_edge st e atom =
  if not st.config.Config.value_inference then atom
  else
    match Hexpr.node atom with
    | Hexpr.Value v -> (
        match equality_rewrite st e v with
        | Some x -> (
            match Hexpr.node x with
            | Hexpr.Const _ -> x
            | Hexpr.Value w -> (
                match leader_atom st w with Some a -> a | None -> x)
            | _ -> infer_value_at_block st (Ir.Func.edge st.f e).Ir.Func.src atom)
        | None -> infer_value_at_block st (Ir.Func.edge st.f e).Ir.Func.src atom)
    | _ -> atom

(* Figure 7, Infer value of predicate: walk dominating edges; when one
   carries a predicate related to [p], the truth of [p] follows. *)
(* §3 filter for predicate inference: a query can only be decided when a
   fact relates congruent operands or a congruent value against a constant;
   both require some query operand to be a constant (directly or via its
   leader) or to share a class with a comparison operand. *)
let predicate_query_matchable st p =
  let matchable x =
    match Hexpr.node x with
    | Hexpr.Const _ -> true
    | Hexpr.Value v -> (
        let c = cls st st.class_of.(v) in
        c.cmp_operands > 0 || match c.leader with Lconst _ -> true | Lundef | Lvalue _ -> false)
    | _ -> false
  in
  match Hexpr.node p with
  | Hexpr.Cmp (_, a, b) -> matchable a || matchable b
  | _ -> false

(* The implication-closure term of a query/fact atom: constants by value,
   values by congruence class (so class-congruent operands unify exactly as
   [atoms_congruent] would); a class led by a constant is that constant. *)
let closure_term st x =
  match Hexpr.node x with
  | Hexpr.Const k -> Some (Pred.Atom.Const k)
  | Hexpr.Value v -> (
      match (cls st st.class_of.(v)).leader with
      | Lconst n -> Some (Pred.Atom.Const n)
      | Lundef | Lvalue _ -> Some (Pred.Atom.Term st.class_of.(v)))
  | _ -> None

(* Extension to Figure 7 (config [pred_closure]): when no *single*
   dominating fact decides the query, ask the {!Pred.Closure} decision
   procedure over the *conjunction* of every fact the walk saw. The walk
   below collects two kinds of facts: edge predicates [Infer.decide]
   already failed on one at a time ([tried]), and facts the single-fact
   walk cannot even express — a switch default edge carries no predicate
   but excludes every case ([untried]). A fallback is worth attempting only
   when facts could combine (two or more) or when some fact was never
   tried singly. *)
let closure_fallback st ~qop ~qa ~qb ~facts ~untried ~mentions ~record =
  let n_facts = List.length facts in
  (* Occurrence prefilter (in the spirit of the §3 filters): a non-constant
     query term the facts never mention cannot be constrained — the walk
     tracked [mentions] as it collected, so undecidable queries cost
     nothing here. *)
  if mentions && (n_facts >= 2 || (untried && n_facts >= 1)) then begin
    match (closure_term st qa, closure_term st qb) with
    | Some ta, Some tb ->
        let atoms =
          List.filter_map
            (fun (fop, fa, fb) ->
              match (closure_term st fa, closure_term st fb) with
              | Some a, Some b -> Some (Pred.Atom.make fop a b)
              | _ -> None)
            facts
        in
        if atoms <> [] then begin
          st.stats.Run_stats.pred_closure_queries <-
            st.stats.Run_stats.pred_closure_queries + 1;
          let cl = Pred.Closure.create () in
          List.iter (Pred.Closure.assume cl) atoms;
          if Pred.Closure.contradictory cl then
            st.stats.Run_stats.pred_contradictions <-
              st.stats.Run_stats.pred_contradictions + 1;
          match Pred.Closure.decide cl qop ta tb with
          | Pred.Closure.True ->
              record true;
              Some (Hexpr.const st.arena 1)
          | Pred.Closure.False ->
              record false;
              Some (Hexpr.const st.arena 0)
          | Pred.Closure.Unknown -> None
        end
        else None
    | _ -> None
  end
  else None

let infer_predicate st b0 p =
  if not (st.config.Config.predicate_inference && predicate_query_matchable st p) then p
  else begin
    let qop, qa, qb =
      match Hexpr.node p with
      | Hexpr.Cmp (op, a, b) -> (op, a, b)
      | _ -> assert false (* matchable queries are comparisons *)
    in
    let same = atoms_congruent st in
    let result = ref p in
    let b = ref b0 in
    let continue_walk = ref true in
    (* Dominating facts collected for the multi-fact fallback (only when
       the fallback is enabled, keeping the default path allocation-free).
       Collecting is pointless unless both query operands are closure
       terms — a constant or a value — so compound queries skip it too,
       keeping the hot walk lean on the programs that dominate run time. *)
    let termable x =
      match Hexpr.node x with Hexpr.Const _ | Hexpr.Value _ -> true | _ -> false
    in
    let collect = st.config.Config.pred_closure && termable qa && termable qb in
    let facts = ref [] in
    let untried = ref false in
    (* Occurrence tracking for the fallback's prefilter: a query term is
       "mentioned" when some collected fact constrains it (constants are
       always constrained — they connect through the closure's zero
       node). *)
    let mention_a = ref (collect && const_atom qa <> None) in
    let mention_b = ref (collect && const_atom qb <> None) in
    let collect_default_edge e =
      (* A switch default edge carries no predicate expression, but
         excludes every case: scrutinee ≠ case, for each case. Collected
         only when the scrutinee is congruent to a query operand: a
         case-exclusion fact can reach the query terms in the closure in
         one hop or not at all (its other endpoint is a constant), and
         switch-heavy routines produce piles of them otherwise. *)
      match st.switch_default.(e) with
      | Some (c, cases) -> (
          match leader_atom st c with
          | Some scrut ->
              let rel_a = same scrut qa and rel_b = same scrut qb in
              if rel_a || rel_b then begin
                Array.iter
                  (fun k ->
                    facts := (Ir.Types.Ne, scrut, Hexpr.const st.arena k) :: !facts)
                  cases;
                untried := true;
                if rel_a then mention_a := true;
                if rel_b then mention_b := true
              end
          | None -> ())
      | None -> ()
    in
    while !continue_walk && !b >= 0 do
      st.stats.Run_stats.predicate_inference_visits <-
        st.stats.Run_stats.predicate_inference_visits + 1;
      match walk_step st !b with
      | Stop -> continue_walk := false
      | Up next -> b := next
      | Via e -> (
          let origin = (Ir.Func.edge st.f e).Ir.Func.src in
          match st.pred_edge.(e) with
          | None ->
              if collect then collect_default_edge e;
              b := origin
          | Some fact -> (
              match Hexpr.node fact with
              | Hexpr.Cmp (fop, fa, fb) -> (
                  (* Record decided claims (when both query operands are
                     atoms) for the static cross-checker's replay. *)
                  let record verdict =
                    let atom x =
                      match Hexpr.node x with
                      | Hexpr.Const k -> Some (Run_stats.Aconst k)
                      | Hexpr.Value v -> Some (Run_stats.Avalue v)
                      | _ -> None
                    in
                    match (atom qa, atom qb) with
                    | Some a, Some b ->
                        Run_stats.record_inference st.stats ~block:b0 ~edge:e
                          ~op:qop ~a ~b ~verdict
                    | _ -> ()
                  in
                  match Infer.decide ~same ~const:const_atom ~fop ~fa ~fb ~qop ~qa ~qb with
                  | Infer.True ->
                      record true;
                      result := Hexpr.const st.arena 1;
                      continue_walk := false
                  | Infer.False ->
                      record false;
                      result := Hexpr.const st.arena 0;
                      continue_walk := false
                  | Infer.Unknown ->
                      if collect then begin
                        facts := (fop, fa, fb) :: !facts;
                        if not !mention_a then mention_a := same fa qa || same fb qa;
                        if not !mention_b then mention_b := same fa qb || same fb qb
                      end;
                      b := origin)
              | _ -> b := origin))
    done;
    (if collect && Hexpr.equal !result p then
       let record verdict =
         let atom x =
           match Hexpr.node x with
           | Hexpr.Const k -> Some (Run_stats.Aconst k)
           | Hexpr.Value v -> Some (Run_stats.Avalue v)
           | _ -> None
         in
         match (atom qa, atom qb) with
         | Some a, Some b ->
             Run_stats.record_pred_inference st.stats ~block:b0 ~op:qop ~a ~b ~verdict
         | _ -> ()
       in
       match
         closure_fallback st ~qop ~qa ~qb ~facts:!facts ~untried:!untried
           ~mentions:(!mention_a && !mention_b) ~record
       with
       | Some decided -> result := decided
       | None -> ());
    !result
  end

(* The leader atom of an operand with value inference applied (what the
   paper's symbolic evaluation substitutes for each operand). [None] while
   the operand is still ⊥ (INITIAL). *)
let eval_operand st b v =
  match leader_atom st v with
  | None -> None
  | Some atom -> Some (infer_value_at_block st b atom)

(* ------------------------------------------------------------------ *)
(* Symbolic evaluation of instructions (Figure 4).                     *)

let rank_fn st v = st.rank.(v)

(* Terms of an atom, forward-propagating the defining expression of its
   congruence class when global reassociation is on. *)
let atom_terms ~propagate st atom =
  match Hexpr.node atom with
  | Hexpr.Value v when propagate -> (
      match (cls st st.class_of.(v)).expr with
      | Some e -> (
          match Hexpr.node e with
          | Hexpr.Sum ts -> ts
          | _ -> Hexpr.terms_of_atom atom)
      | None -> Hexpr.terms_of_atom atom)
  | _ -> Hexpr.terms_of_atom atom

let eval_arith st (kind : [ `Add | `Sub | `Mul | `Neg ]) atoms =
  let cfg = st.config in
  let rank = rank_fn st in
  if cfg.Config.algebraic_simplification then begin
    let build ~propagate =
      let ts = List.map (atom_terms ~propagate st) atoms in
      match (kind, ts) with
      | `Add, [ a; b ] -> Expr.merge_terms rank a b
      | `Sub, [ a; b ] -> Expr.merge_terms rank a (Expr.negate_terms b)
      | `Mul, [ a; b ] -> Expr.mul_terms rank a b
      | `Neg, [ a ] -> Expr.negate_terms a
      | _ -> invalid_arg "eval_arith"
    in
    let propagate = cfg.Config.reassociation in
    let ts = build ~propagate in
    let ts =
      if propagate && Expr.size_of_terms ts > cfg.Config.propagation_limit then
        build ~propagate:false
      else ts
    in
    Hexpr.of_terms st.arena ts
  end
  else
    let op : Expr.opsym =
      match kind with
      | `Add -> Expr.Ubop Ir.Types.Add
      | `Sub -> Expr.Ubop Ir.Types.Sub
      | `Mul -> Expr.Ubop Ir.Types.Mul
      | `Neg -> Expr.Uuop Ir.Types.Neg
    in
    match (cfg.Config.constant_folding, op, List.map Hexpr.node atoms) with
    | true, Expr.Ubop bop, [ Hexpr.Const a; Hexpr.Const b ]
      when not (Ir.Types.binop_can_trap bop a b) ->
        Hexpr.const st.arena (Ir.Types.eval_binop bop a b)
    | true, Expr.Uuop uop, [ Hexpr.Const a ] ->
        Hexpr.const st.arena (Ir.Types.eval_unop uop a)
    | _ -> Hexpr.op_ st.arena op atoms (* syntactic: no commutative reordering *)

let eval_nonassoc_binop st op x y =
  let cfg = st.config in
  if cfg.Config.algebraic_simplification then Rewrite.binop_atoms st op x y
  else
    match (cfg.Config.constant_folding, Hexpr.node x, Hexpr.node y) with
    | true, Hexpr.Const a, Hexpr.Const b when not (Ir.Types.binop_can_trap op a b) ->
        Hexpr.const st.arena (Ir.Types.eval_binop op a b)
    | _ -> Hexpr.op_ st.arena (Expr.Ubop op) [ x; y ] (* syntactic *)

let eval_unop st op x =
  let cfg = st.config in
  if cfg.Config.algebraic_simplification then Rewrite.unop_atom st op x
  else
    match (cfg.Config.constant_folding, Hexpr.node x) with
    | true, Hexpr.Const a -> Hexpr.const st.arena (Ir.Types.eval_unop op a)
    | _ -> Hexpr.op_ st.arena (Expr.Uuop op) [ x ] (* syntactic *)

let eval_cmp st op x y =
  match (Hexpr.node x, Hexpr.node y) with
  | Hexpr.Const a, Hexpr.Const b when st.config.Config.constant_folding ->
      Hexpr.const st.arena (Ir.Types.eval_cmp op a b)
  | _ ->
      if st.config.Config.algebraic_simplification then
        Hexpr.cmp_atoms st.arena (rank_fn st) op x y
      else Hexpr.cmp_ st.arena op x y

(* ------------------------------------------------------------------ *)
(* §6 extension (off by default): distribute operations over φ-expressions,
   φ(x1, x2) op φ(y1, y2) → φ(x1 op y1, x2 op y2), re-looking each combined
   argument up in the TABLE so the result matches an existing value's
   expression. Captures the Rüthing–Knoop–Steffen congruences (Figure 14). *)

let phi_expr_of_atom st atom =
  match Hexpr.node atom with
  | Hexpr.Value v -> (
      match (cls st st.class_of.(v)).expr with
      | Some e -> (
          match Hexpr.node e with
          | Hexpr.Phi (k, args) -> Some (k, args)
          | _ -> None)
      | None -> None)
  | _ -> None

(* TABLE probes and expression-to-atom reduction live in {!Rewrite}, which
   shares them with the rule matcher's deep subject. *)
let table_find = Rewrite.table_find
let atom_of_expr = Rewrite.atom_of_expr

let try_phi_distribution st combine x y =
  if not st.config.Config.phi_distribution then None
  else
    let build key pairs =
      let rec atoms acc = function
        | [] -> Some (List.rev acc)
        | (a, b) :: rest -> (
            match atom_of_expr st (combine a b) with
            | Some atom -> atoms (atom :: acc) rest
            | None -> None)
      in
      match atoms [] pairs with
      | None -> None
      | Some (first :: rest) when List.for_all (Hexpr.equal first) rest -> Some first
      | Some args -> Some (Hexpr.phi st.arena key args)
    in
    match (phi_expr_of_atom st x, phi_expr_of_atom st y) with
    | Some (kx, xs), Some (ky, ys)
      when Hexpr.equal_key kx ky && List.length xs = List.length ys ->
        build kx (List.combine xs ys)
    | Some (kx, xs), None when Hexpr.is_atom y -> build kx (List.map (fun a -> (a, y)) xs)
    | None, Some (ky, ys) when Hexpr.is_atom x -> build ky (List.map (fun b -> (x, b)) ys)
    | _ -> None

(* φ evaluation: drop arguments on unreachable edges and ⊥ arguments
   (optimistically top), reduce when all remaining arguments agree, and key
   the expression by the block predicate (φ-predication) or the block.
   Canonical-order arguments are gathered through the per-edge scratch
   array [st.phi_scratch] (all [None] between evaluations), replacing the
   former quadratic association-list lookups. *)
let eval_phi st b v (args : int array) =
  let blk = Ir.Func.block st.f b in
  let preds = blk.Ir.Func.preds in
  if st.config.Config.mode <> Config.Optimistic && has_incoming_back_edge st b then
    (* Balanced / pessimistic: a cyclic φ is a unique value (§2.6). *)
    Some (Hexpr.self st.arena v)
  else begin
    let pairs = ref [] in
    for ix = Array.length preds - 1 downto 0 do
      let e = preds.(ix) in
      if st.reach_edge.(e) then
        match leader_atom st args.(ix) with
        | None -> () (* ⊥: optimistically ignored *)
        | Some atom -> pairs := (e, infer_value_at_edge st e atom) :: !pairs
    done;
    match !pairs with
    | [] -> None
    | (_, first) :: rest when List.for_all (fun (_, a) -> Hexpr.equal first a) rest ->
        Some first
    | pairs ->
        List.iter (fun (e, a) -> st.phi_scratch.(e) <- Some a) pairs;
        let use_predicate =
          st.config.Config.phi_predication
          && st.pred_block.(b) <> None
          && (* the canonical order must cover exactly the live arguments *)
          Array.length st.canonical.(b) = List.length pairs
          && Array.for_all (fun e -> st.phi_scratch.(e) <> None) st.canonical.(b)
        in
        let result =
          if use_predicate then
            match st.pred_block.(b) with
            | Some p ->
                let atoms =
                  Array.to_list
                    (Array.map (fun e -> Option.get st.phi_scratch.(e)) st.canonical.(b))
                in
                Some (Hexpr.phi st.arena (Hexpr.Kpred p) atoms)
            | None -> assert false
          else Some (Hexpr.phi st.arena (Hexpr.Kblock b) (List.map snd pairs))
        in
        List.iter (fun (e, _) -> st.phi_scratch.(e) <- None) pairs;
        result
  end

(* Figure 4, Perform symbolic evaluation: the expression an instruction
   computes, over current class leaders, after folding / simplification /
   reassociation and predicate inference. [None] = ⊥ (no information yet:
   some operand is still optimistically undetermined). *)
let symbolic_eval st b v (ins : Ir.Func.instr) : Hexpr.t option =
  let operand w = eval_operand st b w in
  let result =
    match ins with
    | Ir.Func.Const n -> Some (Hexpr.const st.arena n)
    | Ir.Func.Param _ -> Some (Hexpr.self st.arena v)
    | Ir.Func.Phi args -> eval_phi st b v args
    | Ir.Func.Unop (Ir.Types.Neg, a) -> (
        match operand a with Some x -> Some (eval_arith st `Neg [ x ]) | None -> None)
    | Ir.Func.Unop (op, a) -> (
        match operand a with Some x -> Some (eval_unop st op x) | None -> None)
    | Ir.Func.Binop (op, a, b') -> (
        match (operand a, operand b') with
        | Some x, Some y -> (
            let plain u w =
              match op with
              | Ir.Types.Add -> eval_arith st `Add [ u; w ]
              | Ir.Types.Sub -> eval_arith st `Sub [ u; w ]
              | Ir.Types.Mul -> eval_arith st `Mul [ u; w ]
              | op -> eval_nonassoc_binop st op u w
            in
            match try_phi_distribution st plain x y with
            | Some e -> Some e
            | None -> Some (plain x y))
        | _ -> None)
    | Ir.Func.Cmp (op, a, b') -> (
        match (operand a, operand b') with
        | Some x, Some y -> Some (eval_cmp st op x y)
        | _ -> None)
    | Ir.Func.Opaque (tag, args) ->
        let atoms = Array.map (fun w -> operand w) args in
        if Array.exists (fun a -> a = None) atoms then None
        else Some (Hexpr.opq st.arena tag (Array.to_list (Array.map Option.get atoms)))
    | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ | Ir.Func.Return _ -> assert false
  in
  let result =
    match result with
    | Some p when Hexpr.is_predicate p && st.config.Config.predicate_inference ->
        Some (infer_predicate st b p)
    | r -> r
  in
  (* §2.9 SCCP emulation: non-constant expressions collapse to the value
     itself — only constants and reachability are tracked. *)
  match result with
  | None -> result
  | Some e -> (
      match Hexpr.node e with
      | Hexpr.Const _ -> result
      | _ -> if st.config.Config.sccp_only then Some (Hexpr.self st.arena v) else result)

(* ------------------------------------------------------------------ *)
(* Congruence finding (Figure 4, lines 31–58).                         *)

let class_for_expr st v (e : Hexpr.t) =
  match Hexpr.node e with
  | Hexpr.Value x -> cls st st.class_of.(x)
  | Hexpr.Const n -> (
      match table_find st e with
      | Some cid -> cls st cid
      | None ->
          let c = new_class st (Lconst n) (Some e) in
          Util.Hashcons.set_slot e c.cid;
          c.in_table <- true;
          c)
  | _ -> (
      match table_find st e with
      | Some cid -> cls st cid
      | None ->
          let c = new_class st (Lvalue v) (Some e) in
          Util.Hashcons.set_slot e c.cid;
          c.in_table <- true;
          c)

let congruence_finding st v (e : Hexpr.t option) : bool =
  match e with
  | None -> false (* still ⊥: leave in INITIAL *)
  | Some e ->
      let c0 = cls st st.class_of.(v) in
      let c = class_for_expr st v e in
      if c.cid <> c0.cid || st.changed.(v) then begin
        st.changed.(v) <- false;
        if c.cid <> c0.cid then begin
          st.stats.Run_stats.class_moves <- st.stats.Run_stats.class_moves + 1;
          unlink st v;
          link st v c;
          if c0.size = 0 then begin
            (match c0.expr with
            | Some ex when c0.in_table ->
                if Util.Hashcons.slot ex = c0.cid then Util.Hashcons.set_slot ex (-1)
            | _ -> ());
            c0.in_table <- false;
            c0.leader <- Lundef;
            c0.expr <- None
          end
          else if c0.leader = Lvalue v then begin
            (* The departing value led its class: elect a new leader, touch
               the members' definitions, and mark them CHANGED so the new
               leader propagates to their consumers. *)
            c0.leader <- Lvalue c0.head;
            iter_members st c0 (fun m ->
                touch_instr st m;
                st.changed.(m) <- true)
          end
        end;
        touch_users st v;
        true
      end
      else false

(* ------------------------------------------------------------------ *)
(* Edges (Figure 5).                                                   *)

(* The canonical predicate expression of a conditional edge, re-evaluated
   over current leaders. [None] when unknown or constant (§ Figure 5 line
   18 nullifies constant predicates). *)
let edge_predicate st b cond_atom ~is_true =
  match cond_atom with
  | None -> None
  | Some a -> (
      match Hexpr.node a with
      | Hexpr.Const _ -> None
      | Hexpr.Value v -> (
          let base =
            let stored_cmp =
              match (cls st st.class_of.(v)).expr with
              | Some e -> (
                  match Hexpr.node e with
                  | Hexpr.Cmp (op, x, y) -> Some (op, x, y)
                  | _ -> None)
              | None -> None
            in
            match stored_cmp with
            | Some (op, x, y) ->
                (* Refresh the stored comparison's operands. *)
                let refresh u =
                  match Hexpr.node u with
                  | Hexpr.Value w -> (
                      match eval_operand st b w with Some a -> a | None -> u)
                  | _ -> u
                in
                Hexpr.cmp_atoms st.arena (rank_fn st) op (refresh x) (refresh y)
            | None ->
                Hexpr.cmp_atoms st.arena (rank_fn st) Ir.Types.Ne
                  (Hexpr.const st.arena 0) a
          in
          match Hexpr.node base with
          | Hexpr.Cmp _ -> (
              let p = if is_true then base else Hexpr.negate_pred st.arena base in
              let p = infer_predicate st b p in
              match Hexpr.node p with Hexpr.Const _ -> None | _ -> Some p)
          | _ -> None (* folded to a constant *))
      | _ -> None)

let expr_opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some x, Some y -> Hexpr.equal x y
  | None, Some _ | Some _, None -> false

let handle_edge st e ~reachable ~pred =
  let { Ir.Func.src; dst; _ } = Ir.Func.edge st.f e in
  let any_change = ref false in
  if reachable && not st.reach_edge.(e) then begin
    any_change := true;
    st.reach_edge.(e) <- true;
    let affected =
      if st.config.Config.variant = Config.Complete then
        Analysis.Inc_dom.insert_edge st.inc_dom ~src ~dst
      else []
    in
    if not st.reach_block.(dst) then begin
      st.reach_block.(dst) <- true;
      touch_block st dst;
      touch_block_instrs st dst
    end
    else touch_block_phis st dst;
    propagate_change_in_edge st e;
    (* Complete variant: blocks whose dominator set shrank need retouching
       too — they are the affected vertices and their subtrees. *)
    List.iter
      (fun a ->
        for b = 0 to Ir.Func.num_blocks st.f - 1 do
          if Analysis.Inc_dom.dominates st.inc_dom a b then touch_block_instrs st b
        done)
      affected
  end;
  if st.reach_edge.(e) && not (expr_opt_equal st.pred_edge.(e) pred) then begin
    any_change := true;
    st.pred_edge.(e) <- pred;
    propagate_change_in_edge st e
  end;
  !any_change

let process_outgoing_edges st b : bool =
  let blk = Ir.Func.block st.f b in
  match Ir.Func.instr st.f (Ir.Func.terminator_of_block st.f b) with
  | Ir.Func.Jump -> handle_edge st blk.Ir.Func.succs.(0) ~reachable:true ~pred:None
  | Ir.Func.Return _ -> false
  | Ir.Func.Switch (c, cases) ->
      (* §3 extension: each case edge carries the equality predicate
         scrutinee = case (so value inference applies inside the case); the
         default edge has no explicit predicate. When the scrutinee is
         congruent to a constant only the matching edge is reachable. *)
      let atom = eval_operand st b c in
      let ncases = Array.length cases in
      let reachable_ix =
        if not st.config.Config.unreachable_code then fun _ -> true
        else
          match atom with
          | None -> fun _ -> false
          | Some a -> (
              match Hexpr.node a with
              | Hexpr.Const k ->
                  let matched = ref ncases in
                  Array.iteri (fun i case -> if case = k then matched := i) cases;
                  let m = !matched in
                  fun ix -> ix = m
              | _ -> fun _ -> true)
      in
      let pred_for ix =
        if ix >= ncases then None (* default *)
        else
          match atom with
          | Some a when (match Hexpr.node a with Hexpr.Value _ -> true | _ -> false) -> (
              let p =
                Hexpr.cmp_atoms st.arena (rank_fn st) Ir.Types.Eq
                  (Hexpr.const st.arena cases.(ix))
                  a
              in
              let p = infer_predicate st b p in
              match Hexpr.node p with Hexpr.Const _ -> None | _ -> Some p)
          | _ -> None
      in
      let changed = ref false in
      Array.iteri
        (fun ix e ->
          if handle_edge st e ~reachable:(reachable_ix ix) ~pred:(pred_for ix) then
            changed := true)
        blk.Ir.Func.succs;
      !changed
  | Ir.Func.Branch c ->
      let atom = eval_operand st b c in
      let t_reach, f_reach =
        if not st.config.Config.unreachable_code then (true, true)
        else
          match atom with
          | None -> (false, false) (* ⊥ condition: neither side known reachable *)
          | Some a -> (
              match Hexpr.node a with
              | Hexpr.Const k -> (k <> 0, k = 0)
              | _ -> (true, true))
      in
      let pt = edge_predicate st b atom ~is_true:true in
      let pf = edge_predicate st b atom ~is_true:false in
      let c1 = handle_edge st blk.Ir.Func.succs.(0) ~reachable:t_reach ~pred:pt in
      let c2 = handle_edge st blk.Ir.Func.succs.(1) ~reachable:f_reach ~pred:pf in
      c1 || c2
  | _ -> assert false

(* ------------------------------------------------------------------ *)
(* The main loop (Figure 3).                                           *)

let mark_everything_reachable st =
  Array.iteri (fun b _ -> st.reach_block.(b) <- true) st.reach_block;
  (* The complete variant's reachable dominator tree needs edges inserted
     source-first; RPO block order guarantees that. *)
  Array.iter
    (fun b ->
      Array.iter
        (fun e ->
          if not st.reach_edge.(e) then begin
            st.reach_edge.(e) <- true;
            if st.config.Config.variant = Config.Complete then
              let { Ir.Func.src; dst; _ } = Ir.Func.edge st.f e in
              ignore (Analysis.Inc_dom.insert_edge st.inc_dom ~src ~dst)
          end)
        (Ir.Func.block st.f b).Ir.Func.succs)
    st.rpo.Analysis.Rpo.order

let touch_everything st =
  for b = 0 to Ir.Func.num_blocks st.f - 1 do
    touch_block st b;
    touch_block_instrs st b
  done

exception Diverged of string

(* The rule engine's fire counters are global (shared across every client
   of the catalog); a run snapshots them on entry and publishes the deltas
   as [rules.fired.<name>], so per-run and per-benchmark attribution works
   without threading a counter context through the matcher. *)
type rules_snapshot = { snap_fired : (string * int) list; snap_folds : int }

let rules_snapshot () =
  let eng = Rules.Engine.shared () in
  { snap_fired = Rules.Engine.counts eng; snap_folds = Rules.Engine.const_folds eng }

let record_rules obs (before : rules_snapshot) =
  let now = rules_snapshot () in
  List.iter2
    (fun (name, b) (name', a) ->
      assert (String.equal name name');
      if a - b > 0 then Obs.add obs ("rules.fired." ^ name) (a - b))
    before.snap_fired now.snap_fired;
  if now.snap_folds - before.snap_folds > 0 then
    Obs.add obs "rules.fired.const-fold" (now.snap_folds - before.snap_folds)

(* Publish the run's engine counters through the observability layer, under
   the stable metric names of DESIGN.md §4d. *)
let record_metrics obs (st : State.t) =
  let s = st.stats in
  Obs.add obs "pgvn.runs" 1;
  Obs.add obs "pgvn.passes" s.Run_stats.passes;
  Obs.add obs "pgvn.instrs" s.Run_stats.instrs_processed;
  Obs.add obs "pgvn.worklist.instr_touches" s.Run_stats.instr_touches;
  Obs.add obs "pgvn.worklist.block_touches" s.Run_stats.block_touches;
  Obs.add obs "pgvn.vi_visits" s.Run_stats.value_inference_visits;
  Obs.add obs "pgvn.pi_visits" s.Run_stats.predicate_inference_visits;
  Obs.add obs "pgvn.pp_visits" s.Run_stats.phi_predication_visits;
  Obs.add obs "pgvn.class_moves" s.Run_stats.class_moves;
  Obs.add obs "pgvn.table_probes" s.Run_stats.table_probes;
  Obs.add obs "pgvn.table_hits" s.Run_stats.table_hits;
  if s.Run_stats.pred_closure_queries > 0 then begin
    Obs.add obs "pred.queries" s.Run_stats.pred_closure_queries;
    Obs.add obs "pred.decided.true" s.Run_stats.pred_decided_true;
    Obs.add obs "pred.decided.false" s.Run_stats.pred_decided_false;
    Obs.add obs "pred.contradictions" s.Run_stats.pred_contradictions
  end;
  let a = Hexpr.stats st.arena in
  Obs.add obs "pgvn.arena.live" a.Util.Hashcons.live;
  Obs.add obs "pgvn.arena.interned" a.Util.Hashcons.interned;
  Obs.add obs "pgvn.arena.hits" a.Util.Hashcons.hits;
  Obs.max_gauge obs "pgvn.arena.max_chain" (float_of_int a.Util.Hashcons.max_chain)

let run ?obs (config : Config.t) (f : Ir.Func.t) : State.t =
  let run_span = match obs with Some o -> Some (Obs.Trace.begin_span o.Obs.trace ~cat:"gvn" "pgvn.run") | None -> None in
  let rules_before = rules_snapshot () in
  let st = State.create config f in
  let everything_reachable =
    config.Config.mode = Config.Pessimistic || not config.Config.unreachable_code
  in
  if everything_reachable then begin
    mark_everything_reachable st;
    touch_everything st
  end
  else begin
    st.reach_block.(Ir.Func.entry) <- true;
    touch_block_instrs st Ir.Func.entry
  end;
  let max_passes = 40 + (4 * Ir.Func.num_blocks f) in
  let continue_loop = ref true in
  Fun.protect ~finally:(fun () ->
      match (obs, run_span) with
      | Some o, Some sp ->
          Obs.Trace.end_span o.Obs.trace sp;
          Obs.observe_seconds o "pgvn.run_ns" (Obs.Trace.duration sp);
          record_metrics o st;
          record_rules o rules_before
      | _ -> ())
  @@ fun () ->
  while !continue_loop && st.touched_count > 0 do
    st.stats.Run_stats.passes <- st.stats.Run_stats.passes + 1;
    if st.stats.Run_stats.passes > max_passes then
      raise (Diverged (Printf.sprintf "gvn: %s did not converge" f.Ir.Func.name));
    let sweep_span =
      match obs with
      | Some o -> Some (Obs.Trace.begin_span o.Obs.trace ~cat:"gvn" "pgvn.sweep")
      | None -> None
    in
    let pass_changed = ref false in
    let order = st.rpo.Analysis.Rpo.order in
    let nb = Array.length order in
    let bi = ref 0 in
    while !bi < nb && st.touched_count > 0 do
      let b = order.(!bi) in
      incr bi;
      if st.touched_block.(b) then begin
        untouch_block st b;
        if st.reach_block.(b) && config.Config.phi_predication then
          if Phipred.compute_block_predicate st b then begin
            pass_changed := true;
            touch_block_phis st b
          end
      end;
      let instrs = (Ir.Func.block st.f b).Ir.Func.instrs in
      Array.iter
        (fun i ->
          if st.touched_instr.(i) then begin
            untouch_instr st i;
            if st.reach_block.(b) then begin
              st.stats.Run_stats.instrs_processed <- st.stats.Run_stats.instrs_processed + 1;
              let ins = Ir.Func.instr st.f i in
              if Ir.Func.defines_value ins then begin
                let e = symbolic_eval st b i ins in
                if congruence_finding st i e then pass_changed := true
              end
              else
                match ins with
                | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ ->
                    if process_outgoing_edges st b then pass_changed := true
                | _ -> ()
            end
          end)
        instrs
    done;
    (match (obs, sweep_span) with
    | Some o, Some sp -> Obs.Trace.end_span o.Obs.trace sp
    | _ -> ());
    if config.Config.mode <> Config.Optimistic then continue_loop := false
    else if (not config.Config.sparse) && !pass_changed then
      (* Dense formulation: a refined assumption is reapplied to the whole
         routine, not just the affected instructions. *)
      touch_everything st
  done;
  st

(* ------------------------------------------------------------------ *)
(* Result queries and the per-routine strength summary (§5).           *)

(* A value is unreachable when it is still in INITIAL at the end. *)
let value_unreachable st v = st.class_of.(v) = st.initial

let value_constant st v =
  match (cls st st.class_of.(v)).leader with Lconst n -> Some n | Lundef | Lvalue _ -> None

let congruent st v w = st.class_of.(v) = st.class_of.(w) && st.class_of.(v) <> st.initial

(* A conditional terminator the run decided (at least partially): the block
   is reachable yet one or more of its out-edges is not. Reconstructed from
   the final state rather than logged during the run — reachability only
   grows during the optimistic fixpoint, so a pruning decision is exactly a
   still-unreachable out-edge of a reachable block once the run settles. *)
type decided_branch = {
  db_block : int;
  db_cond : Ir.Func.value;  (** the branch/switch condition or scrutinee *)
  db_const : int option;  (** the condition class's constant leader, if any *)
  db_pruned : int list;  (** out-edge ids left unreachable *)
}

let decided_branches (st : State.t) : decided_branch list =
  let f = st.f in
  let out = ref [] in
  for b = Ir.Func.num_blocks f - 1 downto 0 do
    if st.reach_block.(b) then
      match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
      | Ir.Func.Branch c | Ir.Func.Switch (c, _) ->
          let pruned =
            Array.to_list (Ir.Func.block f b).Ir.Func.succs
            |> List.filter (fun e -> not st.reach_edge.(e))
          in
          if pruned <> [] then
            out :=
              { db_block = b; db_cond = c; db_const = value_constant st c; db_pruned = pruned }
              :: !out
      | _ -> ()
  done;
  !out

type summary = {
  values : int;
  unreachable_values : int;
  constant_values : int; (* unreachable values counted as constants too (§5) *)
  congruence_classes : int;
  reachable_blocks : int;
  reachable_edges : int;
  passes : int;
}

let summarize (st : State.t) =
  let ni = Ir.Func.num_instrs st.f in
  let values = ref 0 and unreach = ref 0 and consts = ref 0 in
  let class_seen = Hashtbl.create 64 in
  for v = 0 to ni - 1 do
    if Ir.Func.defines_value (Ir.Func.instr st.f v) then begin
      incr values;
      if value_unreachable st v then begin
        incr unreach;
        incr consts
      end
      else begin
        (match (cls st st.class_of.(v)).leader with
        | Lconst _ -> incr consts
        | Lundef | Lvalue _ -> ());
        Hashtbl.replace class_seen st.class_of.(v) ()
      end
    end
  done;
  {
    values = !values;
    unreachable_values = !unreach;
    constant_values = !consts;
    congruence_classes = Hashtbl.length class_seen;
    reachable_blocks = Array.fold_left (fun n r -> if r then n + 1 else n) 0 st.reach_block;
    reachable_edges = Array.fold_left (fun n r -> if r then n + 1 else n) 0 st.reach_edge;
    passes = st.stats.Run_stats.passes;
  }

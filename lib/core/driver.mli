(** The GVN engine (Figures 3–7): the sparse touched-worklist driver,
    symbolic evaluation (constant folding, algebraic simplification, global
    reassociation), congruence finding over the TABLE, unreachable-code
    analysis of edges, and predicate & value inference along dominating
    edges. φ-predication lives in {!Phipred}. *)

exception Diverged of string
(** Raised when a run exceeds the pass safety cap (indicates an engine bug;
    never expected on well-formed input). *)

val run : ?obs:Obs.t -> Config.t -> Ir.Func.t -> State.t
(** Run global value numbering to its fixed point and return the final
    state. The input function is not modified; use [Transform.Apply] to
    rewrite with the results. With [~obs], the run is wrapped in a
    [pgvn.run] span with one [pgvn.sweep] span per worklist sweep, its
    latency is observed into the [pgvn.run_ns] histogram, and the engine's
    counters (passes, worklist touches, TABLE probes/hits, inference
    visits, arena occupancy) are published under the [pgvn.*] metric names
    documented in DESIGN.md §4d. *)

(** {1 Result queries} *)

val value_unreachable : State.t -> Ir.Func.value -> bool
(** Still in INITIAL: no execution computes this value. *)

val value_constant : State.t -> Ir.Func.value -> int option
(** The constant the value is congruent to, if any. *)

val congruent : State.t -> Ir.Func.value -> Ir.Func.value -> bool
(** Same (non-INITIAL) congruence class: guaranteed equal on every
    execution that computes both. *)

type decided_branch = {
  db_block : int;
  db_cond : Ir.Func.value;  (** the branch/switch condition or scrutinee *)
  db_const : int option;  (** the condition class's constant leader, if any *)
  db_pruned : int list;  (** out-edge ids left unreachable *)
}
(** A conditional terminator of a reachable block with at least one
    unreachable out-edge: a branch the run (partially) decided. *)

val decided_branches : State.t -> decided_branch list
(** Every decided branch of the final state, reconstructed post-hoc (sound
    because reachability only grows during the run). Input to
    [Absint.Crosscheck]. *)

type summary = {
  values : int;
  unreachable_values : int;
  constant_values : int;
      (** unreachable values count as constants too (the §5 correction) *)
  congruence_classes : int;
  reachable_blocks : int;
  reachable_edges : int;
  passes : int;
}

val summarize : State.t -> summary
(** The per-routine strength metrics of the paper's figures. *)

(** {1 Engine steps, exposed for instrumentation and the test suite} *)

val eval_operand : State.t -> int -> Ir.Func.value -> Hexpr.t option
(** The leader atom of an operand with value inference applied at the given
    block (Figure 7); [None] while the operand is ⊥. *)

val infer_predicate : State.t -> int -> Hexpr.t -> Hexpr.t
(** Figure 7's [Infer value of predicate]. *)

val symbolic_eval : State.t -> int -> Ir.Func.value -> Ir.Func.instr -> Hexpr.t option
(** Figure 4's [Perform symbolic evaluation]; [None] = ⊥. *)

val congruence_finding : State.t -> Ir.Func.value -> Hexpr.t option -> bool
(** Figure 4's [Perform congruence finding]; true when anything changed. *)

val process_outgoing_edges : State.t -> int -> bool
(** Figure 5; true when reachability or an edge predicate changed. *)

val mark_everything_reachable : State.t -> unit
(** Pessimistic / no-UCE initialization. *)

val touch_everything : State.t -> unit
(** Dense-formulation re-application. *)

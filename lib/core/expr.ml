(* Symbolic expressions for global value numbering (paper §2.2–2.3).

   An expression is the canonical form of what an instruction computes, with
   operands replaced by congruence-class leaders. The TABLE hash table is
   keyed on this type, so congruent instructions must evaluate to equal
   expressions.

   Arithmetic ([+], [-], [*], unary [-]) is kept in canonical
   sum-of-products form ({!Sum}): an ordered list of terms, each an integer
   coefficient times an ordered list of value factors; the constant part is
   the term with no factors. Ordering follows value ranks (constants rank 0,
   values by definition order in RPO), and "values and products that differ
   only in sign are treated as equal when ordering" — the sign lives in the
   coefficient.

   Non-reassociable operations keep their operands atomic ({!Op}).
   Comparisons are canonicalized by operand rank, flipping the operator when
   the operands swap. φ-expressions carry a key: their block, or — under
   φ-predication — the block's control predicate, an or-of-ands over edge
   predicates in canonical path order. *)

type t =
  | Const of int
  | Value of int (* a congruence-class leader *)
  | Sum of term list
  | Op of opsym * t list (* non-reassociable op over atomic operands *)
  | Cmp of Ir.Types.cmp * t * t
  | Phi of key * t list
  | Opq of int * t list (* uninterpreted function of tag and atoms *)
  | Self of int (* an expression unique to value [v] *)
  | Pand of t list (* predicate conjunction, in canonical path order *)
  | Por of t list (* predicate disjunction, in canonical path order *)

and term = { coeff : int; factors : int list (* value ids, rank-sorted *) }
and opsym = Ubop of Ir.Types.binop | Uuop of Ir.Types.unop
and key = Kblock of int | Kpred of t

(* ------------------------------------------------------------------ *)
(* Structural equality and hashing (TABLE keys).                       *)

let rec equal a b =
  match (a, b) with
  | Const x, Const y -> x = y
  | Value x, Value y -> x = y
  | Self x, Self y -> x = y
  | Sum ts, Sum us -> equal_terms ts us
  | Op (o, xs), Op (p, ys) -> o = p && equal_list xs ys
  | Cmp (o, x1, y1), Cmp (p, x2, y2) -> o = p && equal x1 x2 && equal y1 y2
  | Phi (k1, xs), Phi (k2, ys) -> equal_key k1 k2 && equal_list xs ys
  | Opq (t1, xs), Opq (t2, ys) -> t1 = t2 && equal_list xs ys
  | Pand xs, Pand ys | Por xs, Por ys -> equal_list xs ys
  | ( ( Const _ | Value _ | Self _ | Sum _ | Op _ | Cmp _ | Phi _ | Opq _ | Pand _
      | Por _ ),
      _ ) ->
      false

and equal_list xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs, y :: ys -> equal x y && equal_list xs ys
  | [], _ :: _ | _ :: _, [] -> false

and equal_terms ts us =
  match (ts, us) with
  | [], [] -> true
  | t :: ts, u :: us -> t.coeff = u.coeff && t.factors = u.factors && equal_terms ts us
  | [], _ :: _ | _ :: _, [] -> false

and equal_key k1 k2 =
  match (k1, k2) with
  | Kblock a, Kblock b -> a = b
  | Kpred p, Kpred q -> equal p q
  | (Kblock _ | Kpred _), _ -> false

let hash_combine h x = (h * 1000003) lxor x

let rec hash e =
  match e with
  | Const n -> hash_combine 1 (Hashtbl.hash n)
  | Value v -> hash_combine 2 v
  | Self v -> hash_combine 3 v
  | Sum ts ->
      List.fold_left
        (fun h t ->
          hash_combine
            (List.fold_left (fun h f -> hash_combine h f) (hash_combine h t.coeff) t.factors)
            17)
        4 ts
  | Op (o, xs) -> hash_list (hash_combine 5 (Hashtbl.hash o)) xs
  | Cmp (o, x, y) -> hash_combine (hash_combine (hash_combine 6 (Hashtbl.hash o)) (hash x)) (hash y)
  | Phi (k, xs) ->
      let hk = match k with Kblock b -> hash_combine 7 b | Kpred p -> hash_combine 8 (hash p) in
      hash_list hk xs
  | Opq (t, xs) -> hash_list (hash_combine 9 t) xs
  | Pand xs -> hash_list 10 xs
  | Por xs -> hash_list 11 xs

and hash_list h xs = List.fold_left (fun h x -> hash_combine h (hash x)) h xs

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

(* ------------------------------------------------------------------ *)
(* Sum-of-products algebra. [rank] orders values; see paper §2.2.      *)

let compare_factors rank fs gs =
  let key v = (rank v, v) in
  let rec go fs gs =
    match (fs, gs) with
    | [], [] -> 0
    | [], _ :: _ -> -1
    | _ :: _, [] -> 1
    | f :: fs, g :: gs ->
        let c = compare (key f) (key g) in
        if c <> 0 then c else go fs gs
  in
  go fs gs

(* Merge two sorted term lists, combining coefficients of equal products and
   dropping zero terms. *)
let merge_terms rank ts us =
  let rec go ts us =
    match (ts, us) with
    | [], rest | rest, [] -> rest
    | t :: ts', u :: us' ->
        let c = compare_factors rank t.factors u.factors in
        if c < 0 then t :: go ts' us
        else if c > 0 then u :: go ts us'
        else
          let coeff = t.coeff + u.coeff in
          if coeff = 0 then go ts' us' else { coeff; factors = t.factors } :: go ts' us'
  in
  go ts us

let negate_terms ts = List.map (fun t -> { t with coeff = -t.coeff }) ts

(* Number of atomic operands a term list represents; the forward-propagation
   limit (§2.2 footnote 4) bounds this. *)
let size_of_terms ts =
  List.fold_left (fun n t -> n + 1 + List.length t.factors) 0 ts

(* A sum reduced back to the simplest expression form. *)
let of_terms ts =
  match ts with
  | [] -> Const 0
  | [ { coeff; factors = [] } ] -> Const coeff
  | [ { coeff = 1; factors = [ v ] } ] -> Value v
  | ts -> Sum ts

(* Terms of an atomic expression. *)
let terms_of_atom = function
  | Const 0 -> []
  | Const n -> [ { coeff = n; factors = [] } ]
  | Value v -> [ { coeff = 1; factors = [ v ] } ]
  | _ -> invalid_arg "Expr.terms_of_atom"

(* Terms of an arbitrary expression when it has a sum form, else [None]. *)
let terms_opt = function
  | Const 0 -> Some []
  | Const n -> Some [ { coeff = n; factors = [] } ]
  | Value v -> Some [ { coeff = 1; factors = [ v ] } ]
  | Sum ts -> Some ts
  | Op _ | Cmp _ | Phi _ | Opq _ | Self _ | Pand _ | Por _ -> None

let sort_factors rank fs = List.sort (fun a b -> compare (rank a, a) (rank b, b)) fs

(* Product of two term lists (full distribution). *)
let mul_terms rank ts us =
  List.fold_left
    (fun acc t ->
      let row =
        List.map
          (fun u -> { coeff = t.coeff * u.coeff; factors = sort_factors rank (t.factors @ u.factors) })
          us
      in
      (* Row terms may collide after sorting; merge them in one by one. *)
      List.fold_left (fun acc tm -> merge_terms rank acc [ tm ]) acc row)
    [] ts

(* ------------------------------------------------------------------ *)
(* Comparison canonicalization.                                        *)

let is_atom = function Const _ | Value _ -> true | _ -> false

let atom_rank rank = function
  | Const _ -> (0, min_int)
  | Value v -> (rank v, v)
  | _ -> invalid_arg "Expr.atom_rank"

(* Canonical comparison between atoms: folds constants, resolves identical
   operands, and orders operands by increasing rank (flipping the operator
   when they swap, §2.8). *)
let cmp_atoms rank op x y =
  match (x, y) with
  | Const a, Const b -> Const (Ir.Types.eval_cmp op a b)
  | _ ->
      if equal x y then
        Const (match op with Eq | Le | Ge -> 1 | Ne | Lt | Gt -> 0)
      else if atom_rank rank x <= atom_rank rank y then Cmp (op, x, y)
      else Cmp (Ir.Types.swap_cmp op, y, x)

let negate_pred = function
  | Cmp (op, x, y) -> Cmp (Ir.Types.negate_cmp op, x, y)
  | Const n -> Const (if n = 0 then 1 else 0)
  | e -> Op (Uuop Ir.Types.Lnot, [ e ])

let is_predicate = function Cmp _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Algebraic simplification of non-reassociable operations over atoms. *)

let op_commutative = function
  | Ubop op -> Ir.Types.binop_commutative op
  | Uuop _ -> false

let make_op rank sym args =
  let args =
    if op_commutative sym then
      List.sort (fun a b -> compare (atom_rank rank a) (atom_rank rank b)) args
    else args
  in
  Op (sym, args)

(* Simplify [x op y] for the non-reassociable binary operators by
   consulting the shared rule table (Rules.Catalog) through a shallow
   subject: constants are visible to the matcher, everything else is an
   opaque atom, and compound right-hand sides are declined — so only
   depth-1 identities fire here, exactly the shape the structural algebra
   can express. Constant folding is the matcher's (it refuses folds that
   could hide a run-time trap: congruence implies run-time equality on
   executed paths, so [6 / 0] stays opaque). *)
let rules_subject rank : t Rules.Engine.subject =
  {
    Rules.Engine.view =
      (fun x -> match x with Const n -> Rules.Engine.Sconst n | _ -> Rules.Engine.Satom);
    equal;
    bconst = (fun n -> Const n);
    bunop =
      (fun op x ->
        match x with
        | Const a -> Some (Const (Ir.Types.eval_unop op a))
        | _ -> if is_atom x then Some (make_op rank (Uuop op) [ x ]) else None);
    bbinop =
      (fun op x y ->
        match (x, y) with
        | Const a, Const b -> Option.map (fun c -> Const c) (Ir.Types.fold_binop op a b)
        | _ ->
            if is_atom x && is_atom y then Some (make_op rank (Ubop op) [ x; y ])
            else None);
    reduce = (fun x -> if is_atom x then Some x else None);
  }

let binop_atoms rank (op : Ir.Types.binop) x y =
  match Rules.Engine.rewrite_binop (Rules.Engine.shared ()) (rules_subject rank) op x y with
  | Some r -> r
  | None -> make_op rank (Ubop op) [ x; y ]

let unop_atom rank (op : Ir.Types.unop) x =
  match (op, x) with
  (* [!(a ≷ b)] stays a comparison — predicates must remain canonical, and
     comparisons are outside the rule DSL's term language. *)
  | Ir.Types.Lnot, Cmp (c, a, b) -> Cmp (Ir.Types.negate_cmp c, a, b)
  | _ -> (
      match Rules.Engine.rewrite_unop (Rules.Engine.shared ()) (rules_subject rank) op x with
      | Some r -> r
      | None -> make_op rank (Uuop op) [ x ])

(* ------------------------------------------------------------------ *)
(* Printing (debug / dumps).                                           *)

let rec pp ppf = function
  | Const n -> Fmt.int ppf n
  | Value v -> Fmt.pf ppf "v%d" v
  | Self v -> Fmt.pf ppf "self(v%d)" v
  | Sum ts ->
      let pp_term ppf t =
        match t.factors with
        | [] -> Fmt.int ppf t.coeff
        | fs ->
            if t.coeff <> 1 then Fmt.pf ppf "%d*" t.coeff;
            Fmt.(list ~sep:(any "*") (fun ppf v -> pf ppf "v%d" v)) ppf fs
      in
      Fmt.pf ppf "(%a)" Fmt.(list ~sep:(any " + ") pp_term) ts
  | Op (Ubop op, [ a; b ]) -> Fmt.pf ppf "(%a %s %a)" pp a (Ir.Types.string_of_binop op) pp b
  | Op (Uuop op, [ a ]) -> Fmt.pf ppf "%s%a" (Ir.Types.string_of_unop op) pp a
  | Op (_, args) -> Fmt.pf ppf "op(%a)" Fmt.(list ~sep:(any ", ") pp) args
  | Cmp (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp a (Ir.Types.string_of_cmp op) pp b
  | Phi (Kblock b, args) -> Fmt.pf ppf "phi[b%d](%a)" b Fmt.(list ~sep:(any ", ") pp) args
  | Phi (Kpred p, args) -> Fmt.pf ppf "phi[%a](%a)" pp p Fmt.(list ~sep:(any ", ") pp) args
  | Opq (tag, args) -> Fmt.pf ppf "opaque#%d(%a)" tag Fmt.(list ~sep:(any ", ") pp) args
  | Pand xs -> Fmt.pf ppf "(and %a)" Fmt.(list ~sep:sp pp) xs
  | Por xs -> Fmt.pf ppf "(or %a)" Fmt.(list ~sep:sp pp) xs

let to_string e = Fmt.str "%a" pp e

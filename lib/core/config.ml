(* Run-time configuration of the GVN engine: the value-numbering mode, the
   per-analysis switches (§1.3: "it allows the other analyses to be
   selectively disabled"), the sparse/dense switch (§5, Table 2) and the
   practical/complete variant switch (§2).

   The [emulate_*] presets implement §2.9: with suitable analyses disabled
   the engine computes the same result as the named prior algorithms. *)

type mode =
  | Optimistic (* start: only entry reachable, all values congruent *)
  | Balanced (* reachability optimistic, congruence pessimistic; 1 pass *)
  | Pessimistic (* everything reachable, values congruent to self; 1 pass *)

type variant =
  | Practical (* static dominator tree + RPO-downstream touching *)
  | Complete (* incremental reachable dominator tree *)

type t = {
  mode : mode;
  variant : variant;
  sparse : bool; (* false = brute-force retouching of the whole routine *)
  constant_folding : bool;
  algebraic_simplification : bool;
  rules : bool;
      (* consult the declarative rule catalog (lib/rules) during algebraic
         simplification; off restricts simplification to constant folding
         and commutative canonicalization *)
  unreachable_code : bool; (* conditional reachability of edges *)
  reassociation : bool; (* global reassociation / forward propagation *)
  predicate_inference : bool;
  value_inference : bool;
  phi_predication : bool;
  pred_closure : bool;
      (* extension: when the single-fact predicate inference of §2.7 fails,
         re-ask the query against the *conjunction* of all dominating-edge
         facts through the lib/pred implication closure (congruence +
         difference-bound constraints). Strictly stronger — it runs only as
         a fallback — but off by default: the paper decides from one
         related predicate at a time. *)
  sccp_only : bool; (* replace non-constant expressions by Self (§2.9) *)
  propagation_limit : int; (* max operand count before propagation cancels *)
  phi_distribution : bool;
      (* extension (§6): incorporate φ(x1,x2) op φ(y1,y2) →
         φ(x1 op y1, x2 op y2) into reassociation, capturing the
         Rüthing–Knoop–Steffen congruences of Figure 14. Off by default:
         the paper leaves its practicality open. *)
}

let full =
  {
    mode = Optimistic;
    variant = Practical;
    sparse = true;
    constant_folding = true;
    algebraic_simplification = true;
    rules = true;
    unreachable_code = true;
    reassociation = true;
    predicate_inference = true;
    value_inference = true;
    phi_predication = true;
    pred_closure = false;
    sccp_only = false;
    propagation_limit = 16;
    phi_distribution = false;
  }

(* The full algorithm plus the §6 op-of-φ distribution extension. *)
let full_extended = { full with phi_distribution = true }

let balanced = { full with mode = Balanced }
let pessimistic = { full with mode = Pessimistic }

(* Table 2's "basic" configuration: global reassociation, predicate
   inference, value inference and φ-predication disabled. *)
let basic =
  {
    full with
    reassociation = false;
    predicate_inference = false;
    value_inference = false;
    phi_predication = false;
  }

let dense = { full with sparse = false }

(* §2.9 presets. *)

(* Alpern–Wegman–Zadeck / Simpson RPO / Simpson SCC: optimistic value
   numbering only. *)
let emulate_awz =
  {
    basic with
    constant_folding = false;
    algebraic_simplification = false;
    unreachable_code = false;
  }

(* Click's strongest algorithm: optimistic value numbering + constant
   folding + algebraic simplification + unreachable code elimination. *)
let emulate_click = basic

(* Wegman–Zadeck sparse conditional constant propagation, as §2.9 defines
   the emulation (on top of the Click feature set, so algebraic
   simplification stays on). *)
let emulate_sccp = { basic with sccp_only = true }

(* Bit-exact Wegman–Zadeck: constant folding and unreachable-code analysis
   only. Matches the independent [Baselines.Sccp] implementation exactly;
   used for cross-validation. *)
let emulate_sccp_exact = { emulate_sccp with algebraic_simplification = false }

let mode_to_string = function
  | Optimistic -> "optimistic"
  | Balanced -> "balanced"
  | Pessimistic -> "pessimistic"

let variant_to_string = function Practical -> "practical" | Complete -> "complete"

(* Per-run instrumentation of the GVN engine, backing the paper's §4/§5
   efficiency claims: pass counts and the average number of blocks visited
   per processed instruction during value inference, predicate inference and
   φ-predication. *)

(* One operand of a recorded predicate-inference claim. Queries reaching
   [Infer.decide] compare atoms: constants or congruence-class leader
   values (SSA value ids). *)
type atom = Aconst of int | Avalue of int

(* A decided predicate-inference query: while computing at block
   [inf_block], the engine asked whether [inf_a inf_op inf_b] holds given
   the predicate on dominating edge [inf_edge], and [Infer.decide]
   answered [inf_verdict]. Recorded so a static checker
   ([Absint.Crosscheck]) can replay every claim against independently
   computed interval facts. *)
type inference = {
  inf_block : int;
  inf_edge : int;
  inf_op : Ir.Types.cmp;
  inf_a : atom;
  inf_b : atom;
  inf_verdict : bool;
}

(* A query the single-fact walk could not decide but the multi-fact
   implication closure (lib/pred) did, from the conjunction of all
   dominating-edge facts — so no single [pinf_edge] exists. Recorded for
   the same reason as [inference]: [Absint.Crosscheck] replays every
   claim against independently computed interval facts. *)
type pred_inference = {
  pinf_block : int;
  pinf_op : Ir.Types.cmp;
  pinf_a : atom;
  pinf_b : atom;
  pinf_verdict : bool;
}

type t = {
  mutable passes : int;
  mutable instrs_processed : int;
  mutable instr_touches : int;
  mutable block_touches : int;
  mutable value_inference_visits : int; (* dominator-tree steps *)
  mutable predicate_inference_visits : int;
  mutable phi_predication_visits : int; (* blocks traversed in Figure 8 *)
  mutable class_moves : int;
  mutable table_probes : int; (* TABLE lookups during congruence finding *)
  mutable table_hits : int; (* probes answered by an existing class *)
  mutable inferences : inference list; (* most recent first *)
  mutable pred_closure_queries : int; (* closure fallbacks attempted *)
  mutable pred_decided_true : int;
  mutable pred_decided_false : int;
  mutable pred_contradictions : int; (* contradictory fact conjunctions seen *)
  mutable pred_inferences : pred_inference list; (* most recent first *)
}

let create () =
  {
    passes = 0;
    instrs_processed = 0;
    instr_touches = 0;
    block_touches = 0;
    value_inference_visits = 0;
    predicate_inference_visits = 0;
    phi_predication_visits = 0;
    class_moves = 0;
    table_probes = 0;
    table_hits = 0;
    inferences = [];
    pred_closure_queries = 0;
    pred_decided_true = 0;
    pred_decided_false = 0;
    pred_contradictions = 0;
    pred_inferences = [];
  }

let record_inference t ~block ~edge ~op ~a ~b ~verdict =
  t.inferences <-
    { inf_block = block; inf_edge = edge; inf_op = op; inf_a = a; inf_b = b;
      inf_verdict = verdict }
    :: t.inferences

let record_pred_inference t ~block ~op ~a ~b ~verdict =
  (if verdict then t.pred_decided_true <- t.pred_decided_true + 1
   else t.pred_decided_false <- t.pred_decided_false + 1);
  t.pred_inferences <-
    { pinf_block = block; pinf_op = op; pinf_a = a; pinf_b = b; pinf_verdict = verdict }
    :: t.pred_inferences

let per_instr count t =
  if t.instrs_processed = 0 then 0.0 else float_of_int count /. float_of_int t.instrs_processed

let value_inference_per_instr t = per_instr t.value_inference_visits t
let predicate_inference_per_instr t = per_instr t.predicate_inference_visits t
let phi_predication_per_instr t = per_instr t.phi_predication_visits t

let pp ppf t =
  Fmt.pf ppf
    "passes=%d instrs=%d touches=%d vi-visits/instr=%.2f pi-visits/instr=%.2f pp-visits/instr=%.2f"
    t.passes t.instrs_processed t.instr_touches (value_inference_per_instr t)
    (predicate_inference_per_instr t) (phi_predication_per_instr t)

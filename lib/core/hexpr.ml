(* Hash-consed expressions. See hexpr.mli for the design contract; the
   structural twin (and test oracle) is Expr. *)

type t = node Util.Hashcons.consed

and node =
  | Const of int
  | Value of int
  | Sum of Expr.term list
  | Op of Expr.opsym * t list
  | Cmp of Ir.Types.cmp * t * t
  | Phi of key * t list
  | Opq of int * t list
  | Self of int
  | Pand of t list
  | Por of t list

and key = Kblock of int | Kpred of t

let node (c : t) = c.Util.Hashcons.node
let tag (c : t) = c.Util.Hashcons.tag
let equal (a : t) (b : t) = a == b
let hash (c : t) = c.Util.Hashcons.hkey

let equal_key k1 k2 =
  match (k1, k2) with
  | Kblock a, Kblock b -> a = b
  | Kpred p, Kpred q -> p == q
  | (Kblock _ | Kpred _), _ -> false

(* Small integer codes for the operator enums, so shallow hashing and
   equality are pure OCaml int arithmetic — no [Hashtbl.hash] or
   polymorphic-compare C calls on the intern fast path. *)
let binop_code : Ir.Types.binop -> int = function
  | Add -> 0
  | Sub -> 1
  | Mul -> 2
  | Div -> 3
  | Rem -> 4
  | And -> 5
  | Or -> 6
  | Xor -> 7
  | Shl -> 8
  | Shr -> 9

let unop_code : Ir.Types.unop -> int = function Neg -> 0 | Lnot -> 1 | Bnot -> 2

let cmp_code : Ir.Types.cmp -> int = function
  | Eq -> 0
  | Ne -> 1
  | Lt -> 2
  | Le -> 3
  | Gt -> 4
  | Ge -> 5

let sym_code = function
  | Expr.Ubop b -> binop_code b
  | Expr.Uuop u -> 16 + unop_code u

(* Shallow equality/hash over one node: children by physical identity /
   tag, scalars structurally. This is what makes interning O(arity) and
   every later probe O(1). *)
module N = struct
  type nonrec t = node

  let rec eq_list xs ys =
    match (xs, ys) with
    | [], [] -> true
    | x :: xs, y :: ys -> x == y && eq_list xs ys
    | _ -> false

  let equal a b =
    match (a, b) with
    | Const x, Const y -> x = y
    | Value x, Value y -> x = y
    | Self x, Self y -> x = y
    | Sum ts, Sum us -> ts = us (* ints only: structural compare is safe *)
    | Op (o, xs), Op (p, ys) -> sym_code o = sym_code p && eq_list xs ys
    | Cmp (o, x1, y1), Cmp (p, x2, y2) ->
        cmp_code o = cmp_code p && x1 == x2 && y1 == y2
    | Phi (k1, xs), Phi (k2, ys) -> equal_key k1 k2 && eq_list xs ys
    | Opq (t1, xs), Opq (t2, ys) -> t1 = t2 && eq_list xs ys
    | Pand xs, Pand ys | Por xs, Por ys -> eq_list xs ys
    | ( ( Const _ | Value _ | Self _ | Sum _ | Op _ | Cmp _ | Phi _ | Opq _
        | Pand _ | Por _ ),
        _ ) ->
        false

  let comb h x = (h * 1000003) lxor x
  let hash_children salt xs = List.fold_left (fun h x -> comb h (tag x)) salt xs

  let hash = function
    | Const n -> comb 1 n
    | Value v -> comb 2 v
    | Self v -> comb 3 v
    | Sum ts ->
        List.fold_left
          (fun h t ->
            comb
              (List.fold_left comb (comb h t.Expr.coeff) t.Expr.factors)
              17)
          4 ts
    | Op (o, xs) -> hash_children (comb 5 (sym_code o)) xs
    | Cmp (o, x, y) -> comb (comb (comb 6 (cmp_code o)) (tag x)) (tag y)
    | Phi (k, xs) ->
        let hk = match k with Kblock b -> comb 7 b | Kpred p -> comb 8 (tag p) in
        hash_children hk xs
    | Opq (t, xs) -> hash_children (comb 9 t) xs
    | Pand xs -> hash_children 10 xs
    | Por xs -> hash_children 11 xs
end

module HC = Util.Hashcons.Make (N)

(* [small]/[vals] are read-through caches in front of the arena table for
   the two atom shapes the driver builds on every operand visit: small
   constants (eager) and per-value leader atoms (filled on first use).
   Both return the same cells interning would, just without the probe. *)
type arena = {
  hc : HC.arena;
  small : t array; (* Const (-16) .. Const 16 *)
  mutable vals : t option array; (* Value cells, indexed by value id *)
}

let create ?(size = 1024) () =
  let hc = HC.create ~size () in
  {
    hc;
    small = Array.init 33 (fun i -> HC.hashcons hc (Const (i - 16)));
    vals = Array.make 64 None;
  }

let stats a = HC.stats a.hc
let intern a n = HC.hashcons a.hc n

(* ---------------- smart constructors ---------------- *)

let const a n =
  if n >= -16 && n <= 16 then Array.unsafe_get a.small (n + 16)
  else intern a (Const n)

let value a v =
  if v < 0 then intern a (Value v)
  else begin
    if v >= Array.length a.vals then begin
      let nv = Array.make (max (2 * Array.length a.vals) (v + 1)) None in
      Array.blit a.vals 0 nv 0 (Array.length a.vals);
      a.vals <- nv
    end;
    match a.vals.(v) with
    | Some c -> c
    | None ->
        let c = intern a (Value v) in
        a.vals.(v) <- Some c;
        c
  end
let self a v = intern a (Self v)
let sum a ts = intern a (Sum ts)
let op_ a sym args = intern a (Op (sym, args))
let cmp_ a op x y = intern a (Cmp (op, x, y))
let phi a k args = intern a (Phi (k, args))
let opq a tg args = intern a (Opq (tg, args))

(* Canonical predicate children: flatten one connective, sort by tag,
   dedup. Tag order is arbitrary but fixed within an arena, which is all
   canonicity needs: any construction order of the same operand set yields
   the same cell. *)
let canon_children flatten xs =
  let rec flat acc = function
    | [] -> acc
    | x :: rest -> (
        match flatten (node x) with
        | Some ys -> flat (flat acc ys) rest
        | None -> flat (x :: acc) rest)
  in
  List.sort_uniq (fun a b -> Int.compare (tag a) (tag b)) (flat [] xs)

let pand a xs =
  match xs with
  (* Fast path for the dominant binary case with nothing to flatten. *)
  | [ x; y ] when (match (node x, node y) with Pand _, _ | _, Pand _ -> false | _ -> true)
    ->
      if x == y then x
      else
        let x, y = if tag x < tag y then (x, y) else (y, x) in
        intern a (Pand [ x; y ])
  | xs -> (
      match canon_children (function Pand ys -> Some ys | _ -> None) xs with
      | [] -> const a 1 (* empty conjunction: true *)
      | [ x ] -> x
      | xs -> intern a (Pand xs))

let por a xs =
  match xs with
  | [ x; y ] when (match (node x, node y) with Por _, _ | _, Por _ -> false | _ -> true) ->
      if x == y then x
      else
        let x, y = if tag x < tag y then (x, y) else (y, x) in
        intern a (Por [ x; y ])
  | xs -> (
      match canon_children (function Por ys -> Some ys | _ -> None) xs with
      | [] -> const a 0 (* empty disjunction: false *)
      | [ x ] -> x
      | xs -> intern a (Por xs))

(* ---------------- the atom algebra, mirrored from Expr ---------------- *)

let of_terms a ts =
  match ts with
  | [] -> const a 0
  | [ { Expr.coeff; factors = [] } ] -> const a coeff
  | [ { Expr.coeff = 1; factors = [ v ] } ] -> value a v
  | ts -> sum a ts

let terms_of_atom x =
  match node x with
  | Const 0 -> []
  | Const n -> [ { Expr.coeff = n; factors = [] } ]
  | Value v -> [ { Expr.coeff = 1; factors = [ v ] } ]
  | _ -> invalid_arg "Hexpr.terms_of_atom"

let terms_opt x =
  match node x with
  | Const 0 -> Some []
  | Const n -> Some [ { Expr.coeff = n; factors = [] } ]
  | Value v -> Some [ { Expr.coeff = 1; factors = [ v ] } ]
  | Sum ts -> Some ts
  | Op _ | Cmp _ | Phi _ | Opq _ | Self _ | Pand _ | Por _ -> None

let is_atom x = match node x with Const _ | Value _ -> true | _ -> false

let atom_rank rank x =
  match node x with
  | Const _ -> (0, min_int)
  | Value v -> (rank v, v)
  | _ -> invalid_arg "Hexpr.atom_rank"

let cmp_atoms a rank op x y =
  match (node x, node y) with
  | Const p, Const q -> const a (Ir.Types.eval_cmp op p q)
  | _ ->
      if x == y then
        const a (match op with Eq | Le | Ge -> 1 | Ne | Lt | Gt -> 0)
      else if atom_rank rank x <= atom_rank rank y then cmp_ a op x y
      else cmp_ a (Ir.Types.swap_cmp op) y x

let is_predicate x = match node x with Cmp _ -> true | _ -> false

let make_op a rank sym args =
  let args =
    if Expr.op_commutative sym then
      List.sort (fun u v -> compare (atom_rank rank u) (atom_rank rank v)) args
    else args
  in
  op_ a sym args

let negate_pred a x =
  match node x with
  | Cmp (op, u, v) -> cmp_ a (Ir.Types.negate_cmp op) u v
  | Const n -> const a (if n = 0 then 1 else 0)
  | _ -> op_ a (Expr.Uuop Ir.Types.Lnot) [ x ]

(* Simplification consults the shared rule table through a shallow subject,
   exactly as {!Expr.binop_atoms} does (the agreement property in
   test/test_expr.ml pins the two algebras together): constants are visible,
   everything else is an opaque atom, compound right-hand sides are
   declined. The driver's state-aware subject (Rewrite) additionally sees
   through congruence classes; these entry points stay for clients without
   a [State.t] — and as the oracle the tests compare against. *)
let rules_subject a rank : t Rules.Engine.subject =
  {
    Rules.Engine.view =
      (fun x -> match node x with Const n -> Rules.Engine.Sconst n | _ -> Rules.Engine.Satom);
    equal;
    bconst = const a;
    bunop =
      (fun op x ->
        match node x with
        | Const p -> Some (const a (Ir.Types.eval_unop op p))
        | _ -> if is_atom x then Some (make_op a rank (Expr.Uuop op) [ x ]) else None);
    bbinop =
      (fun op x y ->
        match (node x, node y) with
        | Const p, Const q -> Option.map (const a) (Ir.Types.fold_binop op p q)
        | _ ->
            if is_atom x && is_atom y then Some (make_op a rank (Expr.Ubop op) [ x; y ])
            else None);
    reduce = (fun x -> if is_atom x then Some x else None);
  }

let binop_atoms a rank (op : Ir.Types.binop) x y =
  match
    Rules.Engine.rewrite_binop (Rules.Engine.shared ()) (rules_subject a rank) op x y
  with
  | Some r -> r
  | None -> make_op a rank (Expr.Ubop op) [ x; y ]

let unop_atom a rank (op : Ir.Types.unop) x =
  match (op, node x) with
  | Ir.Types.Lnot, Cmp (c, u, v) -> cmp_ a (Ir.Types.negate_cmp c) u v
  | _ -> (
      match
        Rules.Engine.rewrite_unop (Rules.Engine.shared ()) (rules_subject a rank) op x
      with
      | Some r -> r
      | None -> make_op a rank (Expr.Uuop op) [ x ])

(* ---------------- conversions ---------------- *)

let rec to_expr x =
  match node x with
  | Const n -> Expr.Const n
  | Value v -> Expr.Value v
  | Self v -> Expr.Self v
  | Sum ts -> Expr.Sum ts
  | Op (o, xs) -> Expr.Op (o, List.map to_expr xs)
  | Cmp (o, u, v) -> Expr.Cmp (o, to_expr u, to_expr v)
  | Phi (Kblock b, xs) -> Expr.Phi (Expr.Kblock b, List.map to_expr xs)
  | Phi (Kpred p, xs) -> Expr.Phi (Expr.Kpred (to_expr p), List.map to_expr xs)
  | Opq (t, xs) -> Expr.Opq (t, List.map to_expr xs)
  | Pand xs -> Expr.Pand (List.map to_expr xs)
  | Por xs -> Expr.Por (List.map to_expr xs)

let rec of_expr a (e : Expr.t) =
  match e with
  | Expr.Const n -> const a n
  | Expr.Value v -> value a v
  | Expr.Self v -> self a v
  | Expr.Sum ts -> sum a ts
  | Expr.Op (o, xs) -> op_ a o (List.map (of_expr a) xs)
  | Expr.Cmp (o, u, v) -> cmp_ a o (of_expr a u) (of_expr a v)
  | Expr.Phi (Expr.Kblock b, xs) -> phi a (Kblock b) (List.map (of_expr a) xs)
  | Expr.Phi (Expr.Kpred p, xs) ->
      phi a (Kpred (of_expr a p)) (List.map (of_expr a) xs)
  | Expr.Opq (t, xs) -> opq a t (List.map (of_expr a) xs)
  | Expr.Pand xs -> pand a (List.map (of_expr a) xs)
  | Expr.Por xs -> por a (List.map (of_expr a) xs)

let pp ppf x = Expr.pp ppf (to_expr x)
let to_string x = Expr.to_string (to_expr x)

module Table = HC.Tbl

(* The GVN engine's window onto the shared rewrite-rule table (lib/rules).

   The driver consults the same compiled catalog as every other client, but
   through a *deep* subject that sees through congruence: a [Value] atom is
   viewed as the operator of its class's defining expression (children
   refreshed to their current class leaders), so patterns like
   [~x & ~y -> ~(x|y)] or [(x shl A) shl B] match across instruction
   boundaries, up to congruence rather than up to syntax. Compound
   right-hand-side nodes are reduced back to atoms through the TABLE — a
   rewrite only fires when every intermediate expression already has a
   congruence class, which keeps symbolic evaluation inside the paper's
   atom language.

   Add/Sub/Mul/Neg on the RHS are built with the sum-of-products term
   algebra, so a rule like [x shl A -> x * 2^(A land 62)] feeds shifts
   into the same canonical form as every other multiply. *)

open State

(* A TABLE probe: the class id lives in the consed cell's scratch slot, so
   a probe is a single field read, counted for the bench harness. *)
let table_find st (e : Hexpr.t) =
  st.stats.Run_stats.table_probes <- st.stats.Run_stats.table_probes + 1;
  let cid = Util.Hashcons.slot e in
  if cid >= 0 then begin
    st.stats.Run_stats.table_hits <- st.stats.Run_stats.table_hits + 1;
    Some cid
  end
  else None

(* Reduce a combined expression back to an atom: directly, or through the
   congruence class already holding that expression. *)
let atom_of_expr st (e : Hexpr.t) : Hexpr.t option =
  match Hexpr.node e with
  | Hexpr.Const _ | Hexpr.Value _ -> Some e
  | _ -> (
      match table_find st e with
      | Some cid -> (
          match (cls st cid).leader with
          | Lconst n -> Some (Hexpr.const st.arena n)
          | Lvalue l -> Some (Hexpr.value st.arena l)
          | Lundef -> None)
      | None -> None)

let rank_fn st v = st.rank.(v)

(* The current class-leader atom standing for [a] (identity for constants
   and for values whose class is still ⊥). *)
let refresh st a =
  match Hexpr.node a with
  | Hexpr.Value v -> ( match leader_atom st v with Some l -> l | None -> a)
  | _ -> a

let make_subject (st : State.t) : Hexpr.t Rules.Engine.subject =
  let arena = st.arena in
  let rank = rank_fn st in
  {
    Rules.Engine.view =
      (fun x ->
        match Hexpr.node x with
        | Hexpr.Const n -> Rules.Engine.Sconst n
        | Hexpr.Value v -> (
            (* the defining expression of x's congruence class, one
               operator deep, operands refreshed to current leaders *)
            match (cls st st.class_of.(v)).expr with
            | Some e -> (
                match Hexpr.node e with
                | Hexpr.Op (Expr.Ubop op, [ p; q ]) ->
                    Rules.Engine.Sbinop (op, refresh st p, refresh st q)
                | Hexpr.Op (Expr.Uuop op, [ p ]) -> Rules.Engine.Sunop (op, refresh st p)
                | _ -> Rules.Engine.Satom)
            | None -> Rules.Engine.Satom)
        | _ -> Rules.Engine.Satom);
    equal = Hexpr.equal;
    bconst = Hexpr.const arena;
    bunop =
      (fun op x ->
        match (op, Hexpr.node x) with
        | _, Hexpr.Const p -> Some (Hexpr.const arena (Ir.Types.eval_unop op p))
        | Ir.Types.Neg, _ ->
            Some (Hexpr.of_terms arena (Expr.negate_terms (Hexpr.terms_of_atom x)))
        | _ -> Some (Hexpr.make_op arena rank (Expr.Uuop op) [ x ]));
    bbinop =
      (fun op x y ->
        match (Hexpr.node x, Hexpr.node y) with
        | Hexpr.Const p, Hexpr.Const q ->
            Option.map (Hexpr.const arena) (Ir.Types.fold_binop op p q)
        | _ -> (
            match op with
            | Ir.Types.Add ->
                Some
                  (Hexpr.of_terms arena
                     (Expr.merge_terms rank (Hexpr.terms_of_atom x) (Hexpr.terms_of_atom y)))
            | Ir.Types.Sub ->
                Some
                  (Hexpr.of_terms arena
                     (Expr.merge_terms rank (Hexpr.terms_of_atom x)
                        (Expr.negate_terms (Hexpr.terms_of_atom y))))
            | Ir.Types.Mul ->
                Some
                  (Hexpr.of_terms arena
                     (Expr.mul_terms rank (Hexpr.terms_of_atom x) (Hexpr.terms_of_atom y)))
            | _ -> Some (Hexpr.make_op arena rank (Expr.Ubop op) [ x; y ])));
    reduce = (fun e -> atom_of_expr st e);
  }

let subject_of st =
  match st.rules_subject with
  | Some s -> s
  | None ->
      let s = make_subject st in
      st.rules_subject <- Some s;
      s

(* ---------------- the driver's simplification entry points ---------------- *)

(* With the catalog disabled (Config.rules = false) simplification degrades
   to trap-refusing constant folding plus commutative canonicalization. *)

let binop_atoms (st : State.t) (op : Ir.Types.binop) x y =
  let fallback () =
    match (Hexpr.node x, Hexpr.node y) with
    | Hexpr.Const p, Hexpr.Const q -> (
        match Ir.Types.fold_binop op p q with
        | Some c -> Hexpr.const st.arena c
        | None -> Hexpr.make_op st.arena (rank_fn st) (Expr.Ubop op) [ x; y ])
    | _ -> Hexpr.make_op st.arena (rank_fn st) (Expr.Ubop op) [ x; y ]
  in
  if st.config.Config.rules then
    match Rules.Engine.rewrite_binop (Rules.Engine.shared ()) (subject_of st) op x y with
    | Some r -> r
    | None -> fallback ()
  else fallback ()

let unop_atom (st : State.t) (op : Ir.Types.unop) x =
  match (op, Hexpr.node x) with
  | Ir.Types.Lnot, Hexpr.Cmp (c, u, v) -> Hexpr.cmp_ st.arena (Ir.Types.negate_cmp c) u v
  | _ -> (
      let fallback () =
        match Hexpr.node x with
        | Hexpr.Const p -> Hexpr.const st.arena (Ir.Types.eval_unop op p)
        | _ -> Hexpr.make_op st.arena (rank_fn st) (Expr.Uuop op) [ x ]
      in
      if st.config.Config.rules then
        match Rules.Engine.rewrite_unop (Rules.Engine.shared ()) (subject_of st) op x with
        | Some r -> r
        | None -> fallback ()
      else fallback ())

(* The "related predicates" logic of §2.7: given that an edge predicate (a
   canonical comparison over atoms) is known to hold, decide the truth of
   another comparison. Two forms of relatedness are recognised:

   - both comparisons relate the same (congruent) pair of operands, in
     either order: decided by an operator implication table;
   - both compare a congruent value against (possibly different) integer
     constants: decided by interval reasoning, e.g. Z > 1 implies that
     Z < 1 is false.

   Atom congruence is delegated to the caller through [same]. *)

type verdict = True | False | Unknown

(* fact [a OP b] holds; what of query [a OP' b] over the same operands? *)
let same_operands_table (fact : Ir.Types.cmp) (query : Ir.Types.cmp) : verdict =
  let open Ir.Types in
  match (fact, query) with
  | Eq, Eq -> True
  | Eq, Ne -> False
  | Eq, Lt -> False
  | Eq, Le -> True
  | Eq, Gt -> False
  | Eq, Ge -> True
  | Ne, Ne -> True
  | Ne, Eq -> False
  | Ne, (Lt | Le | Gt | Ge) -> Unknown
  | Lt, Lt -> True
  | Lt, Le -> True
  | Lt, Ne -> True
  | Lt, Eq -> False
  | Lt, Gt -> False
  | Lt, Ge -> False
  | Le, Le -> True
  | Le, Gt -> False
  | Le, (Eq | Ne | Lt | Ge) -> Unknown
  | Gt, Gt -> True
  | Gt, Ge -> True
  | Gt, Ne -> True
  | Gt, Eq -> False
  | Gt, Lt -> False
  | Gt, Le -> False
  | Ge, Ge -> True
  | Ge, Lt -> False
  | Ge, (Eq | Ne | Gt | Le) -> Unknown

(* Interval solution set of [x OP c] over the machine integers. [Never] is
   the empty set: a fact that cannot hold (its edge never runs — every
   implication from it is vacuously true), or a query that is identically
   false. *)
type interval =
  | Exactly of int
  | Not of int
  | At_most of int
  | At_least of int
  | Never

(* Trap-aware at the domain edges: [x < min_int] and [x > max_int] are
   [Never] (the naive [c ± 1] would wrap to the full domain — unsound for
   queries); [x ≤ min_int] and [x ≥ max_int] pin the value exactly. *)
let interval_of ~(op : Ir.Types.cmp) ~c =
  match op with
  | Eq -> Exactly c
  | Ne -> Not c
  | Lt -> if c = min_int then Never else At_most (c - 1)
  | Le -> if c = min_int then Exactly min_int else At_most c
  | Gt -> if c = max_int then Never else At_least (c + 1)
  | Ge -> if c = max_int then Exactly max_int else At_least c

(* Given x ∈ [fact], is x ∈ [query]? *)
let interval_implies fact query : verdict =
  match (fact, query) with
  | Never, _ -> True (* unsatisfiable fact: vacuous *)
  | _, Never -> False
  | Exactly a, Exactly b -> if a = b then True else False
  | Exactly a, Not b -> if a = b then False else True
  | Exactly a, At_most b -> if a <= b then True else False
  | Exactly a, At_least b -> if a >= b then True else False
  | Not a, Not b -> if a = b then True else Unknown
  | Not a, Exactly b -> if a = b then False else Unknown
  | Not _, (At_most _ | At_least _) -> Unknown
  | At_most a, At_most b -> if a <= b then True else Unknown
  | At_most a, At_least b -> if a < b then False else Unknown
  | At_most a, Exactly b -> if b > a then False else Unknown
  | At_most a, Not b -> if b > a then True else Unknown
  | At_least a, At_least b -> if a >= b then True else Unknown
  | At_least a, At_most b -> if a > b then False else Unknown
  | At_least a, Exactly b -> if b < a then False else Unknown
  | At_least a, Not b -> if b < a then True else Unknown

(* Normalize a comparison so the value is on the left: [(op, x, y)] means
   "x op y"; if the constant is on the left, flip. Returns
   (value atom, op, constant). [const] recognises constant atoms. *)
let value_vs_const ~const (op, x, y) =
  match const x with
  | Some c -> Some (y, Ir.Types.swap_cmp op, c)
  | None -> ( match const y with Some c -> Some (x, op, c) | None -> None)

(* [decide ~same ~const ~fop ~fa ~fb ~qop ~qa ~qb]: assuming fact
   [fa fop fb] holds, the truth of query [qa qop qb]. Comparisons come as
   scalar arguments — not tuples — because this runs once per dominating
   edge visited during predicate inference; the engine can pass structural
   {!Expr} atoms or hash-consed {!Hexpr} atoms alike. [same] is atom
   congruence, [const] recognises constant atoms. *)
(* Test-only fault injection: when set, every verdict [decide] returns is
   passed through this function. The mutant tests use it to ship an
   intentionally wrong implication table and assert the static
   cross-checker catches the engine's resulting bogus claims. Domain-local
   so a test injecting faults cannot leak wrong verdicts into pipelines
   running concurrently on other domains. *)
let fault_key : (verdict -> verdict) option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let with_fault f k =
  let saved = Domain.DLS.get fault_key in
  Domain.DLS.set fault_key (Some f);
  Fun.protect ~finally:(fun () -> Domain.DLS.set fault_key saved) k

let decide_sound ~same ~const ~fop ~fa ~fb ~qop ~qa ~qb : verdict =
  let table =
    if same fa qa && same fb qb then same_operands_table fop qop
    else if same fa qb && same fb qa then same_operands_table fop (Ir.Types.swap_cmp qop)
    else Unknown
  in
  if table <> Unknown then table
  else
    (* Both sides normalized value-vs-constant, without building tuples:
       the constant side is flipped to the right (cf. [value_vs_const]). *)
    let decide_vc fx fop fc =
      match const qa with
      | Some qc ->
          if same fx qb then
            interval_implies (interval_of ~op:fop ~c:fc)
              (interval_of ~op:(Ir.Types.swap_cmp qop) ~c:qc)
          else Unknown
      | None -> (
          match const qb with
          | Some qc when same fx qa ->
              interval_implies (interval_of ~op:fop ~c:fc) (interval_of ~op:qop ~c:qc)
          | _ -> Unknown)
    in
    match const fa with
    | Some fc -> decide_vc fb (Ir.Types.swap_cmp fop) fc
    | None -> (
        match const fb with Some fc -> decide_vc fa fop fc | None -> Unknown)

let decide ~same ~const ~fop ~fa ~fb ~qop ~qa ~qb : verdict =
  let v = decide_sound ~same ~const ~fop ~fa ~fb ~qop ~qa ~qb in
  match Domain.DLS.get fault_key with None -> v | Some f -> f v

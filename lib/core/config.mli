(** Configuration of the GVN engine: value-numbering mode, per-analysis
    switches (§1.3), sparse/dense formulation (§5, Table 2), the
    practical/complete variant (§2), and the §2.9 emulation presets. *)

type mode =
  | Optimistic  (** only the entry reachable, all values congruent (⊤) *)
  | Balanced  (** optimistic reachability, pessimistic congruence; 1 pass *)
  | Pessimistic  (** everything reachable, values congruent to self; 1 pass *)

type variant =
  | Practical  (** static dominator tree + RPO-downstream touching *)
  | Complete  (** incremental reachable dominator tree *)

type t = {
  mode : mode;
  variant : variant;
  sparse : bool;  (** false: brute-force retouching of the whole routine *)
  constant_folding : bool;
  algebraic_simplification : bool;
  rules : bool;
      (** consult the declarative rule catalog (lib/rules) during algebraic
          simplification; with it off, simplification is constant folding
          and commutative canonicalization only *)
  unreachable_code : bool;  (** conditional reachability of edges *)
  reassociation : bool;  (** global reassociation / forward propagation *)
  predicate_inference : bool;
  value_inference : bool;
  phi_predication : bool;
  pred_closure : bool;
      (** extension: fall back to the lib/pred multi-fact implication
          closure (congruence + difference bounds over the whole
          dominating-fact conjunction) when single-fact predicate
          inference fails; off by default *)
  sccp_only : bool;  (** §2.9: non-constant expressions collapse to Self *)
  propagation_limit : int;  (** operand bound cancelling forward propagation *)
  phi_distribution : bool;
      (** §6 extension: distribute operations over φs (captures the
          Rüthing–Knoop–Steffen congruences of Figure 14); off by default *)
}

val full : t
(** The paper's full practical algorithm: optimistic, sparse, every
    analysis enabled. *)

val full_extended : t
(** {!full} plus the op-of-φ distribution extension. *)

val balanced : t
val pessimistic : t

val basic : t
(** Table 2's "basic": reassociation, predicate inference, value inference
    and φ-predication disabled. *)

val dense : t
(** {!full} with the sparse formulation disabled. *)

val emulate_awz : t
(** §2.9: optimistic value numbering only — the Alpern–Wegman–Zadeck /
    Simpson RPO / Simpson SCC result. *)

val emulate_click : t
(** §2.9: + constant folding, algebraic simplification and unreachable-code
    elimination — Click's strongest algorithm. *)

val emulate_sccp : t
(** §2.9: + non-constant expressions replaced by the defining value —
    Wegman–Zadeck sparse conditional constant propagation (on top of the
    Click feature set, as the paper defines the emulation). *)

val emulate_sccp_exact : t
(** Bit-exact Wegman–Zadeck (constant folding and reachability only);
    matches the independent [Baselines.Sccp] implementation. *)

val mode_to_string : mode -> string
val variant_to_string : variant -> string

(** Per-run instrumentation backing the paper's §4/§5 efficiency claims:
    pass counts, touches, and the blocks visited per processed instruction
    in value inference, predicate inference and φ-predication. *)

type t = {
  mutable passes : int;
  mutable instrs_processed : int;
  mutable instr_touches : int;
  mutable block_touches : int;
  mutable value_inference_visits : int;
  mutable predicate_inference_visits : int;
  mutable phi_predication_visits : int;
  mutable class_moves : int;
  mutable table_probes : int;  (** TABLE lookups during congruence finding *)
  mutable table_hits : int;  (** probes answered by an existing class *)
}

val create : unit -> t
val value_inference_per_instr : t -> float
val predicate_inference_per_instr : t -> float
val phi_predication_per_instr : t -> float
val pp : Format.formatter -> t -> unit

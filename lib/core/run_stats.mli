(** Per-run instrumentation backing the paper's §4/§5 efficiency claims:
    pass counts, touches, and the blocks visited per processed instruction
    in value inference, predicate inference and φ-predication. *)

type atom = Aconst of int | Avalue of int
(** Operand of a recorded predicate-inference claim: a constant, or a
    congruence-class leader's SSA value id. *)

type inference = {
  inf_block : int;  (** block being computed when the query was asked *)
  inf_edge : int;  (** dominating edge whose predicate decided it *)
  inf_op : Ir.Types.cmp;
  inf_a : atom;
  inf_b : atom;
  inf_verdict : bool;  (** the decided truth of [inf_a inf_op inf_b] *)
}
(** A decided predicate-inference query, recorded so [Absint.Crosscheck]
    can statically replay the engine's claims against interval facts. *)

type pred_inference = {
  pinf_block : int;  (** block being computed when the query was asked *)
  pinf_op : Ir.Types.cmp;
  pinf_a : atom;
  pinf_b : atom;
  pinf_verdict : bool;
}
(** A query decided by the multi-fact implication closure (lib/pred) after
    the single-fact walk gave up — no single deciding edge exists, the
    verdict follows from the conjunction of dominating-edge facts.
    Replayed by [Absint.Crosscheck] like {!inference}. *)

type t = {
  mutable passes : int;
  mutable instrs_processed : int;
  mutable instr_touches : int;
  mutable block_touches : int;
  mutable value_inference_visits : int;
  mutable predicate_inference_visits : int;
  mutable phi_predication_visits : int;
  mutable class_moves : int;
  mutable table_probes : int;  (** TABLE lookups during congruence finding *)
  mutable table_hits : int;  (** probes answered by an existing class *)
  mutable inferences : inference list;  (** most recent first *)
  mutable pred_closure_queries : int;  (** closure fallbacks attempted *)
  mutable pred_decided_true : int;
  mutable pred_decided_false : int;
  mutable pred_contradictions : int;  (** contradictory conjunctions seen *)
  mutable pred_inferences : pred_inference list;  (** most recent first *)
}

val create : unit -> t

val record_inference :
  t ->
  block:int ->
  edge:int ->
  op:Ir.Types.cmp ->
  a:atom ->
  b:atom ->
  verdict:bool ->
  unit

val record_pred_inference :
  t -> block:int -> op:Ir.Types.cmp -> a:atom -> b:atom -> verdict:bool -> unit
(** Record a closure-decided query and bump the decided counters. *)

val value_inference_per_instr : t -> float
val predicate_inference_per_instr : t -> float
val phi_predication_per_instr : t -> float
val pp : Format.formatter -> t -> unit

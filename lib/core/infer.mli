(** The "related predicates" logic of §2.7: assuming a dominating edge's
    comparison holds, decide another comparison. Recognised relations:
    pairwise-congruent operands (an operator implication table) and a
    congruent value compared against two constants (interval reasoning —
    e.g. Z > 1 refutes Z < 1). *)

type verdict = True | False | Unknown

val with_fault : (verdict -> verdict) -> (unit -> 'a) -> 'a
(** Test-only fault injection: [with_fault f k] runs [k] with every
    {!decide} verdict passed through [f], restoring the previous hook
    afterwards (also on exceptions) — the mutant tests use it to simulate a
    wrong implication table. The hook is domain-local: it affects only the
    installing domain. *)

val same_operands_table : Ir.Types.cmp -> Ir.Types.cmp -> verdict
(** Given [a OP b], decide [a OP' b]. *)

type interval = Exactly of int | Not of int | At_most of int | At_least of int | Never

val interval_of : op:Ir.Types.cmp -> c:int -> interval
(** Solution set of [x op c] over the machine integers — trap-aware at the
    domain edges: [x < min_int] / [x > max_int] are {!Never} rather than a
    wrapped full-domain bound, and [x ≤ min_int] / [x ≥ max_int] pin the
    value exactly. *)

val interval_implies : interval -> interval -> verdict
(** Given x ∈ fact, is x ∈ query? *)

val value_vs_const :
  const:('a -> int option) ->
  Ir.Types.cmp * 'a * 'a ->
  ('a * Ir.Types.cmp * int) option
(** Normalize a comparison with one constant side to (value, op, constant);
    [const] recognises constant atoms. *)

val decide :
  same:('a -> 'a -> bool) ->
  const:('a -> int option) ->
  fop:Ir.Types.cmp ->
  fa:'a ->
  fb:'a ->
  qop:Ir.Types.cmp ->
  qa:'a ->
  qb:'a ->
  verdict
(** [decide ~same ~const ~fop ~fa ~fb ~qop ~qa ~qb]: assuming the fact
    [fa fop fb] holds, the truth of the query [qa qop qb]. Comparisons are
    passed as scalars (no tuples — this sits on the predicate-inference
    walk). Generic in the atom representation (structural {!Expr} or
    hash-consed {!Hexpr}): [same] is atom congruence, [const] recognises
    constant atoms. Sound: [True]/[False] verdicts never contradict any
    satisfying assignment. *)

(** Hash-consed symbolic expressions: the arena-backed twin of {!Expr}.

    Every structurally distinct expression is interned exactly once per
    {!arena}, so equality is physical ([==] / {!tag} comparison) and
    hashing is O(1) — the paper's "the cost of a hash lookup is independent
    of program size" cost model, which the plain recursive {!Expr.t} loses
    (each TABLE probe re-walks the whole tree).

    Nodes mirror {!Expr.t} constructor for constructor, with two deliberate
    differences enforced by the smart constructors:

    - {b children are consed}: interning a node hashes only its children's
      tags, O(arity), and every later probe of the same structure is O(1);
    - {b predicates are canonical at construction}: {!pand}/{!por} flatten
      nested conjunctions/disjunctions, sort children by tag and drop
      duplicates, so path predicates built through different traversal
      shapes land on the same cell (and hence the same TABLE slot) for
      free — the [xs @ [q]] appends of the φ-predication walk disappear.

    The structural {!Expr} module stays untouched and serves as the test
    oracle: [of_expr]/[to_expr] round-trips and the agreement properties
    are pinned in [test/test_expr.ml]. *)

type t = node Util.Hashcons.consed

and node =
  | Const of int
  | Value of int  (** a congruence-class leader *)
  | Sum of Expr.term list  (** canonical sum of products (term ids only) *)
  | Op of Expr.opsym * t list  (** non-reassociable op over atomic operands *)
  | Cmp of Ir.Types.cmp * t * t
  | Phi of key * t list
  | Opq of int * t list  (** uninterpreted function of tag and atoms *)
  | Self of int  (** an expression unique to the given value *)
  | Pand of t list  (** conjunction: flattened, tag-sorted, deduplicated *)
  | Por of t list  (** disjunction: flattened, tag-sorted, deduplicated *)

and key = Kblock of int | Kpred of t

type arena
(** One expression arena, scoped to a GVN run (see {!State.t.arena}). *)

val create : ?size:int -> unit -> arena
val stats : arena -> Util.Hashcons.stats

val node : t -> node
val tag : t -> int
(** Unique per structurally distinct expression within one arena. *)

val equal : t -> t -> bool
(** Physical equality — O(1), sound within one arena. *)

val hash : t -> int
(** Precomputed — O(1). *)

val equal_key : key -> key -> bool

(** {1 Smart constructors}

    All take the arena; all return the unique cell for the (canonicalized)
    structure. *)

val const : arena -> int -> t
val value : arena -> int -> t
val self : arena -> int -> t
val sum : arena -> Expr.term list -> t
(** Raw [Sum] node — the term list must already be canonical; prefer
    {!of_terms}. *)

val op_ : arena -> Expr.opsym -> t list -> t
(** Raw [Op] node, no operand sorting; prefer {!make_op}. *)

val cmp_ : arena -> Ir.Types.cmp -> t -> t -> t
(** Raw [Cmp] node, no canonicalization; prefer {!cmp_atoms}. *)

val phi : arena -> key -> t list -> t
val opq : arena -> int -> t list -> t

val pand : arena -> t list -> t
(** Conjunction: flattens nested [Pand] children, sorts by tag, drops
    duplicates; collapses to the sole child, or to [Const 1] when empty. *)

val por : arena -> t list -> t
(** Disjunction, canonicalized like {!pand}; empty collapses to [Const 0]. *)

(** {1 The atom algebra, mirrored from {!Expr}}

    Same semantics, same simplifications — property-tested to agree. Term
    lists are shared with {!Expr} (they contain only ints), so
    {!Expr.merge_terms} & co. apply unchanged. *)

val of_terms : arena -> Expr.term list -> t
val terms_of_atom : t -> Expr.term list
val terms_opt : t -> Expr.term list option
val is_atom : t -> bool
val atom_rank : (int -> int) -> t -> int * int
val cmp_atoms : arena -> (int -> int) -> Ir.Types.cmp -> t -> t -> t
val negate_pred : arena -> t -> t
val is_predicate : t -> bool
val make_op : arena -> (int -> int) -> Expr.opsym -> t list -> t
val binop_atoms : arena -> (int -> int) -> Ir.Types.binop -> t -> t -> t
val unop_atom : arena -> (int -> int) -> Ir.Types.unop -> t -> t

(** {1 Conversions and printing} *)

val of_expr : arena -> Expr.t -> t
(** Interns a structural expression, canonicalizing [Pand]/[Por] children
    on the way in. *)

val to_expr : t -> Expr.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Table : Hashtbl.S with type key = t
(** TABLE keyed by consed expressions: O(1) hash and equality per probe. *)

(* The mutable state of a GVN run: the paper's REACHABLE, TOUCHED, CHANGED,
   CLASS, LEADER, EXPRESSION, TABLE, RANK, PREDICATE, PARTIAL PREDICATE,
   CANONICAL and BACKWARD structures, implemented as §3 recommends —
   congruence classes as doubly linked lists threaded through per-value
   arrays, membership bit arrays for the sets, and touch counting so a pass
   can stop as soon as nothing remains touched. *)

type leader = Lundef | Lconst of int | Lvalue of int

type cls = {
  cid : int;
  mutable head : int; (* first member, -1 when empty *)
  mutable size : int;
  mutable leader : leader;
  mutable expr : Hexpr.t option; (* the class's defining expression *)
  mutable in_table : bool; (* whether [expr] is currently a TABLE key *)
  (* §3 optimization: inference walks are skipped when a class contains no
     value that could possibly match an edge predicate. *)
  mutable eq_operands : int; (* members that are operands of an =/≠ test *)
  mutable cmp_operands : int; (* members that are operands of any comparison *)
}

type t = {
  f : Ir.Func.t;
  config : Config.t;
  (* per-value *)
  is_eq_operand : bool array; (* operand of an equality/inequality test *)
  is_cmp_operand : bool array; (* operand of any comparison *)
  rank : int array;
  class_of : int array;
  next_member : int array;
  prev_member : int array;
  changed : bool array;
  (* classes *)
  classes : cls Util.Vec.t;
  arena : Hexpr.arena; (* the run's expression arena: one cell per structure *)
  (* TABLE lives in the arena cells themselves: each consed expression's
     [Util.Hashcons.slot] holds its class id (-1 = unbound). The arena is
     scoped to this run, so the slots are exclusively this table's. *)
  initial : int; (* class id of INITIAL *)
  (* reachability *)
  reach_block : bool array;
  reach_edge : bool array;
  (* worklist *)
  touched_instr : bool array;
  touched_block : bool array;
  mutable touched_count : int;
  (* predicates *)
  pred_edge : Hexpr.t option array;
  pred_block : Hexpr.t option array;
  partial_pred : Hexpr.t option array;
  partial_ops : Hexpr.t list array; (* OR operands accumulating at a join *)
  partial_count : int array; (* operands accumulated in a partial predicate *)
  pp_init : bool array; (* per-block: OR accumulator live this computation *)
  canonical : int array array; (* block -> canonical reachable incoming edges *)
  phi_scratch : Hexpr.t option array; (* per-edge φ-argument scratch (eval_phi) *)
  (* static structure *)
  rpo : Analysis.Rpo.t;
  backward : bool array; (* per edge: RPO back edge *)
  dom : Analysis.Dom.t;
  pdom : Analysis.Postdom.t;
  inc_dom : Analysis.Inc_dom.t; (* complete variant: reachable dominator tree *)
  def_use : int array array;
  switch_default : (int * int array) option array;
      (* per edge: [Some (scrutinee, cases)] when the edge is a switch
         default (it carries no predicate expression but excludes every
         case); only populated under [Config.pred_closure], so the
         dominating-fact walk pays one array load per predicate-less edge
         instead of a terminator fetch and match *)
  stats : Run_stats.t;
  mutable rules_subject : Hexpr.t Rules.Engine.subject option;
      (* lazily built view of this run's expressions for the rewrite-rule
         matcher (see Rewrite); cached because it closes over this state *)
}

let dummy_class =
  {
    cid = -1;
    head = -1;
    size = 0;
    leader = Lundef;
    expr = None;
    in_table = false;
    eq_operands = 0;
    cmp_operands = 0;
  }

let create (config : Config.t) (f : Ir.Func.t) =
  let g = Analysis.Graph.of_func f in
  let rpo = Analysis.Rpo.compute g in
  let dom = Analysis.Dom.compute ~rpo g in
  let pdom = Analysis.Postdom.compute g in
  let ni = Ir.Func.num_instrs f in
  let nb = Ir.Func.num_blocks f in
  let ne = Ir.Func.num_edges f in
  (* Ranks: constants 0 (implicit), values numbered in RPO definition order
     (§2.2). *)
  let rank = Array.make ni 0 in
  let next_rank = ref 0 in
  Array.iter
    (fun b ->
      Array.iter
        (fun i ->
          if Ir.Func.defines_value (Ir.Func.instr f i) then begin
            incr next_rank;
            rank.(i) <- !next_rank
          end)
        (Ir.Func.block f b).Ir.Func.instrs)
    rpo.Analysis.Rpo.order;
  (* Static inferenceability marking (§3): inference can only rewrite a
     value whose congruence class contains an operand of a comparison. *)
  let is_eq_operand = Array.make ni false in
  let is_cmp_operand = Array.make ni false in
  Array.iter
    (fun ins ->
      match (ins : Ir.Func.instr) with
      | Ir.Func.Cmp (op, a, b) ->
          is_cmp_operand.(a) <- true;
          is_cmp_operand.(b) <- true;
          (match op with
          | Ir.Types.Eq | Ir.Types.Ne ->
              is_eq_operand.(a) <- true;
              is_eq_operand.(b) <- true
          | Ir.Types.Lt | Ir.Types.Le | Ir.Types.Gt | Ir.Types.Ge -> ())
      | Ir.Func.Switch (a, _) ->
          (* Case edges carry scrutinee = constant equality predicates. *)
          is_cmp_operand.(a) <- true;
          is_eq_operand.(a) <- true
      | _ -> ())
    f.Ir.Func.instrs;
  let classes = Util.Vec.create ~dummy:dummy_class in
  (* INITIAL: all values, leader ⊥. *)
  let class_of = Array.make ni 0 in
  let next_member = Array.make ni (-1) in
  let prev_member = Array.make ni (-1) in
  let initial =
    {
      cid = 0;
      head = -1;
      size = 0;
      leader = Lundef;
      expr = None;
      in_table = false;
      eq_operands = 0;
      cmp_operands = 0;
    }
  in
  Util.Vec.push classes initial;
  for i = ni - 1 downto 0 do
    if Ir.Func.defines_value (Ir.Func.instr f i) then begin
      next_member.(i) <- initial.head;
      if initial.head >= 0 then prev_member.(initial.head) <- i;
      initial.head <- i;
      initial.size <- initial.size + 1;
      if is_eq_operand.(i) then initial.eq_operands <- initial.eq_operands + 1;
      if is_cmp_operand.(i) then initial.cmp_operands <- initial.cmp_operands + 1
    end
  done;
  {
    f;
    config;
    is_eq_operand;
    is_cmp_operand;
    rank;
    class_of;
    next_member;
    prev_member;
    changed = Array.make ni false;
    classes;
    arena = Hexpr.create ~size:256 ();
    initial = 0;
    reach_block = Array.make nb false;
    reach_edge = Array.make ne false;
    touched_instr = Array.make ni false;
    touched_block = Array.make nb false;
    touched_count = 0;
    pred_edge = Array.make ne None;
    pred_block = Array.make nb None;
    partial_pred = Array.make nb None;
    partial_ops = Array.make nb [];
    partial_count = Array.make nb 0;
    pp_init = Array.make nb false;
    canonical = Array.make nb [||];
    phi_scratch = Array.make ne None;
    rpo;
    backward = Analysis.Rpo.backward_edges rpo f;
    dom;
    pdom;
    inc_dom = Analysis.Inc_dom.create ~n:nb ~entry:Ir.Func.entry;
    def_use = Ir.Func.def_use f;
    switch_default =
      (let sd = Array.make ne None in
       if config.Config.pred_closure then
         Array.iteri
           (fun e (ed : Ir.Func.edge) ->
             match Ir.Func.instr f (Ir.Func.terminator_of_block f ed.Ir.Func.src) with
             | Ir.Func.Switch (c, cases) when ed.Ir.Func.src_ix >= Array.length cases ->
                 sd.(e) <- Some (c, cases)
             | _ -> ())
           f.Ir.Func.edges;
       sd);
    stats = Run_stats.create ();
    rules_subject = None;
  }

let cls t c = Util.Vec.get t.classes c
let rank_of t v = t.rank.(v)

(* The class leader of a value, as the atomic expression symbolic evaluation
   substitutes for it. [None] while the value is still in INITIAL (⊥). *)
let leader_atom t v =
  match (cls t t.class_of.(v)).leader with
  | Lundef -> None
  | Lconst n -> Some (Hexpr.const t.arena n)
  | Lvalue l -> Some (Hexpr.value t.arena l)

(* ---------------- TOUCHED ---------------- *)

let touch_instr t i =
  if not t.touched_instr.(i) then begin
    t.touched_instr.(i) <- true;
    t.touched_count <- t.touched_count + 1;
    t.stats.Run_stats.instr_touches <- t.stats.Run_stats.instr_touches + 1
  end

let touch_block t b =
  if not t.touched_block.(b) then begin
    t.touched_block.(b) <- true;
    t.touched_count <- t.touched_count + 1;
    t.stats.Run_stats.block_touches <- t.stats.Run_stats.block_touches + 1
  end

let untouch_instr t i =
  if t.touched_instr.(i) then begin
    t.touched_instr.(i) <- false;
    t.touched_count <- t.touched_count - 1
  end

let untouch_block t b =
  if t.touched_block.(b) then begin
    t.touched_block.(b) <- false;
    t.touched_count <- t.touched_count - 1
  end

let touch_users t v = Array.iter (fun i -> touch_instr t i) t.def_use.(v)

let touch_block_instrs t b =
  Array.iter (fun i -> touch_instr t i) (Ir.Func.block t.f b).Ir.Func.instrs

let touch_block_phis t b =
  Array.iter (fun i -> touch_instr t i) (Ir.Func.phis_of_block t.f b)

(* Touch everything downstream of block [d] in RPO (practical variant's
   conservative approximation of dominated-by / postdominates, Figure 5). *)
let touch_downstream_rpo t d =
  let dn = t.rpo.Analysis.Rpo.number.(d) in
  if dn >= 0 then
    Array.iteri
      (fun n b ->
        if n >= dn then begin
          touch_block t b;
          touch_block_instrs t b
        end)
      t.rpo.Analysis.Rpo.order

(* Complete variant (Figure 5): touch instructions of blocks dominated by
   [d] (in the reachable dominator tree) and blocks that postdominate [d]. *)
let touch_dominated_and_postdominating t d =
  for b = 0 to Ir.Func.num_blocks t.f - 1 do
    if Analysis.Inc_dom.dominates t.inc_dom d b then touch_block_instrs t b;
    if Analysis.Postdom.postdominates t.pdom b d then touch_block t b
  done

let propagate_change_in_edge t e =
  let d = (Ir.Func.edge t.f e).Ir.Func.dst in
  match t.config.Config.variant with
  | Config.Complete -> touch_dominated_and_postdominating t d
  | Config.Practical -> touch_downstream_rpo t d

(* ---------------- congruence classes ---------------- *)

let new_class t leader expr =
  let cid = Util.Vec.length t.classes in
  let c =
    {
      cid;
      head = -1;
      size = 0;
      leader;
      expr;
      in_table = false;
      eq_operands = 0;
      cmp_operands = 0;
    }
  in
  Util.Vec.push t.classes c;
  c

(* Unlink [v] from its current class (does not update CLASS). *)
let unlink t v =
  let c = cls t t.class_of.(v) in
  let nx = t.next_member.(v) and pv = t.prev_member.(v) in
  if pv >= 0 then t.next_member.(pv) <- nx else c.head <- nx;
  if nx >= 0 then t.prev_member.(nx) <- pv;
  t.next_member.(v) <- -1;
  t.prev_member.(v) <- -1;
  c.size <- c.size - 1;
  if t.is_eq_operand.(v) then c.eq_operands <- c.eq_operands - 1;
  if t.is_cmp_operand.(v) then c.cmp_operands <- c.cmp_operands - 1

let link t v c =
  t.next_member.(v) <- c.head;
  if c.head >= 0 then t.prev_member.(c.head) <- v;
  t.prev_member.(v) <- -1;
  c.head <- v;
  c.size <- c.size + 1;
  t.class_of.(v) <- c.cid;
  if t.is_eq_operand.(v) then c.eq_operands <- c.eq_operands + 1;
  if t.is_cmp_operand.(v) then c.cmp_operands <- c.cmp_operands + 1

let iter_members t c g =
  let rec go v =
    if v >= 0 then begin
      let nx = t.next_member.(v) in
      g v;
      go nx
    end
  in
  go c.head

(* ---------------- reachability ---------------- *)

let edge_reachable t e = t.reach_edge.(e)
let block_reachable t b = t.reach_block.(b)

let reachable_in_edges t b =
  Array.to_list (Ir.Func.block t.f b).Ir.Func.preds |> List.filter (fun e -> t.reach_edge.(e))

(* The single reachable incoming edge of [b], if there is exactly one.
   Allocation-free: this sits under the dominator walk of every inference
   query, so it must not build the intermediate edge list. *)
let sole_reachable_in_edge t b =
  let preds = (Ir.Func.block t.f b).Ir.Func.preds in
  let n = Array.length preds in
  let rec go i found =
    if i >= n then found
    else
      let e = Array.unsafe_get preds i in
      if t.reach_edge.(e) then if found >= 0 then -2 else go (i + 1) e
      else go (i + 1) found
  in
  let e = go 0 (-1) in
  if e >= 0 then Some e else None

let has_incoming_back_edge t b =
  Array.exists (fun e -> t.backward.(e)) (Ir.Func.block t.f b).Ir.Func.preds

(* φ-predication (paper §2.8, Figure 8): the predicate of a block B with
   reachable incoming edges E1, E2, ... is P1 ∨ P2 ∨ ..., where Pi holds
   exactly when control reaches B from its immediate dominator D along Ei.
   It is computed by traversing every reachable path from D to B (B must
   postdominate D; back edges abort the computation), accumulating partial
   predicates, and recording the canonical order of B's incoming edges.

   Two φ-functions in different blocks become congruent when their blocks'
   predicates are congruent, which is what enables congruence finding across
   structurally different but logically identical conditionals.

   Predicates are hash-consed {!Hexpr} cells: {!Hexpr.pand}/{!Hexpr.por}
   flatten, sort and deduplicate at construction, so path conditions built
   through different traversal shapes land on the same cell and the
   congruence comparison is a pointer test. *)

exception Aborted

type ctx = {
  st : State.t;
  b0 : int; (* the block whose predicate is being computed *)
  d0 : int; (* its immediate dominator *)
  mutable initialized : int list; (* blocks with a live OR accumulator,
                                     kept only to clear [pp_init] at exit *)
  mutable canonical_rev : int list; (* B0's incoming edges, reverse order *)
}

let reachable_in_count st b =
  Array.fold_left
    (fun n e -> if st.State.reach_edge.(e) then n + 1 else n)
    0
    (Ir.Func.block st.State.f b).Ir.Func.preds

let reachable_out_count st b =
  Array.fold_left
    (fun n e -> if st.State.reach_edge.(e) then n + 1 else n)
    0
    (Ir.Func.block st.State.f b).Ir.Func.succs

(* Outgoing edges in canonical order (§2.8): for a conditional jump, the
   edge whose canonical predicate operator is =, < or ≤ goes first. *)
let canonical_out_edges st b =
  let succs = (Ir.Func.block st.State.f b).Ir.Func.succs in
  if Array.length succs <> 2 then Array.to_list succs
  else
    let classify e =
      match st.State.pred_edge.(e) with
      | Some p -> (
          match Hexpr.node p with
          | Hexpr.Cmp ((Ir.Types.Eq | Ir.Types.Lt | Ir.Types.Le), _, _) -> 0
          | _ -> 1)
      | None -> 1
    in
    let a = succs.(0) and b' = succs.(1) in
    if classify a <= classify b' then [ a; b' ] else [ b'; a ]

(* Conjunction: [Hexpr.pand] flattens nested conjunctions, sorts and
   deduplicates, so equal path conditions built through different traversal
   shapes are the same cell. *)
let conj st p q =
  match (p, q) with
  | None, x | x, None -> x
  | Some p, Some q -> Some (Hexpr.pand st.State.arena [ p; q ])

let rec partial ctx b (pp : Hexpr.t option) ~ignore_incoming =
  let st = ctx.st in
  st.State.stats.Run_stats.phi_predication_visits <-
    st.State.stats.Run_stats.phi_predication_visits + 1;
  let n_in = reachable_in_count st b in
  if ignore_incoming || n_in < 2 then st.State.partial_pred.(b) <- pp
  else begin
    if not st.State.pp_init.(b) then begin
      st.State.pp_init.(b) <- true;
      ctx.initialized <- b :: ctx.initialized;
      st.State.partial_ops.(b) <- [];
      st.State.partial_count.(b) <- 0;
      st.State.partial_pred.(b) <- None
    end;
    (* Accumulate this path's predicate as the next OR operand. An unknown
       (empty) path predicate makes the disjunction unusable. *)
    (match pp with
    | Some p -> st.State.partial_ops.(b) <- p :: st.State.partial_ops.(b)
    | None -> raise Aborted);
    st.State.partial_count.(b) <- st.State.partial_count.(b) + 1;
    if st.State.partial_count.(b) < n_in then raise_notrace Exit;
    (* Final arrival: the disjunction is complete; build its canonical cell
       (order-insensitive, so the accumulation order does not matter). *)
    st.State.partial_pred.(b) <-
      Some (Hexpr.por st.State.arena st.State.partial_ops.(b))
  end;
  if b <> ctx.b0 then begin
    (* Diamond shortcut: when [b] dominates its immediate postdominator,
       the interior cannot affect B0's predicate. *)
    let d = Analysis.Postdom.ipdom st.State.pdom b in
    if d >= 0 && d <> ctx.b0 && Analysis.Dom.dominates st.State.dom b d then
      descend ctx d st.State.partial_pred.(b) ~ignore_incoming:true
    else begin
      let n_out = reachable_out_count st b in
      List.iter
        (fun e ->
          if st.State.reach_edge.(e) then begin
            if st.State.backward.(e) then raise Aborted;
            let ep =
              if n_out = 1 then st.State.partial_pred.(b)
              else
                match st.State.pred_edge.(e) with
                | None -> raise Aborted (* conditional edge with unknown predicate *)
                | Some p -> conj st st.State.partial_pred.(b) (Some p)
            in
            let dst = (Ir.Func.edge st.State.f e).Ir.Func.dst in
            descend ctx dst ep ~ignore_incoming:false;
            if dst = ctx.b0 then ctx.canonical_rev <- e :: ctx.canonical_rev
          end)
        (canonical_out_edges st b)
    end
  end

and descend ctx b pp ~ignore_incoming =
  match partial ctx b pp ~ignore_incoming with () -> () | exception Exit -> ()

(* Figure 8, Compute predicate of block. Returns [true] when PREDICATE[B0]
   changed (the caller then touches B0's φ-instructions). *)
let compute_block_predicate (st : State.t) b0 =
  let d0 =
    match st.State.config.Config.variant with
    | Config.Complete -> Analysis.Inc_dom.idom st.State.inc_dom b0
    | Config.Practical -> st.State.dom.Analysis.Dom.idom.(b0)
  in
  if d0 < 0 then false
  else if not (Analysis.Postdom.postdominates st.State.pdom b0 d0) then false
  else begin
    let ctx = { st; b0; d0; initialized = []; canonical_rev = [] } in
    let result =
      match descend ctx d0 None ~ignore_incoming:true with
      | () -> (
          (* The traversal is complete only if it reached B0 at all and, at
             a join, every reachable incoming edge contributed an OR
             operand. (The canonical-edge and initialization guards keep a
             stale accumulator from a previous computation from leaking.) *)
          let n_in = reachable_in_count st b0 in
          if ctx.canonical_rev = [] then None
          else if n_in >= 2 then
            if st.State.pp_init.(b0) && st.State.partial_count.(b0) = n_in
            then
              match st.State.partial_pred.(b0) with
              | Some p -> Some (p, List.rev ctx.canonical_rev)
              | None -> None
            else None
          else
            match st.State.partial_pred.(b0) with
            | Some p when n_in = 1 -> Some (p, List.rev ctx.canonical_rev)
            | _ -> None)
      | exception Aborted -> None
    in
    (* Reset the bitset for the next computation; only blocks on the
       initialized list were touched. *)
    List.iter (fun b -> st.State.pp_init.(b) <- false) ctx.initialized;
    match result with
    | Some (pred, canonical) ->
        st.State.canonical.(b0) <- Array.of_list canonical;
        if
          not
            (Option.fold ~none:false ~some:(Hexpr.equal pred)
               st.State.pred_block.(b0))
        then begin
          st.State.pred_block.(b0) <- Some pred;
          true
        end
        else false
    | None ->
        st.State.canonical.(b0) <- [||];
        if st.State.pred_block.(b0) <> None then begin
          st.State.pred_block.(b0) <- None;
          true
        end
        else false
  end

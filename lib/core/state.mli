(** The mutable state of a GVN run: the paper's REACHABLE, TOUCHED, CHANGED,
    CLASS, LEADER, EXPRESSION, TABLE, RANK, PREDICATE, PARTIAL PREDICATE,
    CANONICAL and BACKWARD structures, implemented as §3 recommends:
    congruence classes as doubly linked lists threaded through per-value
    arrays, bit-array set membership, and touch counting so a pass stops as
    soon as nothing remains touched. *)

type leader = Lundef | Lconst of int | Lvalue of int

type cls = {
  cid : int;
  mutable head : int;  (** first member, -1 when empty *)
  mutable size : int;
  mutable leader : leader;
  mutable expr : Hexpr.t option;  (** the class's defining expression *)
  mutable in_table : bool;  (** whether [expr] is currently a TABLE key *)
  mutable eq_operands : int;
      (** members that are operands of an =/≠ test or switch scrutinees
          (§3: inference walks are skipped when zero) *)
  mutable cmp_operands : int;  (** members that are operands of any comparison *)
}

type t = {
  f : Ir.Func.t;
  config : Config.t;
  is_eq_operand : bool array;
  is_cmp_operand : bool array;
  rank : int array;  (** RANK: constants 0, values by RPO definition order *)
  class_of : int array;  (** CLASS *)
  next_member : int array;
  prev_member : int array;
  changed : bool array;  (** CHANGED *)
  classes : cls Util.Vec.t;
  arena : Hexpr.arena;
      (** the run's expression arena: one consed cell per distinct structure.
          TABLE is distributed over the cells: a consed expression's
          [Util.Hashcons.slot] holds its class id ([-1] = unbound), so a
          TABLE probe is a field read — no hashing at all. *)
  initial : int;  (** the INITIAL class id (0) *)
  reach_block : bool array;
  reach_edge : bool array;
  touched_instr : bool array;
  touched_block : bool array;
  mutable touched_count : int;
  pred_edge : Hexpr.t option array;  (** PREDICATE of edges (canonical) *)
  pred_block : Hexpr.t option array;  (** PREDICATE of blocks (φ-predication) *)
  partial_pred : Hexpr.t option array;
  partial_ops : Hexpr.t list array;  (** OR operands accumulating at a join *)
  partial_count : int array;
  pp_init : bool array;
      (** per-block bit: OR accumulator live in the current Figure 8
          computation (cleared via the traversal's initialized list) *)
  canonical : int array array;  (** CANONICAL incoming-edge order per block *)
  phi_scratch : Hexpr.t option array;
      (** per-edge φ-argument scratch for {!Driver}'s [eval_phi]; all [None]
          between evaluations *)
  rpo : Analysis.Rpo.t;
  backward : bool array;  (** BACKWARD: RPO back edges *)
  dom : Analysis.Dom.t;
  pdom : Analysis.Postdom.t;
  inc_dom : Analysis.Inc_dom.t;  (** complete variant's reachable dominator tree *)
  def_use : int array array;
  switch_default : (int * int array) option array;
      (** per edge: [Some (scrutinee, cases)] for switch default edges;
          populated only under [Config.pred_closure] *)
  stats : Run_stats.t;
  mutable rules_subject : Hexpr.t Rules.Engine.subject option;
      (** lazily built matcher view of this run's expressions (see
          {!Rewrite.subject_of}); cached here because it closes over the
          state *)
}

val create : Config.t -> Ir.Func.t -> t
(** Fresh state: all values in INITIAL with leader ⊥, nothing reachable or
    touched. *)

val cls : t -> int -> cls
val rank_of : t -> Ir.Func.value -> int

val leader_atom : t -> Ir.Func.value -> Hexpr.t option
(** The atomic expression symbolic evaluation substitutes for a value: its
    class leader. [None] while the value is still in INITIAL (⊥). *)

(** {1 TOUCHED} *)

val touch_instr : t -> int -> unit
val touch_block : t -> int -> unit
val untouch_instr : t -> int -> unit
val untouch_block : t -> int -> unit
val touch_users : t -> Ir.Func.value -> unit
val touch_block_instrs : t -> int -> unit
val touch_block_phis : t -> int -> unit

val touch_downstream_rpo : t -> int -> unit
(** The practical variant's conservative propagation (Figure 5): touch every
    block and instruction at or after the given block in RPO. *)

val touch_dominated_and_postdominating : t -> int -> unit
(** The complete variant's propagation: instructions of blocks dominated by
    the given block (reachable dominator tree), plus blocks postdominating
    it. *)

val propagate_change_in_edge : t -> int -> unit
(** Figure 5's [Propagate change in edge], per the configured variant. *)

(** {1 Congruence classes} *)

val new_class : t -> leader -> Hexpr.t option -> cls

val unlink : t -> Ir.Func.value -> unit
(** Remove from its current class (does not update CLASS). *)

val link : t -> Ir.Func.value -> cls -> unit
(** Add to a class and point CLASS at it. *)

val iter_members : t -> cls -> (Ir.Func.value -> unit) -> unit

(** {1 Reachability} *)

val edge_reachable : t -> int -> bool
val block_reachable : t -> int -> bool
val reachable_in_edges : t -> int -> int list
val sole_reachable_in_edge : t -> int -> int option
val has_incoming_back_edge : t -> int -> bool

(* The lattice-parameterized sparse engine: Wegman–Zadeck's two-worklist
   fixpoint (SSA def-use edges plus CFG-edge executability) over any
   {!Domain.TRANSFER}. Structure mirrors [Baselines.Sccp] — optimistic
   start (everything [bottom], only the entry block executable), facts only
   ever rise, φs join over executable incoming edges only, and a branch
   marks an out-edge executable only while the condition's fact leaves it
   feasible.

   Two additions over plain SCCP:

   - refinement (on by default): facts are read through the static edge
     constraints of {!Refine}, so a use guarded by [x < 10] sees the
     guarded fact even though the definition's stored fact is wider;
   - widening: at natural-loop headers (from [Analysis.Loops]) φ joins go
     through [D.widen], bounding climb height on infinite-height domains;
     a per-value fuse forces [top] if a fact still somehow keeps rising. *)

module Make (D : Domain.TRANSFER) = struct
  type result = {
    func : Ir.Func.t;
    facts : D.t array;  (** per instruction id; unrefined fact of each def *)
    block_exec : bool array;
    edge_exec : bool array;
    refinement : Refine.t option;  (** present when refinement was enabled *)
  }

  (* Updates a single fact may receive before being forced to [top]. The
     interval domain widens at loop headers, so real chains are short;
     this is a safety fuse, not a tuning knob. *)
  let fuse = 64

  let run ?obs ?(refine = true) (f : Ir.Func.t) : result =
    Obs.span_o obs ~cat:"absint" ("absint." ^ D.name ^ ".fixpoint")
    @@ fun () ->
    let t_begin = match obs with Some o -> Obs.clock o | None -> 0.0 in
    let rounds = ref 0 and ssa_steps = ref 0 and flow_steps = ref 0 in
    let ni = Ir.Func.num_instrs f in
    let facts = Array.make ni D.bottom in
    let edge_exec = Array.make (Ir.Func.num_edges f) false in
    let block_exec = Array.make (Ir.Func.num_blocks f) false in
    let refinement = if refine then Some (Refine.compute f) else None in
    let constrs_at_block b =
      match refinement with Some r -> Refine.at_block r b | None -> []
    in
    let constrs_at_edge e =
      match refinement with Some r -> Refine.at_edge f r e | None -> []
    in
    let widen_at = Array.make (Ir.Func.num_blocks f) false in
    (* Widen at every retreating-edge target: natural-loop headers plus the
       targets of irreducible retreating edges, which head a cycle even
       though they head no natural loop. *)
    List.iter
      (fun h -> widen_at.(h) <- true)
      (Analysis.Loops.widen_blocks (Analysis.Loops.forest (Analysis.Graph.of_func f)));
    let bumps = Array.make ni 0 in
    let def_use = Ir.Func.def_use f in
    let ssa_work = Queue.create () in
    let flow_work = Queue.create () in
    let raise_fact v d =
      let next = D.join facts.(v) d in
      if not (D.equal next facts.(v)) then begin
        bumps.(v) <- bumps.(v) + 1;
        facts.(v) <- (if bumps.(v) > fuse then D.top else next);
        Array.iter (fun u -> Queue.add u ssa_work) def_use.(v)
      end
    in
    let env cs v = Refine.apply D.refine cs v facts.(v) in
    let eval_instr i =
      let b = Ir.Func.block_of_instr f i in
      if block_exec.(b) then
        let cs = constrs_at_block b in
        match Ir.Func.instr f i with
        | Ir.Func.Const n -> raise_fact i (D.const n)
        | Ir.Func.Param k -> raise_fact i (D.param k)
        | Ir.Func.Opaque (tag, args) ->
            raise_fact i (D.opaque tag (Array.to_list (Array.map (env cs) args)))
        | Ir.Func.Unop (op, a) -> raise_fact i (D.unop op (a, env cs a))
        | Ir.Func.Binop (op, a, b') ->
            raise_fact i (D.binop op (a, env cs a) (b', env cs b'))
        | Ir.Func.Cmp (op, a, b') ->
            raise_fact i (D.cmp op (a, env cs a) (b', env cs b'))
        | Ir.Func.Phi args ->
            let preds = (Ir.Func.block f b).Ir.Func.preds in
            let j = ref D.bottom in
            Array.iteri
              (fun ix e ->
                if edge_exec.(e) then
                  let a = args.(ix) in
                  j := D.join !j (D.phi_arg a (env (constrs_at_edge e) a)))
              preds;
            let d = if widen_at.(b) then D.widen facts.(i) (D.join facts.(i) !j) else !j in
            raise_fact i d
        | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ | Ir.Func.Return _ -> ()
    in
    let eval_terminator b =
      let blk = Ir.Func.block f b in
      let cs = constrs_at_block b in
      let feasible d = not (D.is_bottom d) in
      match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
      | Ir.Func.Jump -> Queue.add blk.Ir.Func.succs.(0) flow_work
      | Ir.Func.Branch c ->
          let d = env cs c in
          if feasible d then begin
            if feasible (D.refine d Ir.Types.Ne 0) then
              Queue.add blk.Ir.Func.succs.(0) flow_work;
            if feasible (D.refine d Ir.Types.Eq 0) then
              Queue.add blk.Ir.Func.succs.(1) flow_work
          end
      | Ir.Func.Switch (c, cases) ->
          let d = env cs c in
          if feasible d then begin
            Array.iteri
              (fun ix case ->
                if feasible (D.refine d Ir.Types.Eq case) then
                  Queue.add blk.Ir.Func.succs.(ix) flow_work)
              cases;
            (* Case exclusions are disequalities, which bite only at
               domain boundaries — one fold is sensitive to the case
               order. Re-fold until stable: [x ∈ [3,5]] minus cases
               {4; 5; 3} needs a second round to reach ⊥. *)
            let fold_cases d =
              Array.fold_left (fun d case -> D.refine d Ir.Types.Ne case) d cases
            in
            let rec dflt_fix i d =
              let d' = fold_cases d in
              if i = 0 || D.equal d' d then d' else dflt_fix (i - 1) d'
            in
            let dflt = dflt_fix (Array.length cases) d in
            if feasible dflt then
              Queue.add blk.Ir.Func.succs.(Array.length cases) flow_work
          end
      | Ir.Func.Return _ -> ()
      | _ -> ()
    in
    block_exec.(Ir.Func.entry) <- true;
    Array.iter (fun i -> Queue.add i ssa_work) (Ir.Func.block f Ir.Func.entry).Ir.Func.instrs;
    eval_terminator Ir.Func.entry;
    while not (Queue.is_empty flow_work && Queue.is_empty ssa_work) do
      incr rounds;
      while not (Queue.is_empty flow_work) do
        incr flow_steps;
        let e = Queue.pop flow_work in
        if not edge_exec.(e) then begin
          edge_exec.(e) <- true;
          let d = (Ir.Func.edge f e).Ir.Func.dst in
          if not block_exec.(d) then begin
            block_exec.(d) <- true;
            Array.iter (fun i -> Queue.add i ssa_work) (Ir.Func.block f d).Ir.Func.instrs;
            eval_terminator d
          end
          else Array.iter (fun i -> Queue.add i ssa_work) (Ir.Func.phis_of_block f d)
        end
      done;
      while not (Queue.is_empty ssa_work) do
        incr ssa_steps;
        let i = Queue.pop ssa_work in
        let b = Ir.Func.block_of_instr f i in
        if Ir.Func.defines_value (Ir.Func.instr f i) then eval_instr i
        else if block_exec.(b) then eval_terminator b
      done
    done;
    (match obs with
    | None -> ()
    | Some o ->
        let prefix = "absint." ^ D.name in
        Obs.add o (prefix ^ ".runs") 1;
        Obs.add o (prefix ^ ".rounds") !rounds;
        Obs.add o (prefix ^ ".ssa_steps") !ssa_steps;
        Obs.add o (prefix ^ ".flow_steps") !flow_steps;
        Obs.observe_seconds o (prefix ^ ".run_ns") (Obs.clock o -. t_begin));
    { func = f; facts; block_exec; edge_exec; refinement }

  let fact res v = res.facts.(v)

  (* The fact for value [v] as seen from block [b]: the stored fact meeting
     every refinement constraint holding on entry to [b]. *)
  let env_at res b v =
    match res.refinement with
    | None -> res.facts.(v)
    | Some r -> Refine.apply D.refine (Refine.at_block r b) v res.facts.(v)

  (* Same, as seen while traversing edge [e]. *)
  let env_on_edge res e v =
    match res.refinement with
    | None -> res.facts.(v)
    | Some r -> Refine.apply D.refine (Refine.at_edge res.func r e) v res.facts.(v)
end

(* The constant/copy analysis. With [~refine:false] this is bit-for-bit
   [Baselines.Sccp] on constants and executability (see {!Konst}); with
   refinement it additionally learns constants from dominating guards. *)

include Sparse.Make (Konst)

(* Signed intervals over OCaml's native (63-bit) integers, the semantics
   [Ir.Interp] executes. A missing bound ([None]) is the corresponding
   infinity. Bound arithmetic is overflow-checked: a computation that might
   wrap drops to unbounded rather than producing a wrapped — unsound —
   bound. Division and remainder follow [Ir.Types.eval_binop]: they trap
   when the divisor is 0, so a transfer over a divisor that *must* be 0
   yields [Bot] (the instruction cannot complete normally). *)

type t = Bot | Itv of int option * int option
(* [Itv (lo, hi)]: invariant lo <= hi when both present; every [Itv] is
   nonempty. Constructors go through [make] to maintain this. *)

let name = "interval"
let bottom = Bot
let top = Itv (None, None)
let is_bottom d = d = Bot

let make lo hi =
  match (lo, hi) with
  | Some l, Some h when l > h -> Bot
  | _ -> Itv (lo, hi)

let const k = Itv (Some k, Some k)

let equal a b =
  match (a, b) with
  | Bot, Bot -> true
  | Itv (la, ha), Itv (lb, hb) -> la = lb && ha = hb
  | _ -> false

(* Bound orderings treating [None] as -∞ (for lows) or +∞ (for highs). *)
let lo_min a b =
  match (a, b) with None, _ | _, None -> None | Some x, Some y -> Some (min x y)

let hi_max a b =
  match (a, b) with None, _ | _, None -> None | Some x, Some y -> Some (max x y)

let lo_max a b =
  match (a, b) with
  | None, b -> b
  | a, None -> a
  | Some x, Some y -> Some (max x y)

let hi_min a b =
  match (a, b) with
  | None, b -> b
  | a, None -> a
  | Some x, Some y -> Some (min x y)

let join a b =
  match (a, b) with
  | Bot, d | d, Bot -> d
  | Itv (la, ha), Itv (lb, hb) -> Itv (lo_min la lb, hi_max ha hb)

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv (lb, hb) -> make (lo_max la lb) (hi_min ha hb)

(* Jump any bound the join moved to its infinity; bounds that held still
   hold. Chains stabilize after at most two widenings per value. *)
let widen old next =
  match (old, next) with
  | Bot, d -> d
  | d, Bot -> d
  | Itv (lo, ho), Itv (ln, hn) ->
      let l = if lo_min lo ln = lo then lo else None in
      let h = if hi_max ho hn = ho then ho else None in
      Itv (l, h)

let leq a b = equal (join a b) b
let mem k = function Bot -> false | Itv (lo, hi) -> lo_max lo (Some k) = Some k && hi_min hi (Some k) = Some k

let may_equal d k = mem k d
let is_const = function Itv (Some a, Some b) when a = b -> Some a | _ -> None

let pp ppf = function
  | Bot -> Fmt.string ppf "bot"
  | Itv (None, None) -> Fmt.string ppf "top"
  | Itv (lo, hi) ->
      let bound inf ppf = function
        | None -> Fmt.string ppf inf
        | Some k -> Fmt.int ppf k
      in
      Fmt.pf ppf "[%a, %a]" (bound "-inf") lo (bound "+inf") hi

(* Overflow-checked bound arithmetic: [None] both as infinity and as
   "wrapped, give up on this bound". *)
let add_b a b =
  match (a, b) with
  | Some x, Some y ->
      let s = x + y in
      if (x >= 0) = (y >= 0) && (s >= 0) <> (x >= 0) then None else Some s
  | _ -> None

let neg_b = function Some x when x <> min_int -> Some (-x) | _ -> None
let sub_b a b = add_b a (neg_b b)

(* Products stay within 63 bits when both factors are below 2^31 in
   magnitude; anything larger is conservatively unbounded. ([abs min_int]
   is negative, so it fails the comparison and lands on [None] too.) *)
let mul_b a b =
  match (a, b) with
  | Some x, Some y when abs x < 0x4000_0000 && abs y < 0x4000_0000 -> Some (x * y)
  | _ -> None

let of_bounds_checked lo hi =
  (* For checked arithmetic results, [None] means "unknown", which is only
     sound as -∞ on the low side and +∞ on the high side — which is
     exactly how [make] reads it. *)
  make lo hi

let add a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv (lb, hb) -> of_bounds_checked (add_b la lb) (add_b ha hb)

let sub a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv (lb, hb) -> of_bounds_checked (sub_b la hb) (sub_b ha lb)

let neg = function
  | Bot -> Bot
  | Itv (lo, hi) -> of_bounds_checked (neg_b hi) (neg_b lo)

let mul a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (Some la, Some ha), Itv (Some lb, Some hb) -> (
      let ps = [ mul_b (Some la) (Some lb); mul_b (Some la) (Some hb);
                 mul_b (Some ha) (Some lb); mul_b (Some ha) (Some hb) ] in
      match List.filter_map Fun.id ps with
      | [ a; b; c; d ] ->
          make (Some (min (min a b) (min c d))) (Some (max (max a b) (max c d)))
      | _ -> top)
  | Itv _, Itv _ ->
      (* An unbounded factor leaves the product unbounded unless the other
         side is exactly zero. *)
      if is_const a = Some 0 || is_const b = Some 0 then const 0 else top

(* Truncating division by a nonzero constant is monotone in the dividend
   (nondecreasing for positive divisors, nonincreasing for negative). *)
let div a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ when is_const b = Some 0 -> Bot (* traps unconditionally *)
  | Itv (la, ha), Itv _ -> (
      match is_const b with
      | Some c ->
          (* [min_int / -1] overflows the machine divide (and the trap is
             not this instruction's: the bound is just one point of the
             dividend interval); leave that bound open. *)
          let q x =
            match x with
            | Some x when not (Ir.Types.div_rem_faults x c) -> Some (x / c)
            | _ -> None
          in
          if c > 0 then make (q la) (q ha) else make (q ha) (q la)
      | None -> (
          (* |a / b| <= |a| for any nonzero b. *)
          match (la, ha) with
          | Some l, Some h ->
              let m = max (abs l) (abs h) in
              if m < 0 then top else make (Some (-m)) (Some m)
          | _ -> top))

let rem a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ when is_const b = Some 0 -> Bot
  | Itv (la, _), Itv (lb, hb) ->
      (* |a rem b| < |b|, and the result takes the dividend's sign. *)
      let mag =
        match (lb, hb) with
        | Some l, Some h ->
            let m = max (abs l) (abs h) in
            if m <= 0 then None else Some (m - 1)
        | _ -> None
      in
      let lo, hi =
        match mag with
        | Some m -> (Some (-m), Some m)
        | None -> (None, None)
      in
      let lo = if lo_max la (Some 0) = la then lo_max lo (Some 0) else lo in
      make lo hi

let logand a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv (lb, hb) -> (
      match (is_const a, is_const b) with
      | Some x, Some y -> const (x land y)
      | _ ->
          (* Masking with a nonnegative value keeps the result within it. *)
          let nonneg_hi l h = if lo_max l (Some 0) = l then h else None in
          (match (nonneg_hi la ha, nonneg_hi lb hb) with
          | Some h, Some h' -> make (Some 0) (Some (min h h'))
          | Some h, None | None, Some h -> make (Some 0) (Some h)
          | None, None -> top))

let logor_like ~f a b =
  (* For nonnegative operands, [a lor b] and [a lxor b] are both bounded by
     [a + b] (no carries) and by 0 below. *)
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv (lb, hb) -> (
      match (is_const a, is_const b) with
      | Some x, Some y -> const (f x y)
      | _ ->
          if lo_max la (Some 0) = la && lo_max lb (Some 0) = lb then
            make (Some 0) (add_b ha hb)
          else top)

let shl a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | _ -> (
      (* [lsl] wraps silently; only constant-constant is evaluated, through
         checked multiplication by 2^k. *)
      match (is_const a, is_const b) with
      | Some x, Some y -> (
          let k = y land 62 in
          match mul_b (Some x) (Some (1 lsl min k 61)) with
          | Some _ -> const (x lsl k)
          | None -> top)
      | _ -> top)

let shr a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv _ -> (
      match is_const b with
      | Some y ->
          let k = y land 62 in
          let q = function Some x -> Some (x asr k) | None -> None in
          make (q la) (q ha)
      | None ->
          (* [a asr k] lies between [min a 0] and [max a 0]. *)
          make (lo_min la (Some 0)) (hi_max ha (Some 0)))

(* Three-valued comparison: [Some b] when every pair of concrete values
   drawn from the two intervals agrees on [b]. *)
let cmp_verdict (op : Ir.Types.cmp) a b : bool option =
  match (a, b) with
  | Bot, _ | _, Bot -> None
  | Itv (la, ha), Itv (lb, hb) -> (
      let lt_always = match (ha, lb) with Some h, Some l -> h < l | _ -> false in
      let le_always = match (ha, lb) with Some h, Some l -> h <= l | _ -> false in
      let gt_always = match (la, hb) with Some l, Some h -> l > h | _ -> false in
      let ge_always = match (la, hb) with Some l, Some h -> l >= h | _ -> false in
      let verdict t f = if t then Some true else if f then Some false else None in
      match op with
      | Lt -> verdict lt_always ge_always
      | Le -> verdict le_always gt_always
      | Gt -> verdict gt_always le_always
      | Ge -> verdict ge_always lt_always
      | Eq -> (
          match (is_const a, is_const b) with
          | Some x, Some y when x = y -> Some true
          | _ -> if lt_always || gt_always then Some false else None)
      | Ne -> (
          match (is_const a, is_const b) with
          | Some x, Some y when x = y -> Some false
          | _ -> if lt_always || gt_always then Some true else None))

let of_bool = function Some true -> const 1 | Some false -> const 0 | None -> Itv (Some 0, Some 1)

(* Truthiness of a fact: branch conditions test against zero. *)
let to_bool = function
  | Bot -> None
  | d when is_const d = Some 0 -> Some false
  | d when not (mem 0 d) -> Some true
  | _ -> None

(* [x op k] as an interval constraint to meet with. [Ne] only bites at the
   boundary of an existing bound. *)
let refine d (op : Ir.Types.cmp) k =
  match op with
  | Eq -> meet d (const k)
  | Lt -> meet d (Itv (None, sub_b (Some k) (Some 1)))
  | Le -> meet d (Itv (None, Some k))
  | Gt -> meet d (Itv (add_b (Some k) (Some 1), None))
  | Ge -> meet d (Itv (Some k, None))
  | Ne -> (
      match d with
      | Bot -> Bot
      | Itv (lo, hi) ->
          if lo = Some k && hi = Some k then Bot
          else if lo = Some k then make (add_b lo (Some 1)) hi
          else if hi = Some k then make lo (sub_b hi (Some 1))
          else d)

let param _ = top
let opaque _ _ = top

let unop (op : Ir.Types.unop) ((_, a) : Ir.Func.value * t) =
  match op with
  | Neg -> neg a
  | Bnot -> sub (const (-1)) a (* lnot x = -x - 1 *)
  | Lnot -> (
      match a with
      | Bot -> Bot
      | d -> of_bool (Option.map not (to_bool d)))

let binop (op : Ir.Types.binop) ((_, a) : Ir.Func.value * t) ((_, b) : Ir.Func.value * t) =
  match op with
  | Add -> add a b
  | Sub -> sub a b
  | Mul -> mul a b
  | Div -> div a b
  | Rem -> rem a b
  | And -> logand a b
  | Or -> logor_like ~f:( lor ) a b
  | Xor -> logor_like ~f:( lxor ) a b
  | Shl -> shl a b
  | Shr -> shr a b

let cmp (op : Ir.Types.cmp) ((va, a) : Ir.Func.value * t) ((vb, b) : Ir.Func.value * t) =
  if a = Bot || b = Bot then Bot
  else if va = vb then
    (* Reflexive comparison: both sides are the same SSA value. *)
    of_bool (Some (Ir.Types.eval_cmp op 0 0 <> 0))
  else of_bool (cmp_verdict op a b)

let phi_arg (_ : Ir.Func.value) d = d

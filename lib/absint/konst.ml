(* The constant/copy lattice: Wegman–Zadeck flat constants, extended with a
   copy layer ([Copy v]: "this definition always equals value [v]").

   Constant facts are derived exactly as [Baselines.Sccp] derives them —
   fold only when every operand is a known constant, lower trapping
   divisions to [Any] — so that, refinement disabled, {!Sparse.Make} over
   this domain is bit-for-bit the SCCP baseline on constants and on
   edge/block executability. (The differential suite pins this.) Copies are
   the one addition: neutral-element identities like [x + 0] or [x lsl 0]
   produce [Copy x] where SCCP merely gives up; a copy never decides a
   branch, so executability is unaffected. *)

type t = Bot | Cst of int | Copy of Ir.Func.value | Any

let name = "const"
let bottom = Bot
let top = Any
let is_bottom d = d = Bot
let equal (a : t) (b : t) = a = b

let join a b =
  match (a, b) with
  | Bot, d | d, Bot -> d
  | Cst x, Cst y when x = y -> a
  | Copy x, Copy y when x = y -> a
  | _ -> Any

let widen = join (* finite height: ⊥ < Cst/Copy < Any *)

let pp ppf = function
  | Bot -> Fmt.string ppf "bot"
  | Cst k -> Fmt.pf ppf "const %d" k
  | Copy v -> Fmt.pf ppf "copy v%d" v
  | Any -> Fmt.string ppf "top"

let const k = Cst k
let param _ = Any
let opaque _ _ = Any

(* The fact standing for "equal to operand [v]": reuse what is known about
   [v] when that is at least as strong as a copy. *)
let copy_of v = function Bot -> Bot | Cst k -> Cst k | Copy w -> Copy w | Any -> Copy v

let unop (op : Ir.Types.unop) ((_, a) : Ir.Func.value * t) =
  match a with
  | Bot -> Bot
  | Cst x -> Cst (Ir.Types.eval_unop op x)
  | Copy _ | Any -> Any

let binop (op : Ir.Types.binop) ((va, a) : Ir.Func.value * t) ((vb, b) : Ir.Func.value * t) =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Cst x, Cst y ->
      if Ir.Types.binop_can_trap op x y then Any
      else Cst (Ir.Types.eval_binop op x y)
  | _ -> (
      (* Neutral-element identities yield copies. Nothing stronger: a
         constant here (e.g. [x * 0]) would outrun SCCP and break the
         executability agreement the differential tests rely on. *)
      let open Ir.Types in
      match (op, a, b) with
      | (Add | Or | Xor | Shl | Shr), _, Cst 0 -> copy_of va a
      | (Add | Or | Xor), Cst 0, _ -> copy_of vb b
      | Sub, _, Cst 0 -> copy_of va a
      | (Mul | Div), _, Cst 1 -> copy_of va a
      | Mul, Cst 1, _ -> copy_of vb b
      | _ -> Any)

let cmp (op : Ir.Types.cmp) ((_, a) : Ir.Func.value * t) ((_, b) : Ir.Func.value * t) =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Cst x, Cst y -> Cst (Ir.Types.eval_cmp op x y)
  | _ -> Any

(* An [Any] argument flowing through a φ is still a copy of that argument;
   two agreeing copies keep the φ a copy. *)
let phi_arg v = function Bot -> Bot | Cst k -> Cst k | Copy w -> Copy w | Any -> Copy v

let refine d (op : Ir.Types.cmp) k =
  match (d, op) with
  | Bot, _ -> Bot
  | _, Eq -> (
      match d with
      | Cst m when m <> k -> Bot
      | _ -> Cst k)
  | Cst m, _ -> if Ir.Types.eval_cmp op m k <> 0 then d else Bot
  | _ -> d

let may_equal d k =
  match d with Bot -> false | Cst m -> m = k | Copy _ | Any -> true

let is_const = function Cst k -> Some k | _ -> None

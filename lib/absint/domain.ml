(* The two functor interfaces of the sparse abstract-interpretation
   framework. [LATTICE] is the bare join-semilattice contract the property
   tests exercise; [TRANSFER] extends it with the IR's operations, and is
   what {!Sparse.Make} consumes.

   Conventions, chosen to match the paper's optimistic engines (and
   [Baselines.Sccp], modulo that module's inverted Top/Bottom naming):

   - [bottom] means "no evidence yet" — the optimistic initial fact of an
     unvisited definition. It is the identity of [join] and must propagate
     through transfer functions: an operation over a [bottom] operand is
     still unevaluated, so the result stays [bottom] (the engine will
     revisit once the operand rises). The one exception is [opaque], whose
     result never depends on its arguments.
   - [top] means "any value".
   - [widen old next] is invoked at loop headers in place of [join]; it
     must satisfy [widen old next ⊒ join old next] and guarantee that every
     chain [w0, widen w0 w1, widen (widen w0 w1) w2, …] stabilizes. Domains
     of finite height can simply alias [join].

   Transfer functions receive operands as [(value, fact)] pairs: most
   domains only look at the fact, but the value identity enables sparse
   sharpenings such as reflexive comparisons ([x == x] is 1 no matter what
   is known about [x]) and copy propagation ([x + 0] is [x] itself, not
   merely something with [x]'s fact). *)

module type LATTICE = sig
  type t

  val name : string
  val bottom : t
  val top : t
  val is_bottom : t -> bool
  val equal : t -> t -> bool
  val join : t -> t -> t
  val widen : t -> t -> t
  val pp : Format.formatter -> t -> unit
end

module type TRANSFER = sig
  include LATTICE

  val const : int -> t
  (** Fact for [Const k]. *)

  val param : int -> t
  (** Fact for [Param i]: unconstrained input. *)

  val opaque : int -> t list -> t
  (** Fact for an uninterpreted call; does not wait on [bottom] operands. *)

  val unop : Ir.Types.unop -> Ir.Func.value * t -> t
  val binop : Ir.Types.binop -> Ir.Func.value * t -> Ir.Func.value * t -> t
  val cmp : Ir.Types.cmp -> Ir.Func.value * t -> Ir.Func.value * t -> t

  val phi_arg : Ir.Func.value -> t -> t
  (** The contribution of one executable φ argument before joining. Most
      domains return the fact unchanged; constant/copy lattices may demote
      an unconstrained fact to a copy of the argument. Must preserve
      [bottom] (an unevaluated argument contributes nothing). *)

  val refine : t -> Ir.Types.cmp -> int -> t
  (** [refine d op k]: the meet of [d] with the solution set of
      [x op k] — the fact for a value known to satisfy the comparison,
      e.g. on a guarded branch edge. Must be a lower bound of [d]. *)

  val may_equal : t -> int -> bool
  (** Whether the concretization contains [k]. [bottom] contains nothing. *)

  val is_const : t -> int option
  (** [Some k] iff the concretization is exactly [{k}]. *)
end

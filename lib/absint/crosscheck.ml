(* The static GVN cross-checker: replay a finished run's claims against
   independently computed interval facts — a third correctness engine
   beside [Validate.Audit] (witness replay + concrete refutation) and
   [Validate.Equiv] (behavioral diffing), and the only one that needs no
   interpreter run: a wrong claim is refuted by abstract semantics alone.

   Claims checked, all on the *input* function the engine analyzed:

   - decided branches: a reachable block whose conditional terminator has a
     pruned out-edge claims the condition avoids that edge on every
     execution; refuted when the interval facts prove the condition takes
     exactly the pruned side.
   - predicate inferences: every True/False verdict [Infer.decide] issued
     (recorded in [Run_stats.inferences]) claims a comparison's truth at a
     block; refuted when [Itv.cmp_verdict] proves the opposite.
   - closure inferences: verdicts of the multi-fact implication closure
     (lib/pred, recorded in [Run_stats.pred_inferences]) are replayed the
     same way ("pred-vs-interval"), and additionally checked for conflicts
     against single-fact verdicts for the identical query at the identical
     block ("pred-vs-infer") — the two deciders over-approximate the same
     concrete truth, so opposite answers mean one of them lied.
   - φ block predicates: [Phipred]'s Figure 8 predicates claim to hold
     whenever control is at their block; refuted when abstract evaluation
     proves one definitely false at an executable block.
   - constants: a class with constant leader [k] claims every member
     evaluates to [k]; refuted when a member's interval excludes [k].

   Soundness discipline of the replay: both sides over-approximate, so a
   claim is flagged only when the interval semantics *definitely* refutes
   it — never on mere disagreement of precision. Claims are skipped at
   blocks the interval analysis already proved unexecutable, when a refined
   environment is bottom (the conjunction of dominating guards is already
   absurd, so the claim is vacuous), and when an operand's definition does
   not dominate the claim site (its interval does not constrain the
   hypothetical class value there). *)

type site = Sblock of int | Svalue of int

type contradiction = {
  site : site;
  claim : string;  (** what the engine asserted *)
  refutation : string;  (** the interval fact contradicting it *)
}

type report = {
  branches_checked : int;
  inferences_checked : int;
  pred_checked : int;
      (** closure-decided queries replayed against interval facts *)
  phi_preds_checked : int;
  constants_checked : int;
  precision_wins : int;
      (** edges the engine kept reachable but the interval analysis proves
          dead — informational, not an error in either direction *)
  contradictions : contradiction list;
}

let ok r = r.contradictions = []

let pp_site ppf = function
  | Sblock b -> Fmt.pf ppf "b%d" b
  | Svalue v -> Fmt.pf ppf "v%d" v

let pp_contradiction ppf c =
  Fmt.pf ppf "at %a: engine claims %s, but %s" pp_site c.site c.claim c.refutation

let pp_report ppf r =
  Fmt.pf ppf
    "crosscheck: %d branch / %d inference / %d closure / %d phi-pred / %d constant claims checked; %d contradiction(s); %d precision win(s)"
    r.branches_checked r.inferences_checked r.pred_checked r.phi_preds_checked
    r.constants_checked
    (List.length r.contradictions) r.precision_wins;
  List.iter (fun c -> Fmt.pf ppf "@.  %a" pp_contradiction c) r.contradictions

let itv_str d = Fmt.str "%a" Itv.pp d

let run ?ranges (st : Pgvn.State.t) : report =
  let f = st.Pgvn.State.f in
  let res = match ranges with Some r -> r | None -> Ranges.run f in
  let dom = Analysis.Dom.compute (Analysis.Graph.of_func f) in
  let contras = ref [] in
  let flag site claim refutation =
    contras := { site; claim; refutation } :: !contras
  in
  let env b v = Ranges.env_at res b v in

  (* --- decided branches ------------------------------------------------ *)
  let branches_checked = ref 0 in
  let check_branch (db : Pgvn.Driver.decided_branch) =
    let b = db.Pgvn.Driver.db_block in
    if res.Ranges.block_exec.(b) then begin
      let cond = env b db.Pgvn.Driver.db_cond in
      if not (Itv.is_bottom cond) then begin
        incr branches_checked;
        let cond_s = Fmt.str "v%d" db.Pgvn.Driver.db_cond in
        (match db.Pgvn.Driver.db_const with
        | Some k when not (Itv.may_equal cond k) ->
            flag (Sblock b)
              (Fmt.str "%s is the constant %d" cond_s k)
              (Fmt.str "%s ∈ %s excludes %d" cond_s (itv_str cond) k)
        | _ -> ());
        let term = Ir.Func.instr f (Ir.Func.terminator_of_block f b) in
        List.iter
          (fun e ->
            let ix = (Ir.Func.edge f e).Ir.Func.src_ix in
            match term with
            | Ir.Func.Branch _ ->
                if ix = 0 then begin
                  (* true edge pruned: the condition is claimed always 0 *)
                  if not (Itv.may_equal cond 0) then
                    flag (Sblock b)
                      (Fmt.str "%s is always 0 (true edge pruned)" cond_s)
                      (Fmt.str "%s ∈ %s excludes 0" cond_s (itv_str cond))
                end
                else if Itv.is_const cond = Some 0 then
                  flag (Sblock b)
                    (Fmt.str "%s is never 0 (false edge pruned)" cond_s)
                    (Fmt.str "%s is exactly 0" cond_s)
            | Ir.Func.Switch (_, cases) ->
                if ix < Array.length cases then begin
                  if Itv.is_const cond = Some cases.(ix) then
                    flag (Sblock b)
                      (Fmt.str "%s never equals case %d (edge pruned)" cond_s cases.(ix))
                      (Fmt.str "%s is exactly %d" cond_s cases.(ix))
                end
                else if Array.for_all (fun k -> not (Itv.may_equal cond k)) cases then
                  flag (Sblock b)
                    (Fmt.str "%s always matches a case (default pruned)" cond_s)
                    (Fmt.str "%s ∈ %s excludes every case" cond_s (itv_str cond))
            | _ -> ())
          db.Pgvn.Driver.db_pruned
      end
    end
  in
  List.iter check_branch (Pgvn.Driver.decided_branches st);

  (* --- recorded predicate inferences ----------------------------------- *)
  let inferences_checked = ref 0 in
  let atom_itv b = function
    | Pgvn.Run_stats.Aconst k -> Some (Itv.const k)
    | Pgvn.Run_stats.Avalue v ->
        (* The leader's interval only constrains the class's value at [b]
           when its definition is guaranteed computed there. *)
        if Analysis.Dom.dominates dom (Ir.Func.block_of_instr f v) b then Some (env b v)
        else None
  in
  let atom_str = function
    | Pgvn.Run_stats.Aconst k -> string_of_int k
    | Pgvn.Run_stats.Avalue v -> Fmt.str "v%d" v
  in
  let check_inference (inf : Pgvn.Run_stats.inference) =
    let b = inf.Pgvn.Run_stats.inf_block in
    if res.Ranges.block_exec.(b) then
      match (atom_itv b inf.Pgvn.Run_stats.inf_a, atom_itv b inf.Pgvn.Run_stats.inf_b) with
      | Some ia, Some ib when not (Itv.is_bottom ia || Itv.is_bottom ib) -> (
          incr inferences_checked;
          let verdict = inf.Pgvn.Run_stats.inf_verdict in
          match Itv.cmp_verdict inf.Pgvn.Run_stats.inf_op ia ib with
          | Some v when v <> verdict ->
              flag (Sblock b)
                (Fmt.str "%s %s %s is %b (from the predicate of edge e%d)"
                   (atom_str inf.Pgvn.Run_stats.inf_a)
                   (Ir.Types.string_of_cmp inf.Pgvn.Run_stats.inf_op)
                   (atom_str inf.Pgvn.Run_stats.inf_b)
                   verdict inf.Pgvn.Run_stats.inf_edge)
                (Fmt.str "intervals %s and %s prove it %b" (itv_str ia) (itv_str ib)
                   (not verdict))
          | _ -> ())
      | _ -> ()
  in
  List.iter check_inference st.Pgvn.State.stats.Pgvn.Run_stats.inferences;

  (* --- closure-decided predicate inferences ------------------------------ *)
  (* Same replay discipline as single-fact inferences. Contradictions carry
     pinned ids: "pred-vs-interval" for an interval refutation,
     "pred-vs-infer" for a verdict conflicting with a single-fact claim on
     the identical query at the identical block. *)
  let pred_checked = ref 0 in
  let check_pred_inference (pi : Pgvn.Run_stats.pred_inference) =
    let b = pi.Pgvn.Run_stats.pinf_block in
    if res.Ranges.block_exec.(b) then begin
      let verdict = pi.Pgvn.Run_stats.pinf_verdict in
      let query_s =
        Fmt.str "%s %s %s"
          (atom_str pi.Pgvn.Run_stats.pinf_a)
          (Ir.Types.string_of_cmp pi.Pgvn.Run_stats.pinf_op)
          (atom_str pi.Pgvn.Run_stats.pinf_b)
      in
      (match (atom_itv b pi.Pgvn.Run_stats.pinf_a, atom_itv b pi.Pgvn.Run_stats.pinf_b) with
      | Some ia, Some ib when not (Itv.is_bottom ia || Itv.is_bottom ib) -> (
          incr pred_checked;
          match Itv.cmp_verdict pi.Pgvn.Run_stats.pinf_op ia ib with
          | Some v when v <> verdict ->
              flag (Sblock b)
                (Fmt.str "%s is %b (multi-fact closure)" query_s verdict)
                (Fmt.str "[pred-vs-interval] intervals %s and %s prove it %b" (itv_str ia)
                   (itv_str ib) (not verdict))
          | _ -> ())
      | _ -> ());
      List.iter
        (fun (inf : Pgvn.Run_stats.inference) ->
          if
            inf.Pgvn.Run_stats.inf_block = b
            && inf.Pgvn.Run_stats.inf_op = pi.Pgvn.Run_stats.pinf_op
            && inf.Pgvn.Run_stats.inf_a = pi.Pgvn.Run_stats.pinf_a
            && inf.Pgvn.Run_stats.inf_b = pi.Pgvn.Run_stats.pinf_b
            && inf.Pgvn.Run_stats.inf_verdict <> verdict
          then
            flag (Sblock b)
              (Fmt.str "%s is %b (multi-fact closure)" query_s verdict)
              (Fmt.str "[pred-vs-infer] the single-fact walk decided it %b via edge e%d"
                 (not verdict) inf.Pgvn.Run_stats.inf_edge))
        st.Pgvn.State.stats.Pgvn.Run_stats.inferences
    end
  in
  List.iter check_pred_inference st.Pgvn.State.stats.Pgvn.Run_stats.pred_inferences;

  (* --- φ block predicates ----------------------------------------------- *)
  (* Three-valued abstract evaluation of a predicate expression at a block:
     [Some b] only when every consistent concrete state agrees on [b]. *)
  let atom_of_hexpr b a =
    match Pgvn.Hexpr.node a with
    | Pgvn.Hexpr.Const k -> Some (Itv.const k)
    | Pgvn.Hexpr.Value v ->
        if Analysis.Dom.dominates dom (Ir.Func.block_of_instr f v) b then Some (env b v)
        else None
    | _ -> None
  in
  let rec eval_pred b (p : Pgvn.Hexpr.t) : bool option =
    match Pgvn.Hexpr.node p with
    | Pgvn.Hexpr.Const k -> Some (k <> 0)
    | Pgvn.Hexpr.Value v ->
        if Analysis.Dom.dominates dom (Ir.Func.block_of_instr f v) b then
          Itv.to_bool (env b v)
        else None
    | Pgvn.Hexpr.Cmp (op, x, y) -> (
        match (atom_of_hexpr b x, atom_of_hexpr b y) with
        | Some a, Some a' when not (Itv.is_bottom a || Itv.is_bottom a') ->
            Itv.cmp_verdict op a a'
        | _ -> None)
    | Pgvn.Hexpr.Pand l ->
        let vs = List.map (eval_pred b) l in
        if List.exists (( = ) (Some false)) vs then Some false
        else if List.for_all (( = ) (Some true)) vs then Some true
        else None
    | Pgvn.Hexpr.Por l ->
        let vs = List.map (eval_pred b) l in
        if List.exists (( = ) (Some true)) vs then Some true
        else if List.for_all (( = ) (Some false)) vs then Some false
        else None
    | _ -> None
  in
  let phi_preds_checked = ref 0 in
  Array.iteri
    (fun b p ->
      match p with
      | Some p when res.Ranges.block_exec.(b) && st.Pgvn.State.reach_block.(b) -> (
          incr phi_preds_checked;
          match eval_pred b p with
          | Some false ->
              flag (Sblock b) "its φ block predicate holds here"
                "abstract evaluation proves the predicate definitely false"
          | _ -> ())
      | _ -> ())
    st.Pgvn.State.pred_block;

  (* --- constants -------------------------------------------------------- *)
  let constants_checked = ref 0 in
  for v = 0 to Ir.Func.num_instrs f - 1 do
    if Ir.Func.defines_value (Ir.Func.instr f v) && not (Pgvn.Driver.value_unreachable st v)
    then
      match Pgvn.Driver.value_constant st v with
      | Some k ->
          let d = res.Ranges.facts.(v) in
          if not (Itv.is_bottom d) then begin
            incr constants_checked;
            if not (Itv.may_equal d k) then
              flag (Svalue v)
                (Fmt.str "v%d is congruent to the constant %d" v k)
                (Fmt.str "v%d ∈ %s excludes %d" v (itv_str d) k)
          end
      | None -> ()
  done;

  (* --- precision accounting --------------------------------------------- *)
  let precision_wins = ref 0 in
  Array.iteri
    (fun e engine_reach ->
      if engine_reach && not res.Ranges.edge_exec.(e) then incr precision_wins)
    st.Pgvn.State.reach_edge;

  {
    branches_checked = !branches_checked;
    inferences_checked = !inferences_checked;
    pred_checked = !pred_checked;
    phi_preds_checked = !phi_preds_checked;
    constants_checked = !constants_checked;
    precision_wins = !precision_wins;
    contradictions = List.rev !contras;
  }

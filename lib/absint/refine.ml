(* Branch-predicate refinement: the static mirror of the paper's predicate
   inference. Each CFG edge carries *structural* constraints of the shape
   [value op constant], derived syntactically from the terminator that
   creates it: the true edge of [branch c] asserts [c ≠ 0] (or [c = 1]
   when [c] is a comparison), and when [c] is [a < k] it also asserts
   [a < k] itself; [Lnot] chains flip polarity; switch edges pin (or
   exclude) the scrutinee's cases.

   A block with a single predecessor edge inherits that edge's constraints,
   and — by induction along the dominator tree — the constraints of every
   single-predecessor ancestor. The constraints are purely syntactic, so
   they are computed once up front; the sparse engine's fixpoint stays
   monotone because refinement never depends on evolving facts or on
   executability. *)

type constr = { cval : Ir.Func.value; cop : Ir.Types.cmp; ck : int }

type t = {
  edges : constr list array;  (** per edge: holds whenever the edge runs *)
  blocks : constr list array;  (** per block: holds on entry *)
}

let pp_constr ppf { cval; cop; ck } =
  Fmt.pf ppf "v%d %s %d" cval (Ir.Types.string_of_cmp cop) ck

(* Constraints from "value [v] is truthy/zero". Comparisons and logical
   negations produce exactly 0 or 1, pinning the value itself; other
   truthy values are merely nonzero. *)
let rec derive (f : Ir.Func.t) acc v truth =
  match Ir.Func.instr f v with
  | Ir.Func.Cmp (op, a, b) ->
      let acc = { cval = v; cop = Ir.Types.Eq; ck = (if truth then 1 else 0) } :: acc in
      let op = if truth then op else Ir.Types.negate_cmp op in
      let acc =
        match Ir.Func.instr f b with
        | Ir.Func.Const k -> { cval = a; cop = op; ck = k } :: acc
        | _ -> acc
      in
      let acc =
        match Ir.Func.instr f a with
        | Ir.Func.Const k -> { cval = b; cop = Ir.Types.swap_cmp op; ck = k } :: acc
        | _ -> acc
      in
      acc
  | Ir.Func.Unop (Ir.Types.Lnot, x) ->
      let acc = { cval = v; cop = Ir.Types.Eq; ck = (if truth then 1 else 0) } :: acc in
      derive f acc x (not truth)
  | _ ->
      if truth then { cval = v; cop = Ir.Types.Ne; ck = 0 } :: acc
      else { cval = v; cop = Ir.Types.Eq; ck = 0 } :: acc

let edge_constraints (f : Ir.Func.t) (e : int) : constr list =
  let edge = f.Ir.Func.edges.(e) in
  match Ir.Func.instr f (Ir.Func.terminator_of_block f edge.Ir.Func.src) with
  | Ir.Func.Branch c -> derive f [] c (edge.Ir.Func.src_ix = 0)
  | Ir.Func.Switch (c, cases) ->
      if edge.Ir.Func.src_ix < Array.length cases then
        [ { cval = c; cop = Ir.Types.Eq; ck = cases.(edge.Ir.Func.src_ix) } ]
      else
        (* The default edge excludes every case. *)
        Array.to_list (Array.map (fun k -> { cval = c; cop = Ir.Types.Ne; ck = k }) cases)
  | _ -> []

let compute (f : Ir.Func.t) : t =
  let nb = Array.length f.Ir.Func.blocks in
  let edges = Array.init (Array.length f.Ir.Func.edges) (edge_constraints f) in
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let blocks = Array.make nb [] in
  let visited = Array.make nb false in
  (* Entry constraints of a block: its sole incoming edge's constraints (if
     it has exactly one), chained with the immediate dominator's. The idom
     walk bottoms out at the entry block (or at unreachable blocks, which
     keep no chain). *)
  let rec at_block b =
    if visited.(b) then blocks.(b)
    else begin
      visited.(b) <- true;
      let own =
        match f.Ir.Func.blocks.(b).Ir.Func.preds with
        | [| e |] -> edges.(e)
        | _ -> []
      in
      let inherited =
        let d = dom.Analysis.Dom.idom.(b) in
        if d >= 0 && d <> b then at_block d else []
      in
      blocks.(b) <- own @ inherited;
      blocks.(b)
    end
  in
  for b = 0 to nb - 1 do
    ignore (at_block b)
  done;
  { edges; blocks }

let at_block t b = t.blocks.(b)
let at_edge (f : Ir.Func.t) t e = t.edges.(e) @ t.blocks.(f.Ir.Func.edges.(e).Ir.Func.src)

(* Fold a constraint list over a domain's [refine] for one value.

   A single pass is order-sensitive: disequalities bite only at interval
   boundaries, so [x ≠ 3] refines nothing before [x > 2] arrives but
   sharpens [3,∞) to [4,∞) after it. The dominator-chain order of [cs] is
   structural, not semantic, so iterate to a bounded fixpoint instead:
   ordered bounds and equalities are idempotent and each disequality can
   bite at most twice (once per boundary), so [2n + 1] passes over [n]
   relevant constraints provably stabilize any reductive [refine]. *)
let apply (type d) (refine : d -> Ir.Types.cmp -> int -> d) (cs : constr list)
    (v : Ir.Func.value) (d : d) : d =
  let rel = List.filter (fun c -> c.cval = v) cs in
  match rel with
  | [] -> d
  | [ c ] -> refine d c.cop c.ck
  | _ ->
      let pass d = List.fold_left (fun d c -> refine d c.cop c.ck) d rel in
      let rec go i d = if i = 0 then d else go (i - 1) (pass d) in
      go ((2 * List.length rel) + 1) d

(* Front door of the sparse abstract-interpretation framework (the static
   analysis layer beside lib/check's structural verifier and lib/validate's
   dynamic translation validation):

   - {!Domain}: the [LATTICE]/[TRANSFER] functor contracts;
   - {!Sparse}: the Wegman–Zadeck-style two-worklist engine;
   - {!Itv}/{!Ranges}: signed intervals with widening at loop headers;
   - {!Konst}/{!Consts}: SCCP constants extended with copies;
   - {!Refine}: structural branch-predicate refinement on CFG edges;
   - {!Crosscheck}: static replay of a GVN run's decided branches and
     φ-predicate inferences against interval facts. *)

module Domain = Domain
module Itv = Itv
module Konst = Konst
module Refine = Refine
module Sparse = Sparse
module Ranges = Ranges
module Consts = Consts
module Crosscheck = Crosscheck

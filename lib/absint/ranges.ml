(* The signed-interval analysis, as a concrete module so every consumer
   (lints, cross-checker, CLI dump, tests) shares one functor application —
   and therefore one [result] type. *)

include Sparse.Make (Itv)

(* Generic hash-consing arenas. Strong (non-weak) tables: an arena is meant
   to be scoped to one run or pass and dropped wholesale, which keeps the
   implementation portable across OCaml 4.14/5.x and makes [stats] exact.

   The bucket table is hand-rolled rather than a [Hashtbl.Make] instance so
   that interning hashes a node exactly once — the computed key is stored
   in the cell and compared before [H.equal] on every chain step, which is
   what makes the intern fast path cheap enough to sit on the expression
   constructors of the GVN inner loop. *)

type 'a consed = { node : 'a; tag : int; hkey : int; mutable slot : int }

let slot c = c.slot
let set_slot c v = c.slot <- v

type stats = {
  live : int;
  buckets : int;
  max_chain : int;
  interned : int;
  hits : int;
}

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (H : HashedType) = struct
  type arena = {
    mutable buckets : H.t consed list array; (* length always a power of two *)
    mutable live : int;
    mutable next_tag : int;
    mutable hits : int;
  }

  let create ?(size = 256) () =
    let rec pow2 k = if k >= size || k >= 1 lsl 20 then k else pow2 (2 * k) in
    { buckets = Array.make (pow2 16) []; live = 0; next_tag = 0; hits = 0 }

  let resize a =
    let old = a.buckets in
    let n = 2 * Array.length old in
    let nb = Array.make n [] in
    let mask = n - 1 in
    Array.iter
      (fun chain ->
        List.iter
          (fun c ->
            let i = c.hkey land mask in
            nb.(i) <- c :: nb.(i))
          chain)
      old;
    a.buckets <- nb

  let hashcons a node =
    let h = H.hash node land max_int in
    let i = h land (Array.length a.buckets - 1) in
    let rec find = function
      | c :: rest ->
          if c.hkey = h && H.equal c.node node then begin
            a.hits <- a.hits + 1;
            c
          end
          else find rest
      | [] ->
          let c = { node; tag = a.next_tag; hkey = h; slot = -1 } in
          a.next_tag <- a.next_tag + 1;
          a.buckets.(i) <- c :: a.buckets.(i);
          a.live <- a.live + 1;
          if a.live > 2 * Array.length a.buckets then resize a;
          c
    in
    find a.buckets.(i)

  let stats a =
    let max_chain =
      Array.fold_left (fun m chain -> max m (List.length chain)) 0 a.buckets
    in
    {
      live = a.live;
      buckets = Array.length a.buckets;
      max_chain;
      interned = a.next_tag;
      hits = a.hits;
    }

  module Tbl = Hashtbl.Make (struct
    type t = H.t consed

    let equal = ( == )
    let hash c = c.tag
  end)
end

(** Generic hash-consing arenas (Filliâtre-style, strong tables).

    [hashcons] interns a node: structurally equal nodes map to one shared
    cell, so downstream equality is physical ([==]) or [tag] comparison and
    downstream hashing is O(1) via the precomputed [hkey] (or the [tag]
    itself). Arenas are strong and scoped: create one per run/pass and drop
    it when done — nothing is retained globally.

    The intended idiom for recursive node types is maximal sharing: a
    node's children are already-consed cells, so the shallow [hash]/[equal]
    the functor receives cost O(arity), and every deeper probe is O(1). *)

type 'a consed = private { node : 'a; tag : int; hkey : int; mutable slot : int }
(** A consed cell: [tag] is unique per structurally distinct node within
    its arena (dense, allocation-ordered); [hkey] is the node's hash,
    computed once at interning time. [slot] is one client-owned int of
    scratch, [-1] at interning time: because the cell for an expression is
    unique, an [expression -> int] table over consed cells can be this
    field — a probe is a load, no hashing at all. One owner per arena. *)

val slot : 'a consed -> int
(** The client scratch slot ([-1] until set). *)

val set_slot : 'a consed -> int -> unit
(** Write the client scratch slot. The cell is shared by every holder of
    the structurally equal expression, so only one table abstraction per
    arena may use it. *)

type stats = {
  live : int;  (** distinct nodes interned and still in the arena *)
  buckets : int;  (** arena hash-table buckets *)
  max_chain : int;  (** longest arena bucket chain *)
  interned : int;  (** total distinct nodes ever interned *)
  hits : int;  (** probes answered by an existing cell *)
}

module type HashedType = sig
  type t

  val equal : t -> t -> bool
  val hash : t -> int
end

module Make (H : HashedType) : sig
  type arena

  val create : ?size:int -> unit -> arena
  val hashcons : arena -> H.t -> H.t consed
  (** The unique cell for this node: physical equality of results is
      structural equality of arguments (within one arena). *)

  val stats : arena -> stats

  module Tbl : Hashtbl.S with type key = H.t consed
  (** Tables keyed by consed cells: O(1) tag hashing, [==] equality. The
      table holds its key cells strongly, so entries never dangle. *)
end

(** Content-addressed result cache for the compilation service (ROADMAP
    item 1): results are keyed by a canonical structural hash of the input
    routine, so the same routine — under any block numbering the canonical
    traversal erases — is compiled once and answered from cache thereafter.

    {2 Keys}

    A {!key} is the pair of a 63-bit structural hash and the canonical
    form it was computed from. The canonical form renumbers blocks in
    reverse post-order from the entry and values densely in traversal
    order, and sorts φ arguments by their canonical carrying edge — so two
    routines that differ only in block layout (and in the value/block ids
    that layout induces) canonicalize identically, while anything
    semantically visible (operator, operand structure, successor order,
    parameter count, routine name) is preserved verbatim. Lookups are
    verify-on-hit: the stored canonical form is compared byte-for-byte
    before an entry is answered, so a structural-hash collision degrades
    to a miss, never to a wrong answer.

    Results are opaque strings chosen by the client (the driver caches the
    routine's full rendered output plus its failure bit). A client whose
    result depends on anything beyond the routine body — configuration,
    flags — must fold a fingerprint of that context into the key via
    [key_of ~fingerprint].

    {2 Tiers}

    The in-memory tier is a mutex-protected table safe for concurrent
    pool workers, bounded by [capacity] entries with oldest-first
    eviction. The optional persisted tier is a versioned file ({!save} /
    {!load}); a missing, truncated or corrupted file loads as a cold
    cache — persistence failures can cost a recompile, never an error.

    Hit/miss/eviction totals are exposed as {!stats} and, when an [?obs]
    context is supplied, as the [ccache.hits] / [ccache.misses] /
    [ccache.evictions] counters. *)

type key = { khash : int; kcanon : string }

val key_of : ?fingerprint:string -> Ir.Func.t -> key
(** The canonical structural key of a routine. [fingerprint] (default
    [""]) is folded into the canonical form — pass an encoding of every
    configuration bit the cached result depends on. *)

val canonical_form : ?fingerprint:string -> Ir.Func.t -> string
(** The canonical form [key_of] hashes, exposed for tests and debugging. *)

type t

type stats = { entries : int; hits : int; misses : int; evictions : int }

val create : ?capacity:int -> unit -> t
(** [capacity] bounds the entry count (default 4096, clamped to >= 1);
    inserting past it evicts oldest-first. *)

val find : ?obs:Obs.t -> t -> key -> string option
(** Verify-on-hit lookup: [Some] only when an entry's canonical form
    matches [key.kcanon] exactly. Counts one hit or one miss. *)

val add : ?obs:Obs.t -> t -> key -> string -> unit
(** Insert (or overwrite) the result for [key], evicting the oldest entry
    when over capacity. *)

val stats : t -> stats

val save : t -> string -> unit
(** Write the persisted tier (versioned format, atomic rename). I/O errors
    are swallowed: persistence is best-effort by design. *)

val load : ?capacity:int -> string -> t
(** Load a persisted tier. A missing, unreadable, version-mismatched or
    corrupted file yields an empty (cold) cache — never an exception. *)

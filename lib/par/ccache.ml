(* See ccache.mli. The canonical form is a plain text rendering of the
   routine under a layout-erasing renumbering: blocks in reverse post-order
   from the entry (unreachable blocks appended in original-id order, so the
   whole routine is covered and canonicalization stays conservative there),
   values densely renumbered in that traversal, φ arguments sorted by their
   canonical carrying edge. Everything semantically visible — operators,
   successor order (Branch true/false, Switch case order), parameter count,
   routine name, the caller's fingerprint — is rendered verbatim, so equal
   canonical forms really are the same compilation problem. *)

type key = { khash : int; kcanon : string }

(* ------------------------------------------------------------------ *)
(* Canonicalization. *)

let canonical_form ?(fingerprint = "") (f : Ir.Func.t) =
  let open Ir.Func in
  let rpo = Analysis.Rpo.compute (Analysis.Graph.of_func f) in
  let nb = num_blocks f in
  (* canonical block order: RPO, then unreachable blocks by original id *)
  let order = Array.make nb (-1) in
  let k = ref 0 in
  Array.iter
    (fun b ->
      order.(!k) <- b;
      incr k)
    rpo.order;
  for b = 0 to nb - 1 do
    if rpo.number.(b) < 0 then begin
      order.(!k) <- b;
      incr k
    end
  done;
  let blk_canon = Array.make nb (-1) in
  Array.iteri (fun ci b -> blk_canon.(b) <- ci) order;
  (* dense value renumbering in canonical traversal order *)
  let val_canon = Array.make (num_instrs f) (-1) in
  let next = ref 0 in
  Array.iter
    (fun b ->
      Array.iter
        (fun i ->
          if defines_value (instr f i) then begin
            val_canon.(i) <- !next;
            incr next
          end)
        (block f b).instrs)
    order;
  let buf = Buffer.create 1024 in
  let pr fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  pr "pgvn-key/1\n";
  pr "name=%s nparams=%d fp=%d:%s\n" f.name f.nparams (String.length fingerprint) fingerprint;
  let v id = Printf.sprintf "v%d" val_canon.(id) in
  Array.iter
    (fun b ->
      let blk = block f b in
      pr "b%d:\n" blk_canon.(b);
      Array.iter
        (fun i ->
          (match instr f i with
          | Const c -> pr "  %s = const %d" (v i) c
          | Param p -> pr "  %s = param %d" (v i) p
          | Unop (op, a) -> pr "  %s = %s %s" (v i) (Ir.Types.string_of_unop op) (v a)
          | Binop (op, a, c) ->
              pr "  %s = %s %s %s" (v i) (Ir.Types.string_of_binop op) (v a) (v c)
          | Cmp (op, a, c) -> pr "  %s = %s %s %s" (v i) (Ir.Types.string_of_cmp op) (v a) (v c)
          | Opaque (tag, args) ->
              pr "  %s = opaque %d(" (v i) tag;
              Array.iteri (fun j a -> pr "%s%s" (if j > 0 then "," else "") (v a)) args;
              pr ")"
          | Phi args ->
              (* sort φ arguments by canonical carrying edge: the incoming
                 edge's source block under the canonical numbering, tie-broken
                 by its position in that source's successor list *)
              let keyed =
                Array.mapi
                  (fun j a ->
                    let e = edge f blk.preds.(j) in
                    ((blk_canon.(e.src), e.src_ix), a))
                  args
              in
              Array.sort compare keyed;
              pr "  %s = phi [" (v i);
              Array.iteri
                (fun j ((src, ix), a) ->
                  pr "%sb%d.%d:%s" (if j > 0 then ", " else "") src ix (v a))
                keyed;
              pr "]"
          | Jump ->
              let e = edge f blk.succs.(0) in
              pr "  jump b%d" blk_canon.(e.dst)
          | Branch c ->
              let et = edge f blk.succs.(0) and ef = edge f blk.succs.(1) in
              pr "  branch %s b%d b%d" (v c) blk_canon.(et.dst) blk_canon.(ef.dst)
          | Switch (c, cases) ->
              pr "  switch %s [" (v c);
              Array.iteri
                (fun j case ->
                  let e = edge f blk.succs.(j) in
                  pr "%s%d:b%d" (if j > 0 then ", " else "") case blk_canon.(e.dst))
                cases;
              let d = edge f blk.succs.(Array.length blk.succs - 1) in
              pr "] b%d" blk_canon.(d.dst)
          | Return c -> pr "  return %s" (v c));
          pr "\n")
        blk.instrs)
    order;
  Buffer.contents buf

(* FNV-1a, folded to OCaml's 63-bit nonnegative int range. *)
let fnv1a s =
  let h = ref 0xcbf29ce484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001b3L)
    s;
  Int64.to_int !h land max_int

let key_of ?fingerprint f =
  let kcanon = canonical_form ?fingerprint f in
  { khash = fnv1a kcanon; kcanon }

(* ------------------------------------------------------------------ *)
(* In-memory tier. *)

type entry = { canon : string; mutable value : string }

type t = {
  lock : Mutex.t;
  table : (int, entry list ref) Hashtbl.t; (* hash -> bucket, collision-aware *)
  fifo : (int * string) Queue.t; (* insertion order, for eviction *)
  capacity : int;
  mutable n_entries : int;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = { entries : int; hits : int; misses : int; evictions : int }

let create ?(capacity = 4096) () =
  {
    lock = Mutex.create ();
    table = Hashtbl.create 256;
    fifo = Queue.create ();
    capacity = max 1 capacity;
    n_entries = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
  }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let count obs name = Obs.add_o obs name 1

let find ?obs t key =
  let r =
    locked t @@ fun () ->
    match Hashtbl.find_opt t.table key.khash with
    | None ->
        t.misses <- t.misses + 1;
        None
    | Some bucket -> (
        (* verify-on-hit: a hash collision must read as a miss *)
        match List.find_opt (fun e -> String.equal e.canon key.kcanon) !bucket with
        | Some e ->
            t.hits <- t.hits + 1;
            Some e.value
        | None ->
            t.misses <- t.misses + 1;
            None)
  in
  count obs (match r with Some _ -> "ccache.hits" | None -> "ccache.misses");
  r

(* Remove the oldest entry. FIFO slots can be stale (an overwritten entry
   keeps its original slot), so pop until one still resolves. *)
let evict_oldest t =
  let removed = ref false in
  while (not !removed) && not (Queue.is_empty t.fifo) do
    let h, canon = Queue.pop t.fifo in
    match Hashtbl.find_opt t.table h with
    | None -> ()
    | Some bucket ->
        let before = List.length !bucket in
        bucket := List.filter (fun e -> not (String.equal e.canon canon)) !bucket;
        if List.length !bucket < before then begin
          removed := true;
          t.n_entries <- t.n_entries - 1;
          if !bucket = [] then Hashtbl.remove t.table h
        end
  done;
  !removed

let add ?obs t key value =
  let evicted =
    locked t @@ fun () ->
    let bucket =
      match Hashtbl.find_opt t.table key.khash with
      | Some b -> b
      | None ->
          let b = ref [] in
          Hashtbl.add t.table key.khash b;
          b
    in
    (match List.find_opt (fun e -> String.equal e.canon key.kcanon) !bucket with
    | Some e -> e.value <- value (* overwrite in place; keeps its FIFO slot *)
    | None ->
        bucket := { canon = key.kcanon; value } :: !bucket;
        Queue.push (key.khash, key.kcanon) t.fifo;
        t.n_entries <- t.n_entries + 1);
    let evicted = ref 0 in
    while t.n_entries > t.capacity do
      if evict_oldest t then incr evicted else t.n_entries <- t.capacity
    done;
    t.evictions <- t.evictions + !evicted;
    !evicted
  in
  for _ = 1 to evicted do
    count obs "ccache.evictions"
  done

let stats t =
  locked t @@ fun () ->
  { entries = t.n_entries; hits = t.hits; misses = t.misses; evictions = t.evictions }

(* ------------------------------------------------------------------ *)
(* Persisted tier. Format (all counts in decimal ASCII):

     pgvn-ccache/1\n
     <n>\n
     <hash> <canon-bytes> <value-bytes>\n
     <canon><value>\n            (repeated n times)

   Loads are corruption-tolerant by contract: any read failure, bad count,
   version mismatch or short file yields a cold cache. Entries are written
   oldest-first so a reloaded cache evicts in the same order. *)

let format_version = "pgvn-ccache/1"

let save t path =
  (* snapshot under the lock, write outside it *)
  let entries =
    locked t @@ fun () ->
    Queue.fold
      (fun acc (h, canon) ->
        match Hashtbl.find_opt t.table h with
        | None -> acc
        | Some bucket -> (
            match List.find_opt (fun e -> String.equal e.canon canon) !bucket with
            | Some e -> (h, e.canon, e.value) :: acc
            | None -> acc))
      [] t.fifo
  in
  let entries = List.rev entries in
  let tmp = path ^ ".tmp" in
  try
    let oc = open_out_bin tmp in
    Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () ->
        Printf.fprintf oc "%s\n%d\n" format_version (List.length entries);
        List.iter
          (fun (h, canon, value) ->
            Printf.fprintf oc "%d %d %d\n%s%s\n" h (String.length canon) (String.length value)
              canon value)
          entries);
    Sys.rename tmp path
  with Sys_error _ -> (try Sys.remove tmp with Sys_error _ -> ())

exception Corrupt

let load ?capacity path =
  let t = create ?capacity () in
  (try
     let ic = open_in_bin path in
     Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () ->
         if input_line ic <> format_version then raise Corrupt;
         let n =
           match int_of_string_opt (input_line ic) with
           | Some n when n >= 0 -> n
           | _ -> raise Corrupt
         in
         for _ = 1 to n do
           let h, cl, vl =
             match String.split_on_char ' ' (input_line ic) with
             | [ a; b; c ] -> (
                 match (int_of_string_opt a, int_of_string_opt b, int_of_string_opt c) with
                 | Some h, Some cl, Some vl when h >= 0 && cl >= 0 && vl >= 0 -> (h, cl, vl)
                 | _ -> raise Corrupt)
             | _ -> raise Corrupt
           in
           let canon = really_input_string ic cl in
           let value = really_input_string ic vl in
           if input_char ic <> '\n' then raise Corrupt;
           let key = { khash = h; kcanon = canon } in
           if key.khash <> fnv1a canon then raise Corrupt;
           add t key value
         done)
   with Corrupt | End_of_file | Sys_error _ | Failure _ ->
     (* cold cache on any corruption: drop whatever partially loaded *)
     Hashtbl.reset t.table;
     Queue.clear t.fifo;
     t.n_entries <- 0;
     t.evictions <- 0);
  (* loading is not cache traffic: don't let partial loads skew stats *)
  t.hits <- 0;
  t.misses <- 0;
  t

(** A hand-rolled, dependency-free domain pool for embarrassingly parallel
    per-routine work (ROADMAP item 1): a fixed worker set — the calling
    domain plus [domains - 1] spawned ones — each with its own
    mutex-protected work deque, idle workers stealing from the others.

    The pool is batch-oriented: {!map} distributes one array of independent
    tasks round-robin across the worker deques, wakes the workers, joins in
    as a worker itself, and returns when every task has finished. Results
    come back in input order regardless of execution interleaving, which is
    what the parallel driver's determinism guarantee is built on.

    With [domains = 1] no domain is ever spawned and {!map} degrades to a
    plain sequential [Array.map] — the graceful fallback for single-core
    hosts and for OCaml runtimes where spawning is undesirable.

    A pool must be shut down ({!shutdown} or the {!with_pool} wrapper);
    spawned domains otherwise keep the process alive. *)

type t

val create : ?domains:int -> unit -> t
(** [domains] is the total worker count including the caller (so [n]
    domains of compute use the calling domain plus [n - 1] spawned ones);
    it defaults to {!Domain.recommended_domain_count} and is clamped to at
    least 1.
    @raise Invalid_argument when [domains < 1] is passed explicitly. *)

val size : t -> int
(** The total worker count (spawned domains + the caller). *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Apply [f] to every element, fanned out across the pool's workers;
    [map] only returns once every element has been processed, and
    [(map t f a).(i) = f a.(i)] positionally. [f] runs on an arbitrary
    domain: it must not share unsynchronized mutable state across calls.
    If one or more applications raise, the leftmost element's exception is
    re-raised in the caller after the whole batch has drained (no task is
    abandoned mid-flight).

    Only the owning (creating) domain may call [map], and batches do not
    nest: calling [map] from inside a task deadlocks. *)

val shutdown : t -> unit
(** Join the spawned domains. Idempotent; the pool must not be used
    afterwards. *)

val with_pool : ?domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] — exception-safe. *)

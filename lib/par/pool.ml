(* See pool.mli for the contract. The deques are mutex-protected rather
   than lock-free: a batch enqueues whole routines (milliseconds of work
   each), so deque traffic is cold and an uncontended lock/unlock per
   operation is noise — while the locking makes owner-pop vs thief-steal
   trivially race-free on every OCaml 5.x runtime. *)

(* ------------------------------------------------------------------ *)
(* Per-worker deque: the owner pushes and pops at the bottom (LIFO keeps
   a worker on its own cache-warm items), thieves take from the top. *)

type task = unit -> unit

module Deque = struct
  type t = {
    lock : Mutex.t;
    mutable buf : task array;
    mutable top : int; (* next steal slot: buf.(top .. bottom-1) pending *)
    mutable bottom : int;
  }

  let dummy_task () = ()

  let create () = { lock = Mutex.create (); buf = Array.make 64 dummy_task; top = 0; bottom = 0 }

  let locked d f =
    Mutex.lock d.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock d.lock) f

  let push d task =
    locked d @@ fun () ->
    let n = Array.length d.buf in
    if d.bottom = n then
      if d.top > 0 then begin
        (* compact: slide the pending window back to index 0 *)
        Array.blit d.buf d.top d.buf 0 (d.bottom - d.top);
        d.bottom <- d.bottom - d.top;
        d.top <- 0
      end
      else begin
        let bigger = Array.make (2 * n) dummy_task in
        Array.blit d.buf 0 bigger 0 n;
        d.buf <- bigger
      end;
    d.buf.(d.bottom) <- task;
    d.bottom <- d.bottom + 1

  let pop d =
    locked d @@ fun () ->
    if d.top >= d.bottom then None
    else begin
      d.bottom <- d.bottom - 1;
      let t = d.buf.(d.bottom) in
      d.buf.(d.bottom) <- dummy_task;
      Some t
    end

  let steal d =
    locked d @@ fun () ->
    if d.top >= d.bottom then None
    else begin
      let t = d.buf.(d.top) in
      d.buf.(d.top) <- dummy_task;
      d.top <- d.top + 1;
      Some t
    end
end

(* ------------------------------------------------------------------ *)

type t = {
  domains : int;
  deques : Deque.t array; (* one per worker; index 0 is the caller *)
  remaining : int Atomic.t; (* tasks of the current batch still unfinished *)
  lock : Mutex.t; (* guards [generation] and [quit] *)
  cond : Condition.t;
  mutable generation : int; (* bumped once per batch; workers sleep on it *)
  mutable quit : bool;
  mutable handles : unit Domain.t list; (* spawned workers (ids 1..n-1) *)
  mutable alive : bool;
}

let size t = t.domains

(* One task, defensively: the [map] wrappers already capture exceptions
   into the batch's error slots, so anything escaping here would be a pool
   bug — but a worker domain must never die with tasks outstanding, or the
   batch would hang. The decrement is what publishes the task's writes to
   the joining caller (Atomic gives the happens-before edge). *)
let run_task t task =
  (try task () with _ -> ());
  ignore (Atomic.fetch_and_add t.remaining (-1))

(* Work until the current batch is drained: own deque first, then steal
   round-robin. Runs on worker domains and, during [map], on the caller. *)
let drain t w =
  let n = Array.length t.deques in
  (* Spin briefly on an empty scan, then sleep: a worker with nothing left
     to steal must get off the core — on oversubscribed hosts (more domains
     than cores) pure spinning starves whoever holds the last tasks. *)
  let misses = ref 0 in
  while Atomic.get t.remaining > 0 do
    match Deque.pop t.deques.(w) with
    | Some task ->
        run_task t task;
        misses := 0
    | None ->
        let stolen = ref None in
        let i = ref 1 in
        while !stolen = None && !i < n do
          (match Deque.steal t.deques.((w + !i) mod n) with
          | Some task -> stolen := Some task
          | None -> ());
          incr i
        done;
        (match !stolen with
        | Some task ->
            run_task t task;
            misses := 0
        | None ->
            incr misses;
            if !misses < 64 then Domain.cpu_relax () else Unix.sleepf 0.0002)
  done

let worker_body t w =
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock t.lock;
    while (not t.quit) && t.generation = !last_gen do
      Condition.wait t.cond t.lock
    done;
    let gen = t.generation and quit = t.quit in
    Mutex.unlock t.lock;
    if quit then running := false
    else begin
      last_gen := gen;
      drain t w
    end
  done

let create ?domains () =
  let domains =
    match domains with
    | Some n when n < 1 -> invalid_arg "Par.Pool.create: domains must be >= 1"
    | Some n -> n
    | None -> max 1 (Domain.recommended_domain_count ())
  in
  let t =
    {
      domains;
      deques = Array.init domains (fun _ -> Deque.create ());
      remaining = Atomic.make 0;
      lock = Mutex.create ();
      cond = Condition.create ();
      generation = 0;
      quit = false;
      handles = [];
      alive = true;
    }
  in
  t.handles <- List.init (domains - 1) (fun k -> Domain.spawn (fun () -> worker_body t (k + 1)));
  t

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Mutex.lock t.lock;
    t.quit <- true;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    List.iter Domain.join t.handles;
    t.handles <- []
  end

let with_pool ?domains f =
  let t = create ?domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

let map t f arr =
  if not t.alive then invalid_arg "Par.Pool.map: pool is shut down";
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.domains = 1 then Array.map f arr (* sequential fallback *)
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    for i = 0 to n - 1 do
      let task () =
        match f arr.(i) with
        | v -> results.(i) <- Some v
        | exception e -> errors.(i) <- Some e
      in
      Deque.push t.deques.(i mod t.domains) task
    done;
    Atomic.set t.remaining n;
    Mutex.lock t.lock;
    t.generation <- t.generation + 1;
    Condition.broadcast t.cond;
    Mutex.unlock t.lock;
    drain t 0;
    (* remaining = 0: every task has run and its decrement ordered its
       writes before our read — the result slots are all published. *)
    Array.iteri (fun i e -> match e with Some exn -> raise exn | None -> ignore i) errors;
    Array.map Option.get results
  end

(* Sparse collection of the branch/switch facts established on the
   dominator-tree path to each block and edge — the syntactic mirror of the
   GVN driver's dominating-edge walk, over a routine's SSA values (terms
   are value ids; values defined as constants become [Const] terms).

   Structure (shared with [Absint.Refine], and per the per-edge conventions
   of [Core.Phipred]): an edge derives facts from the terminator that
   creates it — the true edge of [branch c] asserts [c ≠ 0] (and, when [c]
   is a comparison, the comparison itself; [Lnot] chains flip polarity), a
   switch case edge pins the scrutinee, the default edge excludes every
   case. A block with a single predecessor edge inherits that edge's facts,
   and — by induction along the dominator tree — those of every
   single-predecessor dominating ancestor.

   Soundness on concrete traces: a block's sole static in-edge is the only
   way execution can enter it, the idom chain is on every path from entry,
   and SSA values are immutable once defined — so every collected fact
   holds whenever the block (resp. edge) executes. The instrumented-
   interpreter differential in the test tier checks exactly this. *)

type t = {
  func : Ir.Func.t;
  edges : Atom.t list array;  (* facts established by traversing edge e *)
  blocks : Atom.t list array;  (* facts holding on entry to block b *)
}

(* Negations of constants fold too — the front end spells [-1] as
   [Unop (Neg, const 1)] — so guards like [d != -1] yield exact bounds.
   OCaml negation has the IR's wrapping semantics, min_int included. *)
let term_of f v =
  match Ir.Func.instr f v with
  | Ir.Func.Const k -> Atom.Const k
  | Ir.Func.Unop (Ir.Types.Neg, x) -> (
      match Ir.Func.instr f x with
      | Ir.Func.Const k -> Atom.Const (-k)
      | _ -> Atom.Term v)
  | _ -> Atom.Term v

let add acc op a b =
  match Atom.make op a b with
  | Atom.Atom at -> at :: acc
  | Atom.Triv true -> acc
  | Atom.Triv false -> Atom.never :: acc

(* Facts from "value [v] is truthy/zero" (cf. [Absint.Refine.derive]):
   comparisons and [Lnot] pin the value to 1/0 and assert (or negate) the
   underlying comparison; other truthy values are merely nonzero. *)
let rec derive f acc v truth =
  match Ir.Func.instr f v with
  | Ir.Func.Cmp (op, a, b) ->
      let acc = add acc Ir.Types.Eq (Atom.Term v) (Atom.Const (if truth then 1 else 0)) in
      let op = if truth then op else Ir.Types.negate_cmp op in
      add acc op (term_of f a) (term_of f b)
  | Ir.Func.Unop (Ir.Types.Lnot, x) ->
      let acc = add acc Ir.Types.Eq (Atom.Term v) (Atom.Const (if truth then 1 else 0)) in
      derive f acc x (not truth)
  | _ ->
      add acc (if truth then Ir.Types.Ne else Ir.Types.Eq) (term_of f v) (Atom.Const 0)

let edge_facts (f : Ir.Func.t) (e : int) : Atom.t list =
  let edge = f.Ir.Func.edges.(e) in
  match Ir.Func.instr f (Ir.Func.terminator_of_block f edge.Ir.Func.src) with
  | Ir.Func.Branch c -> derive f [] c (edge.Ir.Func.src_ix = 0)
  | Ir.Func.Switch (c, cases) ->
      if edge.Ir.Func.src_ix < Array.length cases then
        add [] Ir.Types.Eq (term_of f c) (Atom.Const cases.(edge.Ir.Func.src_ix))
      else
        (* The default edge excludes every case. *)
        Array.fold_left
          (fun acc k -> add acc Ir.Types.Ne (term_of f c) (Atom.Const k))
          [] cases
  | _ -> []

let compute (f : Ir.Func.t) : t =
  let nb = Array.length f.Ir.Func.blocks in
  let edges = Array.init (Array.length f.Ir.Func.edges) (edge_facts f) in
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let blocks = Array.make nb [] in
  let visited = Array.make nb false in
  let rec at_block b =
    if visited.(b) then blocks.(b)
    else begin
      visited.(b) <- true;
      let own =
        match f.Ir.Func.blocks.(b).Ir.Func.preds with
        | [| e |] -> edges.(e)
        | _ -> []
      in
      let inherited =
        let d = dom.Analysis.Dom.idom.(b) in
        if d >= 0 && d <> b then at_block d else []
      in
      blocks.(b) <- own @ inherited;
      blocks.(b)
    end
  in
  for b = 0 to nb - 1 do
    ignore (at_block b)
  done;
  { func = f; edges; blocks }

let at_block t b = t.blocks.(b)
let at_edge t e = t.edges.(e) @ t.blocks.(t.func.Ir.Func.edges.(e).Ir.Func.src)

let closure_at_block t b = Closure.of_facts (at_block t b)
let closure_at_edge t e = Closure.of_facts (at_edge t e)

let pp_facts ppf fs = Fmt.(list ~sep:(any " ∧ ") Atom.pp) ppf fs

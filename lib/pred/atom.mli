(** Normalized comparison atoms over opaque terms — SSA value ids in
    {!Facts}, congruence-class representatives in the GVN driver's fallback
    queries. Normalization folds trivial comparisons and orders operands
    canonically so equal facts compare equal structurally. *)

type term = Const of int | Term of int

type t = { op : Ir.Types.cmp; a : term; b : term }

type norm = Atom of t | Triv of bool  (** trivially true/false comparisons fold *)

val make : Ir.Types.cmp -> term -> term -> norm
(** Normalize [a op b]: constant–constant and reflexive comparisons
    evaluate away ([Triv]); otherwise operands are put in canonical order
    (constants first) via [swap_cmp]. *)

val never : t
(** A canonically false atom ([0 ≠ 0]); assuming it contradicts. *)

val negate : t -> t
(** The complement ([negate_cmp] on the operator; order is preserved). *)

val term_equal : term -> term -> bool
val equal : t -> t -> bool
val compare : t -> t -> int

val eval : (int -> int) -> t -> bool
(** Truth under an assignment of term ids to integers; [lookup] may raise
    [Not_found], which propagates. *)

val pp_term : Format.formatter -> term -> unit
val pp : Format.formatter -> t -> unit

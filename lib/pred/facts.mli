(** Sparse collection of branch/switch facts on the dominator-tree path to
    each block and edge, computed once, syntactically, over a routine's SSA
    values (terms are value ids). Every collected fact holds whenever the
    block (resp. edge) executes: sole static in-edges are the only entry,
    the idom chain is on every path from entry, and SSA values are
    immutable once defined. *)

type t

val compute : Ir.Func.t -> t

val term_of : Ir.Func.t -> Ir.Func.value -> Atom.term
(** The atom term naming a value: [Const k] for constant definitions
    (so the closure sees exact bounds), [Term v] otherwise. *)

val at_block : t -> int -> Atom.t list
(** Facts holding on entry to the block (and, values being immutable,
    at every point the block dominates). *)

val at_edge : t -> int -> Atom.t list
(** Facts holding whenever the edge is traversed: the edge's own facts
    plus those of its source block. *)

val edge_facts : Ir.Func.t -> int -> Atom.t list
(** Facts established by traversing one edge, from its terminator alone. *)

val closure_at_block : t -> int -> Closure.t
val closure_at_edge : t -> int -> Closure.t
(** Convenience: {!Closure.of_facts} over [at_block]/[at_edge]. *)

val pp_facts : Format.formatter -> Atom.t list -> unit

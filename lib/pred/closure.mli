(** The multi-fact decision procedure: congruence closure
    (equalities/disequalities, union-find with per-class constants)
    combined with difference-bound constraints over machine integers
    (transitivity of </≤ chains, value-vs-constant bounds, disequality
    sharpening at integer boundaries), trap-aware at [min_int]/[max_int].

    All stored bounds are upper bounds on mathematical differences, so
    dropping or weakening a bound is always sound; [True]/[False] verdicts
    hold in every model of the assumed facts. A contradictory state (the
    facts are jointly unsatisfiable — the dominated program point is
    unreachable) makes {!decide} answer [Unknown]: contradiction is
    reported via {!contradictory}, never turned into a branch verdict. *)

type t

type verdict = True | False | Unknown

val create : unit -> t
(** An empty closure (just the distinguished ZERO node). *)

val assume : t -> Atom.norm -> unit
(** Add a fact. [Triv false] (a statically false fact) contradicts. *)

val assume_atom : t -> Atom.t -> unit
val assume_all : t -> Atom.t list -> unit

val of_facts : Atom.t list -> t
(** [create] + [assume_all]. *)

val decide : t -> Ir.Types.cmp -> Atom.term -> Atom.term -> verdict
(** Truth of [x op y] in every model of the assumed facts. [Unknown] when
    undecided or when the state is contradictory. *)

val contradictory : t -> bool
(** The assumed facts are jointly unsatisfiable. *)

val size : t -> int
(** Number of interned terms (including ZERO). *)

(** {1 Test-only fault injection}

    Seeded unsound mutants for the certification tests, mirroring
    [Infer.with_fault]; domain-local. *)

type fault =
  | Force_true  (** fabricate [True] for every undecided query *)
  | Flip_verdict  (** invert [True]/[False] *)
  | Wrap_const_negate
      (** drop the [−min_int] overflow guard when interning constants,
          producing spurious contradictions on reachable paths *)

val with_fault : fault -> (unit -> 'a) -> 'a

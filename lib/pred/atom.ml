(* Normalized comparison atoms: the common currency of the implication
   engine. A term is either an integer constant or an opaque id — SSA value
   ids when the atoms come from a routine's terminators ({!Facts}),
   congruence-class ids when they come from the GVN engine's dominating-edge
   walk (where two values in one class are interchangeable by construction).

   Normalization folds constant-constant and reflexive comparisons away and
   orders the operands canonically (mirroring the engine's [cmp_atoms]), so
   structurally equal facts collide under [equal]/[compare] regardless of
   how the source spelled them. *)

type term = Const of int | Term of int

type t = { op : Ir.Types.cmp; a : term; b : term }

type norm = Atom of t | Triv of bool

let term_equal (x : term) (y : term) = x = y
let compare_term (x : term) (y : term) = Stdlib.compare x y

let make op a b : norm =
  match (a, b) with
  | Const x, Const y -> Triv (Ir.Types.eval_cmp op x y = 1)
  | _ ->
      if term_equal a b then
        Triv (match op with Ir.Types.Eq | Ir.Types.Le | Ir.Types.Ge -> true
                          | Ir.Types.Ne | Ir.Types.Lt | Ir.Types.Gt -> false)
      else if compare_term a b <= 0 then Atom { op; a; b }
      else Atom { op = Ir.Types.swap_cmp op; a = b; b = a }

(* A canonically false atom: {!Closure.assume} turns it into a
   contradiction. Used by {!Facts} to represent a statically false edge
   fact (e.g. the false edge of [branch 1]) without a separate marker. *)
let never = { op = Ir.Types.Ne; a = Const 0; b = Const 0 }

let negate { op; a; b } = { op = Ir.Types.negate_cmp op; a; b }

let equal (x : t) (y : t) = x = y
let compare (x : t) (y : t) = Stdlib.compare x y

(* Truth of the atom under an assignment of ids to integers. [lookup]
   raises [Not_found] for unassigned ids. *)
let eval lookup { op; a; b } =
  let value = function Const k -> k | Term x -> lookup x in
  Ir.Types.eval_cmp op (value a) (value b) = 1

let pp_term ppf = function
  | Const k -> Fmt.int ppf k
  | Term x -> Fmt.pf ppf "t%d" x

let pp ppf { op; a; b } =
  Fmt.pf ppf "%a %s %a" pp_term a (Ir.Types.string_of_cmp op) pp_term b

(* The multi-fact decision procedure: congruence closure over
   equalities/disequalities combined with difference-bound constraints.

   Terms are interned as nodes of a small difference-bound matrix (DBM):
   [dist.(i).(j) = w] records the derived fact [t_i − t_j ≤ w] (over the
   mathematical integers; [inf] = no bound). Every interned constant [c]
   gets exact edges against the distinguished ZERO node (the node of
   [Const 0]), so value-vs-constant bounds, constant-vs-constant ordering
   and transitivity of </≤ chains all fall out of shortest paths. Asserted
   equalities are 0-weight edges both ways plus a union-find merge (the
   union-find carries per-class constants, giving O(1) equality answers and
   immediate constant-conflict contradictions); disequalities live in a
   side list and sharpen the DBM at integer boundaries
   (x ≤ y ∧ x ≠ y ⇒ x ≤ y − 1) to a fixpoint.

   Soundness under machine arithmetic: all stored bounds are *upper* bounds
   on mathematical differences of 63-bit machine integers, so weakening is
   always sound. Path relaxation that would overflow upward stores [inf]
   (the constraint is dropped); relaxation that would underflow clamps to
   [min_int] (still an upper bound, since the true sum is even smaller).
   Trap-awareness at the domain boundary: a fact [x < min_int] or
   [x > max_int] is unsatisfiable and marks the state contradictory, while
   [x ≤ min_int] / [x ≥ max_int] strengthen to equalities.

   A contradictory state means the conjunction of assumed facts cannot hold
   — the program point they dominate is unreachable. [decide] then answers
   [Unknown]: contradiction is surfaced through {!contradictory} (feeding
   the unreachability lint and counters), never used to fabricate branch
   verdicts. *)

type verdict = True | False | Unknown

let inf = max_int

(* Sound bound addition: +∞ absorbs, overflow drops to +∞, underflow
   clamps to [min_int] (a weaker but still valid upper bound). *)
let ( +! ) a b =
  if a = inf || b = inf then inf
  else
    let s = a + b in
    if a > 0 && b > 0 && s < 0 then inf
    else if a < 0 && b < 0 && s >= 0 then min_int
    else s

type t = {
  mutable n : int;  (* interned node count *)
  terms : (Atom.term, int) Hashtbl.t;
  mutable parent : int array;  (* union-find over nodes *)
  mutable konst : int option array;  (* per root: known constant *)
  mutable dist : int array array;  (* dist.(i).(j): t_i − t_j ≤ w; [inf] = none *)
  mutable diseqs : (int * int) list;  (* asserted t_i ≠ t_j, as interned nodes *)
  mutable contradictory : bool;
}

(* ------------------------------------------------------------------ *)
(* Test-only fault injection, mirroring [Infer.with_fault]: seeded
   unsound mutants that the certification layers must each reject.
   Domain-local so a faulty closure cannot leak across domains. *)

type fault =
  | Force_true  (* Unknown verdicts become True: fabricated decisions *)
  | Flip_verdict  (* True ↔ False: inverted decisions *)
  | Wrap_const_negate
      (* negate min_int without the overflow guard when interning
         constants: spurious negative cycles, i.e. reachable paths
         claimed contradictory *)

let fault_key : fault option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let with_fault f k =
  let saved = Domain.DLS.get fault_key in
  Domain.DLS.set fault_key (Some f);
  Fun.protect ~finally:(fun () -> Domain.DLS.set fault_key saved) k

let fault_is f = Domain.DLS.get fault_key = Some f

(* ------------------------------------------------------------------ *)

let rec find t x =
  let p = t.parent.(x) in
  if p = x then x
  else begin
    let r = find t p in
    t.parent.(x) <- r;
    r
  end

let grow t =
  let cap = Array.length t.parent in
  if t.n >= cap then begin
    let cap' = max 8 (2 * cap) in
    let parent' = Array.init cap' (fun i -> if i < cap then t.parent.(i) else i) in
    let konst' = Array.make cap' None in
    Array.blit t.konst 0 konst' 0 cap;
    let dist' =
      Array.init cap' (fun i ->
          let row = Array.make cap' inf in
          if i < cap then Array.blit t.dist.(i) 0 row 0 cap;
          row.(i) <- 0;
          row)
    in
    t.parent <- parent';
    t.konst <- konst';
    t.dist <- dist'
  end

(* Add the derived bound [t_u − t_v ≤ w] and restore all-pairs shortest
   paths incrementally: any i→j path improved by the new edge goes
   i→u→v→j. O(n²) per inserted edge; n is the handful of terms a
   dominating-fact conjunction mentions. *)
let add_edge t u v w =
  if w < t.dist.(u).(v) then begin
    for i = 0 to t.n - 1 do
      let diu = t.dist.(i).(u) in
      if diu <> inf then begin
        let base = diu +! w in
        if base <> inf then
          for j = 0 to t.n - 1 do
            let dvj = t.dist.(v).(j) in
            if dvj <> inf then begin
              let cand = base +! dvj in
              if cand < t.dist.(i).(j) then t.dist.(i).(j) <- cand
            end
          done
      end
    done;
    for i = 0 to t.n - 1 do
      if t.dist.(i).(i) < 0 then t.contradictory <- true
    done
  end

let node_of t (x : Atom.term) =
  match Hashtbl.find_opt t.terms x with
  | Some n -> n
  | None ->
      grow t;
      let n = t.n in
      t.n <- t.n + 1;
      Hashtbl.add t.terms x n;
      (match x with
      | Atom.Const k ->
          t.konst.(n) <- Some k;
          (* Exact bounds against ZERO (node 0, interned at [create]):
             c − 0 ≤ k and 0 − c ≤ −k. The second is guarded: −min_int
             overflows the machine word, so that direction is dropped —
             a sound weakening. The [Wrap_const_negate] mutant skips the
             guard, wrapping −min_int back to min_int. *)
          if n > 0 then begin
            add_edge t n 0 k;
            if k <> min_int || fault_is Wrap_const_negate then add_edge t 0 n (-k)
          end
      | Atom.Term _ -> ());
      n

let create () =
  let t =
    {
      n = 0;
      terms = Hashtbl.create 16;
      parent = [||];
      konst = [||];
      dist = [||];
      diseqs = [];
      contradictory = false;
    }
  in
  ignore (node_of t (Atom.Const 0));  (* ZERO *)
  t

let contradictory t = t.contradictory

(* Two nodes proved equal: same union-find class, or 0-bounds both ways. *)
let nodes_equal t a b =
  a = b || find t a = find t b || (t.dist.(a).(b) <= 0 && t.dist.(b).(a) <= 0)

let nodes_diseq t a b =
  t.dist.(a).(b) < 0
  || t.dist.(b).(a) < 0
  || List.exists
       (fun (p, q) ->
         (nodes_equal t p a && nodes_equal t q b)
         || (nodes_equal t p b && nodes_equal t q a))
       t.diseqs

let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    let k =
      match (t.konst.(ra), t.konst.(rb)) with
      | Some x, Some y ->
          if x <> y then t.contradictory <- true;
          Some x
      | (Some _ as k), None | None, (Some _ as k) -> k
      | None, None -> None
    in
    t.parent.(rb) <- ra;
    t.konst.(ra) <- k
  end

(* Disequality sharpening, to a fixpoint: over the integers,
   x − y ≤ 0 ∧ x ≠ y ⇒ x − y ≤ −1. Together with the negative-diagonal
   check this also turns "equal ∧ disequal" into a contradiction. *)
let rec tighten t =
  if not t.contradictory then begin
    let changed = ref false in
    List.iter
      (fun (a, b) ->
        if t.dist.(a).(b) = 0 then begin
          add_edge t a b (-1);
          changed := true
        end;
        if t.dist.(b).(a) = 0 then begin
          add_edge t b a (-1);
          changed := true
        end)
      t.diseqs;
    if !changed then tighten t
  end

(* Assume [x op y], already re-oriented so a lone constant sits on the
   right. Trap-aware domain-boundary handling happens here. *)
let rec assume_oriented t op (x : Atom.term) (y : Atom.term) =
  let open Ir.Types in
  match (op, y) with
  | Lt, Atom.Const k when k = min_int -> t.contradictory <- true
  | Gt, Atom.Const k when k = max_int -> t.contradictory <- true
  | Le, Atom.Const k when k = min_int -> assume_oriented t Eq x y
  | Ge, Atom.Const k when k = max_int -> assume_oriented t Eq x y
  | _ ->
      let nx = node_of t x and ny = node_of t y in
      (match op with
      | Eq ->
          union t nx ny;
          add_edge t nx ny 0;
          add_edge t ny nx 0
      | Ne ->
          if nodes_equal t nx ny then t.contradictory <- true
          else t.diseqs <- (nx, ny) :: t.diseqs
      | Le -> add_edge t nx ny 0
      | Lt -> add_edge t nx ny (-1)
      | Ge -> add_edge t ny nx 0
      | Gt -> add_edge t ny nx (-1));
      tighten t

let assume_atom t ({ Atom.op; a; b } : Atom.t) =
  match (a, b) with
  | Atom.Const x, Atom.Const y ->
      (* [Atom.make] folds these, but raw atoms (e.g. {!Atom.never}) may
         still carry them: evaluate directly. *)
      if Ir.Types.eval_cmp op x y = 0 then t.contradictory <- true
  | Atom.Const _, _ -> assume_oriented t (Ir.Types.swap_cmp op) b a
  | _, _ -> assume_oriented t op a b

let assume t (n : Atom.norm) =
  match n with
  | Atom.Triv true -> ()
  | Atom.Triv false -> t.contradictory <- true
  | Atom.Atom a -> assume_atom t a

let assume_all t atoms = List.iter (assume_atom t) atoms

let of_facts atoms =
  let t = create () in
  assume_all t atoms;
  t

(* ------------------------------------------------------------------ *)

let apply_fault v =
  match Domain.DLS.get fault_key with
  | Some Force_true -> ( match v with Unknown -> True | v -> v)
  | Some Flip_verdict -> ( match v with True -> False | False -> True | Unknown -> Unknown)
  | _ -> v

let rec decide_nodes t op nx ny =
  let open Ir.Types in
  let d_xy = t.dist.(nx).(ny) and d_yx = t.dist.(ny).(nx) in
  match op with
  | Eq ->
      if nodes_equal t nx ny then True
      else if nodes_diseq t nx ny then False
      else Unknown
  | Ne ->
      if nodes_diseq t nx ny then True
      else if nodes_equal t nx ny then False
      else Unknown
  | Le ->
      if d_xy <= 0 then True
      else if d_yx < 0 || (d_yx = 0 && nodes_diseq t nx ny) then False
      else Unknown
  | Lt ->
      if d_xy < 0 || (d_xy = 0 && nodes_diseq t nx ny) then True
      else if d_yx <= 0 then False
      else Unknown
  | Ge -> decide_nodes t Le ny nx
  | Gt -> decide_nodes t Lt ny nx

let decide t op (x : Atom.term) (y : Atom.term) : verdict =
  apply_fault
    (if t.contradictory then Unknown
     else
       match (x, y) with
       | Atom.Const a, Atom.Const b ->
           if Ir.Types.eval_cmp op a b = 1 then True else False
       | _ ->
           (* Interning a query operand is harmless: a fresh term node is
              unconstrained, a fresh constant only adds its exact ZERO
              bounds (no assumptions). *)
           let nx = node_of t x and ny = node_of t y in
           if t.contradictory then Unknown else decide_nodes t op nx ny)

let size t = t.n

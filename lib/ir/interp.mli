(** A reference interpreter for SSA functions — the ground-truth oracle of
    the test suite: optimization must not change the observable result of
    any execution. *)

type result =
  | Ret of int
  | Trap  (** division/remainder by zero, or the min_int / -1 overflow *)
  | Timeout  (** fuel exhausted *)

val equal_result : result -> result -> bool
val pp_result : Format.formatter -> result -> unit

val opaque_model : int -> int array -> int
(** The concrete model of {!Func.instr.Opaque}: a deterministic 64-bit mix
    of the tag and arguments (any pure function is a valid model; this one
    looks adversarial to the optimizer). *)

type trace = { mutable steps : int; mutable blocks_visited : int }

val run : ?fuel:int -> ?trace:trace -> Func.t -> int array -> result
(** Execute on the given arguments (missing parameters read 0). [fuel]
    bounds executed instructions (default 100_000). *)

val run_instrumented :
  ?fuel:int ->
  ?on_def:(int -> int -> unit) ->
  ?on_edge:(int -> unit) ->
  ?on_block:(int -> unit) ->
  Func.t ->
  int array ->
  result
(** Like {!run} with observation hooks: [on_def i v] fires each time
    instruction [i] defines value [v] (φs fire at block entry, as the
    parallel copy commits), [on_edge] on every traversed CFG edge,
    [on_block] on every block entry. Used by the translation validator to
    refute witness claims at the program point where they are made. *)

val run_with_env : ?fuel:int -> Func.t -> int array -> result * int option array
(** Like {!run}, also returning the value each instruction {e last}
    computed ([None] if it never executed). Congruent values must agree
    whenever each instruction executes at most once. *)

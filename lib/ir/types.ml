(* Operators shared by the non-SSA IR, the SSA IR and the mini-C frontend.
   Integers are OCaml native ints; comparisons produce 0/1 as in C. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And (* bitwise *)
  | Or (* bitwise *)
  | Xor
  | Shl
  | Shr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type unop =
  | Neg
  | Lnot (* logical not: 0 -> 1, nonzero -> 0 *)
  | Bnot (* bitwise complement *)

exception Division_by_zero

(* [min_int / -1] (and [rem]) overflow the machine divide; on x86 OCaml's
   [/] delivers the processor fault, not a value. Both faulting shapes are
   modelled as the same observable trap. *)
let div_rem_faults a b = b = 0 || (a = min_int && b = -1)

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if div_rem_faults a b then raise Division_by_zero else a / b
  | Rem -> if div_rem_faults a b then raise Division_by_zero else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Shr -> a asr (b land 62)

let eval_cmp op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

let eval_unop op a =
  match op with
  | Neg -> -a
  | Lnot -> if a = 0 then 1 else 0
  | Bnot -> lnot a

(* Folding a binop is unsafe when it could trap at run time. *)
let binop_can_trap op a b =
  match op with Div | Rem -> div_rem_faults a b | _ -> false

(* The one safe constant folder: [None] exactly when evaluation would trap.
   Every folding client (GVN engine, rule engine, LVN, SCCP baselines,
   abstract interpreters) goes through this so the trap set has a single
   definition. *)
let fold_binop op a b = if binop_can_trap op a b then None else Some (eval_binop op a b)

let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* Mirror image: [a op b] iff [b (swap_cmp op) a]. *)
let swap_cmp = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let binop_commutative = function
  | Add | Mul | And | Or | Xor -> true
  | Sub | Div | Rem | Shl | Shr -> false

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let string_of_cmp = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let string_of_unop = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

(** Operators and their concrete semantics, shared by the two IRs, the
    mini-C frontend and the GVN engine's constant folder. Integers are OCaml
    native ints; comparisons produce 0/1 as in C; division and remainder by
    zero trap. *)

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type unop =
  | Neg  (** arithmetic negation *)
  | Lnot  (** logical not: 0 becomes 1, nonzero becomes 0 *)
  | Bnot  (** bitwise complement *)

exception Division_by_zero
(** Raised by {!eval_binop} for a faulting [Div]/[Rem]: a zero divisor, or
    the [min_int / -1] signed-overflow case (which faults in the machine
    divide and is modelled as the same observable trap). *)

val div_rem_faults : int -> int -> bool
(** [div_rem_faults a b]: would [a / b] (or [a rem b]) fault at run time?
    True for [b = 0] and for [a = min_int, b = -1]. *)

val eval_binop : binop -> int -> int -> int
(** Concrete semantics. Shift amounts are masked to stay in range.
    @raise Division_by_zero for a faulting [Div]/[Rem] (see
    {!div_rem_faults}). *)

val eval_cmp : cmp -> int -> int -> int
(** 1 when the comparison holds, 0 otherwise. *)

val eval_unop : unop -> int -> int

val binop_can_trap : binop -> int -> int -> bool
(** [binop_can_trap op a b]: would [eval_binop op a b] trap? Constant
    folding must refuse such folds. *)

val fold_binop : binop -> int -> int -> int option
(** Trap-refusing constant folding: [Some (eval_binop op a b)] unless the
    evaluation would trap, then [None]. The single fold helper shared by
    every client, so the trap set has one definition. *)

val negate_cmp : cmp -> cmp
(** [negate_cmp op] is the complement: [x op y] iff not [x (negate_cmp op) y]. *)

val swap_cmp : cmp -> cmp
(** Mirror image: [x op y] iff [y (swap_cmp op) x]. *)

val binop_commutative : binop -> bool
val string_of_binop : binop -> string
val string_of_cmp : cmp -> string
val string_of_unop : unop -> string

(* A reference interpreter for SSA functions. It is the ground-truth oracle
   used by the test suite: optimization must not change the observable result
   of any execution. *)

type result =
  | Ret of int
  | Trap (* division/remainder by zero, or the min_int / -1 overflow *)
  | Timeout (* fuel exhausted *)

let equal_result a b =
  match (a, b) with
  | Ret x, Ret y -> x = y
  | Trap, Trap | Timeout, Timeout -> true
  | (Ret _ | Trap | Timeout), _ -> false

let pp_result ppf = function
  | Ret n -> Fmt.pf ppf "ret %d" n
  | Trap -> Fmt.string ppf "trap"
  | Timeout -> Fmt.string ppf "timeout"

(* Opaque instructions are uninterpreted pure functions: any deterministic
   function of (tag, args) is a valid model. We use a 64-bit mix so results
   look adversarial to the optimizer. *)
let opaque_model tag args =
  let mix h x =
    let open Int64 in
    let h = logxor h (of_int x) in
    let h = mul h 0x100000001B3L in
    logxor h (shift_right_logical h 29)
  in
  let h = Array.fold_left (fun h v -> mix h v) (mix 0xCBF29CE484222325L tag) args in
  Int64.to_int (Int64.shift_right_logical h 3)

type trace = { mutable steps : int; mutable blocks_visited : int }

(* Runs [f] on [args]; [fuel] bounds the number of executed instructions so
   that non-terminating loops produce [Timeout]. *)
let run ?(fuel = 100_000) ?trace (f : Func.t) (args : int array) : result =
  let env = Array.make (Func.num_instrs f) 0 in
  let exception Trapped in
  let eval_instr i =
    match Func.instr f i with
    | Func.Const n -> env.(i) <- n
    | Func.Param k -> env.(i) <- (if k < Array.length args then args.(k) else 0)
    | Func.Unop (op, a) -> env.(i) <- Types.eval_unop op env.(a)
    | Func.Binop (op, a, b) -> (
        match Types.eval_binop op env.(a) env.(b) with
        | n -> env.(i) <- n
        | exception Types.Division_by_zero -> raise Trapped)
    | Func.Cmp (op, a, b) -> env.(i) <- Types.eval_cmp op env.(a) env.(b)
    | Func.Opaque (tag, oargs) ->
        env.(i) <- opaque_model tag (Array.map (fun v -> env.(v)) oargs)
    | Func.Phi _ | Func.Jump | Func.Branch _ | Func.Switch _ | Func.Return _ -> assert false
  in
  let fuel_left = ref fuel in
  let rec exec_block b incoming_edge =
    (match trace with
    | Some t -> t.blocks_visited <- t.blocks_visited + 1
    | None -> ());
    let blk = Func.block f b in
    (* Phis read their incoming values as a parallel copy. *)
    let phis = Func.phis_of_block f b in
    let phi_vals =
      Array.map
        (fun p ->
          match Func.instr f p with
          | Func.Phi pargs ->
              let ix =
                match incoming_edge with
                | Some e -> (Func.edge f e).dst_ix
                | None -> invalid_arg "Interp: phi in entry block"
              in
              env.(pargs.(ix))
          | _ -> assert false)
        phis
    in
    Array.iteri (fun k p -> env.(p) <- phi_vals.(k)) phis;
    let n = Array.length blk.instrs in
    let rec step pos =
      let i = blk.instrs.(pos) in
      if !fuel_left <= 0 then Timeout
      else begin
        decr fuel_left;
        (match trace with Some t -> t.steps <- t.steps + 1 | None -> ());
        match Func.instr f i with
        | Func.Jump -> exec_block (Func.edge f blk.succs.(0)).Func.dst (Some blk.succs.(0))
        | Func.Branch c ->
            let e = if env.(c) <> 0 then blk.succs.(0) else blk.succs.(1) in
            exec_block (Func.edge f e).Func.dst (Some e)
        | Func.Switch (c, cases) ->
            let ix = ref (Array.length cases) (* default *) in
            Array.iteri (fun k case -> if env.(c) = case then ix := k) cases;
            let e = blk.succs.(!ix) in
            exec_block (Func.edge f e).Func.dst (Some e)
        | Func.Return v -> Ret env.(v)
        | Func.Phi _ -> step (pos + 1) (* already handled above *)
        | _ ->
            eval_instr i;
            step (pos + 1)
      end
    in
    if n = 0 then invalid_arg "Interp: empty block" else step 0
  in
  match exec_block Func.entry None with r -> r | exception Trapped -> Trap

(* Runs [f] with observation hooks: [on_def i v] fires each time
   instruction [i] defines value [v] (φs fire at block entry, as the
   parallel copy commits), [on_edge] on each traversed CFG edge, [on_block]
   on each block entry. The translation validator uses this to refute
   witness claims at the program point where they are made. *)
let run_instrumented ?(fuel = 100_000) ?(on_def = fun _ _ -> ())
    ?(on_edge = fun _ -> ()) ?(on_block = fun _ -> ()) (f : Func.t)
    (args : int array) : result =
  let raw = Array.make (Func.num_instrs f) 0 in
  let exception Trapped in
  let fuel_left = ref fuel in
  let record i v =
    raw.(i) <- v;
    on_def i v
  in
  let rec exec_block b incoming_edge =
    on_block b;
    let blk = Func.block f b in
    let phis = Func.phis_of_block f b in
    let phi_vals =
      Array.map
        (fun p ->
          match Func.instr f p with
          | Func.Phi pargs ->
              let ix =
                match incoming_edge with
                | Some e -> (Func.edge f e).Func.dst_ix
                | None -> invalid_arg "Interp: phi in entry block"
              in
              raw.(pargs.(ix))
          | _ -> assert false)
        phis
    in
    Array.iteri (fun k p -> record p phi_vals.(k)) phis;
    let take e =
      on_edge e;
      exec_block (Func.edge f e).Func.dst (Some e)
    in
    let rec step pos =
      let i = blk.instrs.(pos) in
      if !fuel_left <= 0 then Timeout
      else begin
        decr fuel_left;
        match Func.instr f i with
        | Func.Jump -> take blk.succs.(0)
        | Func.Branch c -> take (if raw.(c) <> 0 then blk.succs.(0) else blk.succs.(1))
        | Func.Switch (c, cases) ->
            let ix = ref (Array.length cases) in
            Array.iteri (fun k case -> if raw.(c) = case then ix := k) cases;
            take blk.succs.(!ix)
        | Func.Return v -> Ret raw.(v)
        | Func.Phi _ -> step (pos + 1)
        | Func.Const n ->
            record i n;
            step (pos + 1)
        | Func.Param k ->
            record i (if k < Array.length args then args.(k) else 0);
            step (pos + 1)
        | Func.Unop (op, a) ->
            record i (Types.eval_unop op raw.(a));
            step (pos + 1)
        | Func.Binop (op, a, b) -> (
            match Types.eval_binop op raw.(a) raw.(b) with
            | n ->
                record i n;
                step (pos + 1)
            | exception Types.Division_by_zero -> raise Trapped)
        | Func.Cmp (op, a, b) ->
            record i (Types.eval_cmp op raw.(a) raw.(b));
            step (pos + 1)
        | Func.Opaque (tag, oargs) ->
            record i (opaque_model tag (Array.map (fun v -> raw.(v)) oargs));
            step (pos + 1)
      end
    in
    step 0
  in
  match exec_block Func.entry None with r -> r | exception Trapped -> Trap

(* Runs [f] and also records the value each instruction last computed;
   used to check that GVN-congruent values really agree at run time. *)
let run_with_env ?(fuel = 100_000) f args =
  let env = Array.make (Func.num_instrs f) None in
  let executed = Array.make (Func.num_instrs f) false in
  (* Re-implement on top of [run] by instrumenting a copy is more code than
     rerunning the small interpreter; instead we inline a variant here. *)
  let raw = Array.make (Func.num_instrs f) 0 in
  let exception Trapped in
  let fuel_left = ref fuel in
  let record i v =
    raw.(i) <- v;
    env.(i) <- Some v;
    executed.(i) <- true
  in
  let rec exec_block b incoming_edge =
    let blk = Func.block f b in
    let phis = Func.phis_of_block f b in
    let phi_vals =
      Array.map
        (fun p ->
          match Func.instr f p with
          | Func.Phi pargs ->
              let ix =
                match incoming_edge with
                | Some e -> (Func.edge f e).Func.dst_ix
                | None -> invalid_arg "Interp: phi in entry block"
              in
              raw.(pargs.(ix))
          | _ -> assert false)
        phis
    in
    Array.iteri (fun k p -> record p phi_vals.(k)) phis;
    let rec step pos =
      let i = blk.instrs.(pos) in
      if !fuel_left <= 0 then Timeout
      else begin
        decr fuel_left;
        match Func.instr f i with
        | Func.Jump -> exec_block (Func.edge f blk.succs.(0)).Func.dst (Some blk.succs.(0))
        | Func.Branch c ->
            let e = if raw.(c) <> 0 then blk.succs.(0) else blk.succs.(1) in
            exec_block (Func.edge f e).Func.dst (Some e)
        | Func.Switch (c, cases) ->
            let ix = ref (Array.length cases) in
            Array.iteri (fun k case -> if raw.(c) = case then ix := k) cases;
            let e = blk.succs.(!ix) in
            exec_block (Func.edge f e).Func.dst (Some e)
        | Func.Return v -> Ret raw.(v)
        | Func.Phi _ -> step (pos + 1)
        | Func.Const n ->
            record i n;
            step (pos + 1)
        | Func.Param k ->
            record i (if k < Array.length args then args.(k) else 0);
            step (pos + 1)
        | Func.Unop (op, a) ->
            record i (Types.eval_unop op raw.(a));
            step (pos + 1)
        | Func.Binop (op, a, b) -> (
            match Types.eval_binop op raw.(a) raw.(b) with
            | n ->
                record i n;
                step (pos + 1)
            | exception Types.Division_by_zero -> raise Trapped)
        | Func.Cmp (op, a, b) ->
            record i (Types.eval_cmp op raw.(a) raw.(b));
            step (pos + 1)
        | Func.Opaque (tag, oargs) ->
            record i (opaque_model tag (Array.map (fun v -> raw.(v)) oargs));
            step (pos + 1)
      end
    in
    step 0
  in
  let result = match exec_block Func.entry None with r -> r | exception Trapped -> Trap in
  (result, env)

(* Value-level liveness over an SSA function: classic backward dataflow with
   per-block bitsets. φ arguments are live out of the predecessor that
   carries them (not into the φ's block). Consumers: register-pressure-style
   bookkeeping in the optimization pipeline, and the test suite. *)

type t = {
  live_in : Bytes.t array; (* bit v set: value v live into block b *)
  live_out : Bytes.t array;
}

let bit_get bs v = Char.code (Bytes.get bs (v lsr 3)) land (1 lsl (v land 7)) <> 0

let bit_set bs v =
  let i = v lsr 3 in
  Bytes.set bs i (Char.chr (Char.code (Bytes.get bs i) lor (1 lsl (v land 7))))

let compute (f : Ir.Func.t) : t =
  let ni = Ir.Func.num_instrs f in
  let nb = Ir.Func.num_blocks f in
  let bytes = (ni + 7) / 8 in
  let live_in = Array.init nb (fun _ -> Bytes.make bytes '\000') in
  let live_out = Array.init nb (fun _ -> Bytes.make bytes '\000') in
  (* Per-block upward-exposed uses, defs, and the φ arguments carried out of
     each predecessor. A φ use is live at the tail of the predecessor that
     carries it, so it seeds that predecessor's live_out (not its uses: the
     argument may be defined in the predecessor itself, e.g. a loop latch,
     in which case it is live out but not live in). *)
  let uses = Array.init nb (fun _ -> Bytes.make bytes '\000') in
  let defs = Array.init nb (fun _ -> Bytes.make bytes '\000') in
  let phi_out = Array.init nb (fun _ -> Bytes.make bytes '\000') in
  for b = 0 to nb - 1 do
    let blk = Ir.Func.block f b in
    Array.iter
      (fun i ->
        let ins = Ir.Func.instr f i in
        (match ins with
        | Ir.Func.Phi args ->
            Array.iteri
              (fun ix e ->
                let src = (Ir.Func.edge f blk.Ir.Func.preds.(ix)).Ir.Func.src in
                ignore e;
                bit_set phi_out.(src) args.(ix))
              blk.Ir.Func.preds
        | _ ->
            Ir.Func.iter_operands (fun v -> if not (bit_get defs.(b) v) then bit_set uses.(b) v) ins);
        if Ir.Func.defines_value ins then bit_set defs.(b) i)
      blk.Ir.Func.instrs
  done;
  (* Seed live_out with the carried φ arguments; the fixpoint below only
     ever grows live_out, so the seed persists. *)
  for b = 0 to nb - 1 do
    Bytes.blit phi_out.(b) 0 live_out.(b) 0 bytes
  done;
  let succ = Ir.Func.succ_blocks f in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = nb - 1 downto 0 do
      (* live_out = union of successors' live_in *)
      Array.iter
        (fun s ->
          for i = 0 to bytes - 1 do
            let o = Char.code (Bytes.get live_out.(b) i) in
            let n = o lor Char.code (Bytes.get live_in.(s) i) in
            if n <> o then begin
              Bytes.set live_out.(b) i (Char.chr n);
              changed := true
            end
          done)
        succ.(b);
      (* live_in = uses ∪ (live_out \ defs) *)
      for i = 0 to bytes - 1 do
        let o = Char.code (Bytes.get live_in.(b) i) in
        let n =
          o
          lor Char.code (Bytes.get uses.(b) i)
          lor (Char.code (Bytes.get live_out.(b) i) land lnot (Char.code (Bytes.get defs.(b) i)))
        in
        let n = n land 0xff in
        if n <> o then begin
          Bytes.set live_in.(b) i (Char.chr n);
          changed := true
        end
      done
    done
  done;
  { live_in; live_out }

let live_in_at t b v = bit_get t.live_in.(b) v
let live_out_at t b v = bit_get t.live_out.(b) v

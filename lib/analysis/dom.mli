(** Dominators by the Cooper–Harvey–Kennedy iterative algorithm, with the
    derived queries the GVN core needs: immediate dominators, depths,
    constant-time dominance tests (DFS interval labelling of the tree) and
    nearest common ancestors. Unreachable nodes get idom/depth -1. *)

type t = {
  idom : int array;  (** immediate dominator; entry and unreachable: -1 *)
  depth : int array;  (** tree depth; entry 0; unreachable -1 *)
  children : int array array;
  tin : int array;
  tout : int array;
  entry : int;
}

val compute : ?rpo:Rpo.t -> Graph.t -> t
(** The dominator tree of the reachable part of the graph. *)

val reachable : t -> int -> bool

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b]? Reflexive; O(1). *)

val strictly_dominates : t -> int -> int -> bool

(** {2 Nearest common ancestors}

    [Dom.nca]/[Postdom.nca] share one contract (pinned by test_analysis
    "nca conventions"): each tree offers a raising form ([nca], total on
    queries its tree answers, [Invalid_argument] otherwise) and a total
    form ([nca_opt], [None] exactly where [nca] raises). A query is
    undefined on a node the tree does not cover — here an unreachable
    block; for postdominators a block that cannot reach an exit, or a pair
    whose only common postdominator is the hidden virtual exit. *)

val nca : t -> int -> int -> int
(** Nearest common ancestor in the dominator tree.
    @raise Invalid_argument on unreachable nodes. *)

val nca_opt : t -> int -> int -> int option
(** Total form of {!nca}: [None] exactly where {!nca} raises (an
    unreachable node), [Some] of the same answer everywhere else. *)

(** Natural-loop nesting forest. A natural loop is keyed by a header block
    that dominates the source of at least one RPO back edge into it; loops
    sharing a header are merged, and parent links nest each loop inside the
    smallest other loop containing its header. Retreating edges whose target
    does not dominate their source (irreducible control flow) form no
    natural loop and are reported in [irreducible] instead of being silently
    mis-nested. The flat [nesting]/[headers] record remains as a view for
    the workload statistics. *)

type t = {
  nesting : int array;  (** loop nesting depth per block; 0 = not in a loop *)
  headers : int list;  (** natural-loop header blocks, ascending *)
}

type loop = {
  header : int;
  parent : int;  (** index into [loops] of the innermost enclosing loop, or -1 *)
  depth : int;  (** 1 = outermost *)
  body : int array;  (** member blocks, ascending; includes the header *)
  back_tails : int array;  (** sources of the back edges into [header] *)
}

type forest = {
  nblocks : int;
  loops : loop array;  (** ordered by header id *)
  loop_of : int array;  (** block -> innermost containing loop index, or -1 *)
  nesting : int array;  (** block -> number of containing loops *)
  irreducible : (int * int) list;
      (** retreating (src, dst) edges that form no natural loop *)
}

val forest : ?dom:Dom.t -> Graph.t -> forest
(** The loop-nesting forest of the reachable part of the graph. [?dom] lets
    a caller that already computed dominators share them. *)

val view : forest -> t
val compute : Graph.t -> t
(** [compute g = view (forest g)] — the historical flat API. *)

val depth_at : forest -> int -> int
(** Loop depth of a block: number of natural loops containing it. *)

val widen_blocks : forest -> int list
(** Blocks where a fixpoint over this graph must widen: natural-loop headers
    plus the targets of irreducible retreating edges. *)

val max_nesting : t -> int
val pp_forest : Format.formatter -> forest -> unit

(* Natural-loop nesting forest. Each natural loop is keyed by its header (a
   block that dominates the source of at least one RPO back edge into it);
   loops with the same header are merged, bodies come from reverse
   reachability tail→header, and parent links nest each loop inside the
   smallest other loop containing its header. Retreating edges whose target
   does NOT dominate their source (irreducible control flow) form no natural
   loop: they are reported in [irreducible] instead of being silently folded
   into some body. The historical flat [nesting]/[headers] record survives as
   a view for the workload statistics. *)

type t = {
  nesting : int array; (* loop nesting depth per block; 0 = not in a loop *)
  headers : int list; (* natural loop headers, innermost duplicates removed *)
}

type loop = {
  header : int;
  parent : int; (* index into [loops] of the innermost enclosing loop, or -1 *)
  depth : int; (* 1 = outermost *)
  body : int array; (* member blocks, ascending; includes the header *)
  back_tails : int array; (* sources of the back edges into [header] *)
}

type forest = {
  nblocks : int;
  loops : loop array; (* ordered by header id *)
  loop_of : int array; (* block -> innermost containing loop index, or -1 *)
  nesting : int array; (* block -> number of containing loops *)
  irreducible : (int * int) list; (* retreating edges that form no natural loop *)
}

let forest ?dom (g : Graph.t) : forest =
  let rpo = Rpo.compute g in
  let dom = match dom with Some d -> d | None -> Dom.compute ~rpo g in
  let n = g.n in
  (* Group back-edge tails by header; split off irreducible retreating
     edges (RPO back edges whose target does not dominate their source). *)
  let tails : (int, int list ref) Hashtbl.t = Hashtbl.create 8 in
  let irreducible = ref [] in
  for u = 0 to n - 1 do
    if rpo.Rpo.number.(u) >= 0 then
      Array.iter
        (fun v ->
          if Rpo.is_back_edge rpo ~src:u ~dst:v then
            if Dom.dominates dom v u then
              match Hashtbl.find_opt tails v with
              | Some l -> l := u :: !l
              | None -> Hashtbl.add tails v (ref [ u ])
            else irreducible := (u, v) :: !irreducible)
        g.succ.(u)
  done;
  let headers = Hashtbl.fold (fun h _ acc -> h :: acc) tails [] |> List.sort compare in
  let nloops = List.length headers in
  let bodies = Array.make nloops [||] in
  let inloop = Array.make_matrix nloops n false in
  List.iteri
    (fun li h ->
      (* Natural loop body: reverse reachability from every tail, stopping
         at the header. The header dominates the whole body, so the walk
         never escapes into unreachable territory. *)
      let inl = inloop.(li) in
      inl.(h) <- true;
      let rec up b =
        if not inl.(b) then begin
          inl.(b) <- true;
          Array.iter up g.pred.(b)
        end
      in
      List.iter up !(Hashtbl.find tails h);
      let body = ref [] in
      for b = n - 1 downto 0 do
        if inl.(b) then body := b :: !body
      done;
      bodies.(li) <- Array.of_list !body)
    headers;
  (* Parent: the containing loop (≠ self) with the smallest body. Natural
     loops either nest or are disjoint once same-header loops are merged,
     so smallest-containing is the immediate parent. *)
  let parent = Array.make nloops (-1) in
  List.iteri
    (fun li h ->
      let best = ref (-1) in
      for lj = 0 to nloops - 1 do
        if lj <> li && inloop.(lj).(h)
           && (!best = -1 || Array.length bodies.(lj) < Array.length bodies.(!best))
        then best := lj
      done;
      parent.(li) <- !best)
    headers;
  let depth = Array.make nloops 0 in
  let rec depth_of li =
    if depth.(li) > 0 then depth.(li)
    else begin
      let d = if parent.(li) < 0 then 1 else 1 + depth_of parent.(li) in
      depth.(li) <- d;
      d
    end
  in
  List.iteri (fun li _ -> ignore (depth_of li)) headers;
  let loops =
    Array.of_list
      (List.mapi
         (fun li h ->
           {
             header = h;
             parent = parent.(li);
             depth = depth.(li);
             body = bodies.(li);
             back_tails = Array.of_list (List.sort compare !(Hashtbl.find tails h));
           })
         headers)
  in
  let nesting = Array.make n 0 in
  let loop_of = Array.make n (-1) in
  Array.iteri
    (fun li l ->
      Array.iter
        (fun b ->
          nesting.(b) <- nesting.(b) + 1;
          if loop_of.(b) = -1 || Array.length l.body < Array.length loops.(loop_of.(b)).body
          then loop_of.(b) <- li)
        l.body)
    loops;
  { nblocks = n; loops; loop_of; nesting; irreducible = List.rev !irreducible }

let depth_at fr b = fr.nesting.(b)

(* Blocks where a fixpoint over this graph should widen: every target of a
   retreating edge — natural-loop headers plus the targets of irreducible
   retreating edges (which head a cycle even though they head no natural
   loop). *)
let widen_blocks fr =
  List.sort_uniq compare
    (Array.fold_left (fun acc l -> l.header :: acc) [] fr.loops
    @ List.map snd fr.irreducible)

let view (fr : forest) : t =
  {
    nesting = Array.copy fr.nesting;
    headers = Array.to_list (Array.map (fun l -> l.header) fr.loops);
  }

let compute (g : Graph.t) = view (forest g)
let max_nesting (t : t) = Array.fold_left max 0 t.nesting

let pp_forest ppf fr =
  if Array.length fr.loops = 0 then Format.fprintf ppf "no loops"
  else
    Array.iteri
      (fun li l ->
        if li > 0 then Format.pp_print_cut ppf ();
        Format.fprintf ppf "loop b%d depth %d%s body {%s}" l.header l.depth
          (if l.parent >= 0 then Printf.sprintf " in b%d" fr.loops.(l.parent).header
           else "")
          (String.concat " "
             (Array.to_list (Array.map (Printf.sprintf "b%d") l.body))))
      fr.loops;
  if fr.irreducible <> [] then begin
    Format.pp_print_cut ppf ();
    Format.fprintf ppf "irreducible edges:%s"
      (String.concat ""
         (List.map (fun (u, v) -> Printf.sprintf " b%d->b%d" u v) fr.irreducible))
  end

(* Postdominators, computed as dominators of the reversed CFG from a virtual
   exit node (id [n]) that succeeds every return block.

   Pinned conventions (tests: test_analysis "postdominator conventions"):
   - No exit at all (every block loops forever): nothing is reachable in the
     reversed graph, so [reaches_exit] is false everywhere, [ipdom] is -1,
     and [postdominates] answers false — even reflexively. φ-predication
     skips such blocks.
   - Multiple exits: the virtual exit is their common postdominator, and it
     is never exposed — a query whose true answer is "only the virtual
     exit" reports -1 / [None].
   - Mixed divergence: a block that reaches an exit is postdominated only by
     blocks on every *exiting* path; paths that wander off into an infinite
     loop never reach the reversed entry and impose no constraint. *)

type t = {
  dom : Dom.t; (* dominator tree of the reversed graph; node [n] = virtual exit *)
  n : int;
}

let compute (g : Graph.t) =
  let n = g.n in
  let succ = Array.make (n + 1) [||] in
  for u = 0 to n - 1 do
    succ.(u) <- Array.copy g.pred.(u)
  done;
  let exits = ref [] in
  for u = n - 1 downto 0 do
    if Array.length g.succ.(u) = 0 then exits := u :: !exits
  done;
  succ.(n) <- Array.of_list !exits;
  let h = Graph.make ~entry:n succ in
  { dom = Dom.compute h; n }

(* Immediate postdominator; [-1] when it is the virtual exit or the block
   cannot reach an exit. *)
let ipdom t b =
  let d = t.dom.Dom.idom.(b) in
  if d = t.n then -1 else d

(* [postdominates t a b]: does [a] postdominate [b]? (Reflexive.) *)
let postdominates t a b = Dom.dominates t.dom a b

let reaches_exit t b = Dom.reachable t.dom b

(* Nearest common postdominator, in both forms of the contract shared with
   Dom.nca/nca_opt: the query is undefined when either block cannot reach
   an exit, or when the only common postdominator is the hidden virtual
   exit — the total form answers [None] there, the raising form
   [Invalid_argument]. *)
let nca_opt t a b =
  if not (reaches_exit t a && reaches_exit t b) then None
  else
    let z = Dom.nca t.dom a b in
    if z = t.n then None else Some z

let nca t a b =
  match nca_opt t a b with
  | Some z -> z
  | None ->
      invalid_arg
        (if not (reaches_exit t a && reaches_exit t b) then
           "Postdom.nca: block cannot reach an exit"
         else "Postdom.nca: only the virtual exit is common")

(* Dominator tree by the Cooper–Harvey–Kennedy iterative algorithm, plus the
   derived queries the GVN core needs: immediate dominators, tree depth,
   constant-time dominance tests (via a DFS interval labelling of the tree)
   and nearest common ancestors. *)

type t = {
  idom : int array; (* immediate dominator; entry and unreachable -> -1 *)
  depth : int array; (* tree depth; entry = 0; unreachable -> -1 *)
  children : int array array;
  tin : int array; (* DFS entry time in the dominator tree *)
  tout : int array;
  entry : int;
}

(* [compute ?rpo g] builds the dominator tree of the reachable part of [g]. *)
let compute ?rpo (g : Graph.t) =
  let rpo = match rpo with Some r -> r | None -> Rpo.compute g in
  let n = g.n in
  let idom = Array.make n (-1) in
  idom.(g.entry) <- g.entry;
  let intersect u v =
    (* Walk the two fingers up by RPO number until they meet. *)
    let u = ref u and v = ref v in
    while !u <> !v do
      while rpo.number.(!u) > rpo.number.(!v) do
        u := idom.(!u)
      done;
      while rpo.number.(!v) > rpo.number.(!u) do
        v := idom.(!v)
      done
    done;
    !u
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> g.entry then begin
          let new_idom = ref (-1) in
          Array.iter
            (fun p ->
              if idom.(p) >= 0 then
                new_idom := if !new_idom < 0 then p else intersect p !new_idom)
            g.pred.(b);
          if !new_idom >= 0 && idom.(b) <> !new_idom then begin
            idom.(b) <- !new_idom;
            changed := true
          end
        end)
      rpo.order
  done;
  idom.(g.entry) <- -1;
  (* Children lists in RPO order give a deterministic DFS labelling. *)
  let child_lists = Array.make n [] in
  let order = rpo.order in
  for i = Array.length order - 1 downto 0 do
    let b = order.(i) in
    if idom.(b) >= 0 then child_lists.(idom.(b)) <- b :: child_lists.(idom.(b))
  done;
  let children = Array.map Array.of_list child_lists in
  let depth = Array.make n (-1) in
  let tin = Array.make n (-1) in
  let tout = Array.make n (-1) in
  let clock = ref 0 in
  let rec dfs b d =
    depth.(b) <- d;
    tin.(b) <- !clock;
    incr clock;
    Array.iter (fun c -> dfs c (d + 1)) children.(b);
    tout.(b) <- !clock;
    incr clock
  in
  dfs g.entry 0;
  { idom; depth; children; tin; tout; entry = g.entry }

let reachable t b = t.depth.(b) >= 0

(* [dominates t a b]: does [a] dominate [b]? (Reflexive.) *)
let dominates t a b =
  reachable t a && reachable t b && t.tin.(a) <= t.tin.(b) && t.tout.(b) <= t.tout.(a)

let strictly_dominates t a b = a <> b && dominates t a b

(* Nearest common ancestor of two reachable nodes in the dominator tree.
   The undefined-query contract is shared with Postdom: the raising form
   ([nca]) raises Invalid_argument, the total form ([nca_opt]) answers
   None, and the conditions under which a query is undefined — here, a
   node the analysis does not cover — are spelled out at each form. *)
let nca t a b =
  if not (reachable t a && reachable t b) then invalid_arg "Dom.nca: unreachable node";
  let a = ref a and b = ref b in
  while !a <> !b do
    if t.depth.(!a) > t.depth.(!b) then a := t.idom.(!a)
    else if t.depth.(!b) > t.depth.(!a) then b := t.idom.(!b)
    else begin
      a := t.idom.(!a);
      b := t.idom.(!b)
    end
  done;
  !a

let nca_opt t a b = if reachable t a && reachable t b then Some (nca t a b) else None

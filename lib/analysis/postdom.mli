(** Postdominators: dominators of the reversed CFG from a virtual exit that
    succeeds every return block.

    Pinned conventions (tests: test_analysis "postdominator conventions"):
    blocks that cannot reach an exit (infinite loops without break) have no
    postdominators — queries on them answer [false]/[-1]/[None], including
    the reflexive [postdominates b b]; with multiple exits their common
    postdominator is the hidden virtual exit, reported as [-1]/[None]; and
    diverging paths (those that never reach an exit) impose no constraint on
    the postdominators of blocks that do exit. *)

type t

val compute : Graph.t -> t

val ipdom : t -> int -> int
(** Immediate postdominator; [-1] when it is the virtual exit or the block
    cannot reach an exit. *)

val postdominates : t -> int -> int -> bool
(** [postdominates t a b]: does [a] postdominate [b]? Reflexive. *)

val reaches_exit : t -> int -> bool

(** {2 Nearest common postdominators}

    Same two-form contract as {!Dom.nca}/{!Dom.nca_opt} (pinned by
    test_analysis "nca conventions"): the query is undefined when either
    block cannot reach an exit, or when the only common postdominator is
    the hidden virtual exit (the two blocks sit on paths to different
    exits) — the raising form raises [Invalid_argument] there, the total
    form answers [None]. *)

val nca : t -> int -> int -> int
(** Nearest common postdominator.
    @raise Invalid_argument where the query is undefined (see above). *)

val nca_opt : t -> int -> int -> int option
(** Total form of {!nca}: [None] exactly where {!nca} raises, [Some] of
    the same answer everywhere else. *)

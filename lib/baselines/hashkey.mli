(** Shared expression keys for the hash-based baselines: purely syntactic
    (no folding or reordering), so their fixed points coincide with the
    partition-based AWZ result modulo the φ(x,…,x) → x reduction. *)

type rep = int

type t =
  | Kconst of int
  | Kparam of int
  | Kopq of int * rep list
  | Kphi of int * rep list
  | Kunop of Ir.Types.unop * rep
  | Kbinop of Ir.Types.binop * rep * rep
  | Kcmp of Ir.Types.cmp * rep * rep

val equal : t -> t -> bool
val hash : t -> int

module Table : Hashtbl.S with type key = t
(** Structural key table (kept for tests and as the oracle of the consed
    variant). *)

(** {1 Hash-consed keys}

    One arena per numbering run: numbering tables key on consed cells, so a
    key that was already interned this run probes by precomputed tag. *)

type consed = t Util.Hashcons.consed
type arena

val create_arena : ?size:int -> unit -> arena
val intern : arena -> t -> consed
val arena_stats : arena -> Util.Hashcons.stats

module Consed_table : Hashtbl.S with type key = consed

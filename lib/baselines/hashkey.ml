(* Shared expression keys for the hash-based baseline value numberers
   (Simpson RPO / SCC, dominator-scoped pessimistic). Purely syntactic —
   no folding, no reordering — so the fixed points coincide with the
   partition-based AWZ result modulo the φ(x,…,x) → x reduction.

   Keys are interned in a per-run hash-consing arena: numbering tables are
   keyed by the consed cells, so re-probing a key that was already built
   this run hashes a precomputed tag instead of re-walking the key. *)

type rep = int (* representative value id; constants are the Const instr *)

type t =
  | Kconst of int
  | Kparam of int
  | Kopq of int * rep list
  | Kphi of int * rep list (* block id, live argument reps *)
  | Kunop of Ir.Types.unop * rep
  | Kbinop of Ir.Types.binop * rep * rep
  | Kcmp of Ir.Types.cmp * rep * rep

let equal (a : t) (b : t) = a = b
let hash (k : t) = Hashtbl.hash k

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

module HC = Util.Hashcons.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

type consed = t Util.Hashcons.consed
type arena = HC.arena

let create_arena ?(size = 256) () = HC.create ~size ()
let intern = HC.hashcons
let arena_stats = HC.stats

module Consed_table = HC.Tbl

(* Wegman–Zadeck sparse conditional constant propagation [16], implemented
   independently of the GVN engine (classic two-worklist formulation over
   the constant lattice ⊤ / Const c / ⊥). Used to cross-validate the GVN
   engine's SCCP emulation preset (§2.9). *)

type lattice = Top | Const of int | Bottom

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Const x, Const y when x = y -> a
  | Const _, Const _ -> Bottom
  | Bottom, _ | _, Bottom -> Bottom

let equal_lattice a b =
  match (a, b) with
  | Top, Top | Bottom, Bottom -> true
  | Const x, Const y -> x = y
  | (Top | Const _ | Bottom), _ -> false

type result = {
  value : lattice array; (* per value *)
  edge_executable : bool array;
  block_executable : bool array;
}

let run (f : Ir.Func.t) : result =
  let ni = Ir.Func.num_instrs f in
  let value = Array.make ni Top in
  let edge_exec = Array.make (Ir.Func.num_edges f) false in
  let block_exec = Array.make (Ir.Func.num_blocks f) false in
  let def_use = Ir.Func.def_use f in
  let ssa_work = Queue.create () in
  let flow_work = Queue.create () in
  let lower v l =
    let m = meet value.(v) l in
    if not (equal_lattice m value.(v)) then begin
      value.(v) <- m;
      Array.iter (fun u -> Queue.add u ssa_work) def_use.(v)
    end
  in
  let eval_instr i =
    let b = Ir.Func.block_of_instr f i in
    if block_exec.(b) then
      match Ir.Func.instr f i with
      | Ir.Func.Const n -> lower i (Const n)
      | Ir.Func.Param _ | Ir.Func.Opaque _ -> lower i Bottom
      | Ir.Func.Unop (op, a) -> (
          match value.(a) with
          | Top -> ()
          | Const c -> lower i (Const (Ir.Types.eval_unop op c))
          | Bottom -> lower i Bottom)
      | Ir.Func.Binop (op, a, b') -> (
          match (value.(a), value.(b')) with
          | Const x, Const y when not (Ir.Types.binop_can_trap op x y) ->
              lower i (Const (Ir.Types.eval_binop op x y))
          | Const x, Const y ->
              ignore (x, y);
              lower i Bottom (* would trap: not a constant *)
          | Top, _ | _, Top -> ()
          | _ -> lower i Bottom)
      | Ir.Func.Cmp (op, a, b') -> (
          match (value.(a), value.(b')) with
          | Const x, Const y -> lower i (Const (Ir.Types.eval_cmp op x y))
          | Top, _ | _, Top -> ()
          | _ -> lower i Bottom)
      | Ir.Func.Phi args ->
          let preds = (Ir.Func.block f b).Ir.Func.preds in
          let l = ref Top in
          Array.iteri
            (fun ix e -> if edge_exec.(e) then l := meet !l value.(args.(ix)))
            preds;
          lower i !l
      | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ | Ir.Func.Return _ -> ()
  in
  let eval_terminator b =
    let blk = Ir.Func.block f b in
    match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
    | Ir.Func.Jump -> Queue.add blk.Ir.Func.succs.(0) flow_work
    | Ir.Func.Branch c -> (
        match value.(c) with
        | Top -> ()
        | Const k -> Queue.add (if k <> 0 then blk.Ir.Func.succs.(0) else blk.Ir.Func.succs.(1)) flow_work
        | Bottom ->
            Queue.add blk.Ir.Func.succs.(0) flow_work;
            Queue.add blk.Ir.Func.succs.(1) flow_work)
    | Ir.Func.Switch (c, cases) -> (
        let succs = blk.Ir.Func.succs in
        match value.(c) with
        | Top -> ()
        | Const k ->
            let matched = ref (Array.length cases) in
            Array.iteri (fun i case -> if case = k then matched := i) cases;
            Queue.add succs.(!matched) flow_work
        | Bottom -> Array.iter (fun e -> Queue.add e flow_work) succs)
    | Ir.Func.Return _ -> ()
    | _ -> ()
  in
  block_exec.(Ir.Func.entry) <- true;
  Array.iter (fun i -> Queue.add i ssa_work) (Ir.Func.block f Ir.Func.entry).Ir.Func.instrs;
  eval_terminator Ir.Func.entry;
  (* The branch instruction is itself a def-use consumer of its condition,
     so a lowered condition re-enqueues the terminator via [ssa_work]. *)
  while not (Queue.is_empty flow_work && Queue.is_empty ssa_work) do
    while not (Queue.is_empty flow_work) do
      let e = Queue.pop flow_work in
      if not edge_exec.(e) then begin
        edge_exec.(e) <- true;
        let d = (Ir.Func.edge f e).Ir.Func.dst in
        if not block_exec.(d) then begin
          block_exec.(d) <- true;
          Array.iter (fun i -> Queue.add i ssa_work) (Ir.Func.block f d).Ir.Func.instrs;
          eval_terminator d
        end
        else
          (* New executable edge into an executable block: φs re-meet. *)
          Array.iter (fun i -> Queue.add i ssa_work) (Ir.Func.phis_of_block f d)
      end
    done;
    while not (Queue.is_empty ssa_work) do
      let i = Queue.pop ssa_work in
      let b = Ir.Func.block_of_instr f i in
      if Ir.Func.defines_value (Ir.Func.instr f i) then eval_instr i
      else if block_exec.(b) then eval_terminator b
    done
  done;
  { value; edge_executable = edge_exec; block_executable = block_exec }

(* Alpern–Wegman–Zadeck optimistic partition-based value numbering [1],
   implemented independently of the hash-based GVN engine.

   The value graph: one node per SSA value, labelled by its operator
   (constants by their value, parameters by index, opaque calls by tag,
   φ-functions by their block) with ordered edges to operand nodes. The
   initial partition groups nodes by label; refinement splits classes until
   congruent nodes have position-wise congruent operands. This is the
   optimistic fixed point: values stay together unless split apart.

   Note: the partition formulation does not perform the hash-based
   reduction φ(x, …, x) → x, so its result can be strictly coarser-grained
   (fewer congruences) than the engine's AWZ emulation; the test suite
   checks refinement in that direction. *)

type label =
  | Lconst of int
  | Lparam of int
  | Lopq of int * int (* tag, arity *)
  | Lphi of int * int (* block, arity *)
  | Lunop of Ir.Types.unop
  | Lbinop of Ir.Types.binop
  | Lcmp of Ir.Types.cmp

(* Labels are interned per run so the initial-partition table probes by
   precomputed tag rather than rehashing the label structure. *)
module HL = Util.Hashcons.Make (struct
  type t = label

  let equal (a : label) (b : label) = a = b
  let hash (l : label) = Hashtbl.hash l
end)

let label_of f i =
  match Ir.Func.instr f i with
  | Ir.Func.Const n -> Some (Lconst n)
  | Ir.Func.Param k -> Some (Lparam k)
  | Ir.Func.Opaque (tag, args) -> Some (Lopq (tag, Array.length args))
  | Ir.Func.Phi args -> Some (Lphi (Ir.Func.block_of_instr f i, Array.length args))
  | Ir.Func.Unop (op, _) -> Some (Lunop op)
  | Ir.Func.Binop (op, _, _) -> Some (Lbinop op)
  | Ir.Func.Cmp (op, _, _) -> Some (Lcmp op)
  | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ | Ir.Func.Return _ -> None

(* Result: class id per value (-1 for non-values). Congruent iff equal. *)
let run (f : Ir.Func.t) : int array =
  let ni = Ir.Func.num_instrs f in
  let cls = Array.make ni (-1) in
  (* Initial partition by label. *)
  let next_class = ref 0 in
  let arena = HL.create ~size:64 () in
  let by_label : int HL.Tbl.t = HL.Tbl.create 64 in
  for i = 0 to ni - 1 do
    match label_of f i with
    | None -> ()
    | Some l ->
        let cl = HL.hashcons arena l in
        (match HL.Tbl.find_opt by_label cl with
        | Some c -> cls.(i) <- c
        | None ->
            let c = !next_class in
            incr next_class;
            HL.Tbl.replace by_label cl c;
            cls.(i) <- c)
  done;
  (* Operand arrays per value, and users-by-position for splitting. *)
  let ops = Array.map Ir.Func.operands f.Ir.Func.instrs in
  let max_arity =
    Array.fold_left (fun m o -> max m (Array.length o)) 0 ops
  in
  (* Iterative refinement to a fixed point. Classes are split whenever two
     members disagree on the class of the operand at some position. This is
     the O(n²)-ish formulation; Hopcroft's smaller-half strategy gives
     O(n log n) but the fixed point is identical, which is what the
     cross-validation needs. *)
  let changed = ref true in
  while !changed do
    changed := false;
    for pos = 0 to max_arity - 1 do
      (* Snapshot each value's (class, operand-class-at-pos) key, then split
         every class whose members disagree on the operand class. *)
      let keys = Array.make ni None in
      for i = 0 to ni - 1 do
        if cls.(i) >= 0 && Array.length ops.(i) > pos then
          keys.(i) <- Some (cls.(i), cls.(ops.(i).(pos)))
      done;
      let group_sizes = Hashtbl.create 64 in
      let class_sizes = Hashtbl.create 64 in
      Array.iter
        (function
          | None -> ()
          | Some ((c, _) as key) ->
              Hashtbl.replace group_sizes key
                (1 + Option.value ~default:0 (Hashtbl.find_opt group_sizes key));
              Hashtbl.replace class_sizes c
                (1 + Option.value ~default:0 (Hashtbl.find_opt class_sizes c)))
        keys;
      let renames = Hashtbl.create 64 in
      for i = 0 to ni - 1 do
        match keys.(i) with
        | None -> ()
        | Some ((c, _) as key) ->
            if Hashtbl.find group_sizes key < Hashtbl.find class_sizes c then begin
              let c' =
                match Hashtbl.find_opt renames key with
                | Some c' -> c'
                | None ->
                    let c' = !next_class in
                    incr next_class;
                    Hashtbl.replace renames key c';
                    c'
              in
              cls.(i) <- c';
              changed := true
            end
      done
    done
  done;
  cls

let congruent result v w = result.(v) >= 0 && result.(v) = result.(w)

(* Pessimistic hash-based value numbering over the dominator tree, in the
   style of Click's O(I) algorithm [8]: a single preorder walk of the
   dominator tree with a scoped hash table (bindings are undone when the
   walk leaves a subtree), unified with constant folding. Cyclic φs — whose
   back-edge arguments are not yet numbered when the φ is reached — are
   unique values, which is exactly the pessimism the paper describes. *)

type rep = Rval of int | Rconst of int

let rep_equal a b =
  match (a, b) with
  | Rval x, Rval y -> x = y
  | Rconst x, Rconst y -> x = y
  | (Rval _ | Rconst _), _ -> false

(* Folding and simplification consult the shared rule table (lib/rules)
   through a shallow adapter: an operand is a value number or a known
   constant, and rules whose right-hand side would need a fresh compound
   expression are declined. The engine consults the same catalog through a
   deeper adapter, so everything this baseline simplifies, the engine does
   too (the refinement property the tests pin). *)
let rules_subject : rep Rules.Engine.subject =
  {
    Rules.Engine.view =
      (function Rconst c -> Rules.Engine.Sconst c | Rval _ -> Rules.Engine.Satom);
    equal = rep_equal;
    bconst = (fun c -> Rconst c);
    bunop = (fun _ _ -> None);
    bbinop = (fun _ _ _ -> None);
    reduce = (fun _ -> None);
  }

type key =
  | Kconst of int
  | Kparam of int
  | Kopq of int * rep list
  | Kphi of int * rep list
  | Kunop of Ir.Types.unop * rep
  | Kbinop of Ir.Types.binop * rep * rep
  | Kcmp of Ir.Types.cmp * rep * rep

(* Keys are interned per run; the scoped table and its undo list hold the
   consed cells, so probe, bind and rollback all hash a precomputed tag. *)
module HK = Util.Hashcons.Make (struct
  type t = key

  let equal (a : key) (b : key) = a = b
  let hash (k : key) = Hashtbl.hash k
end)

type result = { rep : rep array (* per value; [Rval v] itself when unique *) }

let run (f : Ir.Func.t) : result =
  let ni = Ir.Func.num_instrs f in
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let out = Array.make ni (Rval (-1)) in
  let known = Array.make ni false in
  let arena = HK.create ~size:64 () in
  let table : rep HK.Tbl.t = HK.Tbl.create 64 in
  let undo = ref [] in
  let bind ck r =
    HK.Tbl.add table ck r;
    undo := ck :: !undo
  in
  let fold_key = function
    | Kunop (op, a) -> Rules.Engine.rewrite_unop (Rules.Engine.shared ()) rules_subject op a
    | Kbinop (op, a, b) ->
        Rules.Engine.rewrite_binop (Rules.Engine.shared ()) rules_subject op a b
    | Kcmp (op, Rconst a, Rconst b) -> Some (Rconst (Ir.Types.eval_cmp op a b))
    | Kconst n -> Some (Rconst n)
    | _ -> None
  in
  let number v k =
    match fold_key k with
    | Some r -> r
    | None -> (
        let ck = HK.hashcons arena k in
        match HK.Tbl.find_opt table ck with
        | Some r -> r
        | None ->
            bind ck (Rval v);
            Rval v)
  in
  let rep_of a = if known.(a) then out.(a) else Rval a in
  let rec walk b =
    let mark = !undo in
    Array.iter
      (fun i ->
        match Ir.Func.instr f i with
        | Ir.Func.Const n ->
            out.(i) <- number i (Kconst n);
            known.(i) <- true
        | Ir.Func.Param k ->
            out.(i) <- number i (Kparam k);
            known.(i) <- true
        | Ir.Func.Opaque (tag, args) ->
            out.(i) <- number i (Kopq (tag, Array.to_list (Array.map rep_of args)));
            known.(i) <- true
        | Ir.Func.Unop (op, a) ->
            out.(i) <- number i (Kunop (op, rep_of a));
            known.(i) <- true
        | Ir.Func.Binop (op, a, b') ->
            out.(i) <- number i (Kbinop (op, rep_of a, rep_of b'));
            known.(i) <- true
        | Ir.Func.Cmp (op, a, b') ->
            out.(i) <- number i (Kcmp (op, rep_of a, rep_of b'));
            known.(i) <- true
        | Ir.Func.Phi args ->
            let cyclic = Array.exists (fun a -> not known.(a)) args in
            if cyclic then out.(i) <- Rval i
            else begin
              let reps = Array.to_list (Array.map rep_of args) in
              match reps with
              | first :: rest when List.for_all (rep_equal first) rest -> out.(i) <- first
              | _ -> out.(i) <- number i (Kphi (b, reps))
            end;
            known.(i) <- true
        | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ | Ir.Func.Return _ -> ())
      (Ir.Func.block f b).Ir.Func.instrs;
    Array.iter walk dom.Analysis.Dom.children.(b);
    (* Leave scope: undo the bindings made in this block. *)
    let rec rollback () =
      if !undo != mark then
        match !undo with
        | ck :: rest ->
            HK.Tbl.remove table ck;
            undo := rest;
            rollback ()
        | [] -> ()
    in
    rollback ()
  in
  walk Ir.Func.entry;
  { rep = out }

let constant_of r v = match r.rep.(v) with Rconst n -> Some n | Rval _ -> None
let congruent r v w = rep_equal r.rep.(v) r.rep.(w)

(* Simpson's hash-based optimistic value numbering algorithms [13]:

   - [rpo]: repeated reverse-post-order passes over the whole routine with a
     hash table cleared before every pass, until the value numbers reach a
     fixed point;
   - [scc]: Tarjan's strongly connected components of the SSA use-def graph,
     processed in dependency order — acyclic values are numbered once
     against a persistent "valid" table, cyclic components iterate against
     an "optimistic" table cleared per round.

   On acyclic code the two compute identical partitions. On cyclic code the
   SCC algorithm refines (finds no more than) the RPO result: two
   *independent* φ-cycles that advance in lockstep are congruent under
   whole-routine RPO hashing — both cycles hash into the same table while
   still optimistic — but live in separate use-def components, which the
   SCC algorithm numbers one at a time against already-committed keys. The
   tests check refinement in general and equality on acyclic programs; the
   engine's AWZ emulation matches RPO exactly. *)

let top = -1

(* The key of [v]'s instruction under current value numbers; [None] when
   the value cannot be keyed yet (φ whose live args are all ⊤). *)
let key_of (f : Ir.Func.t) (vn : int array) v : [ `Key of Hashkey.t | `Copy of int | `Top ] =
  match Ir.Func.instr f v with
  | Ir.Func.Const n -> `Key (Hashkey.Kconst n)
  | Ir.Func.Param k -> `Key (Hashkey.Kparam k)
  | Ir.Func.Opaque (tag, args) ->
      `Key (Hashkey.Kopq (tag, Array.to_list (Array.map (fun a -> vn.(a)) args)))
  | Ir.Func.Unop (op, a) -> `Key (Hashkey.Kunop (op, vn.(a)))
  | Ir.Func.Binop (op, a, b) -> `Key (Hashkey.Kbinop (op, vn.(a), vn.(b)))
  | Ir.Func.Cmp (op, a, b) -> `Key (Hashkey.Kcmp (op, vn.(a), vn.(b)))
  | Ir.Func.Phi args ->
      let reps =
        Array.to_list args
        |> List.map (fun a -> vn.(a))
        |> List.filter (fun r -> r <> top)
      in
      (match reps with
      | [] -> `Top
      | first :: rest ->
          if List.for_all (fun r -> r = first) rest then `Copy first
          else `Key (Hashkey.Kphi (Ir.Func.block_of_instr f v, reps)))
  | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ | Ir.Func.Return _ -> `Top

(* Values in instruction order of an RPO block traversal. *)
let values_in_rpo f =
  let g = Analysis.Graph.of_func f in
  let rpo = Analysis.Rpo.compute g in
  let out = ref [] in
  Array.iter
    (fun b ->
      Array.iter
        (fun i -> if Ir.Func.defines_value (Ir.Func.instr f i) then out := i :: !out)
        (Ir.Func.block f b).Ir.Func.instrs)
    rpo.Analysis.Rpo.order;
  Array.of_list (List.rev !out)

type result = { vn : int array; passes : int }

let rpo (f : Ir.Func.t) : result =
  let order = values_in_rpo f in
  let vn = Array.make (Ir.Func.num_instrs f) top in
  (* One arena per run; per-pass tables key on the consed cells, so a key
     recurring across passes probes by precomputed tag. *)
  let arena = Hashkey.create_arena () in
  let passes = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    incr passes;
    let table = Hashkey.Consed_table.create 64 in
    Array.iter
      (fun v ->
        let nv =
          match key_of f vn v with
          | `Top -> top
          | `Copy r -> r
          | `Key k -> (
              let ck = Hashkey.intern arena k in
              match Hashkey.Consed_table.find_opt table ck with
              | Some r -> r
              | None ->
                  Hashkey.Consed_table.replace table ck v;
                  v)
        in
        if vn.(v) <> nv then begin
          vn.(v) <- nv;
          changed := true
        end)
      order
  done;
  { vn; passes = !passes }

(* Tarjan SCCs of the use-def graph (value -> operand values). *)
let sccs_of (f : Ir.Func.t) (order : int array) =
  let ni = Ir.Func.num_instrs f in
  let index = Array.make ni (-1) in
  let low = Array.make ni 0 in
  let onstack = Array.make ni false in
  let stack = ref [] in
  let counter = ref 0 in
  let sccs = ref [] in
  let rec strongconnect v =
    index.(v) <- !counter;
    low.(v) <- !counter;
    incr counter;
    stack := v :: !stack;
    onstack.(v) <- true;
    Ir.Func.iter_operands
      (fun w ->
        if Ir.Func.defines_value (Ir.Func.instr f w) then
          if index.(w) < 0 then begin
            strongconnect w;
            low.(v) <- min low.(v) low.(w)
          end
          else if onstack.(w) then low.(v) <- min low.(v) index.(w))
      (Ir.Func.instr f v);
    if low.(v) = index.(v) then begin
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            onstack.(w) <- false;
            if w = v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      sccs := pop [] :: !sccs
    end
  in
  Array.iter (fun v -> if index.(v) < 0 then strongconnect v) order;
  (* Tarjan pops an SCC only after all SCCs it depends on: the accumulated
     list (reversed) is already in dependency order. *)
  List.rev !sccs

let scc (f : Ir.Func.t) : result =
  let order = values_in_rpo f in
  let rpo_pos = Array.make (Ir.Func.num_instrs f) max_int in
  Array.iteri (fun k v -> rpo_pos.(v) <- k) order;
  let vn = Array.make (Ir.Func.num_instrs f) top in
  let arena = Hashkey.create_arena () in
  let valid = Hashkey.Consed_table.create 64 in
  let passes = ref 0 in
  let self_dependent v =
    let dep = ref false in
    Ir.Func.iter_operands (fun w -> if w = v then dep := true) (Ir.Func.instr f v);
    !dep
  in
  let number_with table v =
    match key_of f vn v with
    | `Top -> top
    | `Copy r -> r
    | `Key k -> (
        let ck = Hashkey.intern arena k in
        match Hashkey.Consed_table.find_opt valid ck with
        | Some r -> r
        | None -> (
            match Hashkey.Consed_table.find_opt table ck with
            | Some r -> r
            | None ->
                Hashkey.Consed_table.replace table ck v;
                v))
  in
  let commit table =
    Hashkey.Consed_table.iter
      (fun k r ->
        if not (Hashkey.Consed_table.mem valid k) then
          Hashkey.Consed_table.replace valid k r)
      table
  in
  List.iter
    (fun comp ->
      match comp with
      | [ v ] when not (self_dependent v) ->
          incr passes;
          vn.(v) <- number_with valid v
      | comp ->
          let comp = List.sort (fun a b -> compare rpo_pos.(a) rpo_pos.(b)) comp in
          let changed = ref true in
          while !changed do
            changed := false;
            incr passes;
            let opt = Hashkey.Consed_table.create 16 in
            List.iter
              (fun v ->
                let nv = number_with opt v in
                if vn.(v) <> nv then begin
                  vn.(v) <- nv;
                  changed := true
                end)
              comp;
            if not !changed then commit opt
          done)
    (sccs_of f order);
  { vn; passes = !passes }

(** SplitMix64 pseudo-random numbers: deterministic across platforms and
    OCaml versions, so generated workloads are stable artifacts. *)

type t

val create : int -> t
(** A generator seeded with the given integer. Equal seeds give equal
    streams. *)

val copy : t -> t
(** An independent generator that continues the same stream. *)

val next_int64 : t -> int64
(** The next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument when [bound <= 0]. *)

val range : t -> int -> int -> int
(** [range t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument when [hi < lo]. *)

val bool : t -> bool

val chance : t -> int -> int -> bool
(** [chance t num den] is [true] with probability [num/den]. *)

val choose : t -> 'a array -> 'a
(** A uniformly random element.
    @raise Invalid_argument on an empty array. *)

val weighted : t -> int array -> int
(** An index distributed according to the given non-negative weights.
    @raise Invalid_argument when all weights are zero or negative. *)

lib/util/vec.mli:

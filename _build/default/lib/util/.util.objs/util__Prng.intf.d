lib/util/prng.mli:

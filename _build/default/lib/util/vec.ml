(* Growable vectors; the IR builder and worklists are built on these. *)

type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ~dummy = { data = Array.make 8 dummy; len = 0; dummy }

let length v = v.len

let is_empty v = v.len = 0

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  v.data.(i)

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  v.data.(i) <- x

let ensure_capacity v n =
  if n > Array.length v.data then begin
    let cap = max n (2 * Array.length v.data) in
    let data = Array.make cap v.dummy in
    Array.blit v.data 0 data 0 v.len;
    v.data <- data
  end

let push v x =
  ensure_capacity v (v.len + 1);
  v.data.(v.len) <- x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let to_array v = Array.sub v.data 0 v.len

let of_array ~dummy a =
  { data = Array.copy a; len = Array.length a; dummy }

let iter f v =
  for i = 0 to v.len - 1 do
    f v.data.(i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i v.data.(i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc v.data.(i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_list v = List.init v.len (fun i -> v.data.(i))

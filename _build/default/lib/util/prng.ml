(* SplitMix64: a small deterministic PRNG so that workloads are reproducible
   across machines independently of the OCaml stdlib Random implementation. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

(* Uniform in [lo, hi] inclusive. *)
let range t lo hi =
  if hi < lo then invalid_arg "Prng.range";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* True with probability [num]/[den]. *)
let chance t num den = int t den < num

(* Pick an element of a non-empty array. *)
let choose t a =
  if Array.length a = 0 then invalid_arg "Prng.choose";
  a.(int t (Array.length a))

(* Pick an index according to integer weights. *)
let weighted t weights =
  let total = Array.fold_left ( + ) 0 weights in
  if total <= 0 then invalid_arg "Prng.weighted";
  let r = ref (int t total) in
  let result = ref (-1) in
  Array.iteri
    (fun i w ->
      if !result < 0 then
        if !r < w then result := i else r := !r - w)
    weights;
  !result

(** Growable vectors with explicit dummy elements (so cleared slots do not
    retain pointers). Used by the IR builder and the GVN work structures. *)

type 'a t

val create : dummy:'a -> 'a t
(** An empty vector; [dummy] fills unused capacity. *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val get : 'a t -> int -> 'a
(** @raise Invalid_argument when the index is out of bounds. *)

val set : 'a t -> int -> 'a -> unit
(** @raise Invalid_argument when the index is out of bounds. *)

val push : 'a t -> 'a -> unit
(** Append at the end, growing capacity as needed. *)

val pop : 'a t -> 'a
(** Remove and return the last element.
    @raise Invalid_argument on an empty vector. *)

val clear : 'a t -> unit
(** Remove all elements (capacity is retained, contents overwritten with the
    dummy). *)

val to_array : 'a t -> 'a array
(** A fresh array of the current contents. *)

val of_array : dummy:'a -> 'a array -> 'a t
val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_list : 'a t -> 'a list

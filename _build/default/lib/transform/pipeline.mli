(** The "HLO analog": a multi-round scalar optimization pipeline in which
    GVN is one pass among several — the setting of the paper's Table 1,
    which measures GVN's share of total optimization time. Each round runs
    CFG cleanup, analyses (dominators, postdominators, frontiers, loops,
    def-use, liveness), local value numbering, DCE, GVN + rewrite, and
    cleanup again. *)

type timing = { pass : string; seconds : float }

type result = {
  func : Ir.Func.t;
  timings : timing list;  (** per-pass wall-clock times, in order *)
  gvn_seconds : float;  (** total time in the GVN passes *)
  total_seconds : float;
  gvn_state : Pgvn.State.t option;  (** state of the last GVN run *)
}

val analysis_pass : Ir.Func.t -> Ir.Func.t
(** Recompute the standard analyses (identity on the function). *)

val run : ?config:Pgvn.Config.t -> ?rounds:int -> Ir.Func.t -> result
(** Default: {!Pgvn.Config.full}, 2 rounds. *)

(* The "HLO analog": a multi-pass scalar optimization pipeline in which GVN
   is one pass among several, so that the paper's Table 1 measurement — GVN
   time as a fraction of total optimization time — has a meaningful
   denominator. The pass mix is the usual early-scalar lineup: CFG cleanup,
   local value numbering, dead code elimination, GVN + rewrite, cleanup. *)

type timing = { pass : string; seconds : float }

type result = {
  func : Ir.Func.t;
  timings : timing list;
  gvn_seconds : float;
  total_seconds : float;
  gvn_state : Pgvn.State.t option; (* the last GVN run's state *)
}

let time_pass name f x timings =
  let t0 = Unix.gettimeofday () in
  let y = f x in
  let dt = Unix.gettimeofday () -. t0 in
  timings := { pass = name; seconds = dt } :: !timings;
  y

(* The analysis bookkeeping a real pipeline recomputes between passes:
   dominators, postdominators, dominance frontiers, loops, def-use chains
   and value liveness. *)
let analysis_pass (f : Ir.Func.t) : Ir.Func.t =
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let (_ : Analysis.Postdom.t) = Analysis.Postdom.compute g in
  let (_ : int array array) = Analysis.Domfront.compute g dom in
  let (_ : Analysis.Loops.t) = Analysis.Loops.compute g in
  let (_ : int array array) = Ir.Func.def_use f in
  let (_ : Analysis.Liveness.t) = Analysis.Liveness.compute f in
  f

let run ?(config = Pgvn.Config.full) ?(rounds = 2) (f : Ir.Func.t) : result =
  let timings = ref [] in
  let gvn_state = ref None in
  let t0 = Unix.gettimeofday () in
  let current = ref f in
  for round = 1 to rounds do
    let tag name = Printf.sprintf "%s#%d" name round in
    current := time_pass (tag "simplify-cfg") Simplify_cfg.fixpoint !current timings;
    current := time_pass (tag "analyses") analysis_pass !current timings;
    current := time_pass (tag "lvn") Lvn.run !current timings;
    current := time_pass (tag "dce") Dce.run !current timings;
    current := time_pass (tag "analyses") analysis_pass !current timings;
    current :=
      time_pass (tag "gvn")
        (fun fn ->
          let st = Pgvn.Driver.run config fn in
          gvn_state := Some st;
          Apply.rebuild st fn)
        !current timings;
    current := time_pass (tag "dce") Dce.run !current timings;
    current := time_pass (tag "analyses") analysis_pass !current timings;
    current := time_pass (tag "simplify-cfg") Simplify_cfg.fixpoint !current timings;
    current := time_pass (tag "lvn") Lvn.run !current timings;
    current := time_pass (tag "dce") Dce.run !current timings
  done;
  let total = Unix.gettimeofday () -. t0 in
  let gvn_seconds =
    List.fold_left
      (fun acc t ->
        if String.length t.pass >= 3 && String.sub t.pass 0 3 = "gvn" then acc +. t.seconds
        else acc)
      0.0 !timings
  in
  {
    func = !current;
    timings = List.rev !timings;
    gvn_seconds;
    total_seconds = total;
    gvn_state = !gvn_state;
  }

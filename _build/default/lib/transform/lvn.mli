(** Local (per-block) value numbering with constant folding: the cheap
    early pass a pipeline runs before global value numbering. Replaces an
    instruction with an earlier identical one in the same block (with
    commutative operand normalization), or with a folded constant. *)

val run : Ir.Func.t -> Ir.Func.t

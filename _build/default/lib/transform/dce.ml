(* Dead code elimination: every instruction in this IR is pure (opaque calls
   model *pure* unknown functions), so an instruction is live only if a
   terminator transitively depends on it. *)

let live_set (f : Ir.Func.t) =
  let live = Array.make (Ir.Func.num_instrs f) false in
  let rec mark v =
    if not live.(v) then begin
      live.(v) <- true;
      Ir.Func.iter_operands mark (Ir.Func.instr f v)
    end
  in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    match Ir.Func.instr f i with
    | Ir.Func.Branch c | Ir.Func.Switch (c, _) -> mark c
    | Ir.Func.Return v -> mark v
    | _ -> ()
  done;
  live

let run (f : Ir.Func.t) : Ir.Func.t =
  let live = live_set f in
  let all_live = ref true in
  Array.iteri
    (fun i l -> if (not l) && Ir.Func.defines_value (Ir.Func.instr f i) then all_live := false)
    live;
  if !all_live then f
  else begin
    let nb = Ir.Func.num_blocks f in
    let bld = Ir.Builder.create ~name:f.Ir.Func.name ~nparams:f.Ir.Func.nparams in
    for _ = 0 to nb - 1 do
      ignore (Ir.Builder.add_block bld)
    done;
    let value_map = Array.make (Ir.Func.num_instrs f) (-1) in
    let resolve v = value_map.(v) in
    let phis = ref [] in
    let g = Analysis.Graph.of_func f in
    let rpo = Analysis.Rpo.compute g in
    (* Phis are created for every block first (their arguments are wired
       after all definitions exist, so back edges are no problem). *)
    Array.iter
      (fun b ->
        Array.iter
          (fun i ->
            match Ir.Func.instr f i with
            | Ir.Func.Phi args when live.(i) ->
                let p = Ir.Builder.phi bld b in
                value_map.(i) <- p;
                phis := (b, p, args) :: !phis
            | _ -> ())
          (Ir.Func.block f b).Ir.Func.instrs)
      rpo.Analysis.Rpo.order;
    Array.iter
      (fun b ->
        Array.iter
          (fun i ->
            if live.(i) then
              match Ir.Func.instr f i with
              | Ir.Func.Const c -> value_map.(i) <- Ir.Builder.const bld b c
              | Ir.Func.Param k -> value_map.(i) <- Ir.Builder.param bld b k
              | Ir.Func.Unop (op, a) -> value_map.(i) <- Ir.Builder.unop bld b op (resolve a)
              | Ir.Func.Binop (op, a, b') ->
                  value_map.(i) <- Ir.Builder.binop bld b op (resolve a) (resolve b')
              | Ir.Func.Cmp (op, a, b') ->
                  value_map.(i) <- Ir.Builder.cmp bld b op (resolve a) (resolve b')
              | Ir.Func.Opaque (tag, args) ->
                  value_map.(i) <-
                    Ir.Builder.opaque ~tag bld b (List.map resolve (Array.to_list args))
              | Ir.Func.Phi _ | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ | Ir.Func.Return _ -> ())
          (Ir.Func.block f b).Ir.Func.instrs)
      rpo.Analysis.Rpo.order;
    (* Edges, preserving structure; remember new edge ids. *)
    let edge_map = Array.make (Ir.Func.num_edges f) (-1) in
    for b = 0 to nb - 1 do
      let blk = Ir.Func.block f b in
      match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
      | Ir.Func.Jump -> edge_map.(blk.Ir.Func.succs.(0)) <- Ir.Builder.jump bld b ~dst:(Ir.Func.edge f blk.Ir.Func.succs.(0)).Ir.Func.dst
      | Ir.Func.Branch c ->
          let et, ef =
            Ir.Builder.branch bld b (resolve c)
              ~ift:(Ir.Func.edge f blk.Ir.Func.succs.(0)).Ir.Func.dst
              ~iff:(Ir.Func.edge f blk.Ir.Func.succs.(1)).Ir.Func.dst
          in
          edge_map.(blk.Ir.Func.succs.(0)) <- et;
          edge_map.(blk.Ir.Func.succs.(1)) <- ef
      | Ir.Func.Switch (c, cases) ->
          let case_args =
            Array.to_list
              (Array.mapi
                 (fun ix k -> (k, (Ir.Func.edge f blk.Ir.Func.succs.(ix)).Ir.Func.dst))
                 cases)
          in
          let default = (Ir.Func.edge f blk.Ir.Func.succs.(Array.length cases)).Ir.Func.dst in
          let case_edges, default_edge =
            Ir.Builder.switch bld b (resolve c) ~cases:case_args ~default
          in
          List.iteri (fun ix e -> edge_map.(blk.Ir.Func.succs.(ix)) <- e) case_edges;
          edge_map.(blk.Ir.Func.succs.(Array.length cases)) <- default_edge
      | Ir.Func.Return v -> Ir.Builder.ret bld b (resolve v)
      | _ -> invalid_arg "Dce.run: missing terminator"
    done;
    List.iter
      (fun (b, p, args) ->
        let preds = (Ir.Func.block f b).Ir.Func.preds in
        Array.iteri
          (fun ix e -> Ir.Builder.set_phi_arg bld ~phi:p ~edge:edge_map.(e) (resolve args.(ix)))
          preds)
      !phis;
    Ir.Builder.finish bld
  end

(** CFG cleanup: fuse a block into its unconditional successor when it is
    that successor's only predecessor (collapsing the successor's
    single-argument φs), and drop structurally unreachable blocks. *)

val run : Ir.Func.t -> Ir.Func.t
val fixpoint : ?max_rounds:int -> Ir.Func.t -> Ir.Func.t

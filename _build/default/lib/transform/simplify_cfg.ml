(* Straight-line block merging: when a block ends in an unconditional jump
   to a block whose only predecessor it is, the two are fused. φs in the
   fused block necessarily have a single argument and collapse to it.
   Structurally unreachable blocks are dropped. *)

let run (f : Ir.Func.t) : Ir.Func.t =
  let nb = Ir.Func.num_blocks f in
  let g = Analysis.Graph.of_func f in
  let reach = Analysis.Graph.reachable g in
  (* [next.(b)] = the unique successor merged into [b]'s chain. *)
  let next = Array.make nb (-1) in
  let merged = Array.make nb false in
  for b = 0 to nb - 1 do
    if reach.(b) then
      match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
      | Ir.Func.Jump ->
          let e = (Ir.Func.block f b).Ir.Func.succs.(0) in
          let c = (Ir.Func.edge f e).Ir.Func.dst in
          if c <> b && c <> Ir.Func.entry && Array.length (Ir.Func.block f c).Ir.Func.preds = 1
          then begin
            next.(b) <- c;
            merged.(c) <- true
          end
      | _ -> ()
  done;
  let nothing_to_do =
    Array.for_all (fun n -> n < 0) next && Array.for_all Fun.id reach
  in
  if nothing_to_do then f
  else begin
    let bld = Ir.Builder.create ~name:f.Ir.Func.name ~nparams:f.Ir.Func.nparams in
    let block_map = Array.make nb (-1) in
    (* Heads: reachable blocks not merged into a predecessor. The head of a
       chain hosts every instruction of the chain. *)
    for b = 0 to nb - 1 do
      if reach.(b) && not merged.(b) then block_map.(b) <- Ir.Builder.add_block bld
    done;
    let head_of = Array.init nb (fun b -> b) in
    for b = 0 to nb - 1 do
      if reach.(b) && not merged.(b) then begin
        let rec follow c = if next.(c) >= 0 then follow next.(c) else c in
        ignore (follow b);
        let rec assign c =
          head_of.(c) <- b;
          if next.(c) >= 0 then assign next.(c)
        in
        assign b
      end
    done;
    let value_map = Array.make (Ir.Func.num_instrs f) (-1) in
    let alias = Hashtbl.create 16 in
    let rec resolve v =
      match Hashtbl.find_opt alias v with
      | Some a -> resolve a
      | None ->
          if value_map.(v) < 0 then invalid_arg "Simplify_cfg: unresolved value";
          value_map.(v)
    in
    let phi_wires = ref [] in
    let emit_chain_instrs head =
      let nb' = block_map.(head) in
      let rec emit b ~is_head =
        let blk = Ir.Func.block f b in
        Array.iter
          (fun i ->
            match Ir.Func.instr f i with
            | Ir.Func.Const c -> value_map.(i) <- Ir.Builder.const bld nb' c
            | Ir.Func.Param k -> value_map.(i) <- Ir.Builder.param bld nb' k
            | Ir.Func.Unop (op, a) -> value_map.(i) <- Ir.Builder.unop bld nb' op (resolve a)
            | Ir.Func.Binop (op, a, b') ->
                value_map.(i) <- Ir.Builder.binop bld nb' op (resolve a) (resolve b')
            | Ir.Func.Cmp (op, a, b') ->
                value_map.(i) <- Ir.Builder.cmp bld nb' op (resolve a) (resolve b')
            | Ir.Func.Opaque (tag, args) ->
                value_map.(i) <-
                  Ir.Builder.opaque ~tag bld nb' (List.map resolve (Array.to_list args))
            | Ir.Func.Phi args ->
                if is_head then begin
                  let p = Ir.Builder.phi bld nb' in
                  value_map.(i) <- p;
                  phi_wires := (b, p, args) :: !phi_wires
                end
                else
                  (* Interior of a chain: single predecessor, single arg. *)
                  Hashtbl.replace alias i args.(0)
            | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ | Ir.Func.Return _ -> ())
          blk.Ir.Func.instrs;
        if next.(b) >= 0 then emit next.(b) ~is_head:false
      in
      emit head ~is_head:true
    in
    let rpo = Analysis.Rpo.compute g in
    (* Pre-create head φs in RPO before emitting bodies? φs are created
       during emission; interior non-φ operands may reference a φ of a later
       chain through a back edge only via φ args (wired last), so plain RPO
       emission is sufficient. *)
    Array.iter (fun b -> if (not merged.(b)) && reach.(b) then emit_chain_instrs b) rpo.Analysis.Rpo.order;
    let edge_map = Array.make (Ir.Func.num_edges f) (-1) in
    for b = 0 to nb - 1 do
      if reach.(b) && not merged.(b) then begin
        let rec tail c = if next.(c) >= 0 then tail next.(c) else c in
        let t = tail b in
        let blk = Ir.Func.block f t in
        match Ir.Func.instr f (Ir.Func.terminator_of_block f t) with
        | Ir.Func.Jump ->
            let e = blk.Ir.Func.succs.(0) in
            edge_map.(e) <-
              Ir.Builder.jump bld block_map.(b)
                ~dst:block_map.(head_of.((Ir.Func.edge f e).Ir.Func.dst))
        | Ir.Func.Branch c ->
            let et = blk.Ir.Func.succs.(0) and ef = blk.Ir.Func.succs.(1) in
            let net, nef =
              Ir.Builder.branch bld block_map.(b) (resolve c)
                ~ift:block_map.(head_of.((Ir.Func.edge f et).Ir.Func.dst))
                ~iff:block_map.(head_of.((Ir.Func.edge f ef).Ir.Func.dst))
            in
            edge_map.(et) <- net;
            edge_map.(ef) <- nef
        | Ir.Func.Switch (c, cases) ->
            let case_args =
              Array.to_list
                (Array.mapi
                   (fun ix k ->
                     (k, block_map.(head_of.((Ir.Func.edge f blk.Ir.Func.succs.(ix)).Ir.Func.dst))))
                   cases)
            in
            let default =
              block_map.(head_of.((Ir.Func.edge f blk.Ir.Func.succs.(Array.length cases)).Ir.Func.dst))
            in
            let case_edges, default_edge =
              Ir.Builder.switch bld block_map.(b) (resolve c) ~cases:case_args ~default
            in
            List.iteri (fun ix e -> edge_map.(blk.Ir.Func.succs.(ix)) <- e) case_edges;
            edge_map.(blk.Ir.Func.succs.(Array.length cases)) <- default_edge
        | Ir.Func.Return v -> Ir.Builder.ret bld block_map.(b) (resolve v)
        | _ -> invalid_arg "Simplify_cfg: missing terminator"
      end
    done;
    List.iter
      (fun (b, p, args) ->
        let preds = (Ir.Func.block f b).Ir.Func.preds in
        Array.iteri
          (fun ix e ->
            if edge_map.(e) >= 0 then
              Ir.Builder.set_phi_arg bld ~phi:p ~edge:edge_map.(e) (resolve args.(ix)))
          preds)
      !phi_wires;
    Ir.Builder.finish bld
  end

(* Iterate to a fixpoint (merging can enable further merging). *)
let rec fixpoint ?(max_rounds = 10) f =
  if max_rounds = 0 then f
  else
    let f' = run f in
    if Ir.Func.num_blocks f' = Ir.Func.num_blocks f then f' else fixpoint ~max_rounds:(max_rounds - 1) f'

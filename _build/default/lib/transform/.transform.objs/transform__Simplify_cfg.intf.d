lib/transform/simplify_cfg.mli: Ir

lib/transform/simplify_cfg.ml: Analysis Array Fun Hashtbl Ir List

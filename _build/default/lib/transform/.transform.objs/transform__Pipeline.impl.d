lib/transform/pipeline.ml: Analysis Apply Dce Ir List Lvn Pgvn Printf Simplify_cfg String Unix

lib/transform/apply.ml: Analysis Array Hashtbl Ir List Pgvn Printf

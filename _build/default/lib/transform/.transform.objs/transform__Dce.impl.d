lib/transform/dce.ml: Analysis Array Ir List

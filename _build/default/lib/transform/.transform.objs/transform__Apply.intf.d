lib/transform/apply.mli: Analysis Ir Pgvn

lib/transform/pipeline.mli: Ir Pgvn

lib/transform/lvn.mli: Ir

lib/transform/lvn.ml: Analysis Array Hashtbl Ir List

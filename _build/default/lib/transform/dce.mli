(** Dead code elimination. Every instruction in this IR is pure (opaque
    calls model pure unknown functions), so an instruction is live only if
    a terminator transitively depends on it. *)

val live_set : Ir.Func.t -> bool array
val run : Ir.Func.t -> Ir.Func.t

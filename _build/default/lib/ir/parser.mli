(** Recursive-descent parser for mini-C, with C operator precedence
    (logical or lowest; then logical and; bitwise or/xor/and; equality;
    relational; shifts; additive; multiplicative; unary). All binary
    operators associate left. *)

exception Error of string * int
(** Message and byte offset. *)

val parse_program : string -> Ast.routine list
(** Parse a whole source file of one or more routines.
    @raise Error (or {!Lexer.Error}) on malformed input. *)

val parse_one : string -> Ast.routine
(** Parse a file expected to hold exactly one routine. *)

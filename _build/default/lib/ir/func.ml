(* The SSA intermediate representation.

   A function is frozen after construction (see {!Builder}): analyses compute
   side tables and transformations build a fresh function, so instruction ids,
   block ids and edge ids stay stable for the lifetime of a [t].

   Conventions:
   - an instruction id doubles as the id of the value it defines;
   - block 0 is the entry block;
   - a block's instruction list holds phis first and exactly one terminator
     last;
   - [Phi args]: [args.(i)] is the value carried by the block's [preds.(i)]
     edge;
   - a [Branch] block has [succs.(0)] as its true edge and [succs.(1)] as its
     false edge. *)

type value = int

type instr =
  | Const of int
  | Param of int
  | Unop of Types.unop * value
  | Binop of Types.binop * value * value
  | Cmp of Types.cmp * value * value
  | Opaque of int * value array
      (* uninterpreted pure function [tag](args): models calls and other
         operations GVN must treat as black boxes (but may still congruence
         on identical tags and congruent arguments) *)
  | Phi of value array
  | Jump
  | Branch of value
  | Switch of value * int array
      (* [Switch (v, cases)]: the block has [Array.length cases + 1]
         outgoing edges; edge i takes when v = cases.(i), the last edge is
         the default. Case constants are distinct. *)
  | Return of value

type edge = { src : int; dst : int; src_ix : int; dst_ix : int }

type block = { instrs : int array; preds : int array; succs : int array }

type t = {
  name : string;
  nparams : int;
  blocks : block array;
  instrs : instr array;
  instr_block : int array;
  edges : edge array;
}

let entry = 0
let num_blocks f = Array.length f.blocks
let num_instrs f = Array.length f.instrs
let num_edges f = Array.length f.edges
let block f b = f.blocks.(b)
let instr f i = f.instrs.(i)
let edge f e = f.edges.(e)
let block_of_instr f i = f.instr_block.(i)

let defines_value = function
  | Const _ | Param _ | Unop _ | Binop _ | Cmp _ | Opaque _ | Phi _ -> true
  | Jump | Branch _ | Switch _ | Return _ -> false

let is_phi = function Phi _ -> true | _ -> false
let is_terminator = function Jump | Branch _ | Switch _ | Return _ -> true | _ -> false

let terminator_of_block f b =
  let instrs = f.blocks.(b).instrs in
  instrs.(Array.length instrs - 1)

(* Operands in order; phi operands follow the block's pred-edge order. *)
let operands = function
  | Const _ | Param _ | Jump -> [||]
  | Unop (_, a) | Branch a | Switch (a, _) | Return a -> [| a |]
  | Binop (_, a, b) | Cmp (_, a, b) -> [| a; b |]
  | Opaque (_, args) -> Array.copy args
  | Phi args -> Array.copy args

let iter_operands g = function
  | Const _ | Param _ | Jump -> ()
  | Unop (_, a) | Branch a | Switch (a, _) | Return a -> g a
  | Binop (_, a, b) | Cmp (_, a, b) ->
      g a;
      g b
  | Opaque (_, args) | Phi args -> Array.iter g args

(* Def-use chains: for each value, the instructions that use it. *)
let def_use f =
  let counts = Array.make (num_instrs f) 0 in
  Array.iter (fun ins -> iter_operands (fun v -> counts.(v) <- counts.(v) + 1) ins) f.instrs;
  let users = Array.map (fun c -> Array.make c (-1)) counts in
  let fill = Array.make (num_instrs f) 0 in
  Array.iteri
    (fun i ins ->
      iter_operands
        (fun v ->
          users.(v).(fill.(v)) <- i;
          fill.(v) <- fill.(v) + 1)
        ins)
    f.instrs;
  users

(* Block-level successor/predecessor arrays, for the CFG analyses. *)
let succ_blocks f =
  Array.map (fun b -> Array.map (fun e -> f.edges.(e).dst) b.succs) f.blocks

let pred_blocks f =
  Array.map (fun b -> Array.map (fun e -> f.edges.(e).src) b.preds) f.blocks

let phis_of_block f b =
  let instrs = f.blocks.(b).instrs in
  let rec count i =
    if i < Array.length instrs && is_phi f.instrs.(instrs.(i)) then count (i + 1) else i
  in
  Array.sub instrs 0 (count 0)

(* Structural well-formedness; raises [Failure] with a diagnostic. *)
let validate f =
  let fail fmt = Printf.ksprintf failwith fmt in
  let nb = num_blocks f and ni = num_instrs f and ne = num_edges f in
  if nb = 0 then fail "function %s has no blocks" f.name;
  let check_value ctx v =
    if v < 0 || v >= ni then fail "%s: value %d out of range" ctx v;
    if not (defines_value f.instrs.(v)) then fail "%s: operand %d defines no value" ctx v
  in
  Array.iteri
    (fun e { src; dst; src_ix; dst_ix } ->
      if src < 0 || src >= nb || dst < 0 || dst >= nb then fail "edge %d endpoints" e;
      if f.blocks.(src).succs.(src_ix) <> e then fail "edge %d src_ix mismatch" e;
      if f.blocks.(dst).preds.(dst_ix) <> e then fail "edge %d dst_ix mismatch" e)
    f.edges;
  if Array.length f.blocks.(entry).preds <> 0 then fail "entry block has predecessors";
  Array.iteri
    (fun b (blk : block) ->
      let n = Array.length blk.instrs in
      if n = 0 then fail "block %d empty" b;
      let seen_nonphi = ref false in
      Array.iteri
        (fun pos i ->
          if i < 0 || i >= ni then fail "block %d: instr id %d out of range" b i;
          if f.instr_block.(i) <> b then fail "instr %d: wrong instr_block" i;
          let ins = f.instrs.(i) in
          if is_terminator ins && pos <> n - 1 then fail "block %d: terminator not last" b;
          if pos = n - 1 && not (is_terminator ins) then fail "block %d: no terminator" b;
          (match ins with
          | Phi args ->
              if !seen_nonphi then fail "block %d: phi %d after non-phi" b i;
              if Array.length args <> Array.length blk.preds then
                fail "phi %d: %d args for %d preds" i (Array.length args)
                  (Array.length blk.preds)
          | _ -> seen_nonphi := true);
          iter_operands (check_value (Printf.sprintf "instr %d" i)) ins;
          match ins with
          | Jump ->
              if Array.length blk.succs <> 1 then fail "block %d: jump succs" b
          | Branch _ ->
              if Array.length blk.succs <> 2 then fail "block %d: branch succs" b
          | Switch (_, cases) ->
              if Array.length blk.succs <> Array.length cases + 1 then
                fail "block %d: switch succs" b;
              let sorted = Array.copy cases in
              Array.sort compare sorted;
              for k = 1 to Array.length sorted - 1 do
                if sorted.(k) = sorted.(k - 1) then fail "block %d: duplicate switch case" b
              done
          | Return _ ->
              if Array.length blk.succs <> 0 then fail "block %d: return succs" b
          | _ -> ())
        blk.instrs;
      Array.iter (fun e -> if e < 0 || e >= ne then fail "block %d: edge id" b) blk.preds;
      Array.iter (fun e -> if e < 0 || e >= ne then fail "block %d: edge id" b) blk.succs)
    f.blocks;
  f

(** Human-readable dumps of SSA functions: values print as [vN] where [N]
    is the defining instruction id, in the style of the paper's Figure 2. *)

val pp_value : Format.formatter -> Func.value -> unit
val pp_instr : Func.t -> Format.formatter -> int -> unit
val pp_block : Func.t -> Format.formatter -> int -> unit
val pp : Format.formatter -> Func.t -> unit
val to_string : Func.t -> string

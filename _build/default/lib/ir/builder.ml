(* Mutable construction of SSA functions, frozen into a {!Func.t} by
   {!finish}. Typical use: create blocks, append instructions, set
   terminators (which creates the CFG edges), then fill in phi arguments
   per incoming edge. *)

type binstr = { ins : Func.instr; blk : int }

type t = {
  name : string;
  nparams : int;
  instrs : binstr Util.Vec.t;
  mutable nblocks : int;
  body : int Util.Vec.t Util.Vec.t; (* non-phi instruction ids per block *)
  phis : int Util.Vec.t Util.Vec.t; (* phi instruction ids per block *)
  term : Func.instr option Util.Vec.t; (* terminator per block *)
  edges : Func.edge Util.Vec.t;
  preds : int Util.Vec.t Util.Vec.t; (* incoming edge ids per block *)
  succs : int Util.Vec.t Util.Vec.t; (* outgoing edge ids per block *)
  phi_args : (int, (int, int) Hashtbl.t) Hashtbl.t; (* phi id -> edge -> value *)
  mutable opaque_counter : int;
  mutable final_ids : int array; (* set by [finish]: builder id -> final id *)
}

let dummy_instr = { ins = Func.Jump; blk = -1 }

let create ~name ~nparams =
  let t =
    {
      name;
      nparams;
      instrs = Util.Vec.create ~dummy:dummy_instr;
      nblocks = 0;
      body = Util.Vec.create ~dummy:(Util.Vec.create ~dummy:0);
      phis = Util.Vec.create ~dummy:(Util.Vec.create ~dummy:0);
      term = Util.Vec.create ~dummy:None;
      edges = Util.Vec.create ~dummy:{ Func.src = -1; dst = -1; src_ix = -1; dst_ix = -1 };
      preds = Util.Vec.create ~dummy:(Util.Vec.create ~dummy:0);
      succs = Util.Vec.create ~dummy:(Util.Vec.create ~dummy:0);
      phi_args = Hashtbl.create 16;
      opaque_counter = 0;
      final_ids = [||];
    }
  in
  t

let add_block t =
  let b = t.nblocks in
  t.nblocks <- b + 1;
  Util.Vec.push t.body (Util.Vec.create ~dummy:(-1));
  Util.Vec.push t.phis (Util.Vec.create ~dummy:(-1));
  Util.Vec.push t.term None;
  Util.Vec.push t.preds (Util.Vec.create ~dummy:(-1));
  Util.Vec.push t.succs (Util.Vec.create ~dummy:(-1));
  b

let new_instr t blk ins =
  let id = Util.Vec.length t.instrs in
  Util.Vec.push t.instrs { ins; blk };
  id

let append t blk ins =
  let id = new_instr t blk ins in
  Util.Vec.push (Util.Vec.get t.body blk) id;
  id

let const t blk n = append t blk (Func.Const n)
let param t blk k = append t blk (Func.Param k)
let unop t blk op a = append t blk (Func.Unop (op, a))
let binop t blk op a b = append t blk (Func.Binop (op, a, b))
let cmp t blk op a b = append t blk (Func.Cmp (op, a, b))

let opaque ?tag t blk args =
  let tag =
    match tag with
    | Some tag -> tag
    | None ->
        let tag = t.opaque_counter in
        t.opaque_counter <- tag + 1;
        tag
  in
  append t blk (Func.Opaque (tag, Array.of_list args))

(* A phi with arguments to be supplied later via {!set_phi_arg}. *)
let phi t blk =
  let id = new_instr t blk (Func.Phi [||]) in
  Util.Vec.push (Util.Vec.get t.phis blk) id;
  Hashtbl.replace t.phi_args id (Hashtbl.create 4);
  id

let set_phi_arg t ~phi ~edge v =
  match Hashtbl.find_opt t.phi_args phi with
  | None -> invalid_arg "Builder.set_phi_arg: not a phi"
  | Some tbl -> Hashtbl.replace tbl edge v

let add_edge t src dst =
  let e = Util.Vec.length t.edges in
  let src_ix = Util.Vec.length (Util.Vec.get t.succs src) in
  let dst_ix = Util.Vec.length (Util.Vec.get t.preds dst) in
  Util.Vec.push t.edges { Func.src; dst; src_ix; dst_ix };
  Util.Vec.push (Util.Vec.get t.succs src) e;
  Util.Vec.push (Util.Vec.get t.preds dst) e;
  e

let set_term t blk ins =
  if Util.Vec.get t.term blk <> None then
    invalid_arg (Printf.sprintf "Builder: block %d already terminated" blk);
  Util.Vec.set t.term blk (Some ins)

(* Terminators return the created edge ids, for phi argument wiring. *)
let jump t blk ~dst =
  set_term t blk Func.Jump;
  add_edge t blk dst

let branch t blk cond ~ift ~iff =
  set_term t blk (Func.Branch cond);
  let et = add_edge t blk ift in
  let ef = add_edge t blk iff in
  (et, ef)

let ret t blk v = set_term t blk (Func.Return v)

(* [switch t blk v ~cases ~default]: one edge per case (in order), then the
   default edge; returns (case edge ids, default edge id). *)
let switch t blk v ~cases ~default =
  set_term t blk (Func.Switch (v, Array.of_list (List.map fst cases)));
  let case_edges = List.map (fun (_, dst) -> add_edge t blk dst) cases in
  let default_edge = add_edge t blk default in
  (case_edges, default_edge)

let finish t : Func.t =
  let nblocks = t.nblocks in
  (* Assign final instruction ids block by block in layout order so that ids
     grow along the block list: phis, then body, then terminator. *)
  let order = Util.Vec.create ~dummy:(-1) in
  let term_ids = Array.make nblocks (-1) in
  for b = 0 to nblocks - 1 do
    Util.Vec.iter (fun i -> Util.Vec.push order i) (Util.Vec.get t.phis b);
    Util.Vec.iter (fun i -> Util.Vec.push order i) (Util.Vec.get t.body b);
    match Util.Vec.get t.term b with
    | None -> invalid_arg (Printf.sprintf "Builder: block %d not terminated" b)
    | Some ins ->
        let id = new_instr t b ins in
        term_ids.(b) <- id;
        Util.Vec.push order id
  done;
  let n = Util.Vec.length order in
  let remap = Array.make (Util.Vec.length t.instrs) (-1) in
  Util.Vec.iteri (fun final old -> remap.(old) <- final) order;
  t.final_ids <- remap;
  let map_value ctx v =
    if v < 0 || v >= Array.length remap || remap.(v) < 0 then
      invalid_arg (Printf.sprintf "Builder: %s references unknown value %d" ctx v);
    remap.(v)
  in
  let preds_arr = Array.init nblocks (fun b -> Util.Vec.to_array (Util.Vec.get t.preds b)) in
  let map_instr old_id ins blk =
    match (ins : Func.instr) with
    | Const _ | Param _ | Jump -> ins
    | Unop (op, a) -> Unop (op, map_value "unop" a)
    | Binop (op, a, b) -> Binop (op, map_value "binop" a, map_value "binop" b)
    | Cmp (op, a, b) -> Cmp (op, map_value "cmp" a, map_value "cmp" b)
    | Opaque (tag, args) -> Opaque (tag, Array.map (map_value "opaque") args)
    | Branch a -> Branch (map_value "branch" a)
    | Switch (a, cases) -> Switch (map_value "switch" a, cases)
    | Return a -> Return (map_value "return" a)
    | Phi _ ->
        let tbl = Hashtbl.find t.phi_args old_id in
        let args =
          Array.map
            (fun e ->
              match Hashtbl.find_opt tbl e with
              | Some v -> map_value "phi" v
              | None ->
                  invalid_arg
                    (Printf.sprintf "Builder: phi %d missing argument for edge %d in block %d"
                       old_id e blk))
            preds_arr.(blk)
        in
        Phi args
  in
  let instrs = Array.make n Func.Jump in
  let instr_block = Array.make n (-1) in
  Util.Vec.iteri
    (fun final old ->
      let { ins; blk } = Util.Vec.get t.instrs old in
      instrs.(final) <- map_instr old ins blk;
      instr_block.(final) <- blk)
    order;
  let blocks =
    Array.init nblocks (fun b ->
        let ids = Util.Vec.create ~dummy:(-1) in
        Util.Vec.iter (fun i -> Util.Vec.push ids remap.(i)) (Util.Vec.get t.phis b);
        Util.Vec.iter (fun i -> Util.Vec.push ids remap.(i)) (Util.Vec.get t.body b);
        Util.Vec.push ids remap.(term_ids.(b));
        {
          Func.instrs = Util.Vec.to_array ids;
          preds = preds_arr.(b);
          succs = Util.Vec.to_array (Util.Vec.get t.succs b);
        })
  in
  Func.validate
    {
      Func.name = t.name;
      nparams = t.nparams;
      blocks;
      instrs;
      instr_block;
      edges = Util.Vec.to_array t.edges;
    }

(* [finish] lays instructions out block by block, renumbering them; this
   maps an id handed out during construction to the id in the finished
   function. Only valid after [finish]. *)
let final_value t v =
  if Array.length t.final_ids = 0 then invalid_arg "Builder.final_value: before finish";
  t.final_ids.(v)

(* Recursive-descent parser for mini-C, with C-like operator precedence. *)

exception Error of string * int

type state = { toks : (Lexer.token * int) array; mutable pos : int }

let peek st = fst st.toks.(st.pos)
let peek_offset st = snd st.toks.(st.pos)
let advance st = st.pos <- min (st.pos + 1) (Array.length st.toks - 1)

let err st msg =
  raise
    (Error
       ( Printf.sprintf "%s (found %s)" msg (Lexer.string_of_token (peek st)),
         peek_offset st ))

let expect st tok msg =
  if peek st = tok then advance st else err st msg

let expect_ident st msg =
  match peek st with
  | Lexer.IDENT s ->
      advance st;
      s
  | _ -> err st msg

(* Binary operator table: token -> (precedence, ast builder). Higher binds
   tighter; all binary operators are left-associative. *)
let binop_info (tok : Lexer.token) : (int * (Ast.expr -> Ast.expr -> Ast.expr)) option =
  let bin op a b = Ast.Ebinop (op, a, b) in
  let cmp op a b = Ast.Ecmp (op, a, b) in
  match tok with
  | BARBAR -> Some (1, fun a b -> Ast.Eor (a, b))
  | ANDAND -> Some (2, fun a b -> Ast.Eand (a, b))
  | BAR -> Some (3, bin Types.Or)
  | CARET -> Some (4, bin Types.Xor)
  | AMP -> Some (5, bin Types.And)
  | EQ -> Some (6, cmp Types.Eq)
  | NE -> Some (6, cmp Types.Ne)
  | LT -> Some (7, cmp Types.Lt)
  | LE -> Some (7, cmp Types.Le)
  | GT -> Some (7, cmp Types.Gt)
  | GE -> Some (7, cmp Types.Ge)
  | SHL -> Some (8, bin Types.Shl)
  | SHR -> Some (8, bin Types.Shr)
  | PLUS -> Some (9, bin Types.Add)
  | MINUS -> Some (9, bin Types.Sub)
  | STAR -> Some (10, bin Types.Mul)
  | SLASH -> Some (10, bin Types.Div)
  | PERCENT -> Some (10, bin Types.Rem)
  | _ -> None

let rec parse_expr st = parse_binary st 0

and parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec loop lhs =
    match binop_info (peek st) with
    | Some (prec, build) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        loop (build lhs rhs)
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary st =
  match peek st with
  | MINUS ->
      advance st;
      Ast.Eunop (Types.Neg, parse_unary st)
  | BANG ->
      advance st;
      Ast.Eunop (Types.Lnot, parse_unary st)
  | TILDE ->
      advance st;
      Ast.Eunop (Types.Bnot, parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  match peek st with
  | INT n ->
      advance st;
      Ast.Enum n
  | LPAREN ->
      advance st;
      let e = parse_expr st in
      expect st RPAREN "expected ')'";
      e
  | IDENT name -> (
      advance st;
      match peek st with
      | LPAREN ->
          advance st;
          let args = parse_args st in
          Ast.Ecall (name, args)
      | _ -> Ast.Evar name)
  | _ -> err st "expected expression"

and parse_args st =
  if peek st = RPAREN then begin
    advance st;
    []
  end
  else
    let rec loop acc =
      let e = parse_expr st in
      match peek st with
      | COMMA ->
          advance st;
          loop (e :: acc)
      | RPAREN ->
          advance st;
          List.rev (e :: acc)
      | _ -> err st "expected ',' or ')'"
    in
    loop []

let rec parse_stmt st : Ast.stmt =
  match peek st with
  | KW_IF ->
      advance st;
      expect st LPAREN "expected '(' after if";
      let cond = parse_expr st in
      expect st RPAREN "expected ')'";
      let then_ = parse_block_or_stmt st in
      let else_ =
        if peek st = KW_ELSE then begin
          advance st;
          parse_block_or_stmt st
        end
        else []
      in
      Ast.Sif (cond, then_, else_)
  | KW_SWITCH ->
      advance st;
      expect st LPAREN "expected '(' after switch";
      let e = parse_expr st in
      expect st RPAREN "expected ')'";
      expect st LBRACE "expected '{'";
      let cases = ref [] in
      let default = ref [] in
      let parse_case_body () =
        expect st LBRACE "expected '{' after case label";
        let body = parse_stmts st in
        expect st RBRACE "expected '}'";
        body
      in
      let rec loop () =
        match peek st with
        | KW_CASE ->
            advance st;
            let k =
              match peek st with
              | INT n ->
                  advance st;
                  n
              | MINUS ->
                  advance st;
                  (match peek st with
                  | INT n ->
                      advance st;
                      -n
                  | _ -> err st "expected integer case label")
              | _ -> err st "expected integer case label"
            in
            expect st COLON "expected ':'";
            cases := (k, parse_case_body ()) :: !cases;
            loop ()
        | KW_DEFAULT ->
            advance st;
            expect st COLON "expected ':'";
            default := parse_case_body ();
            loop ()
        | RBRACE -> advance st
        | _ -> err st "expected 'case', 'default' or '}'"
      in
      loop ();
      let cases = List.rev !cases in
      (* reject duplicate case labels *)
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (k, _) ->
          if Hashtbl.mem seen k then err st "duplicate case label";
          Hashtbl.replace seen k ())
        cases;
      Ast.Sswitch (e, cases, !default)
  | KW_WHILE ->
      advance st;
      expect st LPAREN "expected '(' after while";
      let cond = parse_expr st in
      expect st RPAREN "expected ')'";
      let body = parse_block_or_stmt st in
      Ast.Swhile (cond, body)
  | KW_BREAK ->
      advance st;
      expect st SEMI "expected ';'";
      Ast.Sbreak
  | KW_CONTINUE ->
      advance st;
      expect st SEMI "expected ';'";
      Ast.Scontinue
  | KW_RETURN ->
      advance st;
      let e = parse_expr st in
      expect st SEMI "expected ';'";
      Ast.Sreturn e
  | IDENT name ->
      advance st;
      expect st ASSIGN "expected '=' in assignment";
      let e = parse_expr st in
      expect st SEMI "expected ';'";
      Ast.Sassign (name, e)
  | _ -> err st "expected statement"

and parse_block_or_stmt st : Ast.stmt list =
  if peek st = LBRACE then begin
    advance st;
    let stmts = parse_stmts st in
    expect st RBRACE "expected '}'";
    stmts
  end
  else [ parse_stmt st ]

and parse_stmts st =
  let rec loop acc =
    match peek st with
    | RBRACE | EOF -> List.rev acc
    | _ -> loop (parse_stmt st :: acc)
  in
  loop []

let parse_routine st : Ast.routine =
  expect st KW_ROUTINE "expected 'routine'";
  let name = expect_ident st "expected routine name" in
  expect st LPAREN "expected '('";
  let params =
    if peek st = RPAREN then begin
      advance st;
      []
    end
    else
      let rec loop acc =
        let p = expect_ident st "expected parameter name" in
        match peek st with
        | COMMA ->
            advance st;
            loop (p :: acc)
        | RPAREN ->
            advance st;
            List.rev (p :: acc)
        | _ -> err st "expected ',' or ')'"
      in
      loop []
  in
  expect st LBRACE "expected '{'";
  let body = parse_stmts st in
  expect st RBRACE "expected '}'";
  { Ast.name; params; body }

(* Parses a whole source file: one or more routines. *)
let parse_program src : Ast.routine list =
  let toks = Array.of_list (Lexer.tokenize src) in
  let st = { toks; pos = 0 } in
  let rec loop acc =
    if peek st = EOF then List.rev acc else loop (parse_routine st :: acc)
  in
  loop []

let parse_one src =
  match parse_program src with
  | [ r ] -> r
  | rs -> raise (Error (Printf.sprintf "expected exactly one routine, got %d" (List.length rs), 0))

(** A reference interpreter for SSA functions — the ground-truth oracle of
    the test suite: optimization must not change the observable result of
    any execution. *)

type result =
  | Ret of int
  | Trap  (** division or remainder by zero *)
  | Timeout  (** fuel exhausted *)

val equal_result : result -> result -> bool
val pp_result : Format.formatter -> result -> unit

val opaque_model : int -> int array -> int
(** The concrete model of {!Func.instr.Opaque}: a deterministic 64-bit mix
    of the tag and arguments (any pure function is a valid model; this one
    looks adversarial to the optimizer). *)

type trace = { mutable steps : int; mutable blocks_visited : int }

val run : ?fuel:int -> ?trace:trace -> Func.t -> int array -> result
(** Execute on the given arguments (missing parameters read 0). [fuel]
    bounds executed instructions (default 100_000). *)

val run_with_env : ?fuel:int -> Func.t -> int array -> result * int option array
(** Like {!run}, also returning the value each instruction {e last}
    computed ([None] if it never executed). Congruent values must agree
    whenever each instruction executes at most once. *)

(** Abstract syntax of mini-C, the small structured language of the
    examples, the test programs and the workload generator. *)

type expr =
  | Enum of int
  | Evar of string
  | Eunop of Types.unop * expr
  | Ebinop of Types.binop * expr * expr
  | Ecmp of Types.cmp * expr * expr
  | Eand of expr * expr  (** short-circuit && (result 0/1) *)
  | Eor of expr * expr  (** short-circuit || (result 0/1) *)
  | Ecall of string * expr list  (** opaque call; tag derived from the name *)

type stmt =
  | Sassign of string * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sswitch of expr * (int * stmt list) list * stmt list
      (** scrutinee, cases (no fall-through), default body *)
  | Sbreak
  | Scontinue
  | Sreturn of expr

type routine = { name : string; params : string list; body : stmt list }

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit
val pp_stmts : Format.formatter -> stmt list -> unit

val pp_routine : Format.formatter -> routine -> unit
(** Prints re-parsable mini-C source. *)

(* Human-readable dump of SSA functions, in the style of the paper's
   Figure 2: values are written [vN] where N is the defining instruction id. *)

let pp_value ppf v = Fmt.pf ppf "v%d" v

let pp_instr f ppf i =
  let open Func in
  match instr f i with
  | Const n -> Fmt.pf ppf "%a = const %d" pp_value i n
  | Param k -> Fmt.pf ppf "%a = param %d" pp_value i k
  | Unop (op, a) -> Fmt.pf ppf "%a = %s%a" pp_value i (Types.string_of_unop op) pp_value a
  | Binop (op, a, b) ->
      Fmt.pf ppf "%a = %a %s %a" pp_value i pp_value a (Types.string_of_binop op) pp_value b
  | Cmp (op, a, b) ->
      Fmt.pf ppf "%a = %a %s %a" pp_value i pp_value a (Types.string_of_cmp op) pp_value b
  | Opaque (tag, args) ->
      Fmt.pf ppf "%a = opaque#%d(%a)" pp_value i tag
        Fmt.(array ~sep:(any ", ") pp_value)
        args
  | Phi args ->
      let blk = block_of_instr f i in
      let preds = (block f blk).preds in
      let pp_arg ppf ix =
        Fmt.pf ppf "b%d: %a" (edge f preds.(ix)).src pp_value args.(ix)
      in
      Fmt.pf ppf "%a = phi(%a)" pp_value i
        Fmt.(iter ~sep:(any ", ") (fun g () -> Array.iteri (fun ix _ -> g ix) args) pp_arg)
        ()
  | Jump ->
      let blk = block_of_instr f i in
      Fmt.pf ppf "jump b%d" (edge f (block f blk).succs.(0)).dst
  | Branch c ->
      let blk = block_of_instr f i in
      let succs = (block f blk).succs in
      Fmt.pf ppf "branch %a, b%d, b%d" pp_value c (edge f succs.(0)).dst
        (edge f succs.(1)).dst
  | Switch (c, cases) ->
      let blk = block_of_instr f i in
      let succs = (block f blk).succs in
      Fmt.pf ppf "switch %a [%a] default b%d" pp_value c
        Fmt.(
          iter ~sep:(any "; ")
            (fun g () -> Array.iteri (fun k _ -> g k) cases)
            (fun ppf k -> pf ppf "%d: b%d" cases.(k) (edge f succs.(k)).dst))
        () (edge f succs.(Array.length cases)).dst
  | Return v -> Fmt.pf ppf "return %a" pp_value v

let pp_block f ppf b =
  let blk = Func.block f b in
  Fmt.pf ppf "b%d:" b;
  if Array.length blk.preds > 0 then
    Fmt.pf ppf "  ; preds: %a"
      Fmt.(array ~sep:(any " ") (fun ppf e -> Fmt.pf ppf "b%d" (Func.edge f e).src))
      blk.preds;
  Fmt.pf ppf "@\n";
  Array.iter (fun i -> Fmt.pf ppf "  %a@\n" (pp_instr f) i) blk.instrs

let pp ppf f =
  Fmt.pf ppf "function %s(%d params), %d blocks, %d instrs@\n" f.Func.name f.Func.nparams
    (Func.num_blocks f) (Func.num_instrs f);
  for b = 0 to Func.num_blocks f - 1 do
    pp_block f ppf b
  done

let to_string f = Fmt.str "%a" pp f

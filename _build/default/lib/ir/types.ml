(* Operators shared by the non-SSA IR, the SSA IR and the mini-C frontend.
   Integers are OCaml native ints; comparisons produce 0/1 as in C. *)

type binop =
  | Add
  | Sub
  | Mul
  | Div
  | Rem
  | And (* bitwise *)
  | Or (* bitwise *)
  | Xor
  | Shl
  | Shr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type unop =
  | Neg
  | Lnot (* logical not: 0 -> 1, nonzero -> 0 *)
  | Bnot (* bitwise complement *)

exception Division_by_zero

let eval_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | Div -> if b = 0 then raise Division_by_zero else a / b
  | Rem -> if b = 0 then raise Division_by_zero else a mod b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 62)
  | Shr -> a asr (b land 62)

let eval_cmp op a b =
  let r =
    match op with
    | Eq -> a = b
    | Ne -> a <> b
    | Lt -> a < b
    | Le -> a <= b
    | Gt -> a > b
    | Ge -> a >= b
  in
  if r then 1 else 0

let eval_unop op a =
  match op with
  | Neg -> -a
  | Lnot -> if a = 0 then 1 else 0
  | Bnot -> lnot a

(* Folding a binop is unsafe when it could trap at run time. *)
let binop_can_trap op b =
  match op with Div | Rem -> b = 0 | _ -> false

let negate_cmp = function
  | Eq -> Ne
  | Ne -> Eq
  | Lt -> Ge
  | Le -> Gt
  | Gt -> Le
  | Ge -> Lt

(* Mirror image: [a op b] iff [b (swap_cmp op) a]. *)
let swap_cmp = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let binop_commutative = function
  | Add | Mul | And | Or | Xor -> true
  | Sub | Div | Rem | Shl | Shr -> false

let string_of_binop = function
  | Add -> "+"
  | Sub -> "-"
  | Mul -> "*"
  | Div -> "/"
  | Rem -> "%"
  | And -> "&"
  | Or -> "|"
  | Xor -> "^"
  | Shl -> "<<"
  | Shr -> ">>"

let string_of_cmp = function
  | Eq -> "=="
  | Ne -> "!="
  | Lt -> "<"
  | Le -> "<="
  | Gt -> ">"
  | Ge -> ">="

let string_of_unop = function Neg -> "-" | Lnot -> "!" | Bnot -> "~"

(** Mutable construction of SSA functions.

    Typical use: {!create}, {!add_block} for every block, append
    instructions, set terminators (which creates the CFG edges and returns
    their ids), supply φ arguments per incoming edge with {!set_phi_arg},
    then {!finish}.

    {!finish} lays instructions out block by block and renumbers them; map
    construction-time ids through {!final_value} when they are needed
    against the finished function. *)

type t

val create : name:string -> nparams:int -> t

val add_block : t -> int
(** A new block; the first call creates the entry block (id 0). *)

val const : t -> int -> int -> Func.value
(** [const t blk n] appends [Const n] to block [blk]. *)

val param : t -> int -> int -> Func.value
val unop : t -> int -> Types.unop -> Func.value -> Func.value
val binop : t -> int -> Types.binop -> Func.value -> Func.value -> Func.value
val cmp : t -> int -> Types.cmp -> Func.value -> Func.value -> Func.value

val opaque : ?tag:int -> t -> int -> Func.value list -> Func.value
(** An uninterpreted call; without [?tag] a fresh tag is allocated (the
    value is then congruent to nothing else). *)

val phi : t -> int -> Func.value
(** A φ whose arguments are supplied later, per incoming edge, via
    {!set_phi_arg}. *)

val set_phi_arg : t -> phi:Func.value -> edge:int -> Func.value -> unit
(** @raise Invalid_argument when [phi] is not a φ. *)

val jump : t -> int -> dst:int -> int
(** Terminate with an unconditional jump; returns the created edge id. *)

val branch : t -> int -> Func.value -> ift:int -> iff:int -> int * int
(** Terminate with a conditional branch; returns (true edge, false edge). *)

val switch : t -> int -> Func.value -> cases:(int * int) list -> default:int -> int list * int
(** [switch t blk v ~cases ~default]: one edge per [(constant, target)]
    case in order, then the default edge; returns (case edge ids, default
    edge id). *)

val ret : t -> int -> Func.value -> unit

val finish : t -> Func.t
(** Freeze into a validated function.
    @raise Invalid_argument on unterminated blocks, missing φ arguments, or
    references to unknown values. *)

val final_value : t -> Func.value -> Func.value
(** Maps an id handed out during construction to the id in the finished
    function. Only valid after {!finish}. *)

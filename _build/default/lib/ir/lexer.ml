(* Hand-written lexer for mini-C. *)

type token =
  | INT of int
  | IDENT of string
  | KW_ROUTINE
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | COLON
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | ASSIGN (* = *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | BAR
  | CARET
  | SHL
  | SHR
  | ANDAND
  | BARBAR
  | BANG
  | TILDE
  | EQ (* == *)
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of string * int (* message, offset *)

let keyword = function
  | "routine" -> Some KW_ROUTINE
  | "if" -> Some KW_IF
  | "else" -> Some KW_ELSE
  | "while" -> Some KW_WHILE
  | "break" -> Some KW_BREAK
  | "continue" -> Some KW_CONTINUE
  | "return" -> Some KW_RETURN
  | "switch" -> Some KW_SWITCH
  | "case" -> Some KW_CASE
  | "default" -> Some KW_DEFAULT
  | _ -> None

let is_digit c = c >= '0' && c <= '9'
let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || is_digit c

(* Tokenizes [src]; comments run from '#' or "//" to end of line. *)
let tokenize src : (token * int) list =
  let n = String.length src in
  let toks = ref [] in
  let emit t pos = toks := (t, pos) :: !toks in
  let rec skip_line i = if i < n && src.[i] <> '\n' then skip_line (i + 1) else i in
  let rec go i =
    if i >= n then emit EOF n
    else
      let c = src.[i] in
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then go (i + 1)
      else if c = '#' then go (skip_line i)
      else if c = '/' && i + 1 < n && src.[i + 1] = '/' then go (skip_line i)
      else if is_digit c then begin
        let j = ref i in
        while !j < n && is_digit src.[!j] do
          incr j
        done;
        emit (INT (int_of_string (String.sub src i (!j - i)))) i;
        go !j
      end
      else if is_ident_start c then begin
        let j = ref i in
        while !j < n && is_ident src.[!j] do
          incr j
        done;
        let word = String.sub src i (!j - i) in
        emit (match keyword word with Some k -> k | None -> IDENT word) i;
        go !j
      end
      else
        let two t = emit t i; go (i + 2) in
        let one t = emit t i; go (i + 1) in
        let next = if i + 1 < n then src.[i + 1] else '\000' in
        match (c, next) with
        | '=', '=' -> two EQ
        | '!', '=' -> two NE
        | '<', '=' -> two LE
        | '>', '=' -> two GE
        | '<', '<' -> two SHL
        | '>', '>' -> two SHR
        | '&', '&' -> two ANDAND
        | '|', '|' -> two BARBAR
        | '=', _ -> one ASSIGN
        | '<', _ -> one LT
        | '>', _ -> one GT
        | '+', _ -> one PLUS
        | '-', _ -> one MINUS
        | '*', _ -> one STAR
        | '/', _ -> one SLASH
        | '%', _ -> one PERCENT
        | '&', _ -> one AMP
        | '|', _ -> one BAR
        | '^', _ -> one CARET
        | '!', _ -> one BANG
        | '~', _ -> one TILDE
        | '(', _ -> one LPAREN
        | ')', _ -> one RPAREN
        | '{', _ -> one LBRACE
        | '}', _ -> one RBRACE
        | ',', _ -> one COMMA
        | ';', _ -> one SEMI
        | ':', _ -> one COLON
        | _ -> raise (Error (Printf.sprintf "unexpected character %C" c, i))
  in
  go 0;
  List.rev !toks

let string_of_token = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | KW_ROUTINE -> "routine"
  | KW_IF -> "if"
  | KW_ELSE -> "else"
  | KW_WHILE -> "while"
  | KW_BREAK -> "break"
  | KW_CONTINUE -> "continue"
  | KW_RETURN -> "return"
  | KW_SWITCH -> "switch"
  | KW_CASE -> "case"
  | KW_DEFAULT -> "default"
  | COLON -> ":"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | COMMA -> ","
  | SEMI -> ";"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | AMP -> "&"
  | BAR -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | ANDAND -> "&&"
  | BARBAR -> "||"
  | BANG -> "!"
  | TILDE -> "~"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"

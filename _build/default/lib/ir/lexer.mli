(** Hand-written lexer for mini-C. *)

type token =
  | INT of int
  | IDENT of string
  | KW_ROUTINE
  | KW_IF
  | KW_ELSE
  | KW_WHILE
  | KW_BREAK
  | KW_CONTINUE
  | KW_RETURN
  | KW_SWITCH
  | KW_CASE
  | KW_DEFAULT
  | COLON
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | COMMA
  | SEMI
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | AMP
  | BAR
  | CARET
  | SHL
  | SHR
  | ANDAND
  | BARBAR
  | BANG
  | TILDE
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Error of string * int
(** Message and byte offset of the offending character. *)

val tokenize : string -> (token * int) list
(** Tokens with their byte offsets; comments run from ['#'] or ["//"] to
    end of line. The list always ends with [EOF].
    @raise Error on characters outside the language. *)

val string_of_token : token -> string

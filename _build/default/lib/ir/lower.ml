(* Lowering mini-C routines to the pre-SSA IR [Cir]. Short-circuit operators
   become control flow; [break]/[continue] target the innermost loop;
   statements following a terminator in the same block list are unreachable
   and are pruned after lowering. *)

type state = {
  blocks : (Cir.rinstr Util.Vec.t * Cir.term option ref) Util.Vec.t;
  regs : (string, int) Hashtbl.t;
  mutable nregs : int;
  mutable cur : int;
  mutable loop_stack : (int * int) list; (* (continue target, break target) *)
}

let fresh_reg st =
  let r = st.nregs in
  st.nregs <- r + 1;
  r

let reg_of_var st name =
  match Hashtbl.find_opt st.regs name with
  | Some r -> r
  | None ->
      let r = fresh_reg st in
      Hashtbl.replace st.regs name r;
      r

let new_block st =
  let b = Util.Vec.length st.blocks in
  Util.Vec.push st.blocks (Util.Vec.create ~dummy:(Cir.Iconst (0, 0)), ref None);
  b

let emit st i =
  let body, term = Util.Vec.get st.blocks st.cur in
  if !term = None then Util.Vec.push body i

let set_term st t =
  let _, term = Util.Vec.get st.blocks st.cur in
  if !term = None then term := Some t

let terminated st =
  let _, term = Util.Vec.get st.blocks st.cur in
  !term <> None

(* Stable opaque tag for a called function name. *)
let tag_of_name name =
  let h = ref 5381 in
  String.iter (fun c -> h := ((!h lsl 5) + !h + Char.code c) land 0x3FFFFFFF) name;
  !h

let rec lower_expr st (e : Ast.expr) : int =
  match e with
  | Enum n ->
      let r = fresh_reg st in
      emit st (Cir.Iconst (r, n));
      r
  | Evar v ->
      let r = fresh_reg st in
      emit st (Cir.Imov (r, reg_of_var st v));
      r
  | Eunop (op, a) ->
      let ra = lower_expr st a in
      let r = fresh_reg st in
      emit st (Cir.Iunop (r, op, ra));
      r
  | Ebinop (op, a, b) ->
      let ra = lower_expr st a in
      let rb = lower_expr st b in
      let r = fresh_reg st in
      emit st (Cir.Ibinop (r, op, ra, rb));
      r
  | Ecmp (op, a, b) ->
      let ra = lower_expr st a in
      let rb = lower_expr st b in
      let r = fresh_reg st in
      emit st (Cir.Icmp (r, op, ra, rb));
      r
  | Eand (a, b) -> lower_short_circuit st ~is_and:true a b
  | Eor (a, b) -> lower_short_circuit st ~is_and:false a b
  | Ecall (f, args) ->
      let rargs = List.map (lower_expr st) args in
      let r = fresh_reg st in
      emit st (Cir.Iopaque (r, tag_of_name f, rargs));
      r

and lower_short_circuit st ~is_and a b =
  let result = fresh_reg st in
  let ra = lower_expr st a in
  let eval_b = new_block st in
  let short = new_block st in
  let join = new_block st in
  if is_and then set_term st (Cir.Tbranch (ra, eval_b, short))
  else set_term st (Cir.Tbranch (ra, short, eval_b));
  st.cur <- eval_b;
  let rb = lower_expr st b in
  let zero = fresh_reg st in
  emit st (Cir.Iconst (zero, 0));
  emit st (Cir.Icmp (result, Types.Ne, rb, zero));
  set_term st (Cir.Tjump join);
  st.cur <- short;
  emit st (Cir.Iconst (result, if is_and then 0 else 1));
  set_term st (Cir.Tjump join);
  st.cur <- join;
  result

let rec lower_stmt st (s : Ast.stmt) =
  if terminated st then begin
    (* Unreachable continuation; park it in a dangling block to keep lowering
       simple, pruned afterwards. *)
    let b = new_block st in
    st.cur <- b
  end;
  match s with
  | Sassign (v, e) ->
      let r = lower_expr st e in
      emit st (Cir.Imov (reg_of_var st v, r))
  | Sreturn e ->
      let r = lower_expr st e in
      set_term st (Cir.Treturn r)
  | Sbreak -> (
      match st.loop_stack with
      | [] -> failwith "Lower: break outside loop"
      | (_, brk) :: _ -> set_term st (Cir.Tjump brk))
  | Scontinue -> (
      match st.loop_stack with
      | [] -> failwith "Lower: continue outside loop"
      | (cont, _) :: _ -> set_term st (Cir.Tjump cont))
  | Sif (cond, then_, else_) ->
      let rc = lower_expr st cond in
      let bt = new_block st in
      let be = new_block st in
      let join = new_block st in
      set_term st (Cir.Tbranch (rc, bt, be));
      st.cur <- bt;
      List.iter (lower_stmt st) then_;
      set_term st (Cir.Tjump join);
      st.cur <- be;
      List.iter (lower_stmt st) else_;
      set_term st (Cir.Tjump join);
      st.cur <- join
  | Sswitch (e, cases, default) ->
      let r = lower_expr st e in
      let case_blocks = List.map (fun (k, body) -> (k, new_block st, body)) cases in
      let bdefault = new_block st in
      let join = new_block st in
      set_term st
        (Cir.Tswitch (r, Array.of_list (List.map (fun (k, b, _) -> (k, b)) case_blocks), bdefault));
      List.iter
        (fun (_, b, body) ->
          st.cur <- b;
          List.iter (lower_stmt st) body;
          set_term st (Cir.Tjump join))
        case_blocks;
      st.cur <- bdefault;
      List.iter (lower_stmt st) default;
      set_term st (Cir.Tjump join);
      st.cur <- join
  | Swhile (cond, body) ->
      let header = new_block st in
      set_term st (Cir.Tjump header);
      st.cur <- header;
      let rc = lower_expr st cond in
      let bbody = new_block st in
      let exit = new_block st in
      set_term st (Cir.Tbranch (rc, bbody, exit));
      st.cur <- bbody;
      st.loop_stack <- (header, exit) :: st.loop_stack;
      List.iter (lower_stmt st) body;
      st.loop_stack <- List.tl st.loop_stack;
      set_term st (Cir.Tjump header);
      st.cur <- exit

let lower_routine (r : Ast.routine) : Cir.t =
  let st =
    {
      blocks = Util.Vec.create ~dummy:(Util.Vec.create ~dummy:(Cir.Iconst (0, 0)), ref None);
      regs = Hashtbl.create 16;
      nregs = 0;
      cur = 0;
      loop_stack = [];
    }
  in
  (* Parameters occupy registers 0 .. n-1. *)
  List.iter (fun p -> ignore (reg_of_var st p)) r.params;
  let nparams = st.nregs in
  let b0 = new_block st in
  st.cur <- b0;
  List.iter (lower_stmt st) r.body;
  if not (terminated st) then begin
    let z = fresh_reg st in
    emit st (Cir.Iconst (z, 0));
    set_term st (Cir.Treturn z)
  end;
  let blocks =
    Array.init (Util.Vec.length st.blocks) (fun b ->
        let body, term = Util.Vec.get st.blocks b in
        let term =
          match !term with
          | Some t -> t
          | None ->
              (* A dangling unreachable block: give it any terminator, the
                 prune pass removes it (or it is an empty fallthrough join
                 that lost its only entry). *)
              Cir.Treturn 0
        in
        { Cir.body = Util.Vec.to_array body; term })
  in
  Cir.prune_unreachable { Cir.name = r.name; nparams; nregs = st.nregs; blocks }

let lower_program rs = List.map lower_routine rs

(* Convenience: parse and lower a single mini-C routine from source. *)
let routine_of_string src = lower_routine (Parser.parse_one src)

(** Operators and their concrete semantics, shared by the two IRs, the
    mini-C frontend and the GVN engine's constant folder. Integers are OCaml
    native ints; comparisons produce 0/1 as in C; division and remainder by
    zero trap. *)

type binop = Add | Sub | Mul | Div | Rem | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type unop =
  | Neg  (** arithmetic negation *)
  | Lnot  (** logical not: 0 becomes 1, nonzero becomes 0 *)
  | Bnot  (** bitwise complement *)

exception Division_by_zero
(** Raised by {!eval_binop} for [Div]/[Rem] with a zero divisor. *)

val eval_binop : binop -> int -> int -> int
(** Concrete semantics. Shift amounts are masked to stay in range.
    @raise Division_by_zero for a zero [Div]/[Rem] divisor. *)

val eval_cmp : cmp -> int -> int -> int
(** 1 when the comparison holds, 0 otherwise. *)

val eval_unop : unop -> int -> int

val binop_can_trap : binop -> int -> bool
(** [binop_can_trap op divisor]: would [eval_binop op _ divisor] trap?
    Constant folding must refuse such folds. *)

val negate_cmp : cmp -> cmp
(** [negate_cmp op] is the complement: [x op y] iff not [x (negate_cmp op) y]. *)

val swap_cmp : cmp -> cmp
(** Mirror image: [x op y] iff [y (swap_cmp op) x]. *)

val binop_commutative : binop -> bool
val string_of_binop : binop -> string
val string_of_cmp : cmp -> string
val string_of_unop : unop -> string

lib/ir/cir.mli: Format Interp Types

lib/ir/cir.ml: Array Fmt Fun Interp List Types

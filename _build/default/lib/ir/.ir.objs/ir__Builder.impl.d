lib/ir/builder.ml: Array Func Hashtbl List Printf Util

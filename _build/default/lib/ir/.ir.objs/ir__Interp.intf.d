lib/ir/interp.mli: Format Func

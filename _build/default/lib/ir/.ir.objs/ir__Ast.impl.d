lib/ir/ast.ml: Fmt Types

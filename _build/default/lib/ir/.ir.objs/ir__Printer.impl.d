lib/ir/printer.ml: Array Fmt Func Types

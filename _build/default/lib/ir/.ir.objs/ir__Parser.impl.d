lib/ir/parser.ml: Array Ast Hashtbl Lexer List Printf Types

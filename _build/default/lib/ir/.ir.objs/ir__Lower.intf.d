lib/ir/lower.mli: Ast Cir

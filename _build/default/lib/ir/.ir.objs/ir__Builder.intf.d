lib/ir/builder.mli: Func Types

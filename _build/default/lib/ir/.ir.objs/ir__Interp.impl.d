lib/ir/interp.ml: Array Fmt Func Int64 Types

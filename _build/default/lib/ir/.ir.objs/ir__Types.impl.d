lib/ir/types.ml:

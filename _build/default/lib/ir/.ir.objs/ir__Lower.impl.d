lib/ir/lower.ml: Array Ast Char Cir Hashtbl List Parser String Types Util

lib/ir/ast.mli: Format Types

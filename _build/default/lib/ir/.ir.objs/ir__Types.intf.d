lib/ir/types.mli:

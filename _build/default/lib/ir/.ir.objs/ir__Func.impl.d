lib/ir/func.ml: Array Printf Types

lib/ir/lexer.mli:

(** The SSA intermediate representation.

    A function is immutable once built (see {!Builder}): analyses attach
    side tables, and transformations construct fresh functions, so
    instruction ids, block ids and edge ids are stable identifiers.

    Conventions:
    - an instruction id doubles as the id of the value it defines;
    - block {!entry} (0) is the entry block and has no predecessors;
    - each block holds its φs first and exactly one terminator last;
    - [Phi args]: [args.(i)] is carried by the block's [preds.(i)] edge;
    - a [Branch] block's [succs.(0)] is its true edge, [succs.(1)] false;
    - a [Switch (v, cases)] block has one edge per case plus a final
      default edge. *)

type value = int
(** The id of a value-defining instruction. *)

type instr =
  | Const of int
  | Param of int  (** the k-th routine parameter *)
  | Unop of Types.unop * value
  | Binop of Types.binop * value * value
  | Cmp of Types.cmp * value * value
  | Opaque of int * value array
      (** an uninterpreted pure function of its tag and arguments: models
          calls; congruent when tags match and arguments are congruent *)
  | Phi of value array
  | Jump
  | Branch of value
  | Switch of value * int array
      (** [Switch (v, cases)]: edge i is taken when [v = cases.(i)]; the
          last edge is the default. Case constants are distinct. *)
  | Return of value

type edge = {
  src : int;
  dst : int;
  src_ix : int;  (** position in [src]'s successor list *)
  dst_ix : int;  (** position in [dst]'s predecessor list *)
}

type block = {
  instrs : int array;  (** instruction ids: φs first, terminator last *)
  preds : int array;  (** incoming edge ids *)
  succs : int array;  (** outgoing edge ids *)
}

type t = {
  name : string;
  nparams : int;
  blocks : block array;
  instrs : instr array;
  instr_block : int array;  (** enclosing block of each instruction *)
  edges : edge array;
}

val entry : int
(** The entry block id (always 0). *)

val num_blocks : t -> int
val num_instrs : t -> int
val num_edges : t -> int
val block : t -> int -> block
val instr : t -> int -> instr
val edge : t -> int -> edge
val block_of_instr : t -> int -> int

val defines_value : instr -> bool
(** Everything except terminators. *)

val is_phi : instr -> bool
val is_terminator : instr -> bool

val terminator_of_block : t -> int -> int
(** The id of the block's terminator instruction. *)

val operands : instr -> value array
(** Operands in order; φ operands follow the block's pred-edge order. *)

val iter_operands : (value -> unit) -> instr -> unit

val def_use : t -> int array array
(** [def_use f].(v) lists the instructions using value [v] (the SSA def-use
    chains). *)

val succ_blocks : t -> int array array
(** Per-block successor block ids (the CFG view used by {!Analysis.Graph}). *)

val pred_blocks : t -> int array array

val phis_of_block : t -> int -> int array
(** The φ instructions at the head of a block. *)

val validate : t -> t
(** Structural well-formedness: edge table consistency, φ arity, terminator
    placement, operand ranges. Returns its argument.
    @raise Failure with a diagnostic on malformed functions. *)

(** Lowering mini-C to the register IR. Short-circuit operators become
    control flow; [break]/[continue] target the innermost loop; switch
    cases do not fall through; statements after a terminator are pruned as
    unreachable; routines without a final return get [return 0]. *)

val tag_of_name : string -> int
(** The stable opaque tag of a called function name. *)

val lower_routine : Ast.routine -> Cir.t
(** @raise Failure on [break]/[continue] outside a loop. *)

val lower_program : Ast.routine list -> Cir.t list

val routine_of_string : string -> Cir.t
(** Parse and lower a single-routine source. *)

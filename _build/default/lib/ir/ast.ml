(* Abstract syntax of mini-C, the small structured language used to write
   example routines (including the paper's Figure 1) and test programs. *)

type expr =
  | Enum of int
  | Evar of string
  | Eunop of Types.unop * expr
  | Ebinop of Types.binop * expr * expr
  | Ecmp of Types.cmp * expr * expr
  | Eand of expr * expr (* && short-circuit *)
  | Eor of expr * expr (* || short-circuit *)
  | Ecall of string * expr list (* opaque call; tag derived from the name *)

type stmt =
  | Sassign of string * expr
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sswitch of expr * (int * stmt list) list * stmt list
      (* scrutinee, cases (no fallthrough), default body *)
  | Sbreak
  | Scontinue
  | Sreturn of expr

type routine = { name : string; params : string list; body : stmt list }

let rec pp_expr ppf = function
  | Enum n -> Fmt.int ppf n
  | Evar v -> Fmt.string ppf v
  | Eunop (op, e) -> Fmt.pf ppf "%s(%a)" (Types.string_of_unop op) pp_expr e
  | Ebinop (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (Types.string_of_binop op) pp_expr b
  | Ecmp (op, a, b) -> Fmt.pf ppf "(%a %s %a)" pp_expr a (Types.string_of_cmp op) pp_expr b
  | Eand (a, b) -> Fmt.pf ppf "(%a && %a)" pp_expr a pp_expr b
  | Eor (a, b) -> Fmt.pf ppf "(%a || %a)" pp_expr a pp_expr b
  | Ecall (f, args) -> Fmt.pf ppf "%s(%a)" f Fmt.(list ~sep:(any ", ") pp_expr) args

let rec pp_stmt ppf = function
  | Sassign (v, e) -> Fmt.pf ppf "%s = %a;" v pp_expr e
  | Sif (c, t, []) -> Fmt.pf ppf "if (%a) { %a }" pp_expr c pp_stmts t
  | Sif (c, t, e) -> Fmt.pf ppf "if (%a) { %a } else { %a }" pp_expr c pp_stmts t pp_stmts e
  | Swhile (c, b) -> Fmt.pf ppf "while (%a) { %a }" pp_expr c pp_stmts b
  | Sswitch (e, cases, default) ->
      let pp_case ppf (k, body) = Fmt.pf ppf "case %d: { %a }" k pp_stmts body in
      Fmt.pf ppf "switch (%a) { %a default: { %a } }" pp_expr e
        Fmt.(list ~sep:sp pp_case)
        cases pp_stmts default
  | Sbreak -> Fmt.string ppf "break;"
  | Scontinue -> Fmt.string ppf "continue;"
  | Sreturn e -> Fmt.pf ppf "return %a;" pp_expr e

and pp_stmts ppf stmts = Fmt.(list ~sep:sp pp_stmt) ppf stmts

let pp_routine ppf r =
  Fmt.pf ppf "routine %s(%a) { %a }" r.name
    Fmt.(list ~sep:(any ", ") string)
    r.params pp_stmts r.body

(** The pre-SSA IR: a CFG whose instructions assign mutable registers. The
    mini-C frontend ({!Lower}) and the workload generator produce [Cir];
    [Ssa.Construct] turns it into SSA.

    Registers [0 .. nparams-1] hold the parameters on entry; every other
    register reads 0 until first assigned. *)

type reg = int

type rinstr =
  | Iconst of reg * int
  | Imov of reg * reg
  | Iunop of reg * Types.unop * reg
  | Ibinop of reg * Types.binop * reg * reg
  | Icmp of reg * Types.cmp * reg * reg
  | Iopaque of reg * int * reg list

type term =
  | Tjump of int
  | Tbranch of reg * int * int  (** condition, true target, false target *)
  | Tswitch of reg * (int * int) array * int
      (** scrutinee, (case constant, target) pairs, default target *)
  | Treturn of reg

type block = { body : rinstr array; term : term }
type t = { name : string; nparams : int; nregs : int; blocks : block array }

val entry : int
val num_blocks : t -> int
val successors : block -> int array
val succ_blocks : t -> int array array
val pred_blocks : t -> int array array
val def_of_rinstr : rinstr -> reg
val iter_uses_rinstr : (reg -> unit) -> rinstr -> unit
val iter_uses_term : (reg -> unit) -> term -> unit

val prune_unreachable : t -> t
(** Drop blocks not structurally reachable from the entry, remapping ids. *)

val run : ?fuel:int -> t -> int array -> Interp.result
(** Register-level reference interpreter; SSA construction must preserve
    this semantics exactly. *)

val pp_rinstr : Format.formatter -> rinstr -> unit
val pp : Format.formatter -> t -> unit

(* The pre-SSA IR: a CFG whose instructions assign to mutable registers.
   The mini-C frontend and the random workload generator both produce [Cir];
   {!Ssa.Construct} turns it into a {!Func.t}.

   Registers [0 .. nparams-1] hold the routine parameters on entry; all other
   registers read as 0 until first assigned. *)

type reg = int

type rinstr =
  | Iconst of reg * int
  | Imov of reg * reg
  | Iunop of reg * Types.unop * reg
  | Ibinop of reg * Types.binop * reg * reg
  | Icmp of reg * Types.cmp * reg * reg
  | Iopaque of reg * int * reg list

type term =
  | Tjump of int
  | Tbranch of reg * int * int (* cond, true target, false target *)
  | Tswitch of reg * (int * int) array * int (* scrutinee, (case, target), default *)
  | Treturn of reg

type block = { body : rinstr array; term : term }
type t = { name : string; nparams : int; nregs : int; blocks : block array }

let entry = 0
let num_blocks t = Array.length t.blocks

let successors blk =
  match blk.term with
  | Tjump d -> [| d |]
  | Tbranch (_, a, b) -> [| a; b |]
  | Tswitch (_, cases, default) ->
      Array.append (Array.map snd cases) [| default |]
  | Treturn _ -> [||]

let succ_blocks t = Array.map successors t.blocks

let pred_blocks t =
  let preds = Array.make (num_blocks t) [] in
  Array.iteri
    (fun b blk -> Array.iter (fun d -> preds.(d) <- b :: preds.(d)) (successors blk))
    t.blocks;
  Array.map (fun l -> Array.of_list (List.rev l)) preds

let def_of_rinstr = function
  | Iconst (d, _) | Imov (d, _) | Iunop (d, _, _) | Ibinop (d, _, _, _) | Icmp (d, _, _, _)
  | Iopaque (d, _, _) ->
      d

let iter_uses_rinstr g = function
  | Iconst _ -> ()
  | Imov (_, s) | Iunop (_, _, s) -> g s
  | Ibinop (_, _, a, b) | Icmp (_, _, a, b) ->
      g a;
      g b
  | Iopaque (_, _, args) -> List.iter g args

let iter_uses_term g = function
  | Tjump _ -> ()
  | Tbranch (c, _, _) | Tswitch (c, _, _) | Treturn c -> g c

(* Drop blocks not structurally reachable from the entry, remapping ids. *)
let prune_unreachable t =
  let n = num_blocks t in
  let reach = Array.make n false in
  let rec dfs b =
    if not reach.(b) then begin
      reach.(b) <- true;
      Array.iter dfs (successors t.blocks.(b))
    end
  in
  dfs entry;
  if Array.for_all Fun.id reach then t
  else begin
    let remap = Array.make n (-1) in
    let next = ref 0 in
    for b = 0 to n - 1 do
      if reach.(b) then begin
        remap.(b) <- !next;
        incr next
      end
    done;
    let map_term = function
      | Tjump d -> Tjump remap.(d)
      | Tbranch (c, a, b) -> Tbranch (c, remap.(a), remap.(b))
      | Tswitch (c, cases, d) ->
          Tswitch (c, Array.map (fun (k, t) -> (k, remap.(t))) cases, remap.(d))
      | Treturn r -> Treturn r
    in
    let blocks = Array.make !next { body = [||]; term = Treturn 0 } in
    for b = 0 to n - 1 do
      if reach.(b) then
        blocks.(remap.(b)) <- { body = t.blocks.(b).body; term = map_term t.blocks.(b).term }
    done;
    { t with blocks }
  end

(* Reference interpreter over registers, for cross-checking SSA construction:
   [Ssa.Construct] must preserve this semantics exactly. *)
let run ?(fuel = 100_000) t (args : int array) : Interp.result =
  let regs = Array.make (max 1 t.nregs) 0 in
  (* Only the parameter registers receive arguments; everything else reads
     0 until assigned (extra arguments are ignored, as in Interp). *)
  Array.iteri (fun i v -> if i < t.nparams then regs.(i) <- v) args;
  let exception Trapped in
  let eval = function
    | Iconst (d, n) -> regs.(d) <- n
    | Imov (d, s) -> regs.(d) <- regs.(s)
    | Iunop (d, op, s) -> regs.(d) <- Types.eval_unop op regs.(s)
    | Ibinop (d, op, a, b) -> (
        match Types.eval_binop op regs.(a) regs.(b) with
        | n -> regs.(d) <- n
        | exception Types.Division_by_zero -> raise Trapped)
    | Icmp (d, op, a, b) -> regs.(d) <- Types.eval_cmp op regs.(a) regs.(b)
    | Iopaque (d, tag, rargs) ->
        regs.(d) <- Interp.opaque_model tag (Array.of_list (List.map (fun r -> regs.(r)) rargs))
  in
  let fuel_left = ref fuel in
  let rec exec b =
    let blk = t.blocks.(b) in
    let rec body i =
      if !fuel_left <= 0 then Interp.Timeout
      else if i < Array.length blk.body then begin
        decr fuel_left;
        eval blk.body.(i);
        body (i + 1)
      end
      else begin
        decr fuel_left;
        match blk.term with
        | Tjump d -> exec d
        | Tbranch (c, a, bf) -> exec (if regs.(c) <> 0 then a else bf)
        | Tswitch (c, cases, default) ->
            let target = ref default in
            Array.iter (fun (k, t) -> if regs.(c) = k then target := t) cases;
            exec !target
        | Treturn r -> Interp.Ret regs.(r)
      end
    in
    if !fuel_left <= 0 then Interp.Timeout else body 0
  in
  match exec entry with r -> r | exception Trapped -> Interp.Trap

let pp_rinstr ppf = function
  | Iconst (d, n) -> Fmt.pf ppf "r%d = %d" d n
  | Imov (d, s) -> Fmt.pf ppf "r%d = r%d" d s
  | Iunop (d, op, s) -> Fmt.pf ppf "r%d = %sr%d" d (Types.string_of_unop op) s
  | Ibinop (d, op, a, b) -> Fmt.pf ppf "r%d = r%d %s r%d" d a (Types.string_of_binop op) b
  | Icmp (d, op, a, b) -> Fmt.pf ppf "r%d = r%d %s r%d" d a (Types.string_of_cmp op) b
  | Iopaque (d, tag, args) ->
      Fmt.pf ppf "r%d = opaque#%d(%a)" d tag
        Fmt.(list ~sep:(any ", ") (fun ppf r -> pf ppf "r%d" r))
        args

let pp ppf t =
  Fmt.pf ppf "routine %s (%d params, %d regs)@\n" t.name t.nparams t.nregs;
  Array.iteri
    (fun b blk ->
      Fmt.pf ppf "b%d:@\n" b;
      Array.iter (fun i -> Fmt.pf ppf "  %a@\n" pp_rinstr i) blk.body;
      (match blk.term with
      | Tjump d -> Fmt.pf ppf "  jump b%d@\n" d
      | Tbranch (c, a, f) -> Fmt.pf ppf "  branch r%d, b%d, b%d@\n" c a f
      | Tswitch (c, cases, d) ->
          Fmt.pf ppf "  switch r%d [%a] default b%d@\n" c
            Fmt.(array ~sep:(any "; ") (fun ppf (k, t) -> pf ppf "%d: b%d" k t))
            cases d
      | Treturn r -> Fmt.pf ppf "  return r%d@\n" r))
    t.blocks

(** Natural loops and per-block nesting depth (workload statistics and pass
    budgeting; the GVN driver itself only needs the RPO back-edge set). *)

type t = {
  nesting : int array;  (** loop nesting depth per block; 0 = not in a loop *)
  headers : int list;  (** natural-loop header blocks *)
}

val compute : Graph.t -> t
val max_nesting : t -> int

(** Dominance frontiers by the Cooper–Harvey–Kennedy two-finger method.
    Full frontiers per the definition — [y ∈ DF(a)] iff [a] dominates a
    predecessor of [y] and does not strictly dominate [y] — including
    self-loop nodes in their own frontier. *)

val compute : Graph.t -> Dom.t -> int array array

(* Postdominators, computed as dominators of the reversed CFG from a virtual
   exit node that succeeds every return block. Blocks that cannot reach any
   exit (infinite loops without break) have no postdominators; queries on
   them answer [false] / [-1], which makes φ-predication skip them. *)

type t = {
  dom : Dom.t; (* dominator tree of the reversed graph; node [n] = virtual exit *)
  n : int;
}

let compute (g : Graph.t) =
  let n = g.n in
  let succ = Array.make (n + 1) [||] in
  for u = 0 to n - 1 do
    succ.(u) <- Array.copy g.pred.(u)
  done;
  let exits = ref [] in
  for u = n - 1 downto 0 do
    if Array.length g.succ.(u) = 0 then exits := u :: !exits
  done;
  succ.(n) <- Array.of_list !exits;
  let h = Graph.make ~entry:n succ in
  { dom = Dom.compute h; n }

(* Immediate postdominator; [-1] when it is the virtual exit or the block
   cannot reach an exit. *)
let ipdom t b =
  let d = t.dom.Dom.idom.(b) in
  if d = t.n then -1 else d

(* [postdominates t a b]: does [a] postdominate [b]? (Reflexive.) *)
let postdominates t a b = Dom.dominates t.dom a b

let reaches_exit t b = Dom.reachable t.dom b

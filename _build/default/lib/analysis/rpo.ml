(* Reverse post-order numbering of a CFG, and the derived RPO back-edge
   classification used by the paper (§2.5): an edge u->v is an RPO back edge
   iff number(v) <= number(u). *)

type t = {
  order : int array; (* reachable blocks in reverse post-order *)
  number : int array; (* block -> RPO index, or -1 if unreachable *)
}

let compute (g : Graph.t) =
  let seen = Array.make g.n false in
  let post = ref [] in
  (* Iterative DFS, recording postorder. *)
  let rec dfs u =
    seen.(u) <- true;
    Array.iter (fun v -> if not seen.(v) then dfs v) g.succ.(u);
    post := u :: !post
  in
  dfs g.entry;
  let order = Array.of_list !post in
  let number = Array.make g.n (-1) in
  Array.iteri (fun i b -> number.(b) <- i) order;
  { order; number }

let is_back_edge t ~src ~dst = t.number.(dst) >= 0 && t.number.(dst) <= t.number.(src)

(* The BACKWARD set for an SSA function: ids of RPO back edges. *)
let backward_edges t (f : Ir.Func.t) =
  let back = Array.make (Ir.Func.num_edges f) false in
  Array.iteri
    (fun e { Ir.Func.src; dst; _ } ->
      if t.number.(src) >= 0 && is_back_edge t ~src ~dst then back.(e) <- true)
    f.Ir.Func.edges;
  back

(* Dominance frontiers by the Cooper–Harvey–Kennedy "two-finger" method:
   for each join node, walk each predecessor up to the node's idom. *)

let compute (g : Graph.t) (dom : Dom.t) : int array array =
  let df = Array.make g.n [] in
  let mem v l = List.exists (fun x -> x = v) l in
  (* Unlike the φ-placement-only variant, single-predecessor nodes are
     processed too: a self-loop puts a node in its own frontier. *)
  for b = 0 to g.n - 1 do
    if Dom.reachable dom b && Array.length g.pred.(b) >= 1 then
      Array.iter
        (fun p ->
          if Dom.reachable dom p then begin
            let runner = ref p in
            while !runner <> dom.Dom.idom.(b) do
              if not (mem b df.(!runner)) then df.(!runner) <- b :: df.(!runner);
              runner := dom.Dom.idom.(!runner)
            done
          end)
        g.pred.(b)
  done;
  Array.map Array.of_list df

(** Dominators by the Cooper–Harvey–Kennedy iterative algorithm, with the
    derived queries the GVN core needs: immediate dominators, depths,
    constant-time dominance tests (DFS interval labelling of the tree) and
    nearest common ancestors. Unreachable nodes get idom/depth -1. *)

type t = {
  idom : int array;  (** immediate dominator; entry and unreachable: -1 *)
  depth : int array;  (** tree depth; entry 0; unreachable -1 *)
  children : int array array;
  tin : int array;
  tout : int array;
  entry : int;
}

val compute : ?rpo:Rpo.t -> Graph.t -> t
(** The dominator tree of the reachable part of the graph. *)

val reachable : t -> int -> bool

val dominates : t -> int -> int -> bool
(** [dominates t a b]: does [a] dominate [b]? Reflexive; O(1). *)

val strictly_dominates : t -> int -> int -> bool

val nca : t -> int -> int -> int
(** Nearest common ancestor in the dominator tree.
    @raise Invalid_argument on unreachable nodes. *)

(** A block-level CFG view: dense node ids, an entry node, successor and
    predecessor adjacency. Every analysis in this library works on it. *)

type t = { n : int; entry : int; succ : int array array; pred : int array array }

val make : entry:int -> int array array -> t
(** [make ~entry succ] computes predecessors from the successor lists. *)

val of_func : Ir.Func.t -> t
val of_cir : Ir.Cir.t -> t

val reachable : t -> bool array
(** Nodes reachable from the entry. *)

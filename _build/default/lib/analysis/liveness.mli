(** Value-level liveness over an SSA function: classic backward dataflow on
    per-block bitsets. A φ argument is live out of the predecessor that
    carries it, not into the φ's own block. *)

type t = { live_in : Bytes.t array; live_out : Bytes.t array }

val compute : Ir.Func.t -> t
val live_in_at : t -> int -> Ir.Func.value -> bool
val live_out_at : t -> int -> Ir.Func.value -> bool

(** Incrementally maintained dominator tree of the {e reachable} subgraph
    under edge insertion only — the paper's complete algorithm's setting
    [14], where blocks and edges become reachable monotonically during a
    GVN run. Insertion follows Sreedhar–Gao–Lee: after inserting a
    reachable edge (x, y), every vertex whose immediate dominator changes
    gets idom NCA(x, y); candidates are found by a deepest-first DJ-graph
    search from y. *)

type t

val create : n:int -> entry:int -> t
(** Only the entry is reachable initially. *)

val is_reachable : t -> int -> bool

val idom : t -> int -> int
(** -1 for the entry and for unreachable nodes. *)

val depth : t -> int -> int
val nca : t -> int -> int -> int

val dominates : t -> int -> int -> bool
(** Over the current reachable subgraph; reflexive. *)

val insert_edge : t -> src:int -> dst:int -> int list
(** Record [src -> dst] as reachable and repair the tree. Returns the
    affected vertices (those whose immediate dominator changed) so callers
    can re-examine what depended on the old dominance.
    @raise Invalid_argument when [src] is not yet reachable. *)

val recompute_reference : t -> Dom.t
(** From-scratch recomputation over the currently recorded reachable
    subgraph; the test oracle for {!insert_edge}. *)

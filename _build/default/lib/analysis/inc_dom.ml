(* Incrementally maintained dominator tree of the *reachable* subgraph, under
   edge insertion only — the setting of the paper's complete algorithm, where
   blocks and edges only ever become reachable (monotonically) as GVN runs.

   This follows Sreedhar–Gao–Lee's insertion algorithm [14]: after inserting
   a reachable edge (x, y), every vertex whose immediate dominator changes
   gets the new immediate dominator z = NCA(x, y). Affected candidates are
   found by a deepest-first traversal of the DJ-graph (dominator-tree edges
   down, reachable CFG edges across) starting at y, bounded below depth(z)+1.

   Correctness is cross-checked in the test suite against from-scratch
   recomputation on randomized insertion sequences. *)

type t = {
  n : int;
  entry : int;
  idom : int array; (* -1 = unreachable (and for the entry) *)
  depth : int array; (* -1 = unreachable *)
  mutable children : int list array;
  (* Reachable CFG successors, maintained as edges are inserted. *)
  mutable succ : int list array;
}

let create ~n ~entry =
  let t =
    {
      n;
      entry;
      idom = Array.make n (-1);
      depth = Array.make n (-1);
      children = Array.make n [];
      succ = Array.make n [];
    }
  in
  t.depth.(entry) <- 0;
  t

let is_reachable t b = b = t.entry || t.idom.(b) >= 0
let idom t b = t.idom.(b)
let depth t b = t.depth.(b)

let nca t a b =
  let a = ref a and b = ref b in
  while !a <> !b do
    if t.depth.(!a) > t.depth.(!b) then a := t.idom.(!a)
    else if t.depth.(!b) > t.depth.(!a) then b := t.idom.(!b)
    else begin
      a := t.idom.(!a);
      b := t.idom.(!b)
    end
  done;
  !a

(* [dominates t a b] over the current reachable subgraph (reflexive). *)
let dominates t a b =
  is_reachable t a && is_reachable t b
  &&
  let v = ref b in
  while t.depth.(!v) > t.depth.(a) do
    v := t.idom.(!v)
  done;
  !v = a

let recompute_depths_from t root =
  let rec go b d =
    t.depth.(b) <- d;
    List.iter (fun c -> go c (d + 1)) t.children.(b)
  in
  go root (t.depth.(root) + 0)

let set_parent t v parent =
  let old = t.idom.(v) in
  if old >= 0 then t.children.(old) <- List.filter (fun c -> c <> v) t.children.(old);
  t.idom.(v) <- parent;
  t.children.(parent) <- v :: t.children.(parent)

(* Returns the affected vertices (those whose immediate dominator changed),
   so the GVN driver can retouch the blocks whose dominator sets shrank. *)
let insert_edge t ~src ~dst : int list =
  if not (is_reachable t src) then invalid_arg "Inc_dom.insert_edge: unreachable source";
  t.succ.(src) <- dst :: t.succ.(src);
  if dst = t.entry then []
  else if not (is_reachable t dst) then begin
    (* First reachable incoming edge: dst hangs under src for now. *)
    set_parent t dst src;
    t.depth.(dst) <- t.depth.(src) + 1;
    []
  end
  else begin
    let z = nca t src dst in
    let bound = t.depth.(z) + 1 in
    if t.depth.(dst) > bound then begin
      (* Deepest-first DJ-graph search for the affected set. *)
      let pending = ref [ dst ] in
      let queued = Array.make t.n false in
      queued.(dst) <- true;
      let affected = ref [] in
      let visited_subtree = Array.make t.n (-1) in
      let pop_deepest () =
        match !pending with
        | [] -> None
        | first :: _ ->
            let best = ref first in
            List.iter (fun v -> if t.depth.(v) > t.depth.(!best) then best := v) !pending;
            pending := List.filter (fun v -> v <> !best) !pending;
            Some !best
      in
      (* A candidate [w] reached through a J-edge from [v]'s subtree is
         affected only when depth(w) <= depth(v): processing deepest-first,
         this maintains SGL's path condition that every vertex on the
         witnessing path from [dst] is at least as deep as [w]. Deeper
         targets belong to subtrees that move wholesale with their parent. *)
      let consider vdepth w =
        if
          (not queued.(w))
          && is_reachable t w
          && t.depth.(w) > bound
          && t.depth.(w) <= vdepth
        then begin
          queued.(w) <- true;
          pending := w :: !pending
        end
      in
      (* Each affected vertex walks its own subtree: the walks of two
         affected vertices may overlap, and each carries its own depth
         threshold, so visitation marks are per-walk (stamped). *)
      let stamp = ref 0 in
      let rec walk_subtree vdepth u =
        if visited_subtree.(u) <> !stamp then begin
          visited_subtree.(u) <- !stamp;
          List.iter (consider vdepth) t.succ.(u);
          List.iter (walk_subtree vdepth) t.children.(u)
        end
      in
      let rec drain () =
        match pop_deepest () with
        | None -> ()
        | Some v ->
            affected := v :: !affected;
            incr stamp;
            walk_subtree t.depth.(v) v;
            drain ()
      in
      drain ();
      List.iter (fun v -> set_parent t v z) !affected;
      recompute_depths_from t z;
      !affected
    end
    else []
  end

(* Reference check: the dominator tree recomputed from scratch over the
   currently reachable subgraph; used by the tests. *)
let recompute_reference t =
  let succ = Array.init t.n (fun b -> if is_reachable t b then Array.of_list t.succ.(b) else [||]) in
  let g = Graph.make ~entry:t.entry succ in
  Dom.compute g

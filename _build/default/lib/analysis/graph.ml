(* A block-level view of a CFG: dense node ids, entry node, successor and
   predecessor adjacency. All analyses in this library work on this view. *)

type t = { n : int; entry : int; succ : int array array; pred : int array array }

let make ~entry succ =
  let n = Array.length succ in
  let pred_lists = Array.make n [] in
  for u = n - 1 downto 0 do
    Array.iter (fun v -> pred_lists.(v) <- u :: pred_lists.(v)) succ.(u)
  done;
  { n; entry; succ; pred = Array.map Array.of_list pred_lists }

let of_func (f : Ir.Func.t) = make ~entry:Ir.Func.entry (Ir.Func.succ_blocks f)
let of_cir (c : Ir.Cir.t) = make ~entry:Ir.Cir.entry (Ir.Cir.succ_blocks c)

(* Nodes reachable from the entry. *)
let reachable g =
  let seen = Array.make g.n false in
  let rec dfs u =
    if not seen.(u) then begin
      seen.(u) <- true;
      Array.iter dfs g.succ.(u)
    end
  in
  dfs g.entry;
  seen

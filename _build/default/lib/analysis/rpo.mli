(** Reverse post-order numbering, and the derived RPO back-edge
    classification of the paper (§2.5): an edge u→v is an RPO back edge iff
    number(v) <= number(u). *)

type t = {
  order : int array;  (** reachable blocks in reverse post-order *)
  number : int array;  (** block -> RPO index, or -1 if unreachable *)
}

val compute : Graph.t -> t

val is_back_edge : t -> src:int -> dst:int -> bool
(** Both endpoints must be reachable. *)

val backward_edges : t -> Ir.Func.t -> bool array
(** The BACKWARD set: per edge id, whether it is an RPO back edge. *)

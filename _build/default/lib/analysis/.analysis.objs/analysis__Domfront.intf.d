lib/analysis/domfront.mli: Dom Graph

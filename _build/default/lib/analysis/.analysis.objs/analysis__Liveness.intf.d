lib/analysis/liveness.mli: Bytes Ir

lib/analysis/rpo.mli: Graph Ir

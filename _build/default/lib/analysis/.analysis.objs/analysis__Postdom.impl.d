lib/analysis/postdom.ml: Array Dom Graph

lib/analysis/domfront.ml: Array Dom Graph List

lib/analysis/loops.mli: Graph

lib/analysis/inc_dom.ml: Array Dom Graph List

lib/analysis/postdom.mli: Graph

lib/analysis/liveness.ml: Array Bytes Char Ir

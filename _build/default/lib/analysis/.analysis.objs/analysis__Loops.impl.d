lib/analysis/loops.ml: Array Graph List Rpo

lib/analysis/inc_dom.mli: Dom

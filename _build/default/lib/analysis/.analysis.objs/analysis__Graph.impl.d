lib/analysis/graph.ml: Array Ir

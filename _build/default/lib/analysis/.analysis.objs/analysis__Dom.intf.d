lib/analysis/dom.mli: Graph Rpo

lib/analysis/graph.mli: Ir

lib/analysis/rpo.ml: Array Graph Ir

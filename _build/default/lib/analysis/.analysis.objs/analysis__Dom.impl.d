lib/analysis/dom.ml: Array Graph Rpo

(** Postdominators: dominators of the reversed CFG from a virtual exit that
    succeeds every return block. Blocks that cannot reach an exit (infinite
    loops without break) have no postdominators; queries on them answer
    [false]/[-1], which makes φ-predication skip them. *)

type t

val compute : Graph.t -> t

val ipdom : t -> int -> int
(** Immediate postdominator; [-1] when it is the virtual exit or the block
    cannot reach an exit. *)

val postdominates : t -> int -> int -> bool
(** [postdominates t a b]: does [a] postdominate [b]? Reflexive. *)

val reaches_exit : t -> int -> bool

(* Natural loops and nesting depth. Used by the workload statistics and to
   report the loop structure of generated programs; the GVN driver itself
   only needs the RPO back-edge set. *)

type t = {
  nesting : int array; (* loop nesting depth per block; 0 = not in a loop *)
  headers : int list; (* natural loop headers, innermost duplicates removed *)
}

let compute (g : Graph.t) =
  let rpo = Rpo.compute g in
  let nesting = Array.make g.n 0 in
  let headers = ref [] in
  let add_loop header tail =
    if not (List.mem header !headers) then headers := header :: !headers;
    (* Natural loop body: reverse reachability from the tail, stopping at
       the header. *)
    let inloop = Array.make g.n false in
    inloop.(header) <- true;
    let rec up b =
      if not inloop.(b) then begin
        inloop.(b) <- true;
        Array.iter up g.pred.(b)
      end
    in
    up tail;
    Array.iteri (fun b inl -> if inl then nesting.(b) <- nesting.(b) + 1) inloop
  in
  for u = 0 to g.n - 1 do
    if rpo.number.(u) >= 0 then
      Array.iter (fun v -> if Rpo.is_back_edge rpo ~src:u ~dst:v then add_loop v u) g.succ.(u)
  done;
  { nesting; headers = !headers }

let max_nesting t = Array.fold_left max 0 t.nesting

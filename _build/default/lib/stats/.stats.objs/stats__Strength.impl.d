lib/stats/strength.ml: Histogram List Pgvn

lib/stats/strength.mli: Format Histogram Ir Pgvn

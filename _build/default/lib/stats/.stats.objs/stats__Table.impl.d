lib/stats/table.ml: Fmt List Printf String

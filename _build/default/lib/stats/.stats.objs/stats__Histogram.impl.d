lib/stats/histogram.ml: Fmt Hashtbl List Option

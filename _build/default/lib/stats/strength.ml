(* Per-routine strength metrics (§5): unreachable values (more is better),
   constant values (more is better; unreachable values count as constant,
   the paper's correction), congruence classes (fewer is better) — and the
   comparison of two configurations over a set of routines. *)

type metrics = { unreachable : int; constants : int; classes : int }

let of_summary (s : Pgvn.Driver.summary) =
  {
    unreachable = s.Pgvn.Driver.unreachable_values;
    constants = s.Pgvn.Driver.constant_values;
    classes = s.Pgvn.Driver.congruence_classes;
  }

let measure config f = of_summary (Pgvn.Driver.summarize (Pgvn.Driver.run config f))

type comparison = {
  unreachable : Histogram.t; (* improvement = ours - baseline *)
  constants : Histogram.t;
  classes : Histogram.t; (* improvement = baseline - ours (fewer is better) *)
}

(* Compare [config] against [baseline] over [funcs]; positive improvements
   mean [config] is stronger. *)
let compare_configs ~config ~baseline funcs : comparison =
  let unreachable = Histogram.create () in
  let constants = Histogram.create () in
  let classes = Histogram.create () in
  List.iter
    (fun f ->
      let a = measure config f in
      let b = measure baseline f in
      Histogram.add unreachable (a.unreachable - b.unreachable);
      Histogram.add constants (a.constants - b.constants);
      Histogram.add classes (b.classes - a.classes))
    funcs;
  { unreachable; constants; classes }

let pp ppf (c : comparison) =
  Histogram.pp ~label:"unreachable values" ppf c.unreachable;
  Histogram.pp ~label:"constant values" ppf c.constants;
  Histogram.pp ~label:"congruence classes" ppf c.classes

(** Per-routine strength metrics (§5) — unreachable values and constant
    values (more is better; unreachable counted as constant, the paper's
    correction) and congruence classes (fewer is better) — and the
    comparison of two configurations over a routine set. *)

type metrics = { unreachable : int; constants : int; classes : int }

val of_summary : Pgvn.Driver.summary -> metrics
val measure : Pgvn.Config.t -> Ir.Func.t -> metrics

type comparison = {
  unreachable : Histogram.t;
  constants : Histogram.t;
  classes : Histogram.t;  (** improvement = baseline - ours *)
}

val compare_configs :
  config:Pgvn.Config.t -> baseline:Pgvn.Config.t -> Ir.Func.t list -> comparison
(** Positive improvements mean [config] is stronger than [baseline]. *)

val pp : Format.formatter -> comparison -> unit

(* Fixed-width text rendering for the reproduction of the paper's Tables. *)

type align = Left | Right

let render ~columns ~rows ppf =
  let widths =
    List.mapi
      (fun i (h, _) ->
        List.fold_left (fun w r -> max w (String.length (List.nth r i))) (String.length h) rows)
      columns
  in
  let pad (s : string) w = function
    | Left -> Printf.sprintf "%-*s" w s
    | Right -> Printf.sprintf "%*s" w s
  in
  let line cells =
    Fmt.pf ppf "  %s@\n"
      (String.concat "  "
         (List.map2 (fun (cell, (_, a)) w -> pad cell w a) (List.combine cells columns) widths))
  in
  line (List.map fst columns);
  line (List.map (fun ((h, _), w) -> String.make (max w (String.length h)) '-') (List.combine columns widths));
  List.iter line rows

let ms seconds = Printf.sprintf "%.1f" (seconds *. 1000.0)
let ratio a b = if b = 0.0 then "-" else Printf.sprintf "%.2f" (a /. b)
let pct a b = if b = 0.0 then "-" else Printf.sprintf "%.1f%%" (100.0 *. a /. b)

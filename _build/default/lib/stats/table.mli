(** Fixed-width text rendering for the reproduced tables. *)

type align = Left | Right

val render :
  columns:(string * align) list -> rows:string list list -> Format.formatter -> unit

val ms : float -> string
(** Seconds rendered as milliseconds with one decimal. *)

val ratio : float -> float -> string
(** ["a/b"] with two decimals; ["-"] when the denominator is zero. *)

val pct : float -> float -> string

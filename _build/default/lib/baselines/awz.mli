(** Alpern–Wegman–Zadeck optimistic partition-based value numbering [1]:
    the value graph is partitioned by operator label (φs labelled by their
    block), then refined until congruent nodes have position-wise congruent
    operands. The partition formulation does not perform the hash-based
    reduction φ(x, …, x) → x, so its result refines (finds no more than)
    the hash-based algorithms'. *)

val run : Ir.Func.t -> int array
(** Class id per value (-1 for non-values); congruent iff equal. *)

val congruent : int array -> Ir.Func.value -> Ir.Func.value -> bool

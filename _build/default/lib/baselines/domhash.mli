(** Pessimistic hash-based value numbering over the dominator tree, in the
    style of Click's O(I) algorithm [8]: one preorder walk with a scoped
    hash table, unified with constant folding. Cyclic φs are unique values
    (their back-edge arguments are not yet numbered when reached). *)

type rep = Rval of int | Rconst of int

type result = { rep : rep array }

val run : Ir.Func.t -> result
val constant_of : result -> Ir.Func.value -> int option
val congruent : result -> Ir.Func.value -> Ir.Func.value -> bool

(* Shared expression keys for the hash-based baseline value numberers
   (Simpson RPO / SCC, dominator-scoped pessimistic). Purely syntactic —
   no folding, no reordering — so the fixed points coincide with the
   partition-based AWZ result modulo the φ(x,…,x) → x reduction. *)

type rep = int (* representative value id; constants are the Const instr *)

type t =
  | Kconst of int
  | Kparam of int
  | Kopq of int * rep list
  | Kphi of int * rep list (* block id, live argument reps *)
  | Kunop of Ir.Types.unop * rep
  | Kbinop of Ir.Types.binop * rep * rep
  | Kcmp of Ir.Types.cmp * rep * rep

let equal (a : t) (b : t) = a = b
let hash (k : t) = Hashtbl.hash k

module Table = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)

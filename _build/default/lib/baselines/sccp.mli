(** Wegman–Zadeck sparse conditional constant propagation [16], implemented
    independently of the GVN engine (the classic two-worklist formulation
    over ⊤ / constant / ⊥). Cross-validates the engine's
    [Config.emulate_sccp_exact] preset. *)

type lattice = Top | Const of int | Bottom

val meet : lattice -> lattice -> lattice
val equal_lattice : lattice -> lattice -> bool

type result = {
  value : lattice array;
  edge_executable : bool array;
  block_executable : bool array;
}

val run : Ir.Func.t -> result

(* Briggs–Torczon–Cooper's value-inference pre-pass [5]: before value
   numbering, uses dominated by the true edge of an equality test are
   rewritten to the other operand of the test (here: to the constant, when
   one side is constant — the profitable direction).

   Crucially — and this is the paper's Figure 13 point — the pre-pass
   operates on SSA *names*, not on congruence classes: a value that is
   merely congruent to the tested name is not rewritten, so the unified
   algorithm finds strictly more. *)

(* For each value v, the constant it may be replaced with inside each
   dominated region: list of (region root block, constant). *)
let facts_of (f : Ir.Func.t) (dom : Analysis.Dom.t) =
  let facts = Hashtbl.create 16 in
  for b = 0 to Ir.Func.num_blocks f - 1 do
    match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
    | Ir.Func.Branch c -> (
        match Ir.Func.instr f c with
        | Ir.Func.Cmp (Ir.Types.Eq, x, y) ->
            let target_const v w =
              match Ir.Func.instr f w with Ir.Func.Const n -> Some (v, n) | _ -> None
            in
            let fact =
              match target_const x y with Some _ as s -> s | None -> target_const y x
            in
            (match fact with
            | Some (v, n) ->
                (* The true successor, provided the edge is its only
                   predecessor (otherwise the region is not edge-dominated). *)
                let e = (Ir.Func.block f b).Ir.Func.succs.(0) in
                let d = (Ir.Func.edge f e).Ir.Func.dst in
                if Array.length (Ir.Func.block f d).Ir.Func.preds = 1 then
                  Hashtbl.add facts v (d, n)
            | None -> ())
        | _ -> ())
    | _ -> ()
  done;
  ignore dom;
  facts

(* Rewrite dominated uses. Returns the transformed function. *)
let run (f : Ir.Func.t) : Ir.Func.t =
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let facts = facts_of f dom in
  if Hashtbl.length facts = 0 then f
  else begin
    let nb = Ir.Func.num_blocks f in
    let bld = Ir.Builder.create ~name:f.Ir.Func.name ~nparams:f.Ir.Func.nparams in
    for _ = 0 to nb - 1 do
      ignore (Ir.Builder.add_block bld)
    done;
    let value_map = Array.make (Ir.Func.num_instrs f) (-1) in
    (* Constants for rewrites materialize in the region root. *)
    let const_cache = Hashtbl.create 8 in
    let const_in root n =
      match Hashtbl.find_opt const_cache (root, n) with
      | Some v -> v
      | None ->
          let v = Ir.Builder.const bld root n in
          Hashtbl.replace const_cache (root, n) v;
          v
    in
    (* Resolve a use of [v] from block [b]. *)
    let resolve ~use_block v =
      let applicable =
        Hashtbl.find_all facts v
        |> List.filter (fun (root, _) -> Analysis.Dom.dominates dom root use_block)
      in
      match applicable with
      | (root, n) :: _ -> const_in root n
      | [] ->
          if value_map.(v) < 0 then invalid_arg "Briggs_prepass: unresolved value";
          value_map.(v)
    in
    let rpo = Analysis.Rpo.compute g in
    let phis = ref [] in
    Array.iter
      (fun b ->
        Array.iter
          (fun i ->
            match Ir.Func.instr f i with
            | Ir.Func.Const c -> value_map.(i) <- Ir.Builder.const bld b c
            | Ir.Func.Param k -> value_map.(i) <- Ir.Builder.param bld b k
            | Ir.Func.Unop (op, a) ->
                value_map.(i) <- Ir.Builder.unop bld b op (resolve ~use_block:b a)
            | Ir.Func.Binop (op, a, b') ->
                value_map.(i) <-
                  Ir.Builder.binop bld b op (resolve ~use_block:b a) (resolve ~use_block:b b')
            | Ir.Func.Cmp (op, a, b') ->
                value_map.(i) <-
                  Ir.Builder.cmp bld b op (resolve ~use_block:b a) (resolve ~use_block:b b')
            | Ir.Func.Opaque (tag, args) ->
                value_map.(i) <-
                  Ir.Builder.opaque ~tag bld b
                    (List.map (resolve ~use_block:b) (Array.to_list args))
            | Ir.Func.Phi args ->
                let p = Ir.Builder.phi bld b in
                value_map.(i) <- p;
                phis := (b, p, args) :: !phis
            | Ir.Func.Jump | Ir.Func.Branch _ | Ir.Func.Switch _ | Ir.Func.Return _ -> ())
          (Ir.Func.block f b).Ir.Func.instrs)
      rpo.Analysis.Rpo.order;
    let edge_map = Array.make (Ir.Func.num_edges f) (-1) in
    for b = 0 to nb - 1 do
      let blk = Ir.Func.block f b in
      match Ir.Func.instr f (Ir.Func.terminator_of_block f b) with
      | Ir.Func.Jump ->
          edge_map.(blk.Ir.Func.succs.(0)) <-
            Ir.Builder.jump bld b ~dst:(Ir.Func.edge f blk.Ir.Func.succs.(0)).Ir.Func.dst
      | Ir.Func.Branch c ->
          let et, ef =
            Ir.Builder.branch bld b (resolve ~use_block:b c)
              ~ift:(Ir.Func.edge f blk.Ir.Func.succs.(0)).Ir.Func.dst
              ~iff:(Ir.Func.edge f blk.Ir.Func.succs.(1)).Ir.Func.dst
          in
          edge_map.(blk.Ir.Func.succs.(0)) <- et;
          edge_map.(blk.Ir.Func.succs.(1)) <- ef
      | Ir.Func.Switch (c, cases) ->
          let case_args =
            Array.to_list
              (Array.mapi
                 (fun ix k -> (k, (Ir.Func.edge f blk.Ir.Func.succs.(ix)).Ir.Func.dst))
                 cases)
          in
          let default = (Ir.Func.edge f blk.Ir.Func.succs.(Array.length cases)).Ir.Func.dst in
          let case_edges, default_edge =
            Ir.Builder.switch bld b (resolve ~use_block:b c) ~cases:case_args ~default
          in
          List.iteri (fun ix e -> edge_map.(blk.Ir.Func.succs.(ix)) <- e) case_edges;
          edge_map.(blk.Ir.Func.succs.(Array.length cases)) <- default_edge
      | Ir.Func.Return v -> Ir.Builder.ret bld b (resolve ~use_block:b v)
      | _ -> invalid_arg "Briggs_prepass: missing terminator"
    done;
    List.iter
      (fun (b, p, args) ->
        let preds = (Ir.Func.block f b).Ir.Func.preds in
        Array.iteri
          (fun ix e ->
            (* A φ argument is used at the source of the edge carrying it. *)
            let src = (Ir.Func.edge f e).Ir.Func.src in
            Ir.Builder.set_phi_arg bld ~phi:p ~edge:edge_map.(e)
              (resolve ~use_block:src args.(ix)))
          preds)
      !phis;
    Ir.Builder.finish bld
  end

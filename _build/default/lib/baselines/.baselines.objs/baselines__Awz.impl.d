lib/baselines/awz.ml: Array Hashtbl Ir Option

lib/baselines/briggs_prepass.mli: Ir

lib/baselines/briggs_prepass.ml: Analysis Array Hashtbl Ir List

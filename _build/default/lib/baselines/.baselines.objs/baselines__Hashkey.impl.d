lib/baselines/hashkey.ml: Hashtbl Ir

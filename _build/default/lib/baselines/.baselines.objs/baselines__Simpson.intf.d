lib/baselines/simpson.mli: Ir

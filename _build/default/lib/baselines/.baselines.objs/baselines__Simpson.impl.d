lib/baselines/simpson.ml: Analysis Array Hashkey Ir List

lib/baselines/awz.mli: Ir

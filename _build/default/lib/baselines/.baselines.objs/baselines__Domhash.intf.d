lib/baselines/domhash.mli: Ir

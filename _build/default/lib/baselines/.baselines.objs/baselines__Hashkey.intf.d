lib/baselines/hashkey.mli: Hashtbl Ir

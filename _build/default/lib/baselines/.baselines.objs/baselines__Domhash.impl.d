lib/baselines/domhash.ml: Analysis Array Hashtbl Ir List

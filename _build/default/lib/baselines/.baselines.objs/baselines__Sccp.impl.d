lib/baselines/sccp.ml: Array Ir Queue

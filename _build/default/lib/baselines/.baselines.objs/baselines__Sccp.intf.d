lib/baselines/sccp.mli: Ir

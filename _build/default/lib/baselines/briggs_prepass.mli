(** Briggs–Torczon–Cooper's value-inference pre-pass [5]: uses dominated by
    the true edge of an equality-with-constant test are rewritten to the
    constant before value numbering runs. Operating on SSA names rather
    than congruence classes, it finds strictly less than the unified
    algorithm — the paper's Figure 13 point. *)

val run : Ir.Func.t -> Ir.Func.t
(** The rewritten (semantics-preserving) function. *)

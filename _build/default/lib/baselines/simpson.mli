(** Simpson's hash-based optimistic value numbering [13]: the RPO algorithm
    (whole-routine passes, hash table cleared per pass) and the SCC
    algorithm (use-def strongly connected components in dependency order;
    acyclic values numbered once against a persistent table, cyclic
    components iterated against an optimistic one). The RPO result equals
    the engine's AWZ emulation; the SCC result refines it (it can miss
    congruences between independent parallel φ-cycles — see the .ml note). *)

type result = { vn : int array (** representative per value; ⊤ = -1 *); passes : int }

val rpo : Ir.Func.t -> result
val scc : Ir.Func.t -> result

(* SSA well-formedness over and above {!Ir.Func.validate}: every non-φ use
   is dominated by its definition, and every φ argument's definition
   dominates the source block of the edge that carries it. *)

let check (f : Ir.Func.t) =
  let g = Analysis.Graph.of_func f in
  let dom = Analysis.Dom.compute g in
  let fail fmt = Printf.ksprintf failwith fmt in
  (* Position of each instruction inside its block, for same-block order. *)
  let pos = Array.make (Ir.Func.num_instrs f) 0 in
  for b = 0 to Ir.Func.num_blocks f - 1 do
    Array.iteri (fun k i -> pos.(i) <- k) (Ir.Func.block f b).Ir.Func.instrs
  done;
  let def_dominates_use ~def ~use_block ~use_pos =
    let db = Ir.Func.block_of_instr f def in
    if db = use_block then pos.(def) < use_pos
    else Analysis.Dom.strictly_dominates dom db use_block
  in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    let b = Ir.Func.block_of_instr f i in
    if Analysis.Dom.reachable dom b then
      match Ir.Func.instr f i with
      | Ir.Func.Phi args ->
          let preds = (Ir.Func.block f b).Ir.Func.preds in
          Array.iteri
            (fun ix v ->
              let e = Ir.Func.edge f preds.(ix) in
              let src = e.Ir.Func.src in
              if Analysis.Dom.reachable dom src then
                let n = Array.length (Ir.Func.block f src).Ir.Func.instrs in
                if not (def_dominates_use ~def:v ~use_block:src ~use_pos:n) then
                  fail "ssa: phi v%d arg v%d not available on edge from b%d" i v src)
            args
      | ins ->
          Ir.Func.iter_operands
            (fun v ->
              if not (def_dominates_use ~def:v ~use_block:b ~use_pos:pos.(i)) then
                fail "ssa: use of v%d in v%d (b%d) not dominated by its definition" v i b)
            ins
  done;
  f

(* SSA construction from the register IR, after Cytron et al.: φ placement on
   iterated dominance frontiers followed by a dominator-tree renaming walk.

   Three φ-placement policies are provided because the paper (§3) observes
   that pruned SSA can reduce the effectiveness of global value numbering:
   - [Minimal]: φ at every iterated-dominance-frontier node of each def;
   - [Semi_pruned]: only for registers live across some block boundary
     (Briggs's "global" names);
   - [Pruned]: only where the register is live-in (full liveness analysis).

   Register copies ([Imov]) are coalesced away during renaming: they become
   pure renamings rather than SSA copy instructions. *)

type pruning = Minimal | Semi_pruned | Pruned

let pruning_to_string = function
  | Minimal -> "minimal"
  | Semi_pruned -> "semi-pruned"
  | Pruned -> "pruned"

(* Per-block upward-exposed uses and defs, for liveness and globals. *)
let block_use_def (c : Ir.Cir.t) =
  let n = Ir.Cir.num_blocks c in
  let uses = Array.make n [] in
  let defs = Array.init n (fun _ -> Array.make 0 false) in
  let defs = Array.map (fun _ -> Array.make c.Ir.Cir.nregs false) defs in
  for b = 0 to n - 1 do
    let blk = c.Ir.Cir.blocks.(b) in
    let add_use r = if not defs.(b).(r) then uses.(b) <- r :: uses.(b) in
    Array.iter
      (fun i ->
        Ir.Cir.iter_uses_rinstr add_use i;
        defs.(b).(Ir.Cir.def_of_rinstr i) <- true)
      blk.Ir.Cir.body;
    Ir.Cir.iter_uses_term add_use blk.Ir.Cir.term
  done;
  (uses, defs)

(* Backward liveness to a fixpoint; returns live-in sets. *)
let live_in (c : Ir.Cir.t) (g : Analysis.Graph.t) =
  let n = Ir.Cir.num_blocks c in
  let uses, defs = block_use_def c in
  let livein = Array.init n (fun _ -> Array.make c.Ir.Cir.nregs false) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = n - 1 downto 0 do
      (* live-out(b) = union of live-in of successors *)
      let update r =
        if (not defs.(b).(r)) && not livein.(b).(r) then begin
          livein.(b).(r) <- true;
          changed := true
        end
      in
      Array.iter
        (fun s ->
          Array.iteri (fun r l -> if l then update r) livein.(s))
        g.Analysis.Graph.succ.(b);
      List.iter
        (fun r ->
          if not livein.(b).(r) then begin
            livein.(b).(r) <- true;
            changed := true
          end)
        uses.(b)
    done
  done;
  livein

(* Registers live across a block boundary (Briggs's globals). *)
let global_regs (c : Ir.Cir.t) =
  let uses, _ = block_use_def c in
  let globals = Array.make c.Ir.Cir.nregs false in
  Array.iter (fun us -> List.iter (fun r -> globals.(r) <- true) us) uses;
  globals

let of_cir ?(pruning = Semi_pruned) (c : Ir.Cir.t) : Ir.Func.t =
  let c = Ir.Cir.prune_unreachable c in
  let g = Analysis.Graph.of_cir c in
  let dom = Analysis.Dom.compute g in
  let df = Analysis.Domfront.compute g dom in
  let n = Ir.Cir.num_blocks c in
  let nregs = c.Ir.Cir.nregs in
  (* Definition sites per register; parameters are defined at entry. *)
  let def_blocks = Array.make nregs [] in
  for r = 0 to c.Ir.Cir.nparams - 1 do
    def_blocks.(r) <- [ Ir.Cir.entry ]
  done;
  for b = 0 to n - 1 do
    Array.iter
      (fun i ->
        let d = Ir.Cir.def_of_rinstr i in
        def_blocks.(d) <- b :: def_blocks.(d))
      c.Ir.Cir.blocks.(b).Ir.Cir.body
  done;
  let wants_phi =
    match pruning with
    | Minimal -> fun _r _b -> true
    | Semi_pruned ->
        let globals = global_regs c in
        fun r _b -> globals.(r)
    | Pruned ->
        let livein = live_in c g in
        fun r b -> livein.(b).(r)
  in
  (* Iterated dominance frontier placement. *)
  let phi_here = Array.init n (fun _ -> Array.make nregs false) in
  for r = 0 to nregs - 1 do
    let onlist = Array.make n false in
    let work = ref [] in
    List.iter
      (fun b ->
        if not onlist.(b) then begin
          onlist.(b) <- true;
          work := b :: !work
        end)
      def_blocks.(r);
    let rec drain () =
      match !work with
      | [] -> ()
      | b :: rest ->
          work := rest;
          Array.iter
            (fun d ->
              if (not phi_here.(d).(r)) && wants_phi r d then begin
                phi_here.(d).(r) <- true;
                if not onlist.(d) then begin
                  onlist.(d) <- true;
                  work := d :: !work
                end
              end)
            df.(b);
          drain ()
    in
    drain ()
  done;
  (* Build the SSA function. *)
  let bld = Ir.Builder.create ~name:c.Ir.Cir.name ~nparams:c.Ir.Cir.nparams in
  for _ = 0 to n - 1 do
    ignore (Ir.Builder.add_block bld)
  done;
  let phi_ids = Array.init n (fun _ -> Array.make nregs (-1)) in
  for b = 0 to n - 1 do
    for r = 0 to nregs - 1 do
      if phi_here.(b).(r) then phi_ids.(b).(r) <- Ir.Builder.phi bld b
    done
  done;
  (* Every register starts as 0 (parameters as themselves). *)
  let zero = Ir.Builder.const bld Ir.Cir.entry 0 in
  let params = Array.init c.Ir.Cir.nparams (fun k -> Ir.Builder.param bld Ir.Cir.entry k) in
  let stacks = Array.make nregs [] in
  let top r =
    match stacks.(r) with
    | v :: _ -> v
    | [] -> if r < c.Ir.Cir.nparams then params.(r) else zero
  in
  let rec rename b =
    let pushed = ref [] in
    let push r v =
      stacks.(r) <- v :: stacks.(r);
      pushed := r :: !pushed
    in
    for r = 0 to nregs - 1 do
      if phi_here.(b).(r) then push r phi_ids.(b).(r)
    done;
    Array.iter
      (fun i ->
        match (i : Ir.Cir.rinstr) with
        | Imov (d, s) -> push d (top s) (* copies are coalesced *)
        | Iconst (d, k) -> push d (Ir.Builder.const bld b k)
        | Iunop (d, op, s) -> push d (Ir.Builder.unop bld b op (top s))
        | Ibinop (d, op, x, y) -> push d (Ir.Builder.binop bld b op (top x) (top y))
        | Icmp (d, op, x, y) -> push d (Ir.Builder.cmp bld b op (top x) (top y))
        | Iopaque (d, tag, args) ->
            push d (Ir.Builder.opaque ~tag bld b (List.map top args)))
      c.Ir.Cir.blocks.(b).Ir.Cir.body;
    let fill_phi_args e s =
      for r = 0 to nregs - 1 do
        if phi_here.(s).(r) then
          Ir.Builder.set_phi_arg bld ~phi:phi_ids.(s).(r) ~edge:e (top r)
      done
    in
    (match c.Ir.Cir.blocks.(b).Ir.Cir.term with
    | Tjump d ->
        let e = Ir.Builder.jump bld b ~dst:d in
        fill_phi_args e d
    | Tbranch (r, dt, dff) ->
        let et, ef = Ir.Builder.branch bld b (top r) ~ift:dt ~iff:dff in
        fill_phi_args et dt;
        fill_phi_args ef dff
    | Tswitch (r, cases, default) ->
        let case_edges, default_edge =
          Ir.Builder.switch bld b (top r)
            ~cases:(Array.to_list (Array.map (fun (k, t) -> (k, t)) cases))
            ~default
        in
        List.iteri (fun ix e -> fill_phi_args e (snd cases.(ix))) case_edges;
        fill_phi_args default_edge default
    | Treturn r -> Ir.Builder.ret bld b (top r));
    Array.iter rename dom.Analysis.Dom.children.(b);
    List.iter (fun r -> stacks.(r) <- List.tl stacks.(r)) !pushed
  in
  rename Ir.Cir.entry;
  Ir.Builder.finish bld

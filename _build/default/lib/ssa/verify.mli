(** SSA well-formedness over and above {!Ir.Func.validate}: every non-φ use
    is dominated by its definition, and every φ argument's definition
    dominates the source of the edge carrying it. *)

val check : Ir.Func.t -> Ir.Func.t
(** Returns its argument. @raise Failure with a diagnostic on violations. *)

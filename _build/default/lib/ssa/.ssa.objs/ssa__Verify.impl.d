lib/ssa/verify.ml: Analysis Array Ir Printf

lib/ssa/construct.ml: Analysis Array Ir List

lib/ssa/verify.mli: Ir

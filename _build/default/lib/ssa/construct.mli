(** SSA construction from the register IR, after Cytron et al.: φ placement
    on iterated dominance frontiers, then a dominator-tree renaming walk.
    Register copies are coalesced away during renaming. *)

type pruning =
  | Minimal  (** φ at every iterated-frontier node of each definition *)
  | Semi_pruned  (** only registers live across some block boundary *)
  | Pruned  (** only where the register is live-in (full liveness) *)

val pruning_to_string : pruning -> string

val of_cir : ?pruning:pruning -> Ir.Cir.t -> Ir.Func.t
(** Convert to SSA (default [Semi_pruned]; the paper (§3) notes pruned SSA
    can reduce GVN effectiveness, so the choice is exposed). Structurally
    unreachable blocks are pruned first. *)

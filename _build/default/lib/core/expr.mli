(** Symbolic expressions (§2.2–2.3): the canonical form of what an
    instruction computes, over congruence-class leaders. The TABLE hash
    table is keyed on this type, so congruent instructions must evaluate to
    equal expressions.

    Arithmetic is kept as a canonical sum of products ({!Sum}): ordered
    terms of an integer coefficient times rank-ordered value factors; the
    constant part is the factor-less term. Non-reassociable operations keep
    atomic operands ({!Op}). Comparisons are rank-canonicalized, flipping
    the operator when operands swap. φ-expressions carry their block — or,
    under φ-predication, the block's control predicate, an or-of-ands of
    edge predicates in canonical path order. *)

type t =
  | Const of int
  | Value of int  (** a congruence-class leader *)
  | Sum of term list
  | Op of opsym * t list  (** non-reassociable op over atomic operands *)
  | Cmp of Ir.Types.cmp * t * t
  | Phi of key * t list
  | Opq of int * t list  (** uninterpreted function of tag and atoms *)
  | Self of int  (** an expression unique to the given value *)
  | Pand of t list  (** predicate conjunction, canonical path order *)
  | Por of t list  (** predicate disjunction, canonical path order *)

and term = { coeff : int; factors : int list (** value ids, rank-sorted *) }
and opsym = Ubop of Ir.Types.binop | Uuop of Ir.Types.unop
and key = Kblock of int | Kpred of t

val equal : t -> t -> bool
val equal_list : t list -> t list -> bool
val equal_terms : term list -> term list -> bool
val equal_key : key -> key -> bool

val hash : t -> int
(** Consistent with {!equal}. *)

module Table : Hashtbl.S with type key = t
(** Hash tables keyed by expressions (the paper's TABLE). *)

(** {1 Sum-of-products algebra}

    Each function takes the rank function ordering values (§2.2: constants
    rank 0, values by definition order in RPO). All term lists are and stay
    canonical: sorted by factors, coefficients nonzero, products unique. *)

val compare_factors : (int -> int) -> int list -> int list -> int

val merge_terms : (int -> int) -> term list -> term list -> term list
(** Addition. *)

val negate_terms : term list -> term list

val mul_terms : (int -> int) -> term list -> term list -> term list
(** Multiplication with full distribution. *)

val size_of_terms : term list -> int
(** Operand count, bounded by the forward-propagation limit (§2.2 fn. 4). *)

val of_terms : term list -> t
(** Reduce to the simplest form: [Const 0], a constant, a bare value, or a
    [Sum]. *)

val terms_of_atom : t -> term list
(** @raise Invalid_argument on non-atoms. *)

val terms_opt : t -> term list option
val sort_factors : (int -> int) -> int list -> int list

(** {1 Comparisons and simplification} *)

val is_atom : t -> bool
(** [Const] or [Value]. *)

val atom_rank : (int -> int) -> t -> int * int
(** Sort key placing constants before values, values by rank. *)

val cmp_atoms : (int -> int) -> Ir.Types.cmp -> t -> t -> t
(** Canonical comparison: folds constants and identical operands, orders
    operands by increasing rank (flipping the operator on swap, §2.8). *)

val negate_pred : t -> t
(** The complement of a predicate; closed on comparisons. *)

val is_predicate : t -> bool
val op_commutative : opsym -> bool

val make_op : (int -> int) -> opsym -> t list -> t
(** An [Op] node, sorting the operands when the operator is commutative. *)

val binop_atoms : (int -> int) -> Ir.Types.binop -> t -> t -> t
(** Simplify a non-reassociable binary operation over atoms. Never folds a
    possibly-trapping division/remainder. *)

val unop_atom : (int -> int) -> Ir.Types.unop -> t -> t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** φ-predication (§2.8, Figure 8): the predicate of a block B with
    reachable incoming edges E1, E2, … is P1 ∨ P2 ∨ …, where Pi holds
    exactly when control reaches B from its immediate dominator along Ei.
    It is computed by traversing every reachable path from the dominator to
    B (which must postdominate it; back edges abort), and it fixes the
    canonical order of B's incoming edges. Two φs in different blocks are
    congruent when their arguments are congruent and their blocks'
    predicates are congruent. *)

val compute_block_predicate : State.t -> int -> bool
(** Recompute PREDICATE and CANONICAL for a block; [true] when the
    predicate changed (the caller then touches the block's φs). *)

(** The "related predicates" logic of §2.7: assuming a dominating edge's
    comparison holds, decide another comparison. Recognised relations:
    pairwise-congruent operands (an operator implication table) and a
    congruent value compared against two constants (interval reasoning —
    e.g. Z > 1 refutes Z < 1). *)

type verdict = True | False | Unknown

val same_operands_table : Ir.Types.cmp -> Ir.Types.cmp -> verdict
(** Given [a OP b], decide [a OP' b]. *)

type interval = Exactly of int | Not of int | At_most of int | At_least of int

val interval_of : op:Ir.Types.cmp -> c:int -> interval
(** Solution set of [x op c]. *)

val interval_implies : interval -> interval -> verdict
(** Given x ∈ fact, is x ∈ query? *)

val value_vs_const : Expr.t -> (Expr.t * Ir.Types.cmp * int) option
(** Normalize a comparison with one constant side to (value, op, constant). *)

val decide : same:(Expr.t -> Expr.t -> bool) -> fact:Expr.t -> query:Expr.t -> verdict
(** [decide ~same ~fact ~query]: assuming [fact] holds, the truth of
    [query]; [same] is atom congruence. Sound: [True]/[False] verdicts
    never contradict any satisfying assignment. *)

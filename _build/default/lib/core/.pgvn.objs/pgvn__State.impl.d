lib/core/state.ml: Analysis Array Config Expr Ir List Run_stats Util

lib/core/phipred.mli: State

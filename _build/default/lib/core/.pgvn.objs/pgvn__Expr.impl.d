lib/core/expr.ml: Fmt Hashtbl Ir List

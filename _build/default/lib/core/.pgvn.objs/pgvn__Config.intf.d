lib/core/config.mli:

lib/core/infer.ml: Expr Ir

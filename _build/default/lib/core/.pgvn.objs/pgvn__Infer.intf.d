lib/core/infer.mli: Expr Ir

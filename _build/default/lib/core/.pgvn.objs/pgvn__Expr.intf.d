lib/core/expr.mli: Format Hashtbl Ir

lib/core/state.mli: Analysis Config Expr Ir Run_stats Util

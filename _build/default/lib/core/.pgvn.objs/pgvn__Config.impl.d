lib/core/config.ml:

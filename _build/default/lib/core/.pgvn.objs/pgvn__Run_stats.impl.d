lib/core/run_stats.ml: Fmt

lib/core/phipred.ml: Analysis Array Config Expr Ir List Option Run_stats State

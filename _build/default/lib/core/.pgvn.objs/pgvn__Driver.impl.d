lib/core/driver.ml: Analysis Array Config Expr Hashtbl Infer Ir List Option Phipred Printf Run_stats State

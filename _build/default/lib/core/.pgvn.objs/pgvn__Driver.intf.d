lib/core/driver.mli: Config Expr Ir State

(** The synthetic stand-in for the SPEC CINT2000 C benchmarks of Tables 1
    and 2: ten "benchmarks" (256.bzip2 excluded, as in the paper) with
    routine counts and sizes in SPEC-like proportions. *)

type benchmark = {
  name : string;
  seed : int;
  routines : int;  (** at scale 1.0 *)
  stmt_budget : int;
}

val benchmarks : benchmark list

val routines_of : ?scale:float -> benchmark -> Ir.Func.t list
(** All routines of one benchmark as SSA functions; [scale] multiplies the
    routine count (default 1.0). *)

val all : ?scale:float -> unit -> (benchmark * Ir.Func.t list) list

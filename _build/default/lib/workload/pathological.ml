module Ast = Ir.Ast

(* The paper's Figure 9: the worst case of value inference. A ladder of n
   nested equality guards I1 = I2, I2 = I3, …; discovering the congruence
   under the innermost guard makes every value-inference walk climb the
   whole dominator chain, for O(n²) total work. *)

let ladder n : Ast.routine =
  let var k = Printf.sprintf "i%d" k in
  let defs =
    List.init n (fun k ->
        Ast.Sassign (var (k + 1), Ast.Ecall ("f0", [ Ast.Enum (k + 1) ])))
  in
  (* [k] is the target: under the guard chain, j = i_n + 1 is congruent to
     k = i_1 + 1, and discovering it costs a full dominator-chain walk. *)
  let innermost =
    [ Ast.Sassign ("j", Ast.Ebinop (Ir.Types.Add, Ast.Evar (var n), Ast.Enum 1)) ]
  in
  let rec nest k body =
    if k >= n then body
    else
      [
        Ast.Sif
          (Ast.Ecmp (Ir.Types.Eq, Ast.Evar (var k), Ast.Evar (var (k + 1))), nest (k + 1) body, []);
      ]
  in
  {
    Ast.name = Printf.sprintf "ladder%d" n;
    params = [];
    body =
      defs
      @ [
          Ast.Sassign ("j", Ast.Enum 0);
          Ast.Sassign ("k", Ast.Ebinop (Ir.Types.Add, Ast.Evar (var 1), Ast.Enum 1));
        ]
      @ nest 1 innermost
      @ [ Ast.Sreturn (Ast.Ebinop (Ir.Types.Sub, Ast.Evar "j", Ast.Evar "k")) ];
  }

let ladder_func n = Ssa.Construct.of_cir (Ir.Lower.lower_routine (ladder n))

(* A deep chain of straight-line redundant blocks, for scaling measurements
   that should be linear in routine size. *)
let straightline n : Ast.routine =
  let body =
    List.concat
      (List.init n (fun k ->
           let v = Printf.sprintf "s%d" k in
           let prev = if k = 0 then Ast.Enum 1 else Ast.Evar (Printf.sprintf "s%d" (k - 1)) in
           [
             Ast.Sassign (v, Ast.Ebinop (Ir.Types.Add, prev, Ast.Enum 1));
             Ast.Sassign (v ^ "b", Ast.Ebinop (Ir.Types.Add, prev, Ast.Enum 1));
           ]))
  in
  {
    Ast.name = Printf.sprintf "straight%d" n;
    params = [ "p0" ];
    body = body @ [ Ast.Sreturn (Ast.Evar (Printf.sprintf "s%d" (n - 1))) ];
  }

let straightline_func n = Ssa.Construct.of_cir (Ir.Lower.lower_routine (straightline n))

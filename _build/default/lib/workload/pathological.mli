(** Adversarial inputs for the complexity experiments. *)

val ladder : int -> Ir.Ast.routine
(** The paper's Figure 9: n nested equality guards i1 = i2, i2 = i3, …;
    discovering that the innermost j = i_n + 1 is congruent to k = i1 + 1
    costs a full dominator-chain walk per rewrite — O(n²) total. *)

val ladder_func : int -> Ir.Func.t

val straightline : int -> Ir.Ast.routine
(** A long straight-line block of pairwise-redundant additions: scaling
    measurements over it should be linear. *)

val straightline_func : int -> Ir.Func.t

(** Hand-written mini-C programs: the paper's figures rendered as code,
    plus focused probes for each analysis. See the .ml for the full sources
    and the note on Figure 1's two OCR-garbled [!=] comparisons. *)

val routine_r_src : string
(** Figure 1: the routine only the full unified algorithm proves always
    returns 1. *)

val figure6_src : string
(** The two-step value-inference chain K → J → I. *)

val figure13_src : string
(** The Briggs–Torczon–Cooper pre-pass comparison. *)

val figure14a_src : string
val figure14b_src : string
(** The Rüthing–Knoop–Steffen φ-of-op cases (found only under
    [Config.full_extended]). *)

val loop_invariant_src : string
val cyclic_congruence_src : string
val phi_predication_src : string
val predicate_inference_src : string
val reassociation_src : string

val parse : string -> Ir.Ast.routine
val func_of_src : ?pruning:Ssa.Construct.pruning -> string -> Ir.Func.t

val all_named : (string * string) list
(** Every corpus program with a short name. *)

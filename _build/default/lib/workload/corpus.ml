(* Hand-written mini-C programs used throughout the tests, the examples and
   the benches: the paper's figures, rendered as code.

   Note on Figure 1: the available text of the paper garbles two comparison
   operators. Lines 08 and 12 must read "!=" (not "="): the §2.10 walkthrough
   requires the definitions "I = 2" and "P = 2" to be *unreachable* when I is
   congruent to 1, and only "I != 1" / "if (I != 1) P = 2" makes routine R
   return 1 on every input — which we verify at run time in the tests. *)

(* Figure 1: the routine the paper's unified algorithm is "currently unique
   in being able to determine … is guaranteed to always return 1". *)
let routine_r_src =
  {|
routine R(X, Y, Z) {
  I = 1;
  J = 1;
  while (1) {
    if (J > 9) break;
    J = J + 1;
    if (I != 1) I = 2;
    if (Y == X) {
      P = 0;
      if (X >= 1) {
        if (I != 1) P = 2; else if (X >= 9) P = I;
      }
      Q = 0;
      if (I <= Y) {
        if (9 <= Y) Q = 1;
      }
      if (Z > I) {
        I = P + (X + 2) + (Z < 1) - (I + Y) - Q;
      }
    }
  }
  return I;
}
|}

(* Figure 6: a chain of equality guards; value inference concludes that
   X1 is congruent to I1 + 1. *)
let figure6_src =
  {|
routine F6(A, B) {
  I = f0(A);
  J = f0(B);
  K = f1(A);
  X = 0;
  if (K == J) {
    if (J == I) {
      X = K + 1;   # two-step inference: K -> J -> I, so X is I + 1
      Y = I + 1;
      X = X - Y;   # hence 0
    }
  }
  return X + I;
}
|}

(* Figure 13: Briggs–Torczon–Cooper's pre-pass rewrites direct uses of the
   tested name K inside the guarded region, so f0(K) - f0(0) is discovered
   to be 0 — but L, merely *congruent* to K (it is K + 0), is not a tested
   name and stays opaque to the pre-pass. The unified algorithm finds both,
   proving the guarded return constant. *)
let figure13_src =
  {|
routine F13(K) {
  L = K + 0;
  if (K == 0) {
    i = f0(K) - f0(0);
    j = f0(L) - f0(0);
    return i + j;
  }
  return 7;
}
|}

(* Figure 14(a): the φ-of-op congruence Rüthing–Knoop–Steffen capture;
   K3 and L3 are congruent. *)
let figure14a_src =
  {|
routine F14A(C, A, B) {
  if (C > 0) {
    I = f0(A);
    K = I + 1;
  } else {
    I = f0(B);
    K = I + 1;
  }
  L = I + 1;
  return K - L;
}
|}

(* Figure 14(b): the variant neither Kildall nor RKS capture (and neither
   do we, without the op-of-φ reassociation extension): K3 = I3 + J3 = 3. *)
let figure14b_src =
  {|
routine F14B(C) {
  if (C > 0) {
    I = 1;
    J = 2;
  } else {
    I = 2;
    J = 1;
  }
  K = I + J;
  L = 3;
  return K - L;
}
|}

(* A loop-invariant cyclic value: optimistic value numbering proves that
   ACC is congruent to P0 throughout (the φ merges only congruent values),
   while balanced/pessimistic treat the cyclic φ as opaque. *)
let loop_invariant_src =
  {|
routine LI(N, P0) {
  acc = P0;
  i = 0;
  while (i < N) {
    acc = acc + 0;
    i = i + 1;
  }
  return acc;
}
|}

(* Two cyclic congruences (x and y advance in lockstep): optimistic GVN
   discovers x ≅ y; pessimistic cannot (§1.1). *)
let cyclic_congruence_src =
  {|
routine CC(N) {
  x = 0;
  y = 0;
  i = 0;
  while (i < N) {
    x = x + 1;
    y = y + 1;
    i = i + 1;
  }
  return x - y;
}
|}

(* φ-predication across two structurally separate but congruent diamonds
   (the P/Q pattern of Figure 1, isolated). *)
let phi_predication_src =
  {|
routine PP(A, B) {
  p = 0;
  if (A < B) p = 7;
  q = 0;
  if (A < B) q = 7;
  return p - q;
}
|}

(* Predicate inference: Z > 5 dominating makes Z < 1 false. *)
let predicate_inference_src =
  {|
routine PI(Z) {
  r = 9;
  if (Z > 5) {
    r = Z < 1;
  }
  return r;
}
|}

(* Global reassociation: (a + b) + c vs a + (b + c), and distribution. *)
let reassociation_src =
  {|
routine RA(A, B, C) {
  x = (A + B) + C;
  y = A + (B + C);
  z = (A + B) * 2;
  w = A * 2 + B * 2;
  return (x - y) + (z - w);
}
|}

let parse src = Ir.Parser.parse_one src

let func_of_src ?(pruning = Ssa.Construct.Semi_pruned) src =
  Ssa.Construct.of_cir ~pruning (Ir.Lower.lower_routine (parse src))

let all_named =
  [
    ("routine_r", routine_r_src);
    ("figure6", figure6_src);
    ("figure13", figure13_src);
    ("figure14a", figure14a_src);
    ("figure14b", figure14b_src);
    ("loop_invariant", loop_invariant_src);
    ("cyclic_congruence", cyclic_congruence_src);
    ("phi_predication", phi_predication_src);
    ("predicate_inference", predicate_inference_src);
    ("reassociation", reassociation_src);
  ]

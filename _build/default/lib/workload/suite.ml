(* The synthetic stand-in for the SPEC CINT2000 C benchmarks of Table 1/2.

   Ten "benchmarks" (256.bzip2 excluded, as in the paper) with per-benchmark
   routine counts and size profiles roughly proportional to the relative GVN
   times the paper reports — 176.gcc much larger than 181.mcf, etc. A global
   [scale] lets callers trade benchmark fidelity for wall-clock time. *)

type benchmark = {
  name : string;
  seed : int;
  routines : int; (* at scale = 1.0 *)
  stmt_budget : int; (* per-routine statement budget *)
}

let benchmarks =
  [
    { name = "164.gzip"; seed = 1001; routines = 10; stmt_budget = 35 };
    { name = "175.vpr"; seed = 1002; routines = 18; stmt_budget = 40 };
    { name = "176.gcc"; seed = 1003; routines = 90; stmt_budget = 55 };
    { name = "181.mcf"; seed = 1004; routines = 4; stmt_budget = 30 };
    { name = "186.crafty"; seed = 1005; routines = 20; stmt_budget = 60 };
    { name = "197.parser"; seed = 1006; routines = 22; stmt_budget = 35 };
    { name = "253.perlbmk"; seed = 1007; routines = 50; stmt_budget = 45 };
    { name = "254.gap"; seed = 1008; routines = 55; stmt_budget = 45 };
    { name = "255.vortex"; seed = 1009; routines = 40; stmt_budget = 40 };
    { name = "300.twolf"; seed = 1010; routines = 25; stmt_budget = 45 };
  ]

(* All routines of one benchmark, as SSA functions. *)
let routines_of ?(scale = 1.0) (b : benchmark) : Ir.Func.t list =
  let n = max 1 (int_of_float (float_of_int b.routines *. scale)) in
  List.init n (fun k ->
      let profile =
        {
          Generator.default_profile with
          stmt_budget = b.stmt_budget + (k mod 7 * 5);
          params = 3 + (k mod 3);
        }
      in
      Generator.func ~profile
        ~seed:(b.seed * 10_000 + k)
        ~name:(Printf.sprintf "%s_r%03d" b.name k)
        ())

let all ?scale () : (benchmark * Ir.Func.t list) list =
  List.map (fun b -> (b, routines_of ?scale b)) benchmarks

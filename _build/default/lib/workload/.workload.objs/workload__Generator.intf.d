lib/workload/generator.mli: Ir Ssa

lib/workload/suite.ml: Generator Ir List Printf

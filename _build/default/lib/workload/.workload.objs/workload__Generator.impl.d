lib/workload/generator.ml: Array Ir List Printf Ssa Util

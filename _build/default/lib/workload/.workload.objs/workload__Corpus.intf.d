lib/workload/corpus.mli: Ir Ssa

lib/workload/pathological.ml: Ir List Printf Ssa

lib/workload/pathological.mli: Ir

lib/workload/corpus.ml: Ir Ssa

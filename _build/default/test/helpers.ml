(* Shared helpers for the GVN-level test suites. *)

let func_of_src = Workload.Corpus.func_of_src

(* The constant value of the (first reachable) return, if proved. *)
let return_constant st f =
  let result = ref None in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    match Ir.Func.instr f i with
    | Ir.Func.Return v when Pgvn.State.block_reachable st (Ir.Func.block_of_instr f i) ->
        if !result = None then result := Pgvn.Driver.value_constant st v
    | _ -> ()
  done;
  !result

let run_and_return config src =
  let f = func_of_src src in
  let st = Pgvn.Driver.run config f in
  return_constant st f

(* Optimize end to end: GVN + rewrite + DCE + CFG cleanup, verified. *)
let optimize config f =
  let st = Pgvn.Driver.run config f in
  let g = Transform.Simplify_cfg.fixpoint (Transform.Dce.run (Transform.Apply.rebuild st f)) in
  ignore (Ssa.Verify.check g);
  g

(* Behavioural equivalence on random inputs. *)
let equivalent ?(runs = 30) ?(fuel = 200_000) ~seed f g =
  let rng = Util.Prng.create seed in
  let ok = ref true in
  for _ = 1 to runs do
    let args = Array.init 8 (fun _ -> Util.Prng.range rng (-15) 15) in
    if not (Ir.Interp.equal_result (Ir.Interp.run ~fuel f args) (Ir.Interp.run ~fuel g args))
    then ok := false
  done;
  !ok

let check_const msg expected got =
  match (expected, got) with
  | Some e, Some g when e = g -> ()
  | None, None -> ()
  | _ ->
      let s = function None -> "non-constant" | Some c -> string_of_int c in
      Alcotest.failf "%s: expected %s, got %s" msg (s expected) (s got)

let all_configs =
  [
    ("full", Pgvn.Config.full);
    ("complete", { Pgvn.Config.full with variant = Pgvn.Config.Complete });
    ("balanced", Pgvn.Config.balanced);
    ("pessimistic", Pgvn.Config.pessimistic);
    ("dense", Pgvn.Config.dense);
    ("extended", Pgvn.Config.full_extended);
    ("basic", Pgvn.Config.basic);
    ("click", Pgvn.Config.emulate_click);
    ("sccp", Pgvn.Config.emulate_sccp);
    ("sccp-exact", Pgvn.Config.emulate_sccp_exact);
    ("awz", Pgvn.Config.emulate_awz);
  ]

(* Unit and property tests for the utility layer: growable vectors and the
   deterministic PRNG. *)

let test_vec_push_pop () =
  let v = Util.Vec.create ~dummy:0 in
  Alcotest.(check bool) "empty" true (Util.Vec.is_empty v);
  for i = 1 to 100 do
    Util.Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Util.Vec.length v);
  Alcotest.(check int) "get" 42 (Util.Vec.get v 41);
  Util.Vec.set v 41 7;
  Alcotest.(check int) "set" 7 (Util.Vec.get v 41);
  Alcotest.(check int) "pop" 100 (Util.Vec.pop v);
  Alcotest.(check int) "length after pop" 99 (Util.Vec.length v);
  Util.Vec.clear v;
  Alcotest.(check bool) "cleared" true (Util.Vec.is_empty v)

let test_vec_bounds () =
  let v = Util.Vec.create ~dummy:0 in
  Util.Vec.push v 1;
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get") (fun () ->
      ignore (Util.Vec.get v 1));
  Alcotest.check_raises "set oob" (Invalid_argument "Vec.set") (fun () -> Util.Vec.set v (-1) 0);
  ignore (Util.Vec.pop v);
  Alcotest.check_raises "pop empty" (Invalid_argument "Vec.pop") (fun () ->
      ignore (Util.Vec.pop v))

let test_vec_iter_fold () =
  let v = Util.Vec.of_array ~dummy:0 [| 1; 2; 3; 4 |] in
  Alcotest.(check int) "fold" 10 (Util.Vec.fold ( + ) 0 v);
  Alcotest.(check (list int)) "to_list" [ 1; 2; 3; 4 ] (Util.Vec.to_list v);
  let seen = ref [] in
  Util.Vec.iteri (fun i x -> seen := (i, x) :: !seen) v;
  Alcotest.(check int) "iteri count" 4 (List.length !seen);
  Alcotest.(check bool) "exists" true (Util.Vec.exists (fun x -> x = 3) v);
  Alcotest.(check bool) "not exists" false (Util.Vec.exists (fun x -> x = 9) v)

let test_prng_deterministic () =
  let a = Util.Prng.create 12345 in
  let b = Util.Prng.create 12345 in
  for _ = 1 to 1000 do
    Alcotest.(check int) "same stream" (Util.Prng.int a 1000) (Util.Prng.int b 1000)
  done

let test_prng_copy () =
  let a = Util.Prng.create 7 in
  ignore (Util.Prng.int a 10);
  let b = Util.Prng.copy a in
  Alcotest.(check int) "copy continues identically" (Util.Prng.int a 1000) (Util.Prng.int b 1000)

let prop_prng_range =
  QCheck.Test.make ~name:"prng range stays in bounds" ~count:500
    QCheck.(pair small_int (pair small_int small_nat))
    (fun (seed, (lo, span)) ->
      let rng = Util.Prng.create seed in
      let hi = lo + span in
      let x = Util.Prng.range rng lo hi in
      x >= lo && x <= hi)

let prop_prng_weighted =
  QCheck.Test.make ~name:"weighted picks a positive-weight index" ~count:500
    QCheck.(pair small_int (list_of_size (Gen.int_range 1 6) (make (Gen.int_range 0 5))))
    (fun (seed, ws) ->
      QCheck.assume (List.exists (fun w -> w > 0) ws);
      let rng = Util.Prng.create seed in
      let ws = Array.of_list ws in
      let i = Util.Prng.weighted rng ws in
      i >= 0 && i < Array.length ws && ws.(i) > 0)

let suite =
  [
    Alcotest.test_case "vec push/pop/get/set/clear" `Quick test_vec_push_pop;
    Alcotest.test_case "vec bounds checking" `Quick test_vec_bounds;
    Alcotest.test_case "vec iteration and folding" `Quick test_vec_iter_fold;
    Alcotest.test_case "prng determinism" `Quick test_prng_deterministic;
    Alcotest.test_case "prng copy" `Quick test_prng_copy;
    QCheck_alcotest.to_alcotest prop_prng_range;
    QCheck_alcotest.to_alcotest prop_prng_weighted;
  ]

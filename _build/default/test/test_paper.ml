(* The paper's running example (Figures 1/2, §2.10) as executable checks:
   routine R always returns 1, only the full unified algorithm proves it,
   and removing any single analysis breaks the chain of inferences. *)

let full = Pgvn.Config.full
let r_func () = Helpers.func_of_src Workload.Corpus.routine_r_src

let test_r_returns_one_at_runtime () =
  let f = r_func () in
  let rng = Util.Prng.create 1 in
  for _ = 1 to 500 do
    let args = Array.init 3 (fun _ -> Util.Prng.range rng (-25) 25) in
    match Ir.Interp.run f args with
    | Ir.Interp.Ret 1 -> ()
    | r -> Alcotest.failf "R(%d,%d,%d) = %a" args.(0) args.(1) args.(2) Ir.Interp.pp_result r
  done

let test_full_proves_r_constant () =
  List.iter
    (fun (name, variant) ->
      let f = r_func () in
      let st = Pgvn.Driver.run { full with Pgvn.Config.variant } f in
      Helpers.check_const (name ^ " proves R = 1") (Some 1) (Helpers.return_constant st f);
      let s = Pgvn.Driver.summarize st in
      (* The definitions of "I = 2" and "P = 2" are unreachable (§2.10). *)
      Alcotest.(check int) (name ^ ": two unreachable values") 2 s.Pgvn.Driver.unreachable_values;
      (* The walkthrough takes exactly 3 passes (§2.10). *)
      Alcotest.(check int) (name ^ ": three passes") 3 s.Pgvn.Driver.passes)
    [ ("practical", Pgvn.Config.Practical); ("complete", Pgvn.Config.Complete) ]

let test_every_analysis_is_needed () =
  (* §1.3: "If predicate inference, value inference or φ-predication are not
     performed, it will break the chain of inferences." *)
  let weakened =
    [
      ("without value inference", { full with Pgvn.Config.value_inference = false });
      ("without predicate inference", { full with Pgvn.Config.predicate_inference = false });
      ("without phi-predication", { full with Pgvn.Config.phi_predication = false });
      ("without reassociation", { full with Pgvn.Config.reassociation = false });
      ("without unreachable-code analysis", { full with Pgvn.Config.unreachable_code = false });
      ("Click emulation", Pgvn.Config.emulate_click);
      ("SCCP emulation", Pgvn.Config.emulate_sccp);
      ("AWZ emulation", Pgvn.Config.emulate_awz);
      ("balanced", Pgvn.Config.balanced);
      ("pessimistic", Pgvn.Config.pessimistic);
    ]
  in
  List.iter
    (fun (name, config) ->
      Helpers.check_const name None (Helpers.run_and_return config Workload.Corpus.routine_r_src))
    weakened

let test_optimizer_rewrites_r () =
  let f = r_func () in
  let g = Helpers.optimize full f in
  (* The optimized routine must still return 1 everywhere, with the dead
     blocks removed. *)
  Alcotest.(check bool) "equivalent" true (Helpers.equivalent ~seed:77 f g);
  Alcotest.(check bool) "strictly smaller" true (Ir.Func.num_instrs g < Ir.Func.num_instrs f)

let test_sparse_matches_dense_on_r () =
  let f = r_func () in
  let a = Pgvn.Driver.summarize (Pgvn.Driver.run full f) in
  let b = Pgvn.Driver.summarize (Pgvn.Driver.run Pgvn.Config.dense f) in
  Alcotest.(check int) "constants" a.Pgvn.Driver.constant_values b.Pgvn.Driver.constant_values;
  Alcotest.(check int) "unreachable" a.Pgvn.Driver.unreachable_values b.Pgvn.Driver.unreachable_values;
  Alcotest.(check int) "classes" a.Pgvn.Driver.congruence_classes b.Pgvn.Driver.congruence_classes

let test_q14_congruent_p11 () =
  (* §2.10: "Instruction 14.1 computes the expression φ(14, 0, 1, 0), so Q14
     evaluates to P11" — the two guarded accumulators are congruent. In our
     SSA form these are the φs merging P and Q before the Z > I test. We
     check that SOME φ pair from different blocks is congruent, which only
     φ-predication can establish. *)
  let f = r_func () in
  let st = Pgvn.Driver.run full f in
  let cross_block_phi_congruence st =
    let found = ref false in
    for i = 0 to Ir.Func.num_instrs f - 1 do
      for j = i + 1 to Ir.Func.num_instrs f - 1 do
        if
          Ir.Func.is_phi (Ir.Func.instr f i)
          && Ir.Func.is_phi (Ir.Func.instr f j)
          && Ir.Func.block_of_instr f i <> Ir.Func.block_of_instr f j
          && Pgvn.Driver.congruent st i j
        then found := true
      done
    done;
    !found
  in
  Alcotest.(check bool) "phis in different blocks congruent" true (cross_block_phi_congruence st);
  let st' = Pgvn.Driver.run { full with Pgvn.Config.phi_predication = false } f in
  Alcotest.(check bool) "not without phi-predication" false (cross_block_phi_congruence st')

let suite =
  [
    Alcotest.test_case "R returns 1 at run time" `Quick test_r_returns_one_at_runtime;
    Alcotest.test_case "full algorithm proves R = 1 (both variants)" `Quick
      test_full_proves_r_constant;
    Alcotest.test_case "every analysis is needed for R" `Quick test_every_analysis_is_needed;
    Alcotest.test_case "optimizer rewrites R" `Quick test_optimizer_rewrites_r;
    Alcotest.test_case "sparse == dense on R" `Quick test_sparse_matches_dense_on_r;
    Alcotest.test_case "Q14 congruent to P11 via phi-predication" `Quick test_q14_congruent_p11;
  ]

(* The GVN engine itself: folding, simplification, reassociation,
   unreachable-code analysis, inference, φ-predication, modes, variants,
   and engine-level properties on generated programs. *)

let full = Pgvn.Config.full

let test_constant_folding () =
  Helpers.check_const "2*3+4 folds" (Some 10)
    (Helpers.run_and_return full "routine f() { return 2 * 3 + 4; }");
  Helpers.check_const "division by zero must not fold" None
    (Helpers.run_and_return full "routine f() { return 1 / 0; }");
  Helpers.check_const "shift folds" (Some 40)
    (Helpers.run_and_return full "routine f() { return 10 << 2; }")

let test_algebraic_simplification () =
  Helpers.check_const "x - x = 0" (Some 0)
    (Helpers.run_and_return full "routine f(x) { return x - x; }");
  Helpers.check_const "x + 0 - x = 0" (Some 0)
    (Helpers.run_and_return full "routine f(x) { return (x + 0) - x; }");
  Helpers.check_const "x*0 = 0" (Some 0)
    (Helpers.run_and_return full "routine f(x) { return x * 0; }");
  Helpers.check_const "x ^ x = 0" (Some 0)
    (Helpers.run_and_return full "routine f(x) { return x ^ x; }");
  Helpers.check_const "x==x is 1" (Some 1)
    (Helpers.run_and_return full "routine f(x) { return x == x; }")

let test_reassociation () =
  Helpers.check_const "(a+b)+c == a+(b+c)" (Some 0)
    (Helpers.run_and_return full Workload.Corpus.reassociation_src);
  Helpers.check_const "distribution: 2*(a+b) - (2a+2b) = 0" (Some 0)
    (Helpers.run_and_return full "routine f(a, b) { return (a + b) * 2 - (a * 2 + b * 2); }");
  (* Without reassociation, the same congruence is missed. *)
  Helpers.check_const "disabled reassociation misses it" None
    (Helpers.run_and_return
       { full with Pgvn.Config.reassociation = false }
       "routine f(a,b,c) { return (a + b) + c - (a + (b + c)); }")

let test_propagation_limit () =
  (* A very low limit cancels forward propagation but must stay sound. *)
  let config = { full with Pgvn.Config.propagation_limit = 2 } in
  let f = Helpers.func_of_src "routine f(a,b,c,d) { x = ((a+b)+c)+d; y = a+(b+(c+d)); return x - y; }" in
  let g = Helpers.optimize config f in
  Alcotest.(check bool) "still semantically correct" true (Helpers.equivalent ~seed:5 f g)

let test_unreachable_code () =
  let src = "routine f(x) { r = 1; if (2 > 3) { r = f0(x); } return r; }" in
  let f = Helpers.func_of_src src in
  let st = Pgvn.Driver.run full f in
  let s = Pgvn.Driver.summarize st in
  Alcotest.(check bool) "some block unreachable" true
    (s.Pgvn.Driver.reachable_blocks < Ir.Func.num_blocks f);
  Helpers.check_const "r stays 1" (Some 1) (Helpers.return_constant st f);
  (* With unreachable-code analysis off, the same routine is not folded. *)
  Helpers.check_const "no UCE, no fold" None
    (Helpers.run_and_return { full with Pgvn.Config.unreachable_code = false } src)

let test_uce_through_phi () =
  (* The false arm assigns a different constant, but it is unreachable, so
     the φ collapses. *)
  Helpers.check_const "phi over dead edge collapses" (Some 5)
    (Helpers.run_and_return full "routine f() { r = 5; if (1 == 2) r = 9; return r; }")

let test_value_inference () =
  Helpers.check_const "y == x under guard" (Some 0)
    (Helpers.run_and_return full "routine f(x, y) { if (x == y) { return x - y; } return 0; }");
  (* Figure 6: the two-step inference chain K -> J -> I. *)
  let f = Helpers.func_of_src Workload.Corpus.figure6_src in
  let st = Pgvn.Driver.run full f in
  (* Figure 6's chain K -> J -> I merges classes that stay separate without
     value inference. *)
  let s_on = Pgvn.Driver.summarize st in
  let s_off =
    Pgvn.Driver.summarize
      (Pgvn.Driver.run { full with Pgvn.Config.value_inference = false } f)
  in
  Alcotest.(check bool) "value inference merges classes" true
    (s_on.Pgvn.Driver.congruence_classes < s_off.Pgvn.Driver.congruence_classes)

let test_value_inference_direction () =
  (* The lower-ranked (earlier) definition becomes the representative:
     after `if (late == early)`, uses of late rewrite to early. *)
  let src = "routine f(a, b) { early = f0(a); late = f1(b); if (late == early) { return late - early; } return 0; }" in
  Helpers.check_const "late - early = 0" (Some 0) (Helpers.run_and_return full src)

let test_predicate_inference () =
  Helpers.check_const "Z>5 makes Z<1 false" (Some 0)
    (Helpers.run_and_return full
       "routine f(z) { if (z > 5) { return z < 1; } return 0; }");
  Helpers.check_const "Z>5 makes Z>2 true" (Some 1)
    (Helpers.run_and_return full
       "routine f(z) { if (z > 5) { return z > 2; } return 1; }");
  Helpers.check_const "nested same-pair comparison" (Some 1)
    (Helpers.run_and_return full
       "routine f(a, b) { if (a < b) { return a <= b; } return 1; }");
  (* Inference makes the inner branch's arm unreachable. *)
  let f =
    Helpers.func_of_src
      "routine f(z) { r = 3; if (z > 5) { if (z < 1) { r = f0(z); } } return r; }"
  in
  let st = Pgvn.Driver.run full f in
  Helpers.check_const "r stays 3" (Some 3) (Helpers.return_constant st f);
  let s = Pgvn.Driver.summarize st in
  Alcotest.(check bool) "inner arm unreachable" true (s.Pgvn.Driver.unreachable_values > 0)

let test_phi_predication () =
  (* Two structurally separate diamonds with congruent predicates: the φs
     merge, so p - q = 0. Only φ-predication can see this. *)
  Helpers.check_const "congruent diamonds" (Some 0)
    (Helpers.run_and_return full Workload.Corpus.phi_predication_src);
  Helpers.check_const "without phi-predication: unknown" None
    (Helpers.run_and_return
       { full with Pgvn.Config.phi_predication = false }
       Workload.Corpus.phi_predication_src)

let test_phi_same_args_reduction () =
  Helpers.check_const "phi(x, x) reduces" (Some 0)
    (Helpers.run_and_return full
       "routine f(a, c) { if (c > 0) { x = a + 1; } else { x = a + 1; } return x - (a + 1); }")

let test_cyclic_congruence () =
  Helpers.check_const "lockstep loop variables congruent (optimistic)" (Some 0)
    (Helpers.run_and_return full Workload.Corpus.cyclic_congruence_src);
  Helpers.check_const "balanced cannot" None
    (Helpers.run_and_return Pgvn.Config.balanced Workload.Corpus.cyclic_congruence_src);
  Helpers.check_const "pessimistic cannot" None
    (Helpers.run_and_return Pgvn.Config.pessimistic Workload.Corpus.cyclic_congruence_src)

let test_loop_invariant () =
  (* acc = acc + 0 in a loop: the φ keeps merging congruent values, so acc
     stays congruent to its initial value. *)
  let f = Helpers.func_of_src Workload.Corpus.loop_invariant_src in
  let st = Pgvn.Driver.run full f in
  (* The return must be congruent to the parameter P0 (value of param 1). *)
  let param1 = ref (-1) and retv = ref (-1) in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    match Ir.Func.instr f i with
    | Ir.Func.Param 1 -> param1 := i
    | Ir.Func.Return v -> retv := v
    | _ -> ()
  done;
  Alcotest.(check bool) "return congruent to initial value" true
    (Pgvn.Driver.congruent st !param1 !retv)

let test_figure14 () =
  (* Rüthing–Knoop–Steffen's φ-of-op cases. The paper (§6) notes its own
     algorithm captures neither (a) nor (b) without the op-of-φ
     reassociation extension it leaves as an open question; these tests
     document the same (deliberate) limitation. *)
  Helpers.check_const "figure 14a: not found without op-of-phi extension" None
    (Helpers.run_and_return full Workload.Corpus.figure14a_src);
  Helpers.check_const "figure 14b: not found (like Kildall and RKS)" None
    (Helpers.run_and_return full Workload.Corpus.figure14b_src)

let test_switch_case_inference () =
  (* A switch case edge carries scrutinee = constant: value inference
     applies inside the case (§3 extension to switches). *)
  Helpers.check_const "x known inside its case" (Some 10)
    (Helpers.run_and_return full
       "routine f(x) { switch (x) { case 3: { return x + 7; } } return 10; }");
  (* Constant scrutinee: only the matching case is reachable. *)
  let f =
    Helpers.func_of_src
      "routine f(a) { x = 2; r = 0; switch (x) { case 1: { r = f0(a); } case 2: { r = 5; } \
       default: { r = f1(a); } } return r; }"
  in
  let st = Pgvn.Driver.run full f in
  Helpers.check_const "only case 2 runs" (Some 5) (Helpers.return_constant st f);
  let s = Pgvn.Driver.summarize st in
  Alcotest.(check bool) "other arms unreachable" true (s.Pgvn.Driver.unreachable_values >= 2);
  (* Scrutinee congruent to a case constant via a dominating guard. *)
  Helpers.check_const "guard + switch compose" (Some 9)
    (Helpers.run_and_return full
       "routine f(x) { if (x == 4) { switch (x) { case 4: { return 9; } } return f0(x); } \
        return 9; }")

let test_switch_rewrite () =
  (* The rewriter prunes dead cases and converts single-target switches to
     jumps, preserving semantics. *)
  let f =
    Helpers.func_of_src
      "routine f(a, x) { r = f0(a); switch (x & 1) { case 0: { r = r + 1; } case 5: { r = f1(a); } \
       default: { r = r - 1; } } return r; }"
  in
  let g = Helpers.optimize full f in
  Alcotest.(check bool) "equivalent" true (Helpers.equivalent ~seed:21 f g)

let test_phi_distribution_extension () =
  (* With the §6 op-of-φ extension on, both Figure 14 cases are captured. *)
  Helpers.check_const "figure 14a found with extension" (Some 0)
    (Helpers.run_and_return Pgvn.Config.full_extended Workload.Corpus.figure14a_src);
  Helpers.check_const "figure 14b found with extension" (Some 0)
    (Helpers.run_and_return Pgvn.Config.full_extended Workload.Corpus.figure14b_src);
  (* And routine R still works under the extension. *)
  Helpers.check_const "routine R unaffected" (Some 1)
    (Helpers.run_and_return Pgvn.Config.full_extended Workload.Corpus.routine_r_src)

let test_opaque_congruence () =
  Helpers.check_const "same opaque call, congruent args" (Some 0)
    (Helpers.run_and_return full "routine f(a) { return f0(a + 1) - f0(1 + a); }");
  Helpers.check_const "different opaque tags stay distinct" None
    (Helpers.run_and_return full "routine f(a) { return f0(a) - f1(a); }")

let test_modes_strength_ordering () =
  (* optimistic >= balanced >= pessimistic in constants found, on the whole
     corpus and a sample of generated programs. *)
  let check f =
    let m config = (Pgvn.Driver.summarize (Pgvn.Driver.run config f)).Pgvn.Driver.constant_values in
    let o = m full and b = m Pgvn.Config.balanced and p = m Pgvn.Config.pessimistic in
    Alcotest.(check bool) "optimistic >= balanced" true (o >= b);
    Alcotest.(check bool) "balanced >= pessimistic" true (b >= p)
  in
  List.iter (fun (_, src) -> check (Helpers.func_of_src src)) Workload.Corpus.all_named;
  for seed = 1 to 30 do
    check (Workload.Generator.func ~seed:(seed * 31) ~name:"m" ())
  done

let test_balanced_single_pass () =
  for seed = 1 to 20 do
    let f = Workload.Generator.func ~seed:(seed * 17) ~name:"b" () in
    let st = Pgvn.Driver.run Pgvn.Config.balanced f in
    Alcotest.(check int) "balanced terminates after one pass" 1
      st.Pgvn.State.stats.Pgvn.Run_stats.passes;
    let st = Pgvn.Driver.run Pgvn.Config.pessimistic f in
    Alcotest.(check int) "pessimistic terminates after one pass" 1
      st.Pgvn.State.stats.Pgvn.Run_stats.passes
  done

let test_practical_equals_complete_often () =
  (* The complete variant is at least as strong as the practical one. *)
  for seed = 1 to 25 do
    let f = Workload.Generator.func ~seed:(seed * 13) ~name:"c" () in
    let sp = Pgvn.Driver.summarize (Pgvn.Driver.run full f) in
    let sc =
      Pgvn.Driver.summarize
        (Pgvn.Driver.run { full with Pgvn.Config.variant = Pgvn.Config.Complete } f)
    in
    Alcotest.(check bool) "complete finds >= constants" true
      (sc.Pgvn.Driver.constant_values >= sp.Pgvn.Driver.constant_values);
    Alcotest.(check bool) "complete finds >= unreachable" true
      (sc.Pgvn.Driver.unreachable_values >= sp.Pgvn.Driver.unreachable_values)
  done

let test_sparse_equals_dense () =
  (* Sparse and dense formulations compute identical results. *)
  for seed = 1 to 25 do
    let f = Workload.Generator.func ~seed:(seed * 7) ~name:"d" () in
    let a = Pgvn.Driver.run full f in
    let b = Pgvn.Driver.run Pgvn.Config.dense f in
    for v = 0 to Ir.Func.num_instrs f - 1 do
      if Ir.Func.defines_value (Ir.Func.instr f v) then begin
        Alcotest.(check bool) "same unreachability" (Pgvn.Driver.value_unreachable a v)
          (Pgvn.Driver.value_unreachable b v);
        Alcotest.(check (option int)) "same constants" (Pgvn.Driver.value_constant a v)
          (Pgvn.Driver.value_constant b v)
      end
    done;
    (* and the same partitions *)
    let congruent_pairs st =
      let n = Ir.Func.num_instrs f in
      let pairs = ref 0 in
      for v = 0 to n - 1 do
        for w = v + 1 to n - 1 do
          if
            Ir.Func.defines_value (Ir.Func.instr f v)
            && Ir.Func.defines_value (Ir.Func.instr f w)
            && Pgvn.Driver.congruent st v w
          then incr pairs
        done
      done;
      !pairs
    in
    Alcotest.(check int) "same congruence count" (congruent_pairs a) (congruent_pairs b)
  done

(* Engine-level soundness properties on generated programs. *)

let prop_constants_sound =
  QCheck.Test.make ~name:"claimed constants hold at run time (all configs)" ~count:25
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"p" () in
      let rng = Util.Prng.create (seed + 3) in
      List.for_all
        (fun (_, config) ->
          let st = Pgvn.Driver.run config f in
          let ok = ref true in
          for _ = 1 to 5 do
            let args = Array.init 8 (fun _ -> Util.Prng.range rng (-15) 15) in
            let _, env = Ir.Interp.run_with_env ~fuel:200_000 f args in
            Array.iteri
              (fun v value ->
                match (value, Pgvn.Driver.value_constant st v) with
                | Some rv, Some c when Ir.Func.defines_value (Ir.Func.instr f v) ->
                    if rv <> c then ok := false
                | _ -> ())
              env
          done;
          !ok)
        Helpers.all_configs)

let prop_unreachable_sound =
  QCheck.Test.make ~name:"values claimed unreachable never execute" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"p" () in
      let st = Pgvn.Driver.run full f in
      let rng = Util.Prng.create (seed + 9) in
      let ok = ref true in
      for _ = 1 to 10 do
        let args = Array.init 8 (fun _ -> Util.Prng.range rng (-15) 15) in
        let _, env = Ir.Interp.run_with_env ~fuel:200_000 f args in
        Array.iteri
          (fun v value ->
            if value <> None && Ir.Func.defines_value (Ir.Func.instr f v) then
              if Pgvn.Driver.value_unreachable st v then ok := false)
          env
      done;
      !ok)

let prop_congruence_sound_acyclic =
  QCheck.Test.make ~name:"congruent values agree at run time (acyclic)" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let profile = { Workload.Generator.default_profile with loop_weight = 0 } in
      let f = Workload.Generator.func ~profile ~seed ~name:"p" () in
      let st = Pgvn.Driver.run full f in
      let rng = Util.Prng.create (seed + 11) in
      let ok = ref true in
      for _ = 1 to 10 do
        let args = Array.init 8 (fun _ -> Util.Prng.range rng (-15) 15) in
        let _, env = Ir.Interp.run_with_env f args in
        let repr = Hashtbl.create 32 in
        Array.iteri
          (fun v value ->
            match value with
            | Some rv when Ir.Func.defines_value (Ir.Func.instr f v) -> (
                let c = st.Pgvn.State.class_of.(v) in
                if c <> st.Pgvn.State.initial then
                  match Hashtbl.find_opt repr c with
                  | None -> Hashtbl.replace repr c rv
                  | Some rv' -> if rv <> rv' then ok := false)
            | _ -> ())
          env
      done;
      !ok)

let prop_unreachable_blocks_consistent =
  QCheck.Test.make ~name:"values in unreachable blocks stay INITIAL" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"ub" () in
      let st = Pgvn.Driver.run full f in
      let ok = ref true in
      for v = 0 to Ir.Func.num_instrs f - 1 do
        if Ir.Func.defines_value (Ir.Func.instr f v) then begin
          let b = Ir.Func.block_of_instr f v in
          if (not (Pgvn.State.block_reachable st b)) && not (Pgvn.Driver.value_unreachable st v)
          then ok := false;
          (* and conversely, reachable blocks leave nothing in INITIAL at
             the fixed point *)
          if Pgvn.State.block_reachable st b && Pgvn.Driver.value_unreachable st v then ok := false
        end
      done;
      (* edge/block reachability is consistent: a block is reachable iff it
         is the entry or has a reachable incoming edge *)
      for b = 0 to Ir.Func.num_blocks f - 1 do
        let has_in = Pgvn.State.reachable_in_edges st b <> [] in
        let expect = b = Ir.Func.entry || has_in in
        if Pgvn.State.block_reachable st b <> expect then ok := false
      done;
      !ok)

let prop_leader_in_class =
  QCheck.Test.make ~name:"class leaders are members (or constants)" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"lc" () in
      let st = Pgvn.Driver.run full f in
      let ok = ref true in
      for v = 0 to Ir.Func.num_instrs f - 1 do
        if Ir.Func.defines_value (Ir.Func.instr f v) && not (Pgvn.Driver.value_unreachable st v)
        then begin
          let c = Pgvn.State.cls st st.Pgvn.State.class_of.(v) in
          match c.Pgvn.State.leader with
          | Pgvn.State.Lvalue l ->
              if st.Pgvn.State.class_of.(l) <> c.Pgvn.State.cid then ok := false
          | Pgvn.State.Lconst _ -> ()
          | Pgvn.State.Lundef -> ok := false
        end
      done;
      !ok)

let prop_termination_passes =
  QCheck.Test.make ~name:"optimistic runs converge in few passes" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"p" () in
      let st = Pgvn.Driver.run full f in
      let loops = Analysis.Loops.compute (Analysis.Graph.of_func f) in
      (* passes bounded by a small constant plus the loop connectedness,
         which loop nesting approximates loosely — generous headroom *)
      st.Pgvn.State.stats.Pgvn.Run_stats.passes <= 8 + (3 * Analysis.Loops.max_nesting loops))

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_folding;
    Alcotest.test_case "algebraic simplification" `Quick test_algebraic_simplification;
    Alcotest.test_case "global reassociation" `Quick test_reassociation;
    Alcotest.test_case "forward-propagation limit" `Quick test_propagation_limit;
    Alcotest.test_case "unreachable code elimination" `Quick test_unreachable_code;
    Alcotest.test_case "UCE collapses phis" `Quick test_uce_through_phi;
    Alcotest.test_case "value inference" `Quick test_value_inference;
    Alcotest.test_case "value inference favours lower ranks" `Quick test_value_inference_direction;
    Alcotest.test_case "predicate inference" `Quick test_predicate_inference;
    Alcotest.test_case "phi-predication" `Quick test_phi_predication;
    Alcotest.test_case "phi all-equal reduction" `Quick test_phi_same_args_reduction;
    Alcotest.test_case "cyclic congruences (optimistic only)" `Quick test_cyclic_congruence;
    Alcotest.test_case "loop-invariant cyclic value" `Quick test_loop_invariant;
    Alcotest.test_case "figure 14 cases" `Quick test_figure14;
    Alcotest.test_case "switch: case-edge inference" `Quick test_switch_case_inference;
    Alcotest.test_case "switch: rewriting" `Quick test_switch_rewrite;
    Alcotest.test_case "phi-distribution extension (figure 14)" `Quick
      test_phi_distribution_extension;
    Alcotest.test_case "opaque calls as uninterpreted functions" `Quick test_opaque_congruence;
    Alcotest.test_case "mode strength ordering" `Quick test_modes_strength_ordering;
    Alcotest.test_case "balanced/pessimistic are single-pass" `Quick test_balanced_single_pass;
    Alcotest.test_case "complete >= practical" `Quick test_practical_equals_complete_often;
    Alcotest.test_case "sparse == dense results" `Quick test_sparse_equals_dense;
    QCheck_alcotest.to_alcotest prop_constants_sound;
    QCheck_alcotest.to_alcotest prop_unreachable_sound;
    QCheck_alcotest.to_alcotest prop_congruence_sound_acyclic;
    QCheck_alcotest.to_alcotest prop_unreachable_blocks_consistent;
    QCheck_alcotest.to_alcotest prop_leader_in_class;
    QCheck_alcotest.to_alcotest prop_termination_passes;
  ]

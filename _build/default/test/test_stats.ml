(* The measurement helpers used by the benchmark harness. *)

let test_histogram () =
  let h = Stats.Histogram.of_list [ 0; 0; 1; 1; 1; -2; 5 ] in
  Alcotest.(check int) "zero count" 2 (Stats.Histogram.zero_count h);
  Alcotest.(check int) "improved" 4 (Stats.Histogram.improved_count h);
  Alcotest.(check int) "regressed" 1 (Stats.Histogram.regressed_count h);
  Alcotest.(check int) "total" 7 (Stats.Histogram.total h);
  Alcotest.(check (list (pair int int)))
    "sorted entries"
    [ (-2, 1); (0, 2); (1, 3); (5, 1) ]
    (Stats.Histogram.sorted_entries h)

let test_strength_comparison () =
  (* Full vs Click on routine R: strictly positive improvement. *)
  let funcs = [ Helpers.func_of_src Workload.Corpus.routine_r_src ] in
  let cmp =
    Stats.Strength.compare_configs ~config:Pgvn.Config.full ~baseline:Pgvn.Config.emulate_click
      funcs
  in
  Alcotest.(check int) "one routine improved (unreachable)" 1
    (Stats.Histogram.improved_count cmp.Stats.Strength.unreachable);
  Alcotest.(check int) "one routine improved (constants)" 1
    (Stats.Histogram.improved_count cmp.Stats.Strength.constants);
  (* And full never loses to SCCP on constants over the corpus. *)
  let funcs = List.map (fun (_, s) -> Helpers.func_of_src s) Workload.Corpus.all_named in
  let cmp =
    Stats.Strength.compare_configs ~config:Pgvn.Config.full ~baseline:Pgvn.Config.emulate_sccp
      funcs
  in
  Alcotest.(check int) "no constant regressions vs SCCP" 0
    (Stats.Histogram.regressed_count cmp.Stats.Strength.constants)

let test_table_render () =
  let out =
    Fmt.str "%t" (fun ppf ->
        Stats.Table.render
          ~columns:[ ("name", Stats.Table.Left); ("x", Stats.Table.Right) ]
          ~rows:[ [ "a"; "1" ]; [ "bb"; "22" ] ]
          ppf)
  in
  Alcotest.(check bool) "header present" true
    (String.length out > 0 && String.split_on_char '\n' out |> List.length >= 4)

let test_ratio_helpers () =
  Alcotest.(check string) "ms" "1500.0" (Stats.Table.ms 1.5);
  Alcotest.(check string) "ratio" "2.00" (Stats.Table.ratio 4.0 2.0);
  Alcotest.(check string) "ratio div0" "-" (Stats.Table.ratio 4.0 0.0);
  Alcotest.(check string) "pct" "50.0%" (Stats.Table.pct 1.0 2.0)

let suite =
  [
    Alcotest.test_case "histogram accounting" `Quick test_histogram;
    Alcotest.test_case "strength comparison" `Quick test_strength_comparison;
    Alcotest.test_case "table rendering" `Quick test_table_render;
    Alcotest.test_case "ratio helpers" `Quick test_ratio_helpers;
  ]

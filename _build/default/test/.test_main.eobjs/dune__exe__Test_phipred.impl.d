test/test_phipred.ml: Alcotest Array Hashtbl Helpers Ir List Pgvn QCheck QCheck_alcotest Ssa Util Workload

test/test_differential.ml: Array Helpers Ir List Pgvn Printf QCheck QCheck_alcotest Ssa Transform Util Workload

test/test_transform.ml: Alcotest Array Helpers Ir List Pgvn QCheck QCheck_alcotest Ssa Transform Workload

test/test_gvn.ml: Alcotest Analysis Array Hashtbl Helpers Ir List Pgvn QCheck QCheck_alcotest Util Workload

test/test_ir.ml: Alcotest Analysis Array Fmt Fun Ir List Printf QCheck QCheck_alcotest Util Workload

test/test_ssa.ml: Alcotest Array Ir List QCheck QCheck_alcotest Ssa Util Workload

test/test_workload.ml: Alcotest Analysis Array Ir List Pgvn QCheck QCheck_alcotest Ssa Util Workload

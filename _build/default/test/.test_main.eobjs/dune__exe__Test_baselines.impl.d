test/test_baselines.ml: Alcotest Array Baselines Hashtbl Helpers Ir Pgvn QCheck QCheck_alcotest Ssa Util Workload

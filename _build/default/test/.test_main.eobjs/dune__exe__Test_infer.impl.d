test/test_infer.ml: Alcotest Array Ir List Pgvn

test/test_analysis.ml: Alcotest Analysis Array Ir List QCheck QCheck_alcotest Ssa Util Workload

test/test_expr.ml: Alcotest Array Ir List Pgvn QCheck QCheck_alcotest

test/test_paper.ml: Alcotest Array Helpers Ir List Pgvn Util Workload

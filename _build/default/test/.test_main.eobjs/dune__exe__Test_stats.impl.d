test/test_stats.ml: Alcotest Fmt Helpers List Pgvn Stats String Workload

test/helpers.ml: Alcotest Array Ir Pgvn Ssa Transform Util Workload

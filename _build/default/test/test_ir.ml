(* The IR substrate: lexer, parser, lowering, builder, validator and the
   two interpreters. *)

let lex_kinds src =
  List.map fst (Ir.Lexer.tokenize src) |> List.map Ir.Lexer.string_of_token

let test_lexer_basic () =
  Alcotest.(check (list string))
    "tokens"
    [ "routine"; "f"; "("; ")"; "{"; "return"; "1"; ";"; "}"; "<eof>" ]
    (lex_kinds "routine f() { return 1; }")

let test_lexer_operators () =
  Alcotest.(check (list string))
    "multi-char operators"
    [ "=="; "!="; "<="; ">="; "<<"; ">>"; "&&"; "||"; "<"; ">"; "="; "!"; "~"; "<eof>" ]
    (lex_kinds "== != <= >= << >> && || < > = ! ~")

let test_lexer_comments () =
  Alcotest.(check (list string))
    "comments skipped" [ "1"; "2"; "<eof>" ]
    (lex_kinds "1 # comment\n // other\n2")

let test_lexer_error () =
  match Ir.Lexer.tokenize "routine f() { @ }" with
  | exception Ir.Lexer.Error (_, off) -> Alcotest.(check int) "offset" 14 off
  | _ -> Alcotest.fail "expected lexer error"

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3); (1 + 2) * 3 respects parens. *)
  let r = Ir.Parser.parse_one "routine f() { return 1 + 2 * 3; }" in
  (match r.Ir.Ast.body with
  | [ Ir.Ast.Sreturn (Ir.Ast.Ebinop (Ir.Types.Add, Ir.Ast.Enum 1, Ir.Ast.Ebinop (Ir.Types.Mul, _, _))) ]
    ->
      ()
  | _ -> Alcotest.fail "wrong precedence for +/*");
  let r = Ir.Parser.parse_one "routine f() { return (1 + 2) * 3; }" in
  match r.Ir.Ast.body with
  | [ Ir.Ast.Sreturn (Ir.Ast.Ebinop (Ir.Types.Mul, Ir.Ast.Ebinop (Ir.Types.Add, _, _), Ir.Ast.Enum 3)) ]
    ->
      ()
  | _ -> Alcotest.fail "parens ignored"

let test_parser_left_assoc () =
  let r = Ir.Parser.parse_one "routine f(a,b,c) { return a - b - c; }" in
  match r.Ir.Ast.body with
  | [ Ir.Ast.Sreturn (Ir.Ast.Ebinop (Ir.Types.Sub, Ir.Ast.Ebinop (Ir.Types.Sub, _, _), _)) ] -> ()
  | _ -> Alcotest.fail "subtraction must be left-associative"

let test_parser_dangling_else () =
  let r = Ir.Parser.parse_one "routine f(a,b) { if (a) if (b) x = 1; else x = 2; return x; }" in
  match r.Ir.Ast.body with
  | [ Ir.Ast.Sif (_, [ Ir.Ast.Sif (_, _, [ Ir.Ast.Sassign ("x", Ir.Ast.Enum 2) ]) ], []); _ ] -> ()
  | _ -> Alcotest.fail "else must bind to the inner if"

let test_parser_errors () =
  let expect_error src =
    match Ir.Parser.parse_one src with
    | exception Ir.Parser.Error _ -> ()
    | _ -> Alcotest.fail ("parse should fail: " ^ src)
  in
  expect_error "routine f( { return 1; }";
  expect_error "routine f() { return 1 }";
  expect_error "routine f() { x = ; }";
  expect_error "routine f() { if a { } }";
  expect_error "routine f() { } routine g() { }  trailing"

let test_parser_program () =
  let rs = Ir.Parser.parse_program "routine f() { return 1; } routine g(x) { return x; }" in
  Alcotest.(check (list string)) "names" [ "f"; "g" ] (List.map (fun r -> r.Ir.Ast.name) rs)

(* Run a mini-C routine through Cir (the pre-SSA interpreter). *)
let run_src src args =
  let cir = Ir.Lower.lower_routine (Ir.Parser.parse_one src) in
  Ir.Cir.run cir args

let check_ret msg expected src args =
  match run_src src args with
  | Ir.Interp.Ret n -> Alcotest.(check int) msg expected n
  | r -> Alcotest.failf "%s: expected ret, got %a" msg Ir.Interp.pp_result r

let test_interp_arith () =
  check_ret "arith" 17 "routine f(a, b) { return a * b + 2; }" [| 3; 5 |];
  check_ret "neg" (-4) "routine f(a) { return -a; }" [| 4 |];
  check_ret "cmp true" 1 "routine f(a) { return a < 10; }" [| 3 |];
  check_ret "cmp false" 0 "routine f(a) { return a < 10; }" [| 30 |];
  check_ret "bitwise" 6 "routine f() { return (12 & 7) ^ 2; }" [||];
  check_ret "shift" 40 "routine f(a) { return a << 2; }" [| 10 |];
  check_ret "lnot" 1 "routine f() { return !0; }" [||];
  check_ret "bnot" (-1) "routine f() { return ~0; }" [||]

let test_interp_short_circuit () =
  (* 1 || (1/0 traps) must not trap; 0 && trap must not trap. *)
  check_ret "or shortcut" 1 "routine f(a) { return 1 || (a / 0); }" [| 5 |];
  check_ret "and shortcut" 0 "routine f(a) { return 0 && (a / 0); }" [| 5 |];
  (match run_src "routine f(a) { return 0 || (a / 0); }" [| 5 |] with
  | Ir.Interp.Trap -> ()
  | r -> Alcotest.failf "expected trap, got %a" Ir.Interp.pp_result r);
  check_ret "result is 0/1" 1 "routine f() { return 7 && 9; }" [||]

let test_interp_control () =
  check_ret "while" 45 "routine f(n) { s = 0; i = 0; while (i < n) { s = s + i; i = i + 1; } return s; }"
    [| 10 |];
  check_ret "break" 5 "routine f() { i = 0; while (1) { if (i >= 5) break; i = i + 1; } return i; }"
    [||];
  check_ret "continue" 31
    "routine f() { s = 0; i = 0; while (i < 10) { i = i + 1; if (i & 1) continue; s = s + i; } \
     return s + (s == 30); }"
    [||];
  check_ret "uninitialized vars read as zero" 0 "routine f() { return nope; }" [||]

let test_interp_trap_and_timeout () =
  (match run_src "routine f(a) { return a / 0; }" [| 1 |] with
  | Ir.Interp.Trap -> ()
  | r -> Alcotest.failf "expected trap, got %a" Ir.Interp.pp_result r);
  (match run_src "routine f() { return 5 % 0; }" [||] with
  | Ir.Interp.Trap -> ()
  | r -> Alcotest.failf "expected rem trap, got %a" Ir.Interp.pp_result r);
  let cir = Ir.Lower.lower_routine (Ir.Parser.parse_one "routine f() { while (1) { x = x + 1; } return 0; }") in
  match Ir.Cir.run ~fuel:1000 cir [||] with
  | Ir.Interp.Timeout -> ()
  | r -> Alcotest.failf "expected timeout, got %a" Ir.Interp.pp_result r

let test_interp_switch () =
  let src =
    "routine f(x) { switch (x) { case 1: { return 10; } case 2: { return 20; } \
     case -3: { return 30; } default: { return 0; } } return 99; }"
  in
  List.iter
    (fun (x, want) -> check_ret (Printf.sprintf "switch %d" x) want src [| x |])
    [ (1, 10); (2, 20); (-3, 30); (7, 0) ];
  (* default-less switch falls through to the join *)
  check_ret "empty default" 5 "routine f(x) { r = 5; switch (x) { case 1: { r = 6; } } return r; }"
    [| 2 |];
  check_ret "case taken" 6 "routine f(x) { r = 5; switch (x) { case 1: { r = 6; } } return r; }"
    [| 1 |]

let test_parser_switch_errors () =
  (match Ir.Parser.parse_one "routine f(x) { switch (x) { case 1: { } case 1: { } } return 0; }" with
  | exception Ir.Parser.Error _ -> ()
  | _ -> Alcotest.fail "duplicate case labels must be rejected");
  match Ir.Parser.parse_one "routine f(x) { switch (x) { case y: { } } return 0; }" with
  | exception Ir.Parser.Error _ -> ()
  | _ -> Alcotest.fail "non-constant case labels must be rejected"

let test_validate_catches_errors () =
  (* A phi with the wrong argument count must be rejected. *)
  let bld = Ir.Builder.create ~name:"bad" ~nparams:0 in
  let b0 = Ir.Builder.add_block bld in
  Alcotest.check_raises "unterminated block"
    (Invalid_argument "Builder: block 0 not terminated") (fun () ->
      ignore (Ir.Builder.finish bld));
  Ir.Builder.ret bld b0 (Ir.Builder.const bld b0 1);
  ignore (Ir.Builder.finish bld)

let test_builder_double_terminator () =
  let bld = Ir.Builder.create ~name:"bad" ~nparams:0 in
  let b0 = Ir.Builder.add_block bld in
  let b1 = Ir.Builder.add_block bld in
  ignore (Ir.Builder.jump bld b0 ~dst:b1);
  Alcotest.check_raises "double terminator"
    (Invalid_argument "Builder: block 0 already terminated") (fun () ->
      ignore (Ir.Builder.jump bld b0 ~dst:b1))

let test_builder_final_value () =
  let bld = Ir.Builder.create ~name:"m" ~nparams:1 in
  let b0 = Ir.Builder.add_block bld in
  let p = Ir.Builder.param bld b0 0 in
  let c = Ir.Builder.const bld b0 5 in
  let s = Ir.Builder.binop bld b0 Ir.Types.Add p c in
  Ir.Builder.ret bld b0 s;
  let f = Ir.Builder.finish bld in
  let m = Ir.Builder.final_value bld in
  (match Ir.Func.instr f (m s) with
  | Ir.Func.Binop (Ir.Types.Add, a, b) ->
      Alcotest.(check (pair int int)) "operands remapped" (m p, m c) (a, b)
  | _ -> Alcotest.fail "wrong instruction at mapped id");
  match Ir.Interp.run f [| 37 |] with
  | Ir.Interp.Ret 42 -> ()
  | r -> Alcotest.failf "expected 42, got %a" Ir.Interp.pp_result r

let test_prune_unreachable () =
  (* Statements after return are unreachable and must be pruned. *)
  let cir = Ir.Lower.lower_routine (Ir.Parser.parse_one
    "routine f() { return 1; x = 2; return x; }") in
  let g = Analysis.Graph.of_cir cir in
  let reach = Analysis.Graph.reachable g in
  Alcotest.(check bool) "all blocks reachable after prune" true (Array.for_all Fun.id reach)

(* Property: SSA-level and register-level interpreters agree on every
   generated program. *)
let prop_cir_ssa_agree =
  QCheck.Test.make ~name:"Cir.run agrees with Interp.run after SSA construction" ~count:60
    QCheck.(pair (int_bound 100000) (int_bound 1000))
    (fun (seed, argseed) ->
      let f = Workload.Generator.func ~seed ~name:"p" () in
      let cir = Ir.Lower.lower_routine (Workload.Generator.routine ~seed ~name:"p" ()) in
      let rng = Util.Prng.create argseed in
      let ok = ref true in
      for _ = 1 to 10 do
        let args = Array.init 8 (fun _ -> Util.Prng.range rng (-20) 20) in
        if not (Ir.Interp.equal_result (Ir.Cir.run cir args) (Ir.Interp.run f args)) then
          ok := false
      done;
      !ok)

(* Property: the AST printer emits re-parsable mini-C. *)
let prop_ast_roundtrip =
  QCheck.Test.make ~name:"pretty-printed routines re-parse and agree" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let r = Workload.Generator.routine ~seed ~name:"rt" () in
      let printed = Fmt.str "%a" Ir.Ast.pp_routine r in
      let r2 = Ir.Parser.parse_one printed in
      let c1 = Ir.Lower.lower_routine r and c2 = Ir.Lower.lower_routine r2 in
      let rng = Util.Prng.create seed in
      let ok = ref true in
      for _ = 1 to 10 do
        let args = Array.init 8 (fun _ -> Util.Prng.range rng (-20) 20) in
        if not (Ir.Interp.equal_result (Ir.Cir.run c1 args) (Ir.Cir.run c2 args)) then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "lexer: basics" `Quick test_lexer_basic;
    Alcotest.test_case "lexer: operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer: comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer: error offset" `Quick test_lexer_error;
    Alcotest.test_case "parser: precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser: left associativity" `Quick test_parser_left_assoc;
    Alcotest.test_case "parser: dangling else" `Quick test_parser_dangling_else;
    Alcotest.test_case "parser: rejects malformed input" `Quick test_parser_errors;
    Alcotest.test_case "parser: multi-routine programs" `Quick test_parser_program;
    Alcotest.test_case "interp: arithmetic and comparisons" `Quick test_interp_arith;
    Alcotest.test_case "interp: short-circuit operators" `Quick test_interp_short_circuit;
    Alcotest.test_case "interp: loops, break, continue" `Quick test_interp_control;
    Alcotest.test_case "interp: traps and timeouts" `Quick test_interp_trap_and_timeout;
    Alcotest.test_case "interp: switch" `Quick test_interp_switch;
    Alcotest.test_case "parser: switch errors" `Quick test_parser_switch_errors;
    Alcotest.test_case "builder: missing terminator rejected" `Quick test_validate_catches_errors;
    Alcotest.test_case "builder: double terminator rejected" `Quick test_builder_double_terminator;
    Alcotest.test_case "builder: final_value remapping" `Quick test_builder_final_value;
    Alcotest.test_case "lowering: prunes unreachable blocks" `Quick test_prune_unreachable;
    QCheck_alcotest.to_alcotest prop_cir_ssa_agree;
    QCheck_alcotest.to_alcotest prop_ast_roundtrip;
  ]

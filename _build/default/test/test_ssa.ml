(* SSA construction: well-formedness, semantics preservation, and the three
   φ-placement policies. *)

let build ?pruning seed = Workload.Generator.func ?pruning ~seed ~name:"s" ()

let count_phis f =
  let n = ref 0 in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    if Ir.Func.is_phi (Ir.Func.instr f i) then incr n
  done;
  !n

let prop_verifies pruning name =
  QCheck.Test.make ~name ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = build ~pruning seed in
      match Ssa.Verify.check f with _ -> true | exception _ -> false)

let prop_pruning_semantics =
  QCheck.Test.make ~name:"all pruning variants are semantically equivalent" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let fm = build ~pruning:Ssa.Construct.Minimal seed in
      let fs = build ~pruning:Ssa.Construct.Semi_pruned seed in
      let fp = build ~pruning:Ssa.Construct.Pruned seed in
      let rng = Util.Prng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 10 do
        let args = Array.init 8 (fun _ -> Util.Prng.range rng (-20) 20) in
        let r = Ir.Interp.run fm args in
        if
          not
            (Ir.Interp.equal_result r (Ir.Interp.run fs args)
            && Ir.Interp.equal_result r (Ir.Interp.run fp args))
        then ok := false
      done;
      !ok)

let prop_pruning_monotone =
  QCheck.Test.make ~name:"phi counts: minimal >= semi-pruned >= pruned" ~count:60
    QCheck.(int_bound 100000)
    (fun seed ->
      let m = count_phis (build ~pruning:Ssa.Construct.Minimal seed) in
      let s = count_phis (build ~pruning:Ssa.Construct.Semi_pruned seed) in
      let p = count_phis (build ~pruning:Ssa.Construct.Pruned seed) in
      m >= s && s >= p)

let test_straightline_no_phis () =
  let f =
    Ssa.Construct.of_cir
      (Ir.Lower.lower_routine (Ir.Parser.parse_one "routine f(a) { x = a + 1; y = x * 2; return y; }"))
  in
  Alcotest.(check int) "no phis in straight-line code" 0 (count_phis f)

let test_diamond_one_phi () =
  let f =
    Ssa.Construct.of_cir ~pruning:Ssa.Construct.Pruned
      (Ir.Lower.lower_routine
         (Ir.Parser.parse_one "routine f(a) { x = 0; if (a > 0) x = 1; return x; }"))
  in
  Alcotest.(check int) "exactly one phi for the merged variable" 1 (count_phis f)

let test_loop_phi_placement () =
  let f =
    Ssa.Construct.of_cir ~pruning:Ssa.Construct.Pruned
      (Ir.Lower.lower_routine
         (Ir.Parser.parse_one
            "routine f(n) { i = 0; while (i < n) { i = i + 1; } return i; }"))
  in
  (* i needs a phi at the loop header; n does not (single definition). *)
  Alcotest.(check int) "one phi at the loop header" 1 (count_phis f);
  ignore (Ssa.Verify.check f)

let test_verify_rejects_bad_ssa () =
  (* A use before its definition in the same block must be rejected: build
     v1 = v2 + 1; v2 = 7 by hand. The builder cannot express this (ids are
     allocated in order), so check the dominance case instead: a value
     defined in one branch used in the other. *)
  let bld = Ir.Builder.create ~name:"bad" ~nparams:1 in
  let b0 = Ir.Builder.add_block bld in
  let b1 = Ir.Builder.add_block bld in
  let b2 = Ir.Builder.add_block bld in
  let p = Ir.Builder.param bld b0 0 in
  ignore (Ir.Builder.branch bld b0 p ~ift:b1 ~iff:b2);
  let x = Ir.Builder.binop bld b1 Ir.Types.Add p p in
  Ir.Builder.ret bld b1 x;
  Ir.Builder.ret bld b2 x (* use of x not dominated by its definition *);
  let f = Ir.Builder.finish bld in
  match Ssa.Verify.check f with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "verifier accepted a non-dominating use"

let test_copy_coalescing () =
  (* Register copies disappear during SSA construction. *)
  let f =
    Ssa.Construct.of_cir
      (Ir.Lower.lower_routine (Ir.Parser.parse_one "routine f(a) { x = a; y = x; return y; }"))
  in
  (* Only params + return remain. *)
  Alcotest.(check int) "copies coalesced" 0
    (Array.to_list f.Ir.Func.instrs
    |> List.filter (function Ir.Func.Binop _ | Ir.Func.Unop _ -> true | _ -> false)
    |> List.length);
  match Ir.Interp.run f [| 9 |] with
  | Ir.Interp.Ret 9 -> ()
  | r -> Alcotest.failf "wrong result %a" Ir.Interp.pp_result r

let suite =
  [
    prop_verifies Ssa.Construct.Minimal "minimal SSA verifies" |> QCheck_alcotest.to_alcotest;
    prop_verifies Ssa.Construct.Semi_pruned "semi-pruned SSA verifies" |> QCheck_alcotest.to_alcotest;
    prop_verifies Ssa.Construct.Pruned "pruned SSA verifies" |> QCheck_alcotest.to_alcotest;
    QCheck_alcotest.to_alcotest prop_pruning_semantics;
    QCheck_alcotest.to_alcotest prop_pruning_monotone;
    Alcotest.test_case "straight-line code has no phis" `Quick test_straightline_no_phis;
    Alcotest.test_case "diamond merge places one phi" `Quick test_diamond_one_phi;
    Alcotest.test_case "loop variable gets a header phi" `Quick test_loop_phi_placement;
    Alcotest.test_case "verifier rejects non-dominating uses" `Quick test_verify_rejects_bad_ssa;
    Alcotest.test_case "copies are coalesced" `Quick test_copy_coalescing;
  ]

(* Cross-validation of the independently implemented prior algorithms
   against the engine's §2.9 emulation presets, and against each other. *)

let gen_func seed = Workload.Generator.func ~seed ~name:"x" ()

(* Two class arrays describe the same partition of values. *)
let same_partition f p q =
  let n = Ir.Func.num_instrs f in
  let m1 = Hashtbl.create 16 and m2 = Hashtbl.create 16 in
  let ok = ref true in
  for v = 0 to n - 1 do
    if Ir.Func.defines_value (Ir.Func.instr f v) then begin
      (match Hashtbl.find_opt m1 p.(v) with
      | Some w -> if w <> q.(v) then ok := false
      | None -> Hashtbl.replace m1 p.(v) q.(v));
      match Hashtbl.find_opt m2 q.(v) with
      | Some w -> if w <> p.(v) then ok := false
      | None -> Hashtbl.replace m2 q.(v) p.(v)
    end
  done;
  !ok

(* Every congruence in [finer] also holds in [coarser]. *)
let refines f ~coarser ~finer =
  let n = Ir.Func.num_instrs f in
  let m = Hashtbl.create 16 in
  let ok = ref true in
  for v = 0 to n - 1 do
    if Ir.Func.defines_value (Ir.Func.instr f v) then
      match Hashtbl.find_opt m finer.(v) with
      | Some c -> if coarser.(v) <> c then ok := false
      | None -> Hashtbl.replace m finer.(v) coarser.(v)
  done;
  !ok

let engine_partition config f =
  let st = Pgvn.Driver.run config f in
  Array.init (Ir.Func.num_instrs f) (fun v -> st.Pgvn.State.class_of.(v))

let prop_rpo_eq_scc_acyclic =
  QCheck.Test.make ~name:"Simpson RPO == Simpson SCC on acyclic code" ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let f =
        Workload.Generator.func
          ~profile:{ Workload.Generator.default_profile with loop_weight = 0 }
          ~seed ~name:"x" ()
      in
      same_partition f (Baselines.Simpson.rpo f).Baselines.Simpson.vn
        (Baselines.Simpson.scc f).Baselines.Simpson.vn)

let prop_scc_refines_rpo =
  (* On cyclic code, SCC can miss congruences between independent parallel
     φ-cycles (they hash in separate components), but never finds more. *)
  QCheck.Test.make ~name:"Simpson SCC refines Simpson RPO" ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      refines f
        ~coarser:(Baselines.Simpson.rpo f).Baselines.Simpson.vn
        ~finer:(Baselines.Simpson.scc f).Baselines.Simpson.vn)

let prop_rpo_eq_emulation =
  QCheck.Test.make ~name:"Simpson RPO == engine AWZ emulation" ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      same_partition f (Baselines.Simpson.rpo f).Baselines.Simpson.vn
        (engine_partition Pgvn.Config.emulate_awz f))

let prop_awz_refined_by_hash =
  QCheck.Test.make ~name:"AWZ partitioning refines the hash-based result" ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      refines f
        ~coarser:(Baselines.Simpson.rpo f).Baselines.Simpson.vn
        ~finer:(Baselines.Awz.run f))

let prop_sccp_matches_engine =
  QCheck.Test.make ~name:"independent SCCP == engine exact-SCCP emulation" ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      let sc = Baselines.Sccp.run f in
      let st = Pgvn.Driver.run Pgvn.Config.emulate_sccp_exact f in
      let ok = ref true in
      for v = 0 to Ir.Func.num_instrs f - 1 do
        if Ir.Func.defines_value (Ir.Func.instr f v) then begin
          let unr1 =
            sc.Baselines.Sccp.value.(v) = Baselines.Sccp.Top
            || not sc.Baselines.Sccp.block_executable.(Ir.Func.block_of_instr f v)
          in
          let c1 =
            match sc.Baselines.Sccp.value.(v) with Baselines.Sccp.Const n -> Some n | _ -> None
          in
          if unr1 <> Pgvn.Driver.value_unreachable st v then ok := false
          else if (not unr1) && c1 <> Pgvn.Driver.value_constant st v then ok := false
        end
      done;
      for e = 0 to Ir.Func.num_edges f - 1 do
        if sc.Baselines.Sccp.edge_executable.(e) <> Pgvn.State.edge_reachable st e then ok := false
      done;
      !ok)

let prop_domhash_refined_by_pessimistic =
  QCheck.Test.make ~name:"dominator-hash GVN refined by engine pessimistic" ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      let dh = Baselines.Domhash.run f in
      (* Inference can trade congruences away (§2.7), so compare against the
         pessimistic engine with the extra analyses off. *)
      let st =
        Pgvn.Driver.run { Pgvn.Config.basic with Pgvn.Config.mode = Pgvn.Config.Pessimistic } f
      in
      let ok = ref true in
      for v = 0 to Ir.Func.num_instrs f - 1 do
        if Ir.Func.defines_value (Ir.Func.instr f v) then begin
          (* constants found by domhash are found by the engine *)
          (match Baselines.Domhash.constant_of dh v with
          | Some n -> if Pgvn.Driver.value_constant st v <> Some n then ok := false
          | None -> ());
          (* congruences found by domhash are found by the engine *)
          for w = v + 1 to Ir.Func.num_instrs f - 1 do
            if
              Ir.Func.defines_value (Ir.Func.instr f w)
              && Baselines.Domhash.congruent dh v w
              && not (Pgvn.Driver.congruent st v w)
            then ok := false
          done
        end
      done;
      !ok)

let prop_sccp_constants_sound =
  QCheck.Test.make ~name:"SCCP baseline constants hold at run time" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      let sc = Baselines.Sccp.run f in
      let rng = Util.Prng.create (seed + 5) in
      let ok = ref true in
      for _ = 1 to 10 do
        let args = Array.init 8 (fun _ -> Util.Prng.range rng (-15) 15) in
        let _, env = Ir.Interp.run_with_env ~fuel:200_000 f args in
        Array.iteri
          (fun v value ->
            match (value, sc.Baselines.Sccp.value.(v)) with
            | Some rv, Baselines.Sccp.Const c when Ir.Func.defines_value (Ir.Func.instr f v) ->
                if rv <> c then ok := false
            | _ -> ())
          env
      done;
      !ok)

let prop_prepass_sound =
  QCheck.Test.make ~name:"Briggs pre-pass preserves semantics" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = gen_func seed in
      let g = Baselines.Briggs_prepass.run f in
      ignore (Ssa.Verify.check g);
      Helpers.equivalent ~seed:(seed + 1) f g)

let test_prepass_figure13 () =
  (* The pre-pass strictly improves plain GVN but stays short of unified
     inference on the paper's Figure 13 pattern. *)
  let f = Helpers.func_of_src Workload.Corpus.figure13_src in
  let consts config g =
    (Pgvn.Driver.summarize (Pgvn.Driver.run config g)).Pgvn.Driver.constant_values
  in
  let plain = consts Pgvn.Config.emulate_click f in
  let prepassed = consts Pgvn.Config.emulate_click (Baselines.Briggs_prepass.run f) in
  let unified = consts Pgvn.Config.full f in
  Alcotest.(check bool) "pre-pass helps plain GVN" true (prepassed > plain);
  Alcotest.(check bool) "unified beats the pre-pass" true (unified > prepassed);
  Helpers.check_const "only unified proves the guarded return" (Some 0)
    (let st = Pgvn.Driver.run Pgvn.Config.full f in
     Helpers.return_constant st f)

let test_simpson_passes () =
  (* Acyclic code converges in ~1 effective pass (plus the fixpoint check);
     deep loop nests take more. *)
  let acyclic =
    Workload.Generator.func
      ~profile:{ Workload.Generator.default_profile with loop_weight = 0 }
      ~seed:77 ~name:"a" ()
  in
  let r = Baselines.Simpson.rpo acyclic in
  Alcotest.(check bool) "acyclic converges fast" true (r.Baselines.Simpson.passes <= 2)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_rpo_eq_scc_acyclic;
    QCheck_alcotest.to_alcotest prop_scc_refines_rpo;
    QCheck_alcotest.to_alcotest prop_rpo_eq_emulation;
    QCheck_alcotest.to_alcotest prop_awz_refined_by_hash;
    QCheck_alcotest.to_alcotest prop_sccp_matches_engine;
    QCheck_alcotest.to_alcotest prop_domhash_refined_by_pessimistic;
    QCheck_alcotest.to_alcotest prop_sccp_constants_sound;
    QCheck_alcotest.to_alcotest prop_prepass_sound;
    Alcotest.test_case "figure 13: prepass < unified" `Quick test_prepass_figure13;
    Alcotest.test_case "Simpson RPO pass counts" `Quick test_simpson_passes;
  ]

(* CFG analyses, each validated against a brute-force reference on random
   graphs: dominators, postdominators, dominance frontiers, the incremental
   dominator tree, RPO, loops and liveness. *)

(* Random digraph on n nodes with entry 0. *)
let random_graph rng n ~extra_edges =
  let succ = Array.make n [] in
  (* A random spanning structure keeps most nodes reachable. *)
  for v = 1 to n - 1 do
    let u = Util.Prng.int rng v in
    succ.(u) <- v :: succ.(u)
  done;
  for _ = 1 to extra_edges do
    let u = Util.Prng.int rng n and v = Util.Prng.int rng n in
    succ.(u) <- v :: succ.(u)
  done;
  Analysis.Graph.make ~entry:0 (Array.map Array.of_list succ)

(* Reference dominators by iterative set intersection over bitsets. *)
let brute_dominators (g : Analysis.Graph.t) =
  let n = g.Analysis.Graph.n in
  let full = Array.make n true in
  let dom = Array.init n (fun v -> if v = g.Analysis.Graph.entry then Array.make n false else Array.copy full) in
  dom.(g.Analysis.Graph.entry).(g.Analysis.Graph.entry) <- true;
  let reach = Analysis.Graph.reachable g in
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to n - 1 do
      if v <> g.Analysis.Graph.entry && reach.(v) then begin
        let inter = Array.make n true in
        let any = ref false in
        Array.iter
          (fun p ->
            if reach.(p) then begin
              any := true;
              for i = 0 to n - 1 do
                inter.(i) <- inter.(i) && dom.(p).(i)
              done
            end)
          g.Analysis.Graph.pred.(v);
        if not !any then Array.fill inter 0 n false;
        inter.(v) <- true;
        if inter <> dom.(v) then begin
          dom.(v) <- inter;
          changed := true
        end
      end
    done
  done;
  (dom, reach)

let prop_dominators =
  QCheck.Test.make ~name:"Dom.compute matches brute-force dominator sets" ~count:80
    QCheck.(pair (int_bound 100000) (int_range 1 14))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng (2 * n)) in
      let dom = Analysis.Dom.compute g in
      let ref_dom, reach = brute_dominators g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let expected = reach.(a) && reach.(b) && ref_dom.(b).(a) in
          if Analysis.Dom.dominates dom a b <> expected then ok := false
        done;
        if reach.(a) <> Analysis.Dom.reachable dom a then ok := false
      done;
      !ok)

let prop_nca =
  QCheck.Test.make ~name:"Dom.nca is the deepest common dominator" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 2 12))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng n) in
      let dom = Analysis.Dom.compute g in
      let reach = Analysis.Graph.reachable g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if reach.(a) && reach.(b) then begin
            let z = Analysis.Dom.nca dom a b in
            if not (Analysis.Dom.dominates dom z a && Analysis.Dom.dominates dom z b) then
              ok := false;
            (* No strictly deeper common dominator. *)
            for c = 0 to n - 1 do
              if
                reach.(c)
                && Analysis.Dom.dominates dom c a
                && Analysis.Dom.dominates dom c b
                && not (Analysis.Dom.dominates dom c z)
              then ok := false
            done
          end
        done
      done;
      !ok)

let prop_domfront =
  QCheck.Test.make ~name:"dominance frontiers match their definition" ~count:80
    QCheck.(pair (int_bound 100000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng (2 * n)) in
      let dom = Analysis.Dom.compute g in
      let df = Analysis.Domfront.compute g dom in
      let reach = Analysis.Graph.reachable g in
      (* DF(a) = { y | a dominates some pred of y, a does not strictly dominate y } *)
      let ok = ref true in
      for a = 0 to n - 1 do
        if reach.(a) then
          for y = 0 to n - 1 do
            if reach.(y) then begin
              let expected =
                Array.exists
                  (fun p -> reach.(p) && Analysis.Dom.dominates dom a p)
                  g.Analysis.Graph.pred.(y)
                && not (Analysis.Dom.strictly_dominates dom a y)
              in
              let got = Array.exists (fun x -> x = y) df.(a) in
              if expected <> got then ok := false
            end
          done
      done;
      !ok)

let prop_postdom =
  QCheck.Test.make ~name:"postdominators = dominators of the reversed graph" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng n) in
      let pd = Analysis.Postdom.compute g in
      (* Reference: a postdominates b iff every path from b to any exit
         passes a. Brute force via path search avoiding a. *)
      let exits = ref [] in
      for v = 0 to n - 1 do
        if Array.length g.Analysis.Graph.succ.(v) = 0 then exits := v :: !exits
      done;
      let reaches_exit_avoiding a b =
        (* can b reach an exit without touching a? *)
        let seen = Array.make n false in
        let rec dfs v =
          if v = a || seen.(v) then false
          else begin
            seen.(v) <- true;
            List.mem v !exits || Array.exists dfs g.Analysis.Graph.succ.(v)
          end
        in
        dfs b
      in
      let reaches_exit b =
        let seen = Array.make n false in
        let rec dfs v =
          if seen.(v) then false
          else begin
            seen.(v) <- true;
            List.mem v !exits || Array.exists dfs g.Analysis.Graph.succ.(v)
          end
        in
        dfs b
      in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if reaches_exit b && reaches_exit a then begin
            let expected = a = b || not (reaches_exit_avoiding a b) in
            if Analysis.Postdom.postdominates pd a b <> expected then ok := false
          end
        done
      done;
      !ok)

(* The incremental dominator tree must agree with from-scratch recomputation
   after every single insertion, for arbitrary insertion orders in which
   each edge's source is already reachable (the GVN setting). *)
let prop_inc_dom =
  QCheck.Test.make ~name:"Inc_dom agrees with recomputation after every insertion" ~count:120
    QCheck.(pair (int_bound 1000000) (int_range 2 14))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng (2 * n)) in
      let t = Analysis.Inc_dom.create ~n ~entry:0 in
      let edges = ref [] in
      for u = 0 to n - 1 do
        Array.iter (fun v -> edges := (u, v) :: !edges) g.Analysis.Graph.succ.(u)
      done;
      let ok = ref true in
      let rec insert_all remaining =
        let ready, blocked =
          List.partition (fun (u, _) -> Analysis.Inc_dom.is_reachable t u) remaining
        in
        match ready with
        | [] -> ()
        | _ ->
            (* pick one ready edge at random *)
            let k = Util.Prng.int rng (List.length ready) in
            let u, v = List.nth ready k in
            ignore (Analysis.Inc_dom.insert_edge t ~src:u ~dst:v);
            (* compare against recomputation *)
            let reference = Analysis.Inc_dom.recompute_reference t in
            for b = 0 to n - 1 do
              let ri = reference.Analysis.Dom.idom.(b) in
              let ii = Analysis.Inc_dom.idom t b in
              let rr = Analysis.Dom.reachable reference b in
              let ir = Analysis.Inc_dom.is_reachable t b in
              if rr <> ir then ok := false;
              if rr && b <> 0 && ri <> ii then ok := false;
              if rr && reference.Analysis.Dom.depth.(b) <> Analysis.Inc_dom.depth t b then
                ok := false
            done;
            insert_all (blocked @ List.filteri (fun i _ -> i <> k) ready)
      in
      insert_all !edges;
      !ok)

let prop_rpo =
  QCheck.Test.make ~name:"RPO numbers respect forward edges on DAG part" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 1 15))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng n) in
      let rpo = Analysis.Rpo.compute g in
      let reach = Analysis.Graph.reachable g in
      (* Every reachable node appears exactly once; entry is first. *)
      let count = Array.make n 0 in
      Array.iter (fun b -> count.(b) <- count.(b) + 1) rpo.Analysis.Rpo.order;
      let ok = ref (rpo.Analysis.Rpo.order.(0) = 0) in
      for v = 0 to n - 1 do
        if reach.(v) then begin
          if count.(v) <> 1 then ok := false;
          if rpo.Analysis.Rpo.number.(v) < 0 then ok := false
        end
        else if rpo.Analysis.Rpo.number.(v) >= 0 then ok := false
      done;
      (* Back-edge classification is consistent with the numbering. *)
      for u = 0 to n - 1 do
        if reach.(u) then
          Array.iter
            (fun v ->
              let back = Analysis.Rpo.is_back_edge rpo ~src:u ~dst:v in
              let expect = rpo.Analysis.Rpo.number.(v) <= rpo.Analysis.Rpo.number.(u) in
              if back <> expect then ok := false)
            g.Analysis.Graph.succ.(u)
      done;
      !ok)

let test_loops_nesting () =
  let src =
    "routine f(n) { i = 0; while (i < n) { j = 0; while (j < n) { j = j + 1; } i = i + 1; } \
     return i; }"
  in
  let f = Ssa.Construct.of_cir (Ir.Lower.lower_routine (Ir.Parser.parse_one src)) in
  let loops = Analysis.Loops.compute (Analysis.Graph.of_func f) in
  Alcotest.(check int) "max nesting" 2 (Analysis.Loops.max_nesting loops);
  Alcotest.(check int) "two loop headers" 2 (List.length loops.Analysis.Loops.headers)

let test_liveness_simple () =
  (* x is live across the branch; the constant only in the entry block. *)
  let src = "routine f(a) { x = a + 1; if (a > 0) { y = x + 1; return y; } return x; }" in
  let f = Ssa.Construct.of_cir (Ir.Lower.lower_routine (Ir.Parser.parse_one src)) in
  let live = Analysis.Liveness.compute f in
  (* Find the x value: the Add of param and const. *)
  let x = ref (-1) in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    match Ir.Func.instr f i with
    | Ir.Func.Binop (Ir.Types.Add, _, _) when !x < 0 -> x := i
    | _ -> ()
  done;
  Alcotest.(check bool) "x live out of entry" true (Analysis.Liveness.live_out_at live 0 !x);
  (* x is live into every successor of entry. *)
  let succs = Ir.Func.succ_blocks f in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "x live into successors" true (Analysis.Liveness.live_in_at live s !x))
    succs.(0)

(* Necessary conditions for liveness on arbitrary generated programs:
   cross-block operands are live-in at the using block, and φ arguments are
   live-out of the predecessor carrying them. *)
let prop_liveness_uses =
  QCheck.Test.make ~name:"liveness covers cross-block uses and phi args" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"lv" () in
      let live = Analysis.Liveness.compute f in
      let ok = ref true in
      for b = 0 to Ir.Func.num_blocks f - 1 do
        let blk = Ir.Func.block f b in
        Array.iter
          (fun i ->
            match Ir.Func.instr f i with
            | Ir.Func.Phi args ->
                Array.iteri
                  (fun ix v ->
                    let src = (Ir.Func.edge f blk.Ir.Func.preds.(ix)).Ir.Func.src in
                    if
                      Ir.Func.block_of_instr f v <> src
                      && not (Analysis.Liveness.live_in_at live src v)
                    then ok := false)
                  args
            | ins ->
                Ir.Func.iter_operands
                  (fun v ->
                    if Ir.Func.block_of_instr f v <> b && not (Analysis.Liveness.live_in_at live b v)
                    then ok := false)
                  ins)
          blk.Ir.Func.instrs
      done;
      !ok)

let prop_idom_is_dominator =
  QCheck.Test.make ~name:"idom chains enumerate exactly the dominators" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng n) in
      let dom = Analysis.Dom.compute g in
      let ok = ref true in
      for b = 0 to n - 1 do
        if Analysis.Dom.reachable dom b then begin
          (* walk the idom chain; every node on it must dominate b, and the
             count must equal the number of dominators of b *)
          let chain = ref [] in
          let v = ref b in
          while !v >= 0 do
            chain := !v :: !chain;
            v := dom.Analysis.Dom.idom.(!v)
          done;
          List.iter (fun a -> if not (Analysis.Dom.dominates dom a b) then ok := false) !chain;
          let count = ref 0 in
          for a = 0 to n - 1 do
            if Analysis.Dom.dominates dom a b then incr count
          done;
          if !count <> List.length !chain then ok := false
        end
      done;
      !ok)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_dominators;
    QCheck_alcotest.to_alcotest prop_idom_is_dominator;
    QCheck_alcotest.to_alcotest prop_liveness_uses;
    QCheck_alcotest.to_alcotest prop_nca;
    QCheck_alcotest.to_alcotest prop_domfront;
    QCheck_alcotest.to_alcotest prop_postdom;
    QCheck_alcotest.to_alcotest prop_inc_dom;
    QCheck_alcotest.to_alcotest prop_rpo;
    Alcotest.test_case "loop nesting depth" `Quick test_loops_nesting;
    Alcotest.test_case "liveness on a diamond" `Quick test_liveness_simple;
  ]

(* A tour of the value-numbering algorithm zoo on one routine: the
   independent baseline implementations, the engine's §2.9 emulations of
   them, and the full predicated algorithm — showing where each family's
   power ends. *)

let src =
  {|
routine zoo(a, b, n) {
  # plain redundancy (every algorithm)
  x = a + b;
  y = a + b;

  # commutativity + folding (hash VN with simplification)
  z = b + a;
  w = (3 * 4) - 12;

  # conditional constants (SCCP and stronger)
  c = 1;
  if (2 > 3) c = f0(a);

  # cyclic congruence (optimistic only)
  i = 0; p = 0; q = 0;
  while (i < n) { p = p + 1; q = q + 1; i = i + 1; }

  # predicated congruence (the paper's algorithm only)
  r = 0;
  if (a == b) r = (x - y) + (a - b);

  return x - y + z - x + w + c + (p - q) + r;
}
|}

let () =
  let f = Workload.Corpus.func_of_src src in
  Fmt.pr "routine zoo: %d values in %d blocks@.@." (Ir.Func.num_instrs f) (Ir.Func.num_blocks f);

  (* Independent baseline implementations. *)
  let count_distinct reps =
    let t = Hashtbl.create 16 in
    Array.iteri
      (fun v r ->
        if Ir.Func.defines_value (Ir.Func.instr f v) && r >= 0 then Hashtbl.replace t r ())
      reps;
    Hashtbl.length t
  in
  Fmt.pr "--- independent baselines (congruence classes; fewer = stronger) ---@.";
  Fmt.pr "  %-34s %d@." "AWZ partition refinement" (count_distinct (Baselines.Awz.run f));
  Fmt.pr "  %-34s %d@." "Simpson RPO (hash, optimistic)"
    (count_distinct (Baselines.Simpson.rpo f).Baselines.Simpson.vn);
  Fmt.pr "  %-34s %d@." "Simpson SCC"
    (count_distinct (Baselines.Simpson.scc f).Baselines.Simpson.vn);
  let dh = Baselines.Domhash.run f in
  let dh_consts = ref 0 in
  for v = 0 to Ir.Func.num_instrs f - 1 do
    if Baselines.Domhash.constant_of dh v <> None then incr dh_consts
  done;
  Fmt.pr "  %-34s %d constants@." "dominator-hash GVN (pessimistic)" !dh_consts;
  let sccp = Baselines.Sccp.run f in
  let sccp_consts =
    Array.fold_left
      (fun n l -> match l with Baselines.Sccp.Const _ -> n + 1 | _ -> n)
      0 sccp.Baselines.Sccp.value
  in
  Fmt.pr "  %-34s %d constants@.@." "Wegman-Zadeck SCCP" sccp_consts;

  (* The engine across its configuration space. *)
  Fmt.pr "--- the unified engine (return value + strength) ---@.";
  let ret_const st =
    let r = ref None in
    for i = 0 to Ir.Func.num_instrs f - 1 do
      match Ir.Func.instr f i with
      | Ir.Func.Return v when Pgvn.State.block_reachable st (Ir.Func.block_of_instr f i) ->
          r := Pgvn.Driver.value_constant st v
      | _ -> ()
    done;
    !r
  in
  List.iter
    (fun (name, config) ->
      let st = Pgvn.Driver.run config f in
      let s = Pgvn.Driver.summarize st in
      Fmt.pr "  %-34s return %-10s (%d consts, %d classes)@." name
        (match ret_const st with Some c -> "const " ^ string_of_int c | None -> "unknown")
        s.Pgvn.Driver.constant_values s.Pgvn.Driver.congruence_classes)
    [
      ("emulate AWZ (§2.9)", Pgvn.Config.emulate_awz);
      ("emulate SCCP (§2.9)", Pgvn.Config.emulate_sccp);
      ("emulate Click (§2.9)", Pgvn.Config.emulate_click);
      ("pessimistic", Pgvn.Config.pessimistic);
      ("balanced", Pgvn.Config.balanced);
      ("full predicated GVN", Pgvn.Config.full);
    ];
  Fmt.pr
    "@.Only the full algorithm proves the whole expression constant: it needs@.\
     the cyclic congruence (p - q = 0, optimistic), the dead-arm constant@.\
     (c = 1, SCCP-style), and the predicated facts under a == b.@."

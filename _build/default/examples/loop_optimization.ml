(* Cyclic congruences and loop-invariant values (§1.1): optimistic value
   numbering initially ignores values carried by back edges, so it can
   prove that two variables advancing in lockstep stay congruent across
   iterations, and that a value redefined to itself in a loop is invariant.
   Balanced and pessimistic value numbering treat cyclic φs as opaque and
   find neither. *)

let show_case ~name src =
  Fmt.pr "--- %s ---@.%s@." name src;
  let f = Workload.Corpus.func_of_src src in
  let ret_const st =
    let r = ref None in
    for i = 0 to Ir.Func.num_instrs f - 1 do
      match Ir.Func.instr f i with
      | Ir.Func.Return v -> r := Pgvn.Driver.value_constant st v
      | _ -> ()
    done;
    !r
  in
  List.iter
    (fun (cname, config) ->
      let st = Pgvn.Driver.run config f in
      let s = Pgvn.Driver.summarize st in
      Fmt.pr "  %-12s return %-10s classes %d  passes %d@." cname
        (match ret_const st with Some c -> Printf.sprintf "const %d" c | None -> "unknown")
        s.Pgvn.Driver.congruence_classes s.Pgvn.Driver.passes)
    [
      ("optimistic", Pgvn.Config.full);
      ("balanced", Pgvn.Config.balanced);
      ("pessimistic", Pgvn.Config.pessimistic);
    ];
  Fmt.pr "@."

let () =
  Fmt.pr "Optimistic vs balanced vs pessimistic on cyclic values@.@.";
  (* x and y advance in lockstep: x - y ≡ 0, discovered only optimistically. *)
  show_case ~name:"cyclic congruence (x-y = 0)" Workload.Corpus.cyclic_congruence_src;
  (* acc = acc + 0 in a loop: loop-invariant, so the whole loop folds. *)
  show_case ~name:"loop-invariant cyclic value" Workload.Corpus.loop_invariant_src;
  (* And the optimizer actually rewrites the lockstep loop to return 0. *)
  let f = Workload.Corpus.func_of_src Workload.Corpus.cyclic_congruence_src in
  let g =
    Transform.Simplify_cfg.fixpoint
      (Transform.Dce.run (Transform.Apply.optimize ~config:Pgvn.Config.full f))
  in
  Fmt.pr "optimized lockstep loop (%d -> %d instructions):@.%a@." (Ir.Func.num_instrs f)
    (Ir.Func.num_instrs g) Ir.Printer.pp g

examples/quickstart.ml: Fmt Ir List Pgvn Transform

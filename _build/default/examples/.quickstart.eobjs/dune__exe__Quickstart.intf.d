examples/quickstart.mli:

examples/compiler_pipeline.ml: Array Fmt Ir List Pgvn Ssa Transform Util

examples/algorithm_zoo.mli:

examples/loop_optimization.ml: Fmt Ir List Pgvn Printf Transform Workload

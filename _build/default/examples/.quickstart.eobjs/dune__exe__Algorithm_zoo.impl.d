examples/algorithm_zoo.ml: Array Baselines Fmt Hashtbl Ir List Pgvn Workload

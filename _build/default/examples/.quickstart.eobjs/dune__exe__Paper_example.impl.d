examples/paper_example.ml: Array Fmt Ir List Pgvn Printf Util Workload

(* Quickstart: construct a routine with the builder API, run predicated
   global value numbering, inspect the discovered facts, and rewrite the
   routine.

   The routine:

     routine F(a, b) {
       if (a == b) {
         x = a + b;        # under the guard, value inference rewrites b -> a
         y = a + a;        # so x and y are both 2*a: congruent
         return y - x;     # hence constant 0
       }
       return a;
     }
*)

let build () =
  let bld = Ir.Builder.create ~name:"quickstart" ~nparams:2 in
  let entry = Ir.Builder.add_block bld in
  let then_ = Ir.Builder.add_block bld in
  let else_ = Ir.Builder.add_block bld in
  let a = Ir.Builder.param bld entry 0 in
  let b = Ir.Builder.param bld entry 1 in
  let cond = Ir.Builder.cmp bld entry Ir.Types.Eq a b in
  let _edges = Ir.Builder.branch bld entry cond ~ift:then_ ~iff:else_ in
  let x = Ir.Builder.binop bld then_ Ir.Types.Add a b in
  let y = Ir.Builder.binop bld then_ Ir.Types.Add a a in
  let d = Ir.Builder.binop bld then_ Ir.Types.Sub y x in
  Ir.Builder.ret bld then_ d;
  Ir.Builder.ret bld else_ a;
  let f = Ir.Builder.finish bld in
  (* [finish] renumbers instructions; map the construction-time ids. *)
  let m = Ir.Builder.final_value bld in
  (f, m x, m y, m d)

let () =
  let f, x, y, d = build () in
  Fmt.pr "Input routine:@.%a@." Ir.Printer.pp f;

  (* Run the full predicated GVN. *)
  let st = Pgvn.Driver.run Pgvn.Config.full f in
  let summary = Pgvn.Driver.summarize st in
  Fmt.pr "GVN summary: %d values, %d constant, %d classes, %d passes@."
    summary.Pgvn.Driver.values summary.Pgvn.Driver.constant_values
    summary.Pgvn.Driver.congruence_classes summary.Pgvn.Driver.passes;

  (* Query individual facts. *)
  Fmt.pr "x (v%d) and y (v%d) congruent under the a==b guard: %b@." x y
    (Pgvn.Driver.congruent st x y);
  (match Pgvn.Driver.value_constant st d with
  | Some c -> Fmt.pr "y - x proved constant: %d@." c
  | None -> Fmt.pr "y - x not constant@.");

  (* Rewrite using the analysis and clean up. *)
  let g = Transform.Simplify_cfg.fixpoint (Transform.Dce.run (Transform.Apply.rebuild st f)) in
  Fmt.pr "@.Optimized routine:@.%a@." Ir.Printer.pp g;

  (* The interpreter confirms the rewrite preserves behaviour. *)
  List.iter
    (fun (a, b) ->
      let args = [| a; b |] in
      Fmt.pr "F(%d, %d) = %a / optimized %a@." a b Ir.Interp.pp_result (Ir.Interp.run f args)
        Ir.Interp.pp_result (Ir.Interp.run g args))
    [ (3, 3); (2, 5); (0, 0) ]

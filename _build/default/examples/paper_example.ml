(* The paper's running example (Figures 1 and 2): routine R always returns
   1, and the full unified algorithm is the only configuration that proves
   it. This example reruns the §2.10 walkthrough across configurations. *)

let ret_constant st f =
  let result = ref None in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    match Ir.Func.instr f i with
    | Ir.Func.Return v when Pgvn.State.block_reachable st (Ir.Func.block_of_instr f i) ->
        result := Pgvn.Driver.value_constant st v
    | _ -> ()
  done;
  !result

let () =
  Fmt.pr "Routine R (paper Figure 1):@.%s@." Workload.Corpus.routine_r_src;
  let f = Workload.Corpus.func_of_src Workload.Corpus.routine_r_src in
  Fmt.pr "SSA form: %d blocks, %d instructions@.@." (Ir.Func.num_blocks f)
    (Ir.Func.num_instrs f);

  (* Empirically: R returns 1 on every input we try. *)
  let rng = Util.Prng.create 2002 in
  let all_one = ref true in
  for _ = 1 to 1000 do
    let args = Array.init 3 (fun _ -> Util.Prng.range rng (-50) 50) in
    match Ir.Interp.run f args with Ir.Interp.Ret 1 -> () | _ -> all_one := false
  done;
  Fmt.pr "Interpreter: R returned 1 on 1000 random inputs: %b@.@." !all_one;

  (* Which configurations can prove it? *)
  let configs =
    [
      ("full (practical)", Pgvn.Config.full);
      ("full (complete)", { Pgvn.Config.full with variant = Pgvn.Config.Complete });
      ("no value inference", { Pgvn.Config.full with value_inference = false });
      ("no predicate inference", { Pgvn.Config.full with predicate_inference = false });
      ("no phi-predication", { Pgvn.Config.full with phi_predication = false });
      ("no reassociation", { Pgvn.Config.full with reassociation = false });
      ("Click emulation", Pgvn.Config.emulate_click);
      ("Wegman-Zadeck SCCP emulation", Pgvn.Config.emulate_sccp);
      ("AWZ emulation", Pgvn.Config.emulate_awz);
      ("balanced", Pgvn.Config.balanced);
      ("pessimistic", Pgvn.Config.pessimistic);
    ]
  in
  Fmt.pr "%-32s %-14s %s@." "configuration" "return value" "(unreachable/constant/classes, passes)";
  List.iter
    (fun (name, config) ->
      let st = Pgvn.Driver.run config f in
      let s = Pgvn.Driver.summarize st in
      let r =
        match ret_constant st f with Some c -> Printf.sprintf "const %d" c | None -> "unknown"
      in
      Fmt.pr "%-32s %-14s (%d/%d/%d, %d)@." name r s.Pgvn.Driver.unreachable_values
        s.Pgvn.Driver.constant_values s.Pgvn.Driver.congruence_classes s.Pgvn.Driver.passes)
    configs;
  Fmt.pr
    "@.As the paper claims (§1.3): only the unified algorithm with all analyses@.\
     enabled proves R ≡ 1 — disabling any single analysis breaks the chain.@."

(* CFG analyses, each validated against a brute-force reference on random
   graphs: dominators, postdominators, dominance frontiers, the incremental
   dominator tree, RPO, loops and liveness. *)

(* Random digraph on n nodes with entry 0. *)
let random_graph rng n ~extra_edges =
  let succ = Array.make n [] in
  (* A random spanning structure keeps most nodes reachable. *)
  for v = 1 to n - 1 do
    let u = Util.Prng.int rng v in
    succ.(u) <- v :: succ.(u)
  done;
  for _ = 1 to extra_edges do
    let u = Util.Prng.int rng n and v = Util.Prng.int rng n in
    succ.(u) <- v :: succ.(u)
  done;
  Analysis.Graph.make ~entry:0 (Array.map Array.of_list succ)

(* Reference dominators by iterative set intersection over bitsets. *)
let brute_dominators (g : Analysis.Graph.t) =
  let n = g.Analysis.Graph.n in
  let full = Array.make n true in
  let dom = Array.init n (fun v -> if v = g.Analysis.Graph.entry then Array.make n false else Array.copy full) in
  dom.(g.Analysis.Graph.entry).(g.Analysis.Graph.entry) <- true;
  let reach = Analysis.Graph.reachable g in
  let changed = ref true in
  while !changed do
    changed := false;
    for v = 0 to n - 1 do
      if v <> g.Analysis.Graph.entry && reach.(v) then begin
        let inter = Array.make n true in
        let any = ref false in
        Array.iter
          (fun p ->
            if reach.(p) then begin
              any := true;
              for i = 0 to n - 1 do
                inter.(i) <- inter.(i) && dom.(p).(i)
              done
            end)
          g.Analysis.Graph.pred.(v);
        if not !any then Array.fill inter 0 n false;
        inter.(v) <- true;
        if inter <> dom.(v) then begin
          dom.(v) <- inter;
          changed := true
        end
      end
    done
  done;
  (dom, reach)

let prop_dominators =
  QCheck.Test.make ~name:"Dom.compute matches brute-force dominator sets" ~count:80
    QCheck.(pair (int_bound 100000) (int_range 1 14))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng (2 * n)) in
      let dom = Analysis.Dom.compute g in
      let ref_dom, reach = brute_dominators g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          let expected = reach.(a) && reach.(b) && ref_dom.(b).(a) in
          if Analysis.Dom.dominates dom a b <> expected then ok := false
        done;
        if reach.(a) <> Analysis.Dom.reachable dom a then ok := false
      done;
      !ok)

let prop_nca =
  QCheck.Test.make ~name:"Dom.nca is the deepest common dominator" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 2 12))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng n) in
      let dom = Analysis.Dom.compute g in
      let reach = Analysis.Graph.reachable g in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if reach.(a) && reach.(b) then begin
            let z = Analysis.Dom.nca dom a b in
            if not (Analysis.Dom.dominates dom z a && Analysis.Dom.dominates dom z b) then
              ok := false;
            (* No strictly deeper common dominator. *)
            for c = 0 to n - 1 do
              if
                reach.(c)
                && Analysis.Dom.dominates dom c a
                && Analysis.Dom.dominates dom c b
                && not (Analysis.Dom.dominates dom c z)
              then ok := false
            done
          end
        done
      done;
      !ok)

let prop_domfront =
  QCheck.Test.make ~name:"dominance frontiers match their definition" ~count:80
    QCheck.(pair (int_bound 100000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng (2 * n)) in
      let dom = Analysis.Dom.compute g in
      let df = Analysis.Domfront.compute g dom in
      let reach = Analysis.Graph.reachable g in
      (* DF(a) = { y | a dominates some pred of y, a does not strictly dominate y } *)
      let ok = ref true in
      for a = 0 to n - 1 do
        if reach.(a) then
          for y = 0 to n - 1 do
            if reach.(y) then begin
              let expected =
                Array.exists
                  (fun p -> reach.(p) && Analysis.Dom.dominates dom a p)
                  g.Analysis.Graph.pred.(y)
                && not (Analysis.Dom.strictly_dominates dom a y)
              in
              let got = Array.exists (fun x -> x = y) df.(a) in
              if expected <> got then ok := false
            end
          done
      done;
      !ok)

let prop_postdom =
  QCheck.Test.make ~name:"postdominators = dominators of the reversed graph" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng n) in
      let pd = Analysis.Postdom.compute g in
      (* Reference: a postdominates b iff every path from b to any exit
         passes a. Brute force via path search avoiding a. *)
      let exits = ref [] in
      for v = 0 to n - 1 do
        if Array.length g.Analysis.Graph.succ.(v) = 0 then exits := v :: !exits
      done;
      let reaches_exit_avoiding a b =
        (* can b reach an exit without touching a? *)
        let seen = Array.make n false in
        let rec dfs v =
          if v = a || seen.(v) then false
          else begin
            seen.(v) <- true;
            List.mem v !exits || Array.exists dfs g.Analysis.Graph.succ.(v)
          end
        in
        dfs b
      in
      let reaches_exit b =
        let seen = Array.make n false in
        let rec dfs v =
          if seen.(v) then false
          else begin
            seen.(v) <- true;
            List.mem v !exits || Array.exists dfs g.Analysis.Graph.succ.(v)
          end
        in
        dfs b
      in
      let ok = ref true in
      for a = 0 to n - 1 do
        for b = 0 to n - 1 do
          if reaches_exit b && reaches_exit a then begin
            let expected = a = b || not (reaches_exit_avoiding a b) in
            if Analysis.Postdom.postdominates pd a b <> expected then ok := false
          end
        done
      done;
      !ok)

(* The incremental dominator tree must agree with from-scratch recomputation
   after every single insertion, for arbitrary insertion orders in which
   each edge's source is already reachable (the GVN setting). *)
let prop_inc_dom =
  QCheck.Test.make ~name:"Inc_dom agrees with recomputation after every insertion" ~count:120
    QCheck.(pair (int_bound 1000000) (int_range 2 14))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng (2 * n)) in
      let t = Analysis.Inc_dom.create ~n ~entry:0 in
      let edges = ref [] in
      for u = 0 to n - 1 do
        Array.iter (fun v -> edges := (u, v) :: !edges) g.Analysis.Graph.succ.(u)
      done;
      let ok = ref true in
      let rec insert_all remaining =
        let ready, blocked =
          List.partition (fun (u, _) -> Analysis.Inc_dom.is_reachable t u) remaining
        in
        match ready with
        | [] -> ()
        | _ ->
            (* pick one ready edge at random *)
            let k = Util.Prng.int rng (List.length ready) in
            let u, v = List.nth ready k in
            ignore (Analysis.Inc_dom.insert_edge t ~src:u ~dst:v);
            (* compare against recomputation *)
            let reference = Analysis.Inc_dom.recompute_reference t in
            for b = 0 to n - 1 do
              let ri = reference.Analysis.Dom.idom.(b) in
              let ii = Analysis.Inc_dom.idom t b in
              let rr = Analysis.Dom.reachable reference b in
              let ir = Analysis.Inc_dom.is_reachable t b in
              if rr <> ir then ok := false;
              if rr && b <> 0 && ri <> ii then ok := false;
              if rr && reference.Analysis.Dom.depth.(b) <> Analysis.Inc_dom.depth t b then
                ok := false
            done;
            insert_all (blocked @ List.filteri (fun i _ -> i <> k) ready)
      in
      insert_all !edges;
      !ok)

let prop_rpo =
  QCheck.Test.make ~name:"RPO numbers respect forward edges on DAG part" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 1 15))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng n) in
      let rpo = Analysis.Rpo.compute g in
      let reach = Analysis.Graph.reachable g in
      (* Every reachable node appears exactly once; entry is first. *)
      let count = Array.make n 0 in
      Array.iter (fun b -> count.(b) <- count.(b) + 1) rpo.Analysis.Rpo.order;
      let ok = ref (rpo.Analysis.Rpo.order.(0) = 0) in
      for v = 0 to n - 1 do
        if reach.(v) then begin
          if count.(v) <> 1 then ok := false;
          if rpo.Analysis.Rpo.number.(v) < 0 then ok := false
        end
        else if rpo.Analysis.Rpo.number.(v) >= 0 then ok := false
      done;
      (* Back-edge classification is consistent with the numbering. *)
      for u = 0 to n - 1 do
        if reach.(u) then
          Array.iter
            (fun v ->
              let back = Analysis.Rpo.is_back_edge rpo ~src:u ~dst:v in
              let expect = rpo.Analysis.Rpo.number.(v) <= rpo.Analysis.Rpo.number.(u) in
              if back <> expect then ok := false)
            g.Analysis.Graph.succ.(u)
      done;
      !ok)

let test_loops_nesting () =
  let src =
    "routine f(n) { i = 0; while (i < n) { j = 0; while (j < n) { j = j + 1; } i = i + 1; } \
     return i; }"
  in
  let f = Ssa.Construct.of_cir (Ir.Lower.lower_routine (Ir.Parser.parse_one src)) in
  let loops = Analysis.Loops.compute (Analysis.Graph.of_func f) in
  Alcotest.(check int) "max nesting" 2 (Analysis.Loops.max_nesting loops);
  Alcotest.(check int) "two loop headers" 2 (List.length loops.Analysis.Loops.headers)

let test_liveness_simple () =
  (* x is live across the branch; the constant only in the entry block. *)
  let src = "routine f(a) { x = a + 1; if (a > 0) { y = x + 1; return y; } return x; }" in
  let f = Ssa.Construct.of_cir (Ir.Lower.lower_routine (Ir.Parser.parse_one src)) in
  let live = Analysis.Liveness.compute f in
  (* Find the x value: the Add of param and const. *)
  let x = ref (-1) in
  for i = 0 to Ir.Func.num_instrs f - 1 do
    match Ir.Func.instr f i with
    | Ir.Func.Binop (Ir.Types.Add, _, _) when !x < 0 -> x := i
    | _ -> ()
  done;
  Alcotest.(check bool) "x live out of entry" true (Analysis.Liveness.live_out_at live 0 !x);
  (* x is live into every successor of entry. *)
  let succs = Ir.Func.succ_blocks f in
  Array.iter
    (fun s ->
      Alcotest.(check bool) "x live into successors" true (Analysis.Liveness.live_in_at live s !x))
    succs.(0)

(* Necessary conditions for liveness on arbitrary generated programs:
   cross-block operands are live-in at the using block, and φ arguments are
   live-out of the predecessor carrying them. *)
let prop_liveness_uses =
  QCheck.Test.make ~name:"liveness covers cross-block uses and phi args" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"lv" () in
      let live = Analysis.Liveness.compute f in
      let ok = ref true in
      for b = 0 to Ir.Func.num_blocks f - 1 do
        let blk = Ir.Func.block f b in
        Array.iter
          (fun i ->
            match Ir.Func.instr f i with
            | Ir.Func.Phi args ->
                Array.iteri
                  (fun ix v ->
                    let src = (Ir.Func.edge f blk.Ir.Func.preds.(ix)).Ir.Func.src in
                    if
                      Ir.Func.block_of_instr f v <> src
                      && not (Analysis.Liveness.live_in_at live src v)
                    then ok := false)
                  args
            | ins ->
                Ir.Func.iter_operands
                  (fun v ->
                    if Ir.Func.block_of_instr f v <> b && not (Analysis.Liveness.live_in_at live b v)
                    then ok := false)
                  ins)
          blk.Ir.Func.instrs
      done;
      !ok)

let prop_idom_is_dominator =
  QCheck.Test.make ~name:"idom chains enumerate exactly the dominators" ~count:60
    QCheck.(pair (int_bound 100000) (int_range 1 12))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng n) in
      let dom = Analysis.Dom.compute g in
      let ok = ref true in
      for b = 0 to n - 1 do
        if Analysis.Dom.reachable dom b then begin
          (* walk the idom chain; every node on it must dominate b, and the
             count must equal the number of dominators of b *)
          let chain = ref [] in
          let v = ref b in
          while !v >= 0 do
            chain := !v :: !chain;
            v := dom.Analysis.Dom.idom.(!v)
          done;
          List.iter (fun a -> if not (Analysis.Dom.dominates dom a b) then ok := false) !chain;
          let count = ref 0 in
          for a = 0 to n - 1 do
            if Analysis.Dom.dominates dom a b then incr count
          done;
          if !count <> List.length !chain then ok := false
        end
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Loop-nesting forest                                                 *)

(* Well-formedness of the forest against its definition: headers dominate
   their bodies, back tails really carry dominated back edges, nesting
   counts containing loops, loop_of is a smallest containing loop, the
   irreducible list is exactly the non-dominated retreating edges, and the
   flat view agrees. *)
let prop_loop_forest =
  QCheck.Test.make ~name:"loop forest is well-formed and matches the flat view" ~count:80
    QCheck.(pair (int_bound 100000) (int_range 1 14))
    (fun (seed, n) ->
      let rng = Util.Prng.create seed in
      let g = random_graph rng n ~extra_edges:(Util.Prng.int rng (2 * n)) in
      let dom = Analysis.Dom.compute g in
      let rpo = Analysis.Rpo.compute g in
      let fr = Analysis.Loops.forest ~dom g in
      let loops = fr.Analysis.Loops.loops in
      let contains (l : Analysis.Loops.loop) b =
        Array.exists (fun x -> x = b) l.Analysis.Loops.body
      in
      let ok = ref true in
      Array.iteri
        (fun li (l : Analysis.Loops.loop) ->
          let h = l.Analysis.Loops.header in
          if not (contains l h) then ok := false;
          Array.iter
            (fun b -> if not (Analysis.Dom.dominates dom h b) then ok := false)
            l.Analysis.Loops.body;
          if Array.length l.Analysis.Loops.back_tails = 0 then ok := false;
          Array.iter
            (fun t ->
              if not (contains l t) then ok := false;
              if not (Array.exists (fun v -> v = h) g.Analysis.Graph.succ.(t)) then ok := false;
              if not (Analysis.Rpo.is_back_edge rpo ~src:t ~dst:h) then ok := false;
              if not (Analysis.Dom.dominates dom h t) then ok := false)
            l.Analysis.Loops.back_tails;
          (* Parent: the smallest other loop containing the header, or -1. *)
          (match l.Analysis.Loops.parent with
          | -1 ->
              if l.Analysis.Loops.depth <> 1 then ok := false;
              Array.iteri
                (fun lj l' -> if lj <> li && contains l' h then ok := false)
                loops
          | p ->
              if not (contains loops.(p) h) then ok := false;
              if l.Analysis.Loops.depth <> loops.(p).Analysis.Loops.depth + 1 then ok := false))
        loops;
      for b = 0 to n - 1 do
        let cnt =
          Array.fold_left (fun acc l -> if contains l b then acc + 1 else acc) 0 loops
        in
        if fr.Analysis.Loops.nesting.(b) <> cnt then ok := false;
        if Analysis.Loops.depth_at fr b <> cnt then ok := false;
        match fr.Analysis.Loops.loop_of.(b) with
        | -1 -> if cnt <> 0 then ok := false
        | li ->
            if not (contains loops.(li) b) then ok := false;
            Array.iter
              (fun l ->
                if
                  contains l b
                  && Array.length l.Analysis.Loops.body
                     < Array.length loops.(li).Analysis.Loops.body
                then ok := false)
              loops
      done;
      (* Every retreating edge is accounted for: as a back tail of the loop
         headed at its target when the target dominates, in [irreducible]
         otherwise — and [irreducible] holds nothing else. *)
      List.iter
        (fun (u, v) ->
          if not (Analysis.Rpo.is_back_edge rpo ~src:u ~dst:v) then ok := false;
          if Analysis.Dom.dominates dom v u then ok := false)
        fr.Analysis.Loops.irreducible;
      for u = 0 to n - 1 do
        if rpo.Analysis.Rpo.number.(u) >= 0 then
          Array.iter
            (fun v ->
              if Analysis.Rpo.is_back_edge rpo ~src:u ~dst:v then
                if Analysis.Dom.dominates dom v u then begin
                  if
                    not
                      (Array.exists
                         (fun (l : Analysis.Loops.loop) ->
                           l.Analysis.Loops.header = v
                           && Array.exists (fun t -> t = u) l.Analysis.Loops.back_tails)
                         loops)
                  then ok := false
                end
                else if not (List.mem (u, v) fr.Analysis.Loops.irreducible) then ok := false)
            g.Analysis.Graph.succ.(u)
      done;
      (* The flat view and the historical API agree with the forest. *)
      let t = Analysis.Loops.compute g in
      if t.Analysis.Loops.nesting <> fr.Analysis.Loops.nesting then ok := false;
      let headers =
        List.sort compare
          (Array.to_list (Array.map (fun (l : Analysis.Loops.loop) -> l.Analysis.Loops.header) loops))
      in
      if t.Analysis.Loops.headers <> headers then ok := false;
      let expect_widen =
        List.sort_uniq compare (headers @ List.map snd fr.Analysis.Loops.irreducible)
      in
      if Analysis.Loops.widen_blocks fr <> expect_widen then ok := false;
      !ok)

(* Structured source programs never produce irreducible control flow: on the
   full benchmark suite every forest is purely natural and properly nested. *)
let test_loop_forest_benchmarks () =
  List.iter
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      List.iter
        (fun f ->
          let g = Analysis.Graph.of_func f in
          let dom = Analysis.Dom.compute g in
          let fr = Analysis.Loops.forest ~dom g in
          if fr.Analysis.Loops.irreducible <> [] then
            Alcotest.failf "%s: irreducible edges in structured code" b.Workload.Suite.name;
          let loops = fr.Analysis.Loops.loops in
          Array.iter
            (fun (l : Analysis.Loops.loop) ->
              Array.iter
                (fun blk ->
                  if not (Analysis.Dom.dominates dom l.Analysis.Loops.header blk) then
                    Alcotest.failf "%s: header does not dominate body" b.Workload.Suite.name)
                l.Analysis.Loops.body;
              match l.Analysis.Loops.parent with
              | -1 -> ()
              | p ->
                  (* A child loop's body nests entirely inside its parent's. *)
                  let parent = loops.(p) in
                  Array.iter
                    (fun blk ->
                      if not (Array.exists (fun x -> x = blk) parent.Analysis.Loops.body) then
                        Alcotest.failf "%s: child loop escapes its parent" b.Workload.Suite.name)
                    l.Analysis.Loops.body)
            loops;
          Array.iteri
            (fun blk li ->
              let depth = if li < 0 then 0 else loops.(li).Analysis.Loops.depth in
              if Analysis.Loops.depth_at fr blk <> depth then
                Alcotest.failf "%s: loop_of and nesting disagree" b.Workload.Suite.name)
            fr.Analysis.Loops.loop_of)
        funcs)
    (Workload.Suite.all ~scale:0.1 ())

(* The classic irreducible pair: two mutually-reaching blocks entered from
   the outside at both ends. No natural loop, one irreducible edge. *)
let test_irreducible () =
  let g = Analysis.Graph.make ~entry:0 [| [| 1; 2 |]; [| 2 |]; [| 1 |] |] in
  let fr = Analysis.Loops.forest g in
  Alcotest.(check int) "no natural loops" 0 (Array.length fr.Analysis.Loops.loops);
  Alcotest.(check (list (pair int int))) "one irreducible edge" [ (2, 1) ]
    fr.Analysis.Loops.irreducible;
  (* The widening set still covers the retreating target, so fixpoints over
     this graph terminate. *)
  Alcotest.(check (list int)) "widen at the retreating target" [ 1 ]
    (Analysis.Loops.widen_blocks fr)

(* ------------------------------------------------------------------ *)
(* Postdominator conventions (pinned; see postdom.mli)                 *)

let test_postdom_conventions () =
  (* No exit at all: a two-block cycle. Nothing postdominates anything,
     not even reflexively. *)
  let g = Analysis.Graph.make ~entry:0 [| [| 1 |]; [| 0 |] |] in
  let pd = Analysis.Postdom.compute g in
  Alcotest.(check bool) "no-exit: reaches_exit" false (Analysis.Postdom.reaches_exit pd 0);
  Alcotest.(check int) "no-exit: ipdom" (-1) (Analysis.Postdom.ipdom pd 0);
  Alcotest.(check bool) "no-exit: reflexive postdominates" false
    (Analysis.Postdom.postdominates pd 0 0);
  Alcotest.(check (option int)) "no-exit: nca" None (Analysis.Postdom.nca_opt pd 0 1);
  (* Two exits: their only common postdominator is the virtual exit, which
     is never exposed. *)
  let g = Analysis.Graph.make ~entry:0 [| [| 1; 2 |]; [||]; [||] |] in
  let pd = Analysis.Postdom.compute g in
  Alcotest.(check int) "two exits: ipdom of the branch" (-1) (Analysis.Postdom.ipdom pd 0);
  Alcotest.(check bool) "two exits: arm does not postdominate" false
    (Analysis.Postdom.postdominates pd 1 0);
  Alcotest.(check (option int)) "two exits: nca across arms" None (Analysis.Postdom.nca_opt pd 1 2);
  Alcotest.(check (option int)) "two exits: nca is reflexive" (Some 1)
    (Analysis.Postdom.nca_opt pd 1 1);
  (* One exit: the diamond join postdominates everything. *)
  let g = Analysis.Graph.make ~entry:0 [| [| 1; 2 |]; [| 3 |]; [| 3 |]; [||] |] in
  let pd = Analysis.Postdom.compute g in
  Alcotest.(check int) "diamond: ipdom of the branch is the join" 3
    (Analysis.Postdom.ipdom pd 0);
  Alcotest.(check (option int)) "diamond: nca of the arms is the join" (Some 3)
    (Analysis.Postdom.nca_opt pd 1 2);
  Alcotest.(check bool) "diamond: join postdominates entry" true
    (Analysis.Postdom.postdominates pd 3 0);
  (* Mixed divergence: one arm exits, the other spins forever. The diverging
     arm imposes no constraint on the exiting one. *)
  let g = Analysis.Graph.make ~entry:0 [| [| 1; 2 |]; [||]; [| 2 |] |] in
  let pd = Analysis.Postdom.compute g in
  Alcotest.(check bool) "divergent arm cannot reach exit" false
    (Analysis.Postdom.reaches_exit pd 2);
  Alcotest.(check bool) "exit arm postdominates entry" true
    (Analysis.Postdom.postdominates pd 1 0);
  Alcotest.(check int) "ipdom of entry skips the divergence" 1 (Analysis.Postdom.ipdom pd 0);
  Alcotest.(check (option int)) "nca with a diverging block" None (Analysis.Postdom.nca_opt pd 1 2)

(* ------------------------------------------------------------------ *)
(* The shared Dom.nca / Postdom.nca contract (pinned; see dom.mli):
   each tree offers a raising form and a total form, and they agree —
   nca_opt is None exactly where nca raises Invalid_argument, and Some of
   the same block everywhere else. *)

let test_nca_conventions () =
  let raises f = match f () with _ -> false | exception Invalid_argument _ -> true in
  (* Dominators: block 3 is unreachable; 1 and 2 join at 0. *)
  let g = Analysis.Graph.make ~entry:0 [| [| 1; 2 |]; [||]; [||]; [| 0 |] |] in
  let dom = Analysis.Dom.compute g in
  Alcotest.(check int) "dom: defined nca" 0 (Analysis.Dom.nca dom 1 2);
  Alcotest.(check (option int)) "dom: nca_opt agrees" (Some 0) (Analysis.Dom.nca_opt dom 1 2);
  Alcotest.(check (option int)) "dom: reflexive nca_opt" (Some 1) (Analysis.Dom.nca_opt dom 1 1);
  Alcotest.(check bool) "dom: unreachable raises" true (raises (fun () -> Analysis.Dom.nca dom 1 3));
  Alcotest.(check (option int)) "dom: unreachable is None" None (Analysis.Dom.nca_opt dom 1 3);
  (* Postdominators: two exits (1, 2) plus a no-exit spinner (3). The
     raising form raises exactly where the total form is None. *)
  let g = Analysis.Graph.make ~entry:0 [| [| 1; 2; 3 |]; [||]; [||]; [| 3 |] |] in
  let pd = Analysis.Postdom.compute g in
  Alcotest.(check int) "pdom: defined nca (reflexive)" 1 (Analysis.Postdom.nca pd 1 1);
  Alcotest.(check (option int)) "pdom: nca_opt agrees" (Some 1) (Analysis.Postdom.nca_opt pd 1 1);
  Alcotest.(check bool) "pdom: virtual-exit-only raises" true
    (raises (fun () -> Analysis.Postdom.nca pd 1 2));
  Alcotest.(check (option int)) "pdom: virtual-exit-only is None" None
    (Analysis.Postdom.nca_opt pd 1 2);
  Alcotest.(check bool) "pdom: no-exit block raises" true
    (raises (fun () -> Analysis.Postdom.nca pd 1 3));
  Alcotest.(check (option int)) "pdom: no-exit block is None" None
    (Analysis.Postdom.nca_opt pd 1 3)

(* ------------------------------------------------------------------ *)
(* Liveness vs a definitional reference                                *)

(* Naive per-block boolean-matrix liveness, straight from the definition:
   live_out = carried φ args ∪ successors' live_in;
   live_in  = upward-exposed uses ∪ (live_out \ defs). *)
let naive_liveness f =
  let ni = Ir.Func.num_instrs f and nb = Ir.Func.num_blocks f in
  let uses = Array.make_matrix nb ni false in
  let defs = Array.make_matrix nb ni false in
  let phi_out = Array.make_matrix nb ni false in
  for b = 0 to nb - 1 do
    let blk = Ir.Func.block f b in
    Array.iter
      (fun i ->
        let ins = Ir.Func.instr f i in
        (match ins with
        | Ir.Func.Phi args ->
            Array.iteri
              (fun ix _ ->
                let src = (Ir.Func.edge f blk.Ir.Func.preds.(ix)).Ir.Func.src in
                phi_out.(src).(args.(ix)) <- true)
              blk.Ir.Func.preds
        | _ -> Ir.Func.iter_operands (fun v -> if not defs.(b).(v) then uses.(b).(v) <- true) ins);
        if Ir.Func.defines_value ins then defs.(b).(i) <- true)
      blk.Ir.Func.instrs
  done;
  let live_in = Array.make_matrix nb ni false in
  let live_out = Array.make_matrix nb ni false in
  let succ = Ir.Func.succ_blocks f in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to nb - 1 do
      for v = 0 to ni - 1 do
        let o = phi_out.(b).(v) || Array.exists (fun s -> live_in.(s).(v)) succ.(b) in
        if o && not live_out.(b).(v) then begin
          live_out.(b).(v) <- true;
          changed := true
        end;
        let i = uses.(b).(v) || (live_out.(b).(v) && not defs.(b).(v)) in
        if i && not live_in.(b).(v) then begin
          live_in.(b).(v) <- true;
          changed := true
        end
      done
    done
  done;
  (live_in, live_out)

let prop_liveness_naive =
  QCheck.Test.make ~name:"bitset liveness equals the naive fixpoint exactly" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"lvn" () in
      let live = Analysis.Liveness.compute f in
      let ref_in, ref_out = naive_liveness f in
      let ok = ref true in
      for b = 0 to Ir.Func.num_blocks f - 1 do
        for v = 0 to Ir.Func.num_instrs f - 1 do
          if Analysis.Liveness.live_in_at live b v <> ref_in.(b).(v) then ok := false;
          if Analysis.Liveness.live_out_at live b v <> ref_out.(b).(v) then ok := false
        done
      done;
      !ok)

(* The case the old seeding missed: a φ argument defined in the loop latch
   itself is live out of the latch (the back edge carries it) but not live
   into it. *)
let test_liveness_phi_latch () =
  let src = "routine f(n) { i = 0; while (i < n) { i = i + 1; } return i; }" in
  let f = Ssa.Construct.of_cir (Ir.Lower.lower_routine (Ir.Parser.parse_one src)) in
  let live = Analysis.Liveness.compute f in
  let found = ref false in
  for b = 0 to Ir.Func.num_blocks f - 1 do
    let blk = Ir.Func.block f b in
    Array.iter
      (fun i ->
        match Ir.Func.instr f i with
        | Ir.Func.Phi args ->
            Array.iteri
              (fun ix _ ->
                let v = args.(ix) in
                let src = (Ir.Func.edge f blk.Ir.Func.preds.(ix)).Ir.Func.src in
                if Ir.Func.block_of_instr f v = src then begin
                  found := true;
                  Alcotest.(check bool) "latch-defined arg live out of latch" true
                    (Analysis.Liveness.live_out_at live src v);
                  Alcotest.(check bool) "latch-defined arg not live into latch" false
                    (Analysis.Liveness.live_in_at live src v)
                end)
              args
        | _ -> ())
      blk.Ir.Func.instrs
  done;
  Alcotest.(check bool) "found a latch-defined phi argument" true !found

let suite =
  [
    QCheck_alcotest.to_alcotest prop_dominators;
    QCheck_alcotest.to_alcotest prop_idom_is_dominator;
    QCheck_alcotest.to_alcotest prop_liveness_uses;
    QCheck_alcotest.to_alcotest prop_nca;
    QCheck_alcotest.to_alcotest prop_domfront;
    QCheck_alcotest.to_alcotest prop_postdom;
    QCheck_alcotest.to_alcotest prop_inc_dom;
    QCheck_alcotest.to_alcotest prop_rpo;
    QCheck_alcotest.to_alcotest prop_loop_forest;
    QCheck_alcotest.to_alcotest prop_liveness_naive;
    Alcotest.test_case "loop nesting depth" `Quick test_loops_nesting;
    Alcotest.test_case "loop forest on the benchmark suite" `Quick test_loop_forest_benchmarks;
    Alcotest.test_case "irreducible retreating edges" `Quick test_irreducible;
    Alcotest.test_case "postdominator conventions" `Quick test_postdom_conventions;
    Alcotest.test_case "nca conventions" `Quick test_nca_conventions;
    Alcotest.test_case "liveness on a diamond" `Quick test_liveness_simple;
    Alcotest.test_case "liveness of a latch-defined phi arg" `Quick test_liveness_phi_latch;
  ]

(* The sparse abstract-interpretation layer: lattice laws and transfer
   soundness for both domains (randomized), agreement of the constant
   domain with the independent SCCP baseline, end-to-end soundness of the
   interval facts against the interpreter, precision pins for refinement
   and widening, and the static cross-checker — which must accept every
   honest GVN run and refute one with a seeded implication-table fault. *)

module Itv = Absint.Itv
module Konst = Absint.Konst

(* --- generators --- *)

let gen_bound =
  QCheck.Gen.(frequency [ (4, map Option.some (int_range (-40) 40)); (1, return None) ])

let gen_itv =
  QCheck.Gen.(
    frequency
      [
        (1, return Itv.Bot);
        ( 8,
          map2
            (fun lo hi ->
              match (lo, hi) with
              | Some l, Some h when l > h -> Itv.make (Some h) (Some l)
              | _ -> Itv.make lo hi)
            gen_bound gen_bound );
      ])

let arb_itv = QCheck.make ~print:(Fmt.to_to_string Itv.pp) gen_itv

let gen_konst =
  QCheck.Gen.(
    frequency
      [
        (1, return Konst.Bot);
        (4, map (fun k -> Konst.Cst k) (int_range (-20) 20));
        (2, map (fun v -> Konst.Copy v) (int_range 0 5));
        (1, return Konst.Any);
      ])

let arb_konst = QCheck.make ~print:(Fmt.to_to_string Konst.pp) gen_konst

let all_binops =
  Ir.Types.[ Add; Sub; Mul; Div; Rem; And; Or; Xor; Shl; Shr ]

let all_cmps = Ir.Types.[ Eq; Ne; Lt; Le; Gt; Ge ]
let all_unops = Ir.Types.[ Neg; Lnot; Bnot ]

(* A concrete member of an interval, clamped to a finite window (None when
   the window misses the interval — the property is then vacuous). *)
let sample rng = function
  | Itv.Bot -> None
  | Itv.Itv (lo, hi) ->
      let l = match lo with Some l -> max l (-60) | None -> -60 in
      let h = match hi with Some h -> min h 60 | None -> 60 in
      if l > h then None else Some (Util.Prng.range rng l h)

(* --- lattice laws (satellite: join laws + widen/transfer properties) --- *)

let lattice_laws name arb equal join widen bottom top =
  [
    QCheck.Test.make ~name:(name ^ ": join is commutative") ~count:500
      (QCheck.pair arb arb)
      (fun (a, b) -> equal (join a b) (join b a));
    QCheck.Test.make ~name:(name ^ ": join is associative") ~count:500
      (QCheck.triple arb arb arb)
      (fun (a, b, c) -> equal (join a (join b c)) (join (join a b) c));
    QCheck.Test.make ~name:(name ^ ": join is idempotent") ~count:500 arb (fun a ->
        equal (join a a) a);
    QCheck.Test.make ~name:(name ^ ": bottom is the identity") ~count:500 arb (fun a ->
        equal (join bottom a) a);
    QCheck.Test.make ~name:(name ^ ": top absorbs") ~count:500 arb (fun a ->
        equal (join top a) top);
    QCheck.Test.make ~name:(name ^ ": widen covers the join") ~count:500
      (QCheck.pair arb arb)
      (fun (a, b) ->
        let j = join a b in
        let w = widen a j in
        equal (join w j) w);
  ]

let itv_laws = lattice_laws "itv" arb_itv Itv.equal Itv.join Itv.widen Itv.bottom Itv.top

let konst_laws =
  lattice_laws "konst" arb_konst Konst.equal Konst.join Konst.widen Konst.bottom Konst.top

(* --- concrete soundness of the interval transfer functions --- *)

let prop_itv_binop_sound =
  QCheck.Test.make ~name:"itv: binop transfer is sound" ~count:400
    QCheck.(triple arb_itv arb_itv (int_bound 1_000_000))
    (fun (a, b, seed) ->
      let rng = Util.Prng.create seed in
      List.for_all
        (fun op ->
          match (sample rng a, sample rng b) with
          | Some x, Some y -> (
              let d = Itv.binop op (0, a) (1, b) in
              match Ir.Types.eval_binop op x y with
              | r -> Itv.mem r d
              | exception Ir.Types.Division_by_zero -> true)
          | _ -> true)
        all_binops)

let prop_itv_unop_sound =
  QCheck.Test.make ~name:"itv: unop transfer is sound" ~count:400
    QCheck.(pair arb_itv (int_bound 1_000_000))
    (fun (a, seed) ->
      let rng = Util.Prng.create seed in
      List.for_all
        (fun op ->
          match sample rng a with
          | Some x -> Itv.mem (Ir.Types.eval_unop op x) (Itv.unop op (0, a))
          | None -> true)
        all_unops)

let prop_itv_cmp_sound =
  QCheck.Test.make ~name:"itv: cmp transfer is sound (incl. reflexive)" ~count:400
    QCheck.(triple arb_itv arb_itv (int_bound 1_000_000))
    (fun (a, b, seed) ->
      let rng = Util.Prng.create seed in
      List.for_all
        (fun op ->
          let distinct =
            match (sample rng a, sample rng b) with
            | Some x, Some y -> Itv.mem (Ir.Types.eval_cmp op x y) (Itv.cmp op (0, a) (1, b))
            | _ -> true
          in
          let reflexive =
            match sample rng a with
            | Some x -> Itv.mem (Ir.Types.eval_cmp op x x) (Itv.cmp op (0, a) (0, a))
            | None -> true
          in
          distinct && reflexive)
        all_cmps)

let prop_itv_refine_sound =
  (* Refining by a satisfied constraint never loses the witness. *)
  QCheck.Test.make ~name:"itv: refine is sound" ~count:400
    QCheck.(triple arb_itv (int_range (-30) 30) (int_bound 1_000_000))
    (fun (a, k, seed) ->
      let rng = Util.Prng.create seed in
      List.for_all
        (fun op ->
          match sample rng a with
          | Some x when Ir.Types.eval_cmp op x k <> 0 -> Itv.mem x (Itv.refine a op k)
          | _ -> true)
        all_cmps)

let prop_itv_transfer_monotone =
  (* Monotonicity of binop and refine in each argument: widening an input
     can only widen the output. *)
  QCheck.Test.make ~name:"itv: transfer functions are monotone" ~count:300
    QCheck.(triple arb_itv arb_itv arb_itv)
    (fun (a, b, c) ->
      let a' = Itv.join a c in
      List.for_all
        (fun op ->
          Itv.leq (Itv.binop op (0, a) (1, b)) (Itv.binop op (0, a') (1, b))
          && Itv.leq (Itv.binop op (0, b) (1, a)) (Itv.binop op (0, b) (1, a')))
        all_binops
      && List.for_all
           (fun op ->
             List.for_all
               (fun k -> Itv.leq (Itv.refine a op k) (Itv.refine a' op k))
               [ -3; 0; 7 ])
           all_cmps)

let prop_konst_transfer_sound =
  (* A Cst result of the constant domain is the concrete result. *)
  QCheck.Test.make ~name:"konst: folded constants are exact" ~count:500
    QCheck.(pair (int_range (-25) 25) (int_range (-25) 25))
    (fun (x, y) ->
      List.for_all
        (fun op ->
          match Konst.binop op (0, Konst.Cst x) (1, Konst.Cst y) with
          | Konst.Cst r -> (
              match Ir.Types.eval_binop op x y with
              | r' -> r = r'
              | exception Ir.Types.Division_by_zero -> false)
          | Konst.Any -> (
              (* folding only declines on a trap *)
              match Ir.Types.eval_binop op x y with
              | _ -> false
              | exception Ir.Types.Division_by_zero -> true)
          | _ -> false)
        all_binops
      && List.for_all
           (fun op ->
             Konst.cmp op (0, Konst.Cst x) (1, Konst.Cst y)
             = Konst.Cst (Ir.Types.eval_cmp op x y))
           all_cmps)

(* --- end-to-end: interval facts hold on every observed execution --- *)

let prop_ranges_sound_on_programs =
  QCheck.Test.make ~name:"interval facts hold on every execution" ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"ai" () in
      let res = Absint.Ranges.run f in
      let rng = Util.Prng.create (seed + 7) in
      let ok = ref true in
      for _ = 1 to 8 do
        let args = Array.init 8 (fun _ -> Util.Prng.range rng (-15) 15) in
        ignore
          (Ir.Interp.run_instrumented ~fuel:200_000
             ~on_def:(fun i v ->
               if not (Itv.mem v res.Absint.Ranges.facts.(i)) then ok := false)
             ~on_edge:(fun e -> if not res.Absint.Ranges.edge_exec.(e) then ok := false)
             ~on_block:(fun b -> if not res.Absint.Ranges.block_exec.(b) then ok := false)
             f args)
      done;
      !ok)

(* --- differential: Konst without refinement is exactly the SCCP baseline
   (same two-worklist fixpoint, independently implemented) --- *)

let prop_konst_matches_sccp =
  QCheck.Test.make ~name:"konst (refine off) agrees with the SCCP baseline" ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"sc" () in
      let k = Absint.Consts.run ~refine:false f in
      let s = Baselines.Sccp.run f in
      k.Absint.Consts.block_exec = s.Baselines.Sccp.block_executable
      && k.Absint.Consts.edge_exec = s.Baselines.Sccp.edge_executable
      &&
      let ok = ref true in
      Array.iteri
        (fun i d ->
          if Ir.Func.defines_value (Ir.Func.instr f i) then
            let agree =
              (* The lattices correspond under the inverted naming: Sccp's
                 Top is "unvisited" (our Bot), its Bottom is "varying" (our
                 Any — and Copy, which Sccp cannot express). *)
              match (d, s.Baselines.Sccp.value.(i)) with
              | Konst.Cst a, Baselines.Sccp.Const b -> a = b
              | Konst.Bot, Baselines.Sccp.Top -> true
              | (Konst.Any | Konst.Copy _), Baselines.Sccp.Bottom -> true
              | _ -> false
            in
            if not agree then ok := false)
        k.Absint.Consts.facts;
      !ok)

(* --- precision pins: refinement and widening behave as designed --- *)

let test_widening_terminates_precisely () =
  let f =
    Helpers.func_of_src "routine w(a) { i = 0; while (i < 10) { i = i + 1; } return i; }"
  in
  let res = Absint.Ranges.run f in
  let ret_block = ref (-1) and ret_val = ref (-1) in
  Array.iteri
    (fun idx ins ->
      match ins with
      | Ir.Func.Return v ->
          ret_block := Ir.Func.block_of_instr f idx;
          ret_val := v
      | _ -> ())
    f.Ir.Func.instrs;
  (* The header fact widens to [0, +inf); the exit guard narrows the
     returned environment to [10, +inf) — refinement recovering what
     widening gave up. *)
  let d = Absint.Ranges.env_at res !ret_block !ret_val in
  Alcotest.(check string)
    "exit environment" "[10, +inf]"
    (Fmt.to_to_string Itv.pp d)

let test_refinement_proves_contradiction_dead () =
  let f =
    Helpers.func_of_src
      "routine c(a) { r = 0; if (a > 5) { if (a < 3) { r = 9; } } return r; }"
  in
  let res = Absint.Ranges.run f in
  let b9 = ref (-1) in
  Array.iteri
    (fun i ins ->
      match ins with Ir.Func.Const 9 -> b9 := Ir.Func.block_of_instr f i | _ -> ())
    f.Ir.Func.instrs;
  Alcotest.(check bool) "found the guarded block" true (!b9 >= 0);
  Alcotest.(check bool)
    "contradictorily-guarded block cannot execute" false
    res.Absint.Ranges.block_exec.(!b9)

(* Order-robust disequality refinement. The constraints a block inherits
   arrive in dominator-chain order, and switch-case exclusions in case
   order — neither is a semantic order. Disequalities bite only at domain
   boundaries, so both sites iterate their refinement folds to a fixpoint;
   these pins fail under a single-pass fold. *)

let test_refinement_ne_order_robust () =
  (* x ≠ 3 is learned *before* x > 2 on the dominator chain, yet the
     inner block still needs x ∈ [4, ∞): a < 4 there is contradictory. *)
  let f =
    Helpers.func_of_src
      "routine n(a) { r = 0; if (a != 3) { if (a > 2) { if (a < 4) { r = 9; } } } return r; }"
  in
  let res = Absint.Ranges.run f in
  let b9 = ref (-1) in
  Array.iteri
    (fun i ins ->
      match ins with Ir.Func.Const 9 -> b9 := Ir.Func.block_of_instr f i | _ -> ())
    f.Ir.Func.instrs;
  Alcotest.(check bool) "found the guarded block" true (!b9 >= 0);
  Alcotest.(check bool)
    "boundary disequality sharpens regardless of order" false
    res.Absint.Ranges.block_exec.(!b9)

let test_switch_default_decided () =
  (* x ∈ [3,5] and the cases cover {4; 5; 3} — but discovering that the
     default is dead requires re-folding the exclusions: the first pass
     over (≠4, ≠5, ≠3) only narrows [3,5] to [4,4]. *)
  let f =
    Helpers.func_of_src
      "routine sd(x) {\n\
      \  if (x >= 3) { if (x <= 5) {\n\
      \    switch (x) { case 4: { return 1; } case 5: { return 2; } case 3: { return 3; } }\n\
      \    return 9; } }\n\
      \  return 0; }"
  in
  let res = Absint.Ranges.run f in
  let b9 = ref (-1) in
  Array.iteri
    (fun i ins ->
      match ins with Ir.Func.Const 9 -> b9 := Ir.Func.block_of_instr f i | _ -> ())
    f.Ir.Func.instrs;
  Alcotest.(check bool) "found the default block" true (!b9 >= 0);
  Alcotest.(check bool)
    "exhaustive cases prove the default dead" false
    res.Absint.Ranges.block_exec.(!b9)

(* --- the static cross-checker --- *)

let assert_crosscheck_clean name (r : Absint.Crosscheck.report) =
  if not (Absint.Crosscheck.ok r) then
    Alcotest.failf "%s: %s" name (Fmt.to_to_string Absint.Crosscheck.pp_report r)

let test_crosscheck_corpus () =
  List.iter
    (fun (name, src) ->
      let f = Helpers.func_of_src src in
      List.iter
        (fun (cname, config) ->
          let st = Pgvn.Driver.run config f in
          assert_crosscheck_clean
            (Printf.sprintf "%s under %s" name cname)
            (Absint.Crosscheck.run st))
        Helpers.all_configs)
    Workload.Corpus.all_named

let test_crosscheck_benchmarks () =
  (* The acceptance bar: every decided branch and φ-predicate inference on
     all ten workload benchmarks, zero contradictions — purely statically. *)
  let branches = ref 0 and inferences = ref 0 and phis = ref 0 in
  List.iter
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      List.iter
        (fun f ->
          List.iter
            (fun config ->
              let st = Pgvn.Driver.run config f in
              let r = Absint.Crosscheck.run st in
              branches := !branches + r.Absint.Crosscheck.branches_checked;
              inferences := !inferences + r.Absint.Crosscheck.inferences_checked;
              phis := !phis + r.Absint.Crosscheck.phi_preds_checked;
              assert_crosscheck_clean b.Workload.Suite.name r)
            [ Pgvn.Config.full; Pgvn.Config.full_extended ])
        funcs)
    (Workload.Suite.all ~scale:0.1 ());
  Alcotest.(check bool) "some branch claims were checked" true (!branches > 0);
  Alcotest.(check bool) "some inference claims were checked" true (!inferences > 0);
  Alcotest.(check bool) "some phi-predicate claims were checked" true (!phis > 0)

let prop_crosscheck_generated =
  QCheck.Test.make ~name:"crosscheck accepts honest runs on generated programs"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"xc" () in
      let st = Pgvn.Driver.run Pgvn.Config.full f in
      Absint.Crosscheck.ok (Absint.Crosscheck.run st))

let test_pipeline_crosscheck_hook () =
  (* The pipeline integration: every GVN pass instance is cross-checked
     before its rewrite is applied, and the reports ride on the result. *)
  List.iter
    (fun (name, src) ->
      let f = Helpers.func_of_src src in
      let r =
        let opts = Transform.Pipeline.Options.(default |> with_crosscheck true) in
        Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f
      in
      Alcotest.(check bool)
        (name ^ ": one report per GVN pass")
        true
        (List.length r.Transform.Pipeline.crosschecks = 2);
      List.iter
        (fun (pass, rep) -> assert_crosscheck_clean (name ^ "/" ^ pass) rep)
        r.Transform.Pipeline.crosschecks)
    Workload.Corpus.all_named

let test_crosscheck_catches_faulty_inference () =
  (* Seeded mutant: flip every False implication verdict to True — the
     engine then believes [a < 3] under the dominating fact [a > 5] and
     folds the comparison to 1. The cross-checker must refute this from
     the interval semantics alone, no interpreter involved. *)
  let f =
    Helpers.func_of_src "routine m(a) { r = 0; if (a > 5) { r = a < 3; } return r; }"
  in
  let honest = Pgvn.Driver.run Pgvn.Config.full f in
  assert_crosscheck_clean "honest run" (Absint.Crosscheck.run honest);
  let mutant =
    Pgvn.Infer.with_fault
      (function Pgvn.Infer.False -> Pgvn.Infer.True | v -> v)
      (fun () -> Pgvn.Driver.run Pgvn.Config.full f)
  in
  let r = Absint.Crosscheck.run mutant in
  Alcotest.(check bool) "mutant run is refuted" false (Absint.Crosscheck.ok r)

let suite =
  List.map QCheck_alcotest.to_alcotest (itv_laws @ konst_laws)
  @ List.map QCheck_alcotest.to_alcotest
      [
        prop_itv_binop_sound;
        prop_itv_unop_sound;
        prop_itv_cmp_sound;
        prop_itv_refine_sound;
        prop_itv_transfer_monotone;
        prop_konst_transfer_sound;
        prop_ranges_sound_on_programs;
        prop_konst_matches_sccp;
        prop_crosscheck_generated;
      ]
  @ [
      Alcotest.test_case "widening + exit-guard refinement" `Quick
        test_widening_terminates_precisely;
      Alcotest.test_case "disequality refinement is order-robust" `Quick
        test_refinement_ne_order_robust;
      Alcotest.test_case "exhaustive switch cases decide the default" `Quick
        test_switch_default_decided;
      Alcotest.test_case "contradictory guards prove a block dead" `Quick
        test_refinement_proves_contradiction_dead;
      Alcotest.test_case "crosscheck: corpus clean under every config" `Quick
        test_crosscheck_corpus;
      Alcotest.test_case "crosscheck: ten benchmarks, zero contradictions" `Quick
        test_crosscheck_benchmarks;
      Alcotest.test_case "crosscheck: pipeline hook reports every GVN pass" `Quick
        test_pipeline_crosscheck_hook;
      Alcotest.test_case "crosscheck: seeded inference fault is caught" `Quick
        test_crosscheck_catches_faulty_inference;
    ]

(* Exhaustive soundness of the predicate implication logic (§2.7): for every
   pair of comparisons over two symbolic values and small constants, and for
   every integer assignment, a True/False verdict must agree with the
   ground truth whenever the fact holds. *)

module E = Pgvn.Expr
module I = Pgvn.Infer

let ops = [ Ir.Types.Eq; Ne; Lt; Le; Gt; Ge ]

(* Atom universe: two values (ids 0, 1) and constants -2..2. *)
let atoms =
  E.Value 0 :: E.Value 1 :: List.init 5 (fun i -> E.Const (i - 2))

let same a b =
  match (a, b) with
  | E.Value v, E.Value w -> v = w
  | E.Const x, E.Const y -> x = y
  | _ -> false

let const = function E.Const n -> Some n | _ -> None

let eval_atom env = function
  | E.Const n -> n
  | E.Value v -> env.(v)
  | _ -> assert false

let holds env = function
  | E.Cmp (op, a, b) -> Ir.Types.eval_cmp op (eval_atom env a) (eval_atom env b) = 1
  | _ -> assert false

let test_exhaustive_soundness () =
  let checked = ref 0 in
  List.iter
    (fun fop ->
      List.iter
        (fun qop ->
          List.iter
            (fun fa ->
              List.iter
                (fun fb ->
                  List.iter
                    (fun qa ->
                      List.iter
                        (fun qb ->
                          let fact = E.Cmp (fop, fa, fb) in
                          let query = E.Cmp (qop, qa, qb) in
                          match
                            I.decide ~same ~const ~fop ~fa ~fb ~qop ~qa ~qb
                          with
                          | I.Unknown -> ()
                          | verdict ->
                              (* check against every assignment *)
                              for x = -4 to 4 do
                                for y = -4 to 4 do
                                  let env = [| x; y |] in
                                  if holds env fact then begin
                                    incr checked;
                                    let q = holds env query in
                                    match verdict with
                                    | I.True ->
                                        if not q then
                                          Alcotest.failf "unsound True: %s => %s with x=%d y=%d"
                                            (E.to_string fact) (E.to_string query) x y
                                    | I.False ->
                                        if q then
                                          Alcotest.failf "unsound False: %s => %s with x=%d y=%d"
                                            (E.to_string fact) (E.to_string query) x y
                                    | I.Unknown -> ()
                                  end
                                done
                              done)
                        atoms)
                    atoms)
                atoms)
            atoms)
        ops)
    ops;
  Alcotest.(check bool) "exercised many decided cases" true (!checked > 10_000)

(* Completeness spot checks: the paper's motivating inferences must be
   decided, not Unknown. *)
let destructure = function E.Cmp (op, a, b) -> (op, a, b) | _ -> assert false

let check_verdict msg expected fact query =
  let fop, fa, fb = destructure fact and qop, qa, qb = destructure query in
  let got = I.decide ~same ~const ~fop ~fa ~fb ~qop ~qa ~qb in
  let to_s = function I.True -> "True" | I.False -> "False" | I.Unknown -> "Unknown" in
  Alcotest.(check string) msg (to_s expected) (to_s got)

let test_paper_inferences () =
  (* "the value of X < 0 is false in a block dominated by X > 0" *)
  check_verdict "X>0 refutes X<0" I.False
    (E.Cmp (Ir.Types.Gt, E.Value 0, E.Const 0))
    (E.Cmp (Ir.Types.Lt, E.Value 0, E.Const 0));
  (* Figure 2: Z > 1 makes Z < 1 false (via Z > I with I = 1). *)
  check_verdict "Z>1 refutes Z<1" I.False
    (E.Cmp (Ir.Types.Gt, E.Value 0, E.Const 1))
    (E.Cmp (Ir.Types.Lt, E.Value 0, E.Const 1));
  (* Same-operand table. *)
  check_verdict "X=Y implies X<=Y" I.True
    (E.Cmp (Ir.Types.Eq, E.Value 0, E.Value 1))
    (E.Cmp (Ir.Types.Le, E.Value 0, E.Value 1));
  check_verdict "X<Y implies Y>=X ... mirrored" I.True
    (E.Cmp (Ir.Types.Lt, E.Value 0, E.Value 1))
    (E.Cmp (Ir.Types.Gt, E.Value 1, E.Value 0));
  check_verdict "X<Y refutes X=Y" I.False
    (E.Cmp (Ir.Types.Lt, E.Value 0, E.Value 1))
    (E.Cmp (Ir.Types.Eq, E.Value 0, E.Value 1));
  (* Interval reasoning across different constants. *)
  check_verdict "X>3 implies X>1" I.True
    (E.Cmp (Ir.Types.Gt, E.Value 0, E.Const 3))
    (E.Cmp (Ir.Types.Gt, E.Value 0, E.Const 1));
  check_verdict "X>3 implies X!=2" I.True
    (E.Cmp (Ir.Types.Gt, E.Value 0, E.Const 3))
    (E.Cmp (Ir.Types.Ne, E.Value 0, E.Const 2));
  check_verdict "X>3 refutes X=0" I.False
    (E.Cmp (Ir.Types.Gt, E.Value 0, E.Const 3))
    (E.Cmp (Ir.Types.Eq, E.Value 0, E.Const 0));
  check_verdict "X=2 implies X<=2" I.True
    (E.Cmp (Ir.Types.Eq, E.Value 0, E.Const 2))
    (E.Cmp (Ir.Types.Le, E.Value 0, E.Const 2));
  (* Genuinely undecidable stays Unknown. *)
  check_verdict "X<=Y leaves X<Y unknown" I.Unknown
    (E.Cmp (Ir.Types.Le, E.Value 0, E.Value 1))
    (E.Cmp (Ir.Types.Lt, E.Value 0, E.Value 1));
  check_verdict "unrelated operands stay unknown" I.Unknown
    (E.Cmp (Ir.Types.Lt, E.Value 0, E.Const 0))
    (E.Cmp (Ir.Types.Lt, E.Value 1, E.Const 0))

(* All 36 fact×query pairs of [same_operands_table], differenced against
   brute force over a small domain — in both directions: a True/False
   verdict must match every model of the fact (soundness), and Unknown is
   allowed only when the models genuinely disagree on the query
   (completeness: the table leaves nothing decidable on the table). *)
let test_same_operands_exhaustive () =
  List.iter
    (fun fop ->
      List.iter
        (fun qop ->
          let models = ref 0 and q_true = ref 0 in
          for x = -2 to 2 do
            for y = -2 to 2 do
              if Ir.Types.eval_cmp fop x y = 1 then begin
                incr models;
                if Ir.Types.eval_cmp qop x y = 1 then incr q_true
              end
            done
          done;
          let truth =
            if !q_true = !models then I.True
            else if !q_true = 0 then I.False
            else I.Unknown
          in
          let got = I.same_operands_table fop qop in
          if got <> truth then
            Alcotest.failf "x %s y => x %s y: table %s, brute force %s"
              (Ir.Types.string_of_cmp fop) (Ir.Types.string_of_cmp qop)
              (match got with I.True -> "True" | I.False -> "False" | I.Unknown -> "Unknown")
              (match truth with I.True -> "True" | I.False -> "False" | I.Unknown -> "Unknown"))
        ops)
    ops

(* The interval logic at the machine-integer edges: bounds one past the
   domain must not wrap into full-domain facts. *)
let test_interval_trap_boundaries () =
  check_verdict "X>=5 refutes X>max_int" I.False
    (E.Cmp (Ir.Types.Ge, E.Value 0, E.Const 5))
    (E.Cmp (Ir.Types.Gt, E.Value 0, E.Const max_int));
  check_verdict "X<=5 refutes X<min_int" I.False
    (E.Cmp (Ir.Types.Le, E.Value 0, E.Const 5))
    (E.Cmp (Ir.Types.Lt, E.Value 0, E.Const min_int));
  check_verdict "X<=min_int implies X=min_int" I.True
    (E.Cmp (Ir.Types.Le, E.Value 0, E.Const min_int))
    (E.Cmp (Ir.Types.Eq, E.Value 0, E.Const min_int));
  check_verdict "X>=max_int implies X=max_int" I.True
    (E.Cmp (Ir.Types.Ge, E.Value 0, E.Const max_int))
    (E.Cmp (Ir.Types.Eq, E.Value 0, E.Const max_int));
  check_verdict "X>=max_int refutes X<max_int" I.False
    (E.Cmp (Ir.Types.Ge, E.Value 0, E.Const max_int))
    (E.Cmp (Ir.Types.Lt, E.Value 0, E.Const max_int))

let suite =
  [
    Alcotest.test_case "exhaustive implication soundness" `Quick test_exhaustive_soundness;
    Alcotest.test_case "same-operands table: 36 pairs vs brute force" `Quick
      test_same_operands_exhaustive;
    Alcotest.test_case "interval logic at min_int/max_int" `Quick test_interval_trap_boundaries;
    Alcotest.test_case "paper's inferences are decided" `Quick test_paper_inferences;
  ]

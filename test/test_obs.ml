(* The observability layer: span nesting and balance (including the
   exception-unwind path), sink capture, ring-drop accounting, the
   log-scale histogram's percentile pins, metrics snapshots, Chrome-trace
   JSON well-formedness, and the contract the bench harness rests on —
   the pipeline's timing list is exactly a view over its trace. *)

(* A deterministic fake clock: every reading advances by [step]. *)
let fake_clock ?(step = 1.0) () =
  let now = ref 0.0 in
  fun () ->
    let t = !now in
    now := t +. step;
    t

(* ------------------------------------------------------------------ *)
(* Trace.                                                              *)

let test_span_nesting () =
  let sink, seen = Obs.Sink.memory () in
  let tr = Obs.Trace.create ~clock:(fake_clock ()) ~sink () in
  let outer = Obs.Trace.begin_span tr ~cat:"t" "outer" in
  Alcotest.(check int) "depth inside outer" 1 (Obs.Trace.depth tr);
  let inner = Obs.Trace.begin_span tr ~cat:"t" "inner" in
  Alcotest.(check int) "depth inside inner" 2 (Obs.Trace.depth tr);
  Obs.Trace.end_span tr inner;
  Obs.Trace.end_span tr outer;
  Alcotest.(check bool) "balanced" true (Obs.Trace.balanced tr);
  Alcotest.(check int) "two spans recorded" 2 (Obs.Trace.spans_recorded tr);
  (* clock readings: epoch=0, B(outer)=1, B(inner)=2, E(inner)=3, E(outer)=4 *)
  Alcotest.(check (float 1e-9)) "inner duration" 1.0 (Obs.Trace.duration inner);
  Alcotest.(check (float 1e-9)) "outer duration" 3.0 (Obs.Trace.duration outer);
  let names = List.map Obs.Sink.event_name (seen ()) in
  Alcotest.(check (list string)) "sink saw the stream in order"
    [ "outer"; "inner"; "inner"; "outer" ] names

let test_end_span_unwinds () =
  let tr = Obs.Trace.create ~clock:(fake_clock ()) () in
  let a = Obs.Trace.begin_span tr "a" in
  let b = Obs.Trace.begin_span tr "b" in
  let _c = Obs.Trace.begin_span tr "c" in
  (* Closing [a] out of order must close c and b first so every recorded
     begin keeps a matching end. *)
  Obs.Trace.end_span tr a;
  Alcotest.(check bool) "balanced after unwind" true (Obs.Trace.balanced tr);
  Alcotest.(check int) "all three closed" 3 (Obs.Trace.spans_recorded tr);
  (* Closing an already-closed span is a no-op. *)
  Obs.Trace.end_span tr b;
  Alcotest.(check int) "no double close" 3 (Obs.Trace.spans_recorded tr)

let test_with_span_exception_safe () =
  let tr = Obs.Trace.create ~clock:(fake_clock ()) () in
  (try
     Obs.Trace.with_span tr "boom" (fun () ->
         ignore (Obs.Trace.begin_span tr "nested");
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "balanced after exception" true (Obs.Trace.balanced tr)

let test_ring_drop () =
  let tr = Obs.Trace.create ~capacity:8 ~clock:(fake_clock ()) () in
  for i = 1 to 10 do
    Obs.Trace.with_span tr (Printf.sprintf "s%d" i) (fun () -> ())
  done;
  Alcotest.(check int) "all spans counted past the ring" 10 (Obs.Trace.spans_recorded tr);
  Alcotest.(check int) "ring keeps capacity events" 8 (List.length (Obs.Trace.events tr));
  Alcotest.(check int) "dropped the overflow" 12 (Obs.Trace.dropped tr);
  Alcotest.(check bool) "a lossy ring is not balanced" false (Obs.Trace.balanced tr)

(* Random well-nested span trees: the stream stays balanced, and a parent
   span covers at least the sum of its direct children. *)
let prop_span_balance =
  (* At most 9 levels of width <= 3: the worst-case tree stays within the
     ring's default capacity — an overflowing ring is lossy and correctly
     reports unbalanced (see test_ring_drop), which is not this property. *)
  QCheck.Test.make ~name:"random span trees balance; parents cover children" ~count:100
    QCheck.(list_of_size Gen.(int_bound 8) (int_bound 3))
    (fun shape ->
      let tr = Obs.Trace.create ~clock:(fake_clock ~step:0.125 ()) () in
      let rec grow depth shape =
        match shape with
        | [] -> 0.0
        | width :: rest ->
            let sp = Obs.Trace.begin_span tr (Printf.sprintf "d%d" depth) in
            let children = ref 0.0 in
            for _ = 1 to width do
              children := !children +. grow (depth + 1) rest
            done;
            Obs.Trace.end_span tr sp;
            if Obs.Trace.duration sp < !children then
              QCheck.Test.fail_report "parent shorter than its children";
            Obs.Trace.duration sp
      in
      ignore (grow 0 shape);
      Obs.Trace.balanced tr)

(* ------------------------------------------------------------------ *)
(* Histogram.                                                          *)

let test_hist_buckets () =
  Alcotest.(check int) "0ns -> bucket 0" 0 (Obs.Hist.bucket_of_ns 0);
  Alcotest.(check int) "1ns -> bucket 0" 0 (Obs.Hist.bucket_of_ns 1);
  Alcotest.(check int) "2ns -> bucket 1" 1 (Obs.Hist.bucket_of_ns 2);
  Alcotest.(check int) "3ns -> bucket 1" 1 (Obs.Hist.bucket_of_ns 3);
  Alcotest.(check int) "1000ns -> bucket 9" 9 (Obs.Hist.bucket_of_ns 1000);
  Alcotest.(check int) "bucket 9 tops at 1023" 1023 (Obs.Hist.bucket_hi_ns 9);
  Alcotest.(check int) "1e6ns -> bucket 19" 19 (Obs.Hist.bucket_of_ns 1_000_000)

let test_hist_percentiles () =
  let h = Obs.Hist.create () in
  Alcotest.(check int) "empty percentile is 0" 0 (Obs.Hist.percentile_ns h 0.5);
  (* 1000 fast samples and 10 slow outliers: the median answers with the
     fast bucket's bound, the tail percentile with the outliers'. *)
  for _ = 1 to 1000 do
    Obs.Hist.observe_ns h 1000
  done;
  for _ = 1 to 10 do
    Obs.Hist.observe_ns h 1_000_000
  done;
  Alcotest.(check int) "total" 1010 (Obs.Hist.total h);
  Alcotest.(check int) "p50 covered by the 1000ns bucket" 1023 (Obs.Hist.percentile_ns h 0.5);
  Alcotest.(check int) "p99.5 reaches the outlier bucket" 1048575
    (Obs.Hist.percentile_ns h 0.995);
  Alcotest.(check int) "p100 = worst bucket bound" 1048575 (Obs.Hist.percentile_ns h 1.0)

let test_hist_merge () =
  let a = Obs.Hist.create () and b = Obs.Hist.create () in
  Obs.Hist.observe_ns a 10;
  Obs.Hist.observe_ns b 10;
  Obs.Hist.observe_ns b 5000;
  Obs.Hist.merge_into ~dst:a b;
  Alcotest.(check int) "merged total" 3 (Obs.Hist.total a);
  Alcotest.(check int) "shared bucket summed" 2 (Obs.Hist.count a (Obs.Hist.bucket_of_ns 10))

(* ------------------------------------------------------------------ *)
(* Metrics.                                                            *)

let test_metrics_snapshot () =
  let m = Obs.Metrics.create () in
  Obs.Metrics.add m "x.count" 2;
  Obs.Metrics.incr m "x.count";
  Obs.Metrics.add m "a.count" 5;
  Obs.Metrics.max_gauge m "x.peak" 3.0;
  Obs.Metrics.max_gauge m "x.peak" 1.0;
  Obs.Metrics.observe_ns m "x.ns" 100;
  let s = Obs.Metrics.snapshot m in
  Alcotest.(check (list (pair string int)))
    "counters name-sorted with totals"
    [ ("a.count", 5); ("x.count", 3) ]
    s.Obs.Metrics.counters;
  Alcotest.(check (list (pair string (float 1e-9))))
    "max gauge kept the peak"
    [ ("x.peak", 3.0) ]
    s.Obs.Metrics.gauges;
  Alcotest.(check int) "one histogram" 1 (List.length s.Obs.Metrics.hists)

let test_metrics_merge () =
  let a = Obs.Metrics.create () and b = Obs.Metrics.create () in
  Obs.Metrics.add a "n" 1;
  Obs.Metrics.add b "n" 2;
  Obs.Metrics.max_gauge a "g" 5.0;
  Obs.Metrics.max_gauge b "g" 3.0;
  Obs.Metrics.merge_into ~dst:a b;
  Alcotest.(check int) "counters add" 3 (Obs.Metrics.counter a "n");
  Alcotest.(check (option (float 1e-9))) "gauges max" (Some 5.0) (Obs.Metrics.gauge a "g")

let test_metrics_concurrent_hammer () =
  (* Two domains hammering one registry: the totals must come out exact —
     a lost update under the parallel driver would silently skew every
     merged report. One counter is shared (contended adds), one gauge races
     on its max, and each domain owns a private counter so per-writer
     totals stay visible. *)
  let m = Obs.Metrics.create () in
  let rounds = 100_000 in
  let worker who () =
    for i = 1 to rounds do
      Obs.Metrics.incr m "hammer.shared";
      Obs.Metrics.add m (Printf.sprintf "hammer.d%d" who) 2;
      Obs.Metrics.max_gauge m "hammer.peak" (float_of_int i);
      Obs.Metrics.observe_ns m "hammer.ns" 10
    done
  in
  let d = Domain.spawn (worker 1) in
  worker 0 ();
  Domain.join d;
  Alcotest.(check int) "shared counter exact" (2 * rounds) (Obs.Metrics.counter m "hammer.shared");
  Alcotest.(check int) "domain 0 counter exact" (2 * rounds) (Obs.Metrics.counter m "hammer.d0");
  Alcotest.(check int) "domain 1 counter exact" (2 * rounds) (Obs.Metrics.counter m "hammer.d1");
  Alcotest.(check (option (float 1e-9)))
    "gauge kept the max" (Some (float_of_int rounds)) (Obs.Metrics.gauge m "hammer.peak");
  let s = Obs.Metrics.snapshot m in
  let buckets = List.assoc "hammer.ns" s.Obs.Metrics.hists in
  let observations = List.fold_left (fun acc (_, n) -> acc + n) 0 buckets in
  Alcotest.(check int) "histogram observations exact" (2 * rounds) observations

let test_metrics_sink_capture () =
  let sink, seen = Obs.Sink.memory () in
  let o = Obs.create ~sink () in
  Obs.add o "k" 1;
  Obs.add o "k" 2;
  let totals =
    List.filter_map
      (function Obs.Sink.Count { name = "k"; total; _ } -> Some total | _ -> None)
      (seen ())
  in
  Alcotest.(check (list int)) "sink saw the running totals" [ 1; 3 ] totals

(* ------------------------------------------------------------------ *)
(* Chrome trace output: a minimal JSON reader (no external parser in the
   test tier) checks the document is well-formed, and the B/E stream is
   balanced per span name. *)

exception Bad_json of string

let parse_json (s : string) =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let skip_ws () =
    while !pos < n && (match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false) do
      incr pos
    done
  in
  let expect c =
    if !pos >= n || s.[!pos] <> c then
      raise (Bad_json (Printf.sprintf "expected %c at %d" c !pos));
    incr pos
  in
  let string_lit () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !pos >= n then raise (Bad_json "unterminated string");
      match s.[!pos] with
      | '"' -> incr pos
      | '\\' ->
          incr pos;
          if !pos >= n then raise (Bad_json "bad escape");
          (match s.[!pos] with
          | '"' -> Buffer.add_char b '"'
          | '\\' -> Buffer.add_char b '\\'
          | 'n' -> Buffer.add_char b '\n'
          | 'u' ->
              if !pos + 4 >= n then raise (Bad_json "bad \\u escape");
              pos := !pos + 4
          | c -> Buffer.add_char b c);
          incr pos;
          go ()
      | c ->
          Buffer.add_char b c;
          incr pos;
          go ()
    in
    go ();
    Buffer.contents b
  in
  (* The value tree: objects/arrays as assoc/lists, scalars as strings. *)
  let rec value () =
    skip_ws ();
    match peek () with
    | Some '{' ->
        incr pos;
        skip_ws ();
        if peek () = Some '}' then begin
          incr pos;
          `Obj []
        end
        else begin
          let rec members acc =
            skip_ws ();
            let k = string_lit () in
            skip_ws ();
            expect ':';
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                members ((k, v) :: acc)
            | Some '}' ->
                incr pos;
                List.rev ((k, v) :: acc)
            | _ -> raise (Bad_json "expected , or } in object")
          in
          `Obj (members [])
        end
    | Some '[' ->
        incr pos;
        skip_ws ();
        if peek () = Some ']' then begin
          incr pos;
          `Arr []
        end
        else begin
          let rec elems acc =
            let v = value () in
            skip_ws ();
            match peek () with
            | Some ',' ->
                incr pos;
                elems (v :: acc)
            | Some ']' ->
                incr pos;
                List.rev (v :: acc)
            | _ -> raise (Bad_json "expected , or ] in array")
          in
          `Arr (elems [])
        end
    | Some '"' -> `Str (string_lit ())
    | Some _ ->
        let start = !pos in
        while
          !pos < n
          && match s.[!pos] with ',' | '}' | ']' | ' ' | '\t' | '\n' | '\r' -> false | _ -> true
        do
          incr pos
        done;
        if !pos = start then raise (Bad_json "empty scalar");
        `Scalar (String.sub s start (!pos - start))
    | None -> raise (Bad_json "unexpected end")
  in
  let v = value () in
  skip_ws ();
  if !pos <> n then raise (Bad_json "trailing garbage");
  v

let chrome_doc_of_trace tr =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  Obs.Trace.pp_chrome ppf tr;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* Replay a parsed traceEvents array as a stack machine: every E must
   match the innermost open B's name, and nothing stays open. *)
let check_chrome_balanced = function
  | `Obj fields -> (
      match List.assoc_opt "traceEvents" fields with
      | Some (`Arr evs) ->
          let stack =
            List.fold_left
              (fun stack ev ->
                match ev with
                | `Obj f -> (
                    let str k =
                      match List.assoc_opt k f with Some (`Str s) -> s | _ -> "?"
                    in
                    match str "ph" with
                    | "B" -> str "name" :: stack
                    | "E" -> (
                        match stack with
                        | top :: rest when String.equal top (str "name") -> rest
                        | _ -> Alcotest.failf "unbalanced E for %s" (str "name"))
                    | ph -> Alcotest.failf "unexpected phase %s" ph)
                | _ -> Alcotest.fail "traceEvents element is not an object")
              [] evs
          in
          Alcotest.(check (list string)) "no span left open" [] stack;
          List.length evs
      | _ -> Alcotest.fail "no traceEvents array")
  | _ -> Alcotest.fail "chrome doc is not an object"

let test_chrome_json () =
  let tr = Obs.Trace.create ~clock:(fake_clock ()) () in
  Obs.Trace.with_span tr ~cat:"pass" "outer \"quoted\"" (fun () ->
      Obs.Trace.with_span tr ~cat:"gvn" "inner" (fun () -> ()));
  let doc = parse_json (chrome_doc_of_trace tr) in
  let n = check_chrome_balanced doc in
  Alcotest.(check int) "two spans = four events" 4 n

(* ------------------------------------------------------------------ *)
(* The pipeline contract: [result.timings] is a view over the trace, so
   per-pass totals reconstructed from the raw span stream must agree with
   the timing list — on every routine of all ten workload benchmarks. *)

let reconstruct_pass_totals events =
  let tbl = Hashtbl.create 16 in
  List.iter
    (function
      | Obs.Sink.Span_end { name; cat = "pass"; dur; _ } ->
          Hashtbl.replace tbl name (dur +. try Hashtbl.find tbl name with Not_found -> 0.0)
      | _ -> ())
    events;
  tbl

let test_timings_agree_with_trace () =
  let checked = ref 0 in
  List.iter
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      List.iter
        (fun f ->
          let o = Obs.create () in
          let r =
            let opts = Transform.Pipeline.Options.(default |> with_obs o) in
            Transform.Pipeline.run_list opts (Transform.Pipeline.standard_passes opts) f
          in
          let from_trace = reconstruct_pass_totals (Obs.Trace.events o.Obs.trace) in
          (* A pass instance name can repeat within a round (dce runs three
             times), so compare name-summed totals on both sides. *)
          let from_timings = Hashtbl.create 16 in
          List.iter
            (fun (t : Transform.Pipeline.timing) ->
              Hashtbl.replace from_timings t.Transform.Pipeline.pass
                (t.Transform.Pipeline.seconds
                +. try Hashtbl.find from_timings t.Transform.Pipeline.pass
                   with Not_found -> 0.0))
            r.Transform.Pipeline.timings;
          Hashtbl.iter
            (fun name timed ->
              let traced =
                try Hashtbl.find from_trace name
                with Not_found ->
                  Alcotest.failf "%s: pass %s timed but not traced" b.Workload.Suite.name
                    name
              in
              if abs_float (traced -. timed) > 1e-6 then
                Alcotest.failf "%s: pass %s traced %.9fs vs timed %.9fs"
                  b.Workload.Suite.name name traced timed;
              incr checked)
            from_timings;
          (* And the headline numbers are the same view. *)
          let gvn_from_trace =
            Hashtbl.fold
              (fun name dur acc ->
                (* every GVN pass instance is named gvn#round *)
                if List.exists
                     (fun (t : Transform.Pipeline.timing) ->
                       String.equal t.Transform.Pipeline.pass name
                       && t.Transform.Pipeline.kind = Transform.Pipeline.Gvn)
                     r.Transform.Pipeline.timings
                then acc +. dur
                else acc)
              from_trace 0.0
          in
          Alcotest.(check (float 1e-6))
            "gvn_seconds is the kind-matched span total" gvn_from_trace
            r.Transform.Pipeline.gvn_seconds;
          Alcotest.(check bool) "trace stayed balanced" true (Obs.Trace.balanced o.Obs.trace))
        funcs)
    (Workload.Suite.all ~scale:0.1 ());
  Alcotest.(check bool) "compared a real number of pass instances" true (!checked > 100)

let suite =
  [
    Alcotest.test_case "span nesting, depth and durations" `Quick test_span_nesting;
    Alcotest.test_case "end_span unwinds out-of-order closes" `Quick test_end_span_unwinds;
    Alcotest.test_case "with_span is exception-safe" `Quick test_with_span_exception_safe;
    Alcotest.test_case "ring drops oldest and counts it" `Quick test_ring_drop;
    QCheck_alcotest.to_alcotest prop_span_balance;
    Alcotest.test_case "log-scale bucket boundaries" `Quick test_hist_buckets;
    Alcotest.test_case "percentile pins" `Quick test_hist_percentiles;
    Alcotest.test_case "histogram merge" `Quick test_hist_merge;
    Alcotest.test_case "metrics snapshot" `Quick test_metrics_snapshot;
    Alcotest.test_case "metrics merge" `Quick test_metrics_merge;
    Alcotest.test_case "metrics survive two concurrent writers" `Quick
      test_metrics_concurrent_hammer;
    Alcotest.test_case "metrics stream to the sink" `Quick test_metrics_sink_capture;
    Alcotest.test_case "chrome trace JSON is well-formed and balanced" `Quick test_chrome_json;
    Alcotest.test_case "pipeline timings are a view over the trace" `Slow
      test_timings_agree_with_trace;
  ]

let () =
  Alcotest.run "pgvn"
    [
      ("util", Test_util.suite);
      ("obs", Test_obs.suite);
      ("ir", Test_ir.suite);
      ("analysis", Test_analysis.suite);
      ("ssa", Test_ssa.suite);
      ("check", Test_check.suite);
      ("absint", Test_absint.suite);
      ("schedule", Test_schedule.suite);
      ("expr", Test_expr.suite);
      ("rules", Test_rules.suite);
      ("infer", Test_infer.suite);
      ("gvn", Test_gvn.suite);
      ("phipred", Test_phipred.suite);
      ("differential", Test_differential.suite);
      ("paper", Test_paper.suite);
      ("baselines", Test_baselines.suite);
      ("transform", Test_transform.suite);
      ("gcm", Test_gcm.suite);
      ("validate", Test_validate.suite);
      ("pred", Test_pred.suite);
      ("par", Test_par.suite);
      ("cli", Test_cli.suite);
      ("workload", Test_workload.suite);
      ("stats", Test_stats.suite);
    ]

(* The synthetic workload itself: determinism, termination, and the shape
   knobs actually influencing the generated programs. *)

let prop_deterministic =
  QCheck.Test.make ~name:"generation is deterministic in the seed" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let a = Workload.Generator.func ~seed ~name:"w" () in
      let b = Workload.Generator.func ~seed ~name:"w" () in
      a.Ir.Func.instrs = b.Ir.Func.instrs && a.Ir.Func.blocks = b.Ir.Func.blocks)

let prop_terminates =
  QCheck.Test.make ~name:"generated programs terminate" ~count:40
    QCheck.(int_bound 100000)
    (fun seed ->
      let f = Workload.Generator.func ~seed ~name:"w" () in
      let rng = Util.Prng.create (seed + 1) in
      let ok = ref true in
      for _ = 1 to 10 do
        let args = Array.init 8 (fun _ -> Util.Prng.range rng (-50) 50) in
        match Ir.Interp.run ~fuel:1_000_000 f args with
        | Ir.Interp.Timeout -> ok := false
        | Ir.Interp.Ret _ | Ir.Interp.Trap -> ()
      done;
      !ok)

let test_loop_knob () =
  let with_loops =
    Workload.Generator.func
      ~profile:{ Workload.Generator.default_profile with loop_weight = 6; stmt_budget = 60 }
      ~seed:5 ~name:"w" ()
  in
  let without =
    Workload.Generator.func
      ~profile:{ Workload.Generator.default_profile with loop_weight = 0; stmt_budget = 60 }
      ~seed:5 ~name:"w" ()
  in
  let nesting f = Analysis.Loops.max_nesting (Analysis.Loops.compute (Analysis.Graph.of_func f)) in
  Alcotest.(check bool) "loops appear when requested" true (nesting with_loops > 0);
  Alcotest.(check int) "no loops when disabled" 0 (nesting without)

let test_suite_shape () =
  let suite = Workload.Suite.all ~scale:0.1 () in
  Alcotest.(check int) "ten benchmarks" 10 (List.length suite);
  List.iter
    (fun ((b : Workload.Suite.benchmark), funcs) ->
      Alcotest.(check bool) (b.Workload.Suite.name ^ " nonempty") true (List.length funcs > 0);
      List.iter (fun f -> ignore (Ssa.Verify.check f)) funcs)
    suite

let test_ladder_shape () =
  let f = Workload.Pathological.ladder_func 10 in
  ignore (Ssa.Verify.check f);
  (* The full algorithm discovers the chained congruence: j = i_n + 1 under
     the guards is congruent to i_1 + 1. *)
  let st = Pgvn.Driver.run Pgvn.Config.full f in
  let s = Pgvn.Driver.summarize st in
  let s_off =
    Pgvn.Driver.summarize
      (Pgvn.Driver.run { Pgvn.Config.full with Pgvn.Config.value_inference = false } f)
  in
  Alcotest.(check bool) "value inference pays off on the ladder" true
    (s.Pgvn.Driver.congruence_classes < s_off.Pgvn.Driver.congruence_classes)

let test_ladder_quadratic_visits () =
  (* Figure 9: inference visits grow superlinearly in the ladder height. *)
  let visits n =
    let st = Pgvn.Driver.run Pgvn.Config.full (Workload.Pathological.ladder_func n) in
    st.Pgvn.State.stats.Pgvn.Run_stats.value_inference_visits
  in
  let v16 = visits 16 and v64 = visits 64 in
  (* 4x the size must cost clearly more than 4x the visits. *)
  Alcotest.(check bool) "superlinear growth" true (v64 > 8 * v16)

let test_suite_determinism () =
  (* Regression: the ten-benchmark corpus is a pure function of its baked-in
     seeds. Generate it twice and compare the printed IR byte for byte —
     any hidden global state or hash-order dependence breaks this. *)
  let dump () =
    Workload.Suite.all ~scale:0.1 ()
    |> List.concat_map (fun ((b : Workload.Suite.benchmark), funcs) ->
           b.Workload.Suite.name :: List.map Ir.Printer.to_string funcs)
    |> String.concat "\n"
  in
  Alcotest.(check string) "byte-identical corpus" (dump ()) (dump ())

let suite =
  [
    QCheck_alcotest.to_alcotest prop_deterministic;
    Alcotest.test_case "benchmark corpus is byte-identical across runs" `Quick
      test_suite_determinism;
    QCheck_alcotest.to_alcotest prop_terminates;
    Alcotest.test_case "loop knob controls loop generation" `Quick test_loop_knob;
    Alcotest.test_case "benchmark suite shape" `Quick test_suite_shape;
    Alcotest.test_case "figure-9 ladder exercises inference" `Quick test_ladder_shape;
    Alcotest.test_case "figure-9 ladder is superlinear" `Quick test_ladder_quadratic_visits;
  ]
